// Matrix-first (algebraic) usage: solve an operator that never touched the
// FEM pipeline. Builds a 5-point finite-difference Laplacian on a grid —
// no mesh::Mesh, no fem::assemble_poisson — round-trips it through
// MatrixMarket (the format external systems arrive in), prepares a
// SolverSession straight from the CsrMatrix, and re-solves the family of
// shifted operators through a core::SessionCache to show setup being paid
// exactly once per distinct operator.
//
//   ./algebraic_solve [grid_side]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "core/session_cache.hpp"
#include "core/solver_session.hpp"
#include "fem/poisson.hpp"
#include "la/mm_io.hpp"

using namespace ddmgnn;

namespace {

/// 5-point Laplacian with homogeneous Dirichlet boundary folded in (interior
/// unknowns only): the canonical "we only have the matrix" SPD system.
la::CsrMatrix grid_laplacian(la::Index side, double diagonal_shift) {
  const la::Index n = side * side;
  la::CooBuilder coo(n, n);
  coo.reserve(static_cast<std::size_t>(n) * 5);
  for (la::Index r = 0; r < side; ++r) {
    for (la::Index c = 0; c < side; ++c) {
      const la::Index i = r * side + c;
      coo.add(i, i, 4.0 + diagonal_shift);
      if (r > 0) coo.add(i, i - side, -1.0);
      if (r + 1 < side) coo.add(i, i + side, -1.0);
      if (c > 0) coo.add(i, i - 1, -1.0);
      if (c + 1 < side) coo.add(i, i + 1, -1.0);
    }
  }
  return std::move(coo).build();
}

}  // namespace

int main(int argc, char** argv) {
  // Clamp the grid side to a sane range: n = side² must fit la::Index.
  const la::Index side = std::clamp(argc > 1 ? std::atoi(argv[1]) : 48, 4,
                                    20000);
  std::printf("5-point Laplacian on a %dx%d grid (n = %d) — no mesh, no FEM\n",
              side, side, side * side);

  // --- MatrixMarket round trip: the way external operators arrive. -------
  const auto mtx =
      (std::filesystem::temp_directory_path() / "algebraic_demo.mtx").string();
  la::mm::write_matrix(mtx, grid_laplacian(side, 0.0),
                       la::mm::Symmetry::kSymmetric);
  const la::CsrMatrix A = la::mm::read_matrix(mtx);
  std::printf("round-tripped %s: %d x %d, %lld stored entries\n", mtx.c_str(),
              A.rows(), A.cols(), static_cast<long long>(A.nnz()));

  // --- Matrix-first setup + solve. ---------------------------------------
  core::HybridConfig cfg;
  cfg.preconditioner = "ddm-lu";
  cfg.subdomain_target_nodes = 400;
  cfg.rel_tol = 1e-8;

  const std::vector<double> ones(A.rows(), 1.0);
  const std::vector<double> b = A.apply(ones);  // manufactured solution = 1
  std::vector<double> x(A.rows(), 0.0);

  core::SolverSession session;
  session.setup(A, cfg);  // decomposition from the matrix graph
  const auto res = session.solve(b, x);
  std::printf("%s: K=%d subdomains, %d iterations, rel_res=%.2e, "
              "setup %.3fs, solve %.3fs\n",
              res.method.c_str(), session.num_subdomains(), res.iterations,
              res.final_relative_residual, session.setup_seconds(),
              res.total_seconds);

  // --- A family of operators through the session cache. ------------------
  // Re-solving campaigns hit the same few operators over and over; the cache
  // pays setup once per operator and serves prepared sessions afterwards.
  core::SessionCache cache(/*byte_budget=*/256u << 20);
  const double shifts[] = {0.0, 0.5, 0.0, 0.5, 0.0};
  for (const double shift : shifts) {
    const la::CsrMatrix shifted = grid_laplacian(side, shift);
    auto s = cache.get_or_setup(shifted, cfg);
    std::vector<double> bs = shifted.apply(ones);
    std::vector<double> xs(shifted.rows(), 0.0);
    const auto r = s->solve(bs, xs);
    std::printf("  shift %.1f: %d iterations (cache: %zu hits / %zu misses)\n",
                shift, r.iterations, cache.stats().hits,
                cache.stats().misses);
  }
  std::printf("cache held %zu sessions, %.1f MiB accounted\n", cache.size(),
              static_cast<double>(cache.size_bytes()) / (1u << 20));

  const double err_ok =
      fem::relative_residual(A, b, x) < 1e-7 ? 1.0 : 0.0;
  std::printf("%s\n", err_ok != 0.0 ? "OK" : "FAILED");
  return err_ok != 0.0 ? 0 : 1;
}
