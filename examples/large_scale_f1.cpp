// Domain-specific example: the paper's Fig. 5 scenario as an application —
// a caricatural Formula-1 geometry with holes (cockpit, wing stripes), much
// larger than anything in the training distribution, solved to 1e-9 with the
// hybrid solver. Demonstrates out-of-distribution generalization in both
// geometry (holes, elongated shape) and scale.
#include <cmath>
#include <cstdio>

#include "common/options.hpp"
#include "core/model_zoo.hpp"
#include "core/solver_session.hpp"
#include "fem/poisson.hpp"
#include "mesh/generator.hpp"

int main() {
  using namespace ddmgnn;
  std::printf("=== Large-scale F1 domain (out-of-distribution) ===\n");
  const core::ZooSpec spec = core::default_spec(10, 10);
  const gnn::DssModel model = core::get_or_train_model(spec);

  const double f1_scale = bench_scale() == BenchScale::kSmoke ? 0.8 : 1.4;
  const mesh::Domain dom = mesh::f1_domain(f1_scale);
  const mesh::Domain unit = mesh::random_domain(1);
  const double h = std::sqrt(
      unit.area() /
      (0.8660254 * static_cast<double>(spec.dataset.mesh_target_nodes)));
  const mesh::Mesh m = mesh::generate_mesh(dom, h, 11);
  const auto q = fem::sample_quadratic_data(11, f1_scale);
  const auto prob = fem::assemble_poisson(
      m, [&](const mesh::Point2& p) { return q.f(p); },
      [&](const mesh::Point2& p) { return q.g(p); });
  std::printf("mesh: %d nodes, %zu holes (training meshes: ~%d nodes, no "
              "holes)\n",
              m.num_nodes(), dom.holes.size(), spec.dataset.mesh_target_nodes);

  core::HybridConfig cfg;
  cfg.preconditioner = "ddm-gnn";
  cfg.subdomain_target_nodes = spec.dataset.subdomain_target_nodes;
  cfg.rel_tol = 1e-9;  // well below the training precision
  cfg.max_iterations = 5000;
  cfg.model = &model;
  core::SolverSession session;
  session.setup(m, prob, cfg);
  std::vector<double> x(prob.b.size(), 0.0);
  const auto res = session.solve(prob.b, x);
  std::printf("PCG-DDM-GNN: K=%d, iters=%d, final rel.res=%.2e, %.2fs  %s\n",
              session.num_subdomains(), res.iterations,
              res.final_relative_residual, res.total_seconds,
              res.converged ? "converged" : "NOT CONVERGED");
  std::printf("residual check: %.2e\n",
              fem::relative_residual(prob.A, prob.b, x));
  return res.converged ? 0 : 1;
}
