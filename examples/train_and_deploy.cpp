// End-to-end walkthrough of the paper's pipeline (Fig. 1):
//   1. harvest local-problem training data from two-level-ASM PCG runs (§IV-A)
//   2. train the DSS model with the physics-informed loss (§IV-B)
//   3. evaluate the model (Table II metrics)
//   4. plug it into the DDM-GNN preconditioner and solve a *fresh* Poisson
//      problem, comparing PCG-DDM-GNN vs PCG-DDM-LU vs plain CG (Table I).
//
// Runtime is controlled by DDMGNN_BENCH_SCALE (smoke/default/paper).
#include <cstdio>

#include "common/options.hpp"
#include "core/dataset.hpp"
#include "core/model_zoo.hpp"
#include "core/solver_session.hpp"
#include "fem/poisson.hpp"
#include "gnn/metrics.hpp"
#include "gnn/trainer.hpp"
#include "mesh/generator.hpp"

int main() {
  using namespace ddmgnn;
  std::printf("=== DDM-GNN train-and-deploy (scale: %s) ===\n",
              bench_scale_name());

  // 1-2. Dataset + training (cached in the artifact dir after first run).
  core::ZooSpec spec = core::default_spec(/*iterations=*/10, /*latent=*/10);
  std::printf("dataset: %d global problems, ~%d-node meshes, ~%d-node "
              "subdomains\n",
              spec.dataset.num_global_problems, spec.dataset.mesh_target_nodes,
              spec.dataset.subdomain_target_nodes);
  const core::DssDataset data = core::generate_dataset(spec.dataset);
  std::printf("harvested %zu samples (train %zu / val %zu / test %zu)\n",
              data.total(), data.train.size(), data.validation.size(),
              data.test.size());
  gnn::TrainReport report;
  spec.training.verbose = true;
  const gnn::DssModel model = core::get_or_train_model(spec, &data, &report);
  if (report.epochs_run > 0) {
    std::printf("trained %d epochs in %.1fs (loss %.4f -> %.4f)\n",
                report.epochs_run, report.seconds, report.epoch_loss.front(),
                report.epoch_loss.back());
  } else {
    std::printf("loaded cached model from %s\n",
                core::model_cache_path(spec).c_str());
  }

  // 3. Table II style metrics on the held-out test set.
  const auto metrics = gnn::evaluate_dss(model, data.test);
  std::printf("DSS test metrics: residual %.4f +/- %.4f, rel.error %.4f +/- "
              "%.4f (%zu samples, %zu weights)\n",
              metrics.residual_mean, metrics.residual_std,
              metrics.rel_error_mean, metrics.rel_error_std,
              metrics.num_samples, model.num_params());

  // 4. Fresh out-of-distribution problem: 3x the training mesh size.
  const std::uint64_t seed = 20240213;
  const mesh::Domain dom = mesh::random_domain(seed);
  const mesh::Mesh m = mesh::generate_mesh_target_nodes(
      dom, 3 * spec.dataset.mesh_target_nodes, seed);
  const auto q = fem::sample_quadratic_data(seed);
  const auto prob = fem::assemble_poisson(
      m, [&](const mesh::Point2& p) { return q.f(p); },
      [&](const mesh::Point2& p) { return q.g(p); });
  std::printf("\nsolving fresh problem: N=%d nodes\n", m.num_nodes());

  core::HybridConfig cfg;
  cfg.subdomain_target_nodes = spec.dataset.subdomain_target_nodes;
  cfg.overlap = 2;
  cfg.rel_tol = 1e-6;
  cfg.model = &model;
  std::vector<double> x(prob.b.size());
  for (const char* name : {"ddm-gnn", "ddm-lu", "none"}) {
    cfg.preconditioner = name;
    core::SolverSession session;
    session.setup(m, prob, cfg);
    std::fill(x.begin(), x.end(), 0.0);
    const auto res = session.solve(prob.b, x);
    std::printf("  %-9s K=%-3d iters=%-5d rel.res=%.2e  total %.3fs "
                "(precond %.3fs, setup %.3fs)  %s\n",
                name, session.num_subdomains(), res.iterations,
                res.final_relative_residual, res.total_seconds,
                res.precond_seconds, session.setup_seconds(),
                res.converged ? "converged" : "NOT CONVERGED");
  }
  return 0;
}
