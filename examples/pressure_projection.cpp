// Domain-specific example: the pressure-Poisson solve of a fractional-step
// incompressible-flow method — the workload the paper's introduction
// motivates (Guermond & Quartapelle's projection scheme). Every time step
// needs one Poisson solve with a *new right-hand side* on the *same* mesh and
// operator; the DDM-GNN preconditioner amortizes its setup (partition,
// graphs) across all steps, exactly the usage pattern intended for CFD codes.
//
// The velocity field here is synthetic (a decaying swirl); what matters is
// the solver loop: assemble once, re-solve many times to tight tolerance.
#include <cmath>
#include <cstdio>

#include "common/options.hpp"
#include "common/timer.hpp"
#include "core/model_zoo.hpp"
#include "core/solver_session.hpp"
#include "fem/poisson.hpp"
#include "mesh/generator.hpp"

int main() {
  using namespace ddmgnn;
  std::printf("=== Pressure-projection loop with a reusable DDM-GNN "
              "preconditioner ===\n");

  // Model from the zoo (trains on first use, cached afterwards).
  const core::ZooSpec spec = core::default_spec(10, 10);
  const gnn::DssModel model = core::get_or_train_model(spec);

  // One channel-like domain and operator for the whole simulation.
  const std::uint64_t seed = 2024;
  const mesh::Mesh m = mesh::generate_mesh_target_nodes(
      mesh::random_domain(seed), 3 * spec.dataset.mesh_target_nodes, seed);
  const auto prob = fem::assemble_poisson(
      m, [](const mesh::Point2&) { return 0.0; },
      [](const mesh::Point2&) { return 0.0; });
  std::printf("mesh: %d nodes\n", m.num_nodes());

  // Open the session ONCE: partition, DSS graphs and coarse space are built
  // here and amortized across all time steps.
  core::HybridConfig cfg;
  cfg.preconditioner = "ddm-gnn";
  cfg.subdomain_target_nodes = spec.dataset.subdomain_target_nodes;
  cfg.overlap = 2;
  cfg.rel_tol = 1e-6;  // fractional-step methods need tight pressures
  cfg.max_iterations = 2000;
  cfg.model = &model;
  cfg.seed = seed;
  cfg.track_history = false;
  core::SolverSession session;
  session.setup(m, prob, cfg);
  std::printf("setup: K=%d subdomains in %.3fs\n", session.num_subdomains(),
              session.setup_seconds());

  // Time stepping: div(u*) drives the pressure Poisson equation. The
  // synthetic divergence field depends only on the step time, so a window
  // of steps can be assembled up front and solved through the BATCHED
  // solve_many path: all pressures advance together, every block iteration
  // paying one SpMM and one disjoint-union DSS inference instead of one
  // preconditioner application per step.
  const int num_steps = bench_scale() == BenchScale::kSmoke ? 3 : 8;
  const auto pts = m.points();
  std::vector<std::vector<double>> rhs(num_steps);
  for (int step = 0; step < num_steps; ++step) {
    const double t = 0.05 * step;
    // Synthetic intermediate-velocity divergence: decaying swirl + drift.
    auto& b = rhs[step];
    b.resize(prob.b.size());
    for (la::Index i = 0; i < m.num_nodes(); ++i) {
      if (prob.dirichlet[i]) {
        b[i] = 0.0;
        continue;
      }
      const double x = pts[i].x, y = pts[i].y;
      b[i] = std::exp(-0.8 * t) *
             (std::sin(3.0 * x + t) * std::cos(2.0 * y) +
              0.3 * std::cos(5.0 * y - t));
    }
  }
  Timer loop;
  std::vector<std::vector<double>> pressures;
  const auto results = session.solve_many(rhs, pressures);
  int total_iters = 0;
  for (int step = 0; step < num_steps; ++step) {
    const auto& res = results[step];
    total_iters += res.iterations;
    std::printf("  step %2d: iters=%-4d rel_res=%.2e  (%s)\n", step,
                res.iterations, res.final_relative_residual,
                res.method.c_str());
    if (!res.converged) {
      std::printf("  step %2d did not converge!\n", step);
      return 1;
    }
  }
  std::printf("total: %d steps, %d block iterations, %.2fs after one-time "
              "setup (batched solve_many; set block_multi_rhs=false to "
              "compare with the sequential loop)\n",
              num_steps, total_iters, loop.seconds());
  return 0;
}
