// Quickstart: the 60-second tour of the library.
//   1. generate a random smooth domain and mesh it            (src/mesh)
//   2. discretize -Δu = f, u|∂Ω = g with P1 elements          (src/fem)
//   3. solve with three preconditioners through the facade    (src/core)
// DDM-GNN needs a trained model: the model zoo trains a small one on first
// use (cached under ./artifacts), which takes a few minutes at the default
// scale — run with DDMGNN_BENCH_SCALE=smoke for a fast first contact.
#include <cstdio>

#include "core/hybrid_solver.hpp"
#include "core/model_zoo.hpp"
#include "fem/poisson.hpp"
#include "mesh/generator.hpp"

int main() {
  using namespace ddmgnn;

  // 1. Mesh a random smooth domain (paper §IV-A geometry).
  const std::uint64_t seed = 1;
  const mesh::Domain domain = mesh::random_domain(seed);
  const mesh::Mesh m = mesh::generate_mesh_target_nodes(domain, 4000, seed);
  std::printf("mesh: %d nodes, %d triangles\n", m.num_nodes(),
              m.num_triangles());

  // 2. Assemble the FEM Poisson system A u = b with random quadratic data.
  const fem::QuadraticData data = fem::sample_quadratic_data(seed);
  const fem::PoissonProblem prob = fem::assemble_poisson(
      m, [&](const mesh::Point2& p) { return data.f(p); },
      [&](const mesh::Point2& p) { return data.g(p); });

  // 3. Solve with plain CG, the classical two-level Schwarz (DDM-LU), and
  //    the paper's GNN-preconditioned hybrid (DDM-GNN).
  const gnn::DssModel model =
      core::get_or_train_model(core::default_spec(10, 10));
  core::HybridConfig cfg;
  cfg.subdomain_target_nodes = 350;
  cfg.rel_tol = 1e-6;
  cfg.model = &model;
  for (const auto kind : {core::PrecondKind::kNone, core::PrecondKind::kDdmLu,
                          core::PrecondKind::kDdmGnn}) {
    cfg.preconditioner = kind;
    cfg.flexible = (kind == core::PrecondKind::kDdmGnn);
    const core::HybridReport rep = core::solve_poisson(m, prob, cfg);
    std::printf("%-8s: %4d iterations, rel.residual %.2e, %.3fs %s\n",
                core::precond_kind_name(kind), rep.result.iterations,
                rep.result.final_relative_residual, rep.result.total_seconds,
                rep.result.converged ? "" : "(not converged)");
    if (!rep.result.converged) return 1;
  }
  return 0;
}
