// Quickstart: the 60-second tour of the library.
//   1. generate a random smooth domain and mesh it            (src/mesh)
//   2. discretize -Δu = f, u|∂Ω = g with P1 elements          (src/fem)
//   3. open a SolverSession per preconditioner: setup() builds the
//      decomposition/factorizations/coarse space ONCE, then every solve()
//      pays only iteration cost                               (src/core)
// Preconditioners are picked by registry name ("none", "ddm-lu", "ddm-gnn",
// ... — see precond::preconditioner_names()); the Krylov method defaults
// from the preconditioner's symmetry (flexible PCG for the GNN).
// DDM-GNN needs a trained model: the model zoo trains a small one on first
// use (cached under ./artifacts), which takes a few minutes at the default
// scale — run with DDMGNN_BENCH_SCALE=smoke for a fast first contact.
#include <cstdio>

#include "core/model_zoo.hpp"
#include "core/solver_session.hpp"
#include "fem/poisson.hpp"
#include "mesh/generator.hpp"

int main() {
  using namespace ddmgnn;

  // 1. Mesh a random smooth domain (paper §IV-A geometry).
  const std::uint64_t seed = 1;
  const mesh::Domain domain = mesh::random_domain(seed);
  const mesh::Mesh m = mesh::generate_mesh_target_nodes(domain, 4000, seed);
  std::printf("mesh: %d nodes, %d triangles\n", m.num_nodes(),
              m.num_triangles());

  // 2. Assemble the FEM Poisson system A u = b with random quadratic data.
  const fem::QuadraticData data = fem::sample_quadratic_data(seed);
  const fem::PoissonProblem prob = fem::assemble_poisson(
      m, [&](const mesh::Point2& p) { return data.f(p); },
      [&](const mesh::Point2& p) { return data.g(p); });

  // 3. Solve with plain CG, the classical two-level Schwarz (DDM-LU), and
  //    the paper's GNN-preconditioned hybrid (DDM-GNN).
  const gnn::DssModel model =
      core::get_or_train_model(core::default_spec(10, 10));
  core::HybridConfig cfg;
  cfg.subdomain_target_nodes = 350;
  cfg.rel_tol = 1e-6;
  cfg.model = &model;
  std::vector<double> x(prob.b.size());
  for (const char* name : {"none", "ddm-lu", "ddm-gnn"}) {
    cfg.preconditioner = name;
    core::SolverSession session;
    session.setup(m, prob, cfg);  // one-time cost, amortized over solves
    std::fill(x.begin(), x.end(), 0.0);
    const auto res = session.solve(prob.b, x);
    std::printf("%-8s: %4d iterations, rel.residual %.2e, setup %.3fs + "
                "solve %.3fs (%s) %s\n",
                name, res.iterations, res.final_relative_residual,
                session.setup_seconds(), res.total_seconds,
                res.method.c_str(), res.converged ? "" : "(not converged)");
    if (!res.converged) return 1;
  }
  return 0;
}
