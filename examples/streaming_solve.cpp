// Streaming service usage: concurrent clients submit right-hand sides
// against TWO cached operators through one core::SolveService, and the
// service merges each operator's traffic into block-solve windows behind
// their backs. Every future still completes individually, with its own
// SolveResult, solution vector, and a receipt of its trip through the
// service (queue wait, window size).
//
// This is the serving pattern the repo's economics point at: setup is paid
// once per operator (via the SessionCache), and concurrent single-RHS
// requests are batched into solve_many block solves — one fused
// preconditioner application per block iteration, however many columns ride
// the window.
//
//   ./streaming_solve [num_clients] [requests_per_client]
#include <cstdio>
#include <cstdlib>
#include <future>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/session_cache.hpp"
#include "core/solve_service.hpp"
#include "fem/poisson.hpp"

using namespace ddmgnn;

namespace {

/// 5-point Laplacian with Dirichlet boundary folded in — the "we only have
/// the matrix" operator, so this example needs no mesh and no model.
la::CsrMatrix grid_laplacian(la::Index side, double diagonal_shift) {
  const la::Index n = side * side;
  la::CooBuilder coo(n, n);
  coo.reserve(static_cast<std::size_t>(n) * 5);
  for (la::Index r = 0; r < side; ++r) {
    for (la::Index c = 0; c < side; ++c) {
      const la::Index i = r * side + c;
      coo.add(i, i, 4.0 + diagonal_shift);
      if (r > 0) coo.add(i, i - side, -1.0);
      if (r + 1 < side) coo.add(i, i + side, -1.0);
      if (c > 0) coo.add(i, i - 1, -1.0);
      if (c + 1 < side) coo.add(i, i + 1, -1.0);
    }
  }
  return std::move(coo).build();
}

}  // namespace

int main(int argc, char** argv) {
  const int clients = argc > 1 ? std::atoi(argv[1]) : 4;
  const int per_client = argc > 2 ? std::atoi(argv[2]) : 8;
  const la::Index side = 48;
  const la::Index n = side * side;

  core::HybridConfig cfg;
  cfg.preconditioner = "ddm-lu";
  cfg.subdomain_target_nodes = 300;
  cfg.rel_tol = 1e-8;
  cfg.track_history = false;

  // The cache owns the prepared sessions; the service owns the batching.
  core::SessionCache cache(/*byte_budget=*/1u << 28);
  core::SolveService svc(cache, {.num_workers = 2, .max_batch = 8,
                                 .max_wait = std::chrono::microseconds(500)});

  // Two distinct operators — a base Laplacian and a shifted one — each with
  // its own admission queue. Requests only batch with same-operator traffic.
  const la::CsrMatrix a0 = grid_laplacian(side, 0.0);
  const la::CsrMatrix a1 = grid_laplacian(side, 0.75);
  const auto op0 = svc.register_operator(a0, cfg);
  const auto op1 = svc.register_operator(a1, cfg);

  std::printf("=== Streaming solve: %d clients x %d requests, 2 operators "
              "(n=%d) ===\n",
              clients, per_client, static_cast<int>(n));

  // Each client thread fires single-RHS requests alternating between the two
  // operators, then harvests its own futures. Submission returns
  // immediately; the solve happens on the service's workers, batched with
  // whatever else arrived in the window.
  std::vector<std::thread> threads;
  std::vector<long> client_iters(static_cast<std::size_t>(clients), 0);
  std::vector<int> client_batched(static_cast<std::size_t>(clients), 0);
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(100 + 13 * static_cast<std::uint64_t>(c));
      std::vector<std::future<core::SolveService::Reply>> futures;
      futures.reserve(static_cast<std::size_t>(per_client));
      for (int i = 0; i < per_client; ++i) {
        std::vector<double> b(n);
        for (double& v : b) v = rng.uniform(-1.0, 1.0);
        auto fut = svc.submit((c + i) % 2 == 0 ? op0 : op1, std::move(b));
        futures.push_back(std::move(*fut));
      }
      long iters = 0;
      int batched = 0;
      for (auto& fut : futures) {
        const core::SolveService::Reply r = fut.get();
        if (!r.result.converged) {
          std::printf("client %d: UNCONVERGED solve\n", c);
        }
        iters += r.result.iterations;
        if (r.batch_columns > 1) ++batched;
      }
      client_iters[static_cast<std::size_t>(c)] = iters;
      client_batched[static_cast<std::size_t>(c)] = batched;
    });
  }
  for (auto& th : threads) th.join();

  for (int c = 0; c < clients; ++c) {
    std::printf("client %d: %d requests, %d rode a batched window, "
                "%ld iterations total\n",
                c, per_client, client_batched[static_cast<std::size_t>(c)],
                client_iters[static_cast<std::size_t>(c)]);
  }
  const core::SolveService::Stats st = svc.stats();
  std::printf("\nservice: %llu submitted, %llu completed, %llu windows "
              "(mean batch %.2f, max %llu), %llu preconditioner applies "
              "(%.1f per solve)\n",
              static_cast<unsigned long long>(st.submitted),
              static_cast<unsigned long long>(st.completed),
              static_cast<unsigned long long>(st.windows),
              st.windows > 0
                  ? static_cast<double>(st.columns) / st.windows
                  : 0.0,
              static_cast<unsigned long long>(st.max_window),
              static_cast<unsigned long long>(st.precond_applies),
              st.completed > 0
                  ? static_cast<double>(st.precond_applies) / st.completed
                  : 0.0);
  return 0;
}
