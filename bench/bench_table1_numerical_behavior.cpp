// Reproduces **Table I — Numerical Behaviour** of the paper: iteration counts
// to reach a relative residual of 1e-6 for PCG-DDM-GNN, PCG-DDM-LU and plain
// CG across problem sizes N, sub-mesh sizes Ns, and overlaps δ.
//
// The sweep keeps the paper's *ratios* (N / training size, Ns / training Ns)
// so that the out-of-distribution structure is identical even when
// DDMGNN_BENCH_SCALE shrinks absolute sizes. Expected shape (paper):
//   * DDM-GNN always converges, within a modest factor of DDM-LU;
//   * both scale mildly in N, unlike CG;
//   * larger overlap converges faster; Ns=0.5x/2x training still works.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/model_zoo.hpp"
#include "core/solver_session.hpp"

int main() {
  using namespace ddmgnn;
  bench::print_header(
      "Table I: iterations to ||r||/||b|| <= 1e-6 (mean±std over problems)");

  const core::ZooSpec spec = core::default_spec(10, 10);
  std::printf("training/caching DSS model (k=10, d=10) ...\n");
  const gnn::DssModel model = core::get_or_train_model(spec);
  const la::Index ns_train = spec.dataset.subdomain_target_nodes;
  const la::Index n_train = spec.dataset.mesh_target_nodes;

  struct Config {
    double n_factor;   // problem size as multiple of the training mesh
    double ns_factor;  // sub-mesh size as multiple of the training sub-mesh
    int overlap;
  };
  const std::vector<Config> configs = {
      {0.4, 1.0, 2}, {0.4, 1.0, 4}, {0.4, 0.5, 2}, {0.4, 2.0, 2},
      {1.0, 1.0, 2}, {1.0, 1.0, 4}, {1.0, 0.5, 2}, {1.0, 2.0, 2},
      {4.5, 1.0, 2}, {4.5, 1.0, 4}, {4.5, 0.5, 2}, {4.5, 2.0, 2},
  };
  const int reps = bench::num_repetitions();

  std::printf("\n%8s %6s %5s %8s | %12s %12s %12s\n", "N", "Ns", "K", "overlap",
              "DDM-GNN", "DDM-LU", "CG");
  std::printf("--------------------------------------------------------------\n");
  for (const auto& c : configs) {
    const la::Index target_n = static_cast<la::Index>(c.n_factor * n_train);
    const la::Index target_ns = static_cast<la::Index>(c.ns_factor * ns_train);
    std::vector<double> it_gnn, it_lu, it_cg, ns_seen, ks;
    double mean_n = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      const std::uint64_t seed = 9000 + 31 * rep;
      auto [m, prob] = bench::make_problem(target_n, seed);
      mean_n += m.num_nodes();
      core::HybridConfig cfg;
      cfg.subdomain_target_nodes = target_ns;
      cfg.overlap = c.overlap;
      cfg.rel_tol = 1e-6;
      cfg.max_iterations = 3000;
      cfg.model = &model;
      cfg.track_history = false;

      cfg.preconditioner = "ddm-gnn";  // defaults to flexible PCG
      const auto rg = bench::run_session(m, prob, cfg);
      it_gnn.push_back(rg.result.iterations);
      ks.push_back(rg.num_subdomains);

      cfg.preconditioner = "ddm-lu";
      const auto rl = bench::run_session(m, prob, cfg);
      it_lu.push_back(rl.result.iterations);

      // CG only once per (N): identical across (Ns, overlap) configs.
      if (c.ns_factor == 1.0 && c.overlap == 2) {
        cfg.preconditioner = "none";
        const auto rc = bench::run_session(m, prob, cfg);
        it_cg.push_back(rc.result.iterations);
      }
    }
    mean_n /= reps;
    const auto sg = bench::stats_of(it_gnn);
    const auto sl = bench::stats_of(it_lu);
    const auto sk = bench::stats_of(ks);
    std::printf("%8.0f %6d %5.0f %8d | %12s %12s %12s\n", mean_n, target_ns,
                sk.mean, c.overlap, bench::pm(sg).c_str(),
                bench::pm(sl).c_str(),
                it_cg.empty() ? "-" : bench::pm(bench::stats_of(it_cg)).c_str());
    std::fflush(stdout);
  }
  std::printf(
      "\npaper shape check: DDM-GNN tracks DDM-LU (small gap), both beat CG\n"
      "by a widening margin as N grows; overlap 4 < overlap 2 iterations.\n");
  return 0;
}
