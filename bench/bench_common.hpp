// Shared helpers for the bench harnesses: problem factories, statistics,
// and scale-dependent sizing. Every bench prints the table/figure it
// reproduces in the paper's layout; DDMGNN_BENCH_SCALE=smoke|default|paper
// selects the sweep sizes (see DESIGN.md §2).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <cstring>
#include <optional>

#include "common/error.hpp"
#include "common/options.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/hybrid_solver.hpp"
#include "core/solver_session.hpp"
#include "fem/poisson.hpp"
#include "la/mm_io.hpp"
#include "mesh/generator.hpp"
#include "obs/metrics.hpp"

namespace ddmgnn::bench {

struct Stats {
  double mean = 0.0;
  double stddev = 0.0;
  int count = 0;
};

inline Stats stats_of(const std::vector<double>& xs) {
  Stats s;
  s.count = static_cast<int>(xs.size());
  if (xs.empty()) return s;
  for (const double x : xs) s.mean += x;
  s.mean /= xs.size();
  for (const double x : xs) s.stddev += (x - s.mean) * (x - s.mean);
  s.stddev = std::sqrt(s.stddev / xs.size());
  return s;
}

inline std::string pm(const Stats& s, int width = 0) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%*.0f±%-3.0f", width, s.mean, s.stddev);
  return buf;
}

/// The latency quantiles every serving-style bench reports, in seconds.
struct Percentiles {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Exact sample percentiles (nearest-rank on a sorted copy). Use when the
/// bench holds every individual latency; prefer the Histogram overload when
/// samples were only accumulated into buckets.
inline Percentiles percentiles_of(std::vector<double> xs) {
  Percentiles p;
  if (xs.empty()) return p;
  std::sort(xs.begin(), xs.end());
  const auto at = [&](double q) {
    const auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(xs.size())));
    return xs[std::min(xs.size() - 1, rank == 0 ? 0 : rank - 1)];
  };
  p.p50 = at(0.50);
  p.p95 = at(0.95);
  p.p99 = at(0.99);
  return p;
}

/// Bucket-interpolated percentiles from an obs histogram (the concurrent
/// accumulation path: clients observe into the histogram, the bench reads
/// quantiles after joining).
inline Percentiles percentiles_of(const obs::Histogram& h) {
  return {h.quantile(0.50), h.quantile(0.95), h.quantile(0.99)};
}

/// Seeded Poisson-process arrival offsets: `count` times (seconds from the
/// trace start, strictly increasing) with exponential inter-arrivals at
/// `rate_per_sec`. The open-loop load generator for service benches —
/// arrivals are scheduled up front, so a slow server cannot slow the
/// offered load (no coordinated omission).
inline std::vector<double> poisson_arrivals(double rate_per_sec, int count,
                                            std::uint64_t seed) {
  DDMGNN_CHECK(rate_per_sec > 0.0, "poisson_arrivals: rate must be > 0");
  Rng rng(seed);
  std::vector<double> at;
  at.reserve(static_cast<std::size_t>(count));
  double t = 0.0;
  for (int i = 0; i < count; ++i) {
    double u = rng.uniform();
    while (u <= 1e-300) u = rng.uniform();
    t += -std::log(u) / rate_per_sec;
    at.push_back(t);
  }
  return at;
}

struct Problem {
  mesh::Mesh m;
  fem::PoissonProblem prob;
};

/// Random-blob Poisson problem at ~`target_nodes`, paper §IV-A data. The
/// domain radius is grown with sqrt(target) at fixed element size, matching
/// the paper's scaling protocol; f/g are rescaled accordingly.
inline Problem make_problem(la::Index target_nodes, std::uint64_t seed) {
  // Unit-scale blob ≈ `base` nodes at the training element size; scale the
  // radius to hit the target with the same elements.
  const mesh::Domain dom = mesh::random_domain(seed);
  const double area = dom.area();
  const double h = std::sqrt(area / (0.8660254 * 1000.0));  // ~1000 @ unit
  const double radius_scale = std::sqrt(target_nodes / 1000.0);
  const mesh::Domain scaled = mesh::random_domain(seed, radius_scale);
  mesh::Mesh m = mesh::generate_mesh(scaled, h, seed);
  const auto q = fem::sample_quadratic_data(seed, radius_scale);
  auto prob = fem::assemble_poisson(
      m, [&](const mesh::Point2& p) { return q.f(p); },
      [&](const mesh::Point2& p) { return q.g(p); });
  return {std::move(m), std::move(prob)};
}

/// A bench problem from either source: the generated FEM mesh (default) or
/// an external MatrixMarket operator (`--matrix file.mtx`, optional
/// `--rhs b.mtx`). `mesh` is engaged only for the FEM source; matrix-sourced
/// problems run through the session's algebraic setup path. `source` feeds
/// the JSON records so perf trajectories can tell operators apart.
struct AnyProblem {
  std::optional<mesh::Mesh> mesh;
  fem::PoissonProblem prob;
  std::string source;  // "fem" or the --matrix path

  la::Index num_nodes() const { return prob.A.rows(); }

  /// setup() through the right path for this problem's source.
  void setup_session(core::SolverSession& session,
                     const core::HybridConfig& cfg) const {
    if (mesh.has_value()) {
      session.setup(*mesh, prob, cfg);
    } else {
      session.setup(prob.A, cfg);
    }
  }
};

/// Value-less boolean flag (e.g. `--require-converged`).
inline bool has_flag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

inline const char* find_flag(int argc, char** argv, const char* name) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return nullptr;
}

/// Honor a `--threads N` flag (overrides DDMGNN_THREADS / OMP defaults for
/// the whole process) and return the effective worker count either way.
inline int apply_thread_flag(int argc, char** argv) {
  if (const char* t = find_flag(argc, argv, "--threads")) {
    const int v = std::atoi(t);
    DDMGNN_CHECK(v > 0, std::string("--threads must be > 0 (got ") + t + ")");
    set_num_threads(v);
  }
  return num_threads();
}

/// `--matrix file.mtx [--rhs b.mtx]` when present, else the generated FEM
/// problem at `target_nodes`. Matrix mode defaults the right-hand side to
/// A·1 (manufactured all-ones solution) and an empty Dirichlet mask.
inline AnyProblem load_or_make_problem(int argc, char** argv,
                                       la::Index target_nodes,
                                       std::uint64_t seed) {
  AnyProblem out;
  const char* matrix_path = find_flag(argc, argv, "--matrix");
  if (matrix_path == nullptr) {
    auto [m, prob] = make_problem(target_nodes, seed);
    out.mesh = std::move(m);
    out.prob = std::move(prob);
    out.source = "fem";
    return out;
  }
  out.prob.A = la::mm::read_matrix(matrix_path);
  DDMGNN_CHECK(out.prob.A.rows() == out.prob.A.cols(),
               std::string("--matrix ") + matrix_path +
                   ": operator must be square");
  const char* rhs_path = find_flag(argc, argv, "--rhs");
  if (rhs_path != nullptr) {
    out.prob.b = la::mm::read_vector(rhs_path);
    DDMGNN_CHECK(out.prob.b.size() ==
                     static_cast<std::size_t>(out.prob.A.rows()),
                 std::string("--rhs ") + rhs_path +
                     ": size does not match the operator");
  } else {
    const std::vector<double> ones(out.prob.A.rows(), 1.0);
    out.prob.b = out.prob.A.apply(ones);
  }
  out.prob.dirichlet.assign(out.prob.A.rows(), 0);
  out.source = matrix_path;
  return out;
}

/// One-shot setup+solve for benches that genuinely solve each system once —
/// exactly what the deprecated facade is for, so delegate to it (suppressing
/// the deprecation warning at this one sanctioned call site). Benches that
/// serve repeated right-hand sides (bench_setup_amortization) hold a
/// SolverSession themselves instead.
using RunReport = core::HybridReport;

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
inline RunReport run_session(const mesh::Mesh& m,
                             const fem::PoissonProblem& prob,
                             const core::HybridConfig& cfg) {
  return core::solve_poisson(m, prob, cfg);
}
#pragma GCC diagnostic pop

/// Minimal JSON emission for bench artifacts: a flat object per record,
/// records written as a JSON array. Values are numbers, booleans or strings.
class JsonRecord {
 public:
  JsonRecord& add(const std::string& key, double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return raw(key, buf);
  }
  JsonRecord& add(const std::string& key, int v) {
    return raw(key, std::to_string(v));
  }
  JsonRecord& add(const std::string& key, bool v) {
    return raw(key, v ? "true" : "false");
  }
  JsonRecord& add(const std::string& key, const std::vector<long>& vs) {
    std::string arr = "[";
    for (std::size_t i = 0; i < vs.size(); ++i) {
      if (i > 0) arr += ",";
      arr += std::to_string(vs[i]);
    }
    return raw(key, arr + "]");
  }
  JsonRecord& add(const std::string& key, const std::string& v) {
    std::string quoted = "\"";
    for (const char c : v) {
      if (c == '"' || c == '\\') quoted += '\\';
      quoted += c;
    }
    return raw(key, quoted + "\"");
  }
  std::string str() const { return "{" + body_ + "}"; }

 private:
  JsonRecord& raw(const std::string& key, const std::string& value) {
    if (!body_.empty()) body_ += ",";
    body_ += "\"" + key + "\":" + value;
    return *this;
  }
  std::string body_;
};

/// The environment stamp every bench JSON carries as its first record, so
/// perf numbers stay interpretable after the fact: effective thread count,
/// build type, and the DDMGNN_BENCH_SCALE preset.
inline JsonRecord meta_record() {
#ifdef DDMGNN_BUILD_TYPE
  const std::string build_type = DDMGNN_BUILD_TYPE;
#else
  const std::string build_type = "unknown";
#endif
  return JsonRecord()
      .add("record", std::string("meta"))
      .add("threads", num_threads())
      .add("build_type", build_type)
      .add("bench_scale", std::string(bench_scale_name()));
}

/// Write records as a JSON array to `path` (usually under artifact_dir()),
/// prefixed with the meta_record() environment stamp.
inline void write_json(const std::string& path,
                       const std::vector<JsonRecord>& records) {
  std::ofstream out(path);
  out << "[\n  " << meta_record().str() << (records.empty() ? "" : ",")
      << "\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    out << "  " << records[i].str() << (i + 1 < records.size() ? "," : "")
        << "\n";
  }
  out << "]\n";
}

/// Number of repeated problems per configuration (paper: 100).
inline int num_repetitions() {
  switch (bench_scale()) {
    case BenchScale::kSmoke: return 2;
    case BenchScale::kPaper: return 100;
    default: return 5;
  }
}

inline void print_header(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s   [scale: %s]\n", title, bench_scale_name());
  std::printf("================================================================\n");
  std::fflush(stdout);
}

}  // namespace ddmgnn::bench
