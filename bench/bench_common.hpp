// Shared helpers for the bench harnesses: problem factories, statistics,
// and scale-dependent sizing. Every bench prints the table/figure it
// reproduces in the paper's layout; DDMGNN_BENCH_SCALE=smoke|default|paper
// selects the sweep sizes (see DESIGN.md §2).
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/options.hpp"
#include "fem/poisson.hpp"
#include "mesh/generator.hpp"

namespace ddmgnn::bench {

struct Stats {
  double mean = 0.0;
  double stddev = 0.0;
  int count = 0;
};

inline Stats stats_of(const std::vector<double>& xs) {
  Stats s;
  s.count = static_cast<int>(xs.size());
  if (xs.empty()) return s;
  for (const double x : xs) s.mean += x;
  s.mean /= xs.size();
  for (const double x : xs) s.stddev += (x - s.mean) * (x - s.mean);
  s.stddev = std::sqrt(s.stddev / xs.size());
  return s;
}

inline std::string pm(const Stats& s, int width = 0) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%*.0f±%-3.0f", width, s.mean, s.stddev);
  return buf;
}

struct Problem {
  mesh::Mesh m;
  fem::PoissonProblem prob;
};

/// Random-blob Poisson problem at ~`target_nodes`, paper §IV-A data. The
/// domain radius is grown with sqrt(target) at fixed element size, matching
/// the paper's scaling protocol; f/g are rescaled accordingly.
inline Problem make_problem(la::Index target_nodes, std::uint64_t seed) {
  // Unit-scale blob ≈ `base` nodes at the training element size; scale the
  // radius to hit the target with the same elements.
  const mesh::Domain dom = mesh::random_domain(seed);
  const double area = dom.area();
  const double h = std::sqrt(area / (0.8660254 * 1000.0));  // ~1000 @ unit
  const double radius_scale = std::sqrt(target_nodes / 1000.0);
  const mesh::Domain scaled = mesh::random_domain(seed, radius_scale);
  mesh::Mesh m = mesh::generate_mesh(scaled, h, seed);
  const auto q = fem::sample_quadratic_data(seed, radius_scale);
  auto prob = fem::assemble_poisson(
      m, [&](const mesh::Point2& p) { return q.f(p); },
      [&](const mesh::Point2& p) { return q.g(p); });
  return {std::move(m), std::move(prob)};
}

/// Number of repeated problems per configuration (paper: 100).
inline int num_repetitions() {
  switch (bench_scale()) {
    case BenchScale::kSmoke: return 2;
    case BenchScale::kPaper: return 100;
    default: return 5;
  }
}

inline void print_header(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s   [scale: %s]\n", title, bench_scale_name());
  std::printf("================================================================\n");
  std::fflush(stdout);
}

}  // namespace ddmgnn::bench
