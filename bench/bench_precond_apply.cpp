// DDM-GNN preconditioner apply-time bench: A/Bs the factorized simd DSS
// inference engine against the scalar reference path in one binary (the
// selector is DssConfig::fast_inference) and reports a per-phase wall-clock
// breakdown (projection / gather / aggregate / update / decode) of the fast
// path so the next perf PR has a trajectory to push against.
//
//   bench_precond_apply [--threads N] [--reps R]
//
// Weights are untrained (apply time is weight-independent) so the bench
// needs no model artifact and runs at smoke scale in CI on every push; the
// JSON lands in DDMGNN_ARTIFACT_DIR/bench_precond_apply.json with the usual
// meta stamp (threads / build type / scale).
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "core/gnn_subdomain_solver.hpp"
#include "gnn/dss_kernels.hpp"
#include "gnn/dss_model.hpp"
#include "la/vector_ops.hpp"
#include "partition/decomposition.hpp"
#include "precond/asm_precond.hpp"

namespace {

using namespace ddmgnn;

la::Index nodes_for_scale() {
  switch (bench_scale()) {
    case BenchScale::kSmoke: return 2000;
    case BenchScale::kPaper: return 40000;
    default: return 10000;
  }
}

int reps_for_scale() {
  switch (bench_scale()) {
    case BenchScale::kSmoke: return 5;
    case BenchScale::kPaper: return 100;
    default: return 30;
  }
}

struct ApplyStats {
  bench::Stats seconds;
  la::Index subdomains = 0;
};

ApplyStats time_applies(const gnn::DssModel& model, const bench::Problem& p,
                        const partition::Decomposition& dec, int reps) {
  core::GnnSubdomainSolver::Options opts;
  auto local = std::make_unique<core::GnnSubdomainSolver>(
      model, p.m, p.prob.dirichlet, opts);
  precond::AdditiveSchwarz ddm(p.prob.A, dec, std::move(local));
  std::vector<double> z(p.prob.b.size());
  // One caller-owned workspace for the whole timing run, exactly like a
  // Krylov solve holds one: applies are allocation-free after the warm-up.
  const auto ws = ddm.make_workspace();
  ddm.apply(p.prob.b, z, ws.get());  // warm-up: workspace buffers, page faults
  std::vector<double> times;
  times.reserve(reps);
  for (int r = 0; r < reps; ++r) {
    Timer t;
    ddm.apply(p.prob.b, z, ws.get());
    times.push_back(t.seconds());
  }
  return {bench::stats_of(times), static_cast<la::Index>(dec.subdomains.size())};
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = bench::apply_thread_flag(argc, argv);
  const int reps =
      bench::find_flag(argc, argv, "--reps")
          ? std::atoi(bench::find_flag(argc, argv, "--reps"))
          : reps_for_scale();
  bench::print_header("DDM-GNN preconditioner apply: factorized vs reference");

  const la::Index nodes = nodes_for_scale();
  bench::Problem p = bench::make_problem(nodes, /*seed=*/7);
  const auto dec = partition::decompose_target_size(
      p.m.adj_ptr(), p.m.adj(), /*target=*/350, /*overlap=*/2, /*seed=*/7);
  gnn::DssConfig cfg;  // paper defaults: k̄=10, d=10, hidden=10
  gnn::DssModel model(cfg, /*seed=*/3);

  std::printf("N=%d  K=%zu  threads=%d  reps=%d  model k=%d d=%d h=%d\n\n",
              p.prob.A.rows(), dec.subdomains.size(), threads, reps,
              cfg.iterations, cfg.latent, cfg.hidden);

  model.set_fast_inference(false);
  const ApplyStats ref = time_applies(model, p, dec, reps);
  model.set_fast_inference(true);
  const ApplyStats fast = time_applies(model, p, dec, reps);
  const double speedup =
      fast.seconds.mean > 0.0 ? ref.seconds.mean / fast.seconds.mean : 0.0;

  std::printf("%-12s %14s %14s\n", "path", "mean ms/apply", "stddev ms");
  std::printf("%-12s %14.3f %14.3f\n", "reference", ref.seconds.mean * 1e3,
              ref.seconds.stddev * 1e3);
  std::printf("%-12s %14.3f %14.3f\n", "fast", fast.seconds.mean * 1e3,
              fast.seconds.stddev * 1e3);
  std::printf("speedup: %.2fx\n\n", speedup);

  // Per-phase breakdown of the fast path: one forward per subdomain graph
  // (what one preconditioner apply does), accumulated over several passes.
  core::GnnSubdomainSolver::Options opts;
  core::GnnSubdomainSolver probe(model, p.m, p.prob.dirichlet, opts);
  {
    std::vector<la::CsrMatrix> locals;
    locals.reserve(dec.subdomains.size());
    for (const auto& nodes_i : dec.subdomains) {
      locals.push_back(p.prob.A.principal_submatrix(nodes_i));
    }
    probe.setup(std::move(locals), dec);
  }
  gnn::DssPhaseProfile prof;
  gnn::DssWorkspace ws;
  std::vector<float> out;
  double ref_forward_seconds = 0.0;
  const int phase_passes = std::max(3, reps / 3);
  for (int pass = 0; pass < phase_passes; ++pass) {
    for (std::size_t i = 0; i < probe.topologies().size(); ++i) {
      const auto& topo = probe.topologies()[i];
      gnn::GraphSample s;
      s.topo = topo;
      s.rhs.assign(topo->n, 1.0 / std::sqrt(static_cast<double>(topo->n)));
      model.set_fast_inference(true);
      model.forward(s, probe.edge_caches()[i].get(), ws, out, &prof);
      model.set_fast_inference(false);
      Timer t;
      model.forward(s, ws, out);
      ref_forward_seconds += t.seconds();
    }
  }
  const double inv = 1.0 / phase_passes;
  std::printf("fast-path phase breakdown (ms per apply, %d subdomain "
              "forwards):\n", fast.subdomains);
  const struct {
    const char* name;
    double seconds;
  } phases[] = {
      {"projection", prof.projection * inv}, {"gather", prof.gather * inv},
      {"aggregate", prof.aggregate * inv},   {"update", prof.update * inv},
      {"decode", prof.decode * inv},
  };
  for (const auto& ph : phases) {
    std::printf("  %-12s %10.3f ms\n", ph.name, ph.seconds * 1e3);
  }
  std::printf("  %-12s %10.3f ms   (reference forwards: %.3f ms)\n", "total",
              prof.total() * inv * 1e3, ref_forward_seconds * inv * 1e3);

  std::vector<bench::JsonRecord> records;
  for (const auto* st : {&ref, &fast}) {
    records.push_back(bench::JsonRecord()
                          .add("record", std::string("apply"))
                          .add("mode", std::string(st == &ref ? "reference"
                                                              : "fast"))
                          .add("nodes", p.prob.A.rows())
                          .add("subdomains", static_cast<int>(st->subdomains))
                          .add("reps", reps)
                          .add("mean_ms", st->seconds.mean * 1e3)
                          .add("stddev_ms", st->seconds.stddev * 1e3));
  }
  records.push_back(bench::JsonRecord()
                        .add("record", std::string("speedup"))
                        .add("value", speedup));
  for (const auto& ph : phases) {
    records.push_back(bench::JsonRecord()
                          .add("record", std::string("phase"))
                          .add("phase", std::string(ph.name))
                          .add("ms_per_apply", ph.seconds * 1e3));
  }
  records.push_back(bench::JsonRecord()
                        .add("record", std::string("phase"))
                        .add("phase", std::string("reference_forward_total"))
                        .add("ms_per_apply", ref_forward_seconds * inv * 1e3));
  std::filesystem::create_directories(artifact_dir());
  const std::string path = artifact_dir() + "/bench_precond_apply.json";
  bench::write_json(path, records);
  std::printf("\nJSON: %s\n", path.c_str());
  return 0;
}
