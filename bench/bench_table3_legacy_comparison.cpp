// Reproduces **Table III — Benchmark to legacy C++ solver**: for growing
// problem sizes N and three subdomain counts K per size, compare
//   IC(0)   — the optimized "legacy" baseline preconditioner,
//   DDM-LU  — two-level ASM with exact (sparse Cholesky) local solves,
//   DDM-GNN — two-level ASM with DSS local solves,
// reporting iterations Niter, total solve time T, and the time spent inside
// the preconditioner (the paper's T_lu / T_gnn columns). Tolerance 1e-3, as
// in the paper.
//
// Expected shape (paper): Niter of the DDM methods is nearly flat in N while
// IC(0) grows; T_gnn dominates DDM-GNN's runtime (inference-bound), keeping
// it slower in wall-clock than the optimized classical solvers on CPU/GPU of
// this class — the paper's own conclusion.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/model_zoo.hpp"
#include "core/solver_session.hpp"

int main() {
  using namespace ddmgnn;
  bench::print_header("Table III: benchmark vs legacy preconditioners (tol 1e-3)");

  const core::ZooSpec spec = core::default_spec(10, 10);
  const gnn::DssModel model = core::get_or_train_model(spec);
  const la::Index ns_train = spec.dataset.subdomain_target_nodes;

  std::vector<double> n_factors;          // multiples of the training mesh
  switch (bench_scale()) {
    case BenchScale::kSmoke: n_factors = {2.0, 5.0}; break;
    case BenchScale::kPaper:
      n_factors = {1.5, 6.0, 14.0, 37.0, 58.0, 87.0};  // 10k..600k @ 7k train
      break;
    default: n_factors = {2.0, 5.0, 12.0, 24.0}; break;
  }
  const std::vector<double> ns_factors = {2.0, 1.0, 0.5};

  std::printf("\n%8s %5s | %22s | %30s | %30s\n", "N", "K", "IC(0)",
              "DDM-LU", "DDM-GNN");
  std::printf("%8s %5s | %10s %11s | %6s %11s %11s | %6s %11s %11s\n", "", "",
              "Niter", "T", "Niter", "T", "T_lu", "Niter", "T", "T_gnn");
  std::printf("-----------------------------------------------------------------"
              "-----------------------------------------\n");
  const std::uint64_t seed = 1777;
  for (const double nf : n_factors) {
    const la::Index target_n = static_cast<la::Index>(
        nf * spec.dataset.mesh_target_nodes);
    auto [m, prob] = bench::make_problem(target_n, seed);
    bool first_row = true;
    for (const double nsf : ns_factors) {
      core::HybridConfig cfg;
      cfg.subdomain_target_nodes = static_cast<la::Index>(nsf * ns_train);
      cfg.overlap = 2;
      cfg.rel_tol = 1e-3;
      cfg.max_iterations = 3000;
      cfg.model = &model;
      cfg.track_history = false;

      cfg.preconditioner = "ddm-lu";
      const auto rl = bench::run_session(m, prob, cfg);

      cfg.preconditioner = "ddm-gnn";
      const auto rg = bench::run_session(m, prob, cfg);

      if (first_row) {
        cfg.preconditioner = "ic0";
        const auto ri = bench::run_session(m, prob, cfg);
        std::printf("%8d %5d | %10d %11.4f | %6d %11.4f %11.4f | %6d %11.4f %11.4f\n",
                    m.num_nodes(), rl.num_subdomains, ri.result.iterations,
                    ri.result.total_seconds, rl.result.iterations,
                    rl.result.total_seconds, rl.result.precond_seconds,
                    rg.result.iterations, rg.result.total_seconds,
                    rg.result.precond_seconds);
        first_row = false;
      } else {
        std::printf("%8s %5d | %10s %11s | %6d %11.4f %11.4f | %6d %11.4f %11.4f\n",
                    "", rl.num_subdomains, "", "", rl.result.iterations,
                    rl.result.total_seconds, rl.result.precond_seconds,
                    rg.result.iterations, rg.result.total_seconds,
                    rg.result.precond_seconds);
      }
      std::fflush(stdout);
    }
  }
  std::printf(
      "\npaper shape check: DDM Niter ~flat in N vs IC(0) growing; T_gnn/T\n"
      "ratio large (inference-bound), DDM-GNN slower in wall-clock than the\n"
      "optimized classical baselines — matching the paper's conclusion.\n");
  return 0;
}
