// Multi-client serving throughput: T client threads hammer ONE prepared
// session out of a shared core::SessionCache with mixed traffic (single-RHS
// solve + batched solve_many) and we report solves/sec vs T.
//
// This is the workload the concurrency rework exists for: the paper's
// economics amortize one expensive setup over many solves, and a service
// front-end amortizes it over many *clients* — which is only sound now that
// apply scratch is caller-owned (per-call workspaces) and the cache is
// stampede-safe. Each client re-fetches its session from the cache every
// round, so the measured path includes the concurrent hit path, exactly as
// a request handler would run it.
//
// Client threads are the parallelism axis here, so the library's inner
// OpenMP parallelism defaults to 1 worker (a real serving box dedicates
// cores to clients, not to nested teams); --threads N overrides.
//
//   ./bench_serving [--threads N] [--clients "1 2 4"] [--ops K]
//                   [--require-converged]
//                   [--trace out.json] [--metrics out.json]
//
// --require-converged makes a non-converged run impossible to misread: the
// bench exits non-zero when any serving record has all_converged:false (CI
// gates on this; throughput stays non-gating).
//
// --trace captures a Chrome trace_event timeline of the whole run (open in
// chrome://tracing or Perfetto); --metrics dumps the obs registry snapshot.
// --trace implies metrics collection so the snapshot can name the dominant
// apply phase (written to artifacts/bench_serving_metrics.json when no
// --metrics path is given).
//
// JSON: artifacts/bench_serving.json (standard meta record first; one
// record per (preconditioner, client count) with p50/p95/p99 per-solve
// latency, plus per-preconditioner cache and failure-reason records).
#include <array>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/model_zoo.hpp"
#include "core/session_cache.hpp"
#include "gnn/dss_model.hpp"
#include "obs/flags.hpp"
#include "obs/forensics.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using namespace ddmgnn;

la::Index nodes_for_scale() {
  switch (bench_scale()) {
    case BenchScale::kSmoke: return 800;
    case BenchScale::kPaper: return 8000;
    default: return 2000;
  }
}

int ops_for_scale() {
  switch (bench_scale()) {
    case BenchScale::kSmoke: return 2;
    case BenchScale::kPaper: return 12;
    default: return 4;
  }
}

struct ServingResult {
  int clients = 0;
  long solves = 0;       // completed right-hand sides (solve_many counts s)
  double seconds = 0.0;
  bool all_converged = true;
  /// Krylov iterations summed over each client's solves (index = client id)
  /// — the per-record audit trail that convergence claims are checked
  /// against, and the first place a per-client outlier shows up.
  std::vector<long> client_iterations;
  double solves_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(solves) / seconds : 0.0;
  }
};

/// Unconverged-solve counts per obs::FailureReason, accumulated across all
/// client counts of one preconditioner (index 0 = kNone stays unused: only
/// failures are tallied).
using FailureTally = std::array<std::atomic<long>, obs::kNumFailureReasons>;

/// T clients × `ops` rounds each against one cached session. Every round:
/// re-fetch the session from the cache (concurrent hit path), then
/// alternate a single solve and a 4-RHS solve_many — the mixed traffic of a
/// request front-end.
ServingResult serve(core::SessionCache& cache, const bench::Problem& p,
                    const core::HybridConfig& cfg, int clients, int ops,
                    obs::Histogram& latency, FailureTally& failures) {
  const std::size_t n = p.prob.b.size();
  std::atomic<long> solves{0};
  std::atomic<bool> all_converged{true};
  std::atomic<int> start_gate{clients};
  // Warm the cache so the timed region measures serving, not the one setup.
  (void)cache.get_or_setup(p.m, p.prob, cfg);

  auto note = [&](const solver::SolveResult& res) {
    if (!res.converged) {
      all_converged.store(false);
      failures[static_cast<std::size_t>(res.failure)].fetch_add(
          1, std::memory_order_relaxed);
    }
  };
  std::vector<long> client_iterations(static_cast<std::size_t>(clients), 0);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  Timer wall;
  for (int t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + 17 * static_cast<std::uint64_t>(t));
      long iters = 0;  // this client's slot only; read after join
      start_gate.fetch_sub(1, std::memory_order_acq_rel);
      while (start_gate.load(std::memory_order_acquire) > 0) {
      }
      for (int op = 0; op < ops; ++op) {
        auto session = cache.get_or_setup(p.m, p.prob, cfg);
        if (op % 2 == 0) {
          std::vector<double> b(n);
          for (double& v : b) v = rng.uniform(-1.0, 1.0);
          std::vector<double> x(n, 0.0);
          Timer op_timer;
          const auto res = session->solve(b, x);
          latency.observe(op_timer.seconds());
          note(res);
          iters += res.iterations;
          solves.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::vector<std::vector<double>> bs(4);
          for (auto& b : bs) {
            b.resize(n);
            for (double& v : b) v = rng.uniform(-1.0, 1.0);
          }
          std::vector<std::vector<double>> xs;
          Timer op_timer;
          const auto results = session->solve_many(bs, xs);
          // Client-experienced latency: every RHS of the batch waits the
          // whole batched call, so each observes the batch wall time.
          const double batch_seconds = op_timer.seconds();
          for (const auto& res : results) {
            latency.observe(batch_seconds);
            note(res);
            iters += res.iterations;
          }
          solves.fetch_add(static_cast<long>(bs.size()),
                           std::memory_order_relaxed);
        }
      }
      client_iterations[static_cast<std::size_t>(t)] = iters;
    });
  }
  for (auto& th : threads) th.join();
  ServingResult r;
  r.clients = clients;
  r.solves = solves.load();
  r.seconds = wall.seconds();
  r.all_converged = all_converged.load();
  r.client_iterations = std::move(client_iterations);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  // Serving default: one OpenMP worker per library call, clients are the
  // parallel axis. --threads restores inner parallelism for hybrid setups.
  if (bench::find_flag(argc, argv, "--threads") == nullptr) {
    set_num_threads(1);
  }
  const int threads = bench::apply_thread_flag(argc, argv);
  const int ops = bench::find_flag(argc, argv, "--ops")
                      ? std::atoi(bench::find_flag(argc, argv, "--ops"))
                      : ops_for_scale();
  const bool require_converged =
      bench::has_flag(argc, argv, "--require-converged");
  const char* trace_path = bench::find_flag(argc, argv, "--trace");
  const char* metrics_path = bench::find_flag(argc, argv, "--metrics");
  if (trace_path != nullptr) obs::set_trace_enabled(true);
  // Tracing without metrics would leave the snapshot (dominant phase,
  // failure counters) empty, so --trace implies metrics collection.
  if (metrics_path != nullptr || trace_path != nullptr) {
    obs::set_metrics_enabled(true);
  }
  std::vector<int> client_counts{1, 2, 4};
  if (const char* spec = bench::find_flag(argc, argv, "--clients")) {
    client_counts.clear();
    std::istringstream in(spec);
    for (int v; in >> v;) client_counts.push_back(v);
  }

  bench::print_header("Multi-client serving: solves/sec vs client threads");
  const la::Index nodes = nodes_for_scale();
  bench::Problem p = bench::make_problem(nodes, /*seed=*/7);
  // The served model is the zoo's trained (k̄=10, d=10) DSS — cached under
  // artifacts/ after the first run. Serving an untrained model here used to
  // make every ddm-gnn solve burn its whole iteration budget and fail, which
  // both corrupted the throughput numbers (each "solve" was max_iterations
  // of work) and hid behind a footnote; convergence is now part of what this
  // bench asserts (--require-converged).
  gnn::DssModel model = core::get_or_train_model(core::default_spec(10, 10));

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("N=%d  inner threads=%d  hw threads=%u  ops/client=%d\n\n",
              p.prob.A.rows(), threads, hw, ops);

  std::vector<bench::JsonRecord> records;
  records.push_back(bench::JsonRecord()
                        .add("record", std::string("config"))
                        .add("nodes", p.prob.A.rows())
                        .add("hw_threads", static_cast<int>(hw))
                        .add("ops_per_client", ops));

  bool any_unconverged = false;
  for (const char* precond : {"ddm-lu", "ddm-gnn"}) {
    const bool is_gnn = std::string(precond) == "ddm-gnn";
    core::HybridConfig cfg;
    cfg.preconditioner = precond;
    cfg.subdomain_target_nodes = 350;
    cfg.rel_tol = 1e-6;
    cfg.max_iterations = 500;
    cfg.track_history = false;
    if (is_gnn) {
      cfg.model = &model;
      // The served configuration: refine-until-contractive setup (with exact
      // Cholesky fallback for subdomains the model cannot contract) plus
      // mixed-precision preconditioner applies. Between them, every solve
      // converges and each iteration gets cheaper — this is the configuration
      // the tier-1 serving_convergence_test pins.
      cfg.gnn_adaptive_refinement = true;
      cfg.precond_fp32 = true;
    }
    // LU solves are ~two orders of magnitude cheaper per RHS; give each
    // client proportionally more rounds so both timed regions are meaningful.
    const int precond_ops = is_gnn ? ops : ops * 10;

    core::SessionCache cache(/*byte_budget=*/1u << 30);
    FailureTally failures{};
    std::printf("%-10s %8s %12s %12s %10s %9s %9s %9s\n", precond, "clients",
                "solves/sec", "seconds", "speedup", "p50(ms)", "p95(ms)",
                "p99(ms)");
    double base = 0.0;
    for (const int clients : client_counts) {
      obs::Histogram latency(obs::default_latency_buckets());
      const ServingResult r =
          serve(cache, p, cfg, clients, precond_ops, latency, failures);
      any_unconverged = any_unconverged || !r.all_converged;
      if (base == 0.0) base = r.solves_per_sec();
      const double speedup = base > 0.0 ? r.solves_per_sec() / base : 0.0;
      const bench::Percentiles q = bench::percentiles_of(latency);
      std::printf("%-10s %8d %12.2f %12.3f %9.2fx %9.2f %9.2f %9.2f%s\n", "",
                  r.clients, r.solves_per_sec(), r.seconds, speedup,
                  q.p50 * 1e3, q.p95 * 1e3, q.p99 * 1e3,
                  r.all_converged ? "" : "  [not all converged]");
      records.push_back(bench::JsonRecord()
                            .add("record", std::string("serving"))
                            .add("preconditioner", std::string(precond))
                            .add("clients", r.clients)
                            .add("ops_per_client", precond_ops)
                            .add("solves", static_cast<int>(r.solves))
                            .add("seconds", r.seconds)
                            .add("solves_per_sec", r.solves_per_sec())
                            .add("speedup_vs_1", speedup)
                            .add("latency_p50_seconds", q.p50)
                            .add("latency_p95_seconds", q.p95)
                            .add("latency_p99_seconds", q.p99)
                            .add("all_converged", r.all_converged)
                            .add("client_iterations", r.client_iterations));
    }
    const auto stats = cache.stats();
    std::printf("%-10s cache: %zu hits / %zu misses / %zu evictions\n", "",
                stats.hits, stats.misses, stats.evictions);
    records.push_back(bench::JsonRecord()
                          .add("record", std::string("cache"))
                          .add("preconditioner", std::string(precond))
                          .add("hits", static_cast<int>(stats.hits))
                          .add("misses", static_cast<int>(stats.misses))
                          .add("evictions", static_cast<int>(stats.evictions)));
    // Failure forensics across all client counts of this preconditioner:
    // which FailureReason the unconverged solves hit, and which dominates
    // (with per-column classification in the block path, a stagnated column
    // now reports as stagnated rather than max-iterations).
    bench::JsonRecord failure_rec;
    failure_rec.add("record", std::string("failures"))
        .add("preconditioner", std::string(precond));
    long total_failures = 0;
    long dominant_count = 0;
    std::string dominant = "none";
    for (int reason = 0; reason < obs::kNumFailureReasons; ++reason) {
      const long c = failures[static_cast<std::size_t>(reason)].load();
      total_failures += c;
      if (reason > 0 && c > dominant_count) {
        dominant_count = c;
        dominant =
            obs::failure_reason_name(static_cast<obs::FailureReason>(reason));
      }
      failure_rec.add(
          std::string("unconverged_") +
              obs::failure_reason_name(static_cast<obs::FailureReason>(reason)),
          static_cast<int>(c));
    }
    failure_rec.add("dominant_reason", dominant);
    if (total_failures > 0) {
      std::printf("%-10s unconverged:", "");
      for (int reason = 1; reason < obs::kNumFailureReasons; ++reason) {
        const long c = failures[static_cast<std::size_t>(reason)].load();
        if (c > 0) {
          std::printf(" %s=%ld",
                      obs::failure_reason_name(
                          static_cast<obs::FailureReason>(reason)),
                      c);
        }
      }
      std::printf("\n");
    }
    std::printf("\n");
    records.push_back(std::move(failure_rec));
  }

  std::filesystem::create_directories(artifact_dir());
  const std::string path = artifact_dir() + "/bench_serving.json";
  bench::write_json(path, records);
  std::printf("JSON: %s\n", path.c_str());
  if (obs::metrics_enabled()) {
    double phase_seconds = 0.0;
    const std::string phase = obs::dominant_phase(&phase_seconds);
    std::printf("dominant apply phase: %s (%.3f s)\n", phase.c_str(),
                phase_seconds);
    const std::string mpath = metrics_path != nullptr
                                  ? std::string(metrics_path)
                                  : artifact_dir() +
                                        "/bench_serving_metrics.json";
    obs::Registry::instance().write_json(mpath);
    std::printf("metrics: %s\n", mpath.c_str());
  }
  if (trace_path != nullptr) {
    obs::TraceRecorder::instance().write_chrome_trace(trace_path);
    std::printf("trace: %s (%zu events dropped)\n", trace_path,
                obs::TraceRecorder::instance().dropped());
  }
  if (require_converged && any_unconverged) {
    std::printf("FAIL: --require-converged and at least one serving record "
                "has all_converged:false (see the failures records above)\n");
    return 1;
  }
  return 0;
}
