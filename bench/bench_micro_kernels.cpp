// Micro-benchmarks of the kernels behind Table III's timings: SpMV, skyline
// Cholesky factor/solve, IC(0) apply, dense coarse solve, MLP forward
// (scalar reference and fused simd kernel), single-subdomain DSS inference
// (factorized and reference paths), and one full ASM preconditioner
// application. These back the T / T_lu / T_gnn decomposition with
// kernel-level numbers. Uses google-benchmark when available and the
// bench_shim fallback timing loop otherwise.
#include "bench_shim.hpp"

#include <cmath>
#include <map>
#include <memory>

#include "bench_common.hpp"
#include "core/gnn_subdomain_solver.hpp"
#include "gnn/dss_model.hpp"
#include "gnn/graph.hpp"
#include "la/ic0.hpp"
#include "la/skyline_cholesky.hpp"
#include "nn/mlp.hpp"
#include "partition/decomposition.hpp"
#include "precond/asm_precond.hpp"

namespace {

using namespace ddmgnn;

bench::Problem& cached_problem(la::Index n) {
  static std::map<la::Index, bench::Problem> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    it = cache.emplace(n, bench::make_problem(n, 7)).first;
  }
  return it->second;
}

void BM_SpMV(benchmark::State& state) {
  const auto& p = cached_problem(static_cast<la::Index>(state.range(0)));
  std::vector<double> x(p.prob.b.size(), 1.0), y(p.prob.b.size());
  for (auto _ : state) {
    p.prob.A.multiply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * p.prob.A.nnz());
}
BENCHMARK(BM_SpMV)->Arg(2000)->Arg(10000)->Arg(40000);

void BM_SkylineFactor(benchmark::State& state) {
  const auto& p = cached_problem(2000);
  const auto dec = partition::decompose_target_size(
      p.m.adj_ptr(), p.m.adj(), static_cast<la::Index>(state.range(0)), 2, 7);
  const auto block = p.prob.A.principal_submatrix(dec.subdomains[0]);
  for (auto _ : state) {
    la::SkylineCholesky f(block, true);
    benchmark::DoNotOptimize(&f);
  }
}
BENCHMARK(BM_SkylineFactor)->Arg(350)->Arg(700)->Arg(1400);

void BM_SkylineSolve(benchmark::State& state) {
  const auto& p = cached_problem(2000);
  const auto dec = partition::decompose_target_size(
      p.m.adj_ptr(), p.m.adj(), static_cast<la::Index>(state.range(0)), 2, 7);
  const auto block = p.prob.A.principal_submatrix(dec.subdomains[0]);
  const la::SkylineCholesky f(block, true);
  std::vector<double> b(block.rows(), 1.0);
  for (auto _ : state) {
    auto x = f.solve(b);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_SkylineSolve)->Arg(350)->Arg(700)->Arg(1400);

void BM_Ic0Apply(benchmark::State& state) {
  const auto& p = cached_problem(static_cast<la::Index>(state.range(0)));
  const la::IncompleteCholesky0 ic(p.prob.A);
  std::vector<double> r(p.prob.b.size(), 1.0), z(r.size());
  for (auto _ : state) {
    ic.apply(r, z);
    benchmark::DoNotOptimize(z.data());
  }
}
BENCHMARK(BM_Ic0Apply)->Arg(10000)->Arg(40000);

void BM_MlpForward(benchmark::State& state) {
  nn::ParameterStore ps;
  nn::Mlp mlp(ps, 23, 10, 10);
  ps.finalize();
  Rng rng(1);
  mlp.init(ps.values(), rng);
  nn::Tensor x(static_cast<int>(state.range(0)), 23), y;
  for (auto& v : x.d) v = static_cast<float>(rng.uniform(-1, 1));
  nn::Mlp::Cache cache;
  for (auto _ : state) {
    mlp.forward(ps.data(), x, y, cache);
    benchmark::DoNotOptimize(y.d.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MlpForward)->Arg(2048)->Arg(8192);

void BM_MlpInferFused(benchmark::State& state) {
  nn::ParameterStore ps;
  nn::Mlp mlp(ps, 23, 10, 10);
  ps.finalize();
  Rng rng(1);
  mlp.init(ps.values(), rng);
  nn::Tensor x(static_cast<int>(state.range(0)), 23), y, hidden;
  for (auto& v : x.d) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto _ : state) {
    mlp.infer(ps.data(), x, y, hidden);
    benchmark::DoNotOptimize(y.d.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MlpInferFused)->Arg(2048)->Arg(8192);

void BM_DssInference(benchmark::State& state) {
  const auto& p = cached_problem(2000);
  const auto dec =
      partition::decompose_target_size(p.m.adj_ptr(), p.m.adj(), 350, 2, 7);
  const auto& nodes = dec.subdomains[0];
  std::vector<mesh::Point2> coords(nodes.size());
  std::vector<std::uint8_t> dirichlet(nodes.size());
  for (std::size_t l = 0; l < nodes.size(); ++l) {
    coords[l] = p.m.points()[nodes[l]];
    dirichlet[l] = p.prob.dirichlet[nodes[l]];
  }
  auto topo = gnn::build_topology(p.prob.A.principal_submatrix(nodes), coords,
                                  dirichlet);
  gnn::DssConfig cfg;
  cfg.iterations = static_cast<int>(state.range(0));
  cfg.latent = static_cast<int>(state.range(1));
  cfg.fast_inference = state.range(2) != 0;  // 1 = factorized, 0 = reference
  const gnn::DssModel model(cfg, 3);
  const auto cache =
      cfg.fast_inference
          ? std::make_unique<gnn::DssEdgeCache>(model.precompute_edges(*topo))
          : nullptr;
  gnn::GraphSample s;
  s.topo = topo;
  s.rhs.assign(topo->n, 1.0 / std::sqrt(static_cast<double>(topo->n)));
  gnn::DssWorkspace ws;
  std::vector<float> out;
  for (auto _ : state) {
    model.forward(s, cache.get(), ws, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_DssInference)
    ->Args({5, 5, 1})
    ->Args({10, 10, 1})
    ->Args({20, 20, 1})
    ->Args({30, 10, 1})
    ->Args({10, 10, 0})
    ->Args({30, 10, 0});

void BM_AsmLuApply(benchmark::State& state) {
  const auto& p = cached_problem(static_cast<la::Index>(state.range(0)));
  const auto dec =
      partition::decompose_target_size(p.m.adj_ptr(), p.m.adj(), 350, 2, 7);
  precond::AdditiveSchwarz ddm(
      p.prob.A, dec, std::make_unique<precond::CholeskySubdomainSolver>());
  std::vector<double> r(p.prob.b.size(), 1.0), z(r.size());
  const auto ws = ddm.make_workspace();
  for (auto _ : state) {
    ddm.apply(r, z, ws.get());
    benchmark::DoNotOptimize(z.data());
  }
}
BENCHMARK(BM_AsmLuApply)->Arg(2000)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
