// Reproduces **Table II — Metrics for DSSθ trained with varying k̄ and d**:
// test-set residual, relative error vs an exact (direct) solve, and the
// parameter count, for k̄ ∈ {5,10,20,30} × d ∈ {5,10,20} (the paper reports
// the 9-cell grid for k̄ ≤ 20 plus the (30,10) row).
//
// Expected shape (paper): metrics improve monotonically-ish with k̄ and d
// while the weight count grows; diminishing returns from d at fixed k̄.
// All sweep models share one harvested dataset and train under a reduced
// per-config budget (cached in the artifact dir afterwards).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/dataset.hpp"
#include "core/model_zoo.hpp"
#include "gnn/metrics.hpp"

int main() {
  using namespace ddmgnn;
  bench::print_header("Table II: DSS metrics vs (k, d)");

  // One dataset for the whole sweep (the paper trains every config on the
  // same 70k-sample corpus).
  core::ZooSpec base = core::default_spec(10, 10);
  const core::DssDataset data = core::generate_dataset(base.dataset);
  std::printf("dataset: %zu samples (train %zu / val %zu / test %zu)\n",
              data.total(), data.train.size(), data.validation.size(),
              data.test.size());

  struct Row {
    int k, d;
  };
  const std::vector<Row> rows = {{5, 5},  {5, 10},  {5, 20},  {10, 5},
                                 {10, 10}, {10, 20}, {20, 5},  {20, 10},
                                 {20, 20}, {30, 10}};

  std::printf("\n%4s %4s | %18s %18s %12s %10s\n", "k", "d", "Residual(RMS)",
              "RelativeError", "NbWeights", "train(s)");
  std::printf("----------------------------------------------------------------------\n");
  for (const auto& row : rows) {
    core::ZooSpec spec = core::default_spec(row.k, row.d);
    // Sweep budget: a third of the flagship budget per config.
    spec.tag += "-sweep";
    spec.training.epochs = std::max(8, spec.training.epochs / 3);
    spec.training.wall_clock_budget_s =
        std::max(10.0, spec.training.wall_clock_budget_s / 3.0);
    gnn::TrainReport report;
    const gnn::DssModel model = core::get_or_train_model(spec, &data, &report);
    const auto metrics = gnn::evaluate_dss(model, data.test);
    std::printf("%4d %4d | %8.4f ± %-7.4f %8.4f ± %-7.4f %12zu %10.1f\n",
                row.k, row.d, metrics.residual_mean, metrics.residual_std,
                metrics.rel_error_mean, metrics.rel_error_std,
                model.num_params(), report.seconds);
    std::fflush(stdout);
  }
  std::printf(
      "\npaper shape check: residual/error improve as k and d grow; weights\n"
      "grow ~linearly in k and ~quadratically in d. (Absolute values are\n"
      "higher than the paper's: CPU-budget training, see EXPERIMENTS.md.)\n");
  return 0;
}
