// Streaming-service latency/throughput under offered load: replay a seeded
// Poisson arrival trace of single-RHS requests against core::SolveService
// and compare dynamic batching (windows close at max_batch columns or the
// window wait) with a solve-per-request baseline (the same service pinned to
// max_batch=1), at a sweep of offered loads.
//
// The load generator is open loop: every arrival time is drawn up front
// (bench::poisson_arrivals) and the injector sleeps until each scheduled
// instant before submitting, so a slow server cannot throttle the offered
// load. Latency is measured scheduled-arrival -> future completion
// (Reply::completed_at), which charges queueing delay to the server instead
// of hiding it — no coordinated omission.
//
// Offered load is expressed in multiples of the measured single-solve
// service rate (1/t1, calibrated per preconditioner on a warm session):
// 0.5x is under-subscribed, >=2x saturates a solve-per-request server, which
// is where dynamic batching pays — queued arrivals merge into block windows
// that cost ONE fused preconditioner apply per block iteration however many
// columns ride it.
//
//   ./bench_service [--threads N] [--requests N] [--loads "0.5 2 4"]
//                   [--precond ddm-gnn|ddm-lu] [--max-batch B]
//                   [--workers W] [--max-wait-us U] [--require-converged]
//
// JSON: artifacts/bench_service.json — one record per (preconditioner,
// load, mode) with p50/p95/p99 latency, solves/sec, mean/max window size,
// and preconditioner applies per solve (the amortization evidence on boxes
// where raw throughput is compute-bound, e.g. 1-core CI), plus a speedup
// record per (preconditioner, load). --require-converged exits non-zero if
// any replayed solve failed to converge.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/model_zoo.hpp"
#include "core/session_cache.hpp"
#include "core/solve_service.hpp"
#include "gnn/dss_model.hpp"

namespace {

using namespace ddmgnn;
using Clock = std::chrono::steady_clock;

la::Index nodes_for_scale() {
  switch (bench_scale()) {
    case BenchScale::kSmoke: return 800;
    case BenchScale::kPaper: return 8000;
    default: return 2000;
  }
}

int requests_for_scale() {
  switch (bench_scale()) {
    case BenchScale::kSmoke: return 12;
    case BenchScale::kPaper: return 240;
    default: return 48;
  }
}

struct ReplayResult {
  double seconds = 0.0;  // trace start -> last completion
  bench::Percentiles latency;
  bool all_converged = true;
  long iterations = 0;
  core::SolveService::Stats stats;
  double solves_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(stats.completed) / seconds
                         : 0.0;
  }
  double mean_batch() const {
    return stats.windows > 0
               ? static_cast<double>(stats.columns) / stats.windows
               : 0.0;
  }
  double applies_per_solve() const {
    return stats.completed > 0
               ? static_cast<double>(stats.precond_applies) / stats.completed
               : 0.0;
  }
};

/// Replay `arrivals` (seconds from trace start) against a fresh service on
/// the cached session for (p, cfg). One injector thread submits on
/// schedule; futures are harvested after injection ends.
ReplayResult replay(core::SessionCache& cache, const bench::Problem& p,
                    const core::HybridConfig& cfg,
                    const core::ServiceConfig& svc_cfg,
                    const std::vector<double>& arrivals,
                    std::uint64_t rhs_seed) {
  const std::size_t n = p.prob.b.size();
  core::SolveService svc(cache, svc_cfg);
  const auto op = svc.register_operator(p.m, p.prob, cfg);

  Rng rng(rhs_seed);
  std::vector<std::vector<double>> rhs(arrivals.size());
  for (auto& b : rhs) {
    b.resize(n);
    for (double& v : b) v = rng.uniform(-1.0, 1.0);
  }

  std::vector<std::future<core::SolveService::Reply>> futures;
  futures.reserve(arrivals.size());
  const auto start = Clock::now();
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const auto due =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(arrivals[i]));
    std::this_thread::sleep_until(due);
    auto fut = svc.submit(op, std::move(rhs[i]));
    futures.push_back(std::move(*fut));  // capacity >= trace: never rejected
  }

  ReplayResult r;
  std::vector<double> latencies;
  latencies.reserve(futures.size());
  Clock::time_point last_done = start;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    core::SolveService::Reply reply = futures[i].get();
    const auto scheduled =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(arrivals[i]));
    latencies.push_back(
        std::chrono::duration<double>(reply.completed_at - scheduled)
            .count());
    last_done = std::max(last_done, reply.completed_at);
    r.all_converged = r.all_converged && reply.result.converged;
    r.iterations += reply.result.iterations;
  }
  r.seconds = std::chrono::duration<double>(last_done - start).count();
  r.latency = bench::percentiles_of(std::move(latencies));
  r.stats = svc.stats();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  // Service workers are the parallel axis; the library's inner OpenMP
  // parallelism defaults to 1 worker as in bench_serving. --threads restores.
  if (bench::find_flag(argc, argv, "--threads") == nullptr) {
    set_num_threads(1);
  }
  const int threads = bench::apply_thread_flag(argc, argv);
  const int requests = bench::find_flag(argc, argv, "--requests")
                           ? std::atoi(bench::find_flag(argc, argv,
                                                        "--requests"))
                           : requests_for_scale();
  const bool require_converged =
      bench::has_flag(argc, argv, "--require-converged");
  std::vector<double> load_multipliers{0.5, 2.0, 4.0};
  if (const char* spec = bench::find_flag(argc, argv, "--loads")) {
    load_multipliers.clear();
    std::istringstream in(spec);
    for (double v; in >> v;) load_multipliers.push_back(v);
  }
  const int max_batch = bench::find_flag(argc, argv, "--max-batch")
                            ? std::atoi(bench::find_flag(argc, argv,
                                                         "--max-batch"))
                            : 16;
  const int workers = bench::find_flag(argc, argv, "--workers")
                          ? std::atoi(bench::find_flag(argc, argv,
                                                       "--workers"))
                          : 2;
  const char* only_precond = bench::find_flag(argc, argv, "--precond");

  bench::print_header(
      "Streaming SolveService: latency/throughput vs offered load");
  const la::Index nodes = nodes_for_scale();
  bench::Problem p = bench::make_problem(nodes, /*seed=*/7);
  gnn::DssModel model = core::get_or_train_model(core::default_spec(10, 10));

  std::printf("N=%d  inner threads=%d  workers=%d  max_batch=%d  "
              "requests/load=%d\n\n",
              p.prob.A.rows(), threads, workers, max_batch, requests);

  std::vector<bench::JsonRecord> records;
  records.push_back(bench::JsonRecord()
                        .add("record", std::string("config"))
                        .add("nodes", p.prob.A.rows())
                        .add("requests_per_load", requests)
                        .add("workers", workers)
                        .add("max_batch", max_batch));

  bool any_unconverged = false;
  for (const char* precond : {"ddm-lu", "ddm-gnn"}) {
    if (only_precond != nullptr && std::string(only_precond) != precond) {
      continue;
    }
    const bool is_gnn = std::string(precond) == "ddm-gnn";
    core::HybridConfig cfg;
    cfg.preconditioner = precond;
    cfg.subdomain_target_nodes = 350;
    cfg.rel_tol = 1e-6;
    cfg.max_iterations = 500;
    cfg.track_history = false;
    if (is_gnn) {
      cfg.model = &model;
      cfg.gnn_adaptive_refinement = true;
      cfg.precond_fp32 = true;
    }

    core::SessionCache cache(/*byte_budget=*/1u << 30);
    // Calibrate the single-solve service rate on a warm session: offered
    // loads are multiples of 1/t1, so "2x" saturates a solve-per-request
    // server on any machine.
    auto session = cache.get_or_setup(p.m, p.prob, cfg);
    const std::size_t n = p.prob.b.size();
    double t1 = 0.0;
    {
      Rng rng(99);
      std::vector<double> b(n);
      for (double& v : b) v = rng.uniform(-1.0, 1.0);
      std::vector<double> x(n, 0.0);
      (void)session->solve(b, x);  // warm run (untimed)
      Timer timer;
      std::fill(x.begin(), x.end(), 0.0);
      (void)session->solve(b, x);
      t1 = timer.seconds();
    }
    const double base_rate = 1.0 / t1;
    // Window wait scaled to the solve cost: long enough to merge arrivals
    // that land while a solve is in flight, short enough not to dominate
    // latency when the system is idle.
    const auto max_wait = std::chrono::microseconds(
        std::clamp(static_cast<long long>(t1 * 0.5e6), 200ll, 20000ll));
    std::printf("%-10s t1=%.3f ms  base rate=%.1f/s  max_wait=%lld us\n",
                precond, t1 * 1e3, base_rate,
                static_cast<long long>(max_wait.count()));
    std::printf("%-10s %6s %9s %12s %9s %9s %9s %7s %9s\n", "", "load",
                "mode", "solves/sec", "p50(ms)", "p95(ms)", "p99(ms)",
                "batch", "apply/slv");

    for (const double mult : load_multipliers) {
      const double rate = mult * base_rate;
      const std::vector<double> arrivals =
          bench::poisson_arrivals(rate, requests, /*seed=*/42);

      core::ServiceConfig batched_cfg;
      batched_cfg.num_workers = workers;
      batched_cfg.max_batch = max_batch;
      batched_cfg.max_wait = max_wait;
      batched_cfg.queue_capacity = static_cast<std::size_t>(requests);
      core::ServiceConfig baseline_cfg = batched_cfg;
      baseline_cfg.max_batch = 1;
      baseline_cfg.max_wait = std::chrono::microseconds(0);

      double batched_rate = 0.0;
      double baseline_rate = 0.0;
      for (const bool batched : {false, true}) {
        const ReplayResult r =
            replay(cache, p, cfg, batched ? batched_cfg : baseline_cfg,
                   arrivals, /*rhs_seed=*/7000 + (batched ? 1 : 0));
        any_unconverged = any_unconverged || !r.all_converged;
        (batched ? batched_rate : baseline_rate) = r.solves_per_sec();
        std::printf(
            "%-10s %5.1fx %9s %12.2f %9.2f %9.2f %9.2f %7.2f %9.1f%s\n", "",
            mult, batched ? "batched" : "baseline", r.solves_per_sec(),
            r.latency.p50 * 1e3, r.latency.p95 * 1e3, r.latency.p99 * 1e3,
            r.mean_batch(), r.applies_per_solve(),
            r.all_converged ? "" : "  [not all converged]");
        records.push_back(
            bench::JsonRecord()
                .add("record", std::string("service"))
                .add("preconditioner", std::string(precond))
                .add("mode", std::string(batched ? "batched" : "baseline"))
                .add("load_multiplier", mult)
                .add("offered_rate_per_sec", rate)
                .add("requests", requests)
                .add("seconds", r.seconds)
                .add("solves_per_sec", r.solves_per_sec())
                .add("latency_p50_seconds", r.latency.p50)
                .add("latency_p95_seconds", r.latency.p95)
                .add("latency_p99_seconds", r.latency.p99)
                .add("windows", static_cast<int>(r.stats.windows))
                .add("mean_batch", r.mean_batch())
                .add("max_window", static_cast<int>(r.stats.max_window))
                .add("precond_applies",
                     static_cast<int>(r.stats.precond_applies))
                .add("applies_per_solve", r.applies_per_solve())
                .add("total_iterations", static_cast<int>(r.iterations))
                .add("all_converged", r.all_converged));
      }
      const double speedup =
          baseline_rate > 0.0 ? batched_rate / baseline_rate : 0.0;
      std::printf("%-10s %5.1fx %9s %11.2fx\n", "", mult, "speedup",
                  speedup);
      records.push_back(bench::JsonRecord()
                            .add("record", std::string("speedup"))
                            .add("preconditioner", std::string(precond))
                            .add("load_multiplier", mult)
                            .add("batched_over_baseline", speedup));
    }
    std::printf("\n");
  }

  std::filesystem::create_directories(artifact_dir());
  const std::string path = artifact_dir() + "/bench_service.json";
  bench::write_json(path, records);
  std::printf("JSON: %s\n", path.c_str());
  if (require_converged && any_unconverged) {
    std::printf("FAIL: --require-converged and at least one replayed solve "
                "did not converge\n");
    return 1;
  }
  return 0;
}
