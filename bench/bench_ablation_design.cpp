// Ablation bench (ours — design choices DESIGN.md calls out, several of which
// the paper motivates but does not quantify):
//   A. §III-A residual normalization on/off — the paper's stagnation argument;
//   B. two-level vs one-level DDM-GNN — the coarse space's scalability claim;
//   C. Dirichlet-flag input channel on/off (our documented deviation);
//   D. inference-time refinement passes 0/1/2/3 (our training-budget
//      compensation knob);
//   E. plain PCG (Alg. 1, as the paper uses) vs flexible PCG for the
//      non-symmetric GNN preconditioner.
#include <cstdio>

#include "bench_common.hpp"
#include "core/dataset.hpp"
#include "core/model_zoo.hpp"
#include "core/solver_session.hpp"
#include "gnn/trainer.hpp"

namespace {

using namespace ddmgnn;

void report(const char* label, const bench::RunReport& rep) {
  std::printf("  %-34s iters=%-6d final=%.2e  T=%.3fs %s\n", label,
              rep.result.iterations, rep.result.final_relative_residual,
              rep.result.total_seconds,
              rep.result.converged ? "" : "(NOT converged)");
  std::fflush(stdout);
}

}  // namespace

int main() {
  using namespace ddmgnn;
  bench::print_header("Ablations: normalization / coarse level / flag / "
                      "refinement / PCG variant");

  core::ZooSpec spec = core::default_spec(10, 10);
  const core::DssDataset data = core::generate_dataset(spec.dataset);
  const gnn::DssModel model = core::get_or_train_model(spec, &data);

  const double nf = bench_scale() == BenchScale::kSmoke ? 1.5 : 4.0;
  auto [m, prob] = bench::make_problem(
      static_cast<la::Index>(nf * spec.dataset.mesh_target_nodes), 404);
  std::printf("problem: N=%d\n\n", m.num_nodes());

  core::HybridConfig cfg;
  cfg.preconditioner = "ddm-gnn";  // non-symmetric: defaults to flexible PCG
  cfg.subdomain_target_nodes = spec.dataset.subdomain_target_nodes;
  cfg.rel_tol = 1e-6;
  cfg.max_iterations = 2500;
  cfg.model = &model;
  cfg.track_history = false;

  std::printf("A. residual normalization (paper's anti-stagnation fix):\n");
  report("normalized (paper)", bench::run_session(m, prob, cfg));
  cfg.gnn_normalize = false;
  report("un-normalized", bench::run_session(m, prob, cfg));
  cfg.gnn_normalize = true;

  std::printf("B. coarse-space level:\n");
  report("two-level (paper)", bench::run_session(m, prob, cfg));
  cfg.preconditioner = "ddm-gnn-1level";
  report("one-level", bench::run_session(m, prob, cfg));
  cfg.preconditioner = "ddm-gnn";

  std::printf("C. Dirichlet-flag input channel (our deviation):\n");
  {
    core::ZooSpec no_flag = spec;
    no_flag.model.dirichlet_flag = false;
    no_flag.tag += "-noflag";
    // Equal (reduced) budgets for a fair pair.
    core::ZooSpec with_flag = spec;
    with_flag.tag += "-flagpair";
    for (core::ZooSpec* s : {&no_flag, &with_flag}) {
      s->training.epochs = std::max(8, s->training.epochs / 3);
      s->training.wall_clock_budget_s =
          std::max(10.0, s->training.wall_clock_budget_s / 3.0);
    }
    const gnn::DssModel m_noflag = core::get_or_train_model(no_flag, &data);
    const gnn::DssModel m_flag = core::get_or_train_model(with_flag, &data);
    cfg.model = &m_flag;
    report("with flag (equal budget)", bench::run_session(m, prob, cfg));
    cfg.model = &m_noflag;
    report("without flag (strict paper arch)",
           bench::run_session(m, prob, cfg));
    cfg.model = &model;
  }

  std::printf("D. inference-time refinement passes:\n");
  for (const int steps : {0, 1, 2, 3}) {
    cfg.gnn_refinement_steps = steps;
    char label[64];
    std::snprintf(label, sizeof(label), "refinement=%d%s", steps,
                  steps == 0 ? " (paper protocol)" : "");
    report(label, bench::run_session(m, prob, cfg));
  }
  cfg.gnn_refinement_steps = 0;

  std::printf("E. Krylov variant for the non-symmetric GNN preconditioner:\n");
  cfg.method = solver::KrylovMethod::kPcg;
  report("plain PCG (Algorithm 1)", bench::run_session(m, prob, cfg));
  cfg.method = solver::KrylovMethod::kFpcg;
  report("flexible PCG (Polak-Ribiere)", bench::run_session(m, prob, cfg));
  cfg.method.reset();

  std::printf("\nreference: DDM-LU on the same problem:\n");
  cfg.preconditioner = "ddm-lu";
  report("ddm-lu", bench::run_session(m, prob, cfg));
  return 0;
}
