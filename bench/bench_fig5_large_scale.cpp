// Reproduces **Fig. 5 — large-scale out-of-distribution test**: a caricatural
// Formula-1 domain with holes (cockpit + wing stripes), far larger than any
// training mesh (paper: 233,246 nodes, 234 subdomains), solved to a relative
// residual of 1e-9 with PCG-DDM-GNN, PCG-DDM-LU and plain CG. Prints the
// residual-vs-iteration series (Fig. 5b) and writes the full curves to CSV.
//
// Expected shape (paper): both DDM methods converge steeply and almost in
// parallel; CG crawls. DDM-GNN keeps converging *below its training
// precision* thanks to the §III-A normalization.
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "bench_common.hpp"
#include "core/model_zoo.hpp"
#include "core/solver_session.hpp"

int main() {
  using namespace ddmgnn;
  bench::print_header("Fig. 5: large-scale F1 domain, convergence to 1e-9");

  const core::ZooSpec spec = core::default_spec(10, 10);
  const gnn::DssModel model = core::get_or_train_model(spec);

  double f1_scale;  // stretches the F1 silhouette; N grows ~quadratically
  switch (bench_scale()) {
    case BenchScale::kSmoke: f1_scale = 0.8; break;
    case BenchScale::kPaper: f1_scale = 3.4; break;  // ≈233k nodes
    default: f1_scale = 1.7; break;                  // ≈60k nodes
  }
  // Element size matching the training distribution of the current scale.
  const mesh::Domain unit_blob = mesh::random_domain(1);
  const double h = std::sqrt(
      unit_blob.area() /
      (0.8660254 * static_cast<double>(spec.dataset.mesh_target_nodes)));
  const mesh::Domain dom = mesh::f1_domain(f1_scale);
  const mesh::Mesh m = mesh::generate_mesh(dom, h, /*seed=*/5);
  const auto q = fem::sample_quadratic_data(5, f1_scale);
  const auto prob = fem::assemble_poisson(
      m, [&](const mesh::Point2& p) { return q.f(p); },
      [&](const mesh::Point2& p) { return q.g(p); });
  std::printf("F1 mesh: %d nodes, %d triangles, %zu holes\n", m.num_nodes(),
              m.num_triangles(), dom.holes.size());

  core::HybridConfig cfg;
  cfg.subdomain_target_nodes = spec.dataset.subdomain_target_nodes;
  cfg.overlap = 2;
  cfg.rel_tol = 1e-9;
  cfg.max_iterations = 20000;
  cfg.model = &model;

  std::error_code ec;
  std::filesystem::create_directories(artifact_dir(), ec);
  std::ofstream csv(artifact_dir() + "/fig5_convergence.csv");
  csv << "method,iteration,rel_residual\n";

  struct Run {
    const char* label;
    const char* precond;
  };
  for (const Run run : {Run{"PCG-DDM-GNN", "ddm-gnn"},
                        Run{"PCG-DDM-LU", "ddm-lu"},
                        Run{"CG", "none"}}) {
    cfg.preconditioner = run.precond;
    const auto rep = bench::run_session(m, prob, cfg);
    std::printf("\n%-12s K=%-4d iters=%-6d final=%.2e  T=%.2fs (precond %.2fs)"
                "  %s\n",
                run.label, rep.num_subdomains, rep.result.iterations,
                rep.result.final_relative_residual, rep.result.total_seconds,
                rep.result.precond_seconds,
                rep.result.converged ? "converged" : "NOT converged");
    // Print a downsampled residual series (the Fig. 5b curve).
    const auto& h5 = rep.result.history;
    const std::size_t step = std::max<std::size_t>(1, h5.size() / 12);
    std::printf("  curve: ");
    for (std::size_t i = 0; i < h5.size(); i += step) {
      std::printf("(%zu, %.1e) ", i, h5[i]);
    }
    if (!h5.empty()) std::printf("(%zu, %.1e)", h5.size() - 1, h5.back());
    std::printf("\n");
    for (std::size_t i = 0; i < h5.size(); ++i) {
      csv << run.label << "," << i << "," << h5[i] << "\n";
    }
    std::fflush(stdout);
  }
  std::printf("\nwrote %s/fig5_convergence.csv\n", artifact_dir().c_str());
  return 0;
}
