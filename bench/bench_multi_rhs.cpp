// Multi-RHS throughput: sequential solve_many loop vs the batched
// block-Krylov engine, at s = 1 / 4 / 16 (/ 64 at paper scale) right-hand
// sides for ddm-lu and ddm-gnn. This is the repository's measurement of the
// paper's batching claim (Eq. 14): amortizing the preconditioner across
// right-hand sides — one SpMM + one disjoint-union DSS inference per block
// iteration, plus the shared search space cutting the iteration count — is
// where the multi-RHS speed lives.
//
// Emits artifacts/bench_multi_rhs.json: one record per (precond, s, mode)
// with wall time, per-RHS throughput, iteration totals and residual checks.
#include <algorithm>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/model_zoo.hpp"
#include "core/solver_session.hpp"
#include "la/vector_ops.hpp"

int main(int argc, char** argv) {
  using namespace ddmgnn;
  bench::print_header(
      "Multi-RHS solve engine: sequential loop vs batched block-Krylov");

  la::Index target_nodes = 2500;
  std::vector<int> sizes{1, 4, 16};
  switch (bench_scale()) {
    case BenchScale::kSmoke:
      target_nodes = 1200;
      sizes = {1, 4};
      break;
    case BenchScale::kPaper:
      target_nodes = 8000;
      sizes = {1, 4, 16, 64};
      break;
    default: break;
  }
  const std::uint64_t seed = 2024;
  // --matrix file.mtx [--rhs b.mtx] swaps the generated FEM problem for an
  // external operator (algebraic setup path) so the perf trajectory can
  // include systems the repo never assembled.
  const bench::AnyProblem any =
      bench::load_or_make_problem(argc, argv, target_nodes, seed);
  const auto& prob = any.prob;
  std::printf("operator: %s, %d nodes, tol 1e-6\n", any.source.c_str(),
              any.num_nodes());

  const core::ZooSpec spec = core::default_spec(10, 10);
  const gnn::DssModel model = core::get_or_train_model(spec);

  const int max_s = sizes.back();
  std::vector<std::vector<double>> all_rhs(max_s);
  {
    Rng rng(seed);
    for (int j = 0; j < max_s; ++j) {
      all_rhs[j].resize(prob.b.size());
      for (std::size_t i = 0; i < all_rhs[j].size(); ++i) {
        all_rhs[j][i] = prob.dirichlet[i] ? 0.0 : rng.uniform(-1.0, 1.0);
      }
    }
  }

  std::vector<bench::JsonRecord> records;
  for (const std::string precond : {std::string("ddm-lu"),
                                    std::string("ddm-gnn")}) {
    core::HybridConfig cfg;
    cfg.preconditioner = precond;
    cfg.subdomain_target_nodes = 300;
    cfg.overlap = 2;
    cfg.rel_tol = 1e-6;
    cfg.max_iterations = 2000;
    cfg.track_history = false;
    cfg.seed = seed;
    if (precond == "ddm-gnn") cfg.model = &model;

    core::SolverSession session;
    any.setup_session(session, cfg);
    std::printf("\n%s: K=%d subdomains (setup %.2fs, shared by both modes)\n",
                precond.c_str(), session.num_subdomains(),
                session.setup_seconds());
    std::printf("  %4s | %10s | %10s | %7s | %9s | %9s\n", "s", "seq [s]",
                "block [s]", "speedup", "seq iters", "blk iters");

    for (const int s : sizes) {
      const std::span<const std::vector<double>> rhs(all_rhs.data(),
                                                     static_cast<std::size_t>(s));
      std::vector<std::vector<double>> xs_seq, xs_blk;

      session.set_block_multi_rhs(false);
      Timer t_seq;
      const auto res_seq = session.solve_many(rhs, xs_seq);
      const double seq_s = t_seq.seconds();

      session.set_block_multi_rhs(true);
      Timer t_blk;
      const auto res_blk = session.solve_many(rhs, xs_blk);
      const double blk_s = t_blk.seconds();

      int seq_iters = 0, blk_iters = 0;
      bool all_ok = true;
      double worst_res = 0.0;
      for (int j = 0; j < s; ++j) {
        seq_iters += res_seq[j].iterations;
        blk_iters = std::max(blk_iters, res_blk[j].iterations);
        all_ok = all_ok && res_seq[j].converged && res_blk[j].converged;
        worst_res = std::max(worst_res,
                             fem::relative_residual(prob.A, rhs[j], xs_blk[j]));
      }
      const double speedup = blk_s > 0.0 ? seq_s / blk_s : 0.0;
      std::printf("  %4d | %10.3f | %10.3f | %6.2fx | %9d | %9d  %s\n", s,
                  seq_s, blk_s, speedup, seq_iters, blk_iters,
                  all_ok ? "" : "NOT CONVERGED");

      bench::JsonRecord rec;
      rec.add("precond", precond)
          .add("source", any.source)
          .add("num_rhs", s)
          .add("nodes", static_cast<int>(any.num_nodes()))
          .add("subdomains", static_cast<int>(session.num_subdomains()))
          .add("seq_seconds", seq_s)
          .add("block_seconds", blk_s)
          .add("speedup", speedup)
          .add("seq_rhs_per_second", seq_s > 0.0 ? s / seq_s : 0.0)
          .add("block_rhs_per_second", blk_s > 0.0 ? s / blk_s : 0.0)
          .add("seq_total_iters", seq_iters)
          .add("block_iters", blk_iters)
          .add("worst_block_rel_residual", worst_res)
          .add("all_converged", all_ok);
      records.push_back(rec);
    }
  }

  const std::string out = artifact_dir() + "/bench_multi_rhs.json";
  bench::write_json(out, records);
  std::printf("\nwrote %s\n", out.c_str());
  return 0;
}
