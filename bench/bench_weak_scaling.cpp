// Weak-scaling study (ours — quantifies the paper's §II-A/§V claim that the
// two-level coarse correction makes the preconditioner scalable in the
// number of subdomains): fix the subdomain size Ns, grow the global problem
// (so K ∝ N), and track iteration counts for one-level vs two-level variants
// of both DDM-LU and DDM-GNN.
//
// Expected shape: one-level iterations grow with K; two-level stays ~flat
// (this is the textbook Schwarz scalability result the Nicolaides coarse
// space provides).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/model_zoo.hpp"
#include "core/solver_session.hpp"

int main() {
  using namespace ddmgnn;
  bench::print_header("Weak scaling in K: one-level vs two-level (fixed Ns)");

  const core::ZooSpec spec = core::default_spec(10, 10);
  const gnn::DssModel model = core::get_or_train_model(spec);

  std::vector<double> n_factors;
  switch (bench_scale()) {
    case BenchScale::kSmoke: n_factors = {1.0, 2.0}; break;
    case BenchScale::kPaper: n_factors = {1.0, 4.0, 16.0, 40.0, 80.0}; break;
    default: n_factors = {1.0, 3.0, 8.0, 16.0}; break;
  }

  std::printf("\n%8s %5s | %10s %10s | %10s %10s\n", "N", "K", "LU-1lvl",
              "LU-2lvl", "GNN-1lvl", "GNN-2lvl");
  std::printf("------------------------------------------------------------\n");
  for (const double nf : n_factors) {
    auto [m, prob] = bench::make_problem(
        static_cast<la::Index>(nf * spec.dataset.mesh_target_nodes), 2222);
    core::HybridConfig cfg;
    cfg.subdomain_target_nodes = spec.dataset.subdomain_target_nodes;
    cfg.rel_tol = 1e-6;
    cfg.max_iterations = 4000;
    cfg.model = &model;
    cfg.track_history = false;
    int iters[4];
    la::Index k = 0;
    int idx = 0;
    for (const char* name :
         {"ddm-lu-1level", "ddm-lu", "ddm-gnn-1level", "ddm-gnn"}) {
      cfg.preconditioner = name;
      const auto rep = bench::run_session(m, prob, cfg);
      iters[idx++] = rep.result.converged ? rep.result.iterations : -1;
      k = rep.num_subdomains;
    }
    std::printf("%8d %5d | %10d %10d | %10d %10d\n", m.num_nodes(), k,
                iters[0], iters[1], iters[2], iters[3]);
    std::fflush(stdout);
  }
  std::printf("\nshape check: the two-level columns stay ~flat as K grows;\n"
              "the one-level columns degrade — the coarse space is what\n"
              "makes the method weakly scalable (paper §II-A, Conclusion).\n");
  return 0;
}
