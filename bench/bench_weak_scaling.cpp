// Weak-scaling study across hierarchy depth (ours — quantifies the paper's
// §II-A/§V claim that the coarse correction makes the preconditioner
// scalable, and extends it to the multi-level question): fix the subdomain
// size Ns, grow the global problem (so K ∝ N), and sweep the coarse-
// hierarchy depth mg_levels = 1..4 for both ddm-lu-ml and ddm-gnn-ml.
//
// mg_levels = 1 is the classic two-level method (one-shot dense Nicolaides
// coarse solve, K×K factor); mg_levels >= 2 replaces it with the smoothed-
// aggregation V-cycle, whose dense factor lives on a far smaller coarsest
// operator. Expected shape: iteration counts stay within a small factor of
// the two-level baseline (the cycle is an approximate coarse solve) while
// the dense-factor bytes collapse as N — and with it K — grows.
//
// Emits artifacts/bench_weak_scaling_multilevel_<threads>core.json with one
// record per (precond, N, mg_levels): per-level rows/nnz, setup vs solve
// seconds, iterations, and the coarse component's memory/dense-factor bytes.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/model_zoo.hpp"
#include "core/solver_session.hpp"
#include "mg/vcycle.hpp"
#include "precond/asm_precond.hpp"

namespace {

double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ddmgnn;
  // Default to one core so committed artifacts are comparable run-to-run;
  // --threads N opts into a wider sweep (reflected in the artifact name).
  if (bench::find_flag(argc, argv, "--threads") == nullptr) set_num_threads(1);
  const int threads = bench::apply_thread_flag(argc, argv);
  bench::print_header(
      "Weak scaling across hierarchy depth: mg_levels 1..4 (fixed Ns)");

  const core::ZooSpec spec = core::default_spec(10, 10);
  const gnn::DssModel model = core::get_or_train_model(spec);

  std::vector<double> n_factors;
  switch (bench_scale()) {
    case BenchScale::kSmoke: n_factors = {1.0, 2.0}; break;
    case BenchScale::kPaper: n_factors = {1.0, 4.0, 16.0, 40.0, 80.0}; break;
    default: n_factors = {1.0, 3.0, 8.0, 16.0}; break;
  }
  const std::vector<int> level_sweep = {1, 2, 3, 4};

  std::vector<bench::JsonRecord> records;
  // iters[precond][n_index][mg_levels] for the closing shape check.
  int baseline_iters[2] = {0, 0};
  int three_level_iters[2] = {0, 0};
  std::size_t baseline_factor_bytes[2] = {0, 0};
  std::size_t three_level_factor_bytes[2] = {0, 0};

  for (std::size_t ni = 0; ni < n_factors.size(); ++ni) {
    auto [m, prob] = bench::make_problem(
        static_cast<la::Index>(n_factors[ni] *
                               spec.dataset.mesh_target_nodes),
        2222);
    const bool largest = ni + 1 == n_factors.size();
    std::printf("\nN=%d\n", m.num_nodes());
    std::printf("%12s %7s | %6s %9s %9s | %12s %12s | %s\n", "precond",
                "levels", "iters", "setup_s", "solve_s", "coarse_bytes",
                "factor_bytes", "level rows");
    int pi = 0;
    for (const char* name : {"ddm-lu-ml", "ddm-gnn-ml"}) {
      for (const int levels : level_sweep) {
        core::HybridConfig cfg;
        cfg.preconditioner = name;
        cfg.subdomain_target_nodes = spec.dataset.subdomain_target_nodes;
        cfg.rel_tol = 1e-6;
        cfg.max_iterations = 4000;
        cfg.model = &model;
        cfg.track_history = false;
        cfg.mg_levels = levels;

        core::SolverSession session;
        session.setup(m, prob, cfg);
        std::vector<double> x(m.num_nodes(), 0.0);
        const double t0 = now_seconds();
        const solver::SolveResult res = session.solve(prob.b, x);
        const double solve_seconds = now_seconds() - t0;

        const auto* schwarz = dynamic_cast<const precond::AdditiveSchwarz*>(
            &session.preconditioner());
        DDMGNN_CHECK(schwarz != nullptr && schwarz->coarse_component(),
                     "weak-scaling bench expects a two-or-more-level ASM");
        const partition::CoarseComponent& coarse =
            *schwarz->coarse_component();
        std::vector<long> level_rows, level_nnz;
        if (const auto* cycle = dynamic_cast<const mg::VCycle*>(&coarse)) {
          for (const la::Index r : cycle->hierarchy().level_rows())
            level_rows.push_back(r);
          for (const la::Offset z : cycle->hierarchy().level_nnz())
            level_nnz.push_back(z);
        } else {
          // Nicolaides: a two-level method — fine grid plus the K×K coarse
          // operator (dense, so nnz = K²).
          const long k = session.num_subdomains();
          level_rows = {static_cast<long>(m.num_nodes()), k};
          level_nnz = {static_cast<long>(prob.A.nnz()), k * k};
        }

        records.push_back(
            bench::JsonRecord()
                .add("record", std::string("run"))
                .add("precond", std::string(name))
                .add("coarse", coarse.name())
                .add("n", m.num_nodes())
                .add("k", static_cast<int>(session.num_subdomains()))
                .add("mg_levels", levels)
                .add("level_rows", level_rows)
                .add("level_nnz", level_nnz)
                .add("setup_seconds", session.setup_seconds())
                .add("solve_seconds", solve_seconds)
                .add("precond_seconds", res.precond_seconds)
                .add("iters", res.iterations)
                .add("converged", res.converged)
                .add("rel_residual", res.final_relative_residual)
                .add("coarse_memory_bytes",
                     static_cast<double>(coarse.memory_bytes()))
                .add("dense_factor_bytes",
                     static_cast<double>(coarse.dense_factor_bytes())));

        std::string rows_str;
        for (std::size_t i = 0; i < level_rows.size(); ++i)
          rows_str += (i ? ">" : "") + std::to_string(level_rows[i]);
        std::printf("%12s %7d | %6d %9.3f %9.3f | %12zu %12zu | %s%s\n", name,
                    levels, res.converged ? res.iterations : -1,
                    session.setup_seconds(), solve_seconds,
                    coarse.memory_bytes(), coarse.dense_factor_bytes(),
                    rows_str.c_str(), res.converged ? "" : "  (DIVERGED)");
        std::fflush(stdout);

        if (largest && levels == 1) {
          baseline_iters[pi] = res.converged ? res.iterations : -1;
          baseline_factor_bytes[pi] = coarse.dense_factor_bytes();
        }
        if (largest && levels == 2) {  // 3-level method counting the fine grid
          three_level_iters[pi] = res.converged ? res.iterations : -1;
          three_level_factor_bytes[pi] = coarse.dense_factor_bytes();
        }
      }
      ++pi;
    }
  }

  std::error_code ec;
  std::filesystem::create_directories(artifact_dir(), ec);
  const std::string path = artifact_dir() + "/bench_weak_scaling_multilevel_" +
                           std::to_string(threads) + "core.json";
  bench::write_json(path, records);
  std::printf("\nwrote %s\n", path.c_str());

  // Shape check at the largest N: the 3-level method (mg_levels=2) should
  // converge within 1.2x the two-level iteration count while its dense
  // coarsest factor is far smaller than the K×K Nicolaides factor.
  bool ok = true;
  const char* names[2] = {"ddm-lu-ml", "ddm-gnn-ml"};
  for (int i = 0; i < 2; ++i) {
    const bool iters_ok =
        three_level_iters[i] > 0 && baseline_iters[i] > 0 &&
        three_level_iters[i] <= (baseline_iters[i] * 12 + 9) / 10;
    const bool bytes_ok =
        three_level_factor_bytes[i] < baseline_factor_bytes[i];
    std::printf("%s largest-N: 3-level iters %d vs 2-level %d (<=1.2x: %s), "
                "dense factor %zu vs %zu bytes (smaller: %s)\n",
                names[i], three_level_iters[i], baseline_iters[i],
                iters_ok ? "yes" : "NO", three_level_factor_bytes[i],
                baseline_factor_bytes[i], bytes_ok ? "yes" : "NO");
    ok = ok && iters_ok && bytes_ok;
  }
  if (bench::has_flag(argc, argv, "--require-shape") && !ok) {
    std::printf("FAIL: multi-level shape check\n");
    return 1;
  }
  return 0;
}
