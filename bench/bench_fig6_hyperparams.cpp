// Reproduces **Fig. 6 — impact of DSS hyper-parameters on performance**:
// for every (k̄, d) model of the Table II sweep, solve a fixed Poisson
// problem (paper: N = 10,000) with PCG-DDM-GNN and report
//   (a) the mean inference time of one preconditioner application — the
//       paper's "time to solve a batch of local problems" — plus
//   (b) the total elapsed solve time, alongside the iteration count.
//
// Expected shape (paper): bigger models are more accurate (fewer iterations)
// but cost more per application; the total-time optimum sits at a mid-size
// model (paper: k̄=10, d=10), not at the most accurate one.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/model_zoo.hpp"
#include "core/solver_session.hpp"

int main() {
  using namespace ddmgnn;
  bench::print_header("Fig. 6: hyper-parameter impact on solve performance");

  core::ZooSpec base = core::default_spec(10, 10);
  const core::DssDataset data = core::generate_dataset(base.dataset);

  const double n_factor = bench_scale() == BenchScale::kSmoke ? 2.0 : 4.5;
  const la::Index target_n =
      static_cast<la::Index>(n_factor * base.dataset.mesh_target_nodes);
  auto [m, prob] = bench::make_problem(target_n, /*seed=*/66);
  std::printf("problem: N=%d nodes (paper: 10,000)\n", m.num_nodes());

  struct Row {
    int k, d;
  };
  const std::vector<Row> rows = {{5, 5},  {5, 10},  {5, 20},  {10, 5},
                                 {10, 10}, {10, 20}, {20, 5},  {20, 10},
                                 {20, 20}, {30, 10}};

  std::printf("\n%4s %4s | %10s | %6s | %14s | %12s\n", "k", "d", "weights",
              "iters", "T_inf/apply(s)", "T_total(s)");
  std::printf("---------------------------------------------------------------\n");
  double best_time = 1e300;
  int best_k = 0, best_d = 0;
  for (const auto& row : rows) {
    core::ZooSpec spec = core::default_spec(row.k, row.d);
    spec.tag += "-sweep";  // shares the Table II cache
    spec.training.epochs = std::max(8, spec.training.epochs / 3);
    spec.training.wall_clock_budget_s =
        std::max(10.0, spec.training.wall_clock_budget_s / 3.0);
    const gnn::DssModel model = core::get_or_train_model(spec, &data);

    core::HybridConfig cfg;
    cfg.preconditioner = "ddm-gnn";
    cfg.subdomain_target_nodes = base.dataset.subdomain_target_nodes;
    cfg.rel_tol = 1e-6;
    cfg.max_iterations = 3000;
    cfg.model = &model;
    cfg.track_history = false;
    const auto rep = bench::run_session(m, prob, cfg);
    const double per_apply =
        rep.result.precond_seconds /
        std::max(1, rep.result.iterations + 1);  // z0 + one per iteration
    std::printf("%4d %4d | %10zu | %6d | %14.5f | %12.3f %s\n", row.k, row.d,
                model.num_params(), rep.result.iterations, per_apply,
                rep.result.total_seconds,
                rep.result.converged ? "" : "(NOT converged)");
    if (rep.result.converged && rep.result.total_seconds < best_time) {
      best_time = rep.result.total_seconds;
      best_k = row.k;
      best_d = row.d;
    }
    std::fflush(stdout);
  }
  std::printf("\nbest total time: k=%d d=%d (%.3fs) — paper finds the optimum\n"
              "at a mid-size model (k=10, d=10), not the most accurate one.\n",
              best_k, best_d, best_time);
  return 0;
}
