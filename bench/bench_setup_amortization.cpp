// Setup-amortization micro-bench (ours — quantifies the economics the
// SolverSession API exists for): for ddm-lu and ddm-gnn, open one session,
// pay setup (partition + factorizations/DSS graphs + coarse space) once,
// then serve N=10 fresh right-hand sides on the same operator — the
// time-stepping / pressure-projection production pattern. Reports setup
// seconds vs mean per-solve seconds and the break-even solve count, and
// writes the records as JSON via bench_common.hpp.
#include <cstdio>
#include <filesystem>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "core/model_zoo.hpp"
#include "core/solver_session.hpp"

int main(int argc, char** argv) {
  using namespace ddmgnn;
  bench::print_header(
      "Setup amortization: one setup, N=10 right-hand sides per session");

  const core::ZooSpec spec = core::default_spec(10, 10);
  const gnn::DssModel model = core::get_or_train_model(spec);

  const double nf = bench_scale() == BenchScale::kSmoke ? 1.5 : 4.0;
  // --matrix file.mtx [--rhs b.mtx] benches an external operator through the
  // algebraic setup path instead of the generated FEM problem.
  const bench::AnyProblem any = bench::load_or_make_problem(
      argc, argv,
      static_cast<la::Index>(nf * spec.dataset.mesh_target_nodes), 808);
  const auto& prob = any.prob;
  std::printf("problem: %s, N=%d nodes\n", any.source.c_str(),
              any.num_nodes());

  // N fresh interior right-hand sides on the same operator.
  constexpr int kNumRhs = 10;
  std::vector<std::vector<double>> rhs(kNumRhs);
  Rng rng(99);
  for (auto& b : rhs) {
    b.resize(prob.b.size());
    for (std::size_t i = 0; i < b.size(); ++i) {
      b[i] = prob.dirichlet[i] ? 0.0 : rng.uniform(-1.0, 1.0);
    }
  }

  std::vector<bench::JsonRecord> records;
  std::printf("\n%-8s %5s | %10s | %12s %8s | %10s\n", "precond", "K",
              "setup(s)", "solve(s)", "iters", "break-even");
  std::printf("----------------------------------------------------------------\n");
  for (const char* name : {"ddm-lu", "ddm-gnn"}) {
    core::HybridConfig cfg;
    cfg.preconditioner = name;
    cfg.subdomain_target_nodes = spec.dataset.subdomain_target_nodes;
    cfg.rel_tol = 1e-6;
    cfg.max_iterations = 3000;
    cfg.model = &model;
    cfg.track_history = false;

    core::SolverSession session;
    any.setup_session(session, cfg);

    std::vector<std::vector<double>> xs;
    const auto results = session.solve_many(rhs, xs);
    std::vector<double> solve_s, iters;
    bool all_converged = true;
    for (const auto& r : results) {
      solve_s.push_back(r.total_seconds);
      iters.push_back(r.iterations);
      all_converged = all_converged && r.converged;
    }
    const auto st = bench::stats_of(solve_s);
    const auto si = bench::stats_of(iters);
    // Solves after which the amortized one-time setup is cheaper than paying
    // setup per call (i.e. setup/solve ratio — what the one-shot facade
    // charged every single call).
    const double break_even = session.setup_seconds() / std::max(st.mean, 1e-12);
    std::printf("%-8s %5d | %10.4f | %7.4f±%-4.4f %5.0f±%-3.0f | %9.1fx %s\n",
                name, session.num_subdomains(), session.setup_seconds(),
                st.mean, st.stddev, si.mean, si.stddev, break_even,
                all_converged ? "" : "(NOT converged)");
    std::fflush(stdout);

    bench::JsonRecord rec;
    rec.add("precond", std::string(name))
        .add("source", any.source)
        .add("nodes", any.num_nodes())
        .add("num_subdomains", session.num_subdomains())
        .add("num_rhs", kNumRhs)
        .add("setup_seconds", session.setup_seconds())
        .add("solve_seconds_mean", st.mean)
        .add("solve_seconds_std", st.stddev)
        .add("iterations_mean", si.mean)
        .add("all_converged", all_converged);
    records.push_back(rec);
  }

  std::error_code ec;
  std::filesystem::create_directories(artifact_dir(), ec);
  const std::string path = artifact_dir() + "/bench_setup_amortization.json";
  bench::write_json(path, records);
  std::printf("\nwrote %s\n", path.c_str());
  std::printf("shape check: per-solve cost is a small fraction of setup — the\n"
              "session API amortizes what the one-shot facade re-paid per "
              "call.\n");
  return 0;
}
