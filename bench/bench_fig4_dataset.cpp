// Reproduces **Fig. 4 — dataset illustration**: one generated global domain
// (paper: 7420 nodes) and its partition into 8 sub-meshes. This harness
// prints the partition statistics and dumps the geometry + ownership to CSV
// files in the artifact directory so the figure can be plotted externally
// (e.g. `python -c "..."` or gnuplot).
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "bench_common.hpp"
#include "partition/decomposition.hpp"

int main() {
  using namespace ddmgnn;
  bench::print_header("Fig. 4: global domain + partition into 8 sub-meshes");

  const la::Index target =
      bench_scale() == BenchScale::kSmoke ? 1500 : 7420;  // paper's Fig. 4a
  auto [m, prob] = bench::make_problem(target, /*seed=*/4);
  const auto dec = partition::decompose(m.adj_ptr(), m.adj(), 8, 2, 4);

  std::printf("global mesh: %d nodes, %d triangles, %d boundary nodes, "
              "diameter≈%d\n",
              m.num_nodes(), m.num_triangles(), m.num_boundary_nodes(),
              m.diameter_estimate());
  std::printf("partition: K=%d, overlap=2, balance ratio %.3f\n",
              dec.num_parts, partition::balance_ratio(dec));
  std::printf("\n%6s %12s %16s %14s\n", "part", "core nodes", "overlap nodes",
              "total nodes");
  std::vector<la::Index> core(dec.num_parts, 0);
  for (const la::Index p : dec.owner) ++core[p];
  for (la::Index p = 0; p < dec.num_parts; ++p) {
    const auto total = static_cast<la::Index>(dec.subdomains[p].size());
    std::printf("%6d %12d %16d %14d\n", p, core[p], total - core[p], total);
  }

  std::error_code ec;
  std::filesystem::create_directories(artifact_dir(), ec);
  const std::string mesh_path = artifact_dir() + "/fig4_mesh.txt";
  const std::string part_path = artifact_dir() + "/fig4_partition.csv";
  m.dump(mesh_path);
  std::ofstream part(part_path);
  part << "node,x,y,owner\n";
  for (la::Index v = 0; v < m.num_nodes(); ++v) {
    part << v << "," << m.points()[v].x << "," << m.points()[v].y << ","
         << dec.owner[v] << "\n";
  }
  std::printf("\nwrote %s and %s (plot owner as color to reproduce Fig. 4b)\n",
              mesh_path.c_str(), part_path.c_str());
  return 0;
}
