// google-benchmark compatibility shim: when the real library is available
// (CMake defines DDMGNN_HAVE_GBENCH) this header is just a pass-through;
// otherwise it provides the small subset of the benchmark API that
// bench_micro_kernels uses — State iteration, ->Arg()/->Args() registration,
// DoNotOptimize, SetItemsProcessed — backed by a bench_common-style timing
// loop. Numbers from the fallback are wall-clock means without gbench's
// statistical repetitions; good enough for trajectory tracking on machines
// without the dependency.
#pragma once

#ifdef DDMGNN_HAVE_GBENCH

#include <benchmark/benchmark.h>

#else  // fallback timing loop

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/timer.hpp"

namespace benchmark {

class State {
 public:
  explicit State(std::vector<std::int64_t> args, double min_seconds = 0.25)
      : args_(std::move(args)), min_seconds_(min_seconds) {}

  struct iterator {
    State* state;
    bool operator!=(const iterator&) const { return state->keep_running(); }
    void operator++() {}
    int operator*() const { return 0; }
  };
  iterator begin() { return {this}; }
  iterator end() { return {this}; }

  std::int64_t range(std::size_t i = 0) const { return args_.at(i); }
  std::int64_t iterations() const { return iters_; }
  void SetItemsProcessed(std::int64_t n) { items_ = n; }

  double elapsed_seconds() const { return elapsed_; }
  std::int64_t items_processed() const { return items_; }

 private:
  bool keep_running() {
    if (!started_) {
      started_ = true;
      iters_ = 0;
      timer_.reset();
      return true;
    }
    ++iters_;
    if (timer_.seconds() < min_seconds_) return true;
    elapsed_ = timer_.seconds();
    return false;
  }

  std::vector<std::int64_t> args_;
  double min_seconds_;
  bool started_ = false;
  std::int64_t iters_ = 0;
  std::int64_t items_ = 0;
  double elapsed_ = 0.0;
  ddmgnn::Timer timer_;
};

template <typename T>
inline void DoNotOptimize(T const& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

namespace internal {

struct Benchmark {
  std::string name;
  void (*fn)(State&);
  std::vector<std::vector<std::int64_t>> arg_sets;

  Benchmark* Arg(std::int64_t a) {
    arg_sets.push_back({a});
    return this;
  }
  Benchmark* Args(std::vector<std::int64_t> as) {
    arg_sets.push_back(std::move(as));
    return this;
  }
};

inline std::vector<Benchmark>& registry() {
  static std::vector<Benchmark> r;
  return r;
}

inline Benchmark* Register(const char* name, void (*fn)(State&)) {
  registry().push_back(Benchmark{name, fn, {}});
  return &registry().back();
}

inline int RunAll() {
  std::printf("%-40s %15s %12s %15s\n", "benchmark (fallback timing loop)",
              "time/iter", "iters", "items/s");
  for (auto& b : registry()) {
    auto arg_sets = b.arg_sets;
    if (arg_sets.empty()) arg_sets.push_back({});
    for (const auto& args : arg_sets) {
      State state(args);
      b.fn(state);
      std::string label = b.name;
      for (const auto a : args) label += "/" + std::to_string(a);
      const double per_iter =
          state.iterations() > 0
              ? state.elapsed_seconds() / static_cast<double>(state.iterations())
              : 0.0;
      char rate[32] = "-";
      if (state.items_processed() > 0 && state.elapsed_seconds() > 0.0) {
        std::snprintf(rate, sizeof(rate), "%.3g",
                      static_cast<double>(state.items_processed()) /
                          state.elapsed_seconds());
      }
      std::printf("%-40s %12.0f ns %12lld %15s\n", label.c_str(),
                  per_iter * 1e9, static_cast<long long>(state.iterations()),
                  rate);
      std::fflush(stdout);
    }
  }
  return 0;
}

}  // namespace internal
}  // namespace benchmark

#define DDMGNN_BENCH_CONCAT2(a, b) a##b
#define DDMGNN_BENCH_CONCAT(a, b) DDMGNN_BENCH_CONCAT2(a, b)
#define BENCHMARK(fn)                                    \
  static ::benchmark::internal::Benchmark*               \
      DDMGNN_BENCH_CONCAT(bench_reg_, fn) =              \
          ::benchmark::internal::Register(#fn, fn)

#define BENCHMARK_MAIN() \
  int main() { return ::benchmark::internal::RunAll(); }

#endif  // DDMGNN_HAVE_GBENCH
