#include "partition/aggregate.hpp"

#include "common/error.hpp"

namespace ddmgnn::partition {

Aggregation aggregate(const la::CsrMatrix& a, la::Index target_size) {
  DDMGNN_CHECK(a.rows() == a.cols(), "aggregate: matrix must be square");
  DDMGNN_CHECK(target_size >= 1, "aggregate: target_size must be >= 1");
  const la::Index n = a.rows();
  const auto row_ptr = a.row_ptr();
  const auto col_idx = a.col_idx();

  Aggregation out;
  out.assignment.assign(static_cast<std::size_t>(n), -1);
  auto& agg = out.assignment;
  la::Index next = 0;

  // Pass 1: a node with a fully unassigned neighborhood seeds an aggregate
  // and absorbs up to target_size-1 neighbors (in column order).
  for (la::Index i = 0; i < n; ++i) {
    if (agg[i] != -1) continue;
    bool free_neighborhood = true;
    for (la::Offset k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      const la::Index j = col_idx[k];
      if (j != i && agg[j] != -1) {
        free_neighborhood = false;
        break;
      }
    }
    if (!free_neighborhood) continue;
    agg[i] = next;
    la::Index size = 1;
    for (la::Offset k = row_ptr[i]; k < row_ptr[i + 1] && size < target_size;
         ++k) {
      const la::Index j = col_idx[k];
      if (j == i) continue;
      agg[j] = next;
      ++size;
    }
    ++next;
  }

  // Pass 2: unassigned nodes join the aggregate of their first assigned
  // neighbor (column order makes the choice deterministic).
  for (la::Index i = 0; i < n; ++i) {
    if (agg[i] != -1) continue;
    for (la::Offset k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      const la::Index j = col_idx[k];
      if (j != i && agg[j] != -1) {
        agg[i] = agg[j];
        break;
      }
    }
  }

  // Pass 3: isolated leftovers become singleton aggregates.
  for (la::Index i = 0; i < n; ++i) {
    if (agg[i] == -1) agg[i] = next++;
  }

  out.num_aggregates = next;
  return out;
}

}  // namespace ddmgnn::partition
