// The coarse-correction seam of the Additive Schwarz preconditioner
// (paper Eq. 7, first term): anything that can add a coarse correction
//   z += B_c r
// to the fine-level vector. Two implementations exist: the classic one-shot
// NicolaidesCoarseSpace (dense K×K factor, the two-level method) and
// mg::VCycle (recursive smoothed-aggregation hierarchy, the L-level method).
//
// Contract: implementations are immutable after construction and apply_add /
// apply_add_many allocate any scratch they need per call, so one component
// may serve concurrent clients (the same rule as Preconditioner workspaces).
// apply_add_many must match apply_add bitwise per column — block Krylov
// lockstep equivalence depends on it.
#pragma once

#include <cstddef>
#include <span>
#include <string>

#include "la/multivector.hpp"

namespace ddmgnn::partition {

class CoarseComponent {
 public:
  virtual ~CoarseComponent() = default;

  /// z += B_c r on the fine level.
  virtual void apply_add(std::span<const double> r, std::span<double> z)
      const = 0;

  /// Block form; default loops columns (bitwise-identical by construction).
  virtual void apply_add_many(const la::MultiVector& r,
                              la::MultiVector& z) const {
    for (la::Index j = 0; j < r.cols(); ++j) apply_add(r.col(j), z.col(j));
  }

  virtual std::string name() const = 0;

  /// Whether B_c is symmetric positive (PCG-safe).
  virtual bool is_symmetric() const { return true; }

  /// Bytes retained after setup (factors, level operators, transfer ops).
  virtual std::size_t memory_bytes() const = 0;

  /// Bytes held in dense factorizations — the non-scalable part a deeper
  /// hierarchy shrinks; bench_weak_scaling reports this per level count.
  virtual std::size_t dense_factor_bytes() const = 0;
};

}  // namespace ddmgnn::partition
