// Overlapping domain decomposition: the METIS substitute.
//
// `decompose` produces K balanced connected parts by farthest-point-seeded
// multi-source BFS growth plus a boundary-smoothing pass, then expands each
// part by `overlap` BFS layers (the paper partitions into ~1000-node
// sub-meshes with overlap 2 or 4). The node lists double as the boolean
// restriction operators R_i of §II-A: R_i x = gather, R_iᵀ y = scatter.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "la/csr.hpp"
#include "la/multivector.hpp"

namespace ddmgnn::partition {

using la::Index;
using la::Offset;

struct Decomposition {
  Index num_parts = 0;
  /// Core (non-overlapping) part of each node.
  std::vector<Index> owner;
  /// Overlapping subdomain node lists, each sorted ascending (defines R_i).
  std::vector<std::vector<Index>> subdomains;
  /// 1 / (#subdomains containing the node): the partition-of-unity weights
  /// used by the Nicolaides coarse space.
  std::vector<double> inv_multiplicity;

  Index num_nodes() const { return static_cast<Index>(owner.size()); }

  /// Gather: out[l] = x[subdomains[i][l]].
  void restrict_to(Index i, std::span<const double> x,
                   std::span<double> out) const;
  /// Scatter-add: y[subdomains[i][l]] += x[l].
  void prolong_add(Index i, std::span<const double> x,
                   std::span<double> y) const;

  /// Block forms for the multi-RHS path: gather / scatter-add every column
  /// of an n×s block in one call. `out` must be pre-sized |subdomain i|×s.
  void restrict_to_many(Index i, const la::MultiVector& x,
                        la::MultiVector& out) const;
  void prolong_add_many(Index i, const la::MultiVector& x,
                        la::MultiVector& y) const;
};

/// Node-to-node adjacency in mesh::Mesh's CSR layout (sorted neighbor lists,
/// no self loops) — the graph `decompose` walks. Derivable from a mesh or,
/// for matrix-first callers, from an assembled operator's sparsity pattern.
struct AdjacencyGraph {
  std::vector<Offset> ptr;
  std::vector<Index> idx;

  Index num_nodes() const { return static_cast<Index>(ptr.size()) - 1; }
};

/// Adjacency of the (symmetrized) off-diagonal *stored* pattern of `A` — the
/// algebraic stand-in for the mesh graph when only the operator is known.
/// Explicitly stored zeros count as edges (assemblers that keep eliminated
/// couplings as structural zeros thus reproduce the mesh graph exactly);
/// identity rows with no stored couplings become isolated nodes, which
/// `decompose` absorbs into the nearest part.
AdjacencyGraph matrix_adjacency(const la::CsrMatrix& A);

/// Partition the undirected graph given by CSR adjacency into `num_parts`
/// parts and expand by `overlap` layers. `adj_ptr/adj` follow mesh::Mesh's
/// adjacency layout.
Decomposition decompose(std::span<const Offset> adj_ptr,
                        std::span<const Index> adj, Index num_parts,
                        int overlap, std::uint64_t seed = 0);

/// Choose K ≈ n / target_size (at least 1).
Decomposition decompose_target_size(std::span<const Offset> adj_ptr,
                                    std::span<const Index> adj,
                                    Index target_size, int overlap,
                                    std::uint64_t seed = 0);

/// Balance diagnostic: max part size / mean part size (cores, pre-overlap).
double balance_ratio(const Decomposition& d);

}  // namespace ddmgnn::partition
