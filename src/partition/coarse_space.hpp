// Nicolaides coarse space for the two-level Additive Schwarz preconditioner
// (paper Eq. 7, first term). R0 is K×N with row i carrying the partition-of-
// unity weights of subdomain i; the K×K coarse operator R0·A·R0ᵀ is factored
// once (dense Cholesky — it is SPD) and applied every PCG iteration:
//   z += R0ᵀ (R0 A R0ᵀ)⁻¹ R0 r                                    (Eq. 13)
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "la/csr.hpp"
#include "la/dense.hpp"
#include "la/multivector.hpp"
#include "partition/coarse_component.hpp"
#include "partition/decomposition.hpp"

namespace ddmgnn::partition {

class NicolaidesCoarseSpace final : public CoarseComponent {
 public:
  NicolaidesCoarseSpace(const la::CsrMatrix& a, const Decomposition& dec);

  /// rc = R0 r  (K values).
  std::vector<double> restrict_residual(std::span<const double> r) const;

  /// z += R0ᵀ (R0 A R0ᵀ)⁻¹ R0 r.
  void apply_add(std::span<const double> r, std::span<double> z) const override;

  /// Block form: the K×s restricted block is pushed through ONE factorization
  /// backsolve (solve_inplace_columns) serving all s columns. Per column the
  /// arithmetic matches apply_add exactly.
  void apply_add_many(const la::MultiVector& r,
                      la::MultiVector& z) const override;

  std::string name() const override { return "nicolaides"; }
  std::size_t memory_bytes() const override;
  std::size_t dense_factor_bytes() const override;

  Index num_parts() const { return dec_->num_parts; }
  const la::DenseMatrix& coarse_matrix() const { return coarse_; }

 private:
  const Decomposition* dec_;
  la::DenseMatrix coarse_;  // R0 A R0ᵀ, kept for tests
  std::unique_ptr<la::DenseCholesky> factor_;
  // R0 in CSC-by-node layout: for each node, the (part, weight) memberships.
  std::vector<Offset> node_ptr_;
  std::vector<Index> node_part_;
  std::vector<double> node_weight_;
};

}  // namespace ddmgnn::partition
