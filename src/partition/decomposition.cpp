#include "partition/decomposition.hpp"

#include <algorithm>
#include <queue>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace ddmgnn::partition {

void Decomposition::restrict_to(Index i, std::span<const double> x,
                                std::span<double> out) const {
  const auto& nodes = subdomains[i];
  DDMGNN_CHECK(out.size() == nodes.size(), "restrict_to: size mismatch");
  for (std::size_t l = 0; l < nodes.size(); ++l) out[l] = x[nodes[l]];
}

void Decomposition::prolong_add(Index i, std::span<const double> x,
                                std::span<double> y) const {
  const auto& nodes = subdomains[i];
  DDMGNN_CHECK(x.size() == nodes.size(), "prolong_add: size mismatch");
  for (std::size_t l = 0; l < nodes.size(); ++l) y[nodes[l]] += x[l];
}

void Decomposition::restrict_to_many(Index i, const la::MultiVector& x,
                                     la::MultiVector& out) const {
  const auto& nodes = subdomains[i];
  DDMGNN_CHECK(out.rows() == static_cast<Index>(nodes.size()) &&
                   out.cols() == x.cols(),
               "restrict_to_many: size mismatch");
  for (Index j = 0; j < x.cols(); ++j) restrict_to(i, x.col(j), out.col(j));
}

void Decomposition::prolong_add_many(Index i, const la::MultiVector& x,
                                     la::MultiVector& y) const {
  const auto& nodes = subdomains[i];
  DDMGNN_CHECK(x.rows() == static_cast<Index>(nodes.size()) &&
                   x.cols() == y.cols(),
               "prolong_add_many: size mismatch");
  for (Index j = 0; j < x.cols(); ++j) prolong_add(i, x.col(j), y.col(j));
}

namespace {

/// Farthest-point seeds: repeated multi-source BFS, next seed = farthest node.
std::vector<Index> pick_seeds(std::span<const Offset> adj_ptr,
                              std::span<const Index> adj, Index n, Index k,
                              Rng& rng) {
  std::vector<Index> seeds;
  seeds.reserve(k);
  seeds.push_back(static_cast<Index>(rng.uniform_index(n)));
  std::vector<Index> dist(n, -1);
  std::vector<Index> frontier;
  auto bfs_from = [&](Index s) {
    frontier.assign(1, s);
    dist[s] = 0;
    while (!frontier.empty()) {
      std::vector<Index> next;
      for (const Index u : frontier) {
        for (Offset e = adj_ptr[u]; e < adj_ptr[u + 1]; ++e) {
          const Index v = adj[e];
          if (dist[v] < 0 || dist[v] > dist[u] + 1) {
            dist[v] = dist[u] + 1;
            next.push_back(v);
          }
        }
      }
      frontier.swap(next);
    }
  };
  std::fill(dist.begin(), dist.end(), -1);
  bfs_from(seeds[0]);
  while (static_cast<Index>(seeds.size()) < k) {
    Index far = seeds[0];
    Index best = -1;
    for (Index v = 0; v < n; ++v) {
      if (dist[v] > best) {
        best = dist[v];
        far = v;
      }
    }
    seeds.push_back(far);
    // Relax distances with the new seed (multi-source min-distance).
    frontier.assign(1, far);
    dist[far] = 0;
    while (!frontier.empty()) {
      std::vector<Index> next;
      for (const Index u : frontier) {
        for (Offset e = adj_ptr[u]; e < adj_ptr[u + 1]; ++e) {
          const Index v = adj[e];
          if (dist[v] < 0 || dist[v] > dist[u] + 1) {
            dist[v] = dist[u] + 1;
            next.push_back(v);
          }
        }
      }
      frontier.swap(next);
    }
  }
  return seeds;
}

}  // namespace

AdjacencyGraph matrix_adjacency(const la::CsrMatrix& A) {
  DDMGNN_CHECK(A.rows() == A.cols(), "matrix_adjacency: matrix must be square");
  const Index n = A.rows();
  const auto rp = A.row_ptr();
  const auto ci = A.col_idx();
  // Union of the pattern with its transpose: collect both directions of every
  // stored off-diagonal entry, then sort + dedup per row.
  std::vector<std::pair<Index, Index>> edges;
  edges.reserve(static_cast<std::size_t>(A.nnz()) * 2);
  for (Index i = 0; i < n; ++i) {
    for (Offset e = rp[i]; e < rp[i + 1]; ++e) {
      const Index j = ci[e];
      if (j == i) continue;
      edges.emplace_back(i, j);
      edges.emplace_back(j, i);
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  AdjacencyGraph g;
  g.ptr.assign(static_cast<std::size_t>(n) + 1, 0);
  g.idx.reserve(edges.size());
  for (const auto& [i, j] : edges) {
    ++g.ptr[static_cast<std::size_t>(i) + 1];
    g.idx.push_back(j);
  }
  for (Index i = 0; i < n; ++i) g.ptr[i + 1] += g.ptr[i];
  return g;
}

Decomposition decompose(std::span<const Offset> adj_ptr,
                        std::span<const Index> adj, Index num_parts,
                        int overlap, std::uint64_t seed) {
  const Index n = static_cast<Index>(adj_ptr.size()) - 1;
  DDMGNN_CHECK(num_parts >= 1 && num_parts <= n, "decompose: bad num_parts");
  DDMGNN_CHECK(overlap >= 0, "decompose: negative overlap");
  Rng rng(seed ^ 0x2545F4914F6CDD1Dull);

  Decomposition dec;
  dec.num_parts = num_parts;
  dec.owner.assign(n, -1);

  // --- 1. Balanced growth: always extend the currently smallest part. ---
  const std::vector<Index> seeds = pick_seeds(adj_ptr, adj, n, num_parts, rng);
  std::vector<std::queue<Index>> frontier(num_parts);
  std::vector<Index> size(num_parts, 0);
  using HeapItem = std::pair<Index, Index>;  // (part size, part id)
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
  for (Index p = 0; p < num_parts; ++p) {
    Index s = seeds[p];
    if (dec.owner[s] != -1) {
      // Seed collision (tiny graphs): fall back to any unassigned node.
      s = -1;
      for (Index v = 0; v < n; ++v) {
        if (dec.owner[v] == -1) {
          s = v;
          break;
        }
      }
      DDMGNN_CHECK(s >= 0, "decompose: more parts than nodes");
    }
    dec.owner[s] = p;
    size[p] = 1;
    frontier[p].push(s);
    heap.push({1, p});
  }
  Index assigned = num_parts;
  while (assigned < n) {
    if (heap.empty()) {
      // Disconnected leftover: give it to the smallest part and restart a
      // frontier from there.
      Index p_min = 0;
      for (Index p = 1; p < num_parts; ++p)
        if (size[p] < size[p_min]) p_min = p;
      for (Index v = 0; v < n; ++v) {
        if (dec.owner[v] == -1) {
          dec.owner[v] = p_min;
          ++size[p_min];
          ++assigned;
          frontier[p_min].push(v);
          heap.push({size[p_min], p_min});
          break;
        }
      }
      continue;
    }
    const auto [sz, p] = heap.top();
    heap.pop();
    if (sz != size[p]) continue;  // stale heap entry
    bool grew = false;
    while (!frontier[p].empty() && !grew) {
      const Index u = frontier[p].front();
      for (Offset e = adj_ptr[u]; e < adj_ptr[u + 1]; ++e) {
        const Index v = adj[e];
        if (dec.owner[v] == -1) {
          dec.owner[v] = p;
          ++size[p];
          ++assigned;
          frontier[p].push(v);
          grew = true;
          break;
        }
      }
      if (!grew) frontier[p].pop();  // u exhausted
    }
    if (grew || !frontier[p].empty()) heap.push({size[p], p});
  }

  // --- 2. Boundary smoothing: move nodes to the majority part of their
  //        neighborhood when balance permits (reduces jagged interfaces). ---
  const Index max_size =
      static_cast<Index>(1.1 * static_cast<double>(n) / num_parts) + 2;
  std::vector<Index> count(num_parts, 0);
  for (int pass = 0; pass < 2; ++pass) {
    for (Index u = 0; u < n; ++u) {
      const Index cur = dec.owner[u];
      Index best = cur;
      Index best_count = 0;
      Index cur_count = 0;
      for (Offset e = adj_ptr[u]; e < adj_ptr[u + 1]; ++e) {
        const Index p = dec.owner[adj[e]];
        const Index c = ++count[p];
        if (p == cur) cur_count = c;
        if (c > best_count) {
          best_count = c;
          best = p;
        }
      }
      for (Offset e = adj_ptr[u]; e < adj_ptr[u + 1]; ++e)
        count[dec.owner[adj[e]]] = 0;  // reset scratch
      if (best != cur && best_count > cur_count + 1 && size[cur] > 1 &&
          size[best] < max_size) {
        dec.owner[u] = best;
        --size[cur];
        ++size[best];
      }
    }
  }

  // --- 3. Overlap expansion: `overlap` BFS layers around each core. ---
  dec.subdomains.assign(num_parts, {});
  {
    std::vector<Index> mark(n, -1);
    std::vector<Index> layer, next;
    for (Index p = 0; p < num_parts; ++p) {
      auto& nodes = dec.subdomains[p];
      layer.clear();
      for (Index v = 0; v < n; ++v) {
        if (dec.owner[v] == p) {
          nodes.push_back(v);
          mark[v] = p;
          layer.push_back(v);
        }
      }
      for (int l = 0; l < overlap; ++l) {
        next.clear();
        for (const Index u : layer) {
          for (Offset e = adj_ptr[u]; e < adj_ptr[u + 1]; ++e) {
            const Index v = adj[e];
            if (mark[v] != p) {
              mark[v] = p;
              nodes.push_back(v);
              next.push_back(v);
            }
          }
        }
        layer.swap(next);
      }
      std::sort(nodes.begin(), nodes.end());
    }
  }

  // --- 4. Partition-of-unity weights. ---
  dec.inv_multiplicity.assign(n, 0.0);
  for (const auto& nodes : dec.subdomains) {
    for (const Index v : nodes) dec.inv_multiplicity[v] += 1.0;
  }
  for (Index v = 0; v < n; ++v) {
    DDMGNN_CHECK(dec.inv_multiplicity[v] > 0.0, "decompose: uncovered node");
    dec.inv_multiplicity[v] = 1.0 / dec.inv_multiplicity[v];
  }
  return dec;
}

Decomposition decompose_target_size(std::span<const Offset> adj_ptr,
                                    std::span<const Index> adj,
                                    Index target_size, int overlap,
                                    std::uint64_t seed) {
  const Index n = static_cast<Index>(adj_ptr.size()) - 1;
  DDMGNN_CHECK(target_size > 0, "decompose_target_size: bad target");
  const Index k = std::max<Index>(
      1, static_cast<Index>(std::lround(static_cast<double>(n) / target_size)));
  return decompose(adj_ptr, adj, k, overlap, seed);
}

double balance_ratio(const Decomposition& d) {
  if (d.num_parts == 0) return 1.0;
  std::vector<Index> size(d.num_parts, 0);
  for (const Index p : d.owner) ++size[p];
  const double mean =
      static_cast<double>(d.owner.size()) / static_cast<double>(d.num_parts);
  Index mx = 0;
  for (const Index s : size) mx = std::max(mx, s);
  return static_cast<double>(mx) / mean;
}

}  // namespace ddmgnn::partition
