// Greedy aggregation coarsening for the smoothed-aggregation hierarchy
// (the ML/MueLu "uncoupled" recipe): pass 1 seeds an aggregate at every
// node whose neighborhood is still untouched and absorbs its neighbors,
// pass 2 attaches leftover nodes to an adjacent aggregate, pass 3 turns
// isolated stragglers into singletons. Everything is a serial sweep in
// ascending node order, so the assignment is a pure function of the matrix
// pattern — bitwise-reproducible at any thread count.
#pragma once

#include <vector>

#include "la/csr.hpp"

namespace ddmgnn::partition {

struct Aggregation {
  la::Index num_aggregates = 0;
  /// node -> aggregate id, dense in [0, num_aggregates).
  std::vector<la::Index> assignment;
};

/// Aggregate the adjacency graph of `a` (off-diagonal pattern). `target_size`
/// caps how many neighbors a seed absorbs in pass 1; with mesh-like graphs
/// aggregates come out near min(target_size, 1 + node degree).
Aggregation aggregate(const la::CsrMatrix& a, la::Index target_size);

}  // namespace ddmgnn::partition
