#include "partition/coarse_space.hpp"

#include "common/error.hpp"

namespace ddmgnn::partition {

NicolaidesCoarseSpace::NicolaidesCoarseSpace(const la::CsrMatrix& a,
                                             const Decomposition& dec)
    : dec_(&dec) {
  const Index n = a.rows();
  DDMGNN_CHECK(n == dec.num_nodes(), "coarse space: size mismatch");
  const Index k = dec.num_parts;

  // Node -> (part, weight) membership lists (CSR over nodes). Weight is the
  // partition-of-unity value 1/multiplicity — identical for every membership
  // of a node.
  node_ptr_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& nodes : dec.subdomains) {
    for (const Index v : nodes) ++node_ptr_[v + 1];
  }
  for (Index v = 0; v < n; ++v) node_ptr_[v + 1] += node_ptr_[v];
  node_part_.resize(node_ptr_[n]);
  node_weight_.resize(node_ptr_[n]);
  {
    std::vector<Offset> cursor(node_ptr_.begin(), node_ptr_.end() - 1);
    for (Index p = 0; p < k; ++p) {
      for (const Index v : dec.subdomains[p]) {
        const Offset dst = cursor[v]++;
        node_part_[dst] = p;
        node_weight_[dst] = dec.inv_multiplicity[v];
      }
    }
  }

  // Coarse operator: single sweep over A's nonzeros,
  //   C[i][j] += w_i(p) · A(p,q) · w_j(q) for all memberships (i of p, j of q).
  coarse_ = la::DenseMatrix(k, k, 0.0);
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  const auto va = a.values();
  for (Index p = 0; p < n; ++p) {
    for (Offset e = rp[p]; e < rp[p + 1]; ++e) {
      const Index q = ci[e];
      const double v = va[e];
      for (Offset mp = node_ptr_[p]; mp < node_ptr_[p + 1]; ++mp) {
        const double wi = node_weight_[mp] * v;
        const Index i = node_part_[mp];
        for (Offset mq = node_ptr_[q]; mq < node_ptr_[q + 1]; ++mq) {
          coarse_(i, node_part_[mq]) += wi * node_weight_[mq];
        }
      }
    }
  }
  factor_ = std::make_unique<la::DenseCholesky>(coarse_);
}

std::vector<double> NicolaidesCoarseSpace::restrict_residual(
    std::span<const double> r) const {
  const Index n = dec_->num_nodes();
  DDMGNN_CHECK(r.size() == static_cast<std::size_t>(n),
               "coarse restrict: size");
  std::vector<double> rc(dec_->num_parts, 0.0);
  for (Index v = 0; v < n; ++v) {
    for (Offset m = node_ptr_[v]; m < node_ptr_[v + 1]; ++m) {
      rc[node_part_[m]] += node_weight_[m] * r[v];
    }
  }
  return rc;
}

void NicolaidesCoarseSpace::apply_add_many(const la::MultiVector& r,
                                           la::MultiVector& z) const {
  const Index n = dec_->num_nodes();
  const Index k = dec_->num_parts;
  const Index s = r.cols();
  DDMGNN_CHECK(r.rows() == n && z.rows() == n && z.cols() == s,
               "coarse apply_add_many: shape mismatch");
  // Restrict every column into one K×s block, backsolve it in one sweep of
  // the factor, then prolong column-wise.
  la::MultiVector rc(k, s);
  for (Index j = 0; j < s; ++j) {
    const std::vector<double> rj = restrict_residual(r.col(j));
    la::copy(rj, rc.col(j));
  }
  factor_->solve_inplace_columns(rc.data(), s);
  for (Index j = 0; j < s; ++j) {
    auto zj = z.col(j);
    const auto rcj = rc.col(j);
    for (Index v = 0; v < n; ++v) {
      double acc = 0.0;
      for (Offset m = node_ptr_[v]; m < node_ptr_[v + 1]; ++m) {
        acc += node_weight_[m] * rcj[node_part_[m]];
      }
      zj[v] += acc;
    }
  }
}

void NicolaidesCoarseSpace::apply_add(std::span<const double> r,
                                      std::span<double> z) const {
  std::vector<double> rc = restrict_residual(r);
  factor_->solve_inplace(rc);
  const Index n = dec_->num_nodes();
  for (Index v = 0; v < n; ++v) {
    double acc = 0.0;
    for (Offset m = node_ptr_[v]; m < node_ptr_[v + 1]; ++m) {
      acc += node_weight_[m] * rc[node_part_[m]];
    }
    z[v] += acc;
  }
}

std::size_t NicolaidesCoarseSpace::memory_bytes() const {
  return dense_factor_bytes() +
         static_cast<std::size_t>(coarse_.rows()) * coarse_.cols() *
             sizeof(double) +
         node_ptr_.size() * sizeof(Offset) +
         node_part_.size() * sizeof(Index) +
         node_weight_.size() * sizeof(double);
}

std::size_t NicolaidesCoarseSpace::dense_factor_bytes() const {
  const auto k = static_cast<std::size_t>(dec_->num_parts);
  return k * k * sizeof(double);  // the Cholesky factor of R0 A R0ᵀ
}

}  // namespace ddmgnn::partition
