// Recursive V/W-cycle over a smoothed-aggregation Hierarchy, applied as the
// CoarseComponent of Additive Schwarz:
//   z += P0 · cycle(level 1 …) · P0ᵀ r
// Intermediate levels run damped-Jacobi or Chebyshev smoothing (symmetric,
// equal pre/post steps, so the cycle operator stays SPD and PCG-safe); the
// coarsest level is solved by the dense Cholesky factor. There is no
// fine-grid smoother here by design: in the ASM sum the local subdomain
// solves (exact Cholesky, or DSS inference for ddm-gnn) ARE the fine-level
// smoothing — the hierarchy only replaces the one-shot coarse solve.
//
// Concurrency: immutable after construction; every apply allocates its own
// per-level scratch, so one VCycle serves concurrent clients (the standard
// CoarseComponent contract). Applies are bitwise-deterministic at any thread
// count (SpMV/SpMM + elementwise updates + dense backsolves only), and
// apply_add_many reuses the per-column-exact block kernels so block Krylov
// lockstep equivalence holds through the cycle.
#pragma once

#include "mg/hierarchy.hpp"
#include "partition/coarse_component.hpp"

namespace ddmgnn::mg {

enum class Smoother { kJacobi, kChebyshev };

struct CycleConfig {
  bool w_cycle = false;
  Smoother smoother = Smoother::kJacobi;
  /// Jacobi sweeps / Chebyshev polynomial degree, applied pre AND post.
  int smooth_steps = 1;
};

class VCycle final : public partition::CoarseComponent {
 public:
  VCycle(Hierarchy hierarchy, CycleConfig config);

  void apply_add(std::span<const double> r, std::span<double> z)
      const override;
  void apply_add_many(const la::MultiVector& r,
                      la::MultiVector& z) const override;

  std::string name() const override;
  std::size_t memory_bytes() const override { return h_.memory_bytes(); }
  std::size_t dense_factor_bytes() const override {
    return h_.dense_factor_bytes();
  }

  const Hierarchy& hierarchy() const { return h_; }
  const CycleConfig& config() const { return cfg_; }

 private:
  // e ← cycle approximation of A_lvl⁻¹ r (e is overwritten).
  void cycle(int lvl, std::span<const double> r, std::span<double> e) const;
  void cycle_many(int lvl, const la::MultiVector& r, la::MultiVector& e) const;
  void smooth(const CoarseLevel& level, std::span<const double> b,
              std::span<double> x) const;
  void smooth_many(const CoarseLevel& level, const la::MultiVector& b,
                   la::MultiVector& x) const;

  Hierarchy h_;
  CycleConfig cfg_;
};

}  // namespace ddmgnn::mg
