#include "mg/hierarchy.hpp"

#include <cmath>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "la/spgemm.hpp"
#include "la/vector_ops.hpp"
#include "obs/metrics.hpp"
#include "partition/aggregate.hpp"

namespace ddmgnn::mg {

namespace {

// ||v||₂ with strictly serial accumulation. la::norm2 switches to an OpenMP
// reduction above kParallelThreshold, whose combine order depends on the
// team size — fine for Krylov solves, fatal for the "hierarchy build is
// bitwise-identical at 1/2/4 threads" contract. The SpMV inside the power
// iteration stays parallel (row-independent, deterministic).
double serial_norm2(std::span<const double> v) {
  double acc = 0.0;
  for (const double x : v) acc += x * x;
  return std::sqrt(acc);
}

std::vector<double> inverse_diagonal(const la::CsrMatrix& a) {
  std::vector<double> d = a.diagonal();
  for (std::size_t i = 0; i < d.size(); ++i) {
    DDMGNN_CHECK(d[i] != 0.0, "hierarchy: zero diagonal in level operator");
    d[i] = 1.0 / d[i];
  }
  return d;
}

// λ̂max(D⁻¹A) via the power_iteration_damping recipe (solver/stationary.cpp)
// with the Jacobi preconditioner inlined and serial reductions substituted
// for la::norm2 — same Rng seeding, same iteration structure.
double lambda_max_dinv_a(const la::CsrMatrix& a,
                         std::span<const double> inv_diag, int iterations,
                         std::uint64_t seed) {
  const std::size_t n = static_cast<std::size_t>(a.rows());
  Rng rng(seed ^ 0x9E3779B97F4A7C15ull);
  std::vector<double> v(n), av(n), w(n);
  for (double& vi : v) vi = rng.uniform(-1.0, 1.0);
  double lambda = 1.0;
  for (int k = 0; k < iterations; ++k) {
    const double nv = serial_norm2(v);
    if (nv == 0.0) break;
    la::scale(1.0 / nv, v);
    a.multiply(v, av);
    parallel_for(static_cast<long>(n),
                 [&](long i) { w[i] = inv_diag[i] * av[i]; });
    lambda = serial_norm2(w);
    if (!(lambda > 0.0) || !std::isfinite(lambda)) {
      lambda = 1.0;
      break;
    }
    v.swap(w);
  }
  return lambda;
}

// S = I − ω D⁻¹A on A's pattern (A carries a full diagonal — FEM assembly
// and Galerkin products both guarantee it).
la::CsrMatrix jacobi_smoother_matrix(const la::CsrMatrix& a,
                                     std::span<const double> inv_diag,
                                     double omega) {
  std::vector<la::Offset> row_ptr(a.row_ptr().begin(), a.row_ptr().end());
  std::vector<la::Index> col_idx(a.col_idx().begin(), a.col_idx().end());
  std::vector<double> vals(a.values().begin(), a.values().end());
  const auto rp = a.row_ptr();
  parallel_for(a.rows(), [&](long i) {
    const double scale = -omega * inv_diag[i];
    bool has_diag = false;
    for (la::Offset k = rp[i]; k < rp[i + 1]; ++k) {
      vals[k] *= scale;
      if (col_idx[k] == static_cast<la::Index>(i)) {
        vals[k] += 1.0;
        has_diag = true;
      }
    }
    DDMGNN_CHECK(has_diag, "hierarchy: level operator row lacks a diagonal");
  });
  return la::CsrMatrix(a.rows(), a.cols(), std::move(row_ptr),
                       std::move(col_idx), std::move(vals));
}

// The Nicolaides injection R0ᵀ as an n×K CSR prolongator: row v carries the
// partition-of-unity weight 1/multiplicity for every subdomain containing v.
// Matches NicolaidesCoarseSpace's membership table entry-for-entry, so the
// unsmoothed Galerkin product equals its dense coarse matrix.
la::CsrMatrix tentative_from_decomposition(la::Index n,
                                           const partition::Decomposition& dec) {
  std::vector<la::Offset> row_ptr(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& nodes : dec.subdomains) {
    for (const la::Index v : nodes) ++row_ptr[v + 1];
  }
  for (la::Index v = 0; v < n; ++v) row_ptr[v + 1] += row_ptr[v];
  std::vector<la::Index> col_idx(static_cast<std::size_t>(row_ptr[n]));
  std::vector<double> vals(col_idx.size());
  std::vector<la::Offset> cursor(row_ptr.begin(), row_ptr.end() - 1);
  for (la::Index p = 0; p < dec.num_parts; ++p) {
    for (const la::Index v : dec.subdomains[p]) {
      const la::Offset dst = cursor[v]++;
      col_idx[dst] = p;  // parts visited in ascending order ⇒ sorted rows
      vals[dst] = dec.inv_multiplicity[v];
    }
  }
  return la::CsrMatrix(n, dec.num_parts, std::move(row_ptr),
                       std::move(col_idx), std::move(vals));
}

la::CsrMatrix tentative_from_aggregates(const partition::Aggregation& agg) {
  const la::Index n = static_cast<la::Index>(agg.assignment.size());
  std::vector<la::Offset> row_ptr(static_cast<std::size_t>(n) + 1);
  for (la::Index i = 0; i <= n; ++i) row_ptr[i] = i;
  std::vector<la::Index> col_idx(agg.assignment.begin(), agg.assignment.end());
  std::vector<double> vals(static_cast<std::size_t>(n), 1.0);
  return la::CsrMatrix(n, agg.num_aggregates, std::move(row_ptr),
                       std::move(col_idx), std::move(vals));
}

std::size_t csr_bytes(const la::CsrMatrix& m) {
  return static_cast<std::size_t>(m.rows() + 1) * sizeof(la::Offset) +
         static_cast<std::size_t>(m.nnz()) *
             (sizeof(la::Index) + sizeof(double));
}

}  // namespace

std::vector<la::Index> Hierarchy::level_rows() const {
  std::vector<la::Index> out;
  out.reserve(levels.size() + 1);
  out.push_back(fine_rows);
  for (const auto& lvl : levels) out.push_back(lvl.A.rows());
  return out;
}

std::vector<la::Offset> Hierarchy::level_nnz() const {
  std::vector<la::Offset> out;
  out.reserve(levels.size() + 1);
  out.push_back(fine_nnz);
  for (const auto& lvl : levels) out.push_back(lvl.A.nnz());
  return out;
}

std::size_t Hierarchy::memory_bytes() const {
  std::size_t bytes = dense_factor_bytes();
  for (const auto& lvl : levels) {
    bytes += csr_bytes(lvl.A) + csr_bytes(lvl.P) + csr_bytes(lvl.R) +
             lvl.inv_diag.size() * sizeof(double);
  }
  return bytes;
}

std::size_t Hierarchy::dense_factor_bytes() const {
  if (!coarsest_factor) return 0;
  const auto k = static_cast<std::size_t>(coarsest_factor->size());
  return k * k * sizeof(double);
}

Hierarchy build_hierarchy(const la::CsrMatrix& a,
                          const partition::Decomposition& dec,
                          const HierarchyOptions& opts) {
  DDMGNN_CHECK(opts.levels >= 1, "hierarchy: levels must be >= 1");
  DDMGNN_CHECK(a.rows() == dec.num_nodes(), "hierarchy: size mismatch");

  Hierarchy h;
  h.fine_rows = a.rows();
  h.fine_nnz = a.nnz();

  la::CsrMatrix p_tent = tentative_from_decomposition(a.rows(), dec);
  for (int lvl = 0;; ++lvl) {
    // `cur` is the operator of the level p_tent coarsens (fine grid for
    // lvl 0). Its smoother data also feeds the cycle, so persist it.
    const la::CsrMatrix& cur = lvl == 0 ? a : h.levels[lvl - 1].A;
    std::vector<double> inv_diag = inverse_diagonal(cur);
    const double lambda =
        lambda_max_dinv_a(cur, inv_diag, opts.power_iterations, opts.seed);
    // Classic SA smoothing weight 4/(3λmax), with the same 5% safety margin
    // power_iteration_damping applies to its estimate.
    const double omega = (4.0 / 3.0) / (1.05 * lambda);

    CoarseLevel next;
    next.P = la::spgemm(jacobi_smoother_matrix(cur, inv_diag, omega), p_tent);
    next.R = next.P.transpose();
    next.A = la::spgemm(next.R, la::spgemm(cur, next.P));
    if (lvl >= 1) {
      h.levels[lvl - 1].inv_diag = std::move(inv_diag);
      h.levels[lvl - 1].lambda_max = lambda;
    }
    h.levels.push_back(std::move(next));

    const la::CsrMatrix& coarse = h.levels.back().A;
    if (lvl + 1 >= opts.levels) break;
    if (coarse.rows() <= opts.min_coarse_rows) break;
    const partition::Aggregation agg =
        partition::aggregate(coarse, opts.aggregate_target);
    if (agg.num_aggregates >= coarse.rows()) break;  // no progress
    p_tent = tentative_from_aggregates(agg);
  }

  // Dense Cholesky of the coarsest operator — the direct solve at the
  // bottom of the cycle, exactly the role the Nicolaides factor plays in
  // the two-level method.
  const la::CsrMatrix& bottom = h.levels.back().A;
  la::DenseMatrix dense(bottom.rows(), bottom.rows(), 0.0);
  {
    const auto rp = bottom.row_ptr();
    const auto ci = bottom.col_idx();
    const auto va = bottom.values();
    for (la::Index i = 0; i < bottom.rows(); ++i) {
      for (la::Offset k = rp[i]; k < rp[i + 1]; ++k) dense(i, ci[k]) = va[k];
    }
  }
  h.coarsest_factor = std::make_unique<la::DenseCholesky>(dense);

  auto& reg = obs::Registry::instance();
  const std::vector<la::Index> rows = h.level_rows();
  const std::vector<la::Offset> nnz = h.level_nnz();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const std::string label = "level=" + std::to_string(i);
    reg.gauge("mg.level_rows", label).set(static_cast<double>(rows[i]));
    reg.gauge("mg.level_nnz", label).set(static_cast<double>(nnz[i]));
  }
  return h;
}

}  // namespace ddmgnn::mg
