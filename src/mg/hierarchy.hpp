// Smoothed-aggregation multigrid hierarchy (the ML/MueLu recipe) for the
// coarse component of Additive Schwarz. Level 0 is the fine operator; its
// first tentative prolongator is the Nicolaides partition-of-unity injection
// R0ᵀ seeded from the existing Decomposition, deeper levels come from greedy
// aggregation (partition::aggregate). Every tentative prolongator is
// smoothed, P = (I − ω D⁻¹A) P_tent, and coarse operators are Galerkin
// triple products A_{ℓ+1} = Pᵀ A_ℓ P; the coarsest operator is factored
// dense (Cholesky) exactly like the classic Nicolaides space — but over a
// far smaller operator when levels > 1, which is the memory point of the
// exercise.
//
// Determinism: the build is bitwise-identical at any thread count. The only
// reduction it needs — the power-iteration eigenvalue estimate for ω — uses
// serial accumulation (see hierarchy.cpp); everything else (SpGEMM,
// transpose, aggregation, dense factorization) is deterministic by
// construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "la/csr.hpp"
#include "la/dense.hpp"
#include "partition/decomposition.hpp"

namespace ddmgnn::mg {

struct HierarchyOptions {
  /// Requested coarse-hierarchy depth L: the preconditioner becomes an
  /// (L+1)-level method. The build truncates early when a level stops
  /// shrinking or drops to min_coarse_rows.
  int levels = 2;
  /// Pass-1 aggregate size cap for partition::aggregate on deep levels.
  la::Index aggregate_target = 8;
  /// Power-iteration sweeps for the ω = 1/(1.05·λ̂max(D⁻¹A)) estimate
  /// (the power_iteration_damping recipe, serial reductions).
  int power_iterations = 12;
  /// Stop coarsening once a level has at most this many rows.
  la::Index min_coarse_rows = 8;
  std::uint64_t seed = 0;
};

/// One coarse level. P maps THIS level to the next-finer one (the fine grid
/// for levels[0]); R = Pᵀ. inv_diag / lambda_max are the Jacobi data and
/// λ̂max(D⁻¹A) the cycle smoothers need — populated on every level except
/// the coarsest (which is solved directly).
struct CoarseLevel {
  la::CsrMatrix A;
  la::CsrMatrix P;
  la::CsrMatrix R;
  std::vector<double> inv_diag;
  double lambda_max = 0.0;
};

struct Hierarchy {
  std::vector<CoarseLevel> levels;
  /// Dense Cholesky of levels.back().A.
  std::unique_ptr<la::DenseCholesky> coarsest_factor;
  la::Index fine_rows = 0;
  la::Offset fine_nnz = 0;

  int num_coarse_levels() const { return static_cast<int>(levels.size()); }
  /// rows / nnz per level, index 0 = fine grid (for stats reporting).
  std::vector<la::Index> level_rows() const;
  std::vector<la::Offset> level_nnz() const;
  std::size_t memory_bytes() const;
  std::size_t dense_factor_bytes() const;
};

/// Build the hierarchy for `a` seeded from `dec` (level-1 tentative
/// prolongator = Nicolaides partition-of-unity weights). Also publishes
/// mg.level_rows / mg.level_nnz gauges (labels "level=ℓ").
Hierarchy build_hierarchy(const la::CsrMatrix& a,
                          const partition::Decomposition& dec,
                          const HierarchyOptions& opts);

}  // namespace ddmgnn::mg
