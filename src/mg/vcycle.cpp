#include "mg/vcycle.hpp"

#include <utility>

#include "common/error.hpp"
#include "la/vector_ops.hpp"
#include "obs/trace.hpp"

namespace ddmgnn::mg {

namespace {

// Chebyshev bounds on the D⁻¹A spectrum from the build-time power-iteration
// estimate: pad the top (the estimate approaches λmax from below), smooth
// down to λmax/30 (the hypre default ratio).
constexpr double kChebUpperPad = 1.1;
constexpr double kChebLowerRatio = 1.0 / 30.0;

}  // namespace

VCycle::VCycle(Hierarchy hierarchy, CycleConfig config)
    : h_(std::move(hierarchy)), cfg_(config) {
  DDMGNN_CHECK(h_.num_coarse_levels() >= 1 && h_.coarsest_factor != nullptr,
               "vcycle: hierarchy has no factored coarsest level");
  DDMGNN_CHECK(cfg_.smooth_steps >= 1, "vcycle: smooth_steps must be >= 1");
  for (int l = 0; l + 1 < h_.num_coarse_levels(); ++l) {
    DDMGNN_CHECK(h_.levels[l].lambda_max > 0.0,
                 "vcycle: intermediate level lacks smoother data");
  }
}

std::string VCycle::name() const {
  return cfg_.w_cycle ? "mg-wcycle" : "mg-vcycle";
}

void VCycle::smooth(const CoarseLevel& level, std::span<const double> b,
                    std::span<double> x) const {
  const std::size_t n = x.size();
  const auto& inv_diag = level.inv_diag;
  std::vector<double> res(n);
  if (cfg_.smoother == Smoother::kJacobi) {
    // Damped Jacobi with the power_iteration_damping weight 1/(1.05·λ̂).
    const double d = 1.0 / (1.05 * level.lambda_max);
    for (int step = 0; step < cfg_.smooth_steps; ++step) {
      level.A.multiply(x, res);
      for (std::size_t i = 0; i < n; ++i) {
        x[i] += d * inv_diag[i] * (b[i] - res[i]);
      }
    }
    return;
  }
  // Chebyshev polynomial of degree smooth_steps on [λmax/30, 1.1·λ̂].
  const double lmax = kChebUpperPad * level.lambda_max;
  const double lmin = kChebLowerRatio * lmax;
  const double theta = 0.5 * (lmax + lmin);
  const double delta = 0.5 * (lmax - lmin);
  const double sigma = theta / delta;
  double rho = 1.0 / sigma;
  std::vector<double> d(n);
  level.A.multiply(x, res);
  for (std::size_t i = 0; i < n; ++i) {
    d[i] = inv_diag[i] * (b[i] - res[i]) / theta;
  }
  for (int k = 0;; ++k) {
    for (std::size_t i = 0; i < n; ++i) x[i] += d[i];
    if (k + 1 >= cfg_.smooth_steps) break;
    level.A.multiply(x, res);
    const double rho_next = 1.0 / (2.0 * sigma - rho);
    const double c1 = rho_next * rho;
    const double c2 = 2.0 * rho_next / delta;
    for (std::size_t i = 0; i < n; ++i) {
      d[i] = c1 * d[i] + c2 * inv_diag[i] * (b[i] - res[i]);
    }
    rho = rho_next;
  }
}

void VCycle::smooth_many(const CoarseLevel& level, const la::MultiVector& b,
                         la::MultiVector& x) const {
  const la::Index n = x.rows();
  const la::Index s = x.cols();
  const auto& inv_diag = level.inv_diag;
  la::MultiVector res(n, s);
  if (cfg_.smoother == Smoother::kJacobi) {
    const double d = 1.0 / (1.05 * level.lambda_max);
    for (int step = 0; step < cfg_.smooth_steps; ++step) {
      level.A.apply_many(x, res);
      for (la::Index j = 0; j < s; ++j) {
        auto xj = x.col(j);
        const auto bj = b.col(j);
        const auto rj = res.col(j);
        for (la::Index i = 0; i < n; ++i) {
          xj[i] += d * inv_diag[i] * (bj[i] - rj[i]);
        }
      }
    }
    return;
  }
  const double lmax = kChebUpperPad * level.lambda_max;
  const double lmin = kChebLowerRatio * lmax;
  const double theta = 0.5 * (lmax + lmin);
  const double delta = 0.5 * (lmax - lmin);
  const double sigma = theta / delta;
  double rho = 1.0 / sigma;
  la::MultiVector d(n, s);
  level.A.apply_many(x, res);
  for (la::Index j = 0; j < s; ++j) {
    auto dj = d.col(j);
    const auto bj = b.col(j);
    const auto rj = res.col(j);
    for (la::Index i = 0; i < n; ++i) {
      dj[i] = inv_diag[i] * (bj[i] - rj[i]) / theta;
    }
  }
  for (int k = 0;; ++k) {
    for (la::Index j = 0; j < s; ++j) {
      auto xj = x.col(j);
      const auto dj = d.col(j);
      for (la::Index i = 0; i < n; ++i) xj[i] += dj[i];
    }
    if (k + 1 >= cfg_.smooth_steps) break;
    level.A.apply_many(x, res);
    const double rho_next = 1.0 / (2.0 * sigma - rho);
    const double c1 = rho_next * rho;
    const double c2 = 2.0 * rho_next / delta;
    for (la::Index j = 0; j < s; ++j) {
      auto dj = d.col(j);
      const auto bj = b.col(j);
      const auto rj = res.col(j);
      for (la::Index i = 0; i < n; ++i) {
        dj[i] = c1 * dj[i] + c2 * inv_diag[i] * (bj[i] - rj[i]);
      }
    }
    rho = rho_next;
  }
}

void VCycle::cycle(int lvl, std::span<const double> r,
                   std::span<double> e) const {
  const int last = h_.num_coarse_levels() - 1;
  if (lvl == last) {
    obs::Span sp("mg.coarse_solve");
    sp.arg("level", static_cast<double>(lvl + 1));
    la::copy(r, e);
    h_.coarsest_factor->solve_inplace(e);
    return;
  }
  obs::Span sp("mg.level");
  sp.arg("level", static_cast<double>(lvl + 1));
  const CoarseLevel& level = h_.levels[lvl];
  const CoarseLevel& child = h_.levels[lvl + 1];
  const std::size_t n = e.size();

  la::fill(e, 0.0);
  smooth(level, r, e);

  std::vector<double> res(n);
  level.A.multiply(e, res);
  for (std::size_t i = 0; i < n; ++i) res[i] = r[i] - res[i];

  const std::size_t nc = static_cast<std::size_t>(child.A.rows());
  std::vector<double> rc(nc), ec(nc);
  child.R.multiply(res, rc);
  cycle(lvl + 1, rc, ec);
  if (cfg_.w_cycle && lvl + 1 != last) {
    std::vector<double> rc2(nc), ec2(nc);
    child.A.multiply(ec, rc2);
    for (std::size_t i = 0; i < nc; ++i) rc2[i] = rc[i] - rc2[i];
    cycle(lvl + 1, rc2, ec2);
    for (std::size_t i = 0; i < nc; ++i) ec[i] += ec2[i];
  }
  child.P.multiply(ec, res);  // reuse res as the prolonged correction
  for (std::size_t i = 0; i < n; ++i) e[i] += res[i];

  smooth(level, r, e);
}

void VCycle::cycle_many(int lvl, const la::MultiVector& r,
                        la::MultiVector& e) const {
  const int last = h_.num_coarse_levels() - 1;
  const la::Index s = r.cols();
  if (lvl == last) {
    obs::Span sp("mg.coarse_solve");
    sp.arg("level", static_cast<double>(lvl + 1));
    e.resize(r.rows(), s);
    la::copy(r.data(), e.data());
    h_.coarsest_factor->solve_inplace_columns(e.data(), s);
    return;
  }
  obs::Span sp("mg.level");
  sp.arg("level", static_cast<double>(lvl + 1));
  const CoarseLevel& level = h_.levels[lvl];
  const CoarseLevel& child = h_.levels[lvl + 1];
  const la::Index n = r.rows();

  e.resize(n, s);
  e.fill(0.0);
  smooth_many(level, r, e);

  la::MultiVector res(n, s);
  level.A.apply_many(e, res);
  for (la::Index j = 0; j < s; ++j) {
    auto rj = res.col(j);
    const auto bj = r.col(j);
    for (la::Index i = 0; i < n; ++i) rj[i] = bj[i] - rj[i];
  }

  la::MultiVector rc, ec;
  child.R.apply_many(res, rc);
  cycle_many(lvl + 1, rc, ec);
  if (cfg_.w_cycle && lvl + 1 != last) {
    const la::Index nc = child.A.rows();
    la::MultiVector rc2, ec2;
    child.A.apply_many(ec, rc2);
    for (la::Index j = 0; j < s; ++j) {
      auto r2j = rc2.col(j);
      const auto rcj = rc.col(j);
      for (la::Index i = 0; i < nc; ++i) r2j[i] = rcj[i] - r2j[i];
    }
    cycle_many(lvl + 1, rc2, ec2);
    for (la::Index j = 0; j < s; ++j) {
      auto ecj = ec.col(j);
      const auto e2j = ec2.col(j);
      for (la::Index i = 0; i < nc; ++i) ecj[i] += e2j[i];
    }
  }
  child.P.apply_many(ec, res);
  for (la::Index j = 0; j < s; ++j) {
    auto ej = e.col(j);
    const auto pj = res.col(j);
    for (la::Index i = 0; i < n; ++i) ej[i] += pj[i];
  }

  smooth_many(level, r, e);
}

void VCycle::apply_add(std::span<const double> r, std::span<double> z) const {
  obs::Span sp("mg.cycle");
  sp.arg("levels", static_cast<double>(h_.num_coarse_levels()));
  const std::size_t n = r.size();
  DDMGNN_CHECK(n == static_cast<std::size_t>(h_.fine_rows) && z.size() == n,
               "vcycle apply_add: size mismatch");
  const CoarseLevel& top = h_.levels[0];
  const std::size_t n0 = static_cast<std::size_t>(top.A.rows());
  std::vector<double> rc(n0), e(n0);
  top.R.multiply(r, rc);
  cycle(0, rc, e);
  std::vector<double> corr(n);
  top.P.multiply(e, corr);
  for (std::size_t i = 0; i < n; ++i) z[i] += corr[i];
}

void VCycle::apply_add_many(const la::MultiVector& r,
                            la::MultiVector& z) const {
  obs::Span sp("mg.cycle");
  sp.arg("levels", static_cast<double>(h_.num_coarse_levels()));
  const la::Index n = r.rows();
  const la::Index s = r.cols();
  DDMGNN_CHECK(n == h_.fine_rows && z.rows() == n && z.cols() == s,
               "vcycle apply_add_many: shape mismatch");
  const CoarseLevel& top = h_.levels[0];
  la::MultiVector rc, e, corr;
  top.R.apply_many(r, rc);
  cycle_many(0, rc, e);
  top.P.apply_many(e, corr);
  for (la::Index j = 0; j < s; ++j) {
    auto zj = z.col(j);
    const auto cj = corr.col(j);
    for (la::Index i = 0; i < n; ++i) zj[i] += cj[i];
  }
}

}  // namespace ddmgnn::mg
