#include "solver/krylov.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "la/vector_ops.hpp"
#include "obs/flags.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "solver/telemetry.hpp"

namespace ddmgnn::solver {

namespace {

using la::axpy;
using la::dot;
using la::norm2;
using la::xpay;

void check_dims(const CsrMatrix& a, std::span<const double> b,
                std::span<double> x) {
  DDMGNN_CHECK(a.rows() == a.cols(), "krylov: square matrix required");
  DDMGNN_CHECK(b.size() == static_cast<std::size_t>(a.rows()) &&
                   x.size() == b.size(),
               "krylov: dimension mismatch");
}

/// "<method>+<preconditioner>" — the one format every SolveResult::method
/// string follows (plain CG has no preconditioner and stays bare "cg").
std::string method_label(KrylovMethod method,
                         const precond::Preconditioner& m) {
  return std::string(krylov_method_name(method)) + "+" + m.name();
}

}  // namespace

const char* krylov_method_name(KrylovMethod method) {
  switch (method) {
    case KrylovMethod::kCg: return "cg";
    case KrylovMethod::kPcg: return "pcg";
    case KrylovMethod::kFpcg: return "fpcg";
    case KrylovMethod::kBicgstab: return "bicgstab";
    case KrylovMethod::kGmres: return "gmres";
  }
  return "?";
}

std::optional<KrylovMethod> krylov_method_from_name(std::string_view name) {
  for (const KrylovMethod m :
       {KrylovMethod::kCg, KrylovMethod::kPcg, KrylovMethod::kFpcg,
        KrylovMethod::kBicgstab, KrylovMethod::kGmres}) {
    if (name == krylov_method_name(m)) return m;
  }
  return std::nullopt;
}

obs::FailureReason classify_failure(const SolveResult& res,
                                    const SolveOptions& opts) {
  using obs::FailureReason;
  if (res.converged) return FailureReason::kNone;
  const double fr = res.final_relative_residual;
  if (!std::isfinite(fr)) return FailureReason::kNan;
  const double initial = res.history.empty() ? 1.0 : res.history.front();
  if (fr > 10.0 * std::max(initial, 1.0)) return FailureReason::kDiverged;
  // Stagnation: <1% improvement over the trailing 10 recorded iterations.
  constexpr std::size_t kWindow = 10;
  if (res.history.size() > kWindow) {
    const double then = res.history[res.history.size() - 1 - kWindow];
    const double now = res.history.back();
    if (then > 0.0 && now / then > 0.99) return FailureReason::kStagnated;
  }
  if (res.iterations >= opts.max_iterations) {
    return FailureReason::kMaxIterations;
  }
  // Early exit below the iteration budget (e.g. a BiCGStab breakdown):
  // progress stopped, which is stagnation in all but name.
  return res.history.empty() ? FailureReason::kMaxIterations
                             : FailureReason::kStagnated;
}

void finalize_solve_telemetry(SolveResult& res, const SolveOptions& opts) {
  if (res.converged) {
    res.failure = obs::FailureReason::kNone;
  } else if (res.failure == obs::FailureReason::kNone) {
    res.failure = classify_failure(res, opts);
  }
  if (!obs::metrics_enabled()) return;
  auto& reg = obs::Registry::instance();
  static obs::Counter& solves = reg.counter("solver.solves_total");
  static obs::Gauge& solve_s = reg.gauge("solver.solve_seconds_total");
  static obs::Gauge& precond_s = reg.gauge("solver.precond_seconds_total");
  static obs::Histogram& iters = reg.histogram(
      "solver.iterations", {},
      {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000});
  solves.inc();
  solve_s.add(res.total_seconds);
  precond_s.add(res.precond_seconds);
  iters.observe(static_cast<double>(res.iterations));
  if (!res.converged) {
    reg.counter("solver.failures_total",
                "method=" + res.method + ",reason=" +
                    obs::failure_reason_name(res.failure))
        .inc();
  }
}

SolveResult conjugate_gradient(const CsrMatrix& a, std::span<const double> b,
                               std::span<double> x, const SolveOptions& opts) {
  check_dims(a, b, x);
  Timer timer;
  SolveResult res;
  res.method = krylov_method_name(KrylovMethod::kCg);
  const std::size_t n = b.size();
  std::vector<double> r(n), p(n), q(n);
  a.multiply(x, r);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
  std::copy(r.begin(), r.end(), p.begin());
  const double nb = norm2(b);
  const double stop = opts.rel_tol * (nb > 0.0 ? nb : 1.0);
  double rho = dot(r, r);
  double rnorm = std::sqrt(rho);
  if (history_enabled(opts)) res.history.push_back(rnorm / (nb > 0 ? nb : 1.0));
  int it = 0;
  while (rnorm > stop && it < opts.max_iterations) {
    obs::Span iter_span("cg.iter");
    a.multiply(p, q);
    const double alpha = rho / dot(p, q);
    axpy(alpha, p, x);
    axpy(-alpha, q, r);
    const double rho_next = dot(r, r);
    const double beta = rho_next / rho;
    xpay(r, beta, p);
    rho = rho_next;
    rnorm = std::sqrt(rho);
    ++it;
    if (history_enabled(opts)) res.history.push_back(rnorm / (nb > 0 ? nb : 1.0));
    iter_span.arg("iter", it);
    iter_span.arg("rel_residual", rnorm / (nb > 0 ? nb : 1.0));
  }
  res.iterations = it;
  res.converged = rnorm <= stop;
  res.final_relative_residual = rnorm / (nb > 0 ? nb : 1.0);
  res.total_seconds = timer.seconds();
  finalize_solve_telemetry(res, opts);
  return res;
}

SolveResult pcg(const CsrMatrix& a, const precond::Preconditioner& m,
                std::span<const double> b, std::span<double> x,
                const SolveOptions& opts) {
  check_dims(a, b, x);
  Timer timer;
  Accumulator precond_time;
  SolveResult res;
  res.method = method_label(KrylovMethod::kPcg, m);
  std::vector<double>* series = forensic_series(res);
  const std::size_t n = b.size();
  // One preconditioner workspace per solve: applies stay allocation-free in
  // steady state and concurrent solves on one shared M never share scratch.
  const auto ws = m.make_workspace();
  std::vector<double> r(n), z(n), p(n), q(n);
  std::vector<double> r32;  // fp32-rounded residual (opts.precond_fp32)
  if (opts.precond_fp32) r32.resize(n);
  auto apply_m = [&](std::span<const double> in, std::span<double> out) {
    PrecondScope t(precond_time, series);
    if (opts.precond_fp32) {
      la::round_to_float(in, r32);
      m.apply(r32, out, ws.get());
      la::round_to_float(out, out);
    } else {
      m.apply(in, out, ws.get());
    }
  };
  // r0 = b - A x0, z0 = M⁻¹ r0, p0 = z0   (Algorithm 1)
  a.multiply(x, r);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
  apply_m(r, z);
  std::copy(z.begin(), z.end(), p.begin());
  const double nb = norm2(b);
  const double stop = opts.rel_tol * (nb > 0.0 ? nb : 1.0);
  double rho = dot(r, z);
  double rnorm = norm2(r);
  if (history_enabled(opts)) res.history.push_back(rnorm / (nb > 0 ? nb : 1.0));
  int it = 0;
  while (rnorm > stop && it < opts.max_iterations) {
    obs::Span iter_span("pcg.iter");
    a.multiply(p, q);
    const double alpha = rho / dot(p, q);
    axpy(alpha, p, x);
    axpy(-alpha, q, r);
    rnorm = norm2(r);
    ++it;
    if (history_enabled(opts)) res.history.push_back(rnorm / (nb > 0 ? nb : 1.0));
    iter_span.arg("iter", it);
    iter_span.arg("rel_residual", rnorm / (nb > 0 ? nb : 1.0));
    if (rnorm <= stop) break;
    apply_m(r, z);
    const double rho_next = dot(r, z);
    const double beta = rho_next / rho;
    xpay(z, beta, p);
    rho = rho_next;
  }
  res.iterations = it;
  res.converged = rnorm <= stop;
  res.final_relative_residual = rnorm / (nb > 0 ? nb : 1.0);
  res.total_seconds = timer.seconds();
  res.precond_seconds = precond_time.total();
  finalize_solve_telemetry(res, opts);
  return res;
}

SolveResult flexible_pcg(const CsrMatrix& a, const precond::Preconditioner& m,
                         std::span<const double> b, std::span<double> x,
                         const SolveOptions& opts) {
  check_dims(a, b, x);
  Timer timer;
  Accumulator precond_time;
  SolveResult res;
  res.method = method_label(KrylovMethod::kFpcg, m);
  std::vector<double>* series = forensic_series(res);
  const std::size_t n = b.size();
  const auto ws = m.make_workspace();
  std::vector<double> r(n), z(n), z_prev(n), dz(n), p(n), q(n);
  std::vector<double> r32;  // fp32-rounded residual (opts.precond_fp32)
  if (opts.precond_fp32) r32.resize(n);
  auto apply_m = [&](std::span<const double> in, std::span<double> out) {
    PrecondScope t(precond_time, series);
    if (opts.precond_fp32) {
      la::round_to_float(in, r32);
      m.apply(r32, out, ws.get());
      la::round_to_float(out, out);
    } else {
      m.apply(in, out, ws.get());
    }
  };
  a.multiply(x, r);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
  apply_m(r, z);
  std::copy(z.begin(), z.end(), p.begin());
  const double nb = norm2(b);
  const double stop = opts.rel_tol * (nb > 0.0 ? nb : 1.0);
  double rho = dot(r, z);
  double rnorm = norm2(r);
  if (history_enabled(opts)) res.history.push_back(rnorm / (nb > 0 ? nb : 1.0));
  int it = 0;
  while (rnorm > stop && it < opts.max_iterations) {
    obs::Span iter_span("fpcg.iter");
    a.multiply(p, q);
    const double pq = dot(p, q);
    if (pq <= 0.0 || rho == 0.0) {
      // Direction lost positivity (can happen with a nonlinear
      // preconditioner): restart from the preconditioned residual.
      apply_m(r, z);
      std::copy(z.begin(), z.end(), p.begin());
      rho = dot(r, z);
      a.multiply(p, q);
      const double pq2 = dot(p, q);
      DDMGNN_CHECK(pq2 > 0.0, "flexible_pcg: breakdown");
    }
    const double alpha = rho / dot(p, q);
    axpy(alpha, p, x);
    std::copy(z.begin(), z.end(), z_prev.begin());
    axpy(-alpha, q, r);
    rnorm = norm2(r);
    ++it;
    if (history_enabled(opts)) res.history.push_back(rnorm / (nb > 0 ? nb : 1.0));
    iter_span.arg("iter", it);
    iter_span.arg("rel_residual", rnorm / (nb > 0 ? nb : 1.0));
    if (rnorm <= stop) break;
    apply_m(r, z);
    // Polak–Ribière: β = <r, z - z_prev> / rho.
    for (std::size_t i = 0; i < n; ++i) dz[i] = z[i] - z_prev[i];
    const double beta = dot(r, dz) / rho;
    rho = dot(r, z);
    xpay(z, beta, p);
  }
  res.iterations = it;
  res.converged = rnorm <= stop;
  res.final_relative_residual = rnorm / (nb > 0 ? nb : 1.0);
  res.total_seconds = timer.seconds();
  res.precond_seconds = precond_time.total();
  finalize_solve_telemetry(res, opts);
  return res;
}

SolveResult bicgstab(const CsrMatrix& a, const precond::Preconditioner& m,
                     std::span<const double> b, std::span<double> x,
                     const SolveOptions& opts) {
  check_dims(a, b, x);
  Timer timer;
  Accumulator precond_time;
  SolveResult res;
  res.method = method_label(KrylovMethod::kBicgstab, m);
  std::vector<double>* series = forensic_series(res);
  const std::size_t n = b.size();
  const auto ws = m.make_workspace();
  std::vector<double> r(n), r0(n), p(n), v(n), s(n), t(n), ph(n), sh(n);
  a.multiply(x, r);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
  std::copy(r.begin(), r.end(), r0.begin());
  const double nb = norm2(b);
  const double stop = opts.rel_tol * (nb > 0.0 ? nb : 1.0);
  double rho = 1.0, alpha = 1.0, omega = 1.0;
  std::fill(p.begin(), p.end(), 0.0);
  std::fill(v.begin(), v.end(), 0.0);
  double rnorm = norm2(r);
  if (history_enabled(opts)) res.history.push_back(rnorm / (nb > 0 ? nb : 1.0));
  int it = 0;
  while (rnorm > stop && it < opts.max_iterations) {
    obs::Span iter_span("bicgstab.iter");
    const double rho_next = dot(r0, r);
    if (rho_next == 0.0) break;  // breakdown
    const double beta = (rho_next / rho) * (alpha / omega);
    rho = rho_next;
    for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * (p[i] - omega * v[i]);
    {
      PrecondScope tt(precond_time, series);
      m.apply(p, ph, ws.get());
    }
    a.multiply(ph, v);
    alpha = rho / dot(r0, v);
    for (std::size_t i = 0; i < n; ++i) s[i] = r[i] - alpha * v[i];
    if (norm2(s) <= stop) {
      axpy(alpha, ph, x);
      r = s;
      rnorm = norm2(r);
      ++it;
      if (history_enabled(opts))
        res.history.push_back(rnorm / (nb > 0 ? nb : 1.0));
      iter_span.arg("iter", it);
      iter_span.arg("rel_residual", rnorm / (nb > 0 ? nb : 1.0));
      break;
    }
    {
      PrecondScope tt(precond_time, series);
      m.apply(s, sh, ws.get());
    }
    a.multiply(sh, t);
    const double tt_dot = dot(t, t);
    if (tt_dot == 0.0) break;
    omega = dot(t, s) / tt_dot;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * ph[i] + omega * sh[i];
      r[i] = s[i] - omega * t[i];
    }
    rnorm = norm2(r);
    ++it;
    if (history_enabled(opts)) res.history.push_back(rnorm / (nb > 0 ? nb : 1.0));
    iter_span.arg("iter", it);
    iter_span.arg("rel_residual", rnorm / (nb > 0 ? nb : 1.0));
    if (omega == 0.0) break;
  }
  res.iterations = it;
  res.converged = rnorm <= stop;
  res.final_relative_residual = rnorm / (nb > 0 ? nb : 1.0);
  res.total_seconds = timer.seconds();
  res.precond_seconds = precond_time.total();
  finalize_solve_telemetry(res, opts);
  return res;
}

SolveResult gmres(const CsrMatrix& a, const precond::Preconditioner& m,
                  std::span<const double> b, std::span<double> x,
                  const SolveOptions& opts) {
  check_dims(a, b, x);
  const int restart = opts.gmres_restart;
  DDMGNN_CHECK(restart >= 1, "gmres: restart must be >= 1");
  Timer timer;
  Accumulator precond_time;
  SolveResult res;
  res.method = method_label(KrylovMethod::kGmres, m);
  std::vector<double>* series = forensic_series(res);
  const std::size_t n = b.size();
  const auto ws = m.make_workspace();
  const double nb = norm2(b);
  const double stop = opts.rel_tol * (nb > 0.0 ? nb : 1.0);

  std::vector<std::vector<double>> basis;  // Krylov basis v_0..v_m
  std::vector<std::vector<double>> zs;     // preconditioned basis vectors
  std::vector<double> r(n), w(n), zw(n);
  // Hessenberg in column-major (restart+1) x restart, plus Givens rotations.
  std::vector<double> h((restart + 1) * restart, 0.0);
  std::vector<double> cs(restart), sn(restart), g(restart + 1);

  int total_it = 0;
  double rnorm = 0.0;
  bool first = true;
  while (true) {
    a.multiply(x, r);
    for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
    rnorm = norm2(r);
    if (first && history_enabled(opts)) {
      res.history.push_back(rnorm / (nb > 0 ? nb : 1.0));
    }
    first = false;
    if (rnorm <= stop || total_it >= opts.max_iterations) break;

    basis.assign(1, r);
    la::scale(1.0 / rnorm, basis[0]);
    zs.clear();
    std::fill(g.begin(), g.end(), 0.0);
    g[0] = rnorm;
    int k = 0;
    for (; k < restart && total_it < opts.max_iterations; ++k) {
      obs::Span iter_span("gmres.iter");
      {
        PrecondScope t(precond_time, series);
        m.apply(basis[k], zw, ws.get());
      }
      zs.push_back(zw);
      a.multiply(zw, w);
      // Modified Gram-Schmidt.
      for (int j = 0; j <= k; ++j) {
        const double hij = dot(w, basis[j]);
        h[j * restart + k] = hij;
        axpy(-hij, basis[j], w);
      }
      const double hk1 = norm2(w);
      basis.emplace_back(w);
      if (hk1 > 0.0) la::scale(1.0 / hk1, basis.back());
      // Apply previous Givens rotations to the new column.
      for (int j = 0; j < k; ++j) {
        const double t1 = cs[j] * h[j * restart + k] + sn[j] * h[(j + 1) * restart + k];
        const double t2 = -sn[j] * h[j * restart + k] + cs[j] * h[(j + 1) * restart + k];
        h[j * restart + k] = t1;
        h[(j + 1) * restart + k] = t2;
      }
      const double denom = std::hypot(h[k * restart + k], hk1);
      cs[k] = denom == 0.0 ? 1.0 : h[k * restart + k] / denom;
      sn[k] = denom == 0.0 ? 0.0 : hk1 / denom;
      h[k * restart + k] = denom;
      g[k + 1] = -sn[k] * g[k];
      g[k] = cs[k] * g[k];
      ++total_it;
      rnorm = std::abs(g[k + 1]);
      if (history_enabled(opts))
        res.history.push_back(rnorm / (nb > 0 ? nb : 1.0));
      iter_span.arg("iter", total_it);
      iter_span.arg("rel_residual", rnorm / (nb > 0 ? nb : 1.0));
      if (rnorm <= stop) {
        ++k;
        break;
      }
    }
    // Back-substitute y and update x += Σ y_j z_j (right preconditioning).
    std::vector<double> y(k, 0.0);
    for (int i = k - 1; i >= 0; --i) {
      double acc = g[i];
      for (int j = i + 1; j < k; ++j) acc -= h[i * restart + j] * y[j];
      y[i] = acc / h[i * restart + i];
    }
    for (int j = 0; j < k; ++j) axpy(y[j], zs[j], x);
    if (total_it >= opts.max_iterations) break;
  }
  res.iterations = total_it;
  res.converged = rnorm <= stop;
  res.final_relative_residual = rnorm / (nb > 0 ? nb : 1.0);
  res.total_seconds = timer.seconds();
  res.precond_seconds = precond_time.total();
  finalize_solve_telemetry(res, opts);
  return res;
}

SolveResult run_krylov(KrylovMethod method, const CsrMatrix& a,
                       const precond::Preconditioner& m,
                       std::span<const double> b, std::span<double> x,
                       const SolveOptions& opts) {
  if (!opts.x0.empty()) {
    DDMGNN_CHECK(opts.x0.size() == x.size(),
                 "run_krylov: x0 size does not match the system");
    std::copy(opts.x0.begin(), opts.x0.end(), x.begin());
  }
  switch (method) {
    case KrylovMethod::kCg: return conjugate_gradient(a, b, x, opts);
    case KrylovMethod::kPcg: return pcg(a, m, b, x, opts);
    case KrylovMethod::kFpcg: return flexible_pcg(a, m, b, x, opts);
    case KrylovMethod::kBicgstab: return bicgstab(a, m, b, x, opts);
    case KrylovMethod::kGmres: return gmres(a, m, b, x, opts);
  }
  DDMGNN_CHECK(false, "run_krylov: unknown method");
  std::abort();  // unreachable
}

}  // namespace ddmgnn::solver
