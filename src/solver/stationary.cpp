#include "solver/stationary.hpp"

#include "common/error.hpp"
#include "common/timer.hpp"
#include "la/vector_ops.hpp"

namespace ddmgnn::solver {

SolveResult stationary_iteration(const CsrMatrix& a,
                                 const precond::Preconditioner& m,
                                 std::span<const double> b,
                                 std::span<double> x, const SolveOptions& opts,
                                 double damping) {
  DDMGNN_CHECK(a.rows() == a.cols() &&
                   b.size() == static_cast<std::size_t>(a.rows()) &&
                   x.size() == b.size(),
               "stationary_iteration: dimension mismatch");
  Timer timer;
  Accumulator precond_time;
  SolveResult res;
  res.method = "richardson+" + m.name();
  const std::size_t n = b.size();
  std::vector<double> r(n), z(n);
  const double nb = la::norm2(b);
  const double stop = opts.rel_tol * (nb > 0.0 ? nb : 1.0);
  int it = 0;
  double rnorm = 0.0;
  while (true) {
    a.multiply(x, r);
    for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
    rnorm = la::norm2(r);
    if (opts.track_history) res.history.push_back(rnorm / (nb > 0 ? nb : 1.0));
    if (rnorm <= stop || it >= opts.max_iterations) break;
    {
      ScopedAccumulate t(precond_time);
      m.apply(r, z);
    }
    la::axpy(damping, z, x);
    ++it;
  }
  res.iterations = it;
  res.converged = rnorm <= stop;
  res.final_relative_residual = rnorm / (nb > 0 ? nb : 1.0);
  res.total_seconds = timer.seconds();
  res.precond_seconds = precond_time.total();
  return res;
}

}  // namespace ddmgnn::solver
