#include "solver/stationary.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "la/vector_ops.hpp"
#include "obs/trace.hpp"
#include "solver/telemetry.hpp"

namespace ddmgnn::solver {

SolveResult stationary_iteration(const CsrMatrix& a,
                                 const precond::Preconditioner& m,
                                 std::span<const double> b,
                                 std::span<double> x, const SolveOptions& opts,
                                 double damping) {
  DDMGNN_CHECK(a.rows() == a.cols() &&
                   b.size() == static_cast<std::size_t>(a.rows()) &&
                   x.size() == b.size(),
               "stationary_iteration: dimension mismatch");
  Timer timer;
  Accumulator precond_time;
  SolveResult res;
  res.method = "richardson+" + m.name();
  std::vector<double>* series = forensic_series(res);
  const std::size_t n = b.size();
  const auto ws = m.make_workspace();
  std::vector<double> r(n), z(n);
  const double nb = la::norm2(b);
  const double stop = opts.rel_tol * (nb > 0.0 ? nb : 1.0);
  const double diverged_at = kDivergenceFactor * (nb > 0.0 ? nb : 1.0);
  int it = 0;
  double rnorm = 0.0;
  bool diverged = false;
  while (true) {
    obs::Span iter_span("richardson.iter");
    a.multiply(x, r);
    for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
    rnorm = la::norm2(r);
    if (history_enabled(opts)) res.history.push_back(rnorm / (nb > 0 ? nb : 1.0));
    iter_span.arg("iter", it);
    iter_span.arg("rel_residual", rnorm / (nb > 0 ? nb : 1.0));
    if (!std::isfinite(rnorm) || rnorm > diverged_at) {
      diverged = true;
      break;
    }
    if (rnorm <= stop || it >= opts.max_iterations) break;
    {
      PrecondScope t(precond_time, series);
      m.apply(r, z, ws.get());
    }
    la::axpy(damping, z, x);
    ++it;
  }
  res.iterations = it;
  res.converged = !diverged && rnorm <= stop;
  res.final_relative_residual = rnorm / (nb > 0 ? nb : 1.0);
  res.total_seconds = timer.seconds();
  res.precond_seconds = precond_time.total();
  if (diverged) {
    // The driver watched the residual cross kDivergenceFactor (or go
    // non-finite) itself — record the direct observation rather than
    // re-deriving it from the history.
    res.failure = std::isfinite(rnorm) ? obs::FailureReason::kDiverged
                                       : obs::FailureReason::kNan;
  }
  finalize_solve_telemetry(res, opts);
  return res;
}

double power_iteration_damping(const CsrMatrix& a,
                               const precond::Preconditioner& m,
                               int iterations, std::uint64_t seed) {
  DDMGNN_CHECK(a.rows() == a.cols() && a.rows() > 0,
               "power_iteration_damping: square matrix required");
  const std::size_t n = static_cast<std::size_t>(a.rows());
  Rng rng(seed ^ 0x9E3779B97F4A7C15ull);
  const auto ws = m.make_workspace();
  std::vector<double> v(n), av(n), w(n);
  for (double& vi : v) vi = rng.uniform(-1.0, 1.0);
  double lambda = 1.0;
  for (int k = 0; k < iterations; ++k) {
    const double nv = la::norm2(v);
    if (nv == 0.0) break;
    la::scale(1.0 / nv, v);
    a.multiply(v, av);
    m.apply(av, w, ws.get());  // w = M⁻¹ A v
    lambda = la::norm2(w);
    if (!(lambda > 0.0) || !std::isfinite(lambda)) {
      lambda = 1.0;
      break;
    }
    v.swap(w);
  }
  // 5% margin over the estimate; power iteration approaches λ_max from
  // below, so without it the damped spectrum could still graze 2.
  return 1.0 / (1.05 * lambda);
}

}  // namespace ddmgnn::solver
