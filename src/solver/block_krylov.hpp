// Block-Krylov solvers: the iteration layer of the batched multi-RHS solve
// engine. Both methods advance ALL right-hand sides per iteration so every
// A·P becomes one SpMM and every M⁻¹·R one block preconditioner application
// (for DDM-GNN: one disjoint-union DSS inference over all K×s local
// problems, the paper's Eq. 14 batching). Columns converge at their own
// rates and are deflated out of the working block as they finish.
//
// Two methods, with deliberately different semantics:
//
//  * block_pcg — LOCKSTEP independent recurrences. Each column runs exactly
//    the scalar pcg() arithmetic (same kernels, same order), columns only
//    share the fused SpMM / block-preconditioner calls. Iteration counts and
//    iterates are bit-identical to solving each RHS alone (tested). Use with
//    fixed SPD preconditioners; the win is amortized memory traffic, not
//    fewer iterations.
//
//  * block_flexible_pcg — SHARED search space. Each iteration
//    A-orthonormalizes the s preconditioned residuals into one direction
//    block and minimizes every column's A-norm error over all of them, so
//    each column benefits from the directions generated for the others and
//    typically converges in substantially fewer iterations than scalar
//    fpcg — this is where the batched DSS inference pays (fewer iterations
//    × cheaper per-iteration inference). Nonlinear preconditioners (the
//    GNN) are handled flexibly: conjugation only against the previous
//    block, stagnation detection, and a per-column true-residual
//    verification with scalar-fpcg fallback as the correctness net.
#pragma once

#include <optional>
#include <vector>

#include "la/multivector.hpp"
#include "solver/krylov.hpp"

namespace ddmgnn::solver {

/// Lockstep block PCG (see file header). `b` is n×s, `x` holds the initial
/// guesses and the solutions. Returns one SolveResult per column;
/// result.iterations counts the iterations until THAT column converged.
std::vector<SolveResult> block_pcg(const CsrMatrix& a,
                                   const precond::Preconditioner& m,
                                   const la::MultiVector& b,
                                   la::MultiVector& x,
                                   const SolveOptions& opts = {});

/// Shared-subspace flexible block PCG (see file header). result.iterations
/// counts BLOCK iterations until that column converged; every returned
/// converged flag is backed by a recomputed true residual.
std::vector<SolveResult> block_flexible_pcg(const CsrMatrix& a,
                                            const precond::Preconditioner& m,
                                            const la::MultiVector& b,
                                            la::MultiVector& x,
                                            const SolveOptions& opts = {});

/// Block dispatch mirroring run_krylov: kPcg → block_pcg, kFpcg →
/// block_flexible_pcg, kCg → block_pcg with the identity preconditioner
/// (bit-identical to scalar CG per column). Methods without a block form
/// (BiCGStab, GMRES) return nullopt — callers fall back to a sequential
/// loop.
std::optional<std::vector<SolveResult>> run_block_krylov(
    KrylovMethod method, const CsrMatrix& a, const precond::Preconditioner& m,
    const la::MultiVector& b, la::MultiVector& x,
    const SolveOptions& opts = {});

}  // namespace ddmgnn::solver
