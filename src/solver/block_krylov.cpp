#include "solver/block_krylov.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "obs/flags.hpp"
#include "obs/trace.hpp"
#include "solver/telemetry.hpp"

namespace ddmgnn::solver {

namespace {

using la::axpy;
using la::dot;
using la::Index;
using la::MultiVector;
using la::norm2;
using la::xpay;

/// Shared bookkeeping of both block methods: which original columns are
/// still active, their tolerances, histories, and per-column timing shares.
struct ColumnState {
  std::vector<SolveResult> results;     // indexed by ORIGINAL column
  std::vector<Index> act;               // active → original column map
  std::vector<double> nb, stop, rnorm;  // indexed like act
  std::vector<double> precond_share;    // indexed by ORIGINAL column
  bool track_history = false;
  bool forensics = false;

  ColumnState(const MultiVector& b, const SolveOptions& opts,
              const std::string& method_label) {
    const Index s = b.cols();
    results.resize(s);
    precond_share.assign(s, 0.0);
    track_history = history_enabled(opts);
    forensics = obs::forensics_enabled();
    act.resize(s);
    nb.resize(s);
    stop.resize(s);
    rnorm.assign(s, 0.0);
    for (Index j = 0; j < s; ++j) {
      act[j] = j;
      nb[j] = norm2(b.col(j));
      stop[j] = opts.rel_tol * (nb[j] > 0.0 ? nb[j] : 1.0);
      results[j].method = method_label;
    }
  }

  Index active() const { return static_cast<Index>(act.size()); }

  void push_history() {
    if (!track_history) return;
    for (std::size_t c = 0; c < act.size(); ++c) {
      results[act[c]].history.push_back(rnorm[c] /
                                        (nb[c] > 0.0 ? nb[c] : 1.0));
    }
  }

  void add_precond_time(double seconds) {
    const double share = seconds / static_cast<double>(act.size());
    for (const Index j : act) {
      precond_share[j] += share;
      if (forensics) results[j].precond_history.push_back(share);
    }
  }

  void finalize(std::size_t c, int iterations, bool converged,
                const Timer& timer) {
    SolveResult& res = results[act[c]];
    res.converged = converged;
    res.iterations = iterations;
    res.final_relative_residual = rnorm[c] / (nb[c] > 0.0 ? nb[c] : 1.0);
    res.total_seconds = timer.seconds();
    res.precond_seconds = precond_share[act[c]];
  }

  /// Finalize every column whose residual met its stop threshold and drop it
  /// from the active set, compacting the given blocks. Returns the kept
  /// pre-compaction indices (size == previous active count when nothing
  /// converged) so callers can compact their own per-column scalars.
  template <typename... Blocks>
  std::vector<Index> deflate_converged(int iterations, const Timer& timer,
                                       Blocks&... blocks) {
    std::vector<Index> keep;
    keep.reserve(act.size());
    for (std::size_t c = 0; c < act.size(); ++c) {
      if (rnorm[c] <= stop[c]) {
        finalize(c, iterations, /*converged=*/true, timer);
      } else {
        keep.push_back(static_cast<Index>(c));
      }
    }
    if (keep.size() == act.size()) return keep;
    auto compact = [&](auto& v) {
      for (std::size_t c = 0; c < keep.size(); ++c) v[c] = v[keep[c]];
      v.resize(keep.size());
    };
    compact(act);
    compact(nb);
    compact(stop);
    compact(rnorm);
    (blocks.keep_columns(keep), ...);
    return keep;
  }

  void finalize_remaining(int iterations, const Timer& timer) {
    for (std::size_t c = 0; c < act.size(); ++c) {
      finalize(c, iterations, /*converged=*/false, timer);
    }
    act.clear();
  }
};

/// One batched preconditioner application, timed once: the measurement is
/// split into the active columns' precond_seconds shares (which therefore sum
/// back to it exactly) and, when tracing, becomes a "precond.apply_many" span
/// of the identical duration — the block-path counterpart of PrecondScope.
/// With opts.precond_fp32 the residual block is demoted through fp32 into
/// `r32` before the apply and the corrections are demoted in place after it
/// (the mixed-precision seam); the rounding cost counts as preconditioner
/// time, matching the scalar drivers.
void timed_apply_many(const precond::Preconditioner& m, const MultiVector& r,
                      MultiVector& z, precond::ApplyWorkspace* ws,
                      ColumnState& cols, const SolveOptions& opts,
                      MultiVector& r32) {
  const bool tracing = obs::trace_enabled();
  const std::int64_t t0 =
      tracing ? obs::TraceRecorder::instance().now_ns() : 0;
  Timer pt;
  if (opts.precond_fp32) {
    r32.resize(r.rows(), r.cols());
    for (Index j = 0; j < r.cols(); ++j) {
      la::round_to_float(r.col(j), r32.col(j));
    }
    m.apply_many(r32, z, ws);
    for (Index j = 0; j < z.cols(); ++j) {
      la::round_to_float(z.col(j), z.col(j));
    }
  } else {
    m.apply_many(r, z, ws);
  }
  const double s = pt.seconds();
  if (tracing) {
    obs::emit_span("precond.apply_many", t0,
                   static_cast<std::int64_t>(s * 1e9));
  }
  cols.add_precond_time(s);
}

/// r = b - A x for every column, plus initial norms.
void initial_residual(const CsrMatrix& a, const MultiVector& b,
                      const MultiVector& x, MultiVector& r,
                      ColumnState& cols) {
  a.apply_many(x, r);
  for (Index j = 0; j < b.cols(); ++j) {
    auto rj = r.col(j);
    const auto bj = b.col(j);
    for (std::size_t i = 0; i < rj.size(); ++i) rj[i] = bj[i] - rj[i];
    cols.rnorm[j] = norm2(rj);
  }
}

void check_block_dims(const CsrMatrix& a, const MultiVector& b,
                      const MultiVector& x) {
  DDMGNN_CHECK(a.rows() == a.cols(), "block krylov: square matrix required");
  DDMGNN_CHECK(b.rows() == a.rows() && x.rows() == b.rows() &&
                   x.cols() == b.cols() && b.cols() >= 1,
               "block krylov: dimension mismatch");
}

std::vector<SolveResult> block_pcg_impl(const CsrMatrix& a,
                                        const precond::Preconditioner& m,
                                        const MultiVector& b, MultiVector& x,
                                        const SolveOptions& opts,
                                        const std::string& label) {
  check_block_dims(a, b, x);
  Timer timer;
  const Index n = a.rows();
  ColumnState cols(b, opts, label);
  // One preconditioner workspace per block solve (never shared across
  // concurrent solve_many calls on one session).
  const auto ws = m.make_workspace();

  MultiVector r(n, b.cols());
  initial_residual(a, b, x, r, cols);
  MultiVector z(n, b.cols());
  MultiVector r32;  // fp32-rounded residual block (opts.precond_fp32)
  timed_apply_many(m, r, z, ws.get(), cols, opts, r32);
  MultiVector p(n, b.cols());
  copy_columns(z, p);
  std::vector<double> rho(b.cols());
  dot_columns(r, z, rho);
  cols.push_history();
  auto compact_scalars = [](const std::vector<Index>& keep, auto& v) {
    if (keep.size() == v.size()) return;
    for (std::size_t c = 0; c < keep.size(); ++c) v[c] = v[keep[c]];
    v.resize(keep.size());
  };
  compact_scalars(cols.deflate_converged(0, timer, r, p), rho);

  MultiVector q;
  std::vector<double> alpha, pq, rho_next, beta;
  int it = 0;
  while (cols.active() > 0 && it < opts.max_iterations) {
    obs::Span iter_span("block-pcg.iter");
    a.apply_many(p, q);
    const Index na = cols.active();
    alpha.resize(na);
    pq.resize(na);
    dot_columns(p, q, pq);
    for (Index c = 0; c < na; ++c) {
      alpha[c] = rho[c] / pq[c];
      axpy(alpha[c], p.col(c), x.col(cols.act[c]));
      alpha[c] = -alpha[c];
    }
    axpy_columns(alpha, q, r);
    norm2_columns(r, cols.rnorm);
    ++it;
    cols.push_history();
    iter_span.arg("iter", it);
    iter_span.arg("active_columns", cols.active());
    compact_scalars(cols.deflate_converged(it, timer, r, p), rho);
    if (cols.active() == 0) break;
    const Index nw = cols.active();
    z.resize(n, nw);
    timed_apply_many(m, r, z, ws.get(), cols, opts, r32);
    rho_next.resize(nw);
    beta.resize(nw);
    dot_columns(r, z, rho_next);
    for (Index c = 0; c < nw; ++c) {
      beta[c] = rho_next[c] / rho[c];
      rho[c] = rho_next[c];
    }
    xpay_columns(beta, z, p);
  }
  cols.finalize_remaining(it, timer);
  for (SolveResult& res : cols.results) finalize_solve_telemetry(res, opts);
  return std::move(cols.results);
}

}  // namespace

std::vector<SolveResult> block_pcg(const CsrMatrix& a,
                                   const precond::Preconditioner& m,
                                   const MultiVector& b, MultiVector& x,
                                   const SolveOptions& opts) {
  return block_pcg_impl(a, m, b, x, opts, "block-pcg+" + m.name());
}

std::vector<SolveResult> block_flexible_pcg(const CsrMatrix& a,
                                            const precond::Preconditioner& m,
                                            const MultiVector& b,
                                            MultiVector& x,
                                            const SolveOptions& opts) {
  check_block_dims(a, b, x);
  Timer timer;
  const Index n = a.rows();
  const std::string label = "block-fpcg+" + m.name();
  ColumnState cols(b, opts, label);
  const auto ws = m.make_workspace();

  MultiVector r(n, b.cols());
  initial_residual(a, b, x, r, cols);
  cols.push_history();
  cols.deflate_converged(0, timer, r);

  // Windowed store of A-orthonormal direction blocks (with images Q = A P,
  // newest last). With a nonlinear preconditioner the short CG recurrence
  // loses conjugacy, so new directions are orthogonalized against — and
  // every column's residual re-projected over — the whole window; that is
  // pure BLAS-1 work, negligible next to one DSS inference, and it is what
  // lets the shared search space actually pay off for DDM-GNN.
  std::vector<MultiVector> pblocks, qblocks;
  Index stored = 0;  // total direction columns across the window
  // Eviction cap (oldest first): generous — the window is what converts the
  // batched inference into an iteration-count win — but bounded to ~256 MB
  // of direction storage on huge problems (each stored direction keeps both
  // p and q, 16 bytes/row).
  const Index mem_cap = static_cast<Index>(std::max<long long>(
      2 * b.cols(), (256ll << 20) / (16ll * n)));
  const Index max_stored =
      std::min(std::max<Index>(256, 16 * b.cols()), mem_cap);

  MultiVector z;
  MultiVector r32;  // fp32-rounded residual block (opts.precond_fp32)
  // Stagnation safeguard: if no active column improves its best residual by
  // the slack factor over a full window, stop and let the per-column
  // fallback finish the stragglers. Columns active at such a structural
  // no-progress exit are remembered so the merged per-column failure can
  // report "stagnated" even when the history is off (serving runs with
  // track_history=false) and the fallback then exhausts the leftover budget.
  constexpr int kStallWindow = 25;
  constexpr double kStallSlack = 0.999;
  std::vector<double> best(cols.rnorm.begin(), cols.rnorm.end());
  std::vector<char> block_stagnated(b.cols(), 0);
  int stall = 0;

  int it = 0;
  while (cols.active() > 0 && it < opts.max_iterations) {
    obs::Span iter_span("block-fpcg.iter");
    const Index na = cols.active();
    z.resize(n, na);
    timed_apply_many(m, r, z, ws.get(), cols, opts, r32);

    // Build the new direction block: conjugate the preconditioned residuals
    // against every stored block (coef = Qᵀ d, valid because Pᵀ A P = I per
    // stored column), then A-orthonormalize the candidates among themselves
    // (modified Gram-Schmidt in the A-inner product), dropping columns that
    // fall into the span of the ones already kept — that is the
    // rank-deficiency / duplicate-RHS handling.
    MultiVector dnew(n, na), qnew(n, na);
    Index kept = 0;
    for (Index c = 0; c < na; ++c) {
      auto d = dnew.col(kept);
      la::copy(z.col(c), d);
      const double norm_before = norm2(d);
      if (norm_before == 0.0) continue;
      for (std::size_t blk = 0; blk < pblocks.size(); ++blk) {
        for (Index k = 0; k < pblocks[blk].cols(); ++k) {
          axpy(-dot(qblocks[blk].col(k), d), pblocks[blk].col(k), d);
        }
      }
      for (Index k = 0; k < kept; ++k) {
        axpy(-dot(qnew.col(k), d), dnew.col(k), d);
      }
      if (norm2(d) <= 1e-10 * norm_before) continue;  // already spanned
      auto qd = qnew.col(kept);
      a.multiply(d, qd);
      const double a_norm2 = dot(d, qd);
      if (!(a_norm2 > 0.0)) continue;  // numerically indefinite direction
      const double inv = 1.0 / std::sqrt(a_norm2);
      la::scale(inv, d);
      la::scale(inv, qd);
      ++kept;
    }
    if (kept == 0) {
      // No usable directions — progress stopped; fall back below.
      for (const Index j : cols.act) block_stagnated[j] = 1;
      break;
    }
    if (kept < na) {
      std::vector<Index> head(kept);
      for (Index k = 0; k < kept; ++k) head[k] = k;
      dnew.keep_columns(head);
      qnew.keep_columns(head);
    }
    pblocks.push_back(std::move(dnew));
    qblocks.push_back(std::move(qnew));
    stored += kept;
    while (stored > max_stored && pblocks.size() > 1) {
      stored -= pblocks.front().cols();
      pblocks.erase(pblocks.begin());
      qblocks.erase(qblocks.begin());
    }

    // Galerkin update over the WHOLE window for every column: for each
    // stored direction p (A-orthonormal), x += p (pᵀ r), r -= (A p)(pᵀ r).
    // Old-block coefficients are exactly zero for a fixed SPD M (classic
    // conjugacy) but recover what the nonlinear GNN leaks.
    for (Index c = 0; c < na; ++c) {
      auto xc = x.col(cols.act[c]);
      auto rc = r.col(c);
      for (std::size_t blk = 0; blk < pblocks.size(); ++blk) {
        const MultiVector& pb = pblocks[blk];
        const MultiVector& qb = qblocks[blk];
        for (Index k = 0; k < pb.cols(); ++k) {
          const double ck = dot(pb.col(k), rc);
          axpy(ck, pb.col(k), xc);
          axpy(-ck, qb.col(k), rc);
        }
      }
      cols.rnorm[c] = norm2(rc);
    }
    ++it;
    cols.push_history();
    iter_span.arg("iter", it);
    iter_span.arg("active_columns", cols.active());

    bool improved = false;
    for (std::size_t c = 0; c < cols.act.size(); ++c) {
      if (cols.rnorm[c] < kStallSlack * best[c]) {
        best[c] = cols.rnorm[c];
        improved = true;
      }
    }
    stall = improved ? 0 : stall + 1;

    const auto keep = cols.deflate_converged(it, timer, r);
    if (keep.size() != best.size()) {
      for (std::size_t c = 0; c < keep.size(); ++c) best[c] = best[keep[c]];
      best.resize(keep.size());
    }
    if (stall >= kStallWindow) {
      for (const Index j : cols.act) block_stagnated[j] = 1;
      break;
    }
  }
  cols.finalize_remaining(it, timer);

  // Correctness net: the recurrences above (nonlinear preconditioner, lost
  // conjugation) are verified per column against the TRUE residual; any
  // column that misses its tolerance is finished by scalar flexible PCG,
  // warm-started from the block iterate.
  std::vector<double> true_res(n);
  for (Index j = 0; j < b.cols(); ++j) {
    a.multiply(x.col(j), true_res);
    const auto bj = b.col(j);
    for (Index i = 0; i < n; ++i) true_res[i] = bj[i] - true_res[i];
    const double tr = norm2(true_res);
    const double nbj = norm2(bj);
    const double stop = opts.rel_tol * (nbj > 0.0 ? nbj : 1.0);
    SolveResult& res = cols.results[j];
    res.final_relative_residual = tr / (nbj > 0.0 ? nbj : 1.0);
    if (tr <= stop) {
      res.converged = true;
      finalize_solve_telemetry(res, opts);
      continue;
    }
    SolveOptions fb = opts;
    fb.max_iterations = std::max(1, opts.max_iterations - res.iterations);
    // The scalar solve runs finalize_solve_telemetry itself (it is a real
    // solve; its metrics belong in the registry). Re-derive the failure and
    // per-column preconditioner accounting on the merged result, without
    // recording a second set of per-solve metrics.
    SolveResult scalar = flexible_pcg(a, m, bj, x.col(j), fb);
    scalar.iterations += res.iterations;
    scalar.precond_seconds += res.precond_seconds;
    if (cols.forensics) {
      scalar.precond_history.insert(scalar.precond_history.begin(),
                                    res.precond_history.begin(),
                                    res.precond_history.end());
    }
    scalar.total_seconds = timer.seconds();
    scalar.method = label + ">fallback:" + scalar.method;
    if (history_enabled(opts)) {
      scalar.history.insert(scalar.history.begin(), res.history.begin(),
                            res.history.end());
    }
    if (!scalar.converged) {
      scalar.failure = classify_failure(scalar, opts);
      // The block phase watched this column make no progress for a full
      // stall window before handing it over; "ran out of iterations" would
      // misname that. Keep any sharper diagnosis (NaN, divergence).
      if (block_stagnated[j] &&
          scalar.failure == obs::FailureReason::kMaxIterations) {
        scalar.failure = obs::FailureReason::kStagnated;
      }
    }
    cols.results[j] = std::move(scalar);
  }
  return std::move(cols.results);
}

std::optional<std::vector<SolveResult>> run_block_krylov(
    KrylovMethod method, const CsrMatrix& a, const precond::Preconditioner& m,
    const MultiVector& b, MultiVector& x, const SolveOptions& opts) {
  switch (method) {
    case KrylovMethod::kCg: {
      static const precond::IdentityPreconditioner identity;
      return block_pcg_impl(a, identity, b, x, opts, "block-cg");
    }
    case KrylovMethod::kPcg:
      return block_pcg(a, m, b, x, opts);
    case KrylovMethod::kFpcg:
      return block_flexible_pcg(a, m, b, x, opts);
    case KrylovMethod::kBicgstab:
    case KrylovMethod::kGmres:
      return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace ddmgnn::solver
