// Krylov solvers (paper §II): CG, preconditioned CG exactly as Algorithm 1,
// flexible PCG (Polak–Ribière β — required when the preconditioner is not a
// fixed SPD operator, which is the case for DDM-GNN), BiCGStab and restarted
// GMRES for non-symmetric settings. All report per-iteration relative
// residual histories (Fig. 5b) and the accumulated preconditioner time
// (Table III's T_lu / T_gnn columns).
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "la/csr.hpp"
#include "precond/preconditioner.hpp"

namespace ddmgnn::solver {

using la::CsrMatrix;

struct SolveOptions {
  int max_iterations = 10000;
  /// Convergence: ||r_k|| <= rel_tol * ||b||.
  double rel_tol = 1e-6;
  bool track_history = true;
};

struct SolveResult {
  bool converged = false;
  int iterations = 0;
  double final_relative_residual = 0.0;
  /// history[k] = ||r_k|| / ||b|| (k = 0 is the initial residual).
  std::vector<double> history;
  double total_seconds = 0.0;
  /// Time spent inside Preconditioner::apply.
  double precond_seconds = 0.0;
  std::string method;
};

/// Unpreconditioned conjugate gradient.
SolveResult conjugate_gradient(const CsrMatrix& a, std::span<const double> b,
                               std::span<double> x,
                               const SolveOptions& opts = {});

/// Preconditioned CG, Algorithm 1 of the paper (Fletcher–Reeves β).
SolveResult pcg(const CsrMatrix& a, const precond::Preconditioner& m,
                std::span<const double> b, std::span<double> x,
                const SolveOptions& opts = {});

/// Flexible PCG: β = <r_{k+1}, z_{k+1} - z_k> / <r_k, z_k>. Tolerates
/// non-symmetric / nonlinear preconditioners such as the GNN.
SolveResult flexible_pcg(const CsrMatrix& a, const precond::Preconditioner& m,
                         std::span<const double> b, std::span<double> x,
                         const SolveOptions& opts = {});

/// Preconditioned BiCGStab (right preconditioning).
SolveResult bicgstab(const CsrMatrix& a, const precond::Preconditioner& m,
                     std::span<const double> b, std::span<double> x,
                     const SolveOptions& opts = {});

/// Restarted GMRES(m) with right preconditioning.
SolveResult gmres(const CsrMatrix& a, const precond::Preconditioner& m,
                  std::span<const double> b, std::span<double> x,
                  const SolveOptions& opts = {}, int restart = 50);

}  // namespace ddmgnn::solver
