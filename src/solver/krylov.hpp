// Krylov solvers (paper §II): CG, preconditioned CG exactly as Algorithm 1,
// flexible PCG (Polak–Ribière β — required when the preconditioner is not a
// fixed SPD operator, which is the case for DDM-GNN), BiCGStab and restarted
// GMRES for non-symmetric settings. All report per-iteration relative
// residual histories (Fig. 5b) and the accumulated preconditioner time
// (Table III's T_lu / T_gnn columns).
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "la/csr.hpp"
#include "obs/forensics.hpp"
#include "precond/preconditioner.hpp"

namespace ddmgnn::solver {

using la::CsrMatrix;

/// The Krylov methods this module implements, as data: configs carry one of
/// these instead of call sites hard-coding which solver function to invoke.
enum class KrylovMethod {
  kCg,        // unpreconditioned conjugate gradient
  kPcg,       // Algorithm 1 (Fletcher–Reeves)
  kFpcg,      // flexible PCG (Polak–Ribière) — safe for nonlinear M⁻¹
  kBicgstab,  // right-preconditioned BiCGStab
  kGmres,     // restarted GMRES, right preconditioning
};

/// Canonical lowercase name: "cg", "pcg", "fpcg", "bicgstab", "gmres".
/// SolveResult::method strings are prefixed with exactly these.
const char* krylov_method_name(KrylovMethod method);

/// Inverse of krylov_method_name; nullopt for unknown strings.
std::optional<KrylovMethod> krylov_method_from_name(std::string_view name);

struct SolveOptions {
  int max_iterations = 10000;
  /// Convergence: ||r_k|| <= rel_tol * ||b||.
  double rel_tol = 1e-6;
  bool track_history = true;
  /// Restart length when the method is KrylovMethod::kGmres.
  int gmres_restart = 50;
  /// Mixed-precision preconditioning: round the residual handed to M⁻¹ and
  /// the correction it returns through fp32 while every outer recurrence
  /// (x, r, dots, norms) stays fp64. Honored by pcg / flexible_pcg and both
  /// block drivers. The rounding makes M effectively nonlinear, so pair it
  /// with kFpcg (SolverSession's default-method selection does this); the
  /// block path's per-column true-residual verification guards it further.
  bool precond_fp32 = false;
  /// Warm-start guess: when non-empty (size n), run_krylov copies it into
  /// `x` before dispatching, so the solve starts from x0 instead of whatever
  /// the caller left in `x`. Every driver already treats `x` as the initial
  /// guess (r₀ = b − A·x₀); this field just makes seeding explicit for
  /// callers — SolverSession::solve_many and the streaming SolveService —
  /// whose output buffers are freshly allocated. The span is only read
  /// during the run_krylov call.
  std::span<const double> x0;
};

struct SolveResult {
  bool converged = false;
  int iterations = 0;
  double final_relative_residual = 0.0;
  /// history[k] = ||r_k|| / ||b|| (k = 0 is the initial residual).
  std::vector<double> history;
  double total_seconds = 0.0;
  /// Time spent inside Preconditioner::apply. Every driver (scalar, block,
  /// stationary) accumulates over the exact windows that also become
  /// "precond.apply" trace spans, so the coarse correction — which runs
  /// inside AdditiveSchwarz::apply — is included everywhere by construction.
  double precond_seconds = 0.0;
  /// Why the solve missed tolerance (kNone when converged). Assigned by
  /// classify_failure in every driver.
  obs::FailureReason failure = obs::FailureReason::kNone;
  /// Seconds of each individual preconditioner application, in order.
  /// Captured only while obs::forensics_enabled(); empty otherwise.
  std::vector<double> precond_history;
  std::string method;
};

/// Assign res.failure from the residual history: NaN/Inf residual → kNan;
/// final residual grew ≥10x past its start → kDiverged; <1% improvement over
/// the trailing 10 recorded iterations → kStagnated; otherwise kMaxIterations
/// (also the conservative answer when track_history was off). Pure function
/// of (res, opts); exposed so tests and post-hoc tooling can re-classify.
obs::FailureReason classify_failure(const SolveResult& res,
                                    const SolveOptions& opts);

/// Every driver's return path: fills res.failure (kNone when converged;
/// classify_failure otherwise, unless the driver already pinned a reason —
/// stationary_iteration detects divergence itself) and, when metrics are
/// enabled, records the per-solve counters/gauges/histograms
/// (solver.solves_total, solver.solve_seconds_total,
/// solver.precond_seconds_total, solver.iterations,
/// solver.failures_total{method=...,reason=...}).
void finalize_solve_telemetry(SolveResult& res, const SolveOptions& opts);

/// Unpreconditioned conjugate gradient.
SolveResult conjugate_gradient(const CsrMatrix& a, std::span<const double> b,
                               std::span<double> x,
                               const SolveOptions& opts = {});

/// Preconditioned CG, Algorithm 1 of the paper (Fletcher–Reeves β).
SolveResult pcg(const CsrMatrix& a, const precond::Preconditioner& m,
                std::span<const double> b, std::span<double> x,
                const SolveOptions& opts = {});

/// Flexible PCG: β = <r_{k+1}, z_{k+1} - z_k> / <r_k, z_k>. Tolerates
/// non-symmetric / nonlinear preconditioners such as the GNN.
SolveResult flexible_pcg(const CsrMatrix& a, const precond::Preconditioner& m,
                         std::span<const double> b, std::span<double> x,
                         const SolveOptions& opts = {});

/// Preconditioned BiCGStab (right preconditioning).
SolveResult bicgstab(const CsrMatrix& a, const precond::Preconditioner& m,
                     std::span<const double> b, std::span<double> x,
                     const SolveOptions& opts = {});

/// Restarted GMRES(m) with right preconditioning; the restart length is
/// opts.gmres_restart.
SolveResult gmres(const CsrMatrix& a, const precond::Preconditioner& m,
                  std::span<const double> b, std::span<double> x,
                  const SolveOptions& opts = {});

/// Dispatch on `method` (kCg ignores `m`).
/// This is the single entry point SolverSession and the tools route through.
SolveResult run_krylov(KrylovMethod method, const CsrMatrix& a,
                       const precond::Preconditioner& m,
                       std::span<const double> b, std::span<double> x,
                       const SolveOptions& opts = {});

}  // namespace ddmgnn::solver
