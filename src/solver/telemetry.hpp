// Shared solver-driver instrumentation: the one timed window every
// preconditioner application goes through, and the forensics-series hookup.
// Internal to src/solver (krylov.cpp, block_krylov.cpp, stationary.cpp); the
// public telemetry surface (classify_failure, finalize_solve_telemetry) is
// declared in krylov.hpp.
#pragma once

#include <cstdint>
#include <vector>

#include "common/timer.hpp"
#include "obs/flags.hpp"
#include "obs/trace.hpp"
#include "solver/krylov.hpp"

namespace ddmgnn::solver {

/// One timed preconditioner application: the single measurement feeds (a)
/// SolveResult::precond_seconds via the Accumulator, (b) the forensics
/// per-application series when enabled, and (c) a "precond.apply" trace span
/// of the identical duration — so span totals reconcile with precond_seconds
/// exactly, across every driver (the consistency satellite of the telemetry
/// PR is true by construction, not by convention).
class PrecondScope {
 public:
  PrecondScope(Accumulator& acc, std::vector<double>* series,
               const char* span_name = "precond.apply")
      : acc_(acc), series_(series), name_(span_name),
        tracing_(obs::trace_enabled()) {
    if (tracing_) start_ns_ = obs::TraceRecorder::instance().now_ns();
    timer_.reset();
  }
  ~PrecondScope() {
    const double s = timer_.seconds();
    acc_.add(s);
    if (series_ != nullptr) series_->push_back(s);
    if (tracing_) {
      obs::emit_span(name_, start_ns_, static_cast<std::int64_t>(s * 1e9));
    }
  }
  PrecondScope(const PrecondScope&) = delete;
  PrecondScope& operator=(const PrecondScope&) = delete;

 private:
  Accumulator& acc_;
  std::vector<double>* series_;
  const char* name_;
  bool tracing_;
  std::int64_t start_ns_ = 0;
  Timer timer_;
};

/// &res.precond_history when forensics capture is on, else nullptr (the
/// series then stays empty and PrecondScope skips the push_back).
inline std::vector<double>* forensic_series(SolveResult& res) {
  return obs::forensics_enabled() ? &res.precond_history : nullptr;
}

/// Residual-history capture gate: the caller's track_history option OR the
/// process-wide forensics flag — forensics needs the per-iteration residual
/// series (classify_failure's stagnation window reads it) even when the
/// caller opted out of history, as serving front-ends do.
inline bool history_enabled(const SolveOptions& opts) {
  return opts.track_history || obs::forensics_enabled();
}

}  // namespace ddmgnn::solver
