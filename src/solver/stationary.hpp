// Stationary (Richardson) iteration with a preconditioner — the historical
// form of the Schwarz method and the paper's Eq. 8/9:
//   u^{n+1} = u^n + M⁻¹ (b − A u^n)
// Schwarz methods were introduced as stationary solvers before being used as
// Krylov preconditioners (§II-A); this solver lets the benches and tests
// compare both usages (Krylov acceleration is strictly better, which the
// stationary_vs_pcg test asserts).
#pragma once

#include <cstdint>

#include "solver/krylov.hpp"

namespace ddmgnn::solver {

/// Preconditioned Richardson iteration (paper Eq. 8). `damping` scales the
/// correction (1.0 = the paper's plain fixed-point form — which DIVERGES
/// whenever the spectrum of M⁻¹A exceeds 2; use `power_iteration_damping`
/// for a safe default). The iteration aborts early with converged=false
/// when the residual blows past kDivergenceFactor × ‖b‖ or turns non-finite
/// instead of looping to max_iterations on garbage.
SolveResult stationary_iteration(const CsrMatrix& a,
                                 const precond::Preconditioner& m,
                                 std::span<const double> b,
                                 std::span<double> x,
                                 const SolveOptions& opts = {},
                                 double damping = 1.0);

/// Residual growth beyond this factor of ‖b‖ aborts stationary_iteration.
inline constexpr double kDivergenceFactor = 1e8;

/// Safe Richardson damping ω from a cheap power iteration on M⁻¹A:
/// estimates λ_max(M⁻¹A) and returns 1/(1.05·λ̂_max), which keeps the
/// iteration matrix I − ωM⁻¹A contractive for SPD-preconditioned SPD
/// systems (eigenvalues fall in (0, 1)). `iterations` power steps (default
/// 12) cost one SpMV + one preconditioner application each.
double power_iteration_damping(const CsrMatrix& a,
                               const precond::Preconditioner& m,
                               int iterations = 12, std::uint64_t seed = 0);

}  // namespace ddmgnn::solver
