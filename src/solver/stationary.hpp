// Stationary (Richardson) iteration with a preconditioner — the historical
// form of the Schwarz method and the paper's Eq. 8/9:
//   u^{n+1} = u^n + M⁻¹ (b − A u^n)
// Schwarz methods were introduced as stationary solvers before being used as
// Krylov preconditioners (§II-A); this solver lets the benches and tests
// compare both usages (Krylov acceleration is strictly better, which the
// stationary_vs_pcg test asserts).
#pragma once

#include "solver/krylov.hpp"

namespace ddmgnn::solver {

/// Preconditioned Richardson iteration (paper Eq. 8). `damping` scales the
/// correction (1.0 = the paper's plain fixed-point form).
SolveResult stationary_iteration(const CsrMatrix& a,
                                 const precond::Preconditioner& m,
                                 std::span<const double> b,
                                 std::span<double> x,
                                 const SolveOptions& opts = {},
                                 double damping = 1.0);

}  // namespace ddmgnn::solver
