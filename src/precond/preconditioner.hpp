// Preconditioner interface M⁻¹: maps a residual r to a correction z
// (Algorithm 1's red lines). Implementations: Identity, Jacobi, IC(0),
// one-/two-level Additive Schwarz with pluggable subdomain solvers (exact
// Cholesky = the paper's DDM-LU; DSS GNN = the paper's DDM-GNN).
#pragma once

#include <span>
#include <string>
#include <vector>

namespace ddmgnn::precond {

class Preconditioner {
 public:
  virtual ~Preconditioner() = default;

  /// z = M⁻¹ r. Must not alias.
  virtual void apply(std::span<const double> r, std::span<double> z) const = 0;

  virtual std::string name() const = 0;

  /// True when M⁻¹ is symmetric positive definite — plain PCG is then safe;
  /// otherwise the hybrid solver switches to flexible PCG.
  virtual bool is_symmetric() const { return true; }
};

/// z = r.
class IdentityPreconditioner final : public Preconditioner {
 public:
  void apply(std::span<const double> r, std::span<double> z) const override {
    for (std::size_t i = 0; i < r.size(); ++i) z[i] = r[i];
  }
  std::string name() const override { return "none"; }
};

/// z = diag(A)⁻¹ r.
class JacobiPreconditioner final : public Preconditioner {
 public:
  explicit JacobiPreconditioner(std::vector<double> diagonal);
  void apply(std::span<const double> r, std::span<double> z) const override;
  std::string name() const override { return "jacobi"; }

 private:
  std::vector<double> inv_diag_;
};

}  // namespace ddmgnn::precond
