// Preconditioner interface M⁻¹: maps a residual r to a correction z
// (Algorithm 1's red lines). Implementations: Identity, Jacobi, IC(0),
// one-/two-level Additive Schwarz with pluggable subdomain solvers (exact
// Cholesky = the paper's DDM-LU; DSS GNN = the paper's DDM-GNN).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "la/multivector.hpp"

namespace ddmgnn::precond {

class Preconditioner {
 public:
  virtual ~Preconditioner() = default;

  /// z = M⁻¹ r. Must not alias.
  virtual void apply(std::span<const double> r, std::span<double> z) const = 0;

  /// Z = M⁻¹ R column-wise for a block of s residuals. The default loops
  /// apply(); implementations that can amortize work across columns override
  /// it (AdditiveSchwarz batches all s columns through one subdomain-solver
  /// call — for DDM-GNN that is one disjoint-union DSS inference, Eq. 14).
  /// Every override must stay column-equivalent to the looped default.
  virtual void apply_many(const la::MultiVector& r, la::MultiVector& z) const {
    for (la::Index j = 0; j < r.cols(); ++j) apply(r.col(j), z.col(j));
  }

  virtual std::string name() const = 0;

  /// True when M⁻¹ is symmetric positive definite — plain PCG is then safe;
  /// otherwise the hybrid solver switches to flexible PCG.
  virtual bool is_symmetric() const { return true; }
};

/// z = r.
class IdentityPreconditioner final : public Preconditioner {
 public:
  void apply(std::span<const double> r, std::span<double> z) const override {
    for (std::size_t i = 0; i < r.size(); ++i) z[i] = r[i];
  }
  std::string name() const override { return "none"; }
};

/// z = diag(A)⁻¹ r.
class JacobiPreconditioner final : public Preconditioner {
 public:
  explicit JacobiPreconditioner(std::vector<double> diagonal);
  void apply(std::span<const double> r, std::span<double> z) const override;
  std::string name() const override { return "jacobi"; }

 private:
  std::vector<double> inv_diag_;
};

}  // namespace ddmgnn::precond
