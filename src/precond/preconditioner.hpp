// Preconditioner interface M⁻¹: maps a residual r to a correction z
// (Algorithm 1's red lines). Implementations: Identity, Jacobi, IC(0),
// one-/two-level Additive Schwarz with pluggable subdomain solvers (exact
// Cholesky = the paper's DDM-LU; DSS GNN = the paper's DDM-GNN).
//
// Concurrency contract: a prepared preconditioner is immutable — apply and
// apply_many never touch shared mutable state, so any number of threads may
// apply the SAME preconditioner concurrently (one prepared SolverSession
// serving many clients is the paper's amortize-setup-over-solves economics
// at serving scale). All per-application scratch lives in a caller-owned
// ApplyWorkspace: create one per concurrent caller with make_workspace(),
// reuse it across applications (a Krylov solve holds one for its whole
// duration, so steady state is allocation-free), and never share one
// workspace between two simultaneous calls.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "la/multivector.hpp"

namespace ddmgnn::precond {

/// Opaque per-caller scratch for Preconditioner::apply/apply_many. Obtained
/// from make_workspace() of the preconditioner it is used with; holds every
/// buffer an application mutates (local restrictions, block scratch, DSS
/// inference tensors). A workspace belongs to exactly one in-flight
/// application at a time.
class ApplyWorkspace {
 public:
  virtual ~ApplyWorkspace() = default;
};

class Preconditioner {
 public:
  virtual ~Preconditioner() = default;

  /// Create scratch for apply/apply_many: one workspace per concurrent
  /// caller, reusable across applications. Implementations without scratch
  /// return nullptr, and their apply accepts ws == nullptr.
  virtual std::unique_ptr<ApplyWorkspace> make_workspace() const {
    return nullptr;
  }

  /// Estimated steady-state bytes one workspace occupies once warmed up
  /// (SolverSession::memory_bytes counts one concurrent solve's worth so the
  /// SessionCache byte budget sees the scratch, not just the prepared state).
  virtual std::size_t workspace_bytes() const { return 0; }

  /// z = M⁻¹ r. Must not alias. `ws` must come from make_workspace() of this
  /// object (nullptr only for implementations that return nullptr there).
  /// Thread-safe for concurrent callers holding distinct workspaces.
  virtual void apply(std::span<const double> r, std::span<double> z,
                     ApplyWorkspace* ws) const = 0;

  /// Z = M⁻¹ R column-wise for a block of s residuals. The default loops
  /// apply(); implementations that can amortize work across columns override
  /// it (AdditiveSchwarz batches all s columns through one subdomain-solver
  /// call — for DDM-GNN that is one disjoint-union DSS inference, Eq. 14).
  /// Every override must stay column-equivalent to the looped default.
  virtual void apply_many(const la::MultiVector& r, la::MultiVector& z,
                          ApplyWorkspace* ws) const {
    for (la::Index j = 0; j < r.cols(); ++j) apply(r.col(j), z.col(j), ws);
  }

  /// Convenience forms for one-off applications (tests, examples): allocate
  /// a fresh workspace per call. Correct from any thread, but hot loops
  /// should hold a workspace and call the explicit forms instead.
  void apply(std::span<const double> r, std::span<double> z) const {
    const std::unique_ptr<ApplyWorkspace> ws = make_workspace();
    apply(r, z, ws.get());
  }
  void apply_many(const la::MultiVector& r, la::MultiVector& z) const {
    const std::unique_ptr<ApplyWorkspace> ws = make_workspace();
    apply_many(r, z, ws.get());
  }

  virtual std::string name() const = 0;

  /// True when M⁻¹ is symmetric positive definite — plain PCG is then safe;
  /// otherwise the hybrid solver switches to flexible PCG.
  virtual bool is_symmetric() const { return true; }
};

/// z = r.
class IdentityPreconditioner final : public Preconditioner {
 public:
  using Preconditioner::apply;
  void apply(std::span<const double> r, std::span<double> z,
             ApplyWorkspace*) const override {
    for (std::size_t i = 0; i < r.size(); ++i) z[i] = r[i];
  }
  std::string name() const override { return "none"; }
};

/// z = diag(A)⁻¹ r.
class JacobiPreconditioner final : public Preconditioner {
 public:
  using Preconditioner::apply;
  explicit JacobiPreconditioner(std::vector<double> diagonal);
  void apply(std::span<const double> r, std::span<double> z,
             ApplyWorkspace*) const override;
  std::string name() const override { return "jacobi"; }

 private:
  std::vector<double> inv_diag_;
};

}  // namespace ddmgnn::precond
