// String-keyed preconditioner registry: maps names ("none", "jacobi", "ic0",
// "ddm-lu", "ddm-gnn", one-level variants) to factories returning
// `std::unique_ptr<Preconditioner>`, so the choice of preconditioner is data
// (a config string) instead of call-site enum-switch code. The registry also
// carries per-entry traits — whether a factory needs a domain decomposition
// or a trained DSS model, and whether the resulting operator is symmetric —
// which is what SolverSession uses to decide how much setup to build and
// which Krylov method is safe by default.
//
// Built-in names are registered on first use; callers may add their own
// factories (e.g. a multigrid or a new learned preconditioner) under fresh
// names and select them through the same `HybridConfig::preconditioner`
// string without touching the solver core.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "la/csr.hpp"
#include "precond/preconditioner.hpp"

// The GNN factories need a trained model; forward-declared so this header
// stays light (registry.cpp sees the full types).
namespace ddmgnn::gnn {
class DssModel;
}
namespace ddmgnn::partition {
struct Decomposition;
}
namespace ddmgnn::mesh {
struct Point2;
}

namespace ddmgnn::precond {

/// Everything a factory may consume. `A` is always required; the rest is
/// optional and validated by the factory itself (with a readable error)
/// according to its traits. Geometry is deliberately generic — node
/// positions plus a message-graph pattern — so the same factories serve both
/// the mesh setup path (mesh points + mesh adjacency) and the matrix-first
/// path (synthetic spectral coordinates + matrix adjacency).
struct PrecondContext {
  const la::CsrMatrix* A = nullptr;
  /// Overlapping decomposition — required when traits.needs_decomposition.
  /// Must outlive the returned preconditioner.
  const partition::Decomposition* dec = nullptr;
  /// Node positions (one per row of A) — required when traits.needs_geometry.
  /// Copied by the factories; need only live through create().
  std::span<const mesh::Point2> coords;
  /// Message-graph pattern (mesh adjacency or matrix adjacency as a unit
  /// CSR) — required when traits.needs_geometry. Copied by the factories.
  const la::CsrMatrix* edge_pattern = nullptr;
  /// Dirichlet flags (identity rows); empty means none.
  std::span<const std::uint8_t> dirichlet;
  /// Trained DSS model — required when traits.needs_model. Must outlive the
  /// returned preconditioner.
  const gnn::DssModel* model = nullptr;
  /// GNN local-solver knobs (see GnnSubdomainSolver::Options).
  int gnn_refinement_steps = 0;
  bool gnn_normalize = true;
  /// Refine-until-contractive setup with exact-Cholesky fallback for
  /// non-contractive subdomains (the served-configuration convergence fix).
  bool gnn_adaptive_refinement = false;
  double gnn_contraction_target = 0.25;
  int gnn_max_refinement_steps = 3;
  /// With adaptive refinement, also fall back per subdomain when the flop
  /// model predicts the GNN apply overwhelmingly costlier than exact sweeps.
  bool gnn_cost_aware_fallback = true;
  /// fp32 sweeps for the Cholesky fallbacks (mixed-precision apply; pair
  /// with SolveOptions::precond_fp32 on the outer Krylov).
  bool gnn_fp32_fallback = false;
  /// Multi-level coarse hierarchy knobs (the `-ml` entries). mg_levels is
  /// the coarse-hierarchy depth: 1 keeps the classic dense Nicolaides solve
  /// (bitwise-identical to the plain entries), L >= 2 builds a smoothed-
  /// aggregation hierarchy and applies it as a V/W-cycle.
  int mg_levels = 1;
  std::string mg_cycle = "v";        // "v" | "w"
  std::string mg_smoother = "jacobi";  // "jacobi" | "chebyshev"
  int mg_smooth_steps = 1;
  la::Index mg_aggregate_target = 8;
  /// Seed for the hierarchy's power-iteration damping estimates.
  std::uint64_t seed = 0;
};

/// Static facts about a registered preconditioner, consulted *before*
/// construction so the session only builds the setup state a factory needs.
struct PrecondTraits {
  bool needs_decomposition = false;
  bool needs_model = false;
  /// False for learned/nonlinear operators: plain PCG is then unsafe and the
  /// session defaults to flexible PCG.
  bool symmetric = true;
  /// Consumes node coordinates + a message-graph pattern (the GNN entries).
  bool needs_geometry = false;
  /// Whether setup can run from a bare assembled operator
  /// (SolverSession::setup(A, cfg)): everything the factory needs is either
  /// in the matrix or synthesizable from its graph. Entries registered with
  /// false are mesh-bound and the matrix-first path refuses them.
  bool supports_algebraic = true;
};

using PrecondFactory =
    std::function<std::unique_ptr<Preconditioner>(const PrecondContext&)>;

class PrecondRegistry {
 public:
  /// Process-wide registry, built-ins pre-registered.
  static PrecondRegistry& instance();

  /// Register a factory under `name`. Throws ContractError on duplicates.
  void add(std::string name, PrecondTraits traits, PrecondFactory factory);
  /// Register `alias` as another spelling of the existing `canonical` name.
  void add_alias(std::string alias, std::string canonical);

  bool contains(std::string_view name) const;
  /// Resolve aliases to the canonical name. Throws ContractError listing the
  /// known names when `name` is not registered.
  const std::string& canonical(std::string_view name) const;
  const PrecondTraits& traits(std::string_view name) const;
  std::unique_ptr<Preconditioner> create(std::string_view name,
                                         const PrecondContext& ctx) const;
  /// Canonical names, sorted (aliases excluded).
  std::vector<std::string> names() const;

 private:
  PrecondRegistry();

  struct Entry {
    std::string name;
    PrecondTraits traits;
    PrecondFactory factory;
  };
  const Entry& find(std::string_view name) const;

  std::vector<Entry> entries_;
  std::vector<std::pair<std::string, std::string>> aliases_;
};

/// Convenience wrappers over PrecondRegistry::instance().
std::unique_ptr<Preconditioner> make_preconditioner(std::string_view name,
                                                    const PrecondContext& ctx);
const PrecondTraits& preconditioner_traits(std::string_view name);
std::vector<std::string> preconditioner_names();

}  // namespace ddmgnn::precond
