#include "precond/registry.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/error.hpp"
// The registry is the one place that knows every built-in, including the
// GNN-backed ones from src/core — a deliberate, contained layering exception
// so that callers get a complete name table from a single lookup point.
#include "core/gnn_subdomain_solver.hpp"
#include "mg/hierarchy.hpp"
#include "mg/vcycle.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "partition/decomposition.hpp"
#include "precond/asm_precond.hpp"
#include "precond/ic0_precond.hpp"
#include "precond/subdomain_solver.hpp"

namespace ddmgnn::precond {

namespace {

const la::CsrMatrix& require_matrix(const PrecondContext& ctx) {
  DDMGNN_CHECK(ctx.A != nullptr, "preconditioner factory: context.A is null");
  return *ctx.A;
}

const partition::Decomposition& require_decomposition(
    const PrecondContext& ctx, std::string_view name) {
  DDMGNN_CHECK(ctx.dec != nullptr,
               std::string(name) + " requires a domain decomposition");
  return *ctx.dec;
}

std::unique_ptr<SubdomainSolver> make_gnn_local(const PrecondContext& ctx,
                                                std::string_view name) {
  DDMGNN_CHECK(ctx.model != nullptr,
               std::string(name) + " requires a trained DSS model");
  const la::CsrMatrix& A = require_matrix(ctx);
  DDMGNN_CHECK(ctx.coords.size() == static_cast<std::size_t>(A.rows()),
               std::string(name) +
                   " requires node coordinates (mesh points or synthetic "
                   "spectral coordinates), one per operator row");
  DDMGNN_CHECK(ctx.edge_pattern != nullptr &&
                   ctx.edge_pattern->rows() == A.rows(),
               std::string(name) +
                   " requires a message-graph pattern matching the operator");
  std::vector<std::uint8_t> dirichlet(ctx.dirichlet.begin(),
                                      ctx.dirichlet.end());
  if (dirichlet.empty()) dirichlet.assign(A.rows(), 0);
  core::GnnSubdomainSolver::Options opts;
  opts.refinement_steps = ctx.gnn_refinement_steps;
  opts.normalize_input = ctx.gnn_normalize;
  opts.adaptive_refinement = ctx.gnn_adaptive_refinement;
  opts.contraction_target = ctx.gnn_contraction_target;
  opts.max_refinement_steps = ctx.gnn_max_refinement_steps;
  opts.cost_aware_fallback = ctx.gnn_cost_aware_fallback;
  opts.fp32_fallback = ctx.gnn_fp32_fallback;
  return std::make_unique<core::GnnSubdomainSolver>(
      *ctx.model,
      std::vector<mesh::Point2>(ctx.coords.begin(), ctx.coords.end()),
      std::move(dirichlet), *ctx.edge_pattern, opts);
}

std::unique_ptr<Preconditioner> make_schwarz(
    const PrecondContext& ctx, std::string_view name, bool two_level,
    std::unique_ptr<SubdomainSolver> local) {
  return std::make_unique<AdditiveSchwarz>(
      require_matrix(ctx), require_decomposition(ctx, name), std::move(local),
      AdditiveSchwarz::Config{two_level});
}

// The `-ml` entries: with mg_levels == 1 this is exactly the plain two-level
// entry (same NicolaidesCoarseSpace construction — bitwise-identical solves);
// with mg_levels >= 2 the coarse solve becomes a smoothed-aggregation
// V/W-cycle built under the setup.hierarchy phase.
std::unique_ptr<Preconditioner> make_schwarz_ml(
    const PrecondContext& ctx, std::string_view name,
    std::unique_ptr<SubdomainSolver> local) {
  const la::CsrMatrix& A = require_matrix(ctx);
  const partition::Decomposition& dec = require_decomposition(ctx, name);
  if (ctx.mg_levels <= 1) {
    std::unique_ptr<partition::CoarseComponent> nico;
    {
      static obs::Gauge& g =
          obs::Registry::instance().gauge("setup.coarse_space_seconds");
      obs::PhaseTimer t("setup.coarse_space", &g);
      nico = std::make_unique<partition::NicolaidesCoarseSpace>(A, dec);
    }
    return std::make_unique<AdditiveSchwarz>(A, dec, std::move(local),
                                             std::move(nico), "-ml");
  }
  DDMGNN_CHECK(ctx.mg_cycle == "v" || ctx.mg_cycle == "w",
               std::string(name) + ": mg_cycle must be 'v' or 'w', got '" +
                   ctx.mg_cycle + "'");
  DDMGNN_CHECK(ctx.mg_smoother == "jacobi" || ctx.mg_smoother == "chebyshev",
               std::string(name) +
                   ": mg_smoother must be 'jacobi' or 'chebyshev', got '" +
                   ctx.mg_smoother + "'");
  DDMGNN_CHECK(ctx.mg_smooth_steps >= 1,
               std::string(name) + ": mg_smooth_steps must be >= 1");
  std::unique_ptr<mg::VCycle> cycle;
  {
    static obs::Gauge& g =
        obs::Registry::instance().gauge("setup.hierarchy_seconds");
    obs::PhaseTimer t("setup.hierarchy", &g);
    mg::HierarchyOptions opts;
    opts.levels = ctx.mg_levels;
    opts.aggregate_target = ctx.mg_aggregate_target;
    opts.seed = ctx.seed;
    mg::CycleConfig cc;
    cc.w_cycle = ctx.mg_cycle == "w";
    cc.smoother = ctx.mg_smoother == "chebyshev" ? mg::Smoother::kChebyshev
                                                 : mg::Smoother::kJacobi;
    cc.smooth_steps = ctx.mg_smooth_steps;
    cycle = std::make_unique<mg::VCycle>(mg::build_hierarchy(A, dec, opts), cc);
  }
  return std::make_unique<AdditiveSchwarz>(A, dec, std::move(local),
                                           std::move(cycle), "-ml");
}

}  // namespace

PrecondRegistry::PrecondRegistry() {
  add("none", PrecondTraits{}, [](const PrecondContext& ctx) {
    require_matrix(ctx);
    return std::make_unique<IdentityPreconditioner>();
  });
  add("jacobi", PrecondTraits{}, [](const PrecondContext& ctx) {
    return std::make_unique<JacobiPreconditioner>(
        require_matrix(ctx).diagonal());
  });
  add("ic0", PrecondTraits{}, [](const PrecondContext& ctx) {
    return std::make_unique<Ic0Preconditioner>(require_matrix(ctx));
  });
  add("ddm-lu", PrecondTraits{.needs_decomposition = true},
      [](const PrecondContext& ctx) {
        return make_schwarz(ctx, "ddm-lu", /*two_level=*/true,
                            std::make_unique<CholeskySubdomainSolver>());
      });
  add("ddm-lu-1level", PrecondTraits{.needs_decomposition = true},
      [](const PrecondContext& ctx) {
        return make_schwarz(ctx, "ddm-lu-1level", /*two_level=*/false,
                            std::make_unique<CholeskySubdomainSolver>());
      });
  add("ddm-gnn",
      PrecondTraits{.needs_decomposition = true,
                    .needs_model = true,
                    .symmetric = false,
                    .needs_geometry = true},
      [](const PrecondContext& ctx) {
        return make_schwarz(ctx, "ddm-gnn", /*two_level=*/true,
                            make_gnn_local(ctx, "ddm-gnn"));
      });
  add("ddm-gnn-1level",
      PrecondTraits{.needs_decomposition = true,
                    .needs_model = true,
                    .symmetric = false,
                    .needs_geometry = true},
      [](const PrecondContext& ctx) {
        return make_schwarz(ctx, "ddm-gnn-1level", /*two_level=*/false,
                            make_gnn_local(ctx, "ddm-gnn-1level"));
      });
  add("ddm-lu-ml", PrecondTraits{.needs_decomposition = true},
      [](const PrecondContext& ctx) {
        return make_schwarz_ml(ctx, "ddm-lu-ml",
                               std::make_unique<CholeskySubdomainSolver>());
      });
  add("ddm-gnn-ml",
      PrecondTraits{.needs_decomposition = true,
                    .needs_model = true,
                    .symmetric = false,
                    .needs_geometry = true},
      [](const PrecondContext& ctx) {
        return make_schwarz_ml(ctx, "ddm-gnn-ml",
                               make_gnn_local(ctx, "ddm-gnn-ml"));
      });
  // Short spellings kept from the legacy solve_poisson tool flags.
  add_alias("ddm-lu-1", "ddm-lu-1level");
  add_alias("ddm-gnn-1", "ddm-gnn-1level");
  add_alias("identity", "none");
}

PrecondRegistry& PrecondRegistry::instance() {
  static PrecondRegistry registry;
  return registry;
}

void PrecondRegistry::add(std::string name, PrecondTraits traits,
                          PrecondFactory factory) {
  DDMGNN_CHECK(!contains(name),
               "preconditioner '" + name + "' is already registered");
  entries_.push_back(Entry{std::move(name), traits, std::move(factory)});
}

void PrecondRegistry::add_alias(std::string alias, std::string canonical) {
  DDMGNN_CHECK(!contains(alias),
               "preconditioner alias '" + alias + "' is already registered");
  find(canonical);  // validates the target exists
  aliases_.emplace_back(std::move(alias), std::move(canonical));
}

const PrecondRegistry::Entry& PrecondRegistry::find(
    std::string_view name) const {
  std::string_view resolved = name;
  for (const auto& [alias, canonical] : aliases_) {
    if (alias == name) {
      resolved = canonical;
      break;
    }
  }
  for (const Entry& e : entries_) {
    if (e.name == resolved) return e;
  }
  std::ostringstream msg;
  msg << "unknown preconditioner '" << name << "'; registered:";
  for (const std::string& n : names()) msg << " " << n;
  DDMGNN_CHECK(false, msg.str());
  std::abort();  // unreachable: DDMGNN_CHECK(false) throws
}

bool PrecondRegistry::contains(std::string_view name) const {
  for (const auto& [alias, canonical] : aliases_) {
    if (alias == name) return true;
  }
  for (const Entry& e : entries_) {
    if (e.name == name) return true;
  }
  return false;
}

const std::string& PrecondRegistry::canonical(std::string_view name) const {
  return find(name).name;
}

const PrecondTraits& PrecondRegistry::traits(std::string_view name) const {
  return find(name).traits;
}

std::unique_ptr<Preconditioner> PrecondRegistry::create(
    std::string_view name, const PrecondContext& ctx) const {
  return find(name).factory(ctx);
}

std::vector<std::string> PrecondRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.name);
  std::sort(out.begin(), out.end());
  return out;
}

std::unique_ptr<Preconditioner> make_preconditioner(std::string_view name,
                                                    const PrecondContext& ctx) {
  return PrecondRegistry::instance().create(name, ctx);
}

const PrecondTraits& preconditioner_traits(std::string_view name) {
  return PrecondRegistry::instance().traits(name);
}

std::vector<std::string> preconditioner_names() {
  return PrecondRegistry::instance().names();
}

}  // namespace ddmgnn::precond
