// Multi-level Additive Schwarz preconditioner (paper §II-A):
//
//   one-level:  M⁻¹ = Σ_i R_iᵀ (R_i A R_iᵀ)⁻¹ R_i                     (Eq. 6)
//   two-level:  M⁻¹ = R0ᵀ(R0 A R0ᵀ)⁻¹R0 + Σ_i R_iᵀ(R_i A R_iᵀ)⁻¹R_i   (Eq. 7)
//
// With a CholeskySubdomainSolver this is the paper's DDM-LU; with the GNN
// subdomain solver from src/core it is DDM-GNN (which additionally applies
// the residual-normalization of §III-A inside the solver). Local solves run
// in parallel; the coarse correction is the scalability term.
//
// A constructed AdditiveSchwarz is immutable: every per-application buffer
// (local restrictions, block scratch, the subdomain solver's scratch) lives
// in the caller-owned ApplyWorkspace, so concurrent threads can apply one
// shared instance safely.
#pragma once

#include <memory>

#include "la/csr.hpp"
#include "partition/coarse_component.hpp"
#include "partition/coarse_space.hpp"
#include "partition/decomposition.hpp"
#include "precond/preconditioner.hpp"
#include "precond/subdomain_solver.hpp"

namespace ddmgnn::precond {

class AdditiveSchwarz final : public Preconditioner {
 public:
  struct Config {
    bool two_level = true;  // add the Nicolaides coarse correction
  };

  /// `dec` must outlive the preconditioner. Extracts all R_i A R_iᵀ blocks
  /// and hands them to `local_solver` for setup.
  AdditiveSchwarz(const la::CsrMatrix& a, const partition::Decomposition& dec,
                  std::unique_ptr<SubdomainSolver> local_solver,
                  Config config);
  /// Two-level by default.
  AdditiveSchwarz(const la::CsrMatrix& a, const partition::Decomposition& dec,
                  std::unique_ptr<SubdomainSolver> local_solver)
      : AdditiveSchwarz(a, dec, std::move(local_solver), Config{}) {}
  /// Generalized form: plug in any CoarseComponent (an mg::VCycle for the
  /// L-level method, a NicolaidesCoarseSpace for the classic two-level one,
  /// nullptr for one-level). `name_suffix` is appended to "ddm-<solver>" so
  /// registry entries keep name() == registry name (e.g. "-ml"); ignored
  /// (forced to "-1level") when coarse is null.
  AdditiveSchwarz(const la::CsrMatrix& a, const partition::Decomposition& dec,
                  std::unique_ptr<SubdomainSolver> local_solver,
                  std::unique_ptr<partition::CoarseComponent> coarse,
                  std::string name_suffix = "");

  using Preconditioner::apply;
  using Preconditioner::apply_many;

  /// Per-caller scratch: the K local restriction/correction vectors (sized
  /// eagerly — apply never allocates in steady state), the block-path
  /// MultiVectors (resized to the live column count), and the subdomain
  /// solver's own workspace.
  std::unique_ptr<ApplyWorkspace> make_workspace() const override;
  std::size_t workspace_bytes() const override;

  void apply(std::span<const double> r, std::span<double> z,
             ApplyWorkspace* ws) const override;
  /// Block application: restrict all s columns at once, hand the subdomain
  /// solver a single K×s batch of local right-hand sides (one disjoint-union
  /// DSS inference for the GNN solver), and push the coarse correction
  /// through one multi-column backsolve.
  void apply_many(const la::MultiVector& r, la::MultiVector& z,
                  ApplyWorkspace* ws) const override;
  std::string name() const override;
  bool is_symmetric() const override {
    return solver_->is_symmetric() &&
           (coarse_ == nullptr || coarse_->is_symmetric());
  }

  const SubdomainSolver& local_solver() const { return *solver_; }
  bool two_level() const { return coarse_ != nullptr; }
  /// The coarse correction in use (nullptr for the one-level method).
  const partition::CoarseComponent* coarse_component() const {
    return coarse_.get();
  }

 private:
  struct Scratch;
  Scratch& scratch_of(ApplyWorkspace* ws) const;
  void setup_local(const la::CsrMatrix& a, const partition::Decomposition& dec);

  const partition::Decomposition* dec_;
  std::unique_ptr<SubdomainSolver> solver_;
  std::unique_ptr<partition::CoarseComponent> coarse_;
  std::string name_suffix_;
};

}  // namespace ddmgnn::precond
