// IC(0) preconditioner wrapper — the "optimized legacy" baseline of Table III.
#pragma once

#include "la/csr.hpp"
#include "la/ic0.hpp"
#include "precond/preconditioner.hpp"

namespace ddmgnn::precond {

class Ic0Preconditioner final : public Preconditioner {
 public:
  explicit Ic0Preconditioner(const la::CsrMatrix& a) : factor_(a) {}

  using Preconditioner::apply;
  // The triangular sweeps work entirely in `z`; no workspace needed.
  void apply(std::span<const double> r, std::span<double> z,
             ApplyWorkspace*) const override {
    factor_.apply(r, z);
  }
  std::string name() const override { return "ic0"; }

 private:
  la::IncompleteCholesky0 factor_;
};

}  // namespace ddmgnn::precond
