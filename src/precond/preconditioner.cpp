#include "precond/preconditioner.hpp"

#include "common/error.hpp"

namespace ddmgnn::precond {

JacobiPreconditioner::JacobiPreconditioner(std::vector<double> diagonal)
    : inv_diag_(std::move(diagonal)) {
  for (double& d : inv_diag_) {
    DDMGNN_CHECK(d != 0.0, "Jacobi: zero diagonal entry");
    d = 1.0 / d;
  }
}

void JacobiPreconditioner::apply(std::span<const double> r,
                                 std::span<double> z, ApplyWorkspace*) const {
  DDMGNN_CHECK(r.size() == inv_diag_.size() && z.size() == r.size(),
               "Jacobi::apply dims");
  for (std::size_t i = 0; i < r.size(); ++i) z[i] = r[i] * inv_diag_[i];
}

}  // namespace ddmgnn::precond
