#include "precond/asm_precond.hpp"

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ddmgnn::precond {

using la::Index;

namespace {

// Apply-phase gauges, resolved once (function-local statics keep the
// registry lookup off the hot path; PhaseTimer reads the clock only while
// metrics or tracing are enabled).
obs::Gauge& restrict_gauge() {
  static obs::Gauge& g =
      obs::Registry::instance().gauge("asm.restrict_seconds");
  return g;
}
obs::Gauge& solve_gauge() {
  static obs::Gauge& g =
      obs::Registry::instance().gauge("asm.subdomain_solve_seconds");
  return g;
}
obs::Gauge& prolong_gauge() {
  static obs::Gauge& g = obs::Registry::instance().gauge("asm.prolong_seconds");
  return g;
}
obs::Gauge& coarse_gauge() {
  static obs::Gauge& g = obs::Registry::instance().gauge("asm.coarse_seconds");
  return g;
}

}  // namespace

void SubdomainSolver::solve_all_block(
    const std::vector<la::MultiVector>& r_loc,
    std::vector<la::MultiVector>& z_loc, Workspace* ws) const {
  const std::size_t k = r_loc.size();
  DDMGNN_CHECK(z_loc.size() == k, "solve_all_block: batch size");
  const Index s = k == 0 ? 0 : r_loc[0].cols();
  std::vector<std::vector<double>> r_col(k), z_col(k);
  for (std::size_t i = 0; i < k; ++i) {
    r_col[i].resize(r_loc[i].rows());
    z_col[i].resize(r_loc[i].rows());
  }
  for (Index j = 0; j < s; ++j) {
    for (std::size_t i = 0; i < k; ++i) {
      la::copy(r_loc[i].col(j), r_col[i]);
    }
    solve_all(r_col, z_col, ws);
    for (std::size_t i = 0; i < k; ++i) {
      la::copy(z_col[i], z_loc[i].col(j));
    }
  }
}

void CholeskySubdomainSolver::setup(std::vector<la::CsrMatrix> local_matrices,
                                    const partition::Decomposition& dec) {
  (void)dec;
  factors_.resize(local_matrices.size());
  parallel_for_dynamic(static_cast<long>(local_matrices.size()), [&](long i) {
    factors_[i] =
        std::make_unique<la::SkylineCholesky>(local_matrices[i], true);
  });
}

void CholeskySubdomainSolver::solve_all(
    const std::vector<std::vector<double>>& r_loc,
    std::vector<std::vector<double>>& z_loc, Workspace*) const {
  DDMGNN_CHECK(r_loc.size() == factors_.size(), "solve_all: batch size");
  parallel_for_dynamic(static_cast<long>(r_loc.size()), [&](long i) {
    z_loc[i] = factors_[i]->solve(r_loc[i]);
  });
}

void CholeskySubdomainSolver::solve_all_block(
    const std::vector<la::MultiVector>& r_loc,
    std::vector<la::MultiVector>& z_loc, Workspace*) const {
  DDMGNN_CHECK(r_loc.size() == factors_.size(), "solve_all_block: batch size");
  parallel_for_dynamic(static_cast<long>(r_loc.size()), [&](long i) {
    const la::MultiVector& r = r_loc[i];
    la::MultiVector& z = z_loc[i];
    for (Index j = 0; j < r.cols(); ++j) {
      la::copy(r.col(j), z.col(j));
      factors_[i]->solve_inplace(z.col(j));
    }
  });
}

struct AdditiveSchwarz::Scratch final : ApplyWorkspace {
  // Reused per-apply buffers.
  std::vector<std::vector<double>> r_loc;
  std::vector<std::vector<double>> z_loc;
  // Block-path scratch (resized to the current column count s).
  std::vector<la::MultiVector> r_blk;
  std::vector<la::MultiVector> z_blk;
  std::unique_ptr<SubdomainSolver::Workspace> local;
};

void AdditiveSchwarz::setup_local(const la::CsrMatrix& a,
                                  const partition::Decomposition& dec) {
  DDMGNN_CHECK(a.rows() == dec.num_nodes(), "ASM: size mismatch");
  DDMGNN_CHECK(solver_ != nullptr, "ASM: null subdomain solver");
  const Index k = dec.num_parts;
  std::vector<la::CsrMatrix> blocks(k);
  {
    static obs::Gauge& g =
        obs::Registry::instance().gauge("setup.extract_blocks_seconds");
    obs::PhaseTimer t("setup.extract_blocks", &g);
    parallel_for_dynamic(k, [&](long i) {
      blocks[i] = a.principal_submatrix(dec.subdomains[i]);
    });
  }
  {
    // For DDM-LU this is the factorization; for DDM-GNN it builds the
    // subdomain topologies + DSS edge caches (which add their own child
    // phase under setup.dss_edge_cache_seconds).
    static obs::Gauge& g =
        obs::Registry::instance().gauge("setup.local_solver_seconds");
    obs::PhaseTimer t("setup.local_solver", &g);
    solver_->setup(std::move(blocks), dec);
  }
}

AdditiveSchwarz::AdditiveSchwarz(const la::CsrMatrix& a,
                                 const partition::Decomposition& dec,
                                 std::unique_ptr<SubdomainSolver> local_solver,
                                 Config config)
    : dec_(&dec), solver_(std::move(local_solver)) {
  setup_local(a, dec);
  if (config.two_level) {
    static obs::Gauge& g =
        obs::Registry::instance().gauge("setup.coarse_space_seconds");
    obs::PhaseTimer t("setup.coarse_space", &g);
    coarse_ = std::make_unique<partition::NicolaidesCoarseSpace>(a, dec);
  } else {
    name_suffix_ = "-1level";
  }
}

AdditiveSchwarz::AdditiveSchwarz(
    const la::CsrMatrix& a, const partition::Decomposition& dec,
    std::unique_ptr<SubdomainSolver> local_solver,
    std::unique_ptr<partition::CoarseComponent> coarse,
    std::string name_suffix)
    : dec_(&dec), solver_(std::move(local_solver)),
      name_suffix_(coarse == nullptr ? "-1level" : std::move(name_suffix)) {
  setup_local(a, dec);
  coarse_ = std::move(coarse);
}

std::unique_ptr<ApplyWorkspace> AdditiveSchwarz::make_workspace() const {
  auto ws = std::make_unique<Scratch>();
  const Index k = dec_->num_parts;
  ws->r_loc.resize(k);
  ws->z_loc.resize(k);
  for (Index i = 0; i < k; ++i) {
    ws->r_loc[i].resize(dec_->subdomains[i].size());
    ws->z_loc[i].resize(dec_->subdomains[i].size());
  }
  ws->local = solver_->make_workspace();
  return ws;
}

std::size_t AdditiveSchwarz::workspace_bytes() const {
  std::size_t local_nodes = 0;
  for (const auto& nodes : dec_->subdomains) local_nodes += nodes.size();
  // r_loc + z_loc doubles (the block path adds s columns of the same — the
  // estimate stays at the single-RHS footprint) plus the local solver's own
  // scratch.
  return 2 * local_nodes * sizeof(double) + solver_->workspace_bytes();
}

AdditiveSchwarz::Scratch& AdditiveSchwarz::scratch_of(
    ApplyWorkspace* ws) const {
  auto* scratch = dynamic_cast<Scratch*>(ws);
  DDMGNN_CHECK(scratch != nullptr,
               "ASM::apply needs a workspace from this preconditioner's "
               "make_workspace() (or use the 2-argument convenience apply)");
  return *scratch;
}

void AdditiveSchwarz::apply(std::span<const double> r,
                            std::span<double> z, ApplyWorkspace* ws) const {
  const Index n = dec_->num_nodes();
  DDMGNN_CHECK(r.size() == static_cast<std::size_t>(n) && z.size() == r.size(),
               "ASM::apply dims");
  Scratch& scratch = scratch_of(ws);
  const Index k = dec_->num_parts;
  OBS_SPAN("asm.apply");
  {
    obs::PhaseTimer t("asm.restrict", &restrict_gauge());
    for (Index i = 0; i < k; ++i) {
      dec_->restrict_to(i, r, scratch.r_loc[i]);
    }
  }
  {
    obs::PhaseTimer t("asm.subdomain_solve", &solve_gauge());
    solver_->solve_all(scratch.r_loc, scratch.z_loc, scratch.local.get());
  }
  {
    obs::PhaseTimer t("asm.prolong", &prolong_gauge());
    std::fill(z.begin(), z.end(), 0.0);
    for (Index i = 0; i < k; ++i) {
      dec_->prolong_add(i, scratch.z_loc[i], z);
    }
  }
  if (coarse_) {
    obs::PhaseTimer t("asm.coarse", &coarse_gauge());
    coarse_->apply_add(r, z);
  }
}

void AdditiveSchwarz::apply_many(const la::MultiVector& r,
                                 la::MultiVector& z, ApplyWorkspace* ws) const {
  const Index n = dec_->num_nodes();
  const Index s = r.cols();
  DDMGNN_CHECK(r.rows() == n && z.rows() == n && z.cols() == s,
               "ASM::apply_many dims");
  Scratch& scratch = scratch_of(ws);
  const Index k = dec_->num_parts;
  OBS_SPAN("asm.apply_many");
  {
    obs::PhaseTimer t("asm.restrict", &restrict_gauge());
    if (scratch.r_blk.empty()) {
      scratch.r_blk.resize(k);
      scratch.z_blk.resize(k);
    }
    for (Index i = 0; i < k; ++i) {
      const auto ni = static_cast<Index>(dec_->subdomains[i].size());
      if (scratch.r_blk[i].rows() != ni || scratch.r_blk[i].cols() != s) {
        scratch.r_blk[i].resize(ni, s);
        scratch.z_blk[i].resize(ni, s);
      }
      dec_->restrict_to_many(i, r, scratch.r_blk[i]);
    }
  }
  {
    obs::PhaseTimer t("asm.subdomain_solve", &solve_gauge());
    solver_->solve_all_block(scratch.r_blk, scratch.z_blk,
                             scratch.local.get());
  }
  {
    obs::PhaseTimer t("asm.prolong", &prolong_gauge());
    z.fill(0.0);
    for (Index i = 0; i < k; ++i) {
      dec_->prolong_add_many(i, scratch.z_blk[i], z);
    }
  }
  if (coarse_) {
    obs::PhaseTimer t("asm.coarse", &coarse_gauge());
    coarse_->apply_add_many(r, z);
  }
}

std::string AdditiveSchwarz::name() const {
  return std::string("ddm-") + solver_->name() + name_suffix_;
}

}  // namespace ddmgnn::precond
