#include "precond/asm_precond.hpp"

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace ddmgnn::precond {

using la::Index;

void SubdomainSolver::solve_all_block(
    const std::vector<la::MultiVector>& r_loc,
    std::vector<la::MultiVector>& z_loc) const {
  const std::size_t k = r_loc.size();
  DDMGNN_CHECK(z_loc.size() == k, "solve_all_block: batch size");
  const Index s = k == 0 ? 0 : r_loc[0].cols();
  std::vector<std::vector<double>> r_col(k), z_col(k);
  for (std::size_t i = 0; i < k; ++i) {
    r_col[i].resize(r_loc[i].rows());
    z_col[i].resize(r_loc[i].rows());
  }
  for (Index j = 0; j < s; ++j) {
    for (std::size_t i = 0; i < k; ++i) {
      la::copy(r_loc[i].col(j), r_col[i]);
    }
    solve_all(r_col, z_col);
    for (std::size_t i = 0; i < k; ++i) {
      la::copy(z_col[i], z_loc[i].col(j));
    }
  }
}

void CholeskySubdomainSolver::setup(std::vector<la::CsrMatrix> local_matrices,
                                    const partition::Decomposition& dec) {
  (void)dec;
  factors_.resize(local_matrices.size());
  parallel_for_dynamic(static_cast<long>(local_matrices.size()), [&](long i) {
    factors_[i] =
        std::make_unique<la::SkylineCholesky>(local_matrices[i], true);
  });
}

void CholeskySubdomainSolver::solve_all(
    const std::vector<std::vector<double>>& r_loc,
    std::vector<std::vector<double>>& z_loc) const {
  DDMGNN_CHECK(r_loc.size() == factors_.size(), "solve_all: batch size");
  parallel_for_dynamic(static_cast<long>(r_loc.size()), [&](long i) {
    z_loc[i] = factors_[i]->solve(r_loc[i]);
  });
}

void CholeskySubdomainSolver::solve_all_block(
    const std::vector<la::MultiVector>& r_loc,
    std::vector<la::MultiVector>& z_loc) const {
  DDMGNN_CHECK(r_loc.size() == factors_.size(), "solve_all_block: batch size");
  parallel_for_dynamic(static_cast<long>(r_loc.size()), [&](long i) {
    const la::MultiVector& r = r_loc[i];
    la::MultiVector& z = z_loc[i];
    for (Index j = 0; j < r.cols(); ++j) {
      la::copy(r.col(j), z.col(j));
      factors_[i]->solve_inplace(z.col(j));
    }
  });
}

AdditiveSchwarz::AdditiveSchwarz(const la::CsrMatrix& a,
                                 const partition::Decomposition& dec,
                                 std::unique_ptr<SubdomainSolver> local_solver,
                                 Config config)
    : dec_(&dec), config_(config), solver_(std::move(local_solver)) {
  DDMGNN_CHECK(a.rows() == dec.num_nodes(), "ASM: size mismatch");
  DDMGNN_CHECK(solver_ != nullptr, "ASM: null subdomain solver");
  const Index k = dec.num_parts;
  std::vector<la::CsrMatrix> blocks(k);
  parallel_for_dynamic(k, [&](long i) {
    blocks[i] = a.principal_submatrix(dec.subdomains[i]);
  });
  solver_->setup(std::move(blocks), dec);
  if (config_.two_level) {
    coarse_.emplace(a, dec);
  }
  r_loc_.resize(k);
  z_loc_.resize(k);
  for (Index i = 0; i < k; ++i) {
    r_loc_[i].resize(dec.subdomains[i].size());
    z_loc_[i].resize(dec.subdomains[i].size());
  }
}

void AdditiveSchwarz::apply(std::span<const double> r,
                            std::span<double> z) const {
  const Index n = dec_->num_nodes();
  DDMGNN_CHECK(r.size() == static_cast<std::size_t>(n) && z.size() == r.size(),
               "ASM::apply dims");
  const Index k = dec_->num_parts;
  for (Index i = 0; i < k; ++i) {
    dec_->restrict_to(i, r, r_loc_[i]);
  }
  solver_->solve_all(r_loc_, z_loc_);
  std::fill(z.begin(), z.end(), 0.0);
  for (Index i = 0; i < k; ++i) {
    dec_->prolong_add(i, z_loc_[i], z);
  }
  if (coarse_) {
    coarse_->apply_add(r, z);
  }
}

void AdditiveSchwarz::apply_many(const la::MultiVector& r,
                                 la::MultiVector& z) const {
  const Index n = dec_->num_nodes();
  const Index s = r.cols();
  DDMGNN_CHECK(r.rows() == n && z.rows() == n && z.cols() == s,
               "ASM::apply_many dims");
  const Index k = dec_->num_parts;
  if (r_blk_.empty()) {
    r_blk_.resize(k);
    z_blk_.resize(k);
  }
  for (Index i = 0; i < k; ++i) {
    const auto ni = static_cast<Index>(dec_->subdomains[i].size());
    if (r_blk_[i].rows() != ni || r_blk_[i].cols() != s) {
      r_blk_[i].resize(ni, s);
      z_blk_[i].resize(ni, s);
    }
    dec_->restrict_to_many(i, r, r_blk_[i]);
  }
  solver_->solve_all_block(r_blk_, z_blk_);
  z.fill(0.0);
  for (Index i = 0; i < k; ++i) {
    dec_->prolong_add_many(i, z_blk_[i], z);
  }
  if (coarse_) {
    coarse_->apply_add_many(r, z);
  }
}

std::string AdditiveSchwarz::name() const {
  return std::string("ddm-") + solver_->name() +
         (config_.two_level ? "" : "-1level");
}

}  // namespace ddmgnn::precond
