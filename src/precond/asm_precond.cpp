#include "precond/asm_precond.hpp"

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace ddmgnn::precond {

using la::Index;

void CholeskySubdomainSolver::setup(std::vector<la::CsrMatrix> local_matrices,
                                    const partition::Decomposition& dec) {
  (void)dec;
  factors_.resize(local_matrices.size());
  parallel_for_dynamic(static_cast<long>(local_matrices.size()), [&](long i) {
    factors_[i] =
        std::make_unique<la::SkylineCholesky>(local_matrices[i], true);
  });
}

void CholeskySubdomainSolver::solve_all(
    const std::vector<std::vector<double>>& r_loc,
    std::vector<std::vector<double>>& z_loc) const {
  DDMGNN_CHECK(r_loc.size() == factors_.size(), "solve_all: batch size");
  parallel_for_dynamic(static_cast<long>(r_loc.size()), [&](long i) {
    z_loc[i] = factors_[i]->solve(r_loc[i]);
  });
}

AdditiveSchwarz::AdditiveSchwarz(const la::CsrMatrix& a,
                                 const partition::Decomposition& dec,
                                 std::unique_ptr<SubdomainSolver> local_solver,
                                 Config config)
    : dec_(&dec), config_(config), solver_(std::move(local_solver)) {
  DDMGNN_CHECK(a.rows() == dec.num_nodes(), "ASM: size mismatch");
  DDMGNN_CHECK(solver_ != nullptr, "ASM: null subdomain solver");
  const Index k = dec.num_parts;
  std::vector<la::CsrMatrix> blocks(k);
  parallel_for_dynamic(k, [&](long i) {
    blocks[i] = a.principal_submatrix(dec.subdomains[i]);
  });
  solver_->setup(std::move(blocks), dec);
  if (config_.two_level) {
    coarse_.emplace(a, dec);
  }
  r_loc_.resize(k);
  z_loc_.resize(k);
  for (Index i = 0; i < k; ++i) {
    r_loc_[i].resize(dec.subdomains[i].size());
    z_loc_[i].resize(dec.subdomains[i].size());
  }
}

void AdditiveSchwarz::apply(std::span<const double> r,
                            std::span<double> z) const {
  const Index n = dec_->num_nodes();
  DDMGNN_CHECK(r.size() == static_cast<std::size_t>(n) && z.size() == r.size(),
               "ASM::apply dims");
  const Index k = dec_->num_parts;
  for (Index i = 0; i < k; ++i) {
    dec_->restrict_to(i, r, r_loc_[i]);
  }
  solver_->solve_all(r_loc_, z_loc_);
  std::fill(z.begin(), z.end(), 0.0);
  for (Index i = 0; i < k; ++i) {
    dec_->prolong_add(i, z_loc_[i], z);
  }
  if (coarse_) {
    coarse_->apply_add(r, z);
  }
}

std::string AdditiveSchwarz::name() const {
  return std::string("ddm-") + solver_->name() +
         (config_.two_level ? "" : "-1level");
}

}  // namespace ddmgnn::precond
