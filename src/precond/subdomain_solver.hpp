// Strategy interface for the ASM local solves (paper Eq. 6/7, right term).
// The two-level Schwarz preconditioner is agnostic to *how* the K local
// problems R_i A R_iᵀ v_i = R_i r are solved:
//   * CholeskySubdomainSolver — exact sparse factorization (paper's DDM-LU);
//   * GnnSubdomainSolver (src/core) — DSS inference (paper's DDM-GNN).
//
// Like Preconditioner, a set-up solver is immutable: solve_all and
// solve_all_block take all per-call scratch through a caller-owned Workspace
// so concurrent callers (many client threads sharing one prepared session)
// never race on shared buffers.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "la/csr.hpp"
#include "la/multivector.hpp"
#include "la/skyline_cholesky.hpp"
#include "partition/decomposition.hpp"

namespace ddmgnn::precond {

class SubdomainSolver {
 public:
  /// Opaque per-caller scratch for solve_all/solve_all_block, created by
  /// make_workspace(). One workspace per concurrent caller; reusable across
  /// calls (steady state is allocation-free).
  class Workspace {
   public:
    virtual ~Workspace() = default;
  };

  virtual ~SubdomainSolver() = default;

  /// One-time setup with all local operators (A_i = R_i A R_iᵀ, index i
  /// matching dec.subdomains). Implementations may keep references. After
  /// setup the solver is immutable — the solve entry points are safe to call
  /// from many threads with distinct workspaces.
  virtual void setup(std::vector<la::CsrMatrix> local_matrices,
                     const partition::Decomposition& dec) = 0;

  /// Scratch factory; nullptr when the implementation needs none (its solve
  /// entry points then accept ws == nullptr).
  virtual std::unique_ptr<Workspace> make_workspace() const { return nullptr; }
  /// Estimated steady-state bytes of one warmed-up workspace.
  virtual std::size_t workspace_bytes() const { return 0; }

  /// Solve every local problem: z_loc[i] ≈ A_i⁻¹ r_loc[i]. Sizes match the
  /// subdomain node counts. Called once per preconditioner application with
  /// all K right-hand sides so implementations can batch (the paper batches
  /// all subdomains into DSS inferences on the GPU; here across threads).
  virtual void solve_all(const std::vector<std::vector<double>>& r_loc,
                         std::vector<std::vector<double>>& z_loc,
                         Workspace* ws) const = 0;

  /// Multi-RHS form: r_loc[i] / z_loc[i] are |subdomain i|×s blocks, one
  /// column per global right-hand side — the K×s batch of local problems of
  /// one block-preconditioner application. The default loops solve_all over
  /// columns; implementations override to amortize (factorization reuse for
  /// Cholesky, one disjoint-union DSS inference for the GNN). Overrides must
  /// stay column-equivalent to the looped default.
  virtual void solve_all_block(const std::vector<la::MultiVector>& r_loc,
                               std::vector<la::MultiVector>& z_loc,
                               Workspace* ws) const;

  virtual std::string name() const = 0;
  /// Whether each local solve is an SPD linear map of its input.
  virtual bool is_symmetric() const = 0;
};

/// Exact local solves via RCM-ordered skyline Cholesky (factored in parallel).
/// The factors are read-only at solve time and the sweeps work in the
/// caller's output buffers, so no workspace is needed.
class CholeskySubdomainSolver final : public SubdomainSolver {
 public:
  void setup(std::vector<la::CsrMatrix> local_matrices,
             const partition::Decomposition& dec) override;
  void solve_all(const std::vector<std::vector<double>>& r_loc,
                 std::vector<std::vector<double>>& z_loc,
                 Workspace* ws) const override;
  /// Each factor is swept once per column back-to-back while its envelope is
  /// hot in cache — the factorization is reused across all s columns.
  void solve_all_block(const std::vector<la::MultiVector>& r_loc,
                       std::vector<la::MultiVector>& z_loc,
                       Workspace* ws) const override;
  std::string name() const override { return "lu"; }
  bool is_symmetric() const override { return true; }

 private:
  std::vector<std::unique_ptr<la::SkylineCholesky>> factors_;
};

}  // namespace ddmgnn::precond
