#include "gnn/model_io.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "common/error.hpp"

namespace ddmgnn::gnn {

namespace {
constexpr std::uint32_t kMagic = 0x44535331;  // "DSS1"
constexpr std::uint32_t kVersion = 2;

struct Header {
  std::uint32_t magic;
  std::uint32_t version;
  std::int32_t iterations;
  std::int32_t latent;
  std::int32_t hidden;
  float alpha;
  std::int32_t dirichlet_flag;
  std::uint64_t num_params;
};
}  // namespace

void save_model(const DssModel& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  DDMGNN_CHECK(out.good(), "save_model: cannot open " + path);
  const DssConfig& c = model.config();
  Header h{kMagic, kVersion, c.iterations, c.latent, c.hidden, c.alpha,
           c.dirichlet_flag ? 1 : 0, model.num_params()};
  out.write(reinterpret_cast<const char*>(&h), sizeof(h));
  const auto params = model.params();
  out.write(reinterpret_cast<const char*>(params.data()),
            static_cast<std::streamsize>(params.size() * sizeof(float)));
  DDMGNN_CHECK(out.good(), "save_model: write failed for " + path);
}

std::optional<DssModel> load_model(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return std::nullopt;
  Header h{};
  in.read(reinterpret_cast<char*>(&h), sizeof(h));
  if (!in.good() || h.magic != kMagic || h.version != kVersion) {
    return std::nullopt;
  }
  DssConfig cfg;
  cfg.iterations = h.iterations;
  cfg.latent = h.latent;
  cfg.hidden = h.hidden;
  cfg.alpha = h.alpha;
  cfg.dirichlet_flag = h.dirichlet_flag != 0;
  DssModel model(cfg, /*seed=*/0);
  if (model.num_params() != h.num_params) return std::nullopt;
  auto params = model.params();
  in.read(reinterpret_cast<char*>(params.data()),
          static_cast<std::streamsize>(params.size() * sizeof(float)));
  if (!in.good()) return std::nullopt;
  return model;
}

}  // namespace ddmgnn::gnn
