#include "gnn/batch.hpp"

#include "common/error.hpp"

namespace ddmgnn::gnn {

BatchedSample batch_samples(std::span<const GraphSample> samples) {
  DDMGNN_CHECK(!samples.empty(), "batch_samples: empty batch");
  BatchedSample out;
  out.offsets.assign(1, 0);
  Index total_nodes = 0;
  la::Offset total_nnz = 0;
  Index total_edges = 0;
  for (const auto& s : samples) {
    total_nodes += s.topo->n;
    total_nnz += s.topo->a_local.nnz();
    total_edges += s.topo->num_edges();
    out.offsets.push_back(total_nodes);
  }

  auto topo = std::make_shared<GraphTopology>();
  topo->n = total_nodes;
  topo->recv.reserve(total_edges);
  topo->send.reserve(total_edges);
  topo->attr.reserve(static_cast<std::size_t>(total_edges) * 3);
  topo->dirichlet.reserve(total_nodes);
  out.merged.rhs.reserve(total_nodes);

  std::vector<la::Offset> rp;
  rp.reserve(static_cast<std::size_t>(total_nodes) + 1);
  rp.push_back(0);
  std::vector<Index> ci;
  ci.reserve(total_nnz);
  std::vector<double> va;
  va.reserve(total_nnz);

  for (std::size_t b = 0; b < samples.size(); ++b) {
    const GraphTopology& t = *samples[b].topo;
    const Index off = out.offsets[b];
    for (Index e = 0; e < t.num_edges(); ++e) {
      topo->recv.push_back(t.recv[e] + off);
      topo->send.push_back(t.send[e] + off);
    }
    topo->attr.insert(topo->attr.end(), t.attr.begin(), t.attr.end());
    topo->dirichlet.insert(topo->dirichlet.end(), t.dirichlet.begin(),
                           t.dirichlet.end());
    out.merged.rhs.insert(out.merged.rhs.end(), samples[b].rhs.begin(),
                          samples[b].rhs.end());
    const auto trp = t.a_local.row_ptr();
    const auto tci = t.a_local.col_idx();
    const auto tva = t.a_local.values();
    for (Index i = 0; i < t.n; ++i) {
      for (la::Offset k = trp[i]; k < trp[i + 1]; ++k) {
        ci.push_back(tci[k] + off);
        va.push_back(tva[k]);
      }
      rp.push_back(static_cast<la::Offset>(ci.size()));
    }
  }
  topo->a_local = la::CsrMatrix(total_nodes, total_nodes, std::move(rp),
                                std::move(ci), std::move(va));
  finalize_topology(*topo);
  out.merged.topo = std::move(topo);
  return out;
}

}  // namespace ddmgnn::gnn
