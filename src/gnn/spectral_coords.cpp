#include "gnn/spectral_coords.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace ddmgnn::gnn {

using la::Offset;

namespace {

/// Remove the component of `v` along `u` (if `u` is non-degenerate).
void orthogonalize(std::vector<double>& v, const std::vector<double>& u) {
  double vu = 0.0, uu = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    vu += v[i] * u[i];
    uu += u[i] * u[i];
  }
  if (uu <= 0.0) return;
  const double c = vu / uu;
  for (std::size_t i = 0; i < v.size(); ++i) v[i] -= c * u[i];
}

void center_and_normalize(std::vector<double>& v) {
  double mean = 0.0;
  for (const double x : v) mean += x;
  mean /= static_cast<double>(v.size());
  double norm = 0.0;
  for (double& x : v) {
    x -= mean;
    norm += x * x;
  }
  norm = std::sqrt(norm);
  if (norm > 0.0) {
    for (double& x : v) x /= norm;
  }
}

}  // namespace

std::vector<mesh::Point2> spectral_coordinates(
    std::span<const la::Offset> adj_ptr, std::span<const la::Index> adj,
    int smoothing_steps, std::uint64_t seed) {
  DDMGNN_CHECK(!adj_ptr.empty(), "spectral_coordinates: empty adjacency");
  const auto n = static_cast<la::Index>(adj_ptr.size()) - 1;
  std::vector<mesh::Point2> coords(n);
  if (n == 0) return coords;

  Rng rng(seed ^ 0xC6EF372FE94F82BEull);
  std::vector<double> x(n), y(n), tmp(n);
  for (la::Index i = 0; i < n; ++i) {
    x[i] = rng.uniform(-0.5, 0.5);
    y[i] = rng.uniform(-0.5, 0.5);
  }

  // Power iteration on 1/2 (I + D⁻¹W): converges toward the low-frequency
  // (smooth) adjacency eigenvectors; orthogonalizing against constants — and
  // y additionally against x — spreads the layout over two dimensions
  // instead of collapsing both axes onto the Fiedler-like direction.
  auto smooth = [&](std::vector<double>& v) {
    for (la::Index i = 0; i < n; ++i) {
      const Offset deg = adj_ptr[i + 1] - adj_ptr[i];
      if (deg == 0) {
        tmp[i] = v[i];  // isolated node: hold position
        continue;
      }
      double acc = 0.0;
      for (Offset e = adj_ptr[i]; e < adj_ptr[i + 1]; ++e) acc += v[adj[e]];
      tmp[i] = 0.5 * (v[i] + acc / static_cast<double>(deg));
    }
    v.swap(tmp);
  };
  for (int step = 0; step < smoothing_steps; ++step) {
    center_and_normalize(x);
    smooth(x);
    center_and_normalize(y);
    orthogonalize(y, x);
    smooth(y);
  }
  center_and_normalize(x);
  center_and_normalize(y);
  orthogonalize(y, x);
  center_and_normalize(y);

  // Rescale so the mean edge length matches the h ≈ 1/sqrt(n) element size
  // of a unit-area mesh — the geometry scale the DSS models train on.
  double edge_len = 0.0;
  long num_edges = 0;
  for (la::Index i = 0; i < n; ++i) {
    for (Offset e = adj_ptr[i]; e < adj_ptr[i + 1]; ++e) {
      const la::Index j = adj[e];
      edge_len += std::hypot(x[i] - x[j], y[i] - y[j]);
      ++num_edges;
    }
  }
  double scale = 1.0;
  if (num_edges > 0 && edge_len > 0.0) {
    const double target_h = 1.0 / std::sqrt(static_cast<double>(n));
    scale = target_h / (edge_len / static_cast<double>(num_edges));
  }
  for (la::Index i = 0; i < n; ++i) {
    coords[i] = {x[i] * scale, y[i] * scale};
  }
  return coords;
}

}  // namespace ddmgnn::gnn
