// Synthetic node positions for meshless operators. The DSS edge features are
// relative positions d_jl = x_l − x_j (Eq. 17 variant) — when a system
// arrives as a bare matrix there is no geometry to take them from, so the
// algebraic setup path fabricates one: a spectral graph drawing of the
// operator's adjacency (power iteration toward the low-frequency adjacency
// eigenvectors, the classical Hall/Koren layout). Neighboring nodes land
// close together and the coordinates are rescaled so typical edge lengths
// match the ~1/sqrt(n) element size the models were trained on, keeping the
// learned edge-feature statistics in distribution.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "la/csr.hpp"
#include "mesh/geometry.hpp"

namespace ddmgnn::gnn {

/// Deterministic 2-D spectral layout of the graph `adj_ptr/adj` (mesh::Mesh
/// CSR adjacency layout). `smoothing_steps` power-iteration/smoothing rounds
/// refine a seeded random start; isolated nodes keep their random position
/// (they exchange no messages, so their coordinates are never read).
std::vector<mesh::Point2> spectral_coordinates(
    std::span<const la::Offset> adj_ptr, std::span<const la::Index> adj,
    int smoothing_steps = 30, std::uint64_t seed = 0);

}  // namespace ddmgnn::gnn
