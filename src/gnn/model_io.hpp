// Binary (de)serialization of trained DSS models so benches can cache the
// model zoo in the artifact directory instead of retraining.
// Format: magic, version, config fields, parameter count, float32 blob.
#pragma once

#include <optional>
#include <string>

#include "gnn/dss_model.hpp"

namespace ddmgnn::gnn {

void save_model(const DssModel& model, const std::string& path);

/// Returns nullopt if the file is missing or malformed.
std::optional<DssModel> load_model(const std::string& path);

}  // namespace ddmgnn::gnn
