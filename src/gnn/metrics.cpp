#include "gnn/metrics.hpp"

#include <cmath>
#include <map>
#include <memory>

#include "common/parallel.hpp"
#include "la/skyline_cholesky.hpp"
#include "la/vector_ops.hpp"

namespace ddmgnn::gnn {

DssMetrics evaluate_dss(const DssModel& model,
                        const std::vector<GraphSample>& samples) {
  DssMetrics out;
  out.num_samples = samples.size();
  if (samples.empty()) return out;

  // Factor each distinct topology once (serial pass; factors are shared).
  std::map<const GraphTopology*, std::shared_ptr<la::SkylineCholesky>> factors;
  for (const auto& s : samples) {
    auto& f = factors[s.topo.get()];
    if (!f) f = std::make_shared<la::SkylineCholesky>(s.topo->a_local);
  }

  std::vector<double> residuals(samples.size());
  std::vector<double> rel_errors(samples.size());
  const int nthreads = num_threads();
  std::vector<DssWorkspace> ws(nthreads);
#pragma omp parallel for schedule(dynamic, 1) num_threads(nthreads)
  for (long i = 0; i < static_cast<long>(samples.size()); ++i) {
    const int tid = omp_get_thread_num();
    const GraphSample& s = samples[i];
    std::vector<float> pred;
    model.forward(s, ws[tid], pred);
    // RMS residual sqrt(L_res) = ‖A r̂ − c‖₂ / √n — the paper's "Residual"
    // scale in Table II (inputs are normalized, ‖c‖₂ = 1).
    std::vector<double> pred_d(pred.begin(), pred.end());
    std::vector<double> ar = s.topo->a_local.apply(pred_d);
    double acc = 0.0;
    for (std::size_t j = 0; j < ar.size(); ++j) {
      const double r = ar[j] - s.rhs[j];
      acc += r * r;
    }
    residuals[i] = std::sqrt(acc / static_cast<double>(ar.size()));
    // Relative error against the exact local solve.
    const auto exact = factors.at(s.topo.get())->solve(s.rhs);
    rel_errors[i] =
        la::dist2(pred_d, exact) / std::max(1e-300, la::norm2(exact));
  }

  auto mean_std = [](const std::vector<double>& v, double& mean, double& sd) {
    mean = 0.0;
    for (const double x : v) mean += x;
    mean /= static_cast<double>(v.size());
    sd = 0.0;
    for (const double x : v) sd += (x - mean) * (x - mean);
    sd = std::sqrt(sd / static_cast<double>(v.size()));
  };
  mean_std(residuals, out.residual_mean, out.residual_std);
  mean_std(rel_errors, out.rel_error_mean, out.rel_error_std);
  return out;
}

}  // namespace ddmgnn::gnn
