#include "gnn/dss_model.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "gnn/dss_kernels.hpp"

namespace ddmgnn::gnn {

DssModel::DssModel(DssConfig cfg, std::uint64_t seed) : cfg_(cfg) {
  DDMGNN_CHECK(cfg_.iterations >= 1 && cfg_.latent >= 1 && cfg_.hidden >= 1,
               "DssModel: bad config");
  blocks_.reserve(cfg_.iterations);
  for (int k = 0; k < cfg_.iterations; ++k) {
    Block b;
    b.phi_fwd = nn::Mlp(store_, cfg_.message_input_dim(), cfg_.hidden,
                        cfg_.latent);
    b.phi_bwd = nn::Mlp(store_, cfg_.message_input_dim(), cfg_.hidden,
                        cfg_.latent);
    b.psi = nn::Mlp(store_, cfg_.update_input_dim(), cfg_.hidden, cfg_.latent);
    b.dec = nn::Mlp(store_, cfg_.latent, cfg_.hidden, 1);
    blocks_.push_back(b);
  }
  store_.finalize();
  Rng rng(seed ^ 0x8BADF00DCAFEBABEull);
  for (const Block& b : blocks_) {
    b.phi_fwd.init(store_.values(), rng);
    b.phi_bwd.init(store_.values(), rng);
    b.psi.init(store_.values(), rng);
    b.dec.init(store_.values(), rng);
  }
}

void DssModel::run_forward(const GraphSample& g, DssWorkspace& ws,
                           bool keep_all_decodes) const {
  const GraphTopology& topo = *g.topo;
  const Index n = topo.n;
  const int d = cfg_.latent;
  const int in_dim = cfg_.node_input_dim();
  const float* p = store_.data();

  ws.h.resize(cfg_.iterations + 1);
  ws.iters.resize(cfg_.iterations);
  ws.h[0].resize(n, d);
  ws.h[0].zero();

  for (int k = 0; k < cfg_.iterations; ++k) {
    const Block& blk = blocks_[k];
    auto& st = ws.iters[k];
    const nn::Tensor& h = ws.h[k];

    build_edge_inputs(topo, h, /*flip=*/false, st.x_fwd);
    blk.phi_fwd.forward(p, st.x_fwd, st.m_fwd, st.c_fwd);
    aggregate_scatter(topo, st.m_fwd, n, st.phi_fwd);

    build_edge_inputs(topo, h, /*flip=*/true, st.x_bwd);
    blk.phi_bwd.forward(p, st.x_bwd, st.m_bwd, st.c_bwd);
    aggregate_scatter(topo, st.m_bwd, n, st.phi_bwd);

    // Ψ input: [h, c (, dirichlet flag), φ→, φ←].
    st.x_psi.resize(n, cfg_.update_input_dim());
    for (Index i = 0; i < n; ++i) {
      float* row = st.x_psi.row(i);
      const float* hi = h.row(i);
      for (int kk = 0; kk < d; ++kk) row[kk] = hi[kk];
      row[d] = static_cast<float>(g.rhs[i]);
      if (in_dim == 2) row[d + 1] = topo.dirichlet[i] ? 1.0f : 0.0f;
      const float* pf = st.phi_fwd.row(i);
      const float* pb = st.phi_bwd.row(i);
      for (int kk = 0; kk < d; ++kk) row[d + in_dim + kk] = pf[kk];
      for (int kk = 0; kk < d; ++kk) row[d + in_dim + d + kk] = pb[kk];
    }
    blk.psi.forward(p, st.x_psi, st.u, st.c_psi);

    ws.h[k + 1].resize(n, d);
    for (std::size_t i = 0; i < ws.h[k].size(); ++i) {
      ws.h[k + 1].d[i] = ws.h[k].d[i] + cfg_.alpha * st.u.d[i];
    }
    if (keep_all_decodes || k == cfg_.iterations - 1) {
      blk.dec.forward(p, ws.h[k + 1], st.rhat, st.c_dec);
    }
  }
}

DssEdgeCache DssModel::precompute_edges(const GraphTopology& topo) const {
  DssEdgeCache cache;
  cache.fwd.resize(cfg_.iterations);
  cache.bwd.resize(cfg_.iterations);
  const float* p = store_.data();
  const int ldw = cfg_.message_input_dim();
  const int attr_col = 2 * cfg_.latent;
  for (int k = 0; k < cfg_.iterations; ++k) {
    const nn::Linear& l1f = blocks_[k].phi_fwd.l1();
    const nn::Linear& l1b = blocks_[k].phi_bwd.l1();
    project_attr(topo, l1f.weights(p), ldw, attr_col, l1f.bias(p),
                 /*sign=*/1.0f, cfg_.hidden, cache.fwd[k]);
    project_attr(topo, l1b.weights(p), ldw, attr_col, l1b.bias(p),
                 /*sign=*/-1.0f, cfg_.hidden, cache.bwd[k]);
  }
  return cache;
}

void DssModel::run_forward_fast(const GraphSample& g, const DssEdgeCache* cache,
                                DssWorkspace& ws,
                                DssPhaseProfile* profile) const {
  const GraphTopology& topo = *g.topo;
  DDMGNN_CHECK(topo.recv_ptr.size() == static_cast<std::size_t>(topo.n) + 1,
               "DssModel: fast inference requires a finalized topology "
               "(finalize_topology builds the receiver-CSR index)");
  DDMGNN_CHECK(cache == nullptr ||
                   (cache->fwd.size() ==
                        static_cast<std::size_t>(cfg_.iterations) &&
                    cache->bwd.size() == cache->fwd.size() &&
                    cache->fwd[0].rows == topo.num_edges() &&
                    cache->bwd[0].rows == topo.num_edges()),
               "DssModel: edge cache does not match the model depth and the "
               "sample's topology (caches are per (topology, model) pair)");
  const Index n = topo.n;
  const int d = cfg_.latent;
  const int hid = cfg_.hidden;
  const int in_dim = cfg_.node_input_dim();
  const int ldw = cfg_.message_input_dim();
  const int attr_col = 2 * d;
  const float* p = store_.data();
  auto& f = ws.fast;

  Timer phase_timer;
  auto tic = [&] {
    if (profile != nullptr) phase_timer.reset();
  };
  auto toc = [&](double DssPhaseProfile::*slot) {
    if (profile != nullptr) profile->*slot += phase_timer.seconds();
  };

  f.h_cur.resize(n, d);
  f.h_cur.zero();

  for (int k = 0; k < cfg_.iterations; ++k) {
    const Block& blk = blocks_[k];
    for (const bool flip : {false, true}) {
      const nn::Mlp& mlp = flip ? blk.phi_bwd : blk.phi_fwd;
      const nn::Linear& l1 = mlp.l1();
      const float* w1 = l1.weights(p);

      tic();
      if (k == 0) {
        // H⁰ = 0 ⇒ both node projections are exactly zero; skip the GEMMs.
        f.p_recv.resize(n, hid);
        f.p_recv.zero();
        f.p_send.resize(n, hid);
        f.p_send.zero();
      } else {
        nn::fused_gemm(w1, ldw, /*col0=*/0, hid, /*b=*/nullptr,
                       /*relu=*/false, f.h_cur, f.p_recv);
        nn::fused_gemm(w1, ldw, /*col0=*/d, hid, /*b=*/nullptr,
                       /*relu=*/false, f.h_cur, f.p_send);
      }
      const nn::Tensor* attr_proj;
      if (cache != nullptr) {
        attr_proj = flip ? &cache->bwd[k] : &cache->fwd[k];
      } else {
        project_attr(topo, w1, ldw, attr_col, l1.bias(p),
                     flip ? -1.0f : 1.0f, hid, f.attr_scratch);
        attr_proj = &f.attr_scratch;
      }
      toc(&DssPhaseProfile::projection);

      if (cfg_.fused_aggregate) {
        // One pass over the receiver-CSR index: gather + layer-2 GEMM +
        // reduction, bitwise equal to the three-step sequence below. The
        // merged time lands on the aggregate slot of the profile.
        tic();
        const nn::Linear& l2 = mlp.l2();
        fused_layer2_aggregate(topo, f.p_recv, f.p_send, *attr_proj,
                               l2.weights(p), l2.bias(p), d,
                               flip ? f.phi_bwd : f.phi_fwd);
        toc(&DssPhaseProfile::aggregate);
      } else {
        tic();
        gather_edge_preact(topo, f.p_recv, f.p_send, *attr_proj, f.e_act);
        toc(&DssPhaseProfile::gather);

        tic();
        mlp.l2().forward_fused(p, f.e_act, f.m_edge, /*relu=*/false);
        toc(&DssPhaseProfile::projection);

        tic();
        aggregate_segmented(topo, f.m_edge, flip ? f.phi_bwd : f.phi_fwd);
        toc(&DssPhaseProfile::aggregate);
      }
    }

    tic();
    // Ψ input: [h, c (, dirichlet flag), φ→, φ←] — same layout as the
    // reference path.
    f.x_psi.resize(n, cfg_.update_input_dim());
    parallel_for(
        n,
        [&](long li) {
          const auto i = static_cast<Index>(li);
          float* row = f.x_psi.row(i);
          const float* hi = f.h_cur.row(i);
          for (int kk = 0; kk < d; ++kk) row[kk] = hi[kk];
          row[d] = static_cast<float>(g.rhs[i]);
          if (in_dim == 2) row[d + 1] = topo.dirichlet[i] ? 1.0f : 0.0f;
          const float* pf = f.phi_fwd.row(i);
          const float* pb = f.phi_bwd.row(i);
          for (int kk = 0; kk < d; ++kk) row[d + in_dim + kk] = pf[kk];
          for (int kk = 0; kk < d; ++kk) row[d + in_dim + d + kk] = pb[kk];
        },
        /*grain=*/2048);
    blk.psi.infer(p, f.x_psi, f.u, f.hidden);
    f.h_next.resize(n, d);
    const float alpha = cfg_.alpha;
    for (std::size_t i = 0; i < f.h_cur.size(); ++i) {
      f.h_next.d[i] = f.h_cur.d[i] + alpha * f.u.d[i];
    }
    std::swap(f.h_cur, f.h_next);
    toc(&DssPhaseProfile::update);
  }

  tic();
  blocks_.back().dec.infer(p, f.h_cur, f.rhat, f.hidden);
  toc(&DssPhaseProfile::decode);
}

void DssModel::forward(const GraphSample& g, const DssEdgeCache* cache,
                       DssWorkspace& ws, std::vector<float>& out,
                       DssPhaseProfile* profile) const {
  if (cfg_.fast_inference) {
    run_forward_fast(g, cache, ws, profile);
    out.assign(ws.fast.rhat.d.begin(), ws.fast.rhat.d.end());
    return;
  }
  run_forward(g, ws, /*keep_all_decodes=*/false);
  const nn::Tensor& rhat = ws.iters.back().rhat;
  out.assign(rhat.d.begin(), rhat.d.end());
}

void DssModel::forward(const GraphSample& g, DssWorkspace& ws,
                       std::vector<float>& out) const {
  forward(g, /*cache=*/nullptr, ws, out, /*profile=*/nullptr);
}

double DssModel::residual_loss(const GraphTopology& topo,
                               std::span<const double> rhs,
                               const nn::Tensor& rhat,
                               std::vector<double>& residual) const {
  const Index n = topo.n;
  residual.resize(n);
  const auto rp = topo.a_local.row_ptr();
  const auto ci = topo.a_local.col_idx();
  const auto va = topo.a_local.values();
  double loss = 0.0;
  for (Index i = 0; i < n; ++i) {
    double acc = -rhs[i];
    for (la::Offset e = rp[i]; e < rp[i + 1]; ++e) {
      acc += va[e] * static_cast<double>(rhat.d[ci[e]]);
    }
    residual[i] = acc;
    loss += acc * acc;
  }
  return loss / static_cast<double>(n);
}

double DssModel::final_residual_loss(const GraphSample& g,
                                     DssWorkspace& ws) const {
  run_forward(g, ws, /*keep_all_decodes=*/false);
  std::vector<double> residual;
  return residual_loss(*g.topo, g.rhs, ws.iters.back().rhat, residual);
}

double DssModel::loss_and_gradient(const GraphSample& g, DssWorkspace& ws,
                                   float* grads) const {
  const GraphTopology& topo = *g.topo;
  const Index n = topo.n;
  const int d = cfg_.latent;
  const int in_dim = cfg_.node_input_dim();
  const float* p = store_.data();

  run_forward(g, ws, /*keep_all_decodes=*/true);

  // Forward losses (also caches residual vectors for the backward pass).
  double total_loss = 0.0;
  for (int k = 0; k < cfg_.iterations; ++k) {
    total_loss +=
        residual_loss(topo, g.rhs, ws.iters[k].rhat, ws.iters[k].residual);
  }

  // Reverse sweep. dh holds ∂L/∂H^{k+1} entering iteration k.
  ws.dh.resize(n, d);
  ws.dh.zero();
  for (int k = cfg_.iterations - 1; k >= 0; --k) {
    const Block& blk = blocks_[k];
    auto& st = ws.iters[k];

    // Loss at decode k: dL/dr̂ = (2/n)·Aᵀ·residual, then through the decoder
    // into dh (gradients w.r.t. H^{k+1}).
    {
      std::vector<double> at_res(n, 0.0);
      const auto rp = topo.a_local.row_ptr();
      const auto ci = topo.a_local.col_idx();
      const auto va = topo.a_local.values();
      for (Index i = 0; i < n; ++i) {
        const double ri = st.residual[i];
        for (la::Offset e = rp[i]; e < rp[i + 1]; ++e) {
          at_res[ci[e]] += va[e] * ri;
        }
      }
      ws.drhat.resize(n, 1);
      const double scale = 2.0 / static_cast<double>(n);
      for (Index i = 0; i < n; ++i) {
        ws.drhat.d[i] = static_cast<float>(scale * at_res[i]);
      }
      nn::Tensor dh_dec;
      blk.dec.backward(p, ws.h[k + 1], st.c_dec, ws.drhat, &dh_dec, grads);
      for (std::size_t i = 0; i < ws.dh.size(); ++i) {
        ws.dh.d[i] += dh_dec.d[i];
      }
    }

    // ResNet split: H^{k+1} = H^k + α U ⇒ dU = α·dh, identity part -> dh_next.
    ws.du.resize(n, d);
    for (std::size_t i = 0; i < ws.du.size(); ++i) {
      ws.du.d[i] = cfg_.alpha * ws.dh.d[i];
    }
    ws.dh_next = ws.dh;  // identity path

    // Ψ backward.
    blk.psi.backward(p, st.x_psi, st.c_psi, ws.du, &ws.dx_psi, grads);
    // Slice dx_psi = [dH | dc(,dflag) | dφ→ | dφ←].
    ws.dphi_fwd.resize(n, d);
    ws.dphi_bwd.resize(n, d);
    for (Index i = 0; i < n; ++i) {
      const float* row = ws.dx_psi.row(i);
      float* dhn = ws.dh_next.row(i);
      for (int kk = 0; kk < d; ++kk) dhn[kk] += row[kk];
      float* df = ws.dphi_fwd.row(i);
      float* db = ws.dphi_bwd.row(i);
      for (int kk = 0; kk < d; ++kk) df[kk] = row[d + in_dim + kk];
      for (int kk = 0; kk < d; ++kk) db[kk] = row[d + in_dim + d + kk];
    }

    // Message MLPs backward: dM[e] = dφ[recv[e]]; input grads flow to both
    // endpoint latent states.
    const Index ne = topo.num_edges();
    for (const bool flip : {false, true}) {
      const nn::Tensor& dphi = flip ? ws.dphi_bwd : ws.dphi_fwd;
      const nn::Tensor& x_edge = flip ? st.x_bwd : st.x_fwd;
      const nn::Mlp::Cache& cache = flip ? st.c_bwd : st.c_fwd;
      const nn::Mlp& mlp = flip ? blk.phi_bwd : blk.phi_fwd;
      ws.dm.resize(ne, d);
      for (Index e = 0; e < ne; ++e) {
        const float* src = dphi.row(topo.recv[e]);
        float* dst = ws.dm.row(e);
        for (int kk = 0; kk < d; ++kk) dst[kk] = src[kk];
      }
      mlp.backward(p, x_edge, cache, ws.dm, &ws.dx_edge, grads);
      for (Index e = 0; e < ne; ++e) {
        const float* row = ws.dx_edge.row(e);
        float* dr = ws.dh_next.row(topo.recv[e]);
        float* dsnd = ws.dh_next.row(topo.send[e]);
        for (int kk = 0; kk < d; ++kk) dr[kk] += row[kk];
        for (int kk = 0; kk < d; ++kk) dsnd[kk] += row[d + kk];
      }
    }
    std::swap(ws.dh, ws.dh_next);
  }
  return total_loss;
}

}  // namespace ddmgnn::gnn
