// Inference kernels of the factorized DSS engine, plus the scalar reference
// implementations they are tested against.
//
// The factorization (exact, not approximate): the first layer of an edge MLP
// computes  [h_recv | h_send | ±attr] · W₁ᵀ + b₁  over all ne edges. Split
// W₁ = [W_recv | W_send | W_attr] by column block and the per-edge GEMM
// becomes
//
//   pre[e] = (H·W_recvᵀ)[recv[e]] + (H·W_sendᵀ)[send[e]] + (attr·W_attrᵀ + b₁)[e]
//
// i.e. two n×d GEMMs on node states (instead of one ne×(2d+3) GEMM on a
// materialized edge-input matrix) plus a per-edge gather-sum. The attr term
// depends only on edge geometry and frozen model parameters, so it is
// precomputed once per (topology, model) pair — DssEdgeCache — and reused
// across every apply of every solve. Aggregation runs as a segmented
// reduction over the receiver-CSR index (GraphTopology::recv_ptr /
// recv_order): parallel over nodes, no atomics, bitwise equal to the serial
// scatter at any thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "gnn/graph.hpp"
#include "nn/mlp.hpp"
#include "nn/tensor.hpp"

namespace ddmgnn::gnn {

/// Precomputed attr-column projections of the edge MLPs' first layers:
/// per message-passing block k, fwd[k] / bwd[k] hold the ne × hidden matrix
/// attr·W_attrᵀ + b₁ for the plain (Φ→) and sign-flipped (Φ←) edge
/// attributes. Valid as long as both the topology and the model parameters
/// are unchanged (frozen trained models at inference time).
struct DssEdgeCache {
  std::vector<nn::Tensor> fwd;
  std::vector<nn::Tensor> bwd;

  std::size_t bytes() const {
    std::size_t b = 0;
    for (const auto& t : fwd) b += t.size() * sizeof(float);
    for (const auto& t : bwd) b += t.size() * sizeof(float);
    return b;
  }
};

/// Wall-clock seconds per phase of one (or many, accumulated) fast forward
/// passes — the bench_precond_apply breakdown.
struct DssPhaseProfile {
  double projection = 0.0;  ///< node/edge GEMMs of the message MLPs
  double gather = 0.0;      ///< per-edge pre-activation assembly + ReLU
  double aggregate = 0.0;   ///< segmented per-node message reduction
  double update = 0.0;      ///< Ψ input assembly + MLP + ResNet step
  double decode = 0.0;      ///< decoder MLP

  double total() const {
    return projection + gather + aggregate + update + decode;
  }
  DssPhaseProfile& operator+=(const DssPhaseProfile& o) {
    projection += o.projection;
    gather += o.gather;
    aggregate += o.aggregate;
    update += o.update;
    decode += o.decode;
    return *this;
  }
};

/// Telemetry bridge: fold one measured forward pass into the obs layer — a
/// "dss.forward" span over [start_ns, end_ns) with the five phases laid
/// end-to-end as child spans (when tracing), and per-phase dss.*_seconds
/// gauges (when metrics are on). The profile is only filled by the fast
/// path; a zero total() still emits the parent span so wall-time coverage
/// holds on the reference path. Safe to call from OpenMP worker threads.
void record_phase_profile(const DssPhaseProfile& prof, std::int64_t start_ns,
                          std::int64_t end_ns);

/// Reference edge-input assembly: row e = [h_recv, h_send, ±dx, ±dy, dist].
void build_edge_inputs(const GraphTopology& topo, const nn::Tensor& h,
                       bool flip_direction, nn::Tensor& x);

/// Reference aggregation: phi[recv[e]] += m[e], serial scatter in edge order.
void aggregate_scatter(const GraphTopology& topo, const nn::Tensor& m,
                       Index n, nn::Tensor& phi);

/// Segmented aggregation over the receiver-CSR index: parallel over nodes,
/// per-node accumulation order identical to aggregate_scatter — bitwise
/// equal results at any thread count. Requires finalize_topology().
void aggregate_segmented(const GraphTopology& topo, const nn::Tensor& m,
                         nn::Tensor& phi);

/// Attr-column projection y[e,:] = [s·dx, s·dy, dist]·W_attrᵀ + b with
/// W_attr = columns [col0, col0+3) of the row-major [out × ldw] matrix `w`
/// (the edge MLP's first layer) and s = sign. The bias is folded in here so
/// the gather kernel is pure adds.
void project_attr(const GraphTopology& topo, const float* w, int ldw,
                  int col0, const float* b, float sign, int out,
                  nn::Tensor& y);

/// Fused gather: e_act[e,:] = ReLU(p_recv[recv[e],:] + p_send[send[e],:] +
/// attr_proj[e,:]) — the factorized first layer's activation.
void gather_edge_preact(const GraphTopology& topo, const nn::Tensor& p_recv,
                        const nn::Tensor& p_send, const nn::Tensor& attr_proj,
                        nn::Tensor& e_act);

/// Fused layer2 + aggregate: the gather, the edge MLP's second-layer GEMM
/// (`w2` row-major [out × in], bias `b2`), and the receiver-CSR segmented
/// reduction in one pass. Edges are consumed per receiver node in recv_order,
/// in small register-blocked batches whose layer-2 output rows are
/// accumulated straight into phi[j] — the ne×hidden activation and ne×out
/// message matrices of the two-step path are never materialized. Per-row
/// GEMM arithmetic is fused_gemm's and the per-node accumulation order is
/// aggregate_segmented's, so the result is bitwise equal to
/// gather_edge_preact + forward_fused + aggregate_segmented at any thread
/// count and any batch boundary. Requires finalize_topology().
void fused_layer2_aggregate(const GraphTopology& topo,
                            const nn::Tensor& p_recv,
                            const nn::Tensor& p_send,
                            const nn::Tensor& attr_proj, const float* w2,
                            const float* b2, int out, nn::Tensor& phi);

}  // namespace ddmgnn::gnn
