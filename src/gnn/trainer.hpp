// Physics-informed training loop for the DSS model (paper §IV-B): Adam with
// lr 1e-2, batch training with global-norm gradient clipping, and a
// ReduceLROnPlateau schedule. Batches are data-parallel across OpenMP threads
// with per-thread gradient buffers (deterministic reduction order).
//
// Because this repository trains on CPUs instead of the paper's 2×P100, the
// trainer accepts a wall-clock budget: it stops at min(epochs, budget) and
// reports what it did.
#pragma once

#include <cstdint>
#include <vector>

#include "gnn/dss_model.hpp"
#include "gnn/graph.hpp"

namespace ddmgnn::gnn {

struct TrainConfig {
  int epochs = 40;
  int batch_size = 100;          // paper: 100
  double learning_rate = 1e-2;   // paper: 1e-2
  double clip_norm = 1e-2;       // paper: gradient clipping 1e-2
  double plateau_factor = 0.1;   // paper: ReduceLROnPlateau, factor 0.1
  int plateau_patience = 8;
  double wall_clock_budget_s = 0.0;  // 0 = unlimited
  std::uint64_t seed = 0;
  bool verbose = false;
};

struct TrainReport {
  std::vector<double> epoch_loss;       // mean training loss per epoch
  std::vector<double> validation_loss;  // final-decode L_res on val set
  int epochs_run = 0;
  double seconds = 0.0;
  bool budget_exhausted = false;
};

/// Train `model` in place on `train` (validating on `val`, may be empty).
TrainReport train_dss(DssModel& model, const std::vector<GraphSample>& train,
                      const std::vector<GraphSample>& val,
                      const TrainConfig& cfg);

/// Mean final-decode residual loss over a dataset (lower is better).
double mean_residual_loss(const DssModel& model,
                          const std::vector<GraphSample>& samples);

}  // namespace ddmgnn::gnn
