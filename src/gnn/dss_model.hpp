// Deep Statistical Solver (DSS) model — §III-B of the paper, after [Donon et
// al., NeurIPS 2020]. Architecture:
//
//   H⁰ = 0                                  (latent n×d, Initialization)
//   for k = 0..k̄-1:                         (k̄ distinct MPNN blocks)
//     φ→_j = Σ_{l∈N(j)} Φ→ᵏ(h_j, h_l, d_jl, ‖d_jl‖)            (Eq. 18)
//     φ←_j = Σ_{l∈N(j)} Φ←ᵏ(h_j, h_l, d_lj, ‖d_lj‖)            (Eq. 19)
//     h_j  += α · Ψᵏ(h_j, c_j, φ→_j, φ←_j)                      (Eq. 20)
//     r̂ᵏ   = Dᵏ(Hᵏ⁺¹)                        (per-iteration decoder, Eq. 22)
//
// trained with the physics-informed loss Σ_k L_res(r̂ᵏ, G) (Eq. 23), where
// L_res(u, G) = 1/n Σ_i (Σ_j a_ij u_j − b_i)² (Eq. 11).
//
// All four networks of a block are 1-hidden-layer ReLU MLPs (paper §IV-B).
// Backpropagation through the full unrolled iteration is hand-derived; the
// gradient-check unit tests validate it against finite differences.
//
// Deviation (documented in DESIGN.md): an optional extra input channel marks
// Dirichlet nodes (cfg.dirichlet_flag). With the flag off the parameter
// counts match the paper's Table II exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "gnn/dss_kernels.hpp"
#include "gnn/graph.hpp"
#include "nn/adam.hpp"
#include "nn/mlp.hpp"
#include "nn/param_store.hpp"
#include "nn/tensor.hpp"

namespace ddmgnn::gnn {

struct DssConfig {
  int iterations = 10;  ///< k̄ — number of MPNN blocks
  int latent = 10;      ///< d — latent dimension
  int hidden = 10;      ///< MLP hidden width (paper: 10)
  float alpha = 0.05f;  ///< ResNet step (paper: 1e-3; larger trains faster on
                        ///< the small CPU budgets this repo targets)
  bool dirichlet_flag = true;  ///< extra node-input channel (see header note)
  /// Inference path selector: true routes forward() through the factorized
  /// simd engine (dss_kernels.hpp), false through the scalar reference
  /// implementation — same weights, outputs agree to float rounding (the
  /// fast-path test bounds the difference at 1e-4 relative). Not part of the
  /// serialized model identity; training always uses the reference kernels
  /// because the backward pass consumes their caches.
  bool fast_inference = true;
  /// Fast-path variant selector: true consumes each edge batch's layer-2
  /// output directly into the receiver-CSR reduction
  /// (fused_layer2_aggregate — no ne×hidden/ne×latent materialization),
  /// false keeps the three-step gather → layer-2 GEMM → aggregate sequence.
  /// The two are bitwise equal at any thread count, so this defaults on; the
  /// flag exists for A/B benching and the equivalence test. Not part of the
  /// serialized model identity.
  bool fused_aggregate = true;

  int node_input_dim() const { return dirichlet_flag ? 2 : 1; }
  int message_input_dim() const { return 2 * latent + 3; }
  int update_input_dim() const {
    return latent + node_input_dim() + 2 * latent;
  }
};

/// Per-thread forward/backward scratch. Reused across calls; sized lazily.
struct DssWorkspace {
  struct IterState {
    nn::Tensor x_fwd, x_bwd;          // edge MLP inputs (E × (2d+3))
    nn::Tensor m_fwd, m_bwd;          // edge messages (E × d)
    nn::Mlp::Cache c_fwd, c_bwd;      // hidden caches of the edge MLPs
    nn::Tensor phi_fwd, phi_bwd;      // aggregated messages (n × d)
    nn::Tensor x_psi;                 // update input (n × (3d+in))
    nn::Tensor u;                     // Ψ output (n × d)
    nn::Mlp::Cache c_psi;
    nn::Tensor rhat;                  // decode (n × 1)
    nn::Mlp::Cache c_dec;
    std::vector<double> residual;     // A r̂ − c (kept for the backward pass)
  };
  std::vector<nn::Tensor> h;          // latent states H⁰..H^k̄ (n × d)
  std::vector<IterState> iters;
  // Backward scratch.
  nn::Tensor dh, dh_next, du, drhat, dx_psi, dm, dx_edge, dphi_fwd, dphi_bwd;
  /// Factorized-inference scratch: the fast path needs no per-iteration
  /// state (only the running latent), so its buffers are flat and ping-pong.
  struct Fast {
    nn::Tensor h_cur, h_next;         // latent (n × d)
    nn::Tensor p_recv, p_send;        // node projections (n × hidden)
    nn::Tensor attr_scratch;          // cache-less attr projections (ne × hidden)
    nn::Tensor e_act;                 // fused edge activations (ne × hidden)
    nn::Tensor m_edge;                // edge messages (ne × d)
    nn::Tensor phi_fwd, phi_bwd;      // aggregated messages (n × d)
    nn::Tensor x_psi, u;              // Ψ input / output
    nn::Tensor hidden;                // MLP hidden scratch
    nn::Tensor rhat;                  // decode (n × 1)
  } fast;
};

class DssModel {
 public:
  DssModel(DssConfig cfg, std::uint64_t seed);

  const DssConfig& config() const { return cfg_; }
  /// Flip between the factorized engine and the scalar reference path
  /// (benches and the equivalence tests A/B the two on one binary).
  void set_fast_inference(bool fast) { cfg_.fast_inference = fast; }
  /// Flip the fused layer2+aggregate kernel inside the fast path (see
  /// DssConfig::fused_aggregate).
  void set_fused_aggregate(bool fused) { cfg_.fused_aggregate = fused; }
  std::size_t num_params() const { return store_.size(); }
  std::span<float> params() { return store_.values(); }
  std::span<const float> params() const { return store_.values(); }

  /// Precompute the per-block attr projections of `topo` for this model's
  /// current parameters — one-time setup cost that removes the attr GEMM
  /// from every subsequent fast forward on that topology. Invalidated by
  /// parameter updates (callers hold frozen trained models).
  DssEdgeCache precompute_edges(const GraphTopology& topo) const;

  /// Inference: out = r̂^k̄ (the final decode), resized to g.size().
  void forward(const GraphSample& g, DssWorkspace& ws,
               std::vector<float>& out) const;

  /// Inference with an optional precomputed edge cache (nullptr recomputes
  /// the attr projections per call) and optional per-phase wall-clock
  /// accumulation (nullptr = no timing; profile is only filled by the fast
  /// path). Honors cfg.fast_inference.
  void forward(const GraphSample& g, const DssEdgeCache* cache,
               DssWorkspace& ws, std::vector<float>& out,
               DssPhaseProfile* profile = nullptr) const;

  /// Training pass: runs forward with all intermediate decodes, accumulates
  /// parameter gradients into `grads` (size num_params()), returns the
  /// training loss Σ_k L_res(r̂ᵏ, G).
  double loss_and_gradient(const GraphSample& g, DssWorkspace& ws,
                           float* grads) const;

  /// L_res of the final decode only (the paper's "Residual" metric source).
  double final_residual_loss(const GraphSample& g, DssWorkspace& ws) const;

 private:
  struct Block {
    nn::Mlp phi_fwd;  // Φ→
    nn::Mlp phi_bwd;  // Φ←
    nn::Mlp psi;      // Ψ
    nn::Mlp dec;      // D
  };

  void run_forward(const GraphSample& g, DssWorkspace& ws,
                   bool keep_all_decodes) const;
  /// Factorized inference engine (see dss_kernels.hpp for the algebra).
  void run_forward_fast(const GraphSample& g, const DssEdgeCache* cache,
                        DssWorkspace& ws, DssPhaseProfile* profile) const;
  /// L_res and its gradient w.r.t. the decode (into ws.drhat).
  double residual_loss(const GraphTopology& topo,
                       std::span<const double> rhs, const nn::Tensor& rhat,
                       std::vector<double>& residual) const;

  DssConfig cfg_;
  nn::ParameterStore store_;
  std::vector<Block> blocks_;
};

}  // namespace ddmgnn::gnn
