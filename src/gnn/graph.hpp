// Graph representation of a local (subdomain) Poisson problem — Eq. 15/17 of
// the paper: G_i = (Ω_h,i, R_i r / ||R_i r||). Topology (geometry + edges +
// local operator) is shared between the many residual samples of a subdomain;
// a GraphSample adds the per-sample normalized right-hand side.
//
// Edge rule (§III-B): the graph is undirected except at Dirichlet nodes,
// whose edges point toward the interior — i.e. a Dirichlet node sends
// messages but never receives any. Edge attributes are the relative position
// d_jl = x_l − x_j and its norm (the paper's discretization-free variant).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "la/csr.hpp"
#include "mesh/geometry.hpp"

namespace ddmgnn::gnn {

using la::CsrMatrix;
using la::Index;

struct GraphTopology {
  Index n = 0;
  /// Directed message edges: node send[e] -> node recv[e] (recv aggregates).
  std::vector<Index> recv;
  std::vector<Index> send;
  /// Per-edge geometry [dx, dy, dist] with (dx,dy) = pos[send] − pos[recv],
  /// i.e. d_jl for receiver j and sender l.
  std::vector<float> attr;
  /// Local Dirichlet flags (global-boundary nodes inside the subdomain).
  std::vector<std::uint8_t> dirichlet;
  /// Local operator A_i = R_i A R_iᵀ — used by the physics-informed loss and
  /// by the exact local solve in metrics.
  CsrMatrix a_local;

  /// CSR-by-receiver view of the edge list, built once at construction by
  /// finalize_topology(): edges recv_order[recv_ptr[j] .. recv_ptr[j+1]) all
  /// have receiver j, in increasing edge order (stable). This turns message
  /// aggregation into a segmented reduction parallelizable over nodes with
  /// no atomics — per-node summation order equals the serial scatter's, so
  /// results are bitwise reproducible at any thread count.
  std::vector<la::Offset> recv_ptr;
  std::vector<Index> recv_order;

  Index num_edges() const { return static_cast<Index>(recv.size()); }
};

/// One training / inference sample: shared topology + normalized source term.
struct GraphSample {
  std::shared_ptr<const GraphTopology> topo;
  /// c = R_i r / ||R_i r|| (double, drives the loss).
  std::vector<double> rhs;

  Index size() const { return topo->n; }
};

/// Build the topology from a local operator and node coordinates. Message
/// edges follow the off-diagonal pattern of `edge_pattern` when given (the
/// sub-mesh adjacency — the paper's Ω_h,i graph, which keeps the
/// boundary→interior links that symmetric Dirichlet elimination removes from
/// A), else the pattern of `a_local`. Edges into Dirichlet receivers are
/// dropped (the paper's directed-boundary rule).
std::shared_ptr<GraphTopology> build_topology(
    CsrMatrix a_local, std::span<const mesh::Point2> coords,
    std::span<const std::uint8_t> dirichlet,
    const CsrMatrix* edge_pattern = nullptr);

/// Mesh adjacency as a pattern-only CSR (unit values), restrictable with
/// principal_submatrix to give each subdomain its Ω_h,i message graph.
CsrMatrix adjacency_pattern(std::span<const la::Offset> adj_ptr,
                            std::span<const Index> adj);

/// (Re)build the receiver-CSR index (recv_ptr / recv_order) from the edge
/// list — a stable counting sort by receiver, O(n + ne). Every construction
/// site (build_topology, batch_samples, dataset I/O) calls this; custom
/// topologies assembled by hand must call it before fast-path inference.
void finalize_topology(GraphTopology& topo);

}  // namespace ddmgnn::gnn
