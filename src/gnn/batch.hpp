// Disjoint-union batching of graph samples — the paper's Eq. 14: all K local
// problems [G_1, …, G_K] are solved in one (or Nb) DSS inference(s). The
// batched graph is the block-diagonal union: node blocks are concatenated,
// edge lists offset, and A_local assembled block-diagonally so the physics-
// informed loss of the batch equals the size-weighted mean of the parts.
// Message passing never crosses blocks, so a batched forward is exactly
// equivalent to per-graph forwards (a property test asserts bit-level-close
// equality).
#pragma once

#include <span>
#include <vector>

#include "gnn/graph.hpp"

namespace ddmgnn::gnn {

struct BatchedSample {
  GraphSample merged;
  /// Start offset of each part in the merged node numbering (size parts+1).
  std::vector<Index> offsets;

  Index num_parts() const { return static_cast<Index>(offsets.size()) - 1; }

  /// Copy the slice of a merged per-node vector belonging to part `i`.
  template <typename T>
  std::vector<T> split(std::span<const T> merged_values, Index i) const {
    return std::vector<T>(merged_values.begin() + offsets[i],
                          merged_values.begin() + offsets[i + 1]);
  }
};

/// Merge samples into one disjoint-union sample. Topologies are copied into
/// a fresh merged topology (callers batch once at setup and reuse it).
BatchedSample batch_samples(std::span<const GraphSample> samples);

}  // namespace ddmgnn::gnn
