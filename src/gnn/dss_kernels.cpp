#include "gnn/dss_kernels.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "obs/flags.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ddmgnn::gnn {

namespace {
constexpr long kEdgeGrain = 2048;  // per-edge kernels: rows per fork threshold
constexpr long kNodeGrain = 2048;  // per-node kernels
// fused_layer2_aggregate: edges per register-blocked batch. At the paper's
// widths (hidden = latent = 10) one batch is ~10 KB of activations+messages —
// resident in L1 while the layer-2 GEMM consumes it.
constexpr int kFusedEdgeBlock = 128;
}  // namespace

void record_phase_profile(const DssPhaseProfile& prof, std::int64_t start_ns,
                          std::int64_t end_ns) {
  if (obs::metrics_enabled()) {
    static obs::Gauge& projection =
        obs::Registry::instance().gauge("dss.projection_seconds");
    static obs::Gauge& gather =
        obs::Registry::instance().gauge("dss.gather_seconds");
    static obs::Gauge& aggregate =
        obs::Registry::instance().gauge("dss.aggregate_seconds");
    static obs::Gauge& update =
        obs::Registry::instance().gauge("dss.update_seconds");
    static obs::Gauge& decode =
        obs::Registry::instance().gauge("dss.decode_seconds");
    projection.add(prof.projection);
    gather.add(prof.gather);
    aggregate.add(prof.aggregate);
    update.add(prof.update);
    decode.add(prof.decode);
  }
  if (!obs::trace_enabled()) return;
  obs::emit_span("dss.forward", start_ns, end_ns - start_ns);
  // The phases are measured independently and the loop interleaves them, so
  // the children are synthesized end-to-end from the forward's start: their
  // positions are schematic, their durations exact.
  struct Child {
    const char* name;
    double seconds;
  };
  const Child children[] = {{"dss.projection", prof.projection},
                            {"dss.gather", prof.gather},
                            {"dss.aggregate", prof.aggregate},
                            {"dss.update", prof.update},
                            {"dss.decode", prof.decode}};
  std::int64_t at = start_ns;
  for (const Child& c : children) {
    const auto dur = static_cast<std::int64_t>(c.seconds * 1e9);
    if (dur <= 0) continue;
    obs::emit_span(c.name, at, dur);
    at += dur;
  }
}

void build_edge_inputs(const GraphTopology& topo, const nn::Tensor& h,
                       bool flip_direction, nn::Tensor& x) {
  const int d = h.cols;
  const Index ne = topo.num_edges();
  x.resize(ne, 2 * d + 3);
  const float sign = flip_direction ? -1.0f : 1.0f;
  for (Index e = 0; e < ne; ++e) {
    float* row = x.row(e);
    const float* hr = h.row(topo.recv[e]);
    const float* hs = h.row(topo.send[e]);
    for (int k = 0; k < d; ++k) row[k] = hr[k];
    for (int k = 0; k < d; ++k) row[d + k] = hs[k];
    const float* a = &topo.attr[static_cast<std::size_t>(e) * 3];
    row[2 * d + 0] = sign * a[0];
    row[2 * d + 1] = sign * a[1];
    row[2 * d + 2] = a[2];
  }
}

void aggregate_scatter(const GraphTopology& topo, const nn::Tensor& m,
                       Index n, nn::Tensor& phi) {
  const int d = m.cols;
  phi.resize(n, d);
  phi.zero();
  for (Index e = 0; e < topo.num_edges(); ++e) {
    float* dst = phi.row(topo.recv[e]);
    const float* src = m.row(e);
    for (int k = 0; k < d; ++k) dst[k] += src[k];
  }
}

void aggregate_segmented(const GraphTopology& topo, const nn::Tensor& m,
                         nn::Tensor& phi) {
  const Index n = topo.n;
  DDMGNN_CHECK(topo.recv_ptr.size() == static_cast<std::size_t>(n) + 1,
               "aggregate_segmented: topology not finalized "
               "(call finalize_topology)");
  const int d = m.cols;
  phi.resize(n, d);
  parallel_for(
      n,
      [&](long j) {
        float* dst = phi.row(static_cast<int>(j));
        for (int k = 0; k < d; ++k) dst[k] = 0.0f;
        const la::Offset lo = topo.recv_ptr[j];
        const la::Offset hi = topo.recv_ptr[j + 1];
        for (la::Offset idx = lo; idx < hi; ++idx) {
          const float* src = m.row(topo.recv_order[idx]);
#pragma omp simd
          for (int k = 0; k < d; ++k) dst[k] += src[k];
        }
      },
      kNodeGrain);
}

void project_attr(const GraphTopology& topo, const float* w, int ldw,
                  int col0, const float* b, float sign, int out,
                  nn::Tensor& y) {
  const Index ne = topo.num_edges();
  y.resize(ne, out);
  if (ne == 0 || out == 0) return;
  // Pre-transpose the three attr weight columns with the direction sign
  // baked into the dx/dy rows, so the edge loop is three fused
  // broadcast-multiply-adds over unit-stride outputs.
  thread_local std::vector<float> wt;
  wt.resize(static_cast<std::size_t>(3) * out);
  for (int o = 0; o < out; ++o) {
    const float* wo = w + static_cast<std::size_t>(o) * ldw + col0;
    wt[o] = sign * wo[0];
    wt[out + o] = sign * wo[1];
    wt[2 * static_cast<std::size_t>(out) + o] = wo[2];
  }
  const float* w0 = wt.data();
  const float* w1 = w0 + out;
  const float* w2 = w1 + out;
  parallel_for(
      ne,
      [&](long e) {
        const float* a = &topo.attr[static_cast<std::size_t>(e) * 3];
        const float a0 = a[0];
        const float a1 = a[1];
        const float a2 = a[2];
        float* row = y.row(static_cast<int>(e));
#pragma omp simd
        for (int o = 0; o < out; ++o) {
          row[o] = b[o] + a0 * w0[o] + a1 * w1[o] + a2 * w2[o];
        }
      },
      kEdgeGrain);
}

void gather_edge_preact(const GraphTopology& topo, const nn::Tensor& p_recv,
                        const nn::Tensor& p_send, const nn::Tensor& attr_proj,
                        nn::Tensor& e_act) {
  const Index ne = topo.num_edges();
  const int out = p_recv.cols;
  DDMGNN_ASSERT(p_send.cols == out && attr_proj.cols == out &&
                attr_proj.rows == ne);
  e_act.resize(ne, out);
  parallel_for(
      ne,
      [&](long e) {
        const float* pr = p_recv.row(topo.recv[e]);
        const float* ps = p_send.row(topo.send[e]);
        const float* ap = attr_proj.row(static_cast<int>(e));
        float* row = e_act.row(static_cast<int>(e));
#pragma omp simd
        for (int o = 0; o < out; ++o) {
          const float v = pr[o] + ps[o] + ap[o];
          row[o] = v > 0.0f ? v : 0.0f;
        }
      },
      kEdgeGrain);
}

void fused_layer2_aggregate(const GraphTopology& topo,
                            const nn::Tensor& p_recv,
                            const nn::Tensor& p_send,
                            const nn::Tensor& attr_proj, const float* w2,
                            const float* b2, int out, nn::Tensor& phi) {
  const Index n = topo.n;
  DDMGNN_CHECK(topo.recv_ptr.size() == static_cast<std::size_t>(n) + 1,
               "fused_layer2_aggregate: topology not finalized "
               "(call finalize_topology)");
  const int hid = p_recv.cols;
  DDMGNN_ASSERT(p_send.cols == hid && attr_proj.cols == hid &&
                attr_proj.rows == topo.num_edges());
  phi.resize(n, out);
  if (n == 0 || out == 0) return;
  // Pre-transpose W₂ to [hid × out] once, outside the node loop, exactly as
  // fused_gemm would — the per-row GEMM below then matches it bitwise.
  std::vector<float> wt(static_cast<std::size_t>(hid) * out);
  for (int o = 0; o < out; ++o) {
    const float* wo = w2 + static_cast<std::size_t>(o) * hid;
    for (int k = 0; k < hid; ++k) {
      wt[static_cast<std::size_t>(k) * out + o] = wo[k];
    }
  }
  const float* wtp = wt.data();
  parallel_for(
      n,
      [&](long j) {
        thread_local nn::Tensor act;  // batch activations (≤ block × hid)
        thread_local nn::Tensor msg;  // batch messages (≤ block × out)
        float* dst = phi.row(static_cast<int>(j));
        for (int k = 0; k < out; ++k) dst[k] = 0.0f;
        const la::Offset lo = topo.recv_ptr[j];
        const la::Offset hi = topo.recv_ptr[j + 1];
        // Every edge in node j's segment has recv[e] == j.
        const float* pr = p_recv.row(static_cast<int>(j));
        for (la::Offset base = lo; base < hi; base += kFusedEdgeBlock) {
          const int nb = static_cast<int>(
              std::min<la::Offset>(kFusedEdgeBlock, hi - base));
          act.resize(nb, hid);
          msg.resize(nb, out);
          for (int r = 0; r < nb; ++r) {
            const Index e = topo.recv_order[base + r];
            const float* ps = p_send.row(topo.send[e]);
            const float* ap = attr_proj.row(e);
            float* row = act.row(r);
#pragma omp simd
            for (int o = 0; o < hid; ++o) {
              const float v = pr[o] + ps[o] + ap[o];
              row[o] = v > 0.0f ? v : 0.0f;
            }
          }
          nn::fused_gemm_rows(wtp, hid, out, b2, /*relu=*/false, act, msg, 0,
                              nb);
          for (int r = 0; r < nb; ++r) {
            const float* src = msg.row(r);
#pragma omp simd
            for (int k = 0; k < out; ++k) dst[k] += src[k];
          }
        }
      },
      kNodeGrain);
}

}  // namespace ddmgnn::gnn
