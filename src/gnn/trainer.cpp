#include "gnn/trainer.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "nn/adam.hpp"

namespace ddmgnn::gnn {

TrainReport train_dss(DssModel& model, const std::vector<GraphSample>& train,
                      const std::vector<GraphSample>& val,
                      const TrainConfig& cfg) {
  DDMGNN_CHECK(!train.empty(), "train_dss: empty training set");
  Timer timer;
  TrainReport report;
  const std::size_t np = model.num_params();
  nn::Adam adam(np, cfg.learning_rate);
  nn::ReduceLrOnPlateau scheduler(cfg.plateau_factor, cfg.plateau_patience);

  const int nthreads = num_threads();
  std::vector<std::vector<float>> thread_grads(
      nthreads, std::vector<float>(np, 0.0f));
  std::vector<DssWorkspace> thread_ws(nthreads);
  std::vector<double> thread_loss(nthreads, 0.0);
  std::vector<float> grads(np);

  std::vector<std::size_t> order(train.size());
  std::iota(order.begin(), order.end(), 0);
  Rng shuffle_rng(cfg.seed ^ 0x5851F42D4C957F2Dull);

  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    // Fisher-Yates shuffle for stochasticity with a deterministic seed.
    for (std::size_t i = order.size() - 1; i > 0; --i) {
      std::swap(order[i], order[shuffle_rng.uniform_index(i + 1)]);
    }
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < order.size();
         start += cfg.batch_size) {
      const std::size_t end =
          std::min(order.size(), start + static_cast<std::size_t>(cfg.batch_size));
      const long bsz = static_cast<long>(end - start);
      for (int t = 0; t < nthreads; ++t) {
        std::fill(thread_grads[t].begin(), thread_grads[t].end(), 0.0f);
        thread_loss[t] = 0.0;
      }
#pragma omp parallel for schedule(dynamic, 1) num_threads(nthreads)
      for (long i = 0; i < bsz; ++i) {
        const int tid = omp_get_thread_num();
        const GraphSample& sample = train[order[start + i]];
        thread_loss[tid] += model.loss_and_gradient(
            sample, thread_ws[tid], thread_grads[tid].data());
      }
      // Deterministic reduction: thread 0..T-1 in order.
      std::fill(grads.begin(), grads.end(), 0.0f);
      double batch_loss = 0.0;
      for (int t = 0; t < nthreads; ++t) {
        batch_loss += thread_loss[t];
        const auto& tg = thread_grads[t];
        for (std::size_t j = 0; j < np; ++j) grads[j] += tg[j];
      }
      const float inv_b = 1.0f / static_cast<float>(bsz);
      for (float& g : grads) g *= inv_b;
      nn::clip_global_norm(grads, cfg.clip_norm);
      adam.step(model.params(), grads);
      epoch_loss += batch_loss / static_cast<double>(bsz);
      ++batches;
      if (cfg.wall_clock_budget_s > 0.0 &&
          timer.seconds() > cfg.wall_clock_budget_s) {
        report.budget_exhausted = true;
        break;
      }
    }
    epoch_loss /= static_cast<double>(std::max<std::size_t>(1, batches));
    report.epoch_loss.push_back(epoch_loss);
    if (!val.empty()) {
      report.validation_loss.push_back(mean_residual_loss(model, val));
      scheduler.observe(report.validation_loss.back(), adam);
    } else {
      scheduler.observe(epoch_loss, adam);
    }
    ++report.epochs_run;
    if (cfg.verbose) {
      std::printf("  epoch %3d  train %.5f%s  lr %.2e  (%.1fs)\n", epoch,
                  epoch_loss,
                  val.empty() ? ""
                              : ("  val " +
                                 std::to_string(report.validation_loss.back()))
                                    .c_str(),
                  adam.learning_rate(), timer.seconds());
      std::fflush(stdout);
    }
    if (report.budget_exhausted) break;
  }
  report.seconds = timer.seconds();
  return report;
}

double mean_residual_loss(const DssModel& model,
                          const std::vector<GraphSample>& samples) {
  if (samples.empty()) return 0.0;
  const int nthreads = num_threads();
  std::vector<DssWorkspace> ws(nthreads);
  std::vector<double> acc(nthreads, 0.0);
#pragma omp parallel for schedule(dynamic, 1) num_threads(nthreads)
  for (long i = 0; i < static_cast<long>(samples.size()); ++i) {
    const int tid = omp_get_thread_num();
    acc[tid] += model.final_residual_loss(samples[i], ws[tid]);
  }
  double total = 0.0;
  for (const double a : acc) total += a;
  return total / static_cast<double>(samples.size());
}

}  // namespace ddmgnn::gnn
