// Evaluation metrics matching the paper's Table II: per-sample residual norm
// ‖A r̂ − c‖ (with ‖c‖ = 1 inputs this is the relative residual) and relative
// error ‖r̂ − v*‖/‖v*‖ against the exact solution v* computed with the direct
// sparse solver. Exact-solve factors are cached per topology.
#pragma once

#include <vector>

#include "gnn/dss_model.hpp"
#include "gnn/graph.hpp"

namespace ddmgnn::gnn {

struct DssMetrics {
  double residual_mean = 0.0;
  double residual_std = 0.0;
  double rel_error_mean = 0.0;
  double rel_error_std = 0.0;
  std::size_t num_samples = 0;
};

DssMetrics evaluate_dss(const DssModel& model,
                        const std::vector<GraphSample>& samples);

}  // namespace ddmgnn::gnn
