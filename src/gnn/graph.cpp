#include "gnn/graph.hpp"

#include <cmath>

#include "common/error.hpp"

namespace ddmgnn::gnn {

std::shared_ptr<GraphTopology> build_topology(
    CsrMatrix a_local, std::span<const mesh::Point2> coords,
    std::span<const std::uint8_t> dirichlet, const CsrMatrix* edge_pattern) {
  const Index n = a_local.rows();
  DDMGNN_CHECK(coords.size() == static_cast<std::size_t>(n) &&
                   dirichlet.size() == static_cast<std::size_t>(n),
               "build_topology: size mismatch");
  const CsrMatrix& pattern = edge_pattern ? *edge_pattern : a_local;
  DDMGNN_CHECK(pattern.rows() == n, "build_topology: pattern size mismatch");
  auto topo = std::make_shared<GraphTopology>();
  topo->n = n;
  topo->dirichlet.assign(dirichlet.begin(), dirichlet.end());
  const auto rp = pattern.row_ptr();
  const auto ci = pattern.col_idx();
  for (Index j = 0; j < n; ++j) {
    if (dirichlet[j]) continue;  // Dirichlet nodes receive no messages
    for (la::Offset e = rp[j]; e < rp[j + 1]; ++e) {
      const Index l = ci[e];
      if (l == j) continue;
      topo->recv.push_back(j);
      topo->send.push_back(l);
      const double dx = coords[l].x - coords[j].x;
      const double dy = coords[l].y - coords[j].y;
      topo->attr.push_back(static_cast<float>(dx));
      topo->attr.push_back(static_cast<float>(dy));
      topo->attr.push_back(static_cast<float>(std::hypot(dx, dy)));
    }
  }
  topo->a_local = std::move(a_local);
  finalize_topology(*topo);
  return topo;
}

void finalize_topology(GraphTopology& topo) {
  const Index n = topo.n;
  const Index ne = topo.num_edges();
  topo.recv_ptr.assign(static_cast<std::size_t>(n) + 1, 0);
  topo.recv_order.resize(ne);
  for (Index e = 0; e < ne; ++e) {
    DDMGNN_CHECK(topo.recv[e] >= 0 && topo.recv[e] < n,
                 "finalize_topology: receiver out of range");
    ++topo.recv_ptr[topo.recv[e] + 1];
  }
  for (Index j = 0; j < n; ++j) topo.recv_ptr[j + 1] += topo.recv_ptr[j];
  std::vector<la::Offset> cursor(topo.recv_ptr.begin(),
                                 topo.recv_ptr.end() - 1);
  // Increasing-e insertion makes the sort stable: each segment lists its
  // edges in original edge order, matching the serial scatter's
  // per-destination accumulation order exactly.
  for (Index e = 0; e < ne; ++e) {
    topo.recv_order[cursor[topo.recv[e]]++] = e;
  }
}

CsrMatrix adjacency_pattern(std::span<const la::Offset> adj_ptr,
                            std::span<const Index> adj) {
  const Index n = static_cast<Index>(adj_ptr.size()) - 1;
  std::vector<la::Offset> rp(adj_ptr.begin(), adj_ptr.end());
  std::vector<Index> ci(adj.begin(), adj.end());
  std::vector<double> vals(adj.size(), 1.0);
  return CsrMatrix(n, n, std::move(rp), std::move(ci), std::move(vals));
}

}  // namespace ddmgnn::gnn
