#include "gnn/graph.hpp"

#include <cmath>

#include "common/error.hpp"

namespace ddmgnn::gnn {

std::shared_ptr<GraphTopology> build_topology(
    CsrMatrix a_local, std::span<const mesh::Point2> coords,
    std::span<const std::uint8_t> dirichlet, const CsrMatrix* edge_pattern) {
  const Index n = a_local.rows();
  DDMGNN_CHECK(coords.size() == static_cast<std::size_t>(n) &&
                   dirichlet.size() == static_cast<std::size_t>(n),
               "build_topology: size mismatch");
  const CsrMatrix& pattern = edge_pattern ? *edge_pattern : a_local;
  DDMGNN_CHECK(pattern.rows() == n, "build_topology: pattern size mismatch");
  auto topo = std::make_shared<GraphTopology>();
  topo->n = n;
  topo->dirichlet.assign(dirichlet.begin(), dirichlet.end());
  const auto rp = pattern.row_ptr();
  const auto ci = pattern.col_idx();
  for (Index j = 0; j < n; ++j) {
    if (dirichlet[j]) continue;  // Dirichlet nodes receive no messages
    for (la::Offset e = rp[j]; e < rp[j + 1]; ++e) {
      const Index l = ci[e];
      if (l == j) continue;
      topo->recv.push_back(j);
      topo->send.push_back(l);
      const double dx = coords[l].x - coords[j].x;
      const double dy = coords[l].y - coords[j].y;
      topo->attr.push_back(static_cast<float>(dx));
      topo->attr.push_back(static_cast<float>(dy));
      topo->attr.push_back(static_cast<float>(std::hypot(dx, dy)));
    }
  }
  topo->a_local = std::move(a_local);
  return topo;
}

CsrMatrix adjacency_pattern(std::span<const la::Offset> adj_ptr,
                            std::span<const Index> adj) {
  const Index n = static_cast<Index>(adj_ptr.size()) - 1;
  std::vector<la::Offset> rp(adj_ptr.begin(), adj_ptr.end());
  std::vector<Index> ci(adj.begin(), adj.end());
  std::vector<double> vals(adj.size(), 1.0);
  return CsrMatrix(n, n, std::move(rp), std::move(ci), std::move(vals));
}

}  // namespace ddmgnn::gnn
