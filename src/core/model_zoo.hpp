// Model zoo: trains (or loads from the artifact cache) DSS models for the
// bench harnesses. Cache key = (k̄, d, hidden, flag, alpha, dataset scale), so
// Table II's 10 configurations train once and are reused by Fig. 6 and the
// solve benches.
#pragma once

#include <string>

#include "core/dataset.hpp"
#include "gnn/dss_model.hpp"
#include "gnn/trainer.hpp"

namespace ddmgnn::core {

struct ZooSpec {
  gnn::DssConfig model;
  DatasetConfig dataset;
  gnn::TrainConfig training;
  std::string tag = "default";  // distinguishes dataset scales in the cache
};

/// Default spec for the given (k̄, d) at the current bench scale
/// (DDMGNN_BENCH_SCALE): smoke = tiny-and-fast, default = minutes,
/// paper = the full §IV-B recipe (hours on CPU).
ZooSpec default_spec(int iterations, int latent);

/// Cache path for a spec inside the artifact dir.
std::string model_cache_path(const ZooSpec& spec);

/// Load the cached model or train + cache it. `dataset` may be shared
/// between calls to avoid regenerating; pass nullptr to generate internally.
gnn::DssModel get_or_train_model(const ZooSpec& spec,
                                 const DssDataset* dataset = nullptr,
                                 gnn::TrainReport* report = nullptr);

}  // namespace ddmgnn::core
