// Operator-keyed cache of prepared SolverSessions. Services that re-solve
// families of problems (parameter sweeps, repeated time-stepping campaigns,
// per-tenant operators) hit the same operators again and again — a cache hit
// returns the already-prepared session and skips the entire setup phase
// (partitioning, factorizations, DSS graph construction, coarse space),
// which bench_setup_amortization shows is many solves' worth of work.
//
// Keying: a 64-bit FNV-1a fingerprint over the operator's CSR arrays, the
// extra algebraic structure (dirichlet mask, coordinates) and every
// HybridConfig field that influences the prepared state or solve behavior.
// Fingerprint matches are verified by exact comparison before a hit is
// declared, so hash collisions degrade to misses, never to wrong sessions.
//
// Ownership: each entry owns a private copy of its operator (and mesh /
// problem for the mesh-keyed overload), so cached sessions never dangle when
// the caller's matrix goes out of scope. Returned shared_ptrs alias the
// entry — an evicted-but-still-held session stays fully usable. The one
// reference an entry does NOT own is cfg.model: trained models are large and
// shared, so GNN-preconditioned entries require the model to outlive the
// cache (the model pointer is part of the fingerprint).
//
// Sharing contract: every hit hands out the SAME session object, mutably —
// deliberately, so solve-time toggles (set_method, set_block_multi_rhs) work
// on cached sessions for A/B comparisons. Those toggles affect every holder,
// and calling setup() on a cache-returned session is forbidden: it would
// re-key the shared prepared state out from under the entry's stored
// fingerprint (and can leave the session pointing at a caller-owned matrix
// the cache does not keep alive). Re-key through the cache instead —
// get_or_setup with the new operator/config. Single-threaded by design.
//
// Eviction: least-recently-used by a byte budget, measured with
// SolverSession::memory_bytes() plus the entry's owned copies. A single
// entry larger than the whole budget is admitted (the alternative — refusing
// to cache — silently re-pays setup forever) and becomes the first eviction
// candidate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <vector>

#include "core/solver_session.hpp"

namespace ddmgnn::core {

class SessionCache {
 public:
  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t evictions = 0;
  };

  explicit SessionCache(std::size_t byte_budget) : byte_budget_(byte_budget) {}

  /// Mesh-keyed lookup: returns the prepared session for (prob, cfg),
  /// running SolverSession::setup(mesh, prob, cfg) on a miss.
  std::shared_ptr<SolverSession> get_or_setup(const mesh::Mesh& m,
                                              const fem::PoissonProblem& prob,
                                              const HybridConfig& cfg);

  /// Matrix-keyed lookup for the algebraic path: returns the prepared
  /// session for (A, cfg, opts), running setup(A, cfg, opts) on a miss.
  std::shared_ptr<SolverSession> get_or_setup(
      const la::CsrMatrix& A, const HybridConfig& cfg,
      const AlgebraicOptions& opts = {});

  const Stats& stats() const { return stats_; }
  std::size_t size() const { return entries_.size(); }
  std::size_t size_bytes() const { return bytes_; }
  std::size_t byte_budget() const { return byte_budget_; }
  void clear();

 private:
  struct Entry;

  std::shared_ptr<SolverSession> lookup_or_insert(
      std::uint64_t fingerprint, const la::CsrMatrix& A,
      const HybridConfig& cfg, const AlgebraicOptions& opts,
      const mesh::Mesh* m);
  void evict_over_budget();

  std::size_t byte_budget_;
  std::size_t bytes_ = 0;
  Stats stats_;
  /// MRU-first list; linear fingerprint scan (caches hold a handful of
  /// operators, and a hit's exact-verify already touches the arrays).
  std::list<std::shared_ptr<Entry>> entries_;
};

}  // namespace ddmgnn::core
