// Operator-keyed cache of prepared SolverSessions. Services that re-solve
// families of problems (parameter sweeps, repeated time-stepping campaigns,
// per-tenant operators) hit the same operators again and again — a cache hit
// returns the already-prepared session and skips the entire setup phase
// (partitioning, factorizations, DSS graph construction, coarse space),
// which bench_setup_amortization shows is many solves' worth of work.
//
// Keying: a 64-bit FNV-1a fingerprint over the operator's CSR arrays, the
// extra algebraic structure (dirichlet mask, coordinates) and every
// HybridConfig field that influences the prepared state or solve behavior.
// Fingerprint matches are verified by exact comparison before a hit is
// declared, so hash collisions degrade to misses, never to wrong sessions.
//
// Ownership: each entry owns a private copy of its operator (and mesh /
// problem for the mesh-keyed overload), so cached sessions never dangle when
// the caller's matrix goes out of scope. Returned shared_ptrs alias the
// entry — an evicted-but-still-held session stays fully usable, which is
// also what makes eviction safe under concurrency: the cache can only drop
// its own reference, never free a session another thread is solving on. The
// one reference an entry does NOT own is cfg.model: trained models are large
// and shared, so GNN-preconditioned entries require the model to outlive the
// cache (the model pointer is part of the fingerprint).
//
// Concurrency: get_or_setup is safe from any number of threads. The key
// index is sharded by fingerprint (one mutex per shard, held only for scans
// and list surgery — never across a setup or a solve), and setup stampedes
// are collapsed per fingerprint: the first caller runs the one setup inside
// the entry's std::call_once while every concurrent caller for the same key
// blocks on that flag and then shares the prepared session — N threads
// racing for one cold operator cost exactly one setup (1 miss + N−1 hits).
// Stats counters are atomics; stats() returns a snapshot. Solving on the
// returned sessions concurrently is safe because prepared sessions are
// immutable at solve time (see the Preconditioner apply-workspace contract);
// the solve-time *toggles* below are the deliberate exception.
//
// Sharing contract: every hit hands out the SAME session object, mutably —
// deliberately, so solve-time toggles (set_method, set_block_multi_rhs) work
// on cached sessions for A/B comparisons. Those toggles affect every holder
// (flip them only while no other client is mid-solve), and calling setup()
// on a cache-returned session throws ContractError — it would re-key the
// shared prepared state out from under the entry's stored fingerprint.
// Re-key through the cache instead — get_or_setup with the new
// operator/config.
//
// Eviction: least-recently-used by a byte budget, measured with
// SolverSession::memory_bytes() plus the entry's owned copies and
// re-measured on every touch — state a session builds lazily after setup
// (the GNN block path's merged-shard plans) is folded into the budget at
// the next hit instead of escaping it. Recency is a global atomic clock, so
// LRU order spans all shards. A single entry larger than the whole budget
// is admitted (the alternative — refusing to cache — silently re-pays setup
// forever) and becomes the first eviction candidate.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/solver_session.hpp"

namespace ddmgnn::core {

class SessionCache {
 public:
  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t evictions = 0;
  };

  explicit SessionCache(std::size_t byte_budget) : byte_budget_(byte_budget) {}

  /// Mesh-keyed lookup: returns the prepared session for (prob, cfg),
  /// running SolverSession::setup(mesh, prob, cfg) on a miss.
  std::shared_ptr<SolverSession> get_or_setup(const mesh::Mesh& m,
                                              const fem::PoissonProblem& prob,
                                              const HybridConfig& cfg);

  /// Matrix-keyed lookup for the algebraic path: returns the prepared
  /// session for (A, cfg, opts), running setup(A, cfg, opts) on a miss.
  std::shared_ptr<SolverSession> get_or_setup(
      const la::CsrMatrix& A, const HybridConfig& cfg,
      const AlgebraicOptions& opts = {});

  /// Counter snapshot (consistent enough for monitoring; each counter is
  /// individually exact).
  Stats stats() const;
  std::size_t size() const;
  std::size_t size_bytes() const {
    return bytes_.load(std::memory_order_relaxed);
  }
  std::size_t byte_budget() const { return byte_budget_; }
  /// Drop every entry (held sessions stay alive via their aliased
  /// shared_ptrs). Not counted as evictions.
  void clear();

 private:
  struct Entry;
  /// Key-index shards: fingerprint → shard, one mutex per shard so
  /// unrelated operators never contend. Entries within a shard are scanned
  /// linearly (caches hold a handful of operators, and a hit's exact-verify
  /// already touches the arrays).
  struct Shard {
    mutable std::mutex mutex;
    std::vector<std::shared_ptr<Entry>> entries;
  };
  static constexpr std::size_t kNumShards = 8;

  std::shared_ptr<SolverSession> lookup_or_insert(
      std::uint64_t fingerprint, const la::CsrMatrix& A,
      const HybridConfig& cfg, const AlgebraicOptions& opts,
      const mesh::Mesh* m);
  void run_setup(Entry& e);
  void evict_over_budget();

  std::size_t byte_budget_;
  std::atomic<std::size_t> bytes_{0};
  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> misses_{0};
  std::atomic<std::size_t> evictions_{0};
  /// Global recency clock: every touch stamps the entry, eviction removes
  /// the smallest stamp across all shards.
  std::atomic<std::uint64_t> clock_{0};
  /// Serializes eviction passes (insertions/touches stay concurrent).
  std::mutex evict_mutex_;
  std::array<Shard, kNumShards> shards_;
};

}  // namespace ddmgnn::core
