#include "core/model_zoo.hpp"

#include <cstdio>
#include <filesystem>

#include "common/options.hpp"
#include "gnn/model_io.hpp"

namespace ddmgnn::core {

ZooSpec default_spec(int iterations, int latent) {
  ZooSpec spec;
  spec.model.iterations = iterations;
  spec.model.latent = latent;
  spec.model.hidden = 10;
  spec.model.alpha = 0.05f;
  spec.model.dirichlet_flag = true;

  switch (bench_scale()) {
    case BenchScale::kSmoke:
      spec.tag = "smoke";
      spec.dataset.num_global_problems = 2;
      spec.dataset.mesh_target_nodes = 900;
      spec.dataset.subdomain_target_nodes = 220;
      spec.training.epochs = 30;
      spec.training.batch_size = 32;
      spec.training.learning_rate = 1e-2;
      spec.training.clip_norm = 0.1;
      spec.training.wall_clock_budget_s = train_budget_seconds(45.0);
      break;
    case BenchScale::kPaper:
      spec.tag = "paper";
      spec.dataset.num_global_problems = 500;
      spec.dataset.mesh_target_nodes = 7000;
      spec.dataset.subdomain_target_nodes = 1000;
      spec.training.epochs = 400;
      spec.training.batch_size = 100;
      spec.training.wall_clock_budget_s = train_budget_seconds(0.0);
      // The strict paper architecture (no flag channel, α = 1e-3) for exact
      // weight-count parity needs the full training budget to pay off.
      spec.model.alpha = 1e-3f;
      spec.model.dirichlet_flag = false;
      break;
    default:
      spec.tag = "default";
      spec.dataset.num_global_problems = 6;
      spec.dataset.mesh_target_nodes = 2200;
      spec.dataset.subdomain_target_nodes = 350;
      spec.training.epochs = 220;
      spec.training.batch_size = 64;
      spec.training.learning_rate = 1e-2;  // paper's lr
      spec.training.clip_norm = 0.1;  // paper uses 1e-2; 0.1 trains faster at
                                      // this reduced epoch budget
      spec.training.plateau_patience = 12;
      spec.training.wall_clock_budget_s = train_budget_seconds(420.0);
      break;
  }
  spec.training.seed = 97;
  spec.dataset.seed = 4242;
  return spec;
}

std::string model_cache_path(const ZooSpec& spec) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "dss_k%d_d%d_h%d_f%d_a%g_%s.bin",
                spec.model.iterations, spec.model.latent, spec.model.hidden,
                spec.model.dirichlet_flag ? 1 : 0,
                static_cast<double>(spec.model.alpha), spec.tag.c_str());
  return artifact_dir() + "/" + buf;
}

gnn::DssModel get_or_train_model(const ZooSpec& spec,
                                 const DssDataset* dataset,
                                 gnn::TrainReport* report) {
  const std::string path = model_cache_path(spec);
  if (auto cached = gnn::load_model(path)) {
    return std::move(*cached);
  }
  DssDataset local;
  if (dataset == nullptr) {
    local = generate_dataset(spec.dataset);
    dataset = &local;
  }
  gnn::DssModel model(spec.model, spec.training.seed);
  gnn::TrainReport r =
      gnn::train_dss(model, dataset->train, dataset->validation, spec.training);
  if (report != nullptr) *report = r;
  std::error_code ec;
  std::filesystem::create_directories(artifact_dir(), ec);
  if (!ec) {
    gnn::save_model(model, path);
  }
  return model;
}

}  // namespace ddmgnn::core
