#include "core/gnn_subdomain_solver.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "la/vector_ops.hpp"

namespace ddmgnn::core {

GnnSubdomainSolver::GnnSubdomainSolver(const gnn::DssModel& model,
                                       const mesh::Mesh& m,
                                       std::span<const std::uint8_t> dirichlet,
                                       Options options)
    : GnnSubdomainSolver(
          model, std::vector<mesh::Point2>(m.points().begin(), m.points().end()),
          std::vector<std::uint8_t>(dirichlet.begin(), dirichlet.end()),
          gnn::adjacency_pattern(m.adj_ptr(), m.adj()), options) {}

GnnSubdomainSolver::GnnSubdomainSolver(const gnn::DssModel& model,
                                       std::vector<mesh::Point2> coords,
                                       std::vector<std::uint8_t> dirichlet,
                                       la::CsrMatrix message_pattern,
                                       Options options)
    : model_(&model),
      coords_(std::move(coords)),
      dirichlet_(std::move(dirichlet)),
      mesh_pattern_(std::move(message_pattern)),
      options_(options) {
  DDMGNN_CHECK(coords_.size() == dirichlet_.size() &&
                   mesh_pattern_.rows() == static_cast<la::Index>(coords_.size()),
               "GnnSubdomainSolver: geometry/pattern size mismatch");
}

void GnnSubdomainSolver::setup(std::vector<la::CsrMatrix> local_matrices,
                               const partition::Decomposition& dec) {
  DDMGNN_CHECK(dec.num_nodes() == static_cast<la::Index>(coords_.size()),
               "GnnSubdomainSolver: geometry size mismatch");
  shards_.clear();
  shard_cols_ = -1;
  const auto k = static_cast<la::Index>(local_matrices.size());
  topologies_.resize(k);
  edge_caches_.assign(k, nullptr);
  // Edge geometry never changes across iterations, applies, or solves, so
  // the attr projections of every message-passing block are paid once here.
  const bool precompute = model_->config().fast_inference;
  parallel_for_dynamic(k, [&](long i) {
    const auto& nodes = dec.subdomains[i];
    std::vector<mesh::Point2> local_coords(nodes.size());
    std::vector<std::uint8_t> local_dirichlet(nodes.size());
    for (std::size_t l = 0; l < nodes.size(); ++l) {
      local_coords[l] = coords_[nodes[l]];
      local_dirichlet[l] = dirichlet_[nodes[l]];
    }
    const la::CsrMatrix local_pattern =
        mesh_pattern_.principal_submatrix(nodes);
    topologies_[i] = gnn::build_topology(std::move(local_matrices[i]),
                                         local_coords, local_dirichlet,
                                         &local_pattern);
    if (precompute) {
      edge_caches_[i] = std::make_shared<const gnn::DssEdgeCache>(
          model_->precompute_edges(*topologies_[i]));
    }
  });
}

void GnnSubdomainSolver::solve_all(
    const std::vector<std::vector<double>>& r_loc,
    std::vector<std::vector<double>>& z_loc) const {
  DDMGNN_CHECK(r_loc.size() == topologies_.size(),
               "GnnSubdomainSolver: batch size mismatch");
  const int nthreads = num_threads();
  // Per-thread workspaces persist across applications (allocation-free in
  // steady state) — the paper's Nb-batched inference maps to this thread pool.
  static thread_local gnn::DssWorkspace tl_ws;
  (void)nthreads;
#pragma omp parallel for schedule(dynamic, 1) num_threads(num_threads())
  for (long i = 0; i < static_cast<long>(r_loc.size()); ++i) {
    const auto& topo = topologies_[i];
    const auto& r = r_loc[i];
    auto& z = z_loc[i];
    const std::size_t n = r.size();
    z.assign(n, 0.0);
    gnn::GraphSample sample;
    sample.topo = topo;
    sample.rhs.resize(n);
    std::vector<float> out;
    std::vector<double> res(r.begin(), r.end());  // current local residual
    for (int pass = 0; pass <= options_.refinement_steps; ++pass) {
      const double norm = la::norm2(res);
      if (norm <= options_.zero_threshold) break;
      const double inv = options_.normalize_input ? 1.0 / norm : 1.0;
      for (std::size_t j = 0; j < n; ++j) sample.rhs[j] = res[j] * inv;
      model_->forward(sample, edge_caches_[i].get(), tl_ws, out);
      const double scale = options_.normalize_input ? norm : 1.0;
      for (std::size_t j = 0; j < n; ++j) {
        z[j] += scale * static_cast<double>(out[j]);
      }
      if (pass == options_.refinement_steps) break;
      // res = r − A_i z for the next correction pass.
      topo->a_local.multiply(z, res);
      for (std::size_t j = 0; j < n; ++j) res[j] = r[j] - res[j];
    }
  }
}

namespace {

/// Merged-node budget per inference shard. Bounds the forward workspace (the
/// per-edge tensors of all k̄ blocks) while still fusing several local
/// problems into one DSS call; shard count never drops below the thread
/// count, so the batched path keeps every core busy.
constexpr la::Index kShardNodeBudget = 4096;

}  // namespace

void GnnSubdomainSolver::build_shards(la::Index s) const {
  const auto k = static_cast<la::Index>(topologies_.size());
  long total_nodes = 0;
  for (const auto& t : topologies_) total_nodes += t->n;
  total_nodes *= s;
  const long ntasks = static_cast<long>(k) * s;
  const long by_budget = (total_nodes + kShardNodeBudget - 1) /
                         kShardNodeBudget;
  const long nshards =
      std::max<long>(1, std::min(ntasks,
                                 std::max<long>(by_budget, num_threads())));
  const long node_target = (total_nodes + nshards - 1) / nshards;

  shards_.clear();
  shards_.reserve(nshards);
  // Column-major task order so one shard holds whole subdomain groups of a
  // column before moving on; packing closes a shard at the node target.
  std::vector<ShardTask> tasks;
  long shard_nodes = 0;
  auto flush = [&]() {
    if (tasks.empty()) return;
    Shard shard;
    shard.tasks = std::move(tasks);
    std::vector<gnn::GraphSample> samples(shard.tasks.size());
    for (std::size_t t = 0; t < shard.tasks.size(); ++t) {
      samples[t].topo = topologies_[shard.tasks[t].part];
      samples[t].rhs.assign(samples[t].topo->n, 0.0);
      shard.tasks[t].slot = static_cast<la::Index>(t);
    }
    shard.batch = gnn::batch_samples(samples);
    if (model_->config().fast_inference) {
      shard.cache = std::make_shared<const gnn::DssEdgeCache>(
          model_->precompute_edges(*shard.batch.merged.topo));
    }
    shards_.push_back(std::move(shard));
    tasks.clear();
    shard_nodes = 0;
  };
  for (la::Index j = 0; j < s; ++j) {
    for (la::Index i = 0; i < k; ++i) {
      if (shard_nodes > 0 && shard_nodes + topologies_[i]->n > node_target) {
        flush();
      }
      tasks.push_back(ShardTask{i, j, 0});
      shard_nodes += topologies_[i]->n;
    }
  }
  flush();
  shard_cols_ = s;
}

void GnnSubdomainSolver::solve_all_block(
    const std::vector<la::MultiVector>& r_loc,
    std::vector<la::MultiVector>& z_loc) const {
  DDMGNN_CHECK(r_loc.size() == topologies_.size(),
               "GnnSubdomainSolver: block batch size mismatch");
  if (r_loc.empty()) return;
  const la::Index s = r_loc[0].cols();
  if (s != shard_cols_) build_shards(s);
  for (auto& z : z_loc) z.fill(0.0);

#pragma omp parallel for schedule(dynamic, 1) num_threads(num_threads())
  for (long sh = 0; sh < static_cast<long>(shards_.size()); ++sh) {
    Shard& shard = shards_[sh];
    static thread_local gnn::DssWorkspace tl_ws;
    std::vector<float> out;
    const std::size_t nt = shard.tasks.size();
    std::vector<double> scale(nt, 0.0);
    std::vector<std::vector<double>> res(options_.refinement_steps > 0 ? nt
                                                                       : 0);
    auto& rhs = shard.batch.merged.rhs;
    for (int pass = 0; pass <= options_.refinement_steps; ++pass) {
      for (std::size_t t = 0; t < nt; ++t) {
        const ShardTask& task = shard.tasks[t];
        const la::Index n = topologies_[task.part]->n;
        const la::Index off = shard.batch.offsets[task.slot];
        const std::span<const double> cur =
            pass == 0 ? r_loc[task.part].col(task.column)
                      : std::span<const double>(res[t]);
        const double norm = la::norm2(cur);
        if (norm <= options_.zero_threshold) {
          // Below threshold the scalar path stops refining this task; a zero
          // rhs slice (and zero scale) contributes exactly nothing here.
          scale[t] = 0.0;
          std::fill(rhs.begin() + off, rhs.begin() + off + n, 0.0);
          continue;
        }
        const double inv = options_.normalize_input ? 1.0 / norm : 1.0;
        for (la::Index l = 0; l < n; ++l) rhs[off + l] = cur[l] * inv;
        scale[t] = options_.normalize_input ? norm : 1.0;
      }
      model_->forward(shard.batch.merged, shard.cache.get(), tl_ws, out);
      for (std::size_t t = 0; t < nt; ++t) {
        const ShardTask& task = shard.tasks[t];
        const la::Index n = topologies_[task.part]->n;
        const la::Index off = shard.batch.offsets[task.slot];
        auto z = z_loc[task.part].col(task.column);
        for (la::Index l = 0; l < n; ++l) {
          z[l] += scale[t] * static_cast<double>(out[off + l]);
        }
      }
      if (pass == options_.refinement_steps) break;
      for (std::size_t t = 0; t < nt; ++t) {
        const ShardTask& task = shard.tasks[t];
        const auto& topo = topologies_[task.part];
        res[t].resize(topo->n);
        topo->a_local.multiply(z_loc[task.part].col(task.column), res[t]);
        const auto r = r_loc[task.part].col(task.column);
        for (la::Index l = 0; l < topo->n; ++l) res[t][l] = r[l] - res[t][l];
      }
    }
  }
}

}  // namespace ddmgnn::core
