#include "core/gnn_subdomain_solver.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "la/vector_ops.hpp"

namespace ddmgnn::core {

GnnSubdomainSolver::GnnSubdomainSolver(const gnn::DssModel& model,
                                       const mesh::Mesh& m,
                                       std::span<const std::uint8_t> dirichlet,
                                       Options options)
    : model_(&model),
      coords_(m.points().begin(), m.points().end()),
      dirichlet_(dirichlet.begin(), dirichlet.end()),
      mesh_pattern_(gnn::adjacency_pattern(m.adj_ptr(), m.adj())),
      options_(options) {}

void GnnSubdomainSolver::setup(std::vector<la::CsrMatrix> local_matrices,
                               const partition::Decomposition& dec) {
  DDMGNN_CHECK(dec.num_nodes() == static_cast<la::Index>(coords_.size()),
               "GnnSubdomainSolver: geometry size mismatch");
  const auto k = static_cast<la::Index>(local_matrices.size());
  topologies_.resize(k);
  parallel_for_dynamic(k, [&](long i) {
    const auto& nodes = dec.subdomains[i];
    std::vector<mesh::Point2> local_coords(nodes.size());
    std::vector<std::uint8_t> local_dirichlet(nodes.size());
    for (std::size_t l = 0; l < nodes.size(); ++l) {
      local_coords[l] = coords_[nodes[l]];
      local_dirichlet[l] = dirichlet_[nodes[l]];
    }
    const la::CsrMatrix local_pattern =
        mesh_pattern_.principal_submatrix(nodes);
    topologies_[i] = gnn::build_topology(std::move(local_matrices[i]),
                                         local_coords, local_dirichlet,
                                         &local_pattern);
  });
}

void GnnSubdomainSolver::solve_all(
    const std::vector<std::vector<double>>& r_loc,
    std::vector<std::vector<double>>& z_loc) const {
  DDMGNN_CHECK(r_loc.size() == topologies_.size(),
               "GnnSubdomainSolver: batch size mismatch");
  const int nthreads = num_threads();
  // Per-thread workspaces persist across applications (allocation-free in
  // steady state) — the paper's Nb-batched inference maps to this thread pool.
  static thread_local gnn::DssWorkspace tl_ws;
  (void)nthreads;
#pragma omp parallel for schedule(dynamic, 1) num_threads(num_threads())
  for (long i = 0; i < static_cast<long>(r_loc.size()); ++i) {
    const auto& topo = topologies_[i];
    const auto& r = r_loc[i];
    auto& z = z_loc[i];
    const std::size_t n = r.size();
    z.assign(n, 0.0);
    gnn::GraphSample sample;
    sample.topo = topo;
    sample.rhs.resize(n);
    std::vector<float> out;
    std::vector<double> res(r.begin(), r.end());  // current local residual
    for (int pass = 0; pass <= options_.refinement_steps; ++pass) {
      const double norm = la::norm2(res);
      if (norm <= options_.zero_threshold) break;
      const double inv = options_.normalize_input ? 1.0 / norm : 1.0;
      for (std::size_t j = 0; j < n; ++j) sample.rhs[j] = res[j] * inv;
      model_->forward(sample, tl_ws, out);
      const double scale = options_.normalize_input ? norm : 1.0;
      for (std::size_t j = 0; j < n; ++j) {
        z[j] += scale * static_cast<double>(out[j]);
      }
      if (pass == options_.refinement_steps) break;
      // res = r − A_i z for the next correction pass.
      topo->a_local.multiply(z, res);
      for (std::size_t j = 0; j < n; ++j) res[j] = r[j] - res[j];
    }
  }
}

}  // namespace ddmgnn::core
