#include "core/gnn_subdomain_solver.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "gnn/dss_kernels.hpp"
#include "la/vector_ops.hpp"
#include "obs/flags.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ddmgnn::core {

namespace {

/// One timed + traced DSS inference. The phase profile is only collected
/// while timing is on; the disabled path is the bare virtual call.
inline void timed_forward(const gnn::DssModel& model,
                          const gnn::GraphSample& sample,
                          const gnn::DssEdgeCache* cache,
                          gnn::DssWorkspace& dss, std::vector<float>& out) {
  if (!obs::timing_enabled()) {
    model.forward(sample, cache, dss, out);
    return;
  }
  gnn::DssPhaseProfile prof;
  const std::int64_t t0 = obs::TraceRecorder::instance().now_ns();
  model.forward(sample, cache, dss, out, &prof);
  gnn::record_phase_profile(prof, t0, obs::TraceRecorder::instance().now_ns());
}

/// Per-caller inference scratch. One Lane per OpenMP thread of the caller's
/// solve: the lanes are touched only inside this caller's parallel region,
/// so two clients hammering the same solver never share a DssWorkspace (the
/// former `static thread_local` did — across ALL solver instances — and was
/// both a data race on concurrent sessions and an unaccounted leak).
struct GnnWorkspace final : precond::SubdomainSolver::Workspace {
  struct Lane {
    gnn::DssWorkspace dss;
    gnn::GraphSample sample;          // topo rebound per shard, rhs owned here
    std::vector<float> out;
    std::vector<double> scale;
    std::vector<std::vector<double>> res;
  };
  std::vector<Lane> lanes;

  Lane& lane(int thread) {
    return lanes[static_cast<std::size_t>(thread)];
  }
  void ensure_lanes(int count) {
    if (static_cast<int>(lanes.size()) < count) {
      lanes.resize(static_cast<std::size_t>(count));
    }
  }
};

GnnWorkspace& workspace_of(precond::SubdomainSolver::Workspace* ws) {
  auto* gws = dynamic_cast<GnnWorkspace*>(ws);
  DDMGNN_CHECK(gws != nullptr,
               "GnnSubdomainSolver: solve needs a workspace from this "
               "solver's make_workspace()");
  return *gws;
}

/// Merged-node budget per inference shard. Bounds the forward workspace (the
/// per-edge tensors of all k̄ blocks) while still fusing several local
/// problems into one DSS call; shard count never drops below the thread
/// count, so the batched path keeps every core busy.
constexpr la::Index kShardNodeBudget = 4096;

std::size_t topology_bytes(const gnn::GraphTopology& t) {
  return static_cast<std::size_t>(t.num_edges()) *
             (2 * sizeof(la::Index) + 3 * sizeof(float) + sizeof(la::Index)) +
         static_cast<std::size_t>(t.n + 1) * sizeof(la::Offset) +
         static_cast<std::size_t>(t.n) * sizeof(std::uint8_t) +
         static_cast<std::size_t>(t.a_local.nnz()) *
             (sizeof(la::Index) + sizeof(double)) +
         static_cast<std::size_t>(t.a_local.rows() + 1) * sizeof(la::Offset);
}

}  // namespace

GnnSubdomainSolver::GnnSubdomainSolver(const gnn::DssModel& model,
                                       const mesh::Mesh& m,
                                       std::span<const std::uint8_t> dirichlet,
                                       Options options)
    : GnnSubdomainSolver(
          model, std::vector<mesh::Point2>(m.points().begin(), m.points().end()),
          std::vector<std::uint8_t>(dirichlet.begin(), dirichlet.end()),
          gnn::adjacency_pattern(m.adj_ptr(), m.adj()), options) {}

GnnSubdomainSolver::GnnSubdomainSolver(const gnn::DssModel& model,
                                       std::vector<mesh::Point2> coords,
                                       std::vector<std::uint8_t> dirichlet,
                                       la::CsrMatrix message_pattern,
                                       Options options)
    : model_(&model),
      coords_(std::move(coords)),
      dirichlet_(std::move(dirichlet)),
      mesh_pattern_(std::move(message_pattern)),
      options_(options) {
  DDMGNN_CHECK(coords_.size() == dirichlet_.size() &&
                   mesh_pattern_.rows() == static_cast<la::Index>(coords_.size()),
               "GnnSubdomainSolver: geometry/pattern size mismatch");
}

void GnnSubdomainSolver::setup(std::vector<la::CsrMatrix> local_matrices,
                               const partition::Decomposition& dec) {
  DDMGNN_CHECK(dec.num_nodes() == static_cast<la::Index>(coords_.size()),
               "GnnSubdomainSolver: geometry size mismatch");
  {
    std::unique_lock lock(plans_mutex_);
    plans_.clear();
  }
  const auto k = static_cast<la::Index>(local_matrices.size());
  topologies_.resize(k);
  edge_caches_.assign(k, nullptr);
  // Edge geometry never changes across iterations, applies, or solves, so
  // the attr projections of every message-passing block are paid once here.
  const bool precompute = model_->config().fast_inference;
  obs::Span setup_span("gnn.setup");
  const bool timing = obs::timing_enabled();
  std::atomic<double> edge_cache_seconds{0.0};
  parallel_for_dynamic(k, [&](long i) {
    const auto& nodes = dec.subdomains[i];
    std::vector<mesh::Point2> local_coords(nodes.size());
    std::vector<std::uint8_t> local_dirichlet(nodes.size());
    for (std::size_t l = 0; l < nodes.size(); ++l) {
      local_coords[l] = coords_[nodes[l]];
      local_dirichlet[l] = dirichlet_[nodes[l]];
    }
    const la::CsrMatrix local_pattern =
        mesh_pattern_.principal_submatrix(nodes);
    topologies_[i] = gnn::build_topology(std::move(local_matrices[i]),
                                         local_coords, local_dirichlet,
                                         &local_pattern);
    if (precompute) {
      Timer cache_timer;
      edge_caches_[i] = std::make_shared<const gnn::DssEdgeCache>(
          model_->precompute_edges(*topologies_[i]));
      if (timing) {
        edge_cache_seconds.fetch_add(cache_timer.seconds(),
                                     std::memory_order_relaxed);
      }
    }
  });
  if (timing && precompute) {
    // CPU seconds across the parallel precompute — can exceed the phase's
    // wall time, which is exactly the signal (edge-cache build parallelism).
    static obs::Gauge& g =
        obs::Registry::instance().gauge("setup.dss_edge_cache_seconds");
    if (obs::metrics_enabled()) g.add(edge_cache_seconds.load());
    setup_span.arg("edge_cache_cpu_seconds", edge_cache_seconds.load());
  }

  refine_steps_.clear();
  fallback_.clear();
  fallback_count_ = 0;
  if (!options_.adaptive_refinement) return;

  // Refine-until-contractive: probe each subdomain with deterministic unit
  // residuals and keep the smallest pass count whose measured contraction
  // ‖r − A_i z‖/‖r‖ meets the target; subdomains the model cannot contract
  // within the pass budget get an exact Cholesky fallback. With
  // cost_aware_fallback, contractive subdomains additionally get the exact
  // solve when a flop model (deterministic — no timing, so the chosen
  // configuration is reproducible across runs and machines) predicts the
  // refined GNN apply to cost more than fallback_cost_margin × the envelope
  // sweeps.
  refine_steps_.assign(k, std::max(0, options_.refinement_steps));
  fallback_.resize(k);
  const int max_steps =
      std::max(options_.refinement_steps, options_.max_refinement_steps);
  const int probes = std::max(1, options_.probes);
  const double target = options_.contraction_target;
  const gnn::DssConfig& mc = model_->config();
  std::atomic<la::Index> fallbacks{0};
  parallel_for_dynamic(k, [&](long i) {
    const auto& topo = topologies_[i];
    const auto n = static_cast<std::size_t>(topo->n);
    gnn::DssWorkspace dss;  // setup-time scratch, dropped after probing
    gnn::GraphSample sample;
    sample.topo = topo;
    sample.rhs.resize(n);
    std::vector<float> out;
    std::vector<double> r(n), z(n), res(n);
    int needed = -1;  // pass count reaching the target, max over probes
    for (int probe = 0; probe < probes; ++probe) {
      Rng rng((0x5EEDull << 32) ^ (static_cast<std::uint64_t>(i) << 8) ^
              static_cast<std::uint64_t>(probe));
      for (std::size_t l = 0; l < n; ++l) r[l] = rng.uniform(-1.0, 1.0);
      const double r0 = la::norm2(r);
      std::fill(z.begin(), z.end(), 0.0);
      res = r;
      int reached = -1;
      for (int pass = 0; pass <= max_steps; ++pass) {
        const double norm = la::norm2(res);
        if (norm <= options_.zero_threshold) {
          reached = pass == 0 ? 0 : pass - 1;
          break;
        }
        const double inv = options_.normalize_input ? 1.0 / norm : 1.0;
        for (std::size_t l = 0; l < n; ++l) sample.rhs[l] = res[l] * inv;
        timed_forward(*model_, sample, edge_caches_[i].get(), dss, out);
        const double scale = options_.normalize_input ? norm : 1.0;
        for (std::size_t l = 0; l < n; ++l) {
          z[l] += scale * static_cast<double>(out[l]);
        }
        topo->a_local.multiply(z, res);
        for (std::size_t l = 0; l < n; ++l) res[l] = r[l] - res[l];
        const double rho = la::norm2(res) / (r0 > 0.0 ? r0 : 1.0);
        if (std::isfinite(rho) && rho <= target) {
          reached = pass;
          break;
        }
      }
      if (reached < 0) {
        needed = -1;  // one bad probe disqualifies the subdomain
        break;
      }
      needed = std::max(needed, reached);
    }
    bool use_fallback = needed < 0;  // non-contractive: correctness fallback
    std::unique_ptr<la::SkylineCholesky> chol;
    if (!use_fallback && options_.cost_aware_fallback) {
      // Cost model, per preconditioner application. Exact: forward+backward
      // envelope sweeps, 2 flops per stored entry each (the factorization is
      // one-time setup cost, not counted). GNN: (passes+1) inferences, each
      // k̄ message-passing iterations of two n×d×hidden edge-endpoint
      // projections, the ne×hidden×d edge-MLP layer-2 GEMM, and the ~3
      // d×d-shaped node-update GEMMs.
      chol = std::make_unique<la::SkylineCholesky>(topo->a_local);
      const double exact_flops =
          4.0 * static_cast<double>(chol->envelope_size());
      const double nd = static_cast<double>(topo->n);
      const double ne = static_cast<double>(topo->num_edges());
      const double d = static_cast<double>(mc.latent);
      const double h = static_cast<double>(mc.hidden);
      const double per_inference =
          static_cast<double>(mc.iterations) *
          (4.0 * nd * d * h + 2.0 * ne * h * d + 6.0 * nd * d * d);
      const double gnn_flops = (needed + 1) * per_inference;
      use_fallback =
          gnn_flops > options_.fallback_cost_margin * exact_flops;
    }
    if (use_fallback) {
      if (!chol) chol = std::make_unique<la::SkylineCholesky>(topo->a_local);
      if (options_.fp32_fallback) chol->enable_fp32();
      fallback_[i] = std::move(chol);
      fallbacks.fetch_add(1, std::memory_order_relaxed);
    } else {
      refine_steps_[i] = std::max(refine_steps_[i], needed);
    }
  });
  fallback_count_ = fallbacks.load();
  int max_chosen = 0;
  for (la::Index i = 0; i < k; ++i) {
    if (!fallback_[i]) max_chosen = std::max(max_chosen, refine_steps_[i]);
  }
  setup_span.arg("adaptive_fallback_subdomains",
                 static_cast<double>(fallback_count_));
  setup_span.arg("adaptive_max_passes", static_cast<double>(max_chosen));
  if (obs::metrics_enabled()) {
    obs::Registry::instance()
        .gauge("gnn.adaptive_fallback_subdomains")
        .set(static_cast<double>(fallback_count_));
    obs::Registry::instance()
        .gauge("gnn.adaptive_max_passes")
        .set(static_cast<double>(max_chosen));
  }
}

std::unique_ptr<precond::SubdomainSolver::Workspace>
GnnSubdomainSolver::make_workspace() const {
  auto ws = std::make_unique<GnnWorkspace>();
  ws->ensure_lanes(std::max(1, num_threads()));
  return ws;
}

std::size_t GnnSubdomainSolver::workspace_bytes() const {
  // Coarse steady-state estimate of one caller's warmed-up lanes: the DSS
  // forward buffers are dominated by per-edge hidden activations and
  // per-node latent/projection tensors; every lane ends up sized to the
  // largest shard (≈ the merged node budget) it has processed.
  long max_nodes = 0, max_edges = 0, total_nodes = 0;
  for (const auto& t : topologies_) {
    max_nodes = std::max<long>(max_nodes, t->n);
    max_edges = std::max<long>(max_edges, t->num_edges());
    total_nodes += t->n;
  }
  if (total_nodes == 0) return 0;
  const double edges_per_node =
      max_nodes > 0 ? static_cast<double>(max_edges) / max_nodes : 0.0;
  const long shard_nodes = std::max<long>(max_nodes, kShardNodeBudget);
  const long shard_edges = static_cast<long>(edges_per_node * shard_nodes);
  const auto& cfg = model_->config();
  const std::size_t per_lane =
      static_cast<std::size_t>(shard_nodes) *
          (4 * cfg.latent + 2 * cfg.hidden + cfg.update_input_dim() + 2) *
          sizeof(float) +
      static_cast<std::size_t>(shard_edges) *
          (2 * cfg.hidden + cfg.latent) * sizeof(float) +
      static_cast<std::size_t>(shard_nodes) * 2 * sizeof(double);
  return per_lane * static_cast<std::size_t>(std::max(1, num_threads()));
}

void GnnSubdomainSolver::solve_all(
    const std::vector<std::vector<double>>& r_loc,
    std::vector<std::vector<double>>& z_loc, Workspace* ws) const {
  DDMGNN_CHECK(r_loc.size() == topologies_.size(),
               "GnnSubdomainSolver: batch size mismatch");
  GnnWorkspace& gws = workspace_of(ws);
  // Read the thread count once: a concurrent set_num_threads() between
  // sizing the lanes and forking the team must not leave the team wider
  // than the lane array.
  const int team = std::max(1, num_threads());
  gws.ensure_lanes(team);
#pragma omp parallel for schedule(dynamic, 1) num_threads(team)
  for (long i = 0; i < static_cast<long>(r_loc.size()); ++i) {
    GnnWorkspace::Lane& lane = gws.lane(omp_get_thread_num());
    const auto& topo = topologies_[i];
    const auto& r = r_loc[i];
    auto& z = z_loc[i];
    const std::size_t n = r.size();
    if (!fallback_.empty() && fallback_[i] != nullptr) {
      // Non-contractive subdomain: exact local solve (adaptive setup).
      z.assign(r.begin(), r.end());
      if (options_.fp32_fallback) {
        fallback_[i]->solve_inplace_fp32(z);
      } else {
        fallback_[i]->solve_inplace(z);
      }
      continue;
    }
    const int steps =
        refine_steps_.empty() ? options_.refinement_steps : refine_steps_[i];
    z.assign(n, 0.0);
    gnn::GraphSample& sample = lane.sample;
    sample.topo = topo;
    sample.rhs.resize(n);
    std::vector<float>& out = lane.out;
    std::vector<double> res(r.begin(), r.end());  // current local residual
    for (int pass = 0; pass <= steps; ++pass) {
      const double norm = la::norm2(res);
      if (norm <= options_.zero_threshold) break;
      const double inv = options_.normalize_input ? 1.0 / norm : 1.0;
      for (std::size_t j = 0; j < n; ++j) sample.rhs[j] = res[j] * inv;
      timed_forward(*model_, sample, edge_caches_[i].get(), lane.dss, out);
      const double scale = options_.normalize_input ? norm : 1.0;
      for (std::size_t j = 0; j < n; ++j) {
        z[j] += scale * static_cast<double>(out[j]);
      }
      if (pass == steps) break;
      // res = r − A_i z for the next correction pass.
      topo->a_local.multiply(z, res);
      for (std::size_t j = 0; j < n; ++j) res[j] = r[j] - res[j];
    }
    sample.topo.reset();  // drop the shared ref; the rhs buffer stays warm
  }
}

namespace {

/// Shard plans retained per solver. Deflation walks the column count down
/// during a solve and repeated solve_many calls revisit the same counts, so
/// a handful of plans covers steady-state serving; each plan holds merged
/// topology copies, so the cache is deliberately small.
constexpr std::size_t kMaxShardPlans = 6;

}  // namespace

GnnSubdomainSolver::ShardPlan GnnSubdomainSolver::build_shards(
    la::Index s) const {
  const auto k = static_cast<la::Index>(topologies_.size());
  // Fallback subdomains (adaptive setup) are served by their Cholesky factor
  // outside the merged shards.
  auto sharded = [&](la::Index i) {
    return fallback_.empty() || fallback_[i] == nullptr;
  };
  long total_nodes = 0;
  la::Index sharded_parts = 0;
  for (la::Index i = 0; i < k; ++i) {
    if (!sharded(i)) continue;
    total_nodes += topologies_[i]->n;
    ++sharded_parts;
  }
  total_nodes *= s;
  const long ntasks = static_cast<long>(sharded_parts) * s;
  if (ntasks == 0) return ShardPlan{};
  const long by_budget = (total_nodes + kShardNodeBudget - 1) /
                         kShardNodeBudget;
  const long nshards =
      std::max<long>(1, std::min(ntasks,
                                 std::max<long>(by_budget, num_threads())));
  const long node_target = (total_nodes + nshards - 1) / nshards;

  ShardPlan plan;
  plan.shards.reserve(nshards);
  // Column-major task order so one shard holds whole subdomain groups of a
  // column before moving on; packing closes a shard at the node target.
  std::vector<ShardTask> tasks;
  long shard_nodes = 0;
  auto flush = [&]() {
    if (tasks.empty()) return;
    Shard shard;
    shard.tasks = std::move(tasks);
    std::vector<gnn::GraphSample> samples(shard.tasks.size());
    for (std::size_t t = 0; t < shard.tasks.size(); ++t) {
      samples[t].topo = topologies_[shard.tasks[t].part];
      samples[t].rhs.assign(samples[t].topo->n, 0.0);
      shard.tasks[t].slot = static_cast<la::Index>(t);
    }
    shard.batch = gnn::batch_samples(samples);
    plan.bytes += topology_bytes(*shard.batch.merged.topo) +
                  shard.batch.merged.rhs.size() * sizeof(double);
    if (model_->config().fast_inference) {
      shard.cache = std::make_shared<const gnn::DssEdgeCache>(
          model_->precompute_edges(*shard.batch.merged.topo));
      plan.bytes += shard.cache->bytes();
    }
    plan.shards.push_back(std::move(shard));
    tasks.clear();
    shard_nodes = 0;
  };
  for (la::Index j = 0; j < s; ++j) {
    for (la::Index i = 0; i < k; ++i) {
      if (!sharded(i)) continue;
      if (shard_nodes > 0 && shard_nodes + topologies_[i]->n > node_target) {
        flush();
      }
      tasks.push_back(ShardTask{i, j, 0});
      shard_nodes += topologies_[i]->n;
    }
  }
  flush();
  return plan;
}

std::shared_ptr<const GnnSubdomainSolver::ShardPlan>
GnnSubdomainSolver::plan_for(la::Index s) const {
  {
    std::shared_lock lock(plans_mutex_);
    for (const auto& [cols, plan] : plans_) {
      if (cols == s) return plan;
    }
  }
  std::unique_lock lock(plans_mutex_);
  for (const auto& [cols, plan] : plans_) {  // lost the build race?
    if (cols == s) return plan;
  }
  // Building under the writer lock serializes plan construction (stampede
  // safety: concurrent first-comers at one column count pay one build); the
  // read path above stays contention-free for warmed-up column counts.
  auto plan = std::make_shared<const ShardPlan>(build_shards(s));
  plans_.emplace_back(s, plan);
  if (plans_.size() > kMaxShardPlans) {
    // Evict the smallest column count EXCLUDING the plan just inserted —
    // small merges are the cheapest to rebuild, but evicting the newcomer
    // itself would make every iteration at its width a miss+rebuild.
    const auto smallest = std::min_element(
        plans_.begin(), plans_.end() - 1,
        [](const auto& a, const auto& b) { return a.first < b.first; });
    plans_.erase(smallest);  // in-flight users hold their shared_ptr
  }
  return plan;
}

std::size_t GnnSubdomainSolver::plan_cache_bytes() const {
  std::shared_lock lock(plans_mutex_);
  std::size_t bytes = 0;
  for (const auto& [cols, plan] : plans_) bytes += plan->bytes;
  return bytes;
}

void GnnSubdomainSolver::solve_all_block(
    const std::vector<la::MultiVector>& r_loc,
    std::vector<la::MultiVector>& z_loc, Workspace* ws) const {
  DDMGNN_CHECK(r_loc.size() == topologies_.size(),
               "GnnSubdomainSolver: block batch size mismatch");
  if (r_loc.empty()) return;
  GnnWorkspace& gws = workspace_of(ws);
  const int team = std::max(1, num_threads());  // once — see solve_all
  gws.ensure_lanes(team);
  const la::Index s = r_loc[0].cols();
  const std::shared_ptr<const ShardPlan> plan = plan_for(s);
  for (auto& z : z_loc) z.fill(0.0);

#pragma omp parallel for schedule(dynamic, 1) num_threads(team)
  for (long sh = 0; sh < static_cast<long>(plan->shards.size()); ++sh) {
    const Shard& shard = plan->shards[sh];
    GnnWorkspace::Lane& lane = gws.lane(omp_get_thread_num());
    const std::size_t nt = shard.tasks.size();
    // The shard's merged sample is shared read-only; the rhs channel of this
    // application lives in the lane (rebound topo + workspace-owned buffer).
    gnn::GraphSample& merged = lane.sample;
    merged.topo = shard.batch.merged.topo;
    merged.rhs.resize(shard.batch.merged.rhs.size());
    std::vector<float>& out = lane.out;
    lane.scale.assign(nt, 0.0);
    std::vector<double>& rhs = merged.rhs;
    // Adaptive setup gives every subdomain its own pass count; the shard
    // iterates to the largest one and tasks that are done contribute a zero
    // slice (and a zero scale), exactly like the below-threshold case.
    auto steps_for = [&](la::Index part) {
      return refine_steps_.empty() ? options_.refinement_steps
                                   : refine_steps_[part];
    };
    int shard_steps = 0;
    for (const ShardTask& task : shard.tasks) {
      shard_steps = std::max(shard_steps, steps_for(task.part));
    }
    if (shard_steps > 0) {
      lane.res.resize(nt);
    }
    for (int pass = 0; pass <= shard_steps; ++pass) {
      for (std::size_t t = 0; t < nt; ++t) {
        const ShardTask& task = shard.tasks[t];
        const la::Index n = topologies_[task.part]->n;
        const la::Index off = shard.batch.offsets[task.slot];
        if (pass > steps_for(task.part)) {
          lane.scale[t] = 0.0;
          std::fill(rhs.begin() + off, rhs.begin() + off + n, 0.0);
          continue;
        }
        const std::span<const double> cur =
            pass == 0 ? r_loc[task.part].col(task.column)
                      : std::span<const double>(lane.res[t]);
        const double norm = la::norm2(cur);
        if (norm <= options_.zero_threshold) {
          // Below threshold the scalar path stops refining this task; a zero
          // rhs slice (and zero scale) contributes exactly nothing here.
          lane.scale[t] = 0.0;
          std::fill(rhs.begin() + off, rhs.begin() + off + n, 0.0);
          continue;
        }
        const double inv = options_.normalize_input ? 1.0 / norm : 1.0;
        for (la::Index l = 0; l < n; ++l) rhs[off + l] = cur[l] * inv;
        lane.scale[t] = options_.normalize_input ? norm : 1.0;
      }
      timed_forward(*model_, merged, shard.cache.get(), lane.dss, out);
      for (std::size_t t = 0; t < nt; ++t) {
        const ShardTask& task = shard.tasks[t];
        const la::Index n = topologies_[task.part]->n;
        const la::Index off = shard.batch.offsets[task.slot];
        auto z = z_loc[task.part].col(task.column);
        for (la::Index l = 0; l < n; ++l) {
          z[l] += lane.scale[t] * static_cast<double>(out[off + l]);
        }
      }
      if (pass == shard_steps) break;
      for (std::size_t t = 0; t < nt; ++t) {
        const ShardTask& task = shard.tasks[t];
        if (pass >= steps_for(task.part)) continue;
        const auto& topo = topologies_[task.part];
        lane.res[t].resize(topo->n);
        topo->a_local.multiply(z_loc[task.part].col(task.column), lane.res[t]);
        const auto r = r_loc[task.part].col(task.column);
        for (la::Index l = 0; l < topo->n; ++l) {
          lane.res[t][l] = r[l] - lane.res[t][l];
        }
      }
    }
    merged.topo.reset();
  }

  if (fallback_count_ > 0) {
    // Exact-local-solve subdomains (adaptive setup) run outside the merged
    // shards: per (subdomain, column), copy the residual and sweep.
    std::vector<la::Index> fb;
    fb.reserve(static_cast<std::size_t>(fallback_count_));
    for (std::size_t i = 0; i < fallback_.size(); ++i) {
      if (fallback_[i] != nullptr) fb.push_back(static_cast<la::Index>(i));
    }
    const long nfb = static_cast<long>(fb.size()) * s;
#pragma omp parallel for schedule(dynamic, 1) num_threads(team)
    for (long t = 0; t < nfb; ++t) {
      const la::Index part = fb[static_cast<std::size_t>(t / s)];
      const auto col = static_cast<la::Index>(t % s);
      auto z = z_loc[part].col(col);
      const auto r = r_loc[part].col(col);
      for (std::size_t l = 0; l < z.size(); ++l) z[l] = r[l];
      if (options_.fp32_fallback) {
        fallback_[part]->solve_inplace_fp32(z);
      } else {
        fallback_[part]->solve_inplace(z);
      }
    }
  }
}

}  // namespace ddmgnn::core
