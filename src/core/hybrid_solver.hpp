// Hybrid-solver facade: one call goes from (mesh, FEM problem) to a solved
// system with any of the paper's preconditioners — the pipeline of Fig. 1.
// This is the public entry point examples and benches use.
#pragma once

#include <optional>
#include <string>

#include "fem/poisson.hpp"
#include "gnn/dss_model.hpp"
#include "mesh/mesh.hpp"
#include "solver/krylov.hpp"

namespace ddmgnn::core {

enum class PrecondKind {
  kNone,      // plain CG
  kJacobi,
  kIc0,       // Table III baseline
  kDdmLu,     // two-level ASM, exact local solves
  kDdmGnn,    // two-level ASM, DSS local solves (the paper's contribution)
  kDdmLu1,    // one-level variants (ablation)
  kDdmGnn1,
};

const char* precond_kind_name(PrecondKind kind);

struct HybridConfig {
  PrecondKind preconditioner = PrecondKind::kDdmGnn;
  la::Index subdomain_target_nodes = 1000;  // paper's Ns
  int overlap = 2;
  double rel_tol = 1e-6;
  int max_iterations = 2000;
  /// Use flexible PCG (safe for the non-symmetric GNN preconditioner). When
  /// false, plain PCG — Algorithm 1 exactly as in the paper.
  bool flexible = false;
  /// Required for the GNN preconditioners.
  const gnn::DssModel* model = nullptr;
  /// Extra DSS refinement passes per local solve (see GnnSubdomainSolver).
  int gnn_refinement_steps = 0;
  /// §III-A residual normalization (ablation switch).
  bool gnn_normalize = true;
  std::uint64_t seed = 0;
  bool track_history = true;
};

struct HybridReport {
  solver::SolveResult result;
  la::Index num_subdomains = 0;   // K (0 when no decomposition involved)
  double setup_seconds = 0.0;     // partition + factorizations + graphs
  std::vector<double> solution;
};

/// Solve prob.A x = prob.b on mesh `m` with the configured preconditioner.
HybridReport solve_poisson(const mesh::Mesh& m, const fem::PoissonProblem& prob,
                           const HybridConfig& cfg);

}  // namespace ddmgnn::core
