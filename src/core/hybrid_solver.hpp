// Legacy one-shot facade over the setup/solve session API.
//
// `solve_poisson` fuses setup and one solve — it was the repository's only
// public entry point before SolverSession (core/solver_session.hpp) existed.
// It remains for callers that genuinely solve a system exactly once, but it
// rebuilds the decomposition, factorizations and coarse space on every call:
// anything serving repeated right-hand sides should hold a SolverSession and
// amortize that setup instead.
#pragma once

#include "core/solver_session.hpp"

namespace ddmgnn::core {

struct HybridReport {
  solver::SolveResult result;
  la::Index num_subdomains = 0;   // K (0 when no decomposition involved)
  double setup_seconds = 0.0;     // partition + factorizations + graphs
  std::vector<double> solution;
};

/// Solve prob.A x = prob.b on mesh `m` with the configured preconditioner.
/// Thin wrapper: SolverSession::setup + one SolverSession::solve.
[[deprecated(
    "one-shot facade rebuilds all setup state per call; use SolverSession "
    "(setup once, solve per right-hand side)")]]
HybridReport solve_poisson(const mesh::Mesh& m, const fem::PoissonProblem& prob,
                           const HybridConfig& cfg);

}  // namespace ddmgnn::core
