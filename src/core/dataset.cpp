#include "core/dataset.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "fem/poisson.hpp"
#include "gnn/graph.hpp"
#include "la/vector_ops.hpp"
#include "mesh/generator.hpp"
#include "partition/decomposition.hpp"
#include "precond/asm_precond.hpp"
#include "solver/krylov.hpp"

namespace ddmgnn::core {

namespace {

/// Decorator that records normalized local residuals on every application of
/// the wrapped ASM preconditioner — the dataset extraction hook of §IV-A.
class RecordingPreconditioner final : public precond::Preconditioner {
 public:
  RecordingPreconditioner(
      const precond::Preconditioner& inner,
      const partition::Decomposition& dec,
      const std::vector<std::shared_ptr<gnn::GraphTopology>>& topologies,
      std::vector<gnn::GraphSample>& sink, std::size_t max_samples)
      : inner_(inner), dec_(dec), topologies_(topologies), sink_(sink),
        max_samples_(max_samples) {}

  using precond::Preconditioner::apply;
  std::unique_ptr<precond::ApplyWorkspace> make_workspace() const override {
    return inner_.make_workspace();  // recording itself needs no scratch
  }
  void apply(std::span<const double> r, std::span<double> z,
             precond::ApplyWorkspace* ws) const override {
    for (la::Index i = 0; i < dec_.num_parts; ++i) {
      if (sink_.size() >= max_samples_) break;
      std::vector<double> r_loc(dec_.subdomains[i].size());
      dec_.restrict_to(i, r, r_loc);
      const double norm = la::norm2(r_loc);
      if (norm <= 0.0) continue;
      gnn::GraphSample s;
      s.topo = topologies_[i];
      const double inv = 1.0 / norm;
      s.rhs.resize(r_loc.size());
      for (std::size_t l = 0; l < r_loc.size(); ++l) s.rhs[l] = r_loc[l] * inv;
      sink_.push_back(std::move(s));
    }
    inner_.apply(r, z, ws);
  }

  std::string name() const override { return inner_.name() + "+record"; }
  bool is_symmetric() const override { return inner_.is_symmetric(); }

 private:
  const precond::Preconditioner& inner_;
  const partition::Decomposition& dec_;
  const std::vector<std::shared_ptr<gnn::GraphTopology>>& topologies_;
  std::vector<gnn::GraphSample>& sink_;
  std::size_t max_samples_;
};

}  // namespace

DssDataset generate_dataset(const DatasetConfig& cfg) {
  std::vector<gnn::GraphSample> all;
  for (int p = 0; p < cfg.num_global_problems; ++p) {
    const std::uint64_t seed = cfg.seed + 7919u * static_cast<std::uint64_t>(p);
    const mesh::Domain dom = mesh::random_domain(seed);
    const mesh::Mesh m =
        mesh::generate_mesh_target_nodes(dom, cfg.mesh_target_nodes, seed);
    const fem::QuadraticData data = fem::sample_quadratic_data(seed);
    const auto prob = fem::assemble_poisson(
        m, [&](const mesh::Point2& q) { return data.f(q); },
        [&](const mesh::Point2& q) { return data.g(q); });
    const auto dec = partition::decompose_target_size(
        m.adj_ptr(), m.adj(), cfg.subdomain_target_nodes, cfg.overlap, seed);

    // Subdomain graph topologies (shared by all samples of this problem).
    const la::CsrMatrix mesh_pattern =
        gnn::adjacency_pattern(m.adj_ptr(), m.adj());
    std::vector<std::shared_ptr<gnn::GraphTopology>> topologies(dec.num_parts);
    for (la::Index i = 0; i < dec.num_parts; ++i) {
      const auto& nodes = dec.subdomains[i];
      std::vector<mesh::Point2> coords(nodes.size());
      std::vector<std::uint8_t> dirichlet(nodes.size());
      for (std::size_t l = 0; l < nodes.size(); ++l) {
        coords[l] = m.points()[nodes[l]];
        dirichlet[l] = prob.dirichlet[nodes[l]];
      }
      const la::CsrMatrix local_pattern =
          mesh_pattern.principal_submatrix(nodes);
      topologies[i] = gnn::build_topology(prob.A.principal_submatrix(nodes),
                                          coords, dirichlet, &local_pattern);
    }

    precond::AdditiveSchwarz ddm_lu(
        prob.A, dec, std::make_unique<precond::CholeskySubdomainSolver>());
    RecordingPreconditioner recorder(ddm_lu, dec, topologies, all,
                                     cfg.max_samples);
    std::vector<double> x(prob.b.size(), 0.0);
    solver::SolveOptions opts;
    opts.rel_tol = cfg.pcg_rel_tol;
    opts.max_iterations = 500;
    solver::pcg(prob.A, recorder, prob.b, x, opts);
    if (all.size() >= cfg.max_samples) break;
  }
  DDMGNN_CHECK(!all.empty(), "generate_dataset: produced no samples");

  // Deterministic shuffle, then 60/20/20 split (paper: 70282/23428/23428).
  Rng rng(cfg.seed ^ 0xC2B2AE3D27D4EB4Full);
  for (std::size_t i = all.size() - 1; i > 0; --i) {
    std::swap(all[i], all[rng.uniform_index(i + 1)]);
  }
  DssDataset out;
  const std::size_t n_train = (all.size() * 6) / 10;
  const std::size_t n_val = (all.size() * 2) / 10;
  out.train.assign(std::make_move_iterator(all.begin()),
                   std::make_move_iterator(all.begin() + n_train));
  out.validation.assign(
      std::make_move_iterator(all.begin() + n_train),
      std::make_move_iterator(all.begin() + n_train + n_val));
  out.test.assign(std::make_move_iterator(all.begin() + n_train + n_val),
                  std::make_move_iterator(all.end()));
  return out;
}

}  // namespace ddmgnn::core
