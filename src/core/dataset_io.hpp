// Dataset (de)serialization: harvested corpora can be saved once and reused
// across training runs / machines — the workflow equivalent of the paper's
// stored 117k-sample dataset. Topologies are deduplicated: each distinct
// subdomain graph is written once, samples reference it by index.
#pragma once

#include <optional>
#include <string>

#include "core/dataset.hpp"

namespace ddmgnn::core {

void save_dataset(const DssDataset& data, const std::string& path);

/// Returns nullopt on missing/corrupt files.
std::optional<DssDataset> load_dataset(const std::string& path);

}  // namespace ddmgnn::core
