#include "core/solver_session.hpp"

#include <utility>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "la/multivector.hpp"
#include "precond/registry.hpp"
#include "solver/block_krylov.hpp"

namespace ddmgnn::core {

void SolverSession::setup(const mesh::Mesh& m, const fem::PoissonProblem& prob,
                          const HybridConfig& cfg) {
  // Reset first so ANY setup failure — including an unknown name below —
  // leaves the session not-ready rather than keyed to a stale problem.
  m_inv_.reset();
  dec_.reset();
  a_ = nullptr;
  num_subdomains_ = 0;
  setup_seconds_ = 0.0;
  cfg_ = cfg;

  // Resolves aliases and throws (listing the registered names) on unknowns.
  const std::string& canonical =
      precond::PrecondRegistry::instance().canonical(cfg.preconditioner);
  const precond::PrecondTraits traits = precond::preconditioner_traits(canonical);

  Timer setup_timer;
  if (traits.needs_decomposition) {
    dec_ = std::make_unique<partition::Decomposition>(
        partition::decompose_target_size(m.adj_ptr(), m.adj(),
                                         cfg.subdomain_target_nodes,
                                         cfg.overlap, cfg.seed));
    num_subdomains_ = dec_->num_parts;
  }
  precond::PrecondContext ctx;
  ctx.A = &prob.A;
  ctx.dec = dec_.get();
  ctx.mesh = &m;
  ctx.dirichlet = prob.dirichlet;
  ctx.model = cfg.model;
  ctx.gnn_refinement_steps = cfg.gnn_refinement_steps;
  ctx.gnn_normalize = cfg.gnn_normalize;
  m_inv_ = precond::make_preconditioner(canonical, ctx);
  a_ = &prob.A;
  setup_seconds_ = setup_timer.seconds();

  if (cfg.method.has_value()) {
    method_ = *cfg.method;
  } else if (canonical == "none") {
    method_ = solver::KrylovMethod::kCg;
  } else {
    method_ = m_inv_->is_symmetric() ? solver::KrylovMethod::kPcg
                                     : solver::KrylovMethod::kFpcg;
  }
}

solver::SolveResult SolverSession::solve(std::span<const double> b,
                                         std::span<double> x) const {
  DDMGNN_CHECK(ready(), "SolverSession::solve before setup()");
  solver::SolveOptions opts;
  opts.rel_tol = cfg_.rel_tol;
  opts.max_iterations = cfg_.max_iterations;
  opts.track_history = cfg_.track_history;
  opts.gmres_restart = cfg_.gmres_restart;
  return solver::run_krylov(method_, *a_, *m_inv_, b, x, opts);
}

std::vector<solver::SolveResult> SolverSession::solve_many(
    std::span<const std::vector<double>> rhs,
    std::vector<std::vector<double>>& xs) const {
  DDMGNN_CHECK(ready(), "SolverSession::solve_many before setup()");
  xs.resize(rhs.size());
  const bool block_capable =
      method_ == solver::KrylovMethod::kCg ||
      method_ == solver::KrylovMethod::kPcg ||
      method_ == solver::KrylovMethod::kFpcg;
  if (cfg_.block_multi_rhs && block_capable && rhs.size() > 1) {
    const auto n = static_cast<std::size_t>(a_->rows());
    for (const auto& b : rhs) {
      DDMGNN_CHECK(b.size() == n, "solve_many: rhs size mismatch");
    }
    solver::SolveOptions opts;
    opts.rel_tol = cfg_.rel_tol;
    opts.max_iterations = cfg_.max_iterations;
    opts.track_history = cfg_.track_history;
    opts.gmres_restart = cfg_.gmres_restart;
    const la::MultiVector b = la::MultiVector::from_columns(rhs);
    la::MultiVector x(b.rows(), b.cols(), 0.0);
    auto results =
        solver::run_block_krylov(method_, *a_, *m_inv_, b, x, opts);
    DDMGNN_CHECK(results.has_value(), "solve_many: block dispatch failed");
    for (std::size_t i = 0; i < rhs.size(); ++i) {
      const auto col = x.col(static_cast<la::Index>(i));
      xs[i].assign(col.begin(), col.end());
    }
    return std::move(*results);
  }
  std::vector<solver::SolveResult> results;
  results.reserve(rhs.size());
  for (std::size_t i = 0; i < rhs.size(); ++i) {
    xs[i].assign(rhs[i].size(), 0.0);
    results.push_back(solve(rhs[i], xs[i]));
  }
  return results;
}

const precond::Preconditioner& SolverSession::preconditioner() const {
  DDMGNN_CHECK(ready(), "SolverSession::preconditioner before setup()");
  return *m_inv_;
}

}  // namespace ddmgnn::core
