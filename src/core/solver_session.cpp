#include "core/solver_session.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "core/gnn_subdomain_solver.hpp"
#include "gnn/graph.hpp"
#include "gnn/spectral_coords.hpp"
#include "la/multivector.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "precond/asm_precond.hpp"
#include "precond/registry.hpp"
#include "solver/block_krylov.hpp"

namespace ddmgnn::core {

void SolverSession::reset_setup_state() {
  // Reset first so ANY setup failure — including an unknown name — leaves
  // the session not-ready rather than keyed to a stale problem.
  m_inv_.reset();
  dec_.reset();
  a_ = nullptr;
  num_subdomains_ = 0;
  setup_seconds_ = 0.0;
}

void SolverSession::check_setup_allowed() const {
  DDMGNN_CHECK(!setup_locked_,
               "SolverSession::setup on a cache-owned session: this session "
               "is shared through a core::SessionCache and re-keying it "
               "would corrupt the cache's fingerprint index for every other "
               "holder. Re-key through the cache instead: call "
               "SessionCache::get_or_setup with the new operator/config "
               "(misses prepare a fresh entry; the old one stays valid).");
}

void SolverSession::setup_from_graph(const la::CsrMatrix& A,
                                     const HybridConfig& cfg,
                                     std::span<const la::Offset> adj_ptr,
                                     std::span<const la::Index> adj,
                                     const AlgebraicOptions& opts) {
  check_setup_allowed();
  reset_setup_state();
  cfg_ = cfg;
  DDMGNN_CHECK(adj_ptr.size() == static_cast<std::size_t>(A.rows()) + 1,
               "setup_from_graph: adjacency does not match the operator");

  // Resolves aliases and throws (listing the registered names) on unknowns.
  const std::string& canonical =
      precond::PrecondRegistry::instance().canonical(cfg.preconditioner);
  const precond::PrecondTraits traits = precond::preconditioner_traits(canonical);

  static obs::Gauge& setup_gauge =
      obs::Registry::instance().gauge("session.setup_seconds");
  obs::PhaseTimer setup_phase("session.setup", &setup_gauge);
  Timer setup_timer;
  if (traits.needs_decomposition) {
    static obs::Gauge& g =
        obs::Registry::instance().gauge("setup.decomposition_seconds");
    obs::PhaseTimer t("setup.decomposition", &g);
    dec_ = std::make_unique<partition::Decomposition>(
        partition::decompose_target_size(adj_ptr, adj,
                                         cfg.subdomain_target_nodes,
                                         cfg.overlap, cfg.seed));
    num_subdomains_ = dec_->num_parts;
  }
  precond::PrecondContext ctx;
  ctx.A = &A;
  ctx.dec = dec_.get();
  ctx.dirichlet = opts.dirichlet;
  ctx.coords = opts.coordinates;
  ctx.model = cfg.model;
  ctx.gnn_refinement_steps = cfg.gnn_refinement_steps;
  ctx.gnn_normalize = cfg.gnn_normalize;
  ctx.gnn_adaptive_refinement = cfg.gnn_adaptive_refinement;
  ctx.gnn_contraction_target = cfg.gnn_contraction_target;
  ctx.gnn_max_refinement_steps = cfg.gnn_max_refinement_steps;
  ctx.gnn_cost_aware_fallback = cfg.gnn_cost_aware_fallback;
  ctx.gnn_fp32_fallback = cfg.precond_fp32;
  ctx.mg_levels = cfg.mg_levels;
  ctx.mg_cycle = cfg.mg_cycle;
  ctx.mg_smoother = cfg.mg_smoother;
  ctx.mg_smooth_steps = cfg.mg_smooth_steps;
  ctx.mg_aggregate_target = cfg.mg_aggregate_target;
  ctx.seed = cfg.seed;
  // The message-graph pattern is only materialized for geometry consumers
  // (the GNN entries); the factories copy it, so it can live on this stack.
  la::CsrMatrix pattern;
  if (traits.needs_geometry) {
    pattern = gnn::adjacency_pattern(adj_ptr, adj);
    ctx.edge_pattern = &pattern;
  }
  {
    // Child phases (setup.extract_blocks / setup.local_solver /
    // setup.coarse_space) are emitted inside AdditiveSchwarz's constructor.
    static obs::Gauge& g =
        obs::Registry::instance().gauge("setup.preconditioner_seconds");
    obs::PhaseTimer t("setup.preconditioner", &g);
    m_inv_ = precond::make_preconditioner(canonical, ctx);
  }
  a_ = &A;
  setup_seconds_ += setup_timer.seconds();

  if (cfg.method.has_value()) {
    method_ = *cfg.method;
  } else if (canonical == "none") {
    method_ = solver::KrylovMethod::kCg;
  } else {
    // fp32 rounding makes even a symmetric M effectively nonlinear, so the
    // default selection needs the flexible variant too.
    const bool flexible = !m_inv_->is_symmetric() || cfg.precond_fp32;
    method_ = flexible ? solver::KrylovMethod::kFpcg
                       : solver::KrylovMethod::kPcg;
  }
}

void SolverSession::setup(const mesh::Mesh& m, const fem::PoissonProblem& prob,
                          const HybridConfig& cfg) {
  AlgebraicOptions opts;
  opts.dirichlet = prob.dirichlet;
  opts.coordinates = m.points();
  setup_from_graph(prob.A, cfg, m.adj_ptr(), m.adj(), opts);
}

void SolverSession::setup(const la::CsrMatrix& A, const HybridConfig& cfg,
                          const AlgebraicOptions& opts) {
  check_setup_allowed();
  reset_setup_state();
  DDMGNN_CHECK(A.rows() == A.cols(),
               "setup(A): operator must be square, got " +
                   std::to_string(A.rows()) + "x" + std::to_string(A.cols()));
  const std::string& canonical =
      precond::PrecondRegistry::instance().canonical(cfg.preconditioner);
  const precond::PrecondTraits traits = precond::preconditioner_traits(canonical);
  DDMGNN_CHECK(
      traits.supports_algebraic,
      "preconditioner '" + canonical +
          "' is registered without algebraic support and cannot be built "
          "from a bare matrix; use setup(mesh, prob, cfg) or register an "
          "algebraic-capable variant");
  const auto n = static_cast<std::size_t>(A.rows());
  DDMGNN_CHECK(opts.dirichlet.empty() || opts.dirichlet.size() == n,
               "setup(A): dirichlet mask must have one entry per row");
  DDMGNN_CHECK(opts.coordinates.empty() || opts.coordinates.size() == n,
               "setup(A): coordinates must have one point per row");

  // Graph derivation is part of the setup cost the session reports — and is
  // skipped entirely for preconditioners that consult neither the
  // decomposition nor geometry (none/jacobi/ic0), where it could dwarf the
  // actual build.
  Timer derive_timer;
  partition::AdjacencyGraph graph;
  if (traits.needs_decomposition || traits.needs_geometry) {
    graph = partition::matrix_adjacency(A);
  } else {
    graph.ptr.assign(static_cast<std::size_t>(A.rows()) + 1, 0);  // edgeless
  }
  std::span<const mesh::Point2> coords = opts.coordinates;
  std::vector<mesh::Point2> synthetic;
  if (traits.needs_geometry && coords.empty()) {
    synthetic = gnn::spectral_coordinates(graph.ptr, graph.idx,
                                          /*smoothing_steps=*/30, cfg.seed);
    coords = synthetic;
  }
  const double derive_seconds = derive_timer.seconds();
  AlgebraicOptions derived;
  derived.dirichlet = opts.dirichlet;
  derived.coordinates = coords;
  setup_from_graph(A, cfg, graph.ptr, graph.idx, derived);
  setup_seconds_ += derive_seconds;
}

solver::SolveResult SolverSession::solve(std::span<const double> b,
                                         std::span<double> x) const {
  return solve(b, x, /*x0=*/{});
}

solver::SolveResult SolverSession::solve(std::span<const double> b,
                                         std::span<double> x,
                                         std::span<const double> x0) const {
  DDMGNN_CHECK(ready(), "SolverSession::solve before setup()");
  // Root span: every solve's full wall time is covered by this one event,
  // with the Krylov iterations and preconditioner phases nested inside.
  obs::Span solve_span("session.solve");
  solver::SolveOptions opts;
  opts.rel_tol = cfg_.rel_tol;
  opts.max_iterations = cfg_.max_iterations;
  opts.track_history = cfg_.track_history;
  opts.gmres_restart = cfg_.gmres_restart;
  opts.precond_fp32 = cfg_.precond_fp32;
  opts.x0 = x0;
  solver::SolveResult res =
      solver::run_krylov(method_, *a_, *m_inv_, b, x, opts);
  solve_span.arg("iterations", res.iterations);
  solve_span.arg("converged", res.converged ? 1.0 : 0.0);
  return res;
}

std::vector<solver::SolveResult> SolverSession::solve_many(
    std::span<const std::vector<double>> rhs,
    std::vector<std::vector<double>>& xs) const {
  return solve_many(rhs, xs, /*x0s=*/{});
}

std::vector<solver::SolveResult> SolverSession::solve_many(
    std::span<const std::vector<double>> rhs,
    std::vector<std::vector<double>>& xs,
    std::span<const std::vector<double>> x0s) const {
  DDMGNN_CHECK(ready(), "SolverSession::solve_many before setup()");
  DDMGNN_CHECK(x0s.empty() || x0s.size() == rhs.size(),
               "solve_many: x0s must be empty or give one (possibly empty) "
               "guess per right-hand side");
  const auto n = static_cast<std::size_t>(a_->rows());
  for (const auto& g : x0s) {
    DDMGNN_CHECK(g.empty() || g.size() == n,
                 "solve_many: x0 size does not match the operator");
  }
  obs::Span solve_span("session.solve_many");
  solve_span.arg("rhs", static_cast<double>(rhs.size()));
  xs.resize(rhs.size());
  const bool block_capable =
      method_ == solver::KrylovMethod::kCg ||
      method_ == solver::KrylovMethod::kPcg ||
      method_ == solver::KrylovMethod::kFpcg;
  if (cfg_.block_multi_rhs && block_capable && rhs.size() > 1) {
    for (const auto& b : rhs) {
      DDMGNN_CHECK(b.size() == n, "solve_many: rhs size mismatch");
    }
    solver::SolveOptions opts;
    opts.rel_tol = cfg_.rel_tol;
    opts.max_iterations = cfg_.max_iterations;
    opts.track_history = cfg_.track_history;
    opts.gmres_restart = cfg_.gmres_restart;
    opts.precond_fp32 = cfg_.precond_fp32;
    const la::MultiVector b = la::MultiVector::from_columns(rhs);
    la::MultiVector x(b.rows(), b.cols(), 0.0);
    // The block drivers treat the iterate block as the initial guess
    // (r₀ = B − A·X₀ per column), so seeding is just filling the columns.
    for (std::size_t i = 0; i < x0s.size(); ++i) {
      if (x0s[i].empty()) continue;
      std::copy(x0s[i].begin(), x0s[i].end(),
                x.col(static_cast<la::Index>(i)).begin());
    }
    auto results =
        solver::run_block_krylov(method_, *a_, *m_inv_, b, x, opts);
    DDMGNN_CHECK(results.has_value(), "solve_many: block dispatch failed");
    for (std::size_t i = 0; i < rhs.size(); ++i) {
      const auto col = x.col(static_cast<la::Index>(i));
      xs[i].assign(col.begin(), col.end());
    }
    return std::move(*results);
  }
  std::vector<solver::SolveResult> results;
  results.reserve(rhs.size());
  for (std::size_t i = 0; i < rhs.size(); ++i) {
    xs[i].assign(rhs[i].size(), 0.0);
    const bool seeded = i < x0s.size() && !x0s[i].empty();
    results.push_back(solve(rhs[i], xs[i], seeded ? x0s[i] : std::span<const double>{}));
  }
  return results;
}

std::size_t SolverSession::memory_bytes() const {
  if (!ready()) return 0;
  // Operator CSR views (shared with the caller, but the cache's copy owns
  // them) ...
  std::size_t bytes =
      static_cast<std::size_t>(a_->rows() + 1) * sizeof(la::Offset) +
      static_cast<std::size_t>(a_->nnz()) *
          (sizeof(la::Index) + sizeof(double));
  // ... plus decomposition node lists and a dense-factor-style bound on the
  // per-subdomain solver state (Cholesky envelopes / DSS topologies).
  if (dec_) {
    bytes += static_cast<std::size_t>(dec_->num_nodes()) *
             (sizeof(la::Index) + sizeof(double));
    for (const auto& nodes : dec_->subdomains) {
      bytes += nodes.size() * sizeof(la::Index);
      bytes += nodes.size() * nodes.size() * sizeof(double);
    }
  }
  // One concurrent solve's worth of apply-workspace scratch. Per-call
  // workspaces replaced the old `static thread_local` DSS buffers, which
  // this estimate used to omit entirely; counting one solve keeps the
  // SessionCache byte budget honest for the common one-client-per-session
  // case (heavier fan-in scales the transient scratch, not the cached state).
  if (m_inv_) bytes += m_inv_->workspace_bytes();
  // The GNN local solver additionally holds per-topology attr-projection
  // caches (the factorized inference engine's setup-time precompute) and the
  // block path's merged-shard plan cache; count both so the SessionCache
  // byte budget stays honest for ddm-gnn sessions. Plans are built lazily
  // per column count, so this (intentionally coarse) estimate grows after
  // the first solve_many.
  if (const auto* schwarz =
          dynamic_cast<const precond::AdditiveSchwarz*>(m_inv_.get())) {
    // Coarse-correction state: the dense Nicolaides factor, or the whole
    // smoothed-aggregation hierarchy (level operators + transfers + the far
    // smaller coarsest factor) for the -ml entries.
    if (const auto* coarse = schwarz->coarse_component()) {
      bytes += coarse->memory_bytes();
    }
    if (const auto* gnn_local = dynamic_cast<const GnnSubdomainSolver*>(
            &schwarz->local_solver())) {
      for (const auto& cache : gnn_local->edge_caches()) {
        if (cache) bytes += cache->bytes();
      }
      bytes += gnn_local->plan_cache_bytes();
    }
  }
  return bytes;
}

const precond::Preconditioner& SolverSession::preconditioner() const {
  DDMGNN_CHECK(ready(), "SolverSession::preconditioner before setup()");
  return *m_inv_;
}

}  // namespace ddmgnn::core
