// Setup/solve session API — the reusable form of the hybrid solver.
//
// The paper's headline economics are that DDM-GNN setup (partitioning,
// subdomain graph construction, local factorizations, coarse-space assembly)
// is amortized across solves: production callers (time-stepping, pressure
// projection) solve the same operator against many right-hand sides. A
// SolverSession builds all of that state exactly once in setup() and then
// serves any number of solve()/solve_many() calls that pay only iteration
// cost:
//
//   core::SolverSession session;
//   session.setup(mesh, prob, cfg);            // partition + factor + graphs
//   session.solve(prob.b, x);                  // Krylov iterations only
//   session.solve(next_rhs, x);                // reuses ALL setup state
//
// Non-FEM callers skip the mesh entirely — the DDM-GNN preconditioner
// operates on the assembled operator, so any sparse SPD system can be set up
// matrix-first:
//
//   session.setup(A, cfg);                     // decomposition from the
//                                              // matrix graph; GNN features
//                                              // from synthetic coordinates
//   session.setup(A, cfg, {dirichlet, coords});// with known extra structure
//
// The preconditioner is chosen by name through the string-keyed registry
// (src/precond/registry.hpp) and the Krylov method by the KrylovMethod
// selector, so both are configuration data rather than call-site code. The
// old one-shot `solve_poisson` facade survives as a thin deprecated wrapper
// in core/hybrid_solver.hpp.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "fem/poisson.hpp"
#include "gnn/dss_model.hpp"
#include "mesh/mesh.hpp"
#include "partition/decomposition.hpp"
#include "precond/preconditioner.hpp"
#include "solver/krylov.hpp"

namespace ddmgnn::core {

/// Configuration of one session: preconditioner by registry name, Krylov
/// method by selector, plus decomposition and GNN knobs.
struct HybridConfig {
  /// Registry name: "none", "jacobi", "ic0", "ddm-lu", "ddm-gnn",
  /// "ddm-lu-1level", "ddm-gnn-1level" (see precond::preconditioner_names()).
  std::string preconditioner = "ddm-gnn";
  /// Krylov method. When unset, picked from the preconditioner's traits:
  /// "none" runs plain CG, symmetric preconditioners run PCG (Algorithm 1),
  /// non-symmetric ones (the GNN variants) run flexible PCG.
  std::optional<solver::KrylovMethod> method;
  la::Index subdomain_target_nodes = 1000;  // paper's Ns
  int overlap = 2;
  double rel_tol = 1e-6;
  int max_iterations = 2000;
  int gmres_restart = 50;
  /// Required for the GNN preconditioners.
  const gnn::DssModel* model = nullptr;
  /// Extra DSS refinement passes per local solve (see GnnSubdomainSolver).
  int gnn_refinement_steps = 0;
  /// §III-A residual normalization (ablation switch).
  bool gnn_normalize = true;
  /// Refine-until-contractive setup (GnnSubdomainSolver::Options): probe
  /// each subdomain at setup, pick the pass count that actually contracts
  /// the local residual, and fall back to an exact Cholesky local solve for
  /// subdomains the model cannot contract. This is the served-configuration
  /// convergence fix — off by default so existing configs are bit-for-bit
  /// unchanged; gnn_refinement_steps acts as the per-subdomain floor.
  bool gnn_adaptive_refinement = false;
  double gnn_contraction_target = 0.25;
  int gnn_max_refinement_steps = 3;
  /// Adaptive mode also serves a subdomain with the exact factor when the
  /// (deterministic) flop model predicts the refined GNN apply to cost
  /// overwhelmingly more than the envelope sweeps — on CPU at small Ns the
  /// exact sweep is both cheaper and a better local solve. Disable to force
  /// the GNN apply on every contractive subdomain (ablations).
  bool gnn_cost_aware_fallback = true;
  /// Run preconditioner applications through fp32 (round the residual in,
  /// the correction out; Cholesky fallbacks sweep an fp32 factor copy). The
  /// outer Krylov recurrences stay fp64. Makes the preconditioner
  /// effectively nonlinear, so the default-method selection bumps PCG to
  /// flexible PCG when enabled.
  bool precond_fp32 = false;
  /// Multi-level coarse hierarchy (the `-ml` registry entries): coarse-
  /// hierarchy depth L. The default 1 keeps the classic one-shot dense
  /// Nicolaides coarse solve — existing configs are bit-for-bit unchanged.
  /// L >= 2 builds a smoothed-aggregation hierarchy (aggregation coarsening
  /// + Galerkin operators) and applies it as a recursive cycle: an
  /// (L+1)-level method counting the fine grid. Plain (non `-ml`) entries
  /// ignore these knobs entirely.
  int mg_levels = 1;
  /// "v" or "w": cycle shape on the coarse hierarchy.
  std::string mg_cycle = "v";
  /// Intermediate-level smoother: "jacobi" (damped, ω from the power-
  /// iteration recipe) or "chebyshev" (polynomial of degree
  /// mg_smooth_steps). The fine level needs no smoother here — the ASM
  /// subdomain solves (exact Cholesky or DSS inference) fill that role.
  std::string mg_smoother = "jacobi";
  /// Pre- and post-smoothing sweeps (Jacobi) / polynomial degree (Chebyshev).
  int mg_smooth_steps = 1;
  /// Pass-1 aggregate size cap for the greedy aggregation on deep levels.
  la::Index mg_aggregate_target = 8;
  std::uint64_t seed = 0;
  bool track_history = true;
  /// solve_many: dispatch to the batched block-Krylov engine (one fused
  /// SpMM + one block preconditioner application per iteration — for
  /// DDM-GNN a single disjoint-union DSS inference over all K×s local
  /// problems). false restores the sequential one-RHS-at-a-time loop.
  bool block_multi_rhs = true;
};

/// Optional extra structure for the matrix-first setup path. Everything is
/// copied where needed during setup — the spans need only live through the
/// setup() call.
struct AlgebraicOptions {
  /// Dirichlet mask (1 for identity/constrained rows), size = A.rows().
  /// Empty means no constrained rows.
  std::span<const std::uint8_t> dirichlet;
  /// Node positions for the GNN graph features, size = A.rows(). Empty lets
  /// the session synthesize spectral coordinates from the matrix graph
  /// (gnn::spectral_coordinates) for preconditioners that need geometry.
  std::span<const mesh::Point2> coordinates;
};

/// A prepared solver for one operator. setup() may be called again to re-key
/// the session to a new problem; solve() requires a prior setup().
///
/// Lifetimes: the session keeps references to the operator (`prob.A` or the
/// bare `A`) and, for the GNN preconditioners, to `cfg.model` — both must
/// outlive the session's solves. Mesh geometry, synthetic coordinates and
/// Dirichlet flags are copied where needed during setup.
class SolverSession {
 public:
  SolverSession() = default;
  // Movable, not copyable: the preconditioner points into session-owned
  // decomposition state (held behind stable unique_ptrs).
  SolverSession(SolverSession&&) = default;
  SolverSession& operator=(SolverSession&&) = default;
  SolverSession(const SolverSession&) = delete;
  SolverSession& operator=(const SolverSession&) = delete;

  /// Build decomposition, local factorizations/DSS graphs and coarse space
  /// for `prob.A` once. Throws ContractError for unknown preconditioner
  /// names or missing requirements (e.g. a GNN preconditioner without a
  /// model).
  void setup(const mesh::Mesh& m, const fem::PoissonProblem& prob,
             const HybridConfig& cfg);

  /// Matrix-first (algebraic) setup: build the same prepared state from a
  /// bare assembled operator. The domain decomposition comes from the
  /// symmetrized stored pattern of `A` (partition::matrix_adjacency) and,
  /// for the GNN preconditioners, graph features come from
  /// `opts.coordinates` or — when empty — synthetic spectral coordinates of
  /// that same graph. Throws ContractError for unknown names, for registry
  /// entries whose traits declare no algebraic support
  /// (PrecondTraits::supports_algebraic == false), for non-square `A`, and
  /// for mis-sized `opts` spans. `A` must outlive the session's solves.
  void setup(const la::CsrMatrix& A, const HybridConfig& cfg,
             const AlgebraicOptions& opts = {});

  /// Graph-parameterized form both public paths delegate to: prepare for `A`
  /// using an explicit decomposition/message graph (mesh::Mesh CSR adjacency
  /// layout). This is the seam for callers that know a better graph than the
  /// matrix pattern (the mesh path passes the mesh adjacency; core's
  /// SessionCache re-keys mesh setups onto its owned operator copies through
  /// it). No algebraic-support gate applies — providing the graph explicitly
  /// is the mesh-equivalent. Spans are not retained beyond the call.
  void setup_from_graph(const la::CsrMatrix& A, const HybridConfig& cfg,
                        std::span<const la::Offset> adj_ptr,
                        std::span<const la::Index> adj,
                        const AlgebraicOptions& opts = {});

  /// Solve A x = b with the prepared preconditioner. `x` is the initial
  /// guess on entry (callers typically zero it) and the solution on exit.
  /// Only iteration cost — no setup work happens here.
  solver::SolveResult solve(std::span<const double> b,
                            std::span<double> x) const;

  /// Warm-started form: `x0` (size n) seeds the iterate — `x` is output
  /// only. Repeat solves against slowly-drifting right-hand sides on one
  /// operator (time stepping, the streaming SolveService re-serving a
  /// client) converge in a fraction of the zero-start iterations; a solve
  /// seeded with an already-converged solution finishes immediately.
  solver::SolveResult solve(std::span<const double> b, std::span<double> x,
                            std::span<const double> x0) const;

  /// Solve the same operator against each right-hand side in `rhs`;
  /// `xs` is resized to match, every solve starting from a zero guess.
  ///
  /// With cfg.block_multi_rhs (the default) and a CG/PCG/FPCG method, all
  /// right-hand sides advance together through the block-Krylov engine:
  /// every iteration pays ONE SpMM and ONE block preconditioner application
  /// instead of one per RHS, and converged columns are deflated out. The
  /// sequential loop remains for single RHS, opted-out configs, and methods
  /// without a block form (BiCGStab/GMRES).
  std::vector<solver::SolveResult> solve_many(
      std::span<const std::vector<double>> rhs,
      std::vector<std::vector<double>>& xs) const;

  /// Warm-started solve_many: `x0s` is either empty (zero start for every
  /// column, identical to the overload above) or one guess per right-hand
  /// side, where an empty inner vector means zero start for that column.
  /// Both the block engine and the sequential fallback honor the seeds (the
  /// block drivers treat the iterate block as the initial guess).
  std::vector<solver::SolveResult> solve_many(
      std::span<const std::vector<double>> rhs,
      std::vector<std::vector<double>>& xs,
      std::span<const std::vector<double>> x0s) const;

  bool ready() const { return m_inv_ != nullptr; }
  /// Operator size n (rows == cols); 0 before setup(). What admission layers
  /// validate incoming right-hand sides against.
  la::Index rows() const { return a_ != nullptr ? a_->rows() : 0; }
  /// Wall-clock seconds the last setup() took (partition + factorizations +
  /// graphs + coarse space). Not touched by solve().
  double setup_seconds() const { return setup_seconds_; }
  /// K — 0 when the preconditioner involves no decomposition.
  la::Index num_subdomains() const { return num_subdomains_; }
  /// Resolved Krylov method (after trait-based defaulting).
  solver::KrylovMethod method() const { return method_; }
  /// Switch the Krylov method for subsequent solves — no re-setup needed;
  /// the preconditioner state is method-agnostic.
  void set_method(solver::KrylovMethod method) { method_ = method; }
  /// Toggle the batched solve_many dispatch at solve time (A/B comparisons
  /// need no duplicate setup; the preconditioner state serves both paths).
  void set_block_multi_rhs(bool enabled) { cfg_.block_multi_rhs = enabled; }
  const precond::Preconditioner& preconditioner() const;
  const HybridConfig& config() const { return cfg_; }
  /// Rough bytes held by the prepared state: the operator's CSR views, the
  /// decomposition node lists, a dense-factor-style bound on the local
  /// solver storage (Σ |Ω_i|² doubles when a decomposition exists — an upper
  /// estimate for the GNN variants), plus one concurrent solve's worth of
  /// preconditioner apply-workspace scratch (the per-solve buffers the old
  /// `static thread_local` workspaces used to hide). Used by
  /// core::SessionCache's byte budget; 0 before setup().
  std::size_t memory_bytes() const;

  /// Forbid any further setup() on this session: all three setup entry
  /// points then throw ContractError. The SessionCache locks every session
  /// it hands out — re-keying a shared session would corrupt the cache's
  /// fingerprint index out from under concurrent holders; re-key through
  /// SessionCache::get_or_setup with the new operator/config instead.
  void lock_setup() { setup_locked_ = true; }
  bool setup_locked() const { return setup_locked_; }

 private:
  void reset_setup_state();
  void check_setup_allowed() const;

  bool setup_locked_ = false;
  HybridConfig cfg_;
  solver::KrylovMethod method_ = solver::KrylovMethod::kPcg;
  const la::CsrMatrix* a_ = nullptr;
  // unique_ptr for address stability: the Schwarz preconditioner keeps a
  // pointer to the decomposition, and the session stays movable.
  std::unique_ptr<partition::Decomposition> dec_;
  std::unique_ptr<precond::Preconditioner> m_inv_;
  double setup_seconds_ = 0.0;
  la::Index num_subdomains_ = 0;
};

}  // namespace ddmgnn::core
