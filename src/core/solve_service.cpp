#include "core/solve_service.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "obs/flags.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ddmgnn::core {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// Registry instruments, resolved once (references are process-stable).
struct ServiceMetrics {
  obs::Counter& submitted;
  obs::Counter& completed;
  obs::Counter& rejected;
  obs::Gauge& queue_depth;
  obs::Histogram& batch_size;
  obs::Histogram& queue_seconds;

  static ServiceMetrics& instance() {
    static auto& reg = obs::Registry::instance();
    static ServiceMetrics m{
        reg.counter("service.submitted_total"),
        reg.counter("service.completed_total"),
        reg.counter("service.rejected_total"),
        reg.gauge("service.queue_depth"),
        reg.histogram("service.batch_size", {},
                      {1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64}),
        reg.histogram("service.queue_seconds", {},
                      obs::default_latency_buckets()),
    };
    return m;
  }
};

}  // namespace

std::chrono::microseconds effective_window_wait(
    std::chrono::microseconds max_wait, std::chrono::microseconds deadline) {
  if (deadline.count() <= 0) return max_wait;
  // Keep half the budget for the solve itself; a sub-max_wait deadline
  // therefore closes the window early (possibly immediately).
  return std::min(max_wait, deadline / 2);
}

SolveService::SolveService(SessionCache& cache, ServiceConfig cfg)
    : cache_(cache), cfg_(cfg) {
  DDMGNN_CHECK(cfg_.num_workers >= 1, "SolveService: num_workers must be >= 1");
  DDMGNN_CHECK(cfg_.max_batch >= 1, "SolveService: max_batch must be >= 1");
  DDMGNN_CHECK(cfg_.queue_capacity >= 1,
               "SolveService: queue_capacity must be >= 1");
  workers_.reserve(static_cast<std::size_t>(cfg_.num_workers));
  for (int i = 0; i < cfg_.num_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SolveService::~SolveService() { shutdown(); }

SolveService::OperatorKey SolveService::key_for_session(
    std::shared_ptr<SolverSession> session) {
  std::lock_guard<std::mutex> lock(mu_);
  DDMGNN_CHECK(!stopping_, "SolveService::register_operator after shutdown()");
  for (std::size_t k = 0; k < operators_.size(); ++k) {
    if (operators_[k]->session.get() == session.get()) return k;
  }
  auto op = std::make_unique<OperatorState>();
  op->session = std::move(session);
  operators_.push_back(std::move(op));
  return operators_.size() - 1;
}

SolveService::OperatorKey SolveService::register_operator(
    const la::CsrMatrix& A, const HybridConfig& cfg,
    const AlgebraicOptions& opts) {
  return key_for_session(cache_.get_or_setup(A, cfg, opts));
}

SolveService::OperatorKey SolveService::register_operator(
    const mesh::Mesh& m, const fem::PoissonProblem& prob,
    const HybridConfig& cfg) {
  return key_for_session(cache_.get_or_setup(m, prob, cfg));
}

std::optional<std::future<SolveService::Reply>> SolveService::submit(
    OperatorKey op, std::vector<double> rhs, const SubmitOptions& qos) {
  const auto now = Clock::now();
  Request req;
  req.rhs = std::move(rhs);
  if (!qos.x0.empty()) req.x0.assign(qos.x0.begin(), qos.x0.end());
  req.enqueued = now;
  req.close_by = now + effective_window_wait(cfg_.max_wait, qos.deadline);
  std::future<Reply> fut = req.promise.get_future();

  const AdmissionPolicy policy = qos.on_full.value_or(cfg_.on_full);
  {
    std::unique_lock<std::mutex> lock(mu_);
    DDMGNN_CHECK(!stopping_, "SolveService::submit after shutdown()");
    DDMGNN_CHECK(op < operators_.size(),
                 "SolveService::submit: unknown operator key " +
                     std::to_string(op));
    OperatorState& state = *operators_[op];
    const auto n = static_cast<std::size_t>(state.session->rows());
    DDMGNN_CHECK(req.rhs.size() == n,
                 "SolveService::submit: rhs size does not match the operator");
    DDMGNN_CHECK(req.x0.empty() || req.x0.size() == n,
                 "SolveService::submit: x0 size does not match the operator");
    if (state.queue.size() >= cfg_.queue_capacity) {
      if (policy == AdmissionPolicy::kReject) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        if (obs::metrics_enabled()) {
          ServiceMetrics::instance().rejected.inc();
        }
        obs::instant("service.reject");
        return std::nullopt;
      }
      space_cv_.wait(lock, [&] {
        return stopping_ || state.queue.size() < cfg_.queue_capacity;
      });
      if (stopping_) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
      }
    }
    state.queue.push_back(std::move(req));
    ++queued_;
    submitted_.fetch_add(1, std::memory_order_relaxed);
    if (obs::metrics_enabled()) {
      auto& m = ServiceMetrics::instance();
      m.submitted.inc();
      m.queue_depth.set(static_cast<double>(queued_));
    }
  }
  work_cv_.notify_one();
  return fut;
}

std::optional<std::pair<std::size_t, std::vector<SolveService::Request>>>
SolveService::claim_window(
    Clock::time_point now,
    std::optional<Clock::time_point>& deadline_out) {
  // Scan for the due window whose oldest request is most urgent; while
  // scanning, remember the earliest future close_by so the caller knows when
  // to wake again. A queue is "due" when it reached max_batch, when its
  // oldest request's window wait expired, or when the service is draining.
  std::size_t best = operators_.size();
  Clock::time_point best_close{};
  for (std::size_t k = 0; k < operators_.size(); ++k) {
    const auto& q = operators_[k]->queue;
    if (q.empty()) continue;
    const Clock::time_point close = q.front().close_by;
    const bool due = stopping_ ||
                     q.size() >= static_cast<std::size_t>(cfg_.max_batch) ||
                     close <= now;
    if (due) {
      if (best == operators_.size() || close < best_close) {
        best = k;
        best_close = close;
      }
    } else if (!deadline_out || close < *deadline_out) {
      deadline_out = close;
    }
  }
  if (best == operators_.size()) return std::nullopt;
  OperatorState& op = *operators_[best];
  const std::size_t take =
      std::min(op.queue.size(), static_cast<std::size_t>(cfg_.max_batch));
  std::vector<Request> batch;
  batch.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    batch.push_back(std::move(op.queue.front()));
    op.queue.pop_front();
  }
  queued_ -= take;
  if (obs::metrics_enabled()) {
    ServiceMetrics::instance().queue_depth.set(static_cast<double>(queued_));
  }
  return std::make_pair(best, std::move(batch));
}

void SolveService::execute_window(OperatorState& op,
                                  std::vector<Request> batch) {
  const auto exec_start = Clock::now();
  const std::size_t s = batch.size();
  windows_.fetch_add(1, std::memory_order_relaxed);
  columns_.fetch_add(s, std::memory_order_relaxed);
  std::uint64_t seen = max_window_.load(std::memory_order_relaxed);
  while (s > seen &&
         !max_window_.compare_exchange_weak(seen, s,
                                            std::memory_order_relaxed)) {
  }
  const bool metrics = obs::metrics_enabled();
  if (metrics) {
    auto& m = ServiceMetrics::instance();
    m.batch_size.observe(static_cast<double>(s));
    for (const Request& r : batch) {
      m.queue_seconds.observe(seconds_between(r.enqueued, exec_start));
    }
  }
  obs::Span window_span("service.window");
  window_span.arg("batch", static_cast<double>(s));

  std::vector<solver::SolveResult> results;
  std::vector<std::vector<double>> xs;
  try {
    if (s == 1) {
      xs.resize(1);
      xs[0].assign(batch[0].rhs.size(), 0.0);
      results.push_back(
          op.session->solve(batch[0].rhs, xs[0], batch[0].x0));
    } else {
      std::vector<std::vector<double>> bs;
      std::vector<std::vector<double>> x0s;
      bs.reserve(s);
      x0s.reserve(s);
      bool any_seed = false;
      for (Request& r : batch) {
        any_seed = any_seed || !r.x0.empty();
        bs.push_back(std::move(r.rhs));
        x0s.push_back(std::move(r.x0));
      }
      results = op.session->solve_many(
          bs, xs,
          any_seed ? std::span<const std::vector<double>>(x0s)
                   : std::span<const std::vector<double>>{});
    }
  } catch (...) {
    // A failed window fails each of its requests individually; the service
    // itself stays up (the next window is independent work).
    const auto err = std::current_exception();
    for (Request& r : batch) r.promise.set_exception(err);
    return;
  }

  // Preconditioner-apply accounting: a batched window pays one fused apply
  // per BLOCK iteration — the max over its columns' iteration counts (a
  // column's `iterations` is the block iteration at which it converged; any
  // scalar-fallback iterations are folded into that column's count, so max
  // remains the honest total). A singleton window pays one apply per scalar
  // iteration.
  std::uint64_t applies = 0;
  for (const auto& res : results) {
    applies = std::max(applies, static_cast<std::uint64_t>(res.iterations));
  }
  precond_applies_.fetch_add(applies, std::memory_order_relaxed);
  window_span.arg("iterations", static_cast<double>(applies));

  const auto done = Clock::now();
  // Count completions BEFORE fulfilling any promise: a client that harvests
  // its future and immediately reads stats() must see itself counted.
  completed_.fetch_add(s, std::memory_order_relaxed);
  if (metrics) ServiceMetrics::instance().completed.inc(s);
  for (std::size_t i = 0; i < s; ++i) {
    Reply reply;
    reply.result = std::move(results[i]);
    reply.x = std::move(xs[i]);
    reply.queue_seconds = seconds_between(batch[i].enqueued, exec_start);
    reply.batch_columns = static_cast<int>(s);
    reply.completed_at = done;
    batch[i].promise.set_value(std::move(reply));
  }
}

void SolveService::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    std::optional<Clock::time_point> next_close;
    std::optional<std::pair<std::size_t, std::vector<Request>>> window;
    if (!paused_ || stopping_) {
      window = claim_window(Clock::now(), next_close);
    }
    if (window) {
      OperatorState& op = *operators_[window->first];
      lock.unlock();
      // Freed queue space: wake one blocked submitter per popped request.
      space_cv_.notify_all();
      execute_window(op, std::move(window->second));
      lock.lock();
      continue;
    }
    if (stopping_ && queued_ == 0) return;
    if (next_close && !paused_) {
      work_cv_.wait_until(lock, *next_close);
    } else {
      work_cv_.wait(lock);
    }
  }
}

void SolveService::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
    paused_ = false;  // drain overrides pause
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

void SolveService::pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void SolveService::resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  work_cv_.notify_all();
}

SolveService::Stats SolveService::stats() const {
  Stats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.windows = windows_.load(std::memory_order_relaxed);
  s.columns = columns_.load(std::memory_order_relaxed);
  s.max_window = max_window_.load(std::memory_order_relaxed);
  s.precond_applies = precond_applies_.load(std::memory_order_relaxed);
  return s;
}

std::size_t SolveService::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_;
}

}  // namespace ddmgnn::core
