// Training-set harvesting, reproducing §IV-A: solve global Poisson problems
// with PCG preconditioned by the classic two-level ASM (DDM-LU) and record,
// at every PCG iteration and for every subdomain, the normalized local
// residual R_i r / ‖R_i r‖ together with the subdomain graph. Those pairs are
// exactly the inputs the DDM-GNN preconditioner will see at inference time.
//
// The paper harvests 117,138 samples from 500 global problems of 6-8k nodes;
// DatasetConfig scales that recipe down for CPU budgets while keeping every
// pipeline step identical.
#pragma once

#include <cstdint>
#include <vector>

#include "gnn/graph.hpp"

namespace ddmgnn::core {

struct DatasetConfig {
  int num_global_problems = 6;
  la::Index mesh_target_nodes = 2200;   // paper: 6000-8000
  la::Index subdomain_target_nodes = 350;  // paper: ~1000
  int overlap = 2;
  double pcg_rel_tol = 1e-6;
  std::uint64_t seed = 1234;
  std::size_t max_samples = 200000;
};

struct DssDataset {
  std::vector<gnn::GraphSample> train;
  std::vector<gnn::GraphSample> validation;
  std::vector<gnn::GraphSample> test;

  std::size_t total() const {
    return train.size() + validation.size() + test.size();
  }
};

/// Generate the dataset (60/20/20 split, shuffled deterministically).
DssDataset generate_dataset(const DatasetConfig& cfg);

}  // namespace ddmgnn::core
