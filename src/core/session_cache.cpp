#include "core/session_cache.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"

namespace ddmgnn::core {

namespace {

std::uint64_t fnv1a(const void* data, std::size_t len, std::uint64_t h) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ull;
  }
  return h;
}

template <typename T>
std::uint64_t hash_span(std::span<const T> s, std::uint64_t h) {
  return fnv1a(s.data(), s.size() * sizeof(T), h);
}

template <typename T>
std::uint64_t hash_pod(const T& v, std::uint64_t h) {
  return fnv1a(&v, sizeof(T), h);
}

std::uint64_t fingerprint_of(const la::CsrMatrix& A, const HybridConfig& cfg,
                             const AlgebraicOptions& opts,
                             const mesh::Mesh* m) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  // Source tag + setup graph: a mesh-keyed session is prepared with the mesh
  // adjacency, a matrix-keyed one with the matrix pattern — identical
  // (A, cfg, opts) must NOT collide across the two, or a hit would return a
  // session decomposed over the wrong graph.
  const std::uint8_t mesh_keyed = m != nullptr ? 1 : 0;
  h = hash_pod(mesh_keyed, h);
  if (m != nullptr) {
    h = hash_span(m->adj_ptr(), h);
    h = hash_span(m->adj(), h);
  }
  h = hash_pod(A.rows(), h);
  h = hash_pod(A.cols(), h);
  h = hash_span(A.row_ptr(), h);
  h = hash_span(A.col_idx(), h);
  h = hash_span(A.values(), h);
  h = hash_span(opts.dirichlet, h);
  h = hash_span(opts.coordinates, h);
  h = fnv1a(cfg.preconditioner.data(), cfg.preconditioner.size(), h);
  const int method = cfg.method.has_value()
                         ? static_cast<int>(*cfg.method)
                         : -1;
  h = hash_pod(method, h);
  h = hash_pod(cfg.subdomain_target_nodes, h);
  h = hash_pod(cfg.overlap, h);
  h = hash_pod(cfg.rel_tol, h);
  h = hash_pod(cfg.max_iterations, h);
  h = hash_pod(cfg.gmres_restart, h);
  h = hash_pod(cfg.model, h);  // identity of the shared trained model
  h = hash_pod(cfg.gnn_refinement_steps, h);
  h = hash_pod(cfg.gnn_normalize, h);
  h = hash_pod(cfg.seed, h);
  h = hash_pod(cfg.track_history, h);
  h = hash_pod(cfg.block_multi_rhs, h);
  return h;
}

template <typename T>
bool spans_equal(std::span<const T> a, std::span<const T> b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0);
}

bool matrices_equal(const la::CsrMatrix& a, const la::CsrMatrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         spans_equal(a.row_ptr(), b.row_ptr()) &&
         spans_equal(a.col_idx(), b.col_idx()) &&
         spans_equal(a.values(), b.values());
}

bool configs_equal(const HybridConfig& a, const HybridConfig& b) {
  return a.preconditioner == b.preconditioner && a.method == b.method &&
         a.subdomain_target_nodes == b.subdomain_target_nodes &&
         a.overlap == b.overlap && a.rel_tol == b.rel_tol &&
         a.max_iterations == b.max_iterations &&
         a.gmres_restart == b.gmres_restart && a.model == b.model &&
         a.gnn_refinement_steps == b.gnn_refinement_steps &&
         a.gnn_normalize == b.gnn_normalize && a.seed == b.seed &&
         a.track_history == b.track_history &&
         a.block_multi_rhs == b.block_multi_rhs;
}

}  // namespace

struct SessionCache::Entry {
  std::uint64_t fingerprint = 0;
  // Owned copies of everything the prepared session points into.
  la::CsrMatrix A;
  std::vector<std::uint8_t> dirichlet;
  std::vector<mesh::Point2> coordinates;
  // The setup graph for mesh-keyed entries (empty for matrix-keyed ones,
  // whose graph is derivable from A): part of the exact-verify so the
  // collision guarantee holds across the two setup paths.
  std::vector<la::Offset> graph_ptr;
  std::vector<la::Index> graph_idx;
  HybridConfig cfg;
  SolverSession session;
  std::size_t bytes = 0;
};

std::shared_ptr<SolverSession> SessionCache::lookup_or_insert(
    std::uint64_t fingerprint, const la::CsrMatrix& A, const HybridConfig& cfg,
    const AlgebraicOptions& opts, const mesh::Mesh* m) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    Entry& e = **it;
    if (e.fingerprint != fingerprint) continue;
    // Exact verification: a colliding fingerprint must degrade to a miss.
    const bool entry_mesh_keyed = !e.graph_ptr.empty();
    if (entry_mesh_keyed != (m != nullptr)) continue;
    if (m != nullptr &&
        (!spans_equal(std::span<const la::Offset>(e.graph_ptr), m->adj_ptr()) ||
         !spans_equal(std::span<const la::Index>(e.graph_idx), m->adj()))) {
      continue;
    }
    if (!configs_equal(e.cfg, cfg) || !matrices_equal(e.A, A) ||
        !spans_equal(std::span<const std::uint8_t>(e.dirichlet),
                     opts.dirichlet) ||
        !spans_equal(std::span<const mesh::Point2>(e.coordinates),
                     opts.coordinates)) {
      continue;
    }
    ++stats_.hits;
    entries_.splice(entries_.begin(), entries_, it);  // mark most-recent
    return {*it, &(*it)->session};
  }

  ++stats_.misses;
  auto entry = std::make_shared<Entry>();
  entry->fingerprint = fingerprint;
  entry->A = A;  // private copy: the session must outlive the caller's matrix
  entry->dirichlet.assign(opts.dirichlet.begin(), opts.dirichlet.end());
  entry->coordinates.assign(opts.coordinates.begin(), opts.coordinates.end());
  entry->cfg = cfg;
  AlgebraicOptions owned_opts;
  owned_opts.dirichlet = entry->dirichlet;
  owned_opts.coordinates = entry->coordinates;
  if (m != nullptr) {
    // Mesh-keyed: identical to setup(mesh, prob, cfg) — same graph, coords
    // and mask — but run against the entry's operator copy so the prepared
    // state points into the cache, not the caller.
    entry->graph_ptr.assign(m->adj_ptr().begin(), m->adj_ptr().end());
    entry->graph_idx.assign(m->adj().begin(), m->adj().end());
    entry->session.setup_from_graph(entry->A, cfg, entry->graph_ptr,
                                    entry->graph_idx, owned_opts);
  } else {
    entry->session.setup(entry->A, cfg, owned_opts);
  }
  entry->bytes = entry->session.memory_bytes() +
                 entry->dirichlet.size() +
                 entry->coordinates.size() * sizeof(mesh::Point2) +
                 entry->graph_ptr.size() * sizeof(la::Offset) +
                 entry->graph_idx.size() * sizeof(la::Index);
  bytes_ += entry->bytes;
  entries_.push_front(entry);
  evict_over_budget();
  auto& front = entries_.front();
  return {front, &front->session};
}

std::shared_ptr<SolverSession> SessionCache::get_or_setup(
    const mesh::Mesh& m, const fem::PoissonProblem& prob,
    const HybridConfig& cfg) {
  AlgebraicOptions opts;
  opts.dirichlet = prob.dirichlet;
  opts.coordinates = m.points();
  return lookup_or_insert(fingerprint_of(prob.A, cfg, opts, &m), prob.A, cfg,
                          opts, &m);
}

std::shared_ptr<SolverSession> SessionCache::get_or_setup(
    const la::CsrMatrix& A, const HybridConfig& cfg,
    const AlgebraicOptions& opts) {
  return lookup_or_insert(fingerprint_of(A, cfg, opts, nullptr), A, cfg, opts,
                          nullptr);
}

void SessionCache::evict_over_budget() {
  while (bytes_ > byte_budget_ && entries_.size() > 1) {
    bytes_ -= entries_.back()->bytes;
    entries_.pop_back();  // holders of aliased shared_ptrs keep it alive
    ++stats_.evictions;
  }
}

void SessionCache::clear() {
  entries_.clear();
  bytes_ = 0;
}

}  // namespace ddmgnn::core
