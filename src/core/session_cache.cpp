#include "core/session_cache.hpp"

#include <algorithm>
#include <cstring>
#include <mutex>

#include "common/error.hpp"
#include "obs/flags.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ddmgnn::core {

namespace {

std::uint64_t fnv1a(const void* data, std::size_t len, std::uint64_t h) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ull;
  }
  return h;
}

template <typename T>
std::uint64_t hash_span(std::span<const T> s, std::uint64_t h) {
  return fnv1a(s.data(), s.size() * sizeof(T), h);
}

template <typename T>
std::uint64_t hash_pod(const T& v, std::uint64_t h) {
  return fnv1a(&v, sizeof(T), h);
}

std::uint64_t fingerprint_of(const la::CsrMatrix& A, const HybridConfig& cfg,
                             const AlgebraicOptions& opts,
                             const mesh::Mesh* m) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  // Source tag + setup graph: a mesh-keyed session is prepared with the mesh
  // adjacency, a matrix-keyed one with the matrix pattern — identical
  // (A, cfg, opts) must NOT collide across the two, or a hit would return a
  // session decomposed over the wrong graph.
  const std::uint8_t mesh_keyed = m != nullptr ? 1 : 0;
  h = hash_pod(mesh_keyed, h);
  if (m != nullptr) {
    h = hash_span(m->adj_ptr(), h);
    h = hash_span(m->adj(), h);
  }
  h = hash_pod(A.rows(), h);
  h = hash_pod(A.cols(), h);
  h = hash_span(A.row_ptr(), h);
  h = hash_span(A.col_idx(), h);
  h = hash_span(A.values(), h);
  h = hash_span(opts.dirichlet, h);
  h = hash_span(opts.coordinates, h);
  h = fnv1a(cfg.preconditioner.data(), cfg.preconditioner.size(), h);
  const int method = cfg.method.has_value()
                         ? static_cast<int>(*cfg.method)
                         : -1;
  h = hash_pod(method, h);
  h = hash_pod(cfg.subdomain_target_nodes, h);
  h = hash_pod(cfg.overlap, h);
  h = hash_pod(cfg.rel_tol, h);
  h = hash_pod(cfg.max_iterations, h);
  h = hash_pod(cfg.gmres_restart, h);
  h = hash_pod(cfg.model, h);  // identity of the shared trained model
  h = hash_pod(cfg.gnn_refinement_steps, h);
  h = hash_pod(cfg.gnn_normalize, h);
  h = hash_pod(cfg.gnn_adaptive_refinement, h);
  h = hash_pod(cfg.gnn_contraction_target, h);
  h = hash_pod(cfg.gnn_max_refinement_steps, h);
  h = hash_pod(cfg.gnn_cost_aware_fallback, h);
  h = hash_pod(cfg.precond_fp32, h);
  h = hash_pod(cfg.mg_levels, h);
  h = fnv1a(cfg.mg_cycle.data(), cfg.mg_cycle.size(), h);
  h = fnv1a(cfg.mg_smoother.data(), cfg.mg_smoother.size(), h);
  h = hash_pod(cfg.mg_smooth_steps, h);
  h = hash_pod(cfg.mg_aggregate_target, h);
  h = hash_pod(cfg.seed, h);
  h = hash_pod(cfg.track_history, h);
  h = hash_pod(cfg.block_multi_rhs, h);
  return h;
}

template <typename T>
bool spans_equal(std::span<const T> a, std::span<const T> b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0);
}

bool matrices_equal(const la::CsrMatrix& a, const la::CsrMatrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         spans_equal(a.row_ptr(), b.row_ptr()) &&
         spans_equal(a.col_idx(), b.col_idx()) &&
         spans_equal(a.values(), b.values());
}

bool configs_equal(const HybridConfig& a, const HybridConfig& b) {
  return a.preconditioner == b.preconditioner && a.method == b.method &&
         a.subdomain_target_nodes == b.subdomain_target_nodes &&
         a.overlap == b.overlap && a.rel_tol == b.rel_tol &&
         a.max_iterations == b.max_iterations &&
         a.gmres_restart == b.gmres_restart && a.model == b.model &&
         a.gnn_refinement_steps == b.gnn_refinement_steps &&
         a.gnn_normalize == b.gnn_normalize &&
         a.gnn_adaptive_refinement == b.gnn_adaptive_refinement &&
         a.gnn_contraction_target == b.gnn_contraction_target &&
         a.gnn_max_refinement_steps == b.gnn_max_refinement_steps &&
         a.gnn_cost_aware_fallback == b.gnn_cost_aware_fallback &&
         a.precond_fp32 == b.precond_fp32 && a.mg_levels == b.mg_levels &&
         a.mg_cycle == b.mg_cycle && a.mg_smoother == b.mg_smoother &&
         a.mg_smooth_steps == b.mg_smooth_steps &&
         a.mg_aggregate_target == b.mg_aggregate_target &&
         a.seed == b.seed && a.track_history == b.track_history &&
         a.block_multi_rhs == b.block_multi_rhs;
}

}  // namespace

struct SessionCache::Entry {
  std::uint64_t fingerprint = 0;
  // Owned copies of everything the prepared session points into. All key
  // material is written once, before the entry is published into its shard,
  // so shard-locked scans may compare against it while setup is running.
  la::CsrMatrix A;
  std::vector<std::uint8_t> dirichlet;
  std::vector<mesh::Point2> coordinates;
  // The setup graph for mesh-keyed entries (empty for matrix-keyed ones,
  // whose graph is derivable from A): part of the exact-verify so the
  // collision guarantee holds across the two setup paths.
  std::vector<la::Offset> graph_ptr;
  std::vector<la::Index> graph_idx;
  HybridConfig cfg;
  SolverSession session;
  std::size_t bytes = 0;
  /// Stampede collapse: the one setup for this key runs inside this flag;
  /// concurrent callers block here until the session is prepared.
  std::once_flag setup_once;
  /// True once setup has completed — the entry is then eligible for
  /// eviction.
  std::atomic<bool> ready{false};
  /// Whether `bytes` is currently included in the cache-wide total. Guarded
  /// by the owning shard's mutex; accounting happens only for entries that
  /// are (still) published in a shard, so an entry removed mid-setup (clear,
  /// failed-setup retry) can never leak bytes into the total.
  bool accounted = false;
  /// Global-LRU recency stamp (cache clock value of the last touch).
  std::atomic<std::uint64_t> last_used{0};

  std::size_t measure() const {
    return session.memory_bytes() + dirichlet.size() +
           coordinates.size() * sizeof(mesh::Point2) +
           graph_ptr.size() * sizeof(la::Offset) +
           graph_idx.size() * sizeof(la::Index);
  }
};

void SessionCache::run_setup(Entry& e) {
  AlgebraicOptions owned_opts;
  owned_opts.dirichlet = e.dirichlet;
  owned_opts.coordinates = e.coordinates;
  if (!e.graph_ptr.empty()) {
    // Mesh-keyed: identical to setup(mesh, prob, cfg) — same graph, coords
    // and mask — but run against the entry's operator copy so the prepared
    // state points into the cache, not the caller.
    e.session.setup_from_graph(e.A, e.cfg, e.graph_ptr, e.graph_idx,
                               owned_opts);
  } else {
    e.session.setup(e.A, e.cfg, owned_opts);
  }
  // Further setup() on this shared session would re-key it out from under
  // the fingerprint index (and every concurrent holder).
  e.session.lock_setup();
  e.ready.store(true, std::memory_order_release);
}

std::shared_ptr<SolverSession> SessionCache::lookup_or_insert(
    std::uint64_t fingerprint, const la::CsrMatrix& A, const HybridConfig& cfg,
    const AlgebraicOptions& opts, const mesh::Mesh* m) {
  Shard& shard = shards_[fingerprint % kNumShards];
  std::shared_ptr<Entry> entry;
  bool inserted = false;
  {
    std::lock_guard lock(shard.mutex);
    for (const auto& e : shard.entries) {
      if (e->fingerprint != fingerprint) continue;
      // Exact verification: a colliding fingerprint must degrade to a miss.
      const bool entry_mesh_keyed = !e->graph_ptr.empty();
      if (entry_mesh_keyed != (m != nullptr)) continue;
      if (m != nullptr &&
          (!spans_equal(std::span<const la::Offset>(e->graph_ptr),
                        m->adj_ptr()) ||
           !spans_equal(std::span<const la::Index>(e->graph_idx), m->adj()))) {
        continue;
      }
      if (!configs_equal(e->cfg, cfg) || !matrices_equal(e->A, A) ||
          !spans_equal(std::span<const std::uint8_t>(e->dirichlet),
                       opts.dirichlet) ||
          !spans_equal(std::span<const mesh::Point2>(e->coordinates),
                       opts.coordinates)) {
        continue;
      }
      entry = e;
      break;
    }
    if (entry == nullptr) {
      entry = std::make_shared<Entry>();
      entry->fingerprint = fingerprint;
      entry->A = A;  // private copy: must outlive the caller's matrix
      entry->dirichlet.assign(opts.dirichlet.begin(), opts.dirichlet.end());
      entry->coordinates.assign(opts.coordinates.begin(),
                                opts.coordinates.end());
      entry->cfg = cfg;
      if (m != nullptr) {
        entry->graph_ptr.assign(m->adj_ptr().begin(), m->adj_ptr().end());
        entry->graph_idx.assign(m->adj().begin(), m->adj().end());
      }
      shard.entries.push_back(entry);
      inserted = true;
    }
    entry->last_used.store(clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                           std::memory_order_relaxed);
  }
  // Hit/miss/stampede telemetry. A waiter that arrives while the first
  // caller is still inside setup counts as a hit (it shares that one setup:
  // 1 miss + N−1 hits for an N-thread stampede), but is additionally marked
  // as a stampede-wait — it is about to block in call_once below.
  const bool will_wait =
      !inserted && !entry->ready.load(std::memory_order_acquire);
  if (inserted) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (obs::metrics_enabled()) {
      static obs::Counter& c =
          obs::Registry::instance().counter("cache.misses_total");
      c.inc();
    }
    obs::instant("cache.miss");
  } else {
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (obs::metrics_enabled()) {
      static obs::Counter& c =
          obs::Registry::instance().counter("cache.hits_total");
      c.inc();
      if (will_wait) {
        static obs::Counter& w =
            obs::Registry::instance().counter("cache.stampede_waits_total");
        w.inc();
      }
    }
    obs::instant(will_wait ? "cache.stampede_wait" : "cache.hit");
  }

  // The setup itself runs outside every shard lock — long setups must not
  // block lookups of other operators (or eviction). call_once both
  // collapses the stampede and publishes the prepared state to waiters.
  try {
    std::call_once(entry->setup_once, [&] {
      OBS_SPAN("cache.setup");
      run_setup(*entry);
    });
  } catch (...) {
    // Failed setup (unknown name, missing model, …): unpublish the entry so
    // the key is retryable, then surface the error to this caller. Another
    // stampeding waiter retries the setup via call_once semantics and
    // reaches this same path.
    std::lock_guard lock(shard.mutex);
    auto& v = shard.entries;
    v.erase(std::remove(v.begin(), v.end(), entry), v.end());
    throw;
  }

  // Re-measure on every touch: first touch accounts the freshly prepared
  // state, later hits fold in growth the session accrued since (the GNN
  // block path builds merged-shard plans lazily per column count — the
  // budget must see them, or a ddm-gnn cache would silently exceed its
  // configured bytes). The measurement walks session state, so it runs
  // BEFORE taking the shard lock — concurrent hits on one shard must not
  // serialize behind it — and is folded in only while the entry is still
  // published in the shard (an entry removed mid-flight leaks nothing).
  const std::size_t now = entry->measure();
  {
    std::lock_guard lock(shard.mutex);
    const auto it = std::find(shard.entries.begin(), shard.entries.end(),
                              entry);
    if (it != shard.entries.end()) {
      if (!entry->accounted) {
        entry->accounted = true;
        entry->bytes = now;
        bytes_.fetch_add(now, std::memory_order_relaxed);
      } else if (now > entry->bytes) {
        bytes_.fetch_add(now - entry->bytes, std::memory_order_relaxed);
        entry->bytes = now;
      }
    }
  }
  if (bytes_.load(std::memory_order_relaxed) > byte_budget_) {
    evict_over_budget();
  }
  return {entry, &entry->session};
}

std::shared_ptr<SolverSession> SessionCache::get_or_setup(
    const mesh::Mesh& m, const fem::PoissonProblem& prob,
    const HybridConfig& cfg) {
  AlgebraicOptions opts;
  opts.dirichlet = prob.dirichlet;
  opts.coordinates = m.points();
  return lookup_or_insert(fingerprint_of(prob.A, cfg, opts, &m), prob.A, cfg,
                          opts, &m);
}

std::shared_ptr<SolverSession> SessionCache::get_or_setup(
    const la::CsrMatrix& A, const HybridConfig& cfg,
    const AlgebraicOptions& opts) {
  return lookup_or_insert(fingerprint_of(A, cfg, opts, nullptr), A, cfg, opts,
                          nullptr);
}

void SessionCache::evict_over_budget() {
  // One evictor at a time; lookups and inserts proceed concurrently (they
  // only nudge bytes_ upward, which the loop re-reads every round).
  std::lock_guard evict_lock(evict_mutex_);
  while (bytes_.load(std::memory_order_relaxed) > byte_budget_) {
    // Find the globally least-recently-used *ready* entry. Entries mid-setup
    // are skipped: their bytes are not accounted yet and evicting them would
    // orphan the stampede's waiters.
    Shard* victim_shard = nullptr;
    std::shared_ptr<Entry> victim;
    std::size_t total_ready = 0;
    for (Shard& shard : shards_) {
      std::lock_guard lock(shard.mutex);
      for (const auto& e : shard.entries) {
        if (!e->ready.load(std::memory_order_acquire)) continue;
        ++total_ready;
        if (victim == nullptr ||
            e->last_used.load(std::memory_order_relaxed) <
                victim->last_used.load(std::memory_order_relaxed)) {
          victim = e;
          victim_shard = &shard;
        }
      }
    }
    // An over-budget single entry is admitted; nothing to trim.
    if (victim == nullptr || total_ready <= 1) return;
    {
      std::lock_guard lock(victim_shard->mutex);
      auto& v = victim_shard->entries;
      const auto it = std::find(v.begin(), v.end(), victim);
      if (it == v.end()) continue;  // raced with clear(); re-scan
      v.erase(it);  // holders of aliased shared_ptrs keep the session alive
      if (victim->accounted) {
        bytes_.fetch_sub(victim->bytes, std::memory_order_relaxed);
      }
    }
    evictions_.fetch_add(1, std::memory_order_relaxed);
    if (obs::metrics_enabled()) {
      static obs::Counter& c =
          obs::Registry::instance().counter("cache.evictions_total");
      c.inc();
    }
    obs::instant("cache.eviction", "bytes",
                 static_cast<double>(victim->bytes));
  }
}

SessionCache::Stats SessionCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  return s;
}

std::size_t SessionCache::size() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    n += shard.entries.size();
  }
  return n;
}

void SessionCache::clear() {
  std::lock_guard evict_lock(evict_mutex_);
  for (Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    for (const auto& e : shard.entries) {
      if (e->accounted) {
        bytes_.fetch_sub(e->bytes, std::memory_order_relaxed);
      }
    }
    shard.entries.clear();
  }
}

}  // namespace ddmgnn::core
