#include "core/hybrid_solver.hpp"

#include <memory>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "core/gnn_subdomain_solver.hpp"
#include "partition/decomposition.hpp"
#include "precond/asm_precond.hpp"
#include "precond/ic0_precond.hpp"
#include "precond/preconditioner.hpp"

namespace ddmgnn::core {

const char* precond_kind_name(PrecondKind kind) {
  switch (kind) {
    case PrecondKind::kNone: return "none";
    case PrecondKind::kJacobi: return "jacobi";
    case PrecondKind::kIc0: return "ic0";
    case PrecondKind::kDdmLu: return "ddm-lu";
    case PrecondKind::kDdmGnn: return "ddm-gnn";
    case PrecondKind::kDdmLu1: return "ddm-lu-1level";
    case PrecondKind::kDdmGnn1: return "ddm-gnn-1level";
  }
  return "?";
}

HybridReport solve_poisson(const mesh::Mesh& m,
                           const fem::PoissonProblem& prob,
                           const HybridConfig& cfg) {
  HybridReport report;
  Timer setup_timer;

  const bool is_ddm = cfg.preconditioner == PrecondKind::kDdmLu ||
                      cfg.preconditioner == PrecondKind::kDdmGnn ||
                      cfg.preconditioner == PrecondKind::kDdmLu1 ||
                      cfg.preconditioner == PrecondKind::kDdmGnn1;
  const bool is_gnn = cfg.preconditioner == PrecondKind::kDdmGnn ||
                      cfg.preconditioner == PrecondKind::kDdmGnn1;
  const bool two_level = cfg.preconditioner == PrecondKind::kDdmLu ||
                         cfg.preconditioner == PrecondKind::kDdmGnn;

  std::optional<partition::Decomposition> dec;
  std::unique_ptr<precond::Preconditioner> m_inv;
  switch (cfg.preconditioner) {
    case PrecondKind::kNone:
      m_inv = std::make_unique<precond::IdentityPreconditioner>();
      break;
    case PrecondKind::kJacobi:
      m_inv = std::make_unique<precond::JacobiPreconditioner>(
          prob.A.diagonal());
      break;
    case PrecondKind::kIc0:
      m_inv = std::make_unique<precond::Ic0Preconditioner>(prob.A);
      break;
    default: {
      DDMGNN_CHECK(!is_gnn || cfg.model != nullptr,
                   "solve_poisson: DDM-GNN requires a trained model");
      dec = partition::decompose_target_size(m.adj_ptr(), m.adj(),
                                             cfg.subdomain_target_nodes,
                                             cfg.overlap, cfg.seed);
      report.num_subdomains = dec->num_parts;
      std::unique_ptr<precond::SubdomainSolver> local;
      if (is_gnn) {
        GnnSubdomainSolver::Options gnn_opts;
        gnn_opts.refinement_steps = cfg.gnn_refinement_steps;
        gnn_opts.normalize_input = cfg.gnn_normalize;
        local = std::make_unique<GnnSubdomainSolver>(*cfg.model, m,
                                                     prob.dirichlet, gnn_opts);
      } else {
        local = std::make_unique<precond::CholeskySubdomainSolver>();
      }
      m_inv = std::make_unique<precond::AdditiveSchwarz>(
          prob.A, *dec, std::move(local),
          precond::AdditiveSchwarz::Config{two_level});
      break;
    }
  }
  (void)is_ddm;
  report.setup_seconds = setup_timer.seconds();

  solver::SolveOptions opts;
  opts.rel_tol = cfg.rel_tol;
  opts.max_iterations = cfg.max_iterations;
  opts.track_history = cfg.track_history;
  report.solution.assign(prob.b.size(), 0.0);
  if (cfg.preconditioner == PrecondKind::kNone) {
    report.result =
        solver::conjugate_gradient(prob.A, prob.b, report.solution, opts);
  } else if (cfg.flexible) {
    report.result =
        solver::flexible_pcg(prob.A, *m_inv, prob.b, report.solution, opts);
  } else {
    report.result = solver::pcg(prob.A, *m_inv, prob.b, report.solution, opts);
  }
  return report;
}

}  // namespace ddmgnn::core
