#include "core/hybrid_solver.hpp"

namespace ddmgnn::core {

HybridReport solve_poisson(const mesh::Mesh& m,
                           const fem::PoissonProblem& prob,
                           const HybridConfig& cfg) {
  SolverSession session;
  session.setup(m, prob, cfg);
  HybridReport report;
  report.num_subdomains = session.num_subdomains();
  report.setup_seconds = session.setup_seconds();
  report.solution.assign(prob.b.size(), 0.0);
  report.result = session.solve(prob.b, report.solution);
  return report;
}

}  // namespace ddmgnn::core
