// The GNN local solver that turns two-level ASM into the paper's DDM-GNN
// preconditioner (§III-A). For each subdomain i, per preconditioner
// application:
//
//   1. norm_i = ‖R_i r‖;  if 0, the correction is 0            (trivial case)
//   2. r̃_i = DSSθ(G_i) with G_i = (Ω_h,i, R_i r / norm_i)      (Eq. 14/15/17)
//   3. z_i = norm_i · r̃_i                                      (Eq. 16 local)
//
// The normalization is the paper's fix for vanishing residual inputs: as PCG
// converges, r → 0, and an un-normalized GNN would collapse to the zero
// correction, stalling the solver. The ablation bench switches it off.
//
// All subdomains are solved concurrently (OpenMP over graphs — the CPU
// analogue of the paper's batched GPU inference).
#pragma once

#include <memory>
#include <vector>

#include "gnn/batch.hpp"
#include "gnn/dss_model.hpp"
#include "gnn/graph.hpp"
#include "mesh/mesh.hpp"
#include "precond/subdomain_solver.hpp"

namespace ddmgnn::core {

class GnnSubdomainSolver final : public precond::SubdomainSolver {
 public:
  struct Options {
    bool normalize_input = true;  // the §III-A normalization (ablatable)
    double zero_threshold = 1e-300;
    /// Extra residual-correction passes per local solve:
    ///   v ← v + ‖res‖ · DSSθ(G_i(res/‖res‖)),  res = r_i − A_i v.
    /// 0 reproduces the paper exactly (one inference per subdomain per PCG
    /// iteration). Each step multiplies local accuracy at one extra
    /// inference — the repo's compensation for its smaller CPU training
    /// budget (see DESIGN.md); the ablation bench quantifies it.
    int refinement_steps = 0;
  };

  /// `model` must outlive the solver. `m` supplies node geometry and the
  /// mesh adjacency (subdomain message graphs follow the sub-mesh, Eq. 17);
  /// `dirichlet` the global Dirichlet flags.
  GnnSubdomainSolver(const gnn::DssModel& model, const mesh::Mesh& m,
                     std::span<const std::uint8_t> dirichlet, Options options);
  GnnSubdomainSolver(const gnn::DssModel& model, const mesh::Mesh& m,
                     std::span<const std::uint8_t> dirichlet)
      : GnnSubdomainSolver(model, m, dirichlet, Options{}) {}
  /// Geometry-generic form for the matrix-first setup path: node positions
  /// (mesh points or synthetic spectral coordinates) and an explicit
  /// message-graph pattern (unit CSR; subdomain graphs are its principal
  /// submatrices) instead of a mesh. The mesh constructor delegates here
  /// with (points, mesh adjacency), so both paths share one code path.
  GnnSubdomainSolver(const gnn::DssModel& model,
                     std::vector<mesh::Point2> coords,
                     std::vector<std::uint8_t> dirichlet,
                     la::CsrMatrix message_pattern, Options options);

  void setup(std::vector<la::CsrMatrix> local_matrices,
             const partition::Decomposition& dec) override;
  void solve_all(const std::vector<std::vector<double>>& r_loc,
                 std::vector<std::vector<double>>& z_loc) const override;
  /// Multi-RHS form (paper Eq. 14 across BOTH axes): the K×s local problems
  /// of one block-preconditioner application are merged — disjoint-union
  /// batching via gnn::batch_samples — into a small number of DSS inferences
  /// (shards, sized by a node budget and the thread count). Merged
  /// topologies are cached per column count and reused across applications;
  /// only the rhs channel is rewritten. Per (subdomain, column) task the
  /// normalization / refinement semantics match solve_all bit-for-bit.
  void solve_all_block(const std::vector<la::MultiVector>& r_loc,
                       std::vector<la::MultiVector>& z_loc) const override;
  std::string name() const override { return "gnn"; }
  /// A neural local solve is not a symmetric linear map.
  bool is_symmetric() const override { return false; }

  const std::vector<std::shared_ptr<gnn::GraphTopology>>& topologies() const {
    return topologies_;
  }
  /// Per-topology attr-projection caches (empty entries when the model runs
  /// the reference inference path). Built at setup() against the model's
  /// then-current parameters — the solver assumes a frozen trained model.
  const std::vector<std::shared_ptr<const gnn::DssEdgeCache>>& edge_caches()
      const {
    return edge_caches_;
  }

 private:
  struct ShardTask {
    la::Index part;    // subdomain index
    la::Index column;  // RHS column index
    la::Index slot;    // position inside the shard's merged sample
  };
  struct Shard {
    std::vector<ShardTask> tasks;
    gnn::BatchedSample batch;  // merged topology cached, rhs rewritten
    std::shared_ptr<const gnn::DssEdgeCache> cache;  // merged attr projections
  };

  /// (Re)build the shard plan for `s` RHS columns. Called lazily from
  /// solve_all_block whenever the column count changes (first call,
  /// deflation). Deliberately a single-slot cache: plans hold merged
  /// topology copies, so memoizing one per column count would cost
  /// O(s²/2) topology copies of memory, while a rebuild is memcpy-scale —
  /// bounded by the number of deflation events per solve and measured in
  /// the low milliseconds against seconds of inference.
  void build_shards(la::Index s) const;

  const gnn::DssModel* model_;
  std::vector<mesh::Point2> coords_;
  std::vector<std::uint8_t> dirichlet_;
  la::CsrMatrix mesh_pattern_;  // global message graph (unit values):
                                // mesh adjacency or matrix adjacency
  Options options_;
  std::vector<std::shared_ptr<gnn::GraphTopology>> topologies_;
  std::vector<std::shared_ptr<const gnn::DssEdgeCache>> edge_caches_;
  mutable std::vector<Shard> shards_;
  mutable la::Index shard_cols_ = -1;
};

}  // namespace ddmgnn::core
