// The GNN local solver that turns two-level ASM into the paper's DDM-GNN
// preconditioner (§III-A). For each subdomain i, per preconditioner
// application:
//
//   1. norm_i = ‖R_i r‖;  if 0, the correction is 0            (trivial case)
//   2. r̃_i = DSSθ(G_i) with G_i = (Ω_h,i, R_i r / norm_i)      (Eq. 14/15/17)
//   3. z_i = norm_i · r̃_i                                      (Eq. 16 local)
//
// The normalization is the paper's fix for vanishing residual inputs: as PCG
// converges, r → 0, and an un-normalized GNN would collapse to the zero
// correction, stalling the solver. The ablation bench switches it off.
//
// All subdomains are solved concurrently (OpenMP over graphs — the CPU
// analogue of the paper's batched GPU inference), and a set-up solver is
// additionally safe for many *client* threads at once: inference scratch
// lives in the caller-owned Workspace (one DssWorkspace per OpenMP lane per
// caller — never shared across solver instances or client threads), and the
// merged-shard plans of the block path are immutable after construction,
// published through a shared-mutex cache keyed by column count.
#pragma once

#include <memory>
#include <shared_mutex>
#include <vector>

#include "gnn/batch.hpp"
#include "gnn/dss_model.hpp"
#include "gnn/graph.hpp"
#include "la/skyline_cholesky.hpp"
#include "mesh/mesh.hpp"
#include "precond/subdomain_solver.hpp"

namespace ddmgnn::core {

class GnnSubdomainSolver final : public precond::SubdomainSolver {
 public:
  struct Options {
    bool normalize_input = true;  // the §III-A normalization (ablatable)
    double zero_threshold = 1e-300;
    /// Extra residual-correction passes per local solve:
    ///   v ← v + ‖res‖ · DSSθ(G_i(res/‖res‖)),  res = r_i − A_i v.
    /// 0 reproduces the paper exactly (one inference per subdomain per PCG
    /// iteration). Each step multiplies local accuracy at one extra
    /// inference — the repo's compensation for its smaller CPU training
    /// budget (see DESIGN.md); the ablation bench quantifies it.
    int refinement_steps = 0;
    /// Refine-until-contractive setup (the served-configuration fix): probe
    /// each subdomain at setup() with a few deterministic residuals, run the
    /// refinement loop on the probe, and keep the smallest pass count whose
    /// measured contraction ‖r − A_i z‖/‖r‖ reaches contraction_target. A
    /// subdomain still above the target after max_refinement_steps extra
    /// passes is non-contractive for this model and falls back to an exact
    /// skyline-Cholesky local solve. refinement_steps then acts as the
    /// per-subdomain floor.
    bool adaptive_refinement = false;
    double contraction_target = 0.25;
    int max_refinement_steps = 3;
    int probes = 2;
    /// Within the adaptive setup, also fall back to the exact solve when a
    /// deterministic flop model says the refined GNN apply costs more than
    /// cost_margin × the Cholesky sweeps. A contractive-but-uneconomic
    /// subdomain is a real serving failure mode on CPU: at small subdomain
    /// sizes the envelope sweep is both cheaper AND exact, and the GNN local
    /// solve only pays off where batched inference amortizes (large
    /// subdomains, GPU-class backends). Set false to force the GNN apply on
    /// every contractive subdomain regardless of cost (ablations, kernel
    /// benchmarking).
    bool cost_aware_fallback = true;
    /// GNN must be predicted MORE than this many times costlier than the
    /// exact sweeps before cost alone triggers the fallback — a wide margin,
    /// so only overwhelming mismatches (100×+ is typical at Ns≈350 on CPU)
    /// flip, never modeling noise.
    double fallback_cost_margin = 8.0;
    /// Run the Cholesky-fallback sweeps on an fp32 factor copy — the local
    /// piece of a mixed-precision apply (pair with SolveOptions::precond_fp32;
    /// the outer Krylov's flexibility/true-residual guard absorbs the
    /// rounding).
    bool fp32_fallback = false;
  };

  /// `model` must outlive the solver. `m` supplies node geometry and the
  /// mesh adjacency (subdomain message graphs follow the sub-mesh, Eq. 17);
  /// `dirichlet` the global Dirichlet flags.
  GnnSubdomainSolver(const gnn::DssModel& model, const mesh::Mesh& m,
                     std::span<const std::uint8_t> dirichlet, Options options);
  GnnSubdomainSolver(const gnn::DssModel& model, const mesh::Mesh& m,
                     std::span<const std::uint8_t> dirichlet)
      : GnnSubdomainSolver(model, m, dirichlet, Options{}) {}
  /// Geometry-generic form for the matrix-first setup path: node positions
  /// (mesh points or synthetic spectral coordinates) and an explicit
  /// message-graph pattern (unit CSR; subdomain graphs are its principal
  /// submatrices) instead of a mesh. The mesh constructor delegates here
  /// with (points, mesh adjacency), so both paths share one code path.
  GnnSubdomainSolver(const gnn::DssModel& model,
                     std::vector<mesh::Point2> coords,
                     std::vector<std::uint8_t> dirichlet,
                     la::CsrMatrix message_pattern, Options options);

  void setup(std::vector<la::CsrMatrix> local_matrices,
             const partition::Decomposition& dec) override;

  /// Per-caller scratch: one DssWorkspace (plus merged-rhs/output buffers)
  /// per OpenMP lane of this caller's solve. Replaces the former
  /// function-local `static thread_local` workspaces, which were shared by
  /// every solver instance on a thread and never freed.
  std::unique_ptr<Workspace> make_workspace() const override;
  std::size_t workspace_bytes() const override;

  void solve_all(const std::vector<std::vector<double>>& r_loc,
                 std::vector<std::vector<double>>& z_loc,
                 Workspace* ws) const override;
  /// Multi-RHS form (paper Eq. 14 across BOTH axes): the K×s local problems
  /// of one block-preconditioner application are merged — disjoint-union
  /// batching via gnn::batch_samples — into a small number of DSS inferences
  /// (shards, sized by a node budget and the thread count). Merged
  /// topologies are cached per column count and shared read-only across
  /// concurrent callers; the rhs channel is written into workspace-owned
  /// buffers. Per (subdomain, column) task the normalization / refinement
  /// semantics match solve_all bit-for-bit.
  void solve_all_block(const std::vector<la::MultiVector>& r_loc,
                       std::vector<la::MultiVector>& z_loc,
                       Workspace* ws) const override;
  std::string name() const override { return "gnn"; }
  /// A neural local solve is not a symmetric linear map.
  bool is_symmetric() const override { return false; }

  const std::vector<std::shared_ptr<gnn::GraphTopology>>& topologies() const {
    return topologies_;
  }
  /// Per-topology attr-projection caches (empty entries when the model runs
  /// the reference inference path). Built at setup() against the model's
  /// then-current parameters — the solver assumes a frozen trained model.
  const std::vector<std::shared_ptr<const gnn::DssEdgeCache>>& edge_caches()
      const {
    return edge_caches_;
  }
  /// Bytes retained beyond the topologies/edge caches: the currently cached
  /// merged-shard plans of the block path (SolverSession::memory_bytes adds
  /// this so the SessionCache byte budget tracks what the solver holds).
  std::size_t plan_cache_bytes() const;

  /// Adaptive-setup outcome. refinement_schedule()[i] is subdomain i's chosen
  /// pass count (ignore entries with a fallback); empty when
  /// adaptive_refinement is off. fallback_count() is the number of
  /// subdomains served by the exact Cholesky fallback.
  const std::vector<int>& refinement_schedule() const { return refine_steps_; }
  la::Index fallback_count() const { return fallback_count_; }

 private:
  struct ShardTask {
    la::Index part;    // subdomain index
    la::Index column;  // RHS column index
    la::Index slot;    // position inside the shard's merged sample
  };
  /// Immutable after construction: the merged sample's rhs channel is a
  /// zero-filled template that solve_all_block never writes (per-call rhs
  /// lives in the caller's workspace).
  struct Shard {
    std::vector<ShardTask> tasks;
    gnn::BatchedSample batch;
    std::shared_ptr<const gnn::DssEdgeCache> cache;  // merged attr projections
  };
  struct ShardPlan {
    std::vector<Shard> shards;
    std::size_t bytes = 0;  // rough retained footprint of the merged copies
  };

  /// Fetch (or build, under the writer lock) the shard plan for `s` RHS
  /// columns. Plans are immutable once published; concurrent solves at the
  /// same column count share one plan read-only, and a returned shared_ptr
  /// keeps a plan alive across eviction. The cache holds a handful of column
  /// counts (deflation shrinks s during a solve; repeated solve_many calls
  /// revisit the same counts) — beyond the cap the smallest-column plan is
  /// dropped, since small merges are the cheapest to rebuild.
  std::shared_ptr<const ShardPlan> plan_for(la::Index s) const;
  ShardPlan build_shards(la::Index s) const;

  const gnn::DssModel* model_;
  std::vector<mesh::Point2> coords_;
  std::vector<std::uint8_t> dirichlet_;
  la::CsrMatrix mesh_pattern_;  // global message graph (unit values):
                                // mesh adjacency or matrix adjacency
  Options options_;
  std::vector<std::shared_ptr<gnn::GraphTopology>> topologies_;
  std::vector<std::shared_ptr<const gnn::DssEdgeCache>> edge_caches_;
  /// Adaptive-setup state (empty when adaptive_refinement is off): chosen
  /// per-subdomain pass counts and, for non-contractive subdomains, the
  /// exact Cholesky fallback factors. Immutable after setup().
  std::vector<int> refine_steps_;
  std::vector<std::unique_ptr<la::SkylineCholesky>> fallback_;
  la::Index fallback_count_ = 0;
  mutable std::shared_mutex plans_mutex_;
  mutable std::vector<std::pair<la::Index, std::shared_ptr<const ShardPlan>>>
      plans_;  // guarded by plans_mutex_
};

}  // namespace ddmgnn::core
