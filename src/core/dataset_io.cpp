#include "core/dataset_io.hpp"

#include <cstdint>
#include <fstream>
#include <map>

#include "common/error.hpp"

namespace ddmgnn::core {

namespace {

constexpr std::uint32_t kMagic = 0x44534454;  // "DSDT"
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool read_pod(std::ifstream& in, T& v) {
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  return in.good();
}

template <typename T>
void write_vec(std::ofstream& out, const std::vector<T>& v) {
  write_pod(out, static_cast<std::uint64_t>(v.size()));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
bool read_vec(std::ifstream& in, std::vector<T>& v) {
  std::uint64_t n = 0;
  if (!read_pod(in, n)) return false;
  if (n > (1ull << 32)) return false;  // sanity bound against corrupt files
  v.resize(n);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(T)));
  return in.good();
}

void write_topology(std::ofstream& out, const gnn::GraphTopology& t) {
  write_pod(out, t.n);
  write_vec(out, t.recv);
  write_vec(out, t.send);
  write_vec(out, t.attr);
  write_vec(out, t.dirichlet);
  write_pod(out, t.a_local.rows());
  std::vector<la::Offset> rp(t.a_local.row_ptr().begin(),
                             t.a_local.row_ptr().end());
  std::vector<la::Index> ci(t.a_local.col_idx().begin(),
                            t.a_local.col_idx().end());
  std::vector<double> va(t.a_local.values().begin(),
                         t.a_local.values().end());
  write_vec(out, rp);
  write_vec(out, ci);
  write_vec(out, va);
}

std::shared_ptr<gnn::GraphTopology> read_topology(std::ifstream& in) {
  auto t = std::make_shared<gnn::GraphTopology>();
  if (!read_pod(in, t->n)) return nullptr;
  if (!read_vec(in, t->recv) || !read_vec(in, t->send) ||
      !read_vec(in, t->attr) || !read_vec(in, t->dirichlet)) {
    return nullptr;
  }
  la::Index rows = 0;
  if (!read_pod(in, rows)) return nullptr;
  std::vector<la::Offset> rp;
  std::vector<la::Index> ci;
  std::vector<double> va;
  if (!read_vec(in, rp) || !read_vec(in, ci) || !read_vec(in, va)) {
    return nullptr;
  }
  try {
    t->a_local = la::CsrMatrix(rows, rows, std::move(rp), std::move(ci),
                               std::move(va));
    gnn::finalize_topology(*t);
  } catch (const ContractError&) {
    return nullptr;
  }
  return t;
}

void write_split(std::ofstream& out,
                 const std::vector<gnn::GraphSample>& split,
                 const std::map<const gnn::GraphTopology*, std::uint32_t>& ids) {
  write_pod(out, static_cast<std::uint64_t>(split.size()));
  for (const auto& s : split) {
    write_pod(out, ids.at(s.topo.get()));
    write_vec(out, s.rhs);
  }
}

bool read_split(std::ifstream& in,
                const std::vector<std::shared_ptr<gnn::GraphTopology>>& topos,
                std::vector<gnn::GraphSample>& split) {
  std::uint64_t n = 0;
  if (!read_pod(in, n)) return false;
  split.resize(n);
  for (auto& s : split) {
    std::uint32_t id = 0;
    if (!read_pod(in, id) || id >= topos.size()) return false;
    s.topo = topos[id];
    if (!read_vec(in, s.rhs)) return false;
    if (s.rhs.size() != static_cast<std::size_t>(s.topo->n)) return false;
  }
  return true;
}

}  // namespace

void save_dataset(const DssDataset& data, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  DDMGNN_CHECK(out.good(), "save_dataset: cannot open " + path);
  write_pod(out, kMagic);
  write_pod(out, kVersion);
  // Deduplicate topologies across all splits.
  std::map<const gnn::GraphTopology*, std::uint32_t> ids;
  std::vector<const gnn::GraphTopology*> order;
  for (const auto* split : {&data.train, &data.validation, &data.test}) {
    for (const auto& s : *split) {
      if (ids.emplace(s.topo.get(), static_cast<std::uint32_t>(order.size()))
              .second) {
        order.push_back(s.topo.get());
      }
    }
  }
  write_pod(out, static_cast<std::uint64_t>(order.size()));
  for (const auto* t : order) write_topology(out, *t);
  write_split(out, data.train, ids);
  write_split(out, data.validation, ids);
  write_split(out, data.test, ids);
  DDMGNN_CHECK(out.good(), "save_dataset: write failed for " + path);
}

std::optional<DssDataset> load_dataset(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return std::nullopt;
  std::uint32_t magic = 0, version = 0;
  if (!read_pod(in, magic) || !read_pod(in, version) || magic != kMagic ||
      version != kVersion) {
    return std::nullopt;
  }
  std::uint64_t num_topos = 0;
  if (!read_pod(in, num_topos) || num_topos > (1u << 24)) return std::nullopt;
  std::vector<std::shared_ptr<gnn::GraphTopology>> topos(num_topos);
  for (auto& t : topos) {
    t = read_topology(in);
    if (!t) return std::nullopt;
  }
  DssDataset data;
  if (!read_split(in, topos, data.train) ||
      !read_split(in, topos, data.validation) ||
      !read_split(in, topos, data.test)) {
    return std::nullopt;
  }
  return data;
}

}  // namespace ddmgnn::core
