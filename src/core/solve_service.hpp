// Streaming solve service: an asynchronous admission layer that turns
// concurrent single-RHS traffic into block solves.
//
// The serving story before this layer was call-and-wait: every client thread
// paid a full scalar Krylov solve even when dozens of requests against the
// same prepared operator were in flight simultaneously. But the repo already
// owns a faster path for exactly that shape — solve_many's block engine runs
// ONE SpMM and ONE fused preconditioner application (for DDM-GNN, one
// disjoint-union DSS inference across all K×s local problems) per iteration,
// and the shared search space of block flexible PCG converges each column in
// fewer iterations than solving it alone. SolveService routes streaming
// traffic through that path automatically:
//
//   core::SessionCache cache(1u << 30);
//   core::SolveService svc(cache, {.num_workers = 2, .max_batch = 16});
//   const auto op = svc.register_operator(A, cfg);      // prepared via cache
//   auto fut = svc.submit(op, std::move(rhs));          // returns immediately
//   ...
//   core::SolveService::Reply r = fut->get();           // per-RHS result
//
// Dynamic batching: each operator owns a FIFO admission queue. Workers close
// an open window — and execute it as one solve_many block solve — when it
// reaches cfg.max_batch columns OR when its oldest request has waited its
// window wait, whichever comes first. The window wait is cfg.max_wait for
// ordinary requests; a request carrying a QoS deadline shrinks it to at most
// half its deadline budget (effective_window_wait), trading batch
// amortization for admission latency exactly where a client paid for it.
// Futures complete individually, each with its own SolveResult and solution.
//
// Backpressure: queues are bounded (cfg.queue_capacity per operator). At
// capacity, submit() either blocks until space frees or rejects immediately
// (returns nullopt) — caller-selectable per submission, defaulted by the
// service config. Shutdown drains: destruction (or shutdown()) stops
// admission, flushes every queued request through the workers, and joins —
// no admitted future is ever abandoned.
//
// Instrumentation (obs::, active when the corresponding flag is on):
//   service.submitted_total / completed_total / rejected_total   counters
//   service.queue_depth                                          gauge
//   service.batch_size                                           histogram
//   service.queue_seconds   (admission → window execution start) histogram
//   service.window          span per executed window (batch/iterations args)
// Always-on aggregate Stats (atomics, snapshot via stats()) back the bench
// and the tests without requiring the metrics flag.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "core/session_cache.hpp"

namespace ddmgnn::core {

/// What submit() does when the target operator's queue is at capacity.
enum class AdmissionPolicy {
  kBlock,   // wait until the queue has space (or the service shuts down)
  kReject,  // give up immediately; submit() returns nullopt
};

struct ServiceConfig {
  /// Worker threads executing windows. Workers are the solve parallelism
  /// axis (a window runs on one worker); independent windows — same or
  /// different operators — run concurrently, which prepared sessions
  /// support by contract.
  int num_workers = 2;
  /// A window closes when it holds this many right-hand sides...
  int max_batch = 16;
  /// ...or when its oldest request has waited this long (QoS deadlines can
  /// shrink the wait per request; see effective_window_wait).
  std::chrono::microseconds max_wait{2000};
  /// Bound on queued (admitted, not yet executing) requests per operator.
  std::size_t queue_capacity = 256;
  /// Default admission policy at capacity; SubmitOptions can override.
  AdmissionPolicy on_full = AdmissionPolicy::kBlock;
};

struct SubmitOptions {
  /// QoS deadline budget for this request, measured from submit(). Zero
  /// means none. The service does not abort late solves; the deadline's
  /// effect is window formation — a deadlined request caps its window's
  /// wait at half the budget, keeping the other half for the solve.
  std::chrono::microseconds deadline{0};
  /// Per-submission override of ServiceConfig::on_full.
  std::optional<AdmissionPolicy> on_full;
  /// Warm-start guess (copied at submit; size n or empty). Re-serving a
  /// client whose operator and right-hand side drift slowly turns repeat
  /// solves into a handful of iterations.
  std::span<const double> x0;
};

/// Window-formation rule, exposed for direct testing: how long a request may
/// sit in an open window. No deadline → max_wait; a deadline caps the wait
/// at half the budget (never negative), so tight deadlines close windows
/// early — the QoS "deadline → smaller window" tradeoff.
std::chrono::microseconds effective_window_wait(
    std::chrono::microseconds max_wait, std::chrono::microseconds deadline);

class SolveService {
 public:
  /// Names one registered operator (a prepared session + its admission
  /// queue). Keys are dense indices, stable for the service lifetime.
  using OperatorKey = std::size_t;

  /// What a completed future yields: the per-RHS solve outcome, the
  /// solution, and the request's trip through the service.
  struct Reply {
    solver::SolveResult result;
    std::vector<double> x;
    /// Admission → window execution start (the batching wait).
    double queue_seconds = 0.0;
    /// Columns in the window that served this request (1 = unbatched).
    int batch_columns = 1;
    /// Completion stamp on the steady clock — set just before the future is
    /// fulfilled, so open-loop benches can measure scheduled-arrival →
    /// completion latency without coordinated omission.
    std::chrono::steady_clock::time_point completed_at;
  };

  /// Always-on aggregate counters (relaxed atomics; stats() snapshots).
  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t completed = 0;
    /// Executed windows and the columns they carried: columns/windows is the
    /// mean batch size, the direct evidence that window-merge happened.
    std::uint64_t windows = 0;
    std::uint64_t columns = 0;
    std::uint64_t max_window = 0;
    /// Preconditioner applications across all windows: block iterations for
    /// batched windows (one fused apply per block iteration, however many
    /// columns ride it) plus scalar iterations for singleton windows and
    /// per-column fallbacks. applies/completed is the per-solve apply cost
    /// batching amortizes.
    std::uint64_t precond_applies = 0;
  };

  /// The cache prepares and owns the sessions; it must outlive the service.
  SolveService(SessionCache& cache, ServiceConfig cfg = {});
  ~SolveService();  // shutdown(): drain admitted work, join workers
  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// Prepare (or fetch, via the cache) the session for (A, cfg, opts) and
  /// return the key submit() targets. Registering an operator the cache
  /// already holds reuses its session, and re-registering a session this
  /// service already queues for returns the SAME key — concurrent clients
  /// of one operator merge into one batching queue, which is the point.
  OperatorKey register_operator(const la::CsrMatrix& A,
                                const HybridConfig& cfg,
                                const AlgebraicOptions& opts = {});
  /// Mesh-keyed form of the same.
  OperatorKey register_operator(const mesh::Mesh& m,
                                const fem::PoissonProblem& prob,
                                const HybridConfig& cfg);

  /// Enqueue one right-hand side (moved in) for `op`. Returns a future that
  /// completes when its window has been solved, or nullopt when the queue
  /// was full under AdmissionPolicy::kReject (also when the service is
  /// shutting down while a blocked submit waits). Throws ContractError for
  /// unknown keys, mis-sized rhs/x0, or submit after shutdown().
  std::optional<std::future<Reply>> submit(OperatorKey op,
                                           std::vector<double> rhs,
                                           const SubmitOptions& qos = {});

  /// Stop admitting, execute every already-admitted request, join the
  /// workers. Idempotent; called by the destructor.
  void shutdown();

  /// Suspend window formation: admitted requests queue up but no window
  /// closes until resume(). Lets tests (and maintenance windows) compose
  /// batches deterministically; pausing never rejects admission.
  void pause();
  void resume();

  Stats stats() const;
  /// Queued-but-not-yet-executing requests across all operators.
  std::size_t queue_depth() const;
  const ServiceConfig& config() const { return cfg_; }

 private:
  struct Request {
    std::vector<double> rhs;
    std::vector<double> x0;  // empty = zero start
    std::promise<Reply> promise;
    std::chrono::steady_clock::time_point enqueued;
    /// enqueued + effective_window_wait(...): the window holding this
    /// request must close by then.
    std::chrono::steady_clock::time_point close_by;
  };

  struct OperatorState {
    std::shared_ptr<SolverSession> session;
    std::deque<Request> queue;
  };

  OperatorKey key_for_session(std::shared_ptr<SolverSession> session);
  void worker_loop();
  /// Pops the ready window with the most urgent close_by under mu_;
  /// nullopt when nothing is due yet (deadline_out = when to re-check).
  std::optional<std::pair<std::size_t, std::vector<Request>>> claim_window(
      std::chrono::steady_clock::time_point now,
      std::optional<std::chrono::steady_clock::time_point>& deadline_out);
  void execute_window(OperatorState& op, std::vector<Request> batch);

  SessionCache& cache_;
  const ServiceConfig cfg_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers: new work / shutdown
  std::condition_variable space_cv_;  // blocked submitters: space freed
  std::vector<std::unique_ptr<OperatorState>> operators_;
  bool stopping_ = false;
  bool paused_ = false;
  std::size_t queued_ = 0;  // across all operators

  std::vector<std::thread> workers_;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> windows_{0};
  std::atomic<std::uint64_t> columns_{0};
  std::atomic<std::uint64_t> max_window_{0};
  std::atomic<std::uint64_t> precond_applies_{0};
};

}  // namespace ddmgnn::core
