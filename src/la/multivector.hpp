// Block vector for multi-RHS solves: s right-hand sides / iterates stored
// column-major (each column contiguous, column j at data()[j*rows()]). This
// is the currency of the batched solve engine — CsrMatrix::apply_many runs
// one SpMM over all columns, Preconditioner::apply_many hands whole blocks
// to the subdomain solvers (one batched DSS inference per application for
// DDM-GNN, Eq. 14), and solver/block_krylov advances every column per
// Krylov iteration.
//
// The fused kernels below intentionally reuse the scalar vector_ops kernels
// column-by-column so a lockstep block iteration reproduces the scalar
// iteration bit-for-bit (the block-PCG-matches-PCG test relies on this).
#pragma once

#include <span>
#include <vector>

#include "common/error.hpp"
#include "la/csr.hpp"
#include "la/vector_ops.hpp"

namespace ddmgnn::la {

class MultiVector {
 public:
  MultiVector() = default;
  MultiVector(Index rows, Index cols, double init = 0.0)
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows) * cols, init) {}

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }

  /// Reshape, preserving nothing (contents unspecified afterwards).
  void resize(Index rows, Index cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(static_cast<std::size_t>(rows) * cols);
  }

  std::span<double> col(Index j) {
    return {data_.data() + static_cast<std::size_t>(j) * rows_,
            static_cast<std::size_t>(rows_)};
  }
  std::span<const double> col(Index j) const {
    return {data_.data() + static_cast<std::size_t>(j) * rows_,
            static_cast<std::size_t>(rows_)};
  }

  std::span<double> data() { return data_; }
  std::span<const double> data() const { return data_; }

  double& at(Index i, Index j) {
    return data_[static_cast<std::size_t>(j) * rows_ + i];
  }
  double at(Index i, Index j) const {
    return data_[static_cast<std::size_t>(j) * rows_ + i];
  }

  void fill(double v) { la::fill(data_, v); }

  /// Pack a list of equal-length vectors as columns.
  static MultiVector from_columns(std::span<const std::vector<double>> cols);

  /// Drop every column not listed in `keep` (strictly increasing indices);
  /// kept columns are compacted left in order. This is the deflation
  /// primitive: converged RHS leave the working block.
  void keep_columns(std::span<const Index> keep);

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<double> data_;
};

/// out[j] = <x_j, y_j> for every column pair.
void dot_columns(const MultiVector& x, const MultiVector& y,
                 std::span<double> out);

/// out[j] = ||x_j||₂.
void norm2_columns(const MultiVector& x, std::span<double> out);

/// y_j += a[j] · x_j (the fused multi-RHS axpy).
void axpy_columns(std::span<const double> a, const MultiVector& x,
                  MultiVector& y);

/// y_j = x_j + a[j] · y_j (the fused p-update of block CG).
void xpay_columns(std::span<const double> a, const MultiVector& x,
                  MultiVector& y);

/// dst = src (shapes must match).
void copy_columns(const MultiVector& src, MultiVector& dst);

}  // namespace ddmgnn::la
