#include "la/spgemm.hpp"

#include <algorithm>
#include <cstddef>

#include "common/error.hpp"
#include "common/parallel.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace ddmgnn::la {

namespace {

// One worker's scratch for Gustavson row merges: `mark[c]` holds the stamp of
// the last row that touched column c, `acc[c]` its running sum, `cols` the
// touched columns in first-touch order. Reset is O(row nnz), not O(n).
struct RowMergeScratch {
  std::vector<Index> mark;
  std::vector<double> acc;
  std::vector<Index> cols;

  explicit RowMergeScratch(Index width)
      : mark(static_cast<std::size_t>(width), -1),
        acc(static_cast<std::size_t>(width), 0.0) {}
};

// Merge row i of A·B into scratch; returns the touched columns (unsorted,
// first-touch order) with sums in scratch.acc. Accumulation order is the
// fixed (k, j) traversal order — independent of the thread that runs it.
void merge_row(const CsrMatrix& a, const CsrMatrix& b, Index i,
               RowMergeScratch& s) {
  s.cols.clear();
  const auto a_ptr = a.row_ptr();
  const auto a_col = a.col_idx();
  const auto a_val = a.values();
  const auto b_ptr = b.row_ptr();
  const auto b_col = b.col_idx();
  const auto b_val = b.values();
  for (Offset k = a_ptr[i]; k < a_ptr[i + 1]; ++k) {
    const Index mid = a_col[k];
    const double av = a_val[k];
    for (Offset j = b_ptr[mid]; j < b_ptr[mid + 1]; ++j) {
      const Index c = b_col[j];
      if (s.mark[c] != i) {
        s.mark[c] = i;
        s.acc[c] = av * b_val[j];
        s.cols.push_back(c);
      } else {
        s.acc[c] += av * b_val[j];
      }
    }
  }
}

template <typename RowBody>
void for_each_row(Index rows, Index out_cols, const RowBody& body) {
  const int threads = ddmgnn::num_threads();
#ifdef _OPENMP
  const bool serial = rows < 256 || threads == 1 || omp_in_parallel();
#else
  const bool serial = true;
#endif
  if (serial) {
    RowMergeScratch s(out_cols);
    for (Index i = 0; i < rows; ++i) body(i, s);
    return;
  }
#ifdef _OPENMP
#pragma omp parallel num_threads(threads)
  {
    RowMergeScratch s(out_cols);
#pragma omp for schedule(static)
    for (Index i = 0; i < rows; ++i) body(i, s);
  }
#endif
}

}  // namespace

CsrMatrix spgemm(const CsrMatrix& a, const CsrMatrix& b) {
  DDMGNN_CHECK(a.cols() == b.rows(), "spgemm: inner dimensions differ");
  const Index rows = a.rows();
  const Index cols = b.cols();

  // Symbolic pass: distinct columns per output row.
  std::vector<Offset> row_ptr(static_cast<std::size_t>(rows) + 1, 0);
  for_each_row(rows, cols, [&](Index i, RowMergeScratch& s) {
    merge_row(a, b, i, s);
    row_ptr[static_cast<std::size_t>(i) + 1] =
        static_cast<Offset>(s.cols.size());
  });
  for (Index i = 0; i < rows; ++i) row_ptr[i + 1] += row_ptr[i];

  // Numeric pass: re-merge each row, sort its columns, write in place.
  std::vector<Index> col_idx(static_cast<std::size_t>(row_ptr[rows]));
  std::vector<double> vals(col_idx.size());
  for_each_row(rows, cols, [&](Index i, RowMergeScratch& s) {
    merge_row(a, b, i, s);
    std::sort(s.cols.begin(), s.cols.end());
    Offset out = row_ptr[i];
    for (const Index c : s.cols) {
      col_idx[out] = c;
      vals[out] = s.acc[c];
      ++out;
    }
  });
  return CsrMatrix(rows, cols, std::move(row_ptr), std::move(col_idx),
                   std::move(vals));
}

CsrMatrix galerkin_product(const CsrMatrix& a, const CsrMatrix& p) {
  DDMGNN_CHECK(a.rows() == a.cols(), "galerkin_product: A must be square");
  DDMGNN_CHECK(a.rows() == p.rows(),
               "galerkin_product: P rows must match A dimension");
  const CsrMatrix ap = spgemm(a, p);
  return spgemm(p.transpose(), ap);
}

}  // namespace ddmgnn::la
