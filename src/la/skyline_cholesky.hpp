// Envelope ("skyline") Cholesky factorization of SPD CSR matrices, with an
// optional RCM pre-ordering. This is the library's sparse direct solver — the
// drop-in for Eigen's SparseLU in the paper's DDM-LU preconditioner (all
// matrices factored there are SPD, so Cholesky is exact LU up to symmetry).
//
// Storage: row i keeps the contiguous value range [first[i], i]; RCM keeps
// that envelope narrow on FEM meshes. Factorization cost is O(sum of row
// envelope lengths squared) ~ O(N·b²) for bandwidth b.
#pragma once

#include <span>
#include <vector>

#include "la/csr.hpp"

namespace ddmgnn::la {

class SkylineCholesky {
 public:
  /// Factor `a` (must be symmetric positive definite). If `use_rcm`, rows are
  /// permuted with reverse Cuthill–McKee before factorization.
  explicit SkylineCholesky(const CsrMatrix& a, bool use_rcm = true);

  /// Solve A x = b.
  std::vector<double> solve(std::span<const double> b) const;
  void solve_inplace(std::span<double> b_to_x) const;

  /// Materialize a float copy of the factor for solve_inplace_fp32. The fp64
  /// factor stays authoritative; the fp32 sweeps halve the factor traffic of
  /// a triangular solve, which is what a mixed-precision preconditioner apply
  /// (SolveOptions::precond_fp32) actually spends its time on. Idempotent.
  void enable_fp32();
  bool fp32_enabled() const { return !values_f32_.empty(); }

  /// Forward/backward sweeps over the fp32 factor copy (requires
  /// enable_fp32). Accepts and returns fp64 with ~1e-7 relative accuracy —
  /// callers must sit inside a flexible outer iteration or behind a
  /// true-residual guard.
  void solve_inplace_fp32(std::span<double> b_to_x) const;

  Index size() const { return n_; }
  /// Stored envelope entries (memory/diagnostics).
  std::size_t envelope_size() const { return values_.size(); }

 private:
  Index n_ = 0;
  std::vector<Index> perm_;      // new -> old (empty = identity)
  std::vector<Index> inv_perm_;  // old -> new
  std::vector<Index> first_;     // first stored column of each row
  std::vector<std::size_t> offset_;  // start of row i's envelope in values_
  std::vector<double> values_;       // packed rows [first[i], i]
  std::vector<float> values_f32_;    // optional fp32 factor copy
};

}  // namespace ddmgnn::la
