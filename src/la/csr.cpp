#include "la/csr.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "la/multivector.hpp"

namespace ddmgnn::la {

CsrMatrix::CsrMatrix(Index rows, Index cols, std::vector<Offset> row_ptr,
                     std::vector<Index> col_idx, std::vector<double> vals)
    : rows_(rows),
      cols_(cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      vals_(std::move(vals)) {
  DDMGNN_CHECK(row_ptr_.size() == static_cast<std::size_t>(rows_) + 1,
               "CsrMatrix: row_ptr size");
  DDMGNN_CHECK(col_idx_.size() == vals_.size(), "CsrMatrix: nnz mismatch");
  DDMGNN_CHECK(row_ptr_.front() == 0 &&
                   row_ptr_.back() == static_cast<Offset>(col_idx_.size()),
               "CsrMatrix: row_ptr bounds");
}

void CsrMatrix::multiply(std::span<const double> x,
                         std::span<double> y) const {
  DDMGNN_CHECK(x.size() == static_cast<std::size_t>(cols_) &&
                   y.size() == static_cast<std::size_t>(rows_),
               "multiply: dimension mismatch");
  const Offset* rp = row_ptr_.data();
  const Index* ci = col_idx_.data();
  const double* v = vals_.data();
  parallel_for(
      rows_,
      [&](long i) {
        double acc = 0.0;
        for (Offset k = rp[i]; k < rp[i + 1]; ++k) acc += v[k] * x[ci[k]];
        y[i] = acc;
      },
      2048);
}

std::vector<double> CsrMatrix::apply(std::span<const double> x) const {
  std::vector<double> y(rows_);
  multiply(x, y);
  return y;
}

void CsrMatrix::apply_many(const MultiVector& x, MultiVector& y) const {
  DDMGNN_CHECK(x.rows() == cols_, "apply_many: dimension mismatch");
  y.resize(rows_, x.cols());
  const Offset* rp = row_ptr_.data();
  const Index* ci = col_idx_.data();
  const double* v = vals_.data();
  const double* xd = x.data().data();
  double* yd = y.data().data();
  const Index n = rows_;
  constexpr Index kColChunk = 16;
  for (Index c0 = 0; c0 < x.cols(); c0 += kColChunk) {
    const Index cw = std::min(kColChunk, x.cols() - c0);
    const double* xc = xd + static_cast<std::size_t>(c0) * cols_;
    double* yc = yd + static_cast<std::size_t>(c0) * n;
    parallel_for(
        n,
        [&](long i) {
          double acc[kColChunk] = {};
          for (Offset k = rp[i]; k < rp[i + 1]; ++k) {
            const double a = v[k];
            const std::size_t col = static_cast<std::size_t>(ci[k]);
            for (Index j = 0; j < cw; ++j) {
              acc[j] += a * xc[static_cast<std::size_t>(j) * cols_ + col];
            }
          }
          for (Index j = 0; j < cw; ++j) {
            yc[static_cast<std::size_t>(j) * n + i] = acc[j];
          }
        },
        2048);
  }
}

void CsrMatrix::multiply_transpose(std::span<const double> x,
                                   std::span<double> y) const {
  DDMGNN_CHECK(x.size() == static_cast<std::size_t>(rows_) &&
                   y.size() == static_cast<std::size_t>(cols_),
               "multiply_transpose: dimension mismatch");
  std::fill(y.begin(), y.end(), 0.0);
  for (Index i = 0; i < rows_; ++i) {
    const double xi = x[i];
    for (Offset k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      y[col_idx_[k]] += vals_[k] * xi;
    }
  }
}

double CsrMatrix::at(Index i, Index j) const {
  DDMGNN_CHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_, "at: out of range");
  const auto begin = col_idx_.begin() + row_ptr_[i];
  const auto end = col_idx_.begin() + row_ptr_[i + 1];
  const auto it = std::lower_bound(begin, end, j);
  if (it == end || *it != j) return 0.0;
  return vals_[static_cast<std::size_t>(it - col_idx_.begin())];
}

std::vector<double> CsrMatrix::diagonal() const {
  std::vector<double> d(rows_, 0.0);
  for (Index i = 0; i < rows_ && i < cols_; ++i) d[i] = at(i, i);
  return d;
}

CsrMatrix CsrMatrix::principal_submatrix(std::span<const Index> keep) const {
  DDMGNN_CHECK(rows_ == cols_, "principal_submatrix: matrix must be square");
  const Index n = static_cast<Index>(keep.size());
  // global -> local map; -1 marks dropped ids.
  std::vector<Index> local(rows_, -1);
  for (Index l = 0; l < n; ++l) {
    DDMGNN_CHECK(keep[l] >= 0 && keep[l] < rows_, "principal_submatrix: id");
    DDMGNN_CHECK(local[keep[l]] == -1, "principal_submatrix: duplicate id");
    local[keep[l]] = l;
  }
  std::vector<Offset> rp(n + 1, 0);
  std::vector<Index> ci;
  std::vector<double> v;
  ci.reserve(static_cast<std::size_t>(nnz() / std::max<Index>(1, rows_ / n)));
  v.reserve(ci.capacity());
  struct Pair {
    Index col;
    double val;
  };
  std::vector<Pair> scratch;
  for (Index l = 0; l < n; ++l) {
    const Index g = keep[l];
    scratch.clear();
    for (Offset k = row_ptr_[g]; k < row_ptr_[g + 1]; ++k) {
      const Index lc = local[col_idx_[k]];
      if (lc >= 0) scratch.push_back({lc, vals_[k]});
    }
    std::sort(scratch.begin(), scratch.end(),
              [](const Pair& a, const Pair& b) { return a.col < b.col; });
    for (const Pair& p : scratch) {
      ci.push_back(p.col);
      v.push_back(p.val);
    }
    rp[l + 1] = static_cast<Offset>(ci.size());
  }
  return CsrMatrix(n, n, std::move(rp), std::move(ci), std::move(v));
}

CsrMatrix CsrMatrix::transpose() const {
  std::vector<Offset> rp(cols_ + 1, 0);
  for (const Index c : col_idx_) ++rp[c + 1];
  for (Index c = 0; c < cols_; ++c) rp[c + 1] += rp[c];
  std::vector<Index> ci(col_idx_.size());
  std::vector<double> v(vals_.size());
  std::vector<Offset> cursor(rp.begin(), rp.end() - 1);
  for (Index i = 0; i < rows_; ++i) {
    for (Offset k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      const Offset dst = cursor[col_idx_[k]]++;
      ci[dst] = i;
      v[dst] = vals_[k];
    }
  }
  return CsrMatrix(cols_, rows_, std::move(rp), std::move(ci), std::move(v));
}

double CsrMatrix::symmetry_defect() const {
  if (rows_ != cols_) return std::numeric_limits<double>::infinity();
  double defect = 0.0;
  for (Index i = 0; i < rows_; ++i) {
    for (Offset k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      defect = std::max(defect, std::abs(vals_[k] - at(col_idx_[k], i)));
    }
  }
  return defect;
}

double CsrMatrix::frobenius_norm() const {
  double acc = 0.0;
  for (const double v : vals_) acc += v * v;
  return std::sqrt(acc);
}

CsrMatrix CooBuilder::build() && {
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  std::vector<Offset> rp(static_cast<std::size_t>(rows_) + 1, 0);
  std::vector<Index> ci;
  std::vector<double> v;
  ci.reserve(entries_.size());
  v.reserve(entries_.size());
  std::size_t i = 0;
  while (i < entries_.size()) {
    const Index r = entries_[i].row;
    const Index c = entries_[i].col;
    DDMGNN_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_,
                 "CooBuilder: entry out of range");
    double acc = 0.0;
    while (i < entries_.size() && entries_[i].row == r &&
           entries_[i].col == c) {
      acc += entries_[i].val;
      ++i;
    }
    ci.push_back(c);
    v.push_back(acc);
    ++rp[r + 1];
  }
  for (Index r = 0; r < rows_; ++r) rp[r + 1] += rp[r];
  return CsrMatrix(rows_, cols_, std::move(rp), std::move(ci), std::move(v));
}

}  // namespace ddmgnn::la
