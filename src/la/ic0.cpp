#include "la/ic0.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ddmgnn::la {

IncompleteCholesky0::IncompleteCholesky0(const CsrMatrix& a) {
  DDMGNN_CHECK(a.rows() == a.cols(), "IC0: square required");
  n_ = a.rows();
  // Extract the lower-triangle pattern once; retries only redo values.
  row_ptr_.assign(static_cast<std::size_t>(n_) + 1, 0);
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  for (Index i = 0; i < n_; ++i) {
    for (Offset k = rp[i]; k < rp[i + 1]; ++k) {
      if (ci[k] <= i) ++row_ptr_[i + 1];
    }
  }
  for (Index i = 0; i < n_; ++i) row_ptr_[i + 1] += row_ptr_[i];
  col_idx_.resize(row_ptr_[n_]);
  vals_.resize(row_ptr_[n_]);

  double shift = 0.0;
  for (int attempt = 0; attempt < 8; ++attempt) {
    if (try_factor(a, shift)) {
      shift_ = shift;
      return;
    }
    shift = (shift == 0.0) ? 1e-3 : shift * 10.0;
  }
  DDMGNN_CHECK(false, "IC0: factorization failed even with diagonal shift");
}

bool IncompleteCholesky0::try_factor(const CsrMatrix& a, double shift) {
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  const auto va = a.values();
  // Copy the (shifted) lower triangle of A into the factor storage.
  for (Index i = 0; i < n_; ++i) {
    Offset dst = row_ptr_[i];
    for (Offset k = rp[i]; k < rp[i + 1]; ++k) {
      if (ci[k] > i) continue;
      col_idx_[dst] = ci[k];
      vals_[dst] = (ci[k] == i) ? va[k] * (1.0 + shift) : va[k];
      ++dst;
    }
    DDMGNN_CHECK(dst == row_ptr_[i + 1] &&
                     col_idx_[row_ptr_[i + 1] - 1] == i,
                 "IC0: missing diagonal entry");
  }
  // Row-oriented "ikj" incomplete factorization restricted to the pattern.
  for (Index i = 0; i < n_; ++i) {
    const Offset ib = row_ptr_[i];
    const Offset ie = row_ptr_[i + 1] - 1;  // diagonal position
    for (Offset kk = ib; kk < ie; ++kk) {
      const Index j = col_idx_[kk];
      const Offset jb = row_ptr_[j];
      const Offset je = row_ptr_[j + 1] - 1;
      // dot of rows i and j over the shared pattern (columns < j).
      double acc = vals_[kk];
      Offset pi = ib;
      Offset pj = jb;
      while (pi < kk && pj < je) {
        if (col_idx_[pi] == col_idx_[pj]) {
          acc -= vals_[pi] * vals_[pj];
          ++pi;
          ++pj;
        } else if (col_idx_[pi] < col_idx_[pj]) {
          ++pi;
        } else {
          ++pj;
        }
      }
      vals_[kk] = acc / vals_[je];
    }
    double d = vals_[ie];
    for (Offset kk = ib; kk < ie; ++kk) d -= vals_[kk] * vals_[kk];
    if (d <= 0.0 || !std::isfinite(d)) return false;
    vals_[ie] = std::sqrt(d);
  }
  return true;
}

void IncompleteCholesky0::apply(std::span<const double> r,
                                std::span<double> z) const {
  DDMGNN_CHECK(r.size() == static_cast<std::size_t>(n_) && z.size() == r.size(),
               "IC0::apply dims");
  // Forward: L y = r
  for (Index i = 0; i < n_; ++i) {
    const Offset ie = row_ptr_[i + 1] - 1;
    double acc = r[i];
    for (Offset k = row_ptr_[i]; k < ie; ++k) acc -= vals_[k] * z[col_idx_[k]];
    z[i] = acc / vals_[ie];
  }
  // Backward: Lᵀ z = y  (column sweep).
  for (Index i = n_ - 1; i >= 0; --i) {
    const Offset ie = row_ptr_[i + 1] - 1;
    const double zi = z[i] / vals_[ie];
    z[i] = zi;
    for (Offset k = row_ptr_[i]; k < ie; ++k) z[col_idx_[k]] -= vals_[k] * zi;
  }
}

std::vector<double> IncompleteCholesky0::apply(std::span<const double> r) const {
  std::vector<double> z(r.size());
  apply(r, z);
  return z;
}

}  // namespace ddmgnn::la
