// Compressed-sparse-row matrix: the storage format for the FEM operator A,
// the subdomain blocks R_i A R_i^T, and every preconditioner pattern.
// Column indices are sorted within each row; duplicate entries are merged at
// build time (CooBuilder).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ddmgnn::la {

using Index = std::int32_t;
using Offset = std::int64_t;

class MultiVector;

class CsrMatrix {
 public:
  CsrMatrix() = default;
  CsrMatrix(Index rows, Index cols, std::vector<Offset> row_ptr,
            std::vector<Index> col_idx, std::vector<double> vals);

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  Offset nnz() const { return static_cast<Offset>(col_idx_.size()); }

  std::span<const Offset> row_ptr() const { return row_ptr_; }
  std::span<const Index> col_idx() const { return col_idx_; }
  std::span<const double> values() const { return vals_; }
  std::span<double> values_mutable() { return vals_; }

  /// y = A x  (OpenMP-parallel over rows).
  void multiply(std::span<const double> x, std::span<double> y) const;

  /// Convenience allocating overload.
  std::vector<double> apply(std::span<const double> x) const;

  /// Y = A X for a block of right-hand sides: one sweep over the matrix
  /// serves every column (SpMM). Per column the accumulation order matches
  /// multiply() exactly, so a block iteration reproduces scalar results
  /// bit-for-bit. Shapes: X is rows()×s, Y is resized to match.
  void apply_many(const MultiVector& x, MultiVector& y) const;

  /// y = A^T x  (serial scatter; used only in tests and loss gradients).
  void multiply_transpose(std::span<const double> x, std::span<double> y) const;

  /// Value at (i, j), 0 if outside the pattern (binary search in row i).
  double at(Index i, Index j) const;

  /// Main diagonal (0 where the pattern has no diagonal entry).
  std::vector<double> diagonal() const;

  /// Principal submatrix on `keep` (global row/col ids, strictly increasing
  /// not required — order defines the local numbering). This is R_i A R_i^T.
  CsrMatrix principal_submatrix(std::span<const Index> keep) const;

  CsrMatrix transpose() const;

  /// max_{ij} |A_ij - A_ji| — symmetry defect, used by property tests.
  double symmetry_defect() const;

  /// Frobenius norm.
  double frobenius_norm() const;

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<Offset> row_ptr_;
  std::vector<Index> col_idx_;
  std::vector<double> vals_;
};

/// Accumulates (i, j, v) triplets (duplicates are summed) and compresses to
/// CSR with sorted columns. The FEM assembler and partition restriction both
/// build through this.
class CooBuilder {
 public:
  CooBuilder(Index rows, Index cols) : rows_(rows), cols_(cols) {}

  void add(Index i, Index j, double v) { entries_.push_back({i, j, v}); }
  void reserve(std::size_t n) { entries_.reserve(n); }
  std::size_t size() const { return entries_.size(); }

  /// Sort + merge duplicates + compress. The builder is consumed.
  CsrMatrix build() &&;

 private:
  struct Entry {
    Index row;
    Index col;
    double val;
  };
  Index rows_;
  Index cols_;
  std::vector<Entry> entries_;
};

}  // namespace ddmgnn::la
