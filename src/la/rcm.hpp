// Reverse Cuthill–McKee bandwidth-reducing ordering. Skyline Cholesky uses it
// to keep envelope fill small on FEM matrices (2D meshes reorder to bandwidth
// O(sqrt(N))), which is what makes the "LU" subdomain/reference solves cheap.
#pragma once

#include <vector>

#include "la/csr.hpp"

namespace ddmgnn::la {

/// Returns `perm` with perm[new_index] = old_index (a new->old map) for the
/// symmetric pattern of `a`. Disconnected components are ordered one after
/// another. The ordering touches only the pattern, never the values.
std::vector<Index> reverse_cuthill_mckee(const CsrMatrix& a);

/// Bandwidth of `a` under ordering `perm` (new->old). perm may be empty for
/// the identity ordering.
Index bandwidth(const CsrMatrix& a, std::span<const Index> perm);

}  // namespace ddmgnn::la
