// Sparse-times-sparse products for the multi-level hierarchy build:
// C = A·B via Gustavson's row-merge with a symbolic counting pass, and the
// Galerkin triple product A_c = PᵀAP that produces each coarse-level
// operator from the prolongator of the level above.
//
// Determinism contract: output rows are computed independently and, within a
// row, partial products accumulate in the fixed (k over A's row, j over B's
// row k) traversal order. The OpenMP split over rows therefore changes
// nothing — the result is bitwise-identical at any thread count, which the
// hierarchy-determinism tests rely on.
#pragma once

#include "la/csr.hpp"

namespace ddmgnn::la {

/// C = A·B. Column indices in each output row come out sorted; explicit
/// zeros produced by cancellation are kept (pattern is the symbolic
/// product), matching the CooBuilder convention.
CsrMatrix spgemm(const CsrMatrix& a, const CsrMatrix& b);

/// Galerkin coarse operator A_c = Pᵀ·A·P (rows(P) = rows(A); the result is
/// cols(P)×cols(P)). Symmetry of A is inherited exactly in pattern; values
/// match a dense Pᵀ A P reference to rounding.
CsrMatrix galerkin_product(const CsrMatrix& a, const CsrMatrix& p);

}  // namespace ddmgnn::la
