// Dense row-major matrices with LU (partial pivoting) and Cholesky factors.
// Used for the Nicolaides coarse problem R0·A·R0ᵀ (size K×K, K ≤ a few
// thousand) and as the reference direct solver in tests.
#pragma once

#include <span>
#include <vector>

#include "la/csr.hpp"

namespace ddmgnn::la {

class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(Index rows, Index cols, double init = 0.0)
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows) * cols, init) {}

  static DenseMatrix identity(Index n);
  static DenseMatrix from_csr(const CsrMatrix& a);

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }

  double& operator()(Index i, Index j) {
    return data_[static_cast<std::size_t>(i) * cols_ + j];
  }
  double operator()(Index i, Index j) const {
    return data_[static_cast<std::size_t>(i) * cols_ + j];
  }

  std::span<const double> data() const { return data_; }
  std::span<double> data_mutable() { return data_; }

  /// y = A x
  void multiply(std::span<const double> x, std::span<double> y) const;

  DenseMatrix matmul(const DenseMatrix& rhs) const;
  DenseMatrix transposed() const;

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<double> data_;
};

/// LU factorization with partial pivoting; solves general square systems.
class DenseLu {
 public:
  explicit DenseLu(DenseMatrix a);

  /// Solve A x = b (b overwritten strategies avoided: returns fresh vector).
  std::vector<double> solve(std::span<const double> b) const;
  void solve_inplace(std::span<double> b_to_x) const;

  Index size() const { return lu_.rows(); }
  /// |det(A)| sign-less product of pivots, used by tests for singularity.
  double abs_determinant() const;

 private:
  DenseMatrix lu_;
  std::vector<Index> piv_;
};

/// Cholesky A = L·Lᵀ for SPD matrices. Throws ContractError if a pivot is
/// non-positive (not SPD).
class DenseCholesky {
 public:
  explicit DenseCholesky(DenseMatrix a);

  std::vector<double> solve(std::span<const double> b) const;
  void solve_inplace(std::span<double> b_to_x) const;
  /// One backsolve serving `num_cols` right-hand sides stored column-major in
  /// `cols` (size() rows each): the factor is swept once for the whole block.
  /// Per column the arithmetic matches solve_inplace exactly.
  void solve_inplace_columns(std::span<double> cols, Index num_cols) const;
  Index size() const { return l_.rows(); }

 private:
  DenseMatrix l_;  // lower triangle
};

}  // namespace ddmgnn::la
