#include "la/mm_io.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/error.hpp"

namespace ddmgnn::la::mm {

namespace {

[[noreturn]] void fail(const std::string& path, long line,
                       const std::string& msg) {
  std::ostringstream os;
  os << "MatrixMarket: " << path;
  if (line > 0) os << ":" << line << " (line " << line << ")";
  os << ": " << msg;
  throw ContractError(os.str());
}

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

std::vector<std::string> tokens_of(const std::string& line) {
  std::istringstream is(line);
  std::vector<std::string> out;
  std::string t;
  while (is >> t) out.push_back(std::move(t));
  return out;
}

/// Stream over non-comment lines that tracks 1-based line numbers for
/// diagnostics. Blank lines inside the body are rejected by callers that
/// expect data; trailing blank lines are tolerated.
struct LineReader {
  std::ifstream in;
  std::string path;
  long line_no = 0;

  explicit LineReader(const std::string& p) : in(p), path(p) {
    DDMGNN_CHECK(in.good(), "MatrixMarket: cannot open '" + p + "'");
  }

  /// Next line verbatim (including comments); false at EOF.
  bool next_raw(std::string& out) {
    if (!std::getline(in, out)) return false;
    ++line_no;
    if (!out.empty() && out.back() == '\r') out.pop_back();  // CRLF files
    return true;
  }

  /// Next line that is neither a %-comment nor blank; false at EOF.
  bool next_data(std::string& out) {
    while (next_raw(out)) {
      const auto first = out.find_first_not_of(" \t");
      if (first == std::string::npos) continue;
      if (out[first] == '%') continue;
      return true;
    }
    return false;
  }
};

struct Banner {
  bool coordinate = false;  // else array
  bool symmetric = false;   // else general
};

/// Parse and validate the `%%MatrixMarket object format field symmetry`
/// banner (case-insensitive per the spec).
Banner read_banner(LineReader& r) {
  std::string line;
  if (!r.next_raw(line)) fail(r.path, 0, "empty file, expected a banner");
  const auto toks = tokens_of(line);
  if (toks.size() != 5 || lower(toks[0]) != "%%matrixmarket") {
    fail(r.path, r.line_no,
         "bad banner '" + line +
             "'; expected '%%MatrixMarket matrix coordinate|array "
             "real|integer general|symmetric'");
  }
  if (lower(toks[1]) != "matrix") {
    fail(r.path, r.line_no, "unsupported object '" + toks[1] +
                                "'; only 'matrix' is supported");
  }
  Banner b;
  const std::string format = lower(toks[2]);
  if (format == "coordinate") {
    b.coordinate = true;
  } else if (format == "array") {
    b.coordinate = false;
  } else {
    fail(r.path, r.line_no, "unsupported format '" + toks[2] +
                                "'; expected coordinate or array");
  }
  const std::string field = lower(toks[3]);
  if (field != "real" && field != "integer") {
    fail(r.path, r.line_no,
         "unsupported field '" + toks[3] +
             "'; only real and integer values are supported (pattern and "
             "complex matrices carry no usable values for a solver)");
  }
  const std::string symmetry = lower(toks[4]);
  if (symmetry == "general") {
    b.symmetric = false;
  } else if (symmetry == "symmetric") {
    b.symmetric = true;
  } else {
    fail(r.path, r.line_no,
         "unsupported symmetry '" + toks[4] +
             "'; expected general or symmetric");
  }
  return b;
}

/// from_chars rejects an explicit leading '+', which the reference
/// MatrixMarket reader (fscanf) accepts — strip it for spec parity.
const char* skip_plus(const std::string& tok) {
  return (tok.size() > 1 && tok[0] == '+') ? tok.data() + 1 : tok.data();
}

long parse_long(const std::string& tok, LineReader& r, const char* what) {
  long v = 0;
  const char* first = skip_plus(tok);
  const auto res = std::from_chars(first, tok.data() + tok.size(), v);
  if (res.ec != std::errc{} || res.ptr != tok.data() + tok.size()) {
    fail(r.path, r.line_no,
         std::string("cannot parse ") + what + " from '" + tok + "'");
  }
  return v;
}

double parse_double(const std::string& tok, LineReader& r, const char* what) {
  double v = 0.0;
  const char* first = skip_plus(tok);
  const auto res = std::from_chars(first, tok.data() + tok.size(), v);
  if (res.ec != std::errc{} || res.ptr != tok.data() + tok.size()) {
    fail(r.path, r.line_no,
         std::string("cannot parse ") + what + " from '" + tok + "'");
  }
  return v;
}

/// Shortest decimal that round-trips the double exactly.
void append_double(std::string& out, double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

}  // namespace

CsrMatrix read_matrix(const std::string& path) {
  LineReader r(path);
  const Banner banner = read_banner(r);
  if (!banner.coordinate) {
    fail(r.path, r.line_no,
         "array (dense) format where a sparse matrix was expected; use "
         "read_vector for array files");
  }

  std::string line;
  if (!r.next_data(line)) fail(r.path, r.line_no, "missing size line");
  const auto size_toks = tokens_of(line);
  if (size_toks.size() != 3) {
    fail(r.path, r.line_no,
         "size line must be 'rows cols nnz', got '" + line + "'");
  }
  const long rows = parse_long(size_toks[0], r, "row count");
  const long cols = parse_long(size_toks[1], r, "column count");
  const long nnz = parse_long(size_toks[2], r, "entry count");
  if (rows <= 0 || cols <= 0 || nnz < 0) {
    fail(r.path, r.line_no, "non-positive dimensions in size line");
  }
  // Index is 32-bit: reject rather than silently wrap in the narrowing casts.
  constexpr long kMaxIndex = std::numeric_limits<Index>::max();
  if (rows > kMaxIndex || cols > kMaxIndex) {
    fail(r.path, r.line_no,
         "dimensions exceed the 32-bit index limit (" +
             std::to_string(kMaxIndex) + ")");
  }
  if (banner.symmetric && rows != cols) {
    fail(r.path, r.line_no, "symmetric matrix must be square");
  }
  // Bound nnz before trusting it for allocation: a corrupt/hostile count
  // must produce a diagnostic, not a bad_alloc/length_error abort. The dense
  // bound cannot overflow (rows, cols <= 2^31).
  if (nnz > rows * cols) {
    fail(r.path, r.line_no,
         "entry count " + std::to_string(nnz) +
             " exceeds rows*cols = " + std::to_string(rows * cols));
  }

  CooBuilder coo(static_cast<Index>(rows), static_cast<Index>(cols));
  // Reserve is an optimization only — cap it so even a large (but
  // dense-bounded) declared count cannot front-load gigabytes before the
  // truncation check has seen a single entry line.
  coo.reserve(static_cast<std::size_t>(
      std::min<long>(banner.symmetric ? 2 * nnz : nnz, 1L << 22)));
  for (long k = 0; k < nnz; ++k) {
    if (!r.next_data(line)) {
      fail(r.path, r.line_no,
           "truncated file: expected " + std::to_string(nnz) +
               " entries, got " + std::to_string(k));
    }
    const auto toks = tokens_of(line);
    if (toks.size() != 3) {
      fail(r.path, r.line_no,
           "entry must be 'i j value', got '" + line + "'");
    }
    const long i = parse_long(toks[0], r, "row index");
    const long j = parse_long(toks[1], r, "column index");
    const double v = parse_double(toks[2], r, "value");
    if (i < 1 || i > rows) {
      fail(r.path, r.line_no,
           "row index " + std::to_string(i) + " out of range [1, " +
               std::to_string(rows) + "]");
    }
    if (j < 1 || j > cols) {
      fail(r.path, r.line_no,
           "column index " + std::to_string(j) + " out of range [1, " +
               std::to_string(cols) + "]");
    }
    if (banner.symmetric && j > i) {
      fail(r.path, r.line_no,
           "symmetric files store only the lower triangle, but entry (" +
               std::to_string(i) + ", " + std::to_string(j) +
               ") lies above the diagonal");
    }
    coo.add(static_cast<Index>(i - 1), static_cast<Index>(j - 1), v);
    if (banner.symmetric && i != j) {
      coo.add(static_cast<Index>(j - 1), static_cast<Index>(i - 1), v);
    }
  }
  if (r.next_data(line)) {
    fail(r.path, r.line_no,
         "trailing data after the declared " + std::to_string(nnz) +
             " entries: '" + line + "'");
  }
  return std::move(coo).build();
}

void write_matrix(const std::string& path, const CsrMatrix& A,
                  Symmetry symmetry) {
  const bool sym = symmetry == Symmetry::kSymmetric;
  if (sym) {
    DDMGNN_CHECK(A.rows() == A.cols() && A.symmetry_defect() == 0.0,
                 "write_matrix: Symmetry::kSymmetric requires an exactly "
                 "symmetric matrix");
  }
  const auto rp = A.row_ptr();
  const auto ci = A.col_idx();
  const auto vals = A.values();
  Offset count = 0;
  for (Index i = 0; i < A.rows(); ++i) {
    for (Offset e = rp[i]; e < rp[i + 1]; ++e) {
      if (!sym || ci[e] <= i) ++count;
    }
  }
  std::string out;
  out.reserve(static_cast<std::size_t>(count) * 24 + 128);
  out += "%%MatrixMarket matrix coordinate real ";
  out += sym ? "symmetric\n" : "general\n";
  out += std::to_string(A.rows());
  out += ' ';
  out += std::to_string(A.cols());
  out += ' ';
  out += std::to_string(count);
  out += '\n';
  for (Index i = 0; i < A.rows(); ++i) {
    for (Offset e = rp[i]; e < rp[i + 1]; ++e) {
      if (sym && ci[e] > i) continue;
      out += std::to_string(i + 1);
      out += ' ';
      out += std::to_string(ci[e] + 1);
      out += ' ';
      append_double(out, vals[e]);
      out += '\n';
    }
  }
  std::ofstream f(path);
  DDMGNN_CHECK(f.good(), "write_matrix: cannot open '" + path + "'");
  f << out;
  DDMGNN_CHECK(f.good(), "write_matrix: write to '" + path + "' failed");
}

std::vector<double> read_vector(const std::string& path) {
  LineReader r(path);
  const Banner banner = read_banner(r);
  if (banner.coordinate) {
    fail(r.path, r.line_no,
         "coordinate (sparse) format where a dense vector was expected; use "
         "read_matrix for coordinate files");
  }
  if (banner.symmetric) {
    fail(r.path, r.line_no, "a vector cannot be declared symmetric");
  }

  std::string line;
  if (!r.next_data(line)) fail(r.path, r.line_no, "missing size line");
  const auto size_toks = tokens_of(line);
  if (size_toks.size() != 2) {
    fail(r.path, r.line_no,
         "array size line must be 'rows cols', got '" + line + "'");
  }
  const long rows = parse_long(size_toks[0], r, "row count");
  const long cols = parse_long(size_toks[1], r, "column count");
  if (rows <= 0) fail(r.path, r.line_no, "non-positive row count");
  if (rows > std::numeric_limits<Index>::max()) {
    fail(r.path, r.line_no, "row count exceeds the 32-bit index limit");
  }
  if (cols != 1) {
    fail(r.path, r.line_no, "expected a single-column vector, got " +
                                std::to_string(cols) + " columns");
  }

  std::vector<double> v;
  v.reserve(static_cast<std::size_t>(rows));
  for (long k = 0; k < rows; ++k) {
    if (!r.next_data(line)) {
      fail(r.path, r.line_no,
           "truncated file: expected " + std::to_string(rows) +
               " values, got " + std::to_string(k));
    }
    const auto toks = tokens_of(line);
    if (toks.size() != 1) {
      fail(r.path, r.line_no,
           "array entries are one value per line, got '" + line + "'");
    }
    v.push_back(parse_double(toks[0], r, "value"));
  }
  if (r.next_data(line)) {
    fail(r.path, r.line_no,
         "trailing data after the declared " + std::to_string(rows) +
             " values: '" + line + "'");
  }
  return v;
}

void write_vector(const std::string& path, std::span<const double> v) {
  std::string out;
  out.reserve(v.size() * 24 + 64);
  out += "%%MatrixMarket matrix array real general\n";
  out += std::to_string(v.size());
  out += " 1\n";
  for (const double x : v) {
    append_double(out, x);
    out += '\n';
  }
  std::ofstream f(path);
  DDMGNN_CHECK(f.good(), "write_vector: cannot open '" + path + "'");
  f << out;
  DDMGNN_CHECK(f.good(), "write_vector: write to '" + path + "' failed");
}

}  // namespace ddmgnn::la::mm
