#include "la/multivector.hpp"

namespace ddmgnn::la {

MultiVector MultiVector::from_columns(
    std::span<const std::vector<double>> cols) {
  DDMGNN_CHECK(!cols.empty(), "MultiVector::from_columns: empty list");
  const Index n = static_cast<Index>(cols[0].size());
  MultiVector out(n, static_cast<Index>(cols.size()));
  for (std::size_t j = 0; j < cols.size(); ++j) {
    DDMGNN_CHECK(static_cast<Index>(cols[j].size()) == n,
                 "MultiVector::from_columns: ragged columns");
    la::copy(cols[j], out.col(static_cast<Index>(j)));
  }
  return out;
}

void MultiVector::keep_columns(std::span<const Index> keep) {
  DDMGNN_CHECK(static_cast<Index>(keep.size()) <= cols_,
               "MultiVector::keep_columns: too many columns");
  for (std::size_t c = 0; c < keep.size(); ++c) {
    const Index src = keep[c];
    DDMGNN_CHECK(src >= 0 && src < cols_ &&
                     (c == 0 || src > keep[c - 1]),
                 "MultiVector::keep_columns: indices must be strictly "
                 "increasing and in range");
    if (static_cast<Index>(c) != src) {
      la::copy(col(src), col(static_cast<Index>(c)));
    }
  }
  cols_ = static_cast<Index>(keep.size());
  data_.resize(static_cast<std::size_t>(rows_) * cols_);
}

void dot_columns(const MultiVector& x, const MultiVector& y,
                 std::span<double> out) {
  DDMGNN_CHECK(x.rows() == y.rows() && x.cols() == y.cols() &&
                   out.size() == static_cast<std::size_t>(x.cols()),
               "dot_columns: shape mismatch");
  for (Index j = 0; j < x.cols(); ++j) out[j] = la::dot(x.col(j), y.col(j));
}

void norm2_columns(const MultiVector& x, std::span<double> out) {
  DDMGNN_CHECK(out.size() == static_cast<std::size_t>(x.cols()),
               "norm2_columns: shape mismatch");
  for (Index j = 0; j < x.cols(); ++j) out[j] = la::norm2(x.col(j));
}

void axpy_columns(std::span<const double> a, const MultiVector& x,
                  MultiVector& y) {
  DDMGNN_CHECK(x.rows() == y.rows() && x.cols() == y.cols() &&
                   a.size() == static_cast<std::size_t>(x.cols()),
               "axpy_columns: shape mismatch");
  for (Index j = 0; j < x.cols(); ++j) la::axpy(a[j], x.col(j), y.col(j));
}

void xpay_columns(std::span<const double> a, const MultiVector& x,
                  MultiVector& y) {
  DDMGNN_CHECK(x.rows() == y.rows() && x.cols() == y.cols() &&
                   a.size() == static_cast<std::size_t>(x.cols()),
               "xpay_columns: shape mismatch");
  for (Index j = 0; j < x.cols(); ++j) la::xpay(x.col(j), a[j], y.col(j));
}

void copy_columns(const MultiVector& src, MultiVector& dst) {
  DDMGNN_CHECK(src.rows() == dst.rows() && src.cols() == dst.cols(),
               "copy_columns: shape mismatch");
  la::copy(src.data(), dst.data());
}

}  // namespace ddmgnn::la
