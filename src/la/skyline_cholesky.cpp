#include "la/skyline_cholesky.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "la/rcm.hpp"

namespace ddmgnn::la {

SkylineCholesky::SkylineCholesky(const CsrMatrix& a, bool use_rcm) {
  DDMGNN_CHECK(a.rows() == a.cols(), "SkylineCholesky: square required");
  n_ = a.rows();
  if (use_rcm && n_ > 8) {
    perm_ = reverse_cuthill_mckee(a);
    inv_perm_.assign(n_, 0);
    for (Index p = 0; p < n_; ++p) inv_perm_[perm_[p]] = p;
  }
  const bool permuted = !perm_.empty();
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  const auto va = a.values();

  // Envelope profile: first[i] = min over stored-pattern columns j<=i in the
  // permuted numbering (the envelope must also cover the columns reached via
  // upper-triangle entries, which symmetry mirrors into row max(i,j)).
  first_.assign(n_, 0);
  for (Index i = 0; i < n_; ++i) first_[i] = i;
  for (Index old_i = 0; old_i < n_; ++old_i) {
    const Index i = permuted ? inv_perm_[old_i] : old_i;
    for (Offset k = rp[old_i]; k < rp[old_i + 1]; ++k) {
      const Index j = permuted ? inv_perm_[ci[k]] : ci[k];
      const Index row = std::max(i, j);
      const Index col = std::min(i, j);
      first_[row] = std::min(first_[row], col);
    }
  }
  offset_.assign(static_cast<std::size_t>(n_) + 1, 0);
  for (Index i = 0; i < n_; ++i) {
    offset_[i + 1] = offset_[i] + static_cast<std::size_t>(i - first_[i] + 1);
  }
  values_.assign(offset_[n_], 0.0);

  // Scatter A into the envelope (lower triangle of the permuted matrix).
  for (Index old_i = 0; old_i < n_; ++old_i) {
    const Index i = permuted ? inv_perm_[old_i] : old_i;
    for (Offset k = rp[old_i]; k < rp[old_i + 1]; ++k) {
      const Index j = permuted ? inv_perm_[ci[k]] : ci[k];
      if (j > i) continue;  // symmetry: lower triangle only
      values_[offset_[i] + static_cast<std::size_t>(j - first_[i])] = va[k];
    }
  }

  // In-place envelope Cholesky: row-by-row (active-column) variant.
  for (Index i = 0; i < n_; ++i) {
    double* row_i = &values_[offset_[i]];
    const Index fi = first_[i];
    for (Index j = fi; j < i; ++j) {
      const double* row_j = &values_[offset_[j]];
      const Index fj = first_[j];
      const Index lo = std::max(fi, fj);
      double acc = row_i[j - fi];
      for (Index k = lo; k < j; ++k) {
        acc -= row_i[k - fi] * row_j[k - fj];
      }
      row_i[j - fi] = acc / row_j[j - fj];
    }
    double d = row_i[i - fi];
    for (Index k = fi; k < i; ++k) {
      const double l = row_i[k - fi];
      d -= l * l;
    }
    DDMGNN_CHECK(d > 0.0, "SkylineCholesky: matrix not SPD");
    row_i[i - fi] = std::sqrt(d);
  }
}

void SkylineCholesky::solve_inplace(std::span<double> b) const {
  DDMGNN_CHECK(b.size() == static_cast<std::size_t>(n_),
               "SkylineCholesky::solve dims");
  const bool permuted = !perm_.empty();
  std::vector<double> y(n_);
  if (permuted) {
    for (Index p = 0; p < n_; ++p) y[p] = b[perm_[p]];
  } else {
    std::copy(b.begin(), b.end(), y.begin());
  }
  // Forward: L y' = y
  for (Index i = 0; i < n_; ++i) {
    const double* row_i = &values_[offset_[i]];
    const Index fi = first_[i];
    double acc = y[i];
    for (Index k = fi; k < i; ++k) acc -= row_i[k - fi] * y[k];
    y[i] = acc / row_i[i - fi];
  }
  // Backward: Lᵀ x = y' (column sweep over the envelope rows).
  for (Index i = n_ - 1; i >= 0; --i) {
    const double* row_i = &values_[offset_[i]];
    const Index fi = first_[i];
    const double xi = y[i] / row_i[i - fi];
    y[i] = xi;
    for (Index k = fi; k < i; ++k) y[k] -= row_i[k - fi] * xi;
  }
  if (permuted) {
    for (Index p = 0; p < n_; ++p) b[perm_[p]] = y[p];
  } else {
    std::copy(y.begin(), y.end(), b.begin());
  }
}

std::vector<double> SkylineCholesky::solve(std::span<const double> b) const {
  std::vector<double> x(b.begin(), b.end());
  solve_inplace(x);
  return x;
}

void SkylineCholesky::enable_fp32() {
  if (!values_f32_.empty()) return;
  values_f32_.assign(values_.begin(), values_.end());
}

void SkylineCholesky::solve_inplace_fp32(std::span<double> b) const {
  DDMGNN_CHECK(b.size() == static_cast<std::size_t>(n_),
               "SkylineCholesky::solve dims");
  DDMGNN_CHECK(!values_f32_.empty(),
               "SkylineCholesky::solve_inplace_fp32: call enable_fp32 first");
  const bool permuted = !perm_.empty();
  std::vector<float> y(n_);
  if (permuted) {
    for (Index p = 0; p < n_; ++p) y[p] = static_cast<float>(b[perm_[p]]);
  } else {
    for (Index i = 0; i < n_; ++i) y[i] = static_cast<float>(b[i]);
  }
  // Same two sweeps as solve_inplace, on the fp32 factor copy.
  for (Index i = 0; i < n_; ++i) {
    const float* row_i = &values_f32_[offset_[i]];
    const Index fi = first_[i];
    float acc = y[i];
    for (Index k = fi; k < i; ++k) acc -= row_i[k - fi] * y[k];
    y[i] = acc / row_i[i - fi];
  }
  for (Index i = n_ - 1; i >= 0; --i) {
    const float* row_i = &values_f32_[offset_[i]];
    const Index fi = first_[i];
    const float xi = y[i] / row_i[i - fi];
    y[i] = xi;
    for (Index k = fi; k < i; ++k) y[k] -= row_i[k - fi] * xi;
  }
  if (permuted) {
    for (Index p = 0; p < n_; ++p) b[perm_[p]] = static_cast<double>(y[p]);
  } else {
    for (Index i = 0; i < n_; ++i) b[i] = static_cast<double>(y[i]);
  }
}

}  // namespace ddmgnn::la
