// Zero-fill incomplete Cholesky IC(0): the "legacy optimized" baseline
// preconditioner of the paper's Table III. The factor keeps exactly the lower
// triangle pattern of A. A diagonal shift is retried on breakdown (standard
// Manteuffel-style safeguard), which property tests exercise.
#pragma once

#include <span>
#include <vector>

#include "la/csr.hpp"

namespace ddmgnn::la {

class IncompleteCholesky0 {
 public:
  explicit IncompleteCholesky0(const CsrMatrix& a);

  /// z = (L·Lᵀ)⁻¹ r
  void apply(std::span<const double> r, std::span<double> z) const;
  std::vector<double> apply(std::span<const double> r) const;

  Index size() const { return n_; }
  /// Diagonal shift that was needed to complete the factorization (0 if none).
  double shift() const { return shift_; }

 private:
  bool try_factor(const CsrMatrix& a, double shift);

  Index n_ = 0;
  double shift_ = 0.0;
  // Lower-triangular factor in CSR (columns sorted, diagonal last per row).
  std::vector<Offset> row_ptr_;
  std::vector<Index> col_idx_;
  std::vector<double> vals_;
};

}  // namespace ddmgnn::la
