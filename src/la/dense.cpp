#include "la/dense.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ddmgnn::la {

DenseMatrix DenseMatrix::identity(Index n) {
  DenseMatrix m(n, n, 0.0);
  for (Index i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

DenseMatrix DenseMatrix::from_csr(const CsrMatrix& a) {
  DenseMatrix m(a.rows(), a.cols(), 0.0);
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  const auto v = a.values();
  for (Index i = 0; i < a.rows(); ++i) {
    for (Offset k = rp[i]; k < rp[i + 1]; ++k) m(i, ci[k]) = v[k];
  }
  return m;
}

void DenseMatrix::multiply(std::span<const double> x,
                           std::span<double> y) const {
  DDMGNN_CHECK(x.size() == static_cast<std::size_t>(cols_) &&
                   y.size() == static_cast<std::size_t>(rows_),
               "DenseMatrix::multiply dims");
  for (Index i = 0; i < rows_; ++i) {
    double acc = 0.0;
    const double* row = &data_[static_cast<std::size_t>(i) * cols_];
    for (Index j = 0; j < cols_; ++j) acc += row[j] * x[j];
    y[i] = acc;
  }
}

DenseMatrix DenseMatrix::matmul(const DenseMatrix& rhs) const {
  DDMGNN_CHECK(cols_ == rhs.rows(), "matmul dims");
  DenseMatrix out(rows_, rhs.cols(), 0.0);
  for (Index i = 0; i < rows_; ++i) {
    for (Index k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      for (Index j = 0; j < rhs.cols(); ++j) out(i, j) += aik * rhs(k, j);
    }
  }
  return out;
}

DenseMatrix DenseMatrix::transposed() const {
  DenseMatrix out(cols_, rows_);
  for (Index i = 0; i < rows_; ++i)
    for (Index j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  return out;
}

DenseLu::DenseLu(DenseMatrix a) : lu_(std::move(a)), piv_(lu_.rows()) {
  DDMGNN_CHECK(lu_.rows() == lu_.cols(), "DenseLu: square required");
  const Index n = lu_.rows();
  for (Index i = 0; i < n; ++i) piv_[i] = i;
  for (Index k = 0; k < n; ++k) {
    // Partial pivoting: find the largest magnitude in column k.
    Index p = k;
    double best = std::abs(lu_(k, k));
    for (Index i = k + 1; i < n; ++i) {
      const double v = std::abs(lu_(i, k));
      if (v > best) {
        best = v;
        p = i;
      }
    }
    DDMGNN_CHECK(best > 0.0, "DenseLu: singular matrix");
    if (p != k) {
      for (Index j = 0; j < n; ++j) std::swap(lu_(k, j), lu_(p, j));
      std::swap(piv_[k], piv_[p]);
    }
    const double inv = 1.0 / lu_(k, k);
    for (Index i = k + 1; i < n; ++i) {
      const double m = lu_(i, k) * inv;
      lu_(i, k) = m;
      if (m == 0.0) continue;
      for (Index j = k + 1; j < n; ++j) lu_(i, j) -= m * lu_(k, j);
    }
  }
}

void DenseLu::solve_inplace(std::span<double> b) const {
  const Index n = lu_.rows();
  DDMGNN_CHECK(b.size() == static_cast<std::size_t>(n), "DenseLu::solve dims");
  // Apply the row permutation.
  std::vector<double> y(n);
  for (Index i = 0; i < n; ++i) y[i] = b[piv_[i]];
  // Forward substitution with the unit lower factor.
  for (Index i = 0; i < n; ++i) {
    double acc = y[i];
    for (Index j = 0; j < i; ++j) acc -= lu_(i, j) * y[j];
    y[i] = acc;
  }
  // Back substitution with U.
  for (Index i = n - 1; i >= 0; --i) {
    double acc = y[i];
    for (Index j = i + 1; j < n; ++j) acc -= lu_(i, j) * y[j];
    y[i] = acc / lu_(i, i);
  }
  std::copy(y.begin(), y.end(), b.begin());
}

std::vector<double> DenseLu::solve(std::span<const double> b) const {
  std::vector<double> x(b.begin(), b.end());
  solve_inplace(x);
  return x;
}

double DenseLu::abs_determinant() const {
  double d = 1.0;
  for (Index i = 0; i < lu_.rows(); ++i) d *= std::abs(lu_(i, i));
  return d;
}

DenseCholesky::DenseCholesky(DenseMatrix a) : l_(std::move(a)) {
  DDMGNN_CHECK(l_.rows() == l_.cols(), "DenseCholesky: square required");
  const Index n = l_.rows();
  for (Index j = 0; j < n; ++j) {
    double d = l_(j, j);
    for (Index k = 0; k < j; ++k) d -= l_(j, k) * l_(j, k);
    DDMGNN_CHECK(d > 0.0, "DenseCholesky: matrix not SPD");
    const double ljj = std::sqrt(d);
    l_(j, j) = ljj;
    const double inv = 1.0 / ljj;
    for (Index i = j + 1; i < n; ++i) {
      double acc = l_(i, j);
      for (Index k = 0; k < j; ++k) acc -= l_(i, k) * l_(j, k);
      l_(i, j) = acc * inv;
    }
    for (Index k = j + 1; k < n; ++k) l_(j, k) = 0.0;  // keep strict lower
  }
}

void DenseCholesky::solve_inplace(std::span<double> b) const {
  const Index n = l_.rows();
  DDMGNN_CHECK(b.size() == static_cast<std::size_t>(n),
               "DenseCholesky::solve dims");
  // L y = b
  for (Index i = 0; i < n; ++i) {
    double acc = b[i];
    for (Index j = 0; j < i; ++j) acc -= l_(i, j) * b[j];
    b[i] = acc / l_(i, i);
  }
  // Lᵀ x = y
  for (Index i = n - 1; i >= 0; --i) {
    double acc = b[i];
    for (Index j = i + 1; j < n; ++j) acc -= l_(j, i) * b[j];
    b[i] = acc / l_(i, i);
  }
}

void DenseCholesky::solve_inplace_columns(std::span<double> cols,
                                          Index num_cols) const {
  const Index n = l_.rows();
  DDMGNN_CHECK(num_cols >= 0 &&
                   cols.size() == static_cast<std::size_t>(n) * num_cols,
               "DenseCholesky::solve_inplace_columns dims");
  auto col = [&](Index c) {
    return cols.data() + static_cast<std::size_t>(c) * n;
  };
  // L Y = B — the row sweep is shared, every column rides along.
  for (Index i = 0; i < n; ++i) {
    for (Index c = 0; c < num_cols; ++c) {
      double* b = col(c);
      double acc = b[i];
      for (Index j = 0; j < i; ++j) acc -= l_(i, j) * b[j];
      b[i] = acc / l_(i, i);
    }
  }
  // Lᵀ X = Y
  for (Index i = n - 1; i >= 0; --i) {
    for (Index c = 0; c < num_cols; ++c) {
      double* b = col(c);
      double acc = b[i];
      for (Index j = i + 1; j < n; ++j) acc -= l_(j, i) * b[j];
      b[i] = acc / l_(i, i);
    }
  }
}

std::vector<double> DenseCholesky::solve(std::span<const double> b) const {
  std::vector<double> x(b.begin(), b.end());
  solve_inplace(x);
  return x;
}

}  // namespace ddmgnn::la
