// MatrixMarket exchange-format I/O — the lingua franca of sparse-matrix
// collections (SuiteSparse, Florida), and how operators the repository never
// assembled reach the matrix-first solver path (`solve_poisson --matrix`,
// bench `--matrix` modes, examples/algebraic_solve).
//
// Supported: `matrix coordinate real|integer general|symmetric` for sparse
// matrices and `matrix array real|integer general` (single column) for
// right-hand-side vectors. Readers are strict: malformed banners, bad
// counts, out-of-range 1-based indices, non-numeric tokens and truncated
// files all raise ContractError diagnostics naming the file and the
// offending line instead of crashing or silently mis-reading. Writers emit
// shortest round-trip decimal (std::to_chars), so write→read reproduces
// every double bit-exactly.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "la/csr.hpp"

namespace ddmgnn::la::mm {

enum class Symmetry {
  kGeneral,
  /// Only the lower triangle is stored; readers mirror it. Writers require
  /// the matrix to be exactly symmetric (symmetry_defect() == 0).
  kSymmetric,
};

/// Read a sparse matrix from a MatrixMarket coordinate file. Symmetric files
/// are expanded to the full (mirrored) pattern; duplicate entries are summed
/// (CooBuilder semantics). Throws ContractError with file:line diagnostics.
CsrMatrix read_matrix(const std::string& path);

/// Write `A` as a coordinate file. With Symmetry::kSymmetric only the lower
/// triangle is stored (and `A` must be exactly symmetric).
void write_matrix(const std::string& path, const CsrMatrix& A,
                  Symmetry symmetry = Symmetry::kGeneral);

/// Read a dense vector from a MatrixMarket array file (n×1).
std::vector<double> read_vector(const std::string& path);

/// Write `v` as an n×1 array file.
void write_vector(const std::string& path, std::span<const double> v);

}  // namespace ddmgnn::la::mm
