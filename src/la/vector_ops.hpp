// BLAS-1 style kernels on contiguous double vectors, OpenMP-parallel above a
// size threshold. These are the inner kernels of every Krylov iteration
// (Algorithm 1 of the paper), so they are kept allocation-free.
#pragma once

#include <cmath>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace ddmgnn::la {

inline constexpr long kParallelThreshold = 8192;

/// <x, y>
inline double dot(std::span<const double> x, std::span<const double> y) {
  DDMGNN_CHECK(x.size() == y.size(), "dot: size mismatch");
  const long n = static_cast<long>(x.size());
  double acc = 0.0;
  if (n < kParallelThreshold || num_threads() == 1) {
    for (long i = 0; i < n; ++i) acc += x[i] * y[i];
    return acc;
  }
#pragma omp parallel for schedule(static) reduction(+ : acc) \
    num_threads(num_threads())
  for (long i = 0; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

/// ||x||_2
inline double norm2(std::span<const double> x) { return std::sqrt(dot(x, x)); }

/// ||x||_inf
inline double norm_inf(std::span<const double> x) {
  double m = 0.0;
  for (const double v : x) m = std::max(m, std::abs(v));
  return m;
}

/// y += a * x
inline void axpy(double a, std::span<const double> x, std::span<double> y) {
  DDMGNN_CHECK(x.size() == y.size(), "axpy: size mismatch");
  const long n = static_cast<long>(x.size());
  parallel_for(n, [&](long i) { y[i] += a * x[i]; }, kParallelThreshold);
}

/// y = x + a * y   (the p-update of CG)
inline void xpay(std::span<const double> x, double a, std::span<double> y) {
  DDMGNN_CHECK(x.size() == y.size(), "xpay: size mismatch");
  const long n = static_cast<long>(x.size());
  parallel_for(n, [&](long i) { y[i] = x[i] + a * y[i]; }, kParallelThreshold);
}

/// w = a*x + b*y
inline void waxpby(double a, std::span<const double> x, double b,
                   std::span<const double> y, std::span<double> w) {
  DDMGNN_CHECK(x.size() == y.size() && x.size() == w.size(),
               "waxpby: size mismatch");
  const long n = static_cast<long>(x.size());
  parallel_for(n, [&](long i) { w[i] = a * x[i] + b * y[i]; },
               kParallelThreshold);
}

/// x *= a
inline void scale(double a, std::span<double> x) {
  const long n = static_cast<long>(x.size());
  parallel_for(n, [&](long i) { x[i] *= a; }, kParallelThreshold);
}

inline void fill(std::span<double> x, double v) {
  const long n = static_cast<long>(x.size());
  parallel_for(n, [&](long i) { x[i] = v; }, kParallelThreshold);
}

inline void copy(std::span<const double> src, std::span<double> dst) {
  DDMGNN_CHECK(src.size() == dst.size(), "copy: size mismatch");
  const long n = static_cast<long>(src.size());
  parallel_for(n, [&](long i) { dst[i] = src[i]; }, kParallelThreshold);
}

/// dst = double(float(src)) — demote every entry through fp32. This is the
/// mixed-precision seam of the Krylov drivers: the residual handed to the
/// preconditioner and the correction it returns are rounded to fp32 while
/// the outer recurrences stay fp64. src and dst may alias.
inline void round_to_float(std::span<const double> src, std::span<double> dst) {
  DDMGNN_CHECK(src.size() == dst.size(), "round_to_float: size mismatch");
  const long n = static_cast<long>(src.size());
  parallel_for(
      n,
      [&](long i) { dst[i] = static_cast<double>(static_cast<float>(src[i])); },
      kParallelThreshold);
}

/// ||x - y||_2
inline double dist2(std::span<const double> x, std::span<const double> y) {
  DDMGNN_CHECK(x.size() == y.size(), "dist2: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - y[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

}  // namespace ddmgnn::la
