#include "la/rcm.hpp"

#include <algorithm>
#include <queue>

#include "common/error.hpp"

namespace ddmgnn::la {

namespace {

/// BFS from `start`; returns (farthest node, eccentricity) and fills `order`
/// with the visit sequence if non-null. Neighbors are visited in increasing
/// degree order — the Cuthill–McKee rule.
struct BfsResult {
  Index farthest;
  Index depth;
  Index visited;
};

BfsResult degree_ordered_bfs(const CsrMatrix& a, Index start,
                             const std::vector<Index>& degree,
                             std::vector<char>& seen,
                             std::vector<Index>* order) {
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  std::vector<Index> frontier{start};
  seen[start] = 1;
  if (order) order->push_back(start);
  Index depth = 0;
  Index last = start;
  Index visited = 1;
  std::vector<Index> next;
  std::vector<Index> scratch;
  while (!frontier.empty()) {
    next.clear();
    for (const Index u : frontier) {
      scratch.clear();
      for (Offset k = rp[u]; k < rp[u + 1]; ++k) {
        const Index v = ci[k];
        if (v != u && !seen[v]) {
          seen[v] = 1;
          scratch.push_back(v);
        }
      }
      std::sort(scratch.begin(), scratch.end(), [&](Index x, Index y) {
        return degree[x] != degree[y] ? degree[x] < degree[y] : x < y;
      });
      for (const Index v : scratch) {
        next.push_back(v);
        if (order) order->push_back(v);
        last = v;
        ++visited;
      }
    }
    if (!next.empty()) ++depth;
    frontier.swap(next);
  }
  return {last, depth, visited};
}

}  // namespace

std::vector<Index> reverse_cuthill_mckee(const CsrMatrix& a) {
  DDMGNN_CHECK(a.rows() == a.cols(), "rcm: square required");
  const Index n = a.rows();
  const auto rp = a.row_ptr();
  std::vector<Index> degree(n);
  for (Index i = 0; i < n; ++i)
    degree[i] = static_cast<Index>(rp[i + 1] - rp[i]);

  std::vector<Index> order;
  order.reserve(n);
  std::vector<char> placed(n, 0);
  for (Index root = 0; root < n; ++root) {
    if (placed[root]) continue;
    // Pseudo-peripheral start: from the minimum-degree unplaced node in this
    // component, run two BFS sweeps to move toward the graph periphery.
    Index start = root;
    {
      std::vector<char> seen = placed;
      std::vector<Index> comp;
      degree_ordered_bfs(a, root, degree, seen, &comp);
      Index best = comp.front();
      for (const Index v : comp)
        if (degree[v] < degree[best]) best = v;
      std::vector<char> seen2 = placed;
      const BfsResult r1 = degree_ordered_bfs(a, best, degree, seen2, nullptr);
      start = r1.farthest;
    }
    degree_ordered_bfs(a, start, degree, placed, &order);
  }
  DDMGNN_CHECK(static_cast<Index>(order.size()) == n, "rcm: lost nodes");
  std::reverse(order.begin(), order.end());
  return order;
}

Index bandwidth(const CsrMatrix& a, std::span<const Index> perm) {
  const Index n = a.rows();
  std::vector<Index> pos(n);
  if (perm.empty()) {
    for (Index i = 0; i < n; ++i) pos[i] = i;
  } else {
    for (Index p = 0; p < n; ++p) pos[perm[p]] = p;
  }
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  Index bw = 0;
  for (Index i = 0; i < n; ++i) {
    for (Offset k = rp[i]; k < rp[i + 1]; ++k) {
      bw = std::max(bw, static_cast<Index>(std::abs(pos[i] - pos[ci[k]])));
    }
  }
  return bw;
}

}  // namespace ddmgnn::la
