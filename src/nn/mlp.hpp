// Linear layers and the paper's MLP shape (one hidden layer, ReLU — §IV-B)
// with hand-derived backpropagation. Forward caches live in caller-provided
// Cache objects so the same model can run on many threads concurrently.
//
// Conventions: X is [n × in], W is [out × in] row-major, Y = X·Wᵀ + b.
#pragma once

#include <span>

#include "common/rng.hpp"
#include "nn/param_store.hpp"
#include "nn/tensor.hpp"

namespace ddmgnn::nn {

/// Fully-connected layer over a flat parameter store.
class Linear {
 public:
  Linear() = default;
  Linear(ParameterStore& store, int in, int out)
      : in_(in), out_(out), w_(store.allocate(out, in)),
        b_(store.allocate(1, out)) {}

  int in_dim() const { return in_; }
  int out_dim() const { return out_; }

  /// Xavier-uniform initialization (paper §IV-B).
  void init_xavier(std::span<float> values, Rng& rng) const;

  /// Y = X Wᵀ + b.
  void forward(const float* params, const Tensor& x, Tensor& y) const;

  /// Given dY: dX = dY·W (if dx != nullptr), dW += dYᵀ·X, db += colsum(dY).
  void backward(const float* params, const Tensor& x, const Tensor& dy,
                Tensor* dx, float* grads) const;

 private:
  int in_ = 0;
  int out_ = 0;
  ParameterStore::Slot w_;
  ParameterStore::Slot b_;
};

/// in -> hidden -> ReLU -> out.
class Mlp {
 public:
  Mlp() = default;
  Mlp(ParameterStore& store, int in, int hidden, int out)
      : l1_(store, in, hidden), l2_(store, hidden, out) {}

  struct Cache {
    Tensor h_pre;  // pre-activation of the hidden layer
    Tensor h_act;  // ReLU output (the input of l2)
  };

  int in_dim() const { return l1_.in_dim(); }
  int out_dim() const { return l2_.out_dim(); }

  void init(std::span<float> values, Rng& rng) const {
    l1_.init_xavier(values, rng);
    l2_.init_xavier(values, rng);
  }

  void forward(const float* params, const Tensor& x, Tensor& y,
               Cache& cache) const;

  /// dx may be nullptr when input gradients are not needed.
  void backward(const float* params, const Tensor& x, const Cache& cache,
                const Tensor& dy, Tensor* dx, float* grads) const;

 private:
  Linear l1_;
  Linear l2_;
};

}  // namespace ddmgnn::nn
