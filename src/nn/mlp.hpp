// Linear layers and the paper's MLP shape (one hidden layer, ReLU — §IV-B)
// with hand-derived backpropagation. Forward caches live in caller-provided
// Cache objects so the same model can run on many threads concurrently.
//
// Two forward implementations coexist:
//   - forward(): the scalar reference kernel. Training runs through it (the
//     backward pass consumes its caches) and the DSS reference inference
//     path keeps it selectable for equivalence testing.
//   - forward_fused() / fused_gemm(): the register-blocked, simd-vectorized
//     inference kernel with fused bias and optional fused ReLU, row-parallel
//     above a grain threshold when called outside an OpenMP region. The DSS
//     fast inference engine is built on these.
//
// Conventions: X is [n × in], W is [out × in] row-major, Y = X·Wᵀ + b.
#pragma once

#include <span>

#include "common/rng.hpp"
#include "nn/param_store.hpp"
#include "nn/tensor.hpp"

namespace ddmgnn::nn {

/// Blocked micro-kernel GEMM: y[r,:] = act(x[r,:] · Wᵀ (+ b)), where W is the
/// column block [col0, col0 + x.cols) of a row-major [out × ldw] weight
/// matrix. Passing a column block lets callers apply a slice of a wider layer
/// directly to a narrower input (the factorized edge-MLP first layer) without
/// materializing the sliced matrix. `b` may be null (no bias). Rows are
/// processed in 4-row register blocks with simd accumulation over unit-stride
/// outputs, and run in parallel above a grain threshold when the caller is
/// not already inside an OpenMP region. Per-row arithmetic order is fixed, so
/// results are identical at any thread count.
void fused_gemm(const float* w, int ldw, int col0, int out, const float* b,
                bool relu, const Tensor& x, Tensor& y);

/// Serial row-range core of fused_gemm over a pre-transposed [in × out]
/// weight matrix `wt`: y[r,:] = act(x[r,:]·wt (+ b)) for r in [row0, row1).
/// Per-row arithmetic order is identical to fused_gemm's, so callers that
/// transpose once and stream many small row blocks (the fused
/// layer2+aggregate DSS kernel) produce bitwise the same rows as one big
/// fused_gemm call. `y` must be pre-sized; rows outside the range are
/// untouched.
void fused_gemm_rows(const float* wt, int in, int out, const float* b,
                     bool relu, const Tensor& x, Tensor& y, int row0,
                     int row1);

/// Fully-connected layer over a flat parameter store.
class Linear {
 public:
  Linear() = default;
  Linear(ParameterStore& store, int in, int out)
      : in_(in), out_(out), w_(store.allocate(out, in)),
        b_(store.allocate(1, out)) {}

  int in_dim() const { return in_; }
  int out_dim() const { return out_; }

  /// Raw views into the parameter store (the factorized DSS kernels slice
  /// the first edge-MLP layer by column block).
  const float* weights(const float* params) const { return params + w_.offset; }
  const float* bias(const float* params) const { return params + b_.offset; }

  /// Xavier-uniform initialization (paper §IV-B).
  void init_xavier(std::span<float> values, Rng& rng) const;

  /// Y = X Wᵀ + b — scalar reference kernel (training + reference path).
  void forward(const float* params, const Tensor& x, Tensor& y) const;

  /// Y = act(X Wᵀ + b) through the blocked micro-kernel (fused_gemm).
  void forward_fused(const float* params, const Tensor& x, Tensor& y,
                     bool relu = false) const;

  /// Given dY: dX = dY·W (if dx != nullptr), dW += dYᵀ·X, db += colsum(dY).
  void backward(const float* params, const Tensor& x, const Tensor& dy,
                Tensor* dx, float* grads) const;

 private:
  int in_ = 0;
  int out_ = 0;
  ParameterStore::Slot w_;
  ParameterStore::Slot b_;
};

/// in -> hidden -> ReLU -> out.
class Mlp {
 public:
  Mlp() = default;
  Mlp(ParameterStore& store, int in, int hidden, int out)
      : l1_(store, in, hidden), l2_(store, hidden, out) {}

  struct Cache {
    Tensor h_pre;  // pre-activation of the hidden layer
    Tensor h_act;  // ReLU output (the input of l2)
  };

  int in_dim() const { return l1_.in_dim(); }
  int out_dim() const { return l2_.out_dim(); }

  const Linear& l1() const { return l1_; }
  const Linear& l2() const { return l2_; }

  void init(std::span<float> values, Rng& rng) const {
    l1_.init_xavier(values, rng);
    l2_.init_xavier(values, rng);
  }

  void forward(const float* params, const Tensor& x, Tensor& y,
               Cache& cache) const;

  /// Inference-only forward through the fused kernels: ReLU is folded into
  /// the first GEMM and no pre-activation is kept (so it cannot feed
  /// backward()). `hidden` is caller-owned scratch reused across calls.
  void infer(const float* params, const Tensor& x, Tensor& y,
             Tensor& hidden) const;

  /// dx may be nullptr when input gradients are not needed.
  void backward(const float* params, const Tensor& x, const Cache& cache,
                const Tensor& dy, Tensor* dx, float* grads) const;

 private:
  Linear l1_;
  Linear l2_;
};

}  // namespace ddmgnn::nn
