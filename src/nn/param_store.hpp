// Flat parameter storage: every layer allocates a slot (offset + shape) and
// all weights live in one contiguous float array. This gives the optimizer,
// the gradient clipping, the per-thread gradient buffers of data-parallel
// training, and the serializer a single uniform view — the same layout trick
// PyTorch's `parameters()` flattening would give.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace ddmgnn::nn {

class ParameterStore {
 public:
  struct Slot {
    std::size_t offset = 0;
    int rows = 0;
    int cols = 0;
    std::size_t size() const {
      return static_cast<std::size_t>(rows) * cols;
    }
  };

  /// Reserve space for a rows×cols parameter tensor. Call before finalize().
  Slot allocate(int rows, int cols) {
    DDMGNN_CHECK(!finalized_, "ParameterStore: allocate after finalize");
    Slot s{cursor_, rows, cols};
    cursor_ += s.size();
    return s;
  }

  /// Materialize the value buffer (zero-initialized).
  void finalize() {
    DDMGNN_CHECK(!finalized_, "ParameterStore: double finalize");
    values_.assign(cursor_, 0.0f);
    finalized_ = true;
  }

  std::size_t size() const { return cursor_; }
  std::span<float> values() { return values_; }
  std::span<const float> values() const { return values_; }
  float* data() { return values_.data(); }
  const float* data() const { return values_.data(); }

  std::span<float> view(const Slot& s) {
    return std::span<float>(values_.data() + s.offset, s.size());
  }

 private:
  std::size_t cursor_ = 0;
  bool finalized_ = false;
  std::vector<float> values_;
};

}  // namespace ddmgnn::nn
