#include "nn/mlp.hpp"

#include <cmath>

namespace ddmgnn::nn {

void Linear::init_xavier(std::span<float> values, Rng& rng) const {
  const double bound = std::sqrt(6.0 / (in_ + out_));
  float* w = values.data() + w_.offset;
  for (std::size_t i = 0; i < w_.size(); ++i) {
    w[i] = static_cast<float>(rng.uniform(-bound, bound));
  }
  float* b = values.data() + b_.offset;
  for (std::size_t i = 0; i < b_.size(); ++i) b[i] = 0.0f;
}

void Linear::forward(const float* params, const Tensor& x, Tensor& y) const {
  DDMGNN_ASSERT(x.cols == in_);
  y.resize(x.rows, out_);
  const float* w = params + w_.offset;
  const float* b = params + b_.offset;
  // Serial on purpose: parallelism lives at the per-sample / per-graph level.
  for (int i = 0; i < x.rows; ++i) {
    const float* xi = x.row(i);
    float* yi = y.row(i);
    for (int o = 0; o < out_; ++o) {
      const float* wo = w + static_cast<std::size_t>(o) * in_;
      float acc = b[o];
      for (int k = 0; k < in_; ++k) acc += xi[k] * wo[k];
      yi[o] = acc;
    }
  }
}

void Linear::backward(const float* params, const Tensor& x, const Tensor& dy,
                      Tensor* dx, float* grads) const {
  DDMGNN_ASSERT(x.cols == in_ && dy.cols == out_ && dy.rows == x.rows);
  const float* w = params + w_.offset;
  float* gw = grads + w_.offset;
  float* gb = grads + b_.offset;
  for (int i = 0; i < x.rows; ++i) {
    const float* xi = x.row(i);
    const float* dyi = dy.row(i);
    for (int o = 0; o < out_; ++o) {
      const float g = dyi[o];
      if (g == 0.0f) continue;
      gb[o] += g;
      float* gwo = gw + static_cast<std::size_t>(o) * in_;
      for (int k = 0; k < in_; ++k) gwo[k] += g * xi[k];
    }
  }
  if (dx != nullptr) {
    dx->resize(x.rows, in_);
    for (int i = 0; i < x.rows; ++i) {
      const float* dyi = dy.row(i);
      float* dxi = dx->row(i);
      for (int k = 0; k < in_; ++k) dxi[k] = 0.0f;
      for (int o = 0; o < out_; ++o) {
        const float g = dyi[o];
        if (g == 0.0f) continue;
        const float* wo = w + static_cast<std::size_t>(o) * in_;
        for (int k = 0; k < in_; ++k) dxi[k] += g * wo[k];
      }
    }
  }
}

void Mlp::forward(const float* params, const Tensor& x, Tensor& y,
                  Cache& cache) const {
  l1_.forward(params, x, cache.h_pre);
  cache.h_act.resize(cache.h_pre.rows, cache.h_pre.cols);
  for (std::size_t i = 0; i < cache.h_pre.size(); ++i) {
    const float v = cache.h_pre.d[i];
    cache.h_act.d[i] = v > 0.0f ? v : 0.0f;
  }
  l2_.forward(params, cache.h_act, y);
}

void Mlp::backward(const float* params, const Tensor& x, const Cache& cache,
                   const Tensor& dy, Tensor* dx, float* grads) const {
  thread_local Tensor dh;  // scratch reused across calls on this thread
  l2_.backward(params, cache.h_act, dy, &dh, grads);
  // ReLU mask.
  for (std::size_t i = 0; i < dh.size(); ++i) {
    if (cache.h_pre.d[i] <= 0.0f) dh.d[i] = 0.0f;
  }
  l1_.backward(params, x, dh, dx, grads);
}

}  // namespace ddmgnn::nn
