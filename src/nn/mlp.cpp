#include "nn/mlp.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/parallel.hpp"

namespace ddmgnn::nn {

namespace {

/// Row count above which fused_gemm forks a thread team. Below it (small
/// subdomain graphs, per-node update MLPs) fork/join would dominate.
constexpr long kRowParallelGrain = 4096;
/// Rows handed to one worker task.
constexpr long kRowChunk = 1024;

}  // namespace

/// One block of rows through the outer-product kernel: accumulators live in
/// the output rows (unit stride, simd-friendly), weights are pre-transposed
/// to [in × out] so each input scalar broadcasts against a contiguous weight
/// row. 4-row register blocking amortizes the weight-row loads; per-row
/// results do not depend on where the block boundaries fall.
void fused_gemm_rows(const float* wt, int in, int out, const float* b,
                     bool relu, const Tensor& x, Tensor& y, int row0,
                     int row1) {
  int i = row0;
  for (; i + 4 <= row1; i += 4) {
    const float* x0 = x.row(i);
    const float* x1 = x.row(i + 1);
    const float* x2 = x.row(i + 2);
    const float* x3 = x.row(i + 3);
    float* y0 = y.row(i);
    float* y1 = y.row(i + 1);
    float* y2 = y.row(i + 2);
    float* y3 = y.row(i + 3);
    if (b != nullptr) {
      for (int o = 0; o < out; ++o) {
        y0[o] = b[o];
        y1[o] = b[o];
        y2[o] = b[o];
        y3[o] = b[o];
      }
    } else {
      for (int o = 0; o < out; ++o) y0[o] = y1[o] = y2[o] = y3[o] = 0.0f;
    }
    for (int k = 0; k < in; ++k) {
      const float a0 = x0[k];
      const float a1 = x1[k];
      const float a2 = x2[k];
      const float a3 = x3[k];
      const float* wk = wt + static_cast<std::size_t>(k) * out;
#pragma omp simd
      for (int o = 0; o < out; ++o) {
        y0[o] += a0 * wk[o];
        y1[o] += a1 * wk[o];
        y2[o] += a2 * wk[o];
        y3[o] += a3 * wk[o];
      }
    }
    if (relu) {
#pragma omp simd
      for (int o = 0; o < out; ++o) {
        y0[o] = y0[o] > 0.0f ? y0[o] : 0.0f;
        y1[o] = y1[o] > 0.0f ? y1[o] : 0.0f;
        y2[o] = y2[o] > 0.0f ? y2[o] : 0.0f;
        y3[o] = y3[o] > 0.0f ? y3[o] : 0.0f;
      }
    }
  }
  for (; i < row1; ++i) {
    const float* xi = x.row(i);
    float* yi = y.row(i);
    if (b != nullptr) {
      for (int o = 0; o < out; ++o) yi[o] = b[o];
    } else {
      for (int o = 0; o < out; ++o) yi[o] = 0.0f;
    }
    for (int k = 0; k < in; ++k) {
      const float a = xi[k];
      const float* wk = wt + static_cast<std::size_t>(k) * out;
#pragma omp simd
      for (int o = 0; o < out; ++o) yi[o] += a * wk[o];
    }
    if (relu) {
#pragma omp simd
      for (int o = 0; o < out; ++o) yi[o] = yi[o] > 0.0f ? yi[o] : 0.0f;
    }
  }
}

void fused_gemm(const float* w, int ldw, int col0, int out, const float* b,
                bool relu, const Tensor& x, Tensor& y) {
  const int in = x.cols;
  DDMGNN_ASSERT(col0 >= 0 && col0 + in <= ldw);
  y.resize(x.rows, out);
  if (x.rows == 0 || out == 0) return;
  // Transposed weight slice [in × out] — tiny (layer widths are O(10)), so a
  // per-call transpose is noise next to the row loop; thread_local keeps the
  // buffer alive across the thousands of calls per solve.
  thread_local std::vector<float> wt;
  wt.resize(static_cast<std::size_t>(in) * out);
  for (int o = 0; o < out; ++o) {
    const float* wo = w + static_cast<std::size_t>(o) * ldw + col0;
    for (int k = 0; k < in; ++k) wt[static_cast<std::size_t>(k) * out + o] = wo[k];
  }
  const float* wtp = wt.data();
  const long rows = x.rows;
  if (rows < kRowParallelGrain) {
    fused_gemm_rows(wtp, in, out, b, relu, x, y, 0, static_cast<int>(rows));
    return;
  }
  const long nchunks = (rows + kRowChunk - 1) / kRowChunk;
  parallel_for(
      nchunks,
      [&](long c) {
        const long r0 = c * kRowChunk;
        const long r1 = std::min(rows, r0 + kRowChunk);
        fused_gemm_rows(wtp, in, out, b, relu, x, y, static_cast<int>(r0),
                        static_cast<int>(r1));
      },
      /*grain=*/1);
}

void Linear::init_xavier(std::span<float> values, Rng& rng) const {
  const double bound = std::sqrt(6.0 / (in_ + out_));
  float* w = values.data() + w_.offset;
  for (std::size_t i = 0; i < w_.size(); ++i) {
    w[i] = static_cast<float>(rng.uniform(-bound, bound));
  }
  float* b = values.data() + b_.offset;
  for (std::size_t i = 0; i < b_.size(); ++i) b[i] = 0.0f;
}

void Linear::forward(const float* params, const Tensor& x, Tensor& y) const {
  DDMGNN_ASSERT(x.cols == in_);
  y.resize(x.rows, out_);
  const float* w = params + w_.offset;
  const float* b = params + b_.offset;
  // Scalar reference kernel; the fast path lives in forward_fused.
  for (int i = 0; i < x.rows; ++i) {
    const float* xi = x.row(i);
    float* yi = y.row(i);
    for (int o = 0; o < out_; ++o) {
      const float* wo = w + static_cast<std::size_t>(o) * in_;
      float acc = b[o];
      for (int k = 0; k < in_; ++k) acc += xi[k] * wo[k];
      yi[o] = acc;
    }
  }
}

void Linear::forward_fused(const float* params, const Tensor& x, Tensor& y,
                           bool relu) const {
  DDMGNN_ASSERT(x.cols == in_);
  fused_gemm(params + w_.offset, in_, 0, out_, params + b_.offset, relu, x, y);
}

void Linear::backward(const float* params, const Tensor& x, const Tensor& dy,
                      Tensor* dx, float* grads) const {
  DDMGNN_ASSERT(x.cols == in_ && dy.cols == out_ && dy.rows == x.rows);
  const float* w = params + w_.offset;
  float* gw = grads + w_.offset;
  float* gb = grads + b_.offset;
  for (int i = 0; i < x.rows; ++i) {
    const float* xi = x.row(i);
    const float* dyi = dy.row(i);
    for (int o = 0; o < out_; ++o) {
      const float g = dyi[o];
      if (g == 0.0f) continue;
      gb[o] += g;
      float* gwo = gw + static_cast<std::size_t>(o) * in_;
      for (int k = 0; k < in_; ++k) gwo[k] += g * xi[k];
    }
  }
  if (dx != nullptr) {
    dx->resize(x.rows, in_);
    for (int i = 0; i < x.rows; ++i) {
      const float* dyi = dy.row(i);
      float* dxi = dx->row(i);
      for (int k = 0; k < in_; ++k) dxi[k] = 0.0f;
      for (int o = 0; o < out_; ++o) {
        const float g = dyi[o];
        if (g == 0.0f) continue;
        const float* wo = w + static_cast<std::size_t>(o) * in_;
        for (int k = 0; k < in_; ++k) dxi[k] += g * wo[k];
      }
    }
  }
}

void Mlp::forward(const float* params, const Tensor& x, Tensor& y,
                  Cache& cache) const {
  l1_.forward(params, x, cache.h_pre);
  cache.h_act.resize(cache.h_pre.rows, cache.h_pre.cols);
  for (std::size_t i = 0; i < cache.h_pre.size(); ++i) {
    const float v = cache.h_pre.d[i];
    cache.h_act.d[i] = v > 0.0f ? v : 0.0f;
  }
  l2_.forward(params, cache.h_act, y);
}

void Mlp::infer(const float* params, const Tensor& x, Tensor& y,
                Tensor& hidden) const {
  l1_.forward_fused(params, x, hidden, /*relu=*/true);
  l2_.forward_fused(params, hidden, y, /*relu=*/false);
}

void Mlp::backward(const float* params, const Tensor& x, const Cache& cache,
                   const Tensor& dy, Tensor* dx, float* grads) const {
  thread_local Tensor dh;  // scratch reused across calls on this thread
  l2_.backward(params, cache.h_act, dy, &dh, grads);
  // ReLU mask.
  for (std::size_t i = 0; i < dh.size(); ++i) {
    if (cache.h_pre.d[i] <= 0.0f) dh.d[i] = 0.0f;
  }
  l1_.backward(params, x, dh, dx, grads);
}

}  // namespace ddmgnn::nn
