// Minimal float32 row-major matrix used by the neural-network stack (the
// numerics stack stays double; float mirrors the PyTorch training of the
// paper). No ownership tricks: a Tensor is a resizable buffer with a shape.
#pragma once

#include <cstring>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace ddmgnn::nn {

struct Tensor {
  int rows = 0;
  int cols = 0;
  std::vector<float> d;

  Tensor() = default;
  Tensor(int r, int c) { resize(r, c); }

  void resize(int r, int c) {
    DDMGNN_CHECK(r >= 0 && c >= 0, "Tensor::resize: negative shape");
    rows = r;
    cols = c;
    d.resize(static_cast<std::size_t>(r) * c);
  }

  void zero() { std::memset(d.data(), 0, d.size() * sizeof(float)); }

  float* row(int i) { return d.data() + static_cast<std::size_t>(i) * cols; }
  const float* row(int i) const {
    return d.data() + static_cast<std::size_t>(i) * cols;
  }
  float& at(int i, int j) { return d[static_cast<std::size_t>(i) * cols + j]; }
  float at(int i, int j) const {
    return d[static_cast<std::size_t>(i) * cols + j];
  }
  std::size_t size() const { return d.size(); }
};

}  // namespace ddmgnn::nn
