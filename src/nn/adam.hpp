// Adam optimizer + global-norm gradient clipping + ReduceLROnPlateau — the
// exact training toolkit of §IV-B (Adam lr=1e-2, clipping 1e-2, plateau
// scheduler with factor 0.1).
#pragma once

#include <cmath>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace ddmgnn::nn {

class Adam {
 public:
  explicit Adam(std::size_t num_params, double lr = 1e-2, double beta1 = 0.9,
                double beta2 = 0.999, double eps = 1e-8)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps),
        m_(num_params, 0.0f), v_(num_params, 0.0f) {}

  void step(std::span<float> params, std::span<const float> grads) {
    DDMGNN_CHECK(params.size() == m_.size() && grads.size() == m_.size(),
                 "Adam::step: size mismatch");
    ++t_;
    const double bc1 = 1.0 - std::pow(beta1_, t_);
    const double bc2 = 1.0 - std::pow(beta2_, t_);
    for (std::size_t i = 0; i < params.size(); ++i) {
      const double g = grads[i];
      m_[i] = static_cast<float>(beta1_ * m_[i] + (1.0 - beta1_) * g);
      v_[i] = static_cast<float>(beta2_ * v_[i] + (1.0 - beta2_) * g * g);
      const double mhat = m_[i] / bc1;
      const double vhat = v_[i] / bc2;
      params[i] -= static_cast<float>(lr_ * mhat / (std::sqrt(vhat) + eps_));
    }
  }

  double learning_rate() const { return lr_; }
  void set_learning_rate(double lr) { lr_ = lr; }

 private:
  double lr_;
  double beta1_;
  double beta2_;
  double eps_;
  long t_ = 0;
  std::vector<float> m_;
  std::vector<float> v_;
};

/// Scale `grads` so its l2 norm is at most `max_norm`; returns the pre-clip
/// norm (PyTorch's clip_grad_norm_ semantics).
inline double clip_global_norm(std::span<float> grads, double max_norm) {
  double acc = 0.0;
  for (const float g : grads) acc += static_cast<double>(g) * g;
  const double norm = std::sqrt(acc);
  if (norm > max_norm && norm > 0.0) {
    const float scale = static_cast<float>(max_norm / norm);
    for (float& g : grads) g *= scale;
  }
  return norm;
}

/// ReduceLROnPlateau: multiply lr by `factor` after `patience` epochs without
/// `threshold`-relative improvement.
class ReduceLrOnPlateau {
 public:
  ReduceLrOnPlateau(double factor = 0.1, int patience = 10,
                    double threshold = 1e-4, double min_lr = 1e-6)
      : factor_(factor), patience_(patience), threshold_(threshold),
        min_lr_(min_lr) {}

  /// Returns true if the learning rate was reduced this step.
  bool observe(double loss, Adam& opt) {
    if (loss < best_ * (1.0 - threshold_)) {
      best_ = loss;
      bad_epochs_ = 0;
      return false;
    }
    if (++bad_epochs_ <= patience_) return false;
    bad_epochs_ = 0;
    const double lr = std::max(min_lr_, opt.learning_rate() * factor_);
    const bool changed = lr < opt.learning_rate();
    opt.set_learning_rate(lr);
    return changed;
  }

 private:
  double factor_;
  int patience_;
  double threshold_;
  double min_lr_;
  double best_ = 1e300;
  int bad_epochs_ = 0;
};

}  // namespace ddmgnn::nn
