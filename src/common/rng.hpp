// Deterministic, splittable pseudo-random generation (xoshiro256++ seeded by
// splitmix64). Every stochastic component of the library takes an explicit
// seed so experiments are reproducible independent of thread count; parallel
// regions derive per-task streams with `fork`.
#pragma once

#include <cmath>
#include <cstdint>

namespace ddmgnn {

/// xoshiro256++ generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n) {
    // Lemire's multiply-shift rejection method (unbiased).
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0ull - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Box-Muller (no cached spare: keeps fork() trivial).
  double normal() {
    double u1 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.28318530717958647692 * u2);
  }

  /// Derive an independent stream (for per-thread / per-sample use).
  Rng fork(std::uint64_t stream_id) {
    return Rng((*this)() ^ (0xA24BAED4963EE407ull * (stream_id + 1)));
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace ddmgnn
