// Process-wide experiment options sourced from environment variables, so the
// bench binaries can be scaled without recompiling:
//   DDMGNN_BENCH_SCALE = smoke | default | paper
//   DDMGNN_ARTIFACT_DIR = directory for cached trained models (default
//                         "artifacts" under the current working directory)
//   DDMGNN_TRAIN_BUDGET_S = wall-clock cap (seconds) per training run
#pragma once

#include <cstdlib>
#include <string>

namespace ddmgnn {

/// Bench sizing presets (see DESIGN.md §2).
enum class BenchScale { kSmoke, kDefault, kPaper };

inline BenchScale bench_scale() {
  if (const char* env = std::getenv("DDMGNN_BENCH_SCALE")) {
    const std::string s(env);
    if (s == "smoke") return BenchScale::kSmoke;
    if (s == "paper") return BenchScale::kPaper;
  }
  return BenchScale::kDefault;
}

inline const char* bench_scale_name() {
  switch (bench_scale()) {
    case BenchScale::kSmoke: return "smoke";
    case BenchScale::kPaper: return "paper";
    default: return "default";
  }
}

inline std::string artifact_dir() {
  if (const char* env = std::getenv("DDMGNN_ARTIFACT_DIR")) return env;
  return "artifacts";
}

/// Wall-clock training budget in seconds (0 = unlimited).
inline double train_budget_seconds(double fallback) {
  if (const char* env = std::getenv("DDMGNN_TRAIN_BUDGET_S")) {
    const double v = std::atof(env);
    if (v > 0) return v;
  }
  return fallback;
}

}  // namespace ddmgnn
