// Error-handling helpers: cheap runtime contract checks that abort with a
// readable message. Used at public API boundaries; hot inner loops rely on
// DDMGNN_ASSERT which compiles out in release builds unless
// DDMGNN_ENABLE_ASSERTS is defined.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace ddmgnn {

/// Thrown by DDMGNN_CHECK on contract violations at API boundaries.
class ContractError : public std::runtime_error {
 public:
  explicit ContractError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void raise_contract(const char* cond, const char* file,
                                        int line, const std::string& msg) {
  throw ContractError(std::string(file) + ":" + std::to_string(line) +
                      ": check `" + cond + "` failed" +
                      (msg.empty() ? "" : (": " + msg)));
}
}  // namespace detail

}  // namespace ddmgnn

/// Always-on contract check (throws ContractError). Use at API boundaries.
#define DDMGNN_CHECK(cond, msg)                                        \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::ddmgnn::detail::raise_contract(#cond, __FILE__, __LINE__, msg); \
    }                                                                  \
  } while (0)

/// Debug-only assertion for hot paths.
#if defined(DDMGNN_ENABLE_ASSERTS)
#define DDMGNN_ASSERT(cond) DDMGNN_CHECK(cond, "assert")
#else
#define DDMGNN_ASSERT(cond) ((void)0)
#endif
