// Wall-clock timing utilities used by the benchmark harnesses (Table III /
// Fig. 6 report elapsed seconds) and by the wall-clock training budget guard.
#pragma once

#include <chrono>

namespace ddmgnn {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  void reset() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates time across multiple start/stop windows (e.g. total time spent
/// applying a preconditioner across all PCG iterations, the paper's T_lu and
/// T_gnn columns).
class Accumulator {
 public:
  void start() { timer_.reset(); running_ = true; }
  void stop() {
    if (running_) total_ += timer_.seconds();
    running_ = false;
  }
  /// Fold in a window measured elsewhere (a caller that also needs the raw
  /// delta — e.g. to record it as a trace span — times once and adds here).
  void add(double seconds) { total_ += seconds; }
  double total() const { return total_; }
  void reset() { total_ = 0.0; running_ = false; }

 private:
  Timer timer_;
  double total_ = 0.0;
  bool running_ = false;
};

/// RAII window on an Accumulator.
class ScopedAccumulate {
 public:
  explicit ScopedAccumulate(Accumulator& acc) : acc_(acc) { acc_.start(); }
  ~ScopedAccumulate() { acc_.stop(); }
  ScopedAccumulate(const ScopedAccumulate&) = delete;
  ScopedAccumulate& operator=(const ScopedAccumulate&) = delete;

 private:
  Accumulator& acc_;
};

}  // namespace ddmgnn
