// Thin OpenMP helpers. All parallel loops in the library go through these so
// thread-count policy lives in one place (DDMGNN_THREADS env var overrides
// OMP_NUM_THREADS; benches report the effective count).
#pragma once

#include <omp.h>

#include <cstdlib>
#include <functional>

#include "common/error.hpp"

namespace ddmgnn {

/// Effective worker-thread count (env DDMGNN_THREADS > OpenMP default).
inline int num_threads() {
  static const int n = [] {
    if (const char* env = std::getenv("DDMGNN_THREADS")) {
      const int v = std::atoi(env);
      if (v > 0) return v;
    }
    return omp_get_max_threads();
  }();
  return n;
}

/// Parallel loop over [0, n) with a grain size below which it runs serially
/// (avoids fork/join overhead on tiny subdomain kernels).
template <typename Fn>
void parallel_for(long n, const Fn& body, long grain = 256) {
  if (n <= 0) return;
  if (n < grain || num_threads() == 1) {
    for (long i = 0; i < n; ++i) body(i);
    return;
  }
#pragma omp parallel for schedule(static) num_threads(num_threads())
  for (long i = 0; i < n; ++i) body(i);
}

/// Parallel loop with dynamic scheduling for irregular task costs
/// (per-subdomain factorizations, per-graph GNN inference).
template <typename Fn>
void parallel_for_dynamic(long n, const Fn& body) {
  if (n <= 0) return;
  if (n == 1 || num_threads() == 1) {
    for (long i = 0; i < n; ++i) body(i);
    return;
  }
#pragma omp parallel for schedule(dynamic, 1) num_threads(num_threads())
  for (long i = 0; i < n; ++i) body(i);
}

}  // namespace ddmgnn
