// Thin OpenMP helpers. All parallel loops in the library go through these so
// thread-count policy lives in one place (set_num_threads() > DDMGNN_THREADS
// env var > OMP_NUM_THREADS; benches and tools report the effective count).
#pragma once

#include <omp.h>

#include <atomic>
#include <cstdlib>
#include <functional>

#include "common/error.hpp"

namespace ddmgnn {

namespace detail {
inline std::atomic<int>& thread_override() {
  static std::atomic<int> v{0};
  return v;
}
}  // namespace detail

/// Programmatic thread-count override (tools' --threads flag, tests probing
/// determinism across counts). Values <= 0 restore the environment default.
inline void set_num_threads(int n) {
  detail::thread_override().store(n > 0 ? n : 0, std::memory_order_relaxed);
}

/// Effective worker-thread count
/// (set_num_threads > env DDMGNN_THREADS > OpenMP default).
inline int num_threads() {
  const int overridden =
      detail::thread_override().load(std::memory_order_relaxed);
  if (overridden > 0) return overridden;
  static const int env_default = [] {
    if (const char* env = std::getenv("DDMGNN_THREADS")) {
      const int v = std::atoi(env);
      if (v > 0) return v;
    }
    return omp_get_max_threads();
  }();
  return env_default;
}

/// Parallel loop over [0, n) with a grain size below which it runs serially
/// (avoids fork/join overhead on tiny subdomain kernels). Inside an already
/// active parallel region the loop runs serially on the calling thread —
/// nested teams would only add fork overhead, and keeping the iteration
/// order fixed keeps results identical to the flat case.
template <typename Fn>
void parallel_for(long n, const Fn& body, long grain = 256) {
  if (n <= 0) return;
  if (n < grain || num_threads() == 1 || omp_in_parallel()) {
    for (long i = 0; i < n; ++i) body(i);
    return;
  }
#pragma omp parallel for schedule(static) num_threads(num_threads())
  for (long i = 0; i < n; ++i) body(i);
}

/// Parallel loop with dynamic scheduling for irregular task costs
/// (per-subdomain factorizations, per-graph GNN inference).
template <typename Fn>
void parallel_for_dynamic(long n, const Fn& body) {
  if (n <= 0) return;
  if (n == 1 || num_threads() == 1 || omp_in_parallel()) {
    for (long i = 0; i < n; ++i) body(i);
    return;
  }
#pragma omp parallel for schedule(dynamic, 1) num_threads(num_threads())
  for (long i = 0; i < n; ++i) body(i);
}

}  // namespace ddmgnn
