#include "fem/poisson.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "la/vector_ops.hpp"

namespace ddmgnn::fem {

PoissonProblem assemble_poisson(const Mesh& m, const ScalarField& f,
                                const ScalarField& g,
                                const AssembleOptions& opts) {
  const Index n = m.num_nodes();
  const auto pts = m.points();
  PoissonProblem out;
  out.dirichlet.assign(n, 0);
  for (Index i = 0; i < n; ++i) out.dirichlet[i] = m.is_boundary(i) ? 1 : 0;

  // Cache boundary values once.
  std::vector<double> gval(n, 0.0);
  for (Index i = 0; i < n; ++i) {
    if (out.dirichlet[i]) gval[i] = g(pts[i]);
  }

  out.b.assign(n, 0.0);
  la::CooBuilder coo(n, n);
  coo.reserve(static_cast<std::size_t>(m.num_triangles()) * 9 + n);

  for (Index t = 0; t < m.num_triangles(); ++t) {
    const auto& tri = m.triangles()[t];
    const Point2& p0 = pts[tri[0]];
    const Point2& p1 = pts[tri[1]];
    const Point2& p2 = pts[tri[2]];
    const double area = 0.5 * mesh::orient2d(p0, p1, p2);
    DDMGNN_CHECK(area > 0.0, "assemble_poisson: degenerate/flipped triangle");
    // Gradients of the three barycentric basis functions.
    const double inv2a = 1.0 / (2.0 * area);
    const Point2 grad[3] = {
        {(p1.y - p2.y) * inv2a, (p2.x - p1.x) * inv2a},
        {(p2.y - p0.y) * inv2a, (p0.x - p2.x) * inv2a},
        {(p0.y - p1.y) * inv2a, (p1.x - p0.x) * inv2a},
    };
    // Lumped load: each vertex receives area/3 · f(vertex).
    for (int a = 0; a < 3; ++a) {
      const Index ia = tri[a];
      if (!out.dirichlet[ia]) out.b[ia] += (area / 3.0) * f(pts[ia]);
    }
    // Element stiffness K_ab = area · (∇φ_a · ∇φ_b), folded through the
    // symmetric Dirichlet elimination. Eliminated couplings are either
    // dropped (default) or kept as stored zeros (keep_eliminated_pattern).
    for (int a = 0; a < 3; ++a) {
      const Index ia = tri[a];
      for (int bidx = 0; bidx < 3; ++bidx) {
        const Index ib = tri[bidx];
        const double k = area * grad[a].dot(grad[bidx]);
        if (!out.dirichlet[ia] && !out.dirichlet[ib]) {
          coo.add(ia, ib, k);
          continue;
        }
        if (!out.dirichlet[ia] && out.dirichlet[ib]) {
          out.b[ia] -= k * gval[ib];  // known value moves to the rhs
        }
        if (opts.keep_eliminated_pattern) coo.add(ia, ib, 0.0);
      }
    }
  }
  // Identity rows for Dirichlet dofs keep A SPD on the full space.
  for (Index i = 0; i < n; ++i) {
    if (out.dirichlet[i]) {
      coo.add(i, i, 1.0);
      out.b[i] = gval[i];
    }
  }
  out.A = std::move(coo).build();
  return out;
}

QuadraticData sample_quadratic_data(std::uint64_t seed, double length_scale) {
  Rng rng(seed ^ 0x6A09E667F3BCC909ull);
  QuadraticData q;
  for (double& c : q.r) c = rng.uniform(-10.0, 10.0);
  q.length_scale = length_scale;
  return q;
}

double relative_residual(const CsrMatrix& a, std::span<const double> b,
                         std::span<const double> u) {
  std::vector<double> r = a.apply(u);
  for (std::size_t i = 0; i < r.size(); ++i) r[i] = b[i] - r[i];
  const double nb = la::norm2(b);
  return nb == 0.0 ? la::norm2(r) : la::norm2(r) / nb;
}

}  // namespace ddmgnn::fem
