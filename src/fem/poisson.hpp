// P1 (linear Lagrange) finite-element discretization of the Poisson problem
//   -Δu = f in Ω,  u = g on ∂Ω                                     (paper Eq. 1)
// on unstructured triangle meshes, yielding the linear system A u = b (Eq. 2).
//
// Dirichlet conditions are imposed by *symmetric elimination*: boundary rows
// and columns are replaced by identity, and the known boundary values are
// moved to the right-hand side. The resulting A is SPD on the whole vector
// space (identity on boundary dofs), which is exactly what CG/PCG needs, and
// mirrors the paper's graph view where boundary nodes only feed the interior.
#pragma once

#include <functional>
#include <vector>

#include "la/csr.hpp"
#include "mesh/mesh.hpp"

namespace ddmgnn::fem {

using la::CsrMatrix;
using la::Index;
using mesh::Mesh;
using mesh::Point2;

using ScalarField = std::function<double(const Point2&)>;

/// Discretized Poisson problem: A u = b with Dirichlet data folded in.
struct PoissonProblem {
  CsrMatrix A;
  std::vector<double> b;
  /// 1 for Dirichlet (mesh-boundary) nodes — identity rows of A.
  std::vector<std::uint8_t> dirichlet;
};

struct AssembleOptions {
  /// Keep the couplings removed by the symmetric Dirichlet elimination as
  /// explicitly stored zeros. The operator is numerically unchanged (matrix
  /// action, solutions and factorizations of the stored values are
  /// identical), but its stored pattern then equals the full mesh adjacency —
  /// which is what lets the matrix-first setup path
  /// (SolverSession::setup(A, cfg)) reconstruct the exact mesh graph from
  /// the operator alone.
  bool keep_eliminated_pattern = false;
};

/// Assemble stiffness + load for (f, g) on `m`.
PoissonProblem assemble_poisson(const Mesh& m, const ScalarField& f,
                                const ScalarField& g,
                                const AssembleOptions& opts = {});

/// Random quadratic polynomial data of §IV-A (Eqs. 24–25):
///   f(x,y) = r1 (x-1)² + r2 y² + r3
///   g(x,y) = r4 x² + r5 y² + r6 x y + r7 x + r8 y + r9,  r_i ~ U[-10, 10].
/// `length_scale` rescales the polynomials with the domain radius (the paper
/// rescales f and g when growing meshes): both are evaluated at p/length_scale.
struct QuadraticData {
  double r[9];
  double length_scale = 1.0;

  double f(const Point2& p) const {
    const double x = p.x / length_scale;
    const double y = p.y / length_scale;
    return r[0] * (x - 1.0) * (x - 1.0) + r[1] * y * y + r[2];
  }
  double g(const Point2& p) const {
    const double x = p.x / length_scale;
    const double y = p.y / length_scale;
    return r[3] * x * x + r[4] * y * y + r[5] * x * y + r[6] * x + r[7] * y +
           r[8];
  }
};

QuadraticData sample_quadratic_data(std::uint64_t seed,
                                    double length_scale = 1.0);

/// ||b - A u|| / ||b||.
double relative_residual(const CsrMatrix& a, std::span<const double> b,
                         std::span<const double> u);

}  // namespace ddmgnn::fem
