#include "mesh/delaunay.hpp"

#include <algorithm>
#include <cmath>
#include <tuple>
#include <utility>

#include "common/error.hpp"

namespace ddmgnn::mesh {

bool in_circumcircle(const Point2& a, const Point2& b, const Point2& c,
                     const Point2& p) {
  // Classic lifted-paraboloid determinant, evaluated in long double. For the
  // jittered point sets this library produces, exact predicates are not
  // required; the long-double head absorbs near-degeneracies.
  const long double ax = a.x - p.x, ay = a.y - p.y;
  const long double bx = b.x - p.x, by = b.y - p.y;
  const long double cx = c.x - p.x, cy = c.y - p.y;
  const long double a2 = ax * ax + ay * ay;
  const long double b2 = bx * bx + by * by;
  const long double c2 = cx * cx + cy * cy;
  const long double det = ax * (by * c2 - b2 * cy) -
                          ay * (bx * c2 - b2 * cx) + a2 * (bx * cy - by * cx);
  return det > 0.0L;
}

namespace {

struct Tri {
  std::array<TriIndex, 3> v;   // CCW vertices
  std::array<TriIndex, 3> nb;  // nb[i] = neighbor across edge opposite v[i]
  bool alive = true;
  std::uint32_t stamp = 0;  // cavity-search marker
};

class Triangulator {
 public:
  explicit Triangulator(std::span<const Point2> pts) : input_(pts) {
    pts_.assign(pts.begin(), pts.end());
    build_super_triangle();
  }

  std::vector<std::array<TriIndex, 3>> run() {
    for (TriIndex p = 0; p < static_cast<TriIndex>(input_.size()); ++p) {
      insert(p);
    }
    std::vector<std::array<TriIndex, 3>> out;
    out.reserve(tris_.size());
    const TriIndex n = static_cast<TriIndex>(input_.size());
    for (const Tri& t : tris_) {
      if (!t.alive) continue;
      if (t.v[0] >= n || t.v[1] >= n || t.v[2] >= n) continue;  // super verts
      out.push_back(t.v);
    }
    return out;
  }

 private:
  void build_super_triangle() {
    Point2 lo = pts_.empty() ? Point2{0, 0} : pts_[0];
    Point2 hi = lo;
    for (const Point2& p : pts_) {
      lo.x = std::min(lo.x, p.x);
      lo.y = std::min(lo.y, p.y);
      hi.x = std::max(hi.x, p.x);
      hi.y = std::max(hi.y, p.y);
    }
    const Point2 c{(lo.x + hi.x) / 2, (lo.y + hi.y) / 2};
    const double r = std::max({hi.x - lo.x, hi.y - lo.y, 1.0}) * 64.0;
    const TriIndex base = static_cast<TriIndex>(pts_.size());
    pts_.push_back({c.x - 2.0 * r, c.y - r});
    pts_.push_back({c.x + 2.0 * r, c.y - r});
    pts_.push_back({c.x, c.y + 2.0 * r});
    tris_.push_back(Tri{{base, base + 1, base + 2}, {-1, -1, -1}, true, 0});
    last_tri_ = 0;
  }

  /// Walk from `last_tri_` toward the triangle containing p.
  TriIndex locate(const Point2& p) {
    TriIndex t = last_tri_;
    if (t < 0 || !tris_[t].alive) {
      t = static_cast<TriIndex>(tris_.size()) - 1;
      while (t >= 0 && !tris_[t].alive) --t;
      DDMGNN_CHECK(t >= 0, "delaunay: no live triangle");
    }
    const std::size_t max_steps = tris_.size() * 2 + 64;
    for (std::size_t step = 0; step < max_steps; ++step) {
      const Tri& tri = tris_[t];
      TriIndex next = -1;
      for (int e = 0; e < 3; ++e) {
        const Point2& a = pts_[tri.v[(e + 1) % 3]];
        const Point2& b = pts_[tri.v[(e + 2) % 3]];
        if (orient2d(a, b, p) < 0.0) {  // p on the outer side of edge e
          next = tri.nb[e];
          break;
        }
      }
      if (next == -1) return t;
      t = next;
      DDMGNN_CHECK(t >= 0, "delaunay: walked off the super-triangle");
    }
    // Pathological walk loop: fall back to a linear scan.
    for (TriIndex i = 0; i < static_cast<TriIndex>(tris_.size()); ++i) {
      const Tri& tri = tris_[i];
      if (!tri.alive) continue;
      bool inside = true;
      for (int e = 0; e < 3 && inside; ++e) {
        inside = orient2d(pts_[tri.v[(e + 1) % 3]], pts_[tri.v[(e + 2) % 3]],
                          p) >= 0.0;
      }
      if (inside) return i;
    }
    DDMGNN_CHECK(false, "delaunay: point location failed");
    return -1;
  }

  void insert(TriIndex pid) {
    const Point2& p = pts_[pid];
    const TriIndex seed = locate(p);
    // Grow the cavity: all connected triangles whose circumcircle contains p.
    ++stamp_;
    cavity_.clear();
    stack_.clear();
    stack_.push_back(seed);
    tris_[seed].stamp = stamp_;
    while (!stack_.empty()) {
      const TriIndex t = stack_.back();
      stack_.pop_back();
      const Tri& tri = tris_[t];
      if (!in_circumcircle(pts_[tri.v[0]], pts_[tri.v[1]], pts_[tri.v[2]], p)) {
        // Seed must be in the cavity even if the in-circle test is marginal
        // (point exactly on the circle): force it, otherwise skip.
        if (t != seed) continue;
      }
      cavity_.push_back(t);
      for (int e = 0; e < 3; ++e) {
        const TriIndex n = tri.nb[e];
        if (n >= 0 && tris_[n].stamp != stamp_) {
          tris_[n].stamp = stamp_;
          stack_.push_back(n);
        }
      }
    }
    // Cavity boundary: edges whose far side is not in the cavity.
    in_cavity_stamp_ = ++stamp_;
    for (const TriIndex t : cavity_) tris_[t].stamp = in_cavity_stamp_;
    boundary_.clear();
    for (const TriIndex t : cavity_) {
      const Tri& tri = tris_[t];
      for (int e = 0; e < 3; ++e) {
        const TriIndex n = tri.nb[e];
        if (n >= 0 && tris_[n].stamp == in_cavity_stamp_) continue;
        boundary_.emplace_back(tri.v[(e + 1) % 3], tri.v[(e + 2) % 3],
                               n);  // CCW edge (a, b)
      }
    }
    for (const TriIndex t : cavity_) tris_[t].alive = false;
    // Re-triangulate: fan of (p, a, b) over the boundary cycle.
    first_new_ = static_cast<TriIndex>(tris_.size());
    incoming_.clear();
    for (const auto& [a, b, outer] : boundary_) {
      const TriIndex nt = static_cast<TriIndex>(tris_.size());
      tris_.push_back(Tri{{pid, a, b}, {outer, -1, -1}, true, 0});
      if (outer >= 0) point_neighbor_at(outer, a, b, nt);
      incoming_.emplace_back(a, nt);
    }
    // Stitch the fan: tri (p,a,b) meets the tri whose incoming vertex is b
    // across edge (p,b), and vice versa.
    for (TriIndex i = 0; i < static_cast<TriIndex>(boundary_.size()); ++i) {
      const TriIndex nt = first_new_ + i;
      const TriIndex b = std::get<1>(boundary_[i]);
      for (const auto& [v, other] : incoming_) {
        if (v == b) {
          tris_[nt].nb[1] = other;  // edge opposite v[1]=a is (b, p)
          tris_[other].nb[2] = nt;  // edge opposite v[2]=b is (p, a=b here)
          break;
        }
      }
    }
    last_tri_ = first_new_;
  }

  /// Update `t`'s neighbor pointer across edge (a, b) to `newnb`.
  void point_neighbor_at(TriIndex t, TriIndex a, TriIndex b, TriIndex newnb) {
    Tri& tri = tris_[t];
    for (int e = 0; e < 3; ++e) {
      const TriIndex ea = tri.v[(e + 1) % 3];
      const TriIndex eb = tri.v[(e + 2) % 3];
      if ((ea == a && eb == b) || (ea == b && eb == a)) {
        tri.nb[e] = newnb;
        return;
      }
    }
    DDMGNN_CHECK(false, "delaunay: neighbor edge not found");
  }

  std::span<const Point2> input_;
  std::vector<Point2> pts_;
  std::vector<Tri> tris_;
  TriIndex last_tri_ = -1;
  TriIndex first_new_ = -1;
  std::uint32_t stamp_ = 0;
  std::uint32_t in_cavity_stamp_ = 0;
  std::vector<TriIndex> cavity_;
  std::vector<TriIndex> stack_;
  std::vector<std::tuple<TriIndex, TriIndex, TriIndex>> boundary_;
  std::vector<std::pair<TriIndex, TriIndex>> incoming_;
};

}  // namespace

std::vector<std::array<TriIndex, 3>> delaunay_triangulate(
    std::span<const Point2> pts) {
  DDMGNN_CHECK(pts.size() >= 3, "delaunay: need at least 3 points");
  Triangulator tr(pts);
  return tr.run();
}

}  // namespace ddmgnn::mesh
