#include "mesh/geometry.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ddmgnn::mesh {

double orient2d(const Point2& a, const Point2& b, const Point2& c) {
  const long double acx = static_cast<long double>(a.x) - c.x;
  const long double bcx = static_cast<long double>(b.x) - c.x;
  const long double acy = static_cast<long double>(a.y) - c.y;
  const long double bcy = static_cast<long double>(b.y) - c.y;
  return static_cast<double>(acx * bcy - acy * bcx);
}

double point_segment_distance(const Point2& p, const Point2& a,
                              const Point2& b) {
  const Point2 ab = b - a;
  const double len2 = ab.norm2();
  if (len2 == 0.0) return (p - a).norm();
  double t = (p - a).dot(ab) / len2;
  t = std::clamp(t, 0.0, 1.0);
  return (p - (a + ab * t)).norm();
}

ClosedSpline::ClosedSpline(std::vector<Point2> control)
    : control_(std::move(control)) {
  DDMGNN_CHECK(control_.size() >= 3, "ClosedSpline: need >= 3 control points");
}

Point2 ClosedSpline::evaluate(std::size_t segment, double t) const {
  const std::size_t n = control_.size();
  const Point2& p0 = control_[(segment + n - 1) % n];
  const Point2& p1 = control_[segment % n];
  const Point2& p2 = control_[(segment + 1) % n];
  const Point2& p3 = control_[(segment + 2) % n];
  const double t2 = t * t;
  const double t3 = t2 * t;
  // Uniform Catmull–Rom basis.
  const double c0 = -0.5 * t3 + t2 - 0.5 * t;
  const double c1 = 1.5 * t3 - 2.5 * t2 + 1.0;
  const double c2 = -1.5 * t3 + 2.0 * t2 + 0.5 * t;
  const double c3 = 0.5 * t3 - 0.5 * t2;
  return p0 * c0 + p1 * c1 + p2 * c2 + p3 * c3;
}

std::vector<Point2> ClosedSpline::sample(double spacing) const {
  DDMGNN_CHECK(spacing > 0.0, "ClosedSpline::sample: spacing must be > 0");
  std::vector<Point2> out;
  for (std::size_t s = 0; s < control_.size(); ++s) {
    // Estimate segment length with a coarse subdivision, then sample evenly.
    double len = 0.0;
    Point2 prev = evaluate(s, 0.0);
    constexpr int kProbe = 8;
    for (int i = 1; i <= kProbe; ++i) {
      const Point2 cur = evaluate(s, static_cast<double>(i) / kProbe);
      len += (cur - prev).norm();
      prev = cur;
    }
    const int steps = std::max(1, static_cast<int>(std::ceil(len / spacing)));
    for (int i = 0; i < steps; ++i) {
      out.push_back(evaluate(s, static_cast<double>(i) / steps));
    }
  }
  return out;
}

PolygonLocator::PolygonLocator(std::vector<Point2> vertices)
    : verts_(std::move(vertices)) {
  DDMGNN_CHECK(verts_.size() >= 3, "PolygonLocator: need >= 3 vertices");
  lo_ = hi_ = verts_[0];
  for (const Point2& p : verts_) {
    lo_.x = std::min(lo_.x, p.x);
    lo_.y = std::min(lo_.y, p.y);
    hi_.x = std::max(hi_.x, p.x);
    hi_.y = std::max(hi_.y, p.y);
  }
  const int n = static_cast<int>(verts_.size());
  num_strips_ = std::max(1, n);
  strip_h_ = std::max(1e-12, (hi_.y - lo_.y) / num_strips_);
  // Count-then-fill CSR of segment ids per strip.
  std::vector<int> count(num_strips_ + 1, 0);
  auto strip_range = [&](int seg, int& s0, int& s1) {
    const Point2& a = verts_[seg];
    const Point2& b = verts_[(seg + 1) % n];
    const double ylo = std::min(a.y, b.y);
    const double yhi = std::max(a.y, b.y);
    s0 = std::clamp(static_cast<int>((ylo - lo_.y) / strip_h_), 0,
                    num_strips_ - 1);
    s1 = std::clamp(static_cast<int>((yhi - lo_.y) / strip_h_), 0,
                    num_strips_ - 1);
  };
  for (int seg = 0; seg < n; ++seg) {
    int s0, s1;
    strip_range(seg, s0, s1);
    for (int s = s0; s <= s1; ++s) ++count[s + 1];
  }
  for (int s = 0; s < num_strips_; ++s) count[s + 1] += count[s];
  strip_ptr_ = count;
  strip_segs_.resize(strip_ptr_.back());
  std::vector<int> cursor(strip_ptr_.begin(), strip_ptr_.end() - 1);
  for (int seg = 0; seg < n; ++seg) {
    int s0, s1;
    strip_range(seg, s0, s1);
    for (int s = s0; s <= s1; ++s) strip_segs_[cursor[s]++] = seg;
  }
}

bool PolygonLocator::contains(const Point2& p) const {
  if (p.x < lo_.x || p.x > hi_.x || p.y < lo_.y || p.y > hi_.y) return false;
  const int s =
      std::clamp(static_cast<int>((p.y - lo_.y) / strip_h_), 0, num_strips_ - 1);
  const int n = static_cast<int>(verts_.size());
  bool inside = false;
  for (int k = strip_ptr_[s]; k < strip_ptr_[s + 1]; ++k) {
    const int seg = strip_segs_[k];
    const Point2& a = verts_[seg];
    const Point2& b = verts_[(seg + 1) % n];
    // Even-odd ray cast toward +x; half-open rule avoids double-counting
    // vertices shared by two segments.
    if ((a.y > p.y) != (b.y > p.y)) {
      const double x_int = a.x + (p.y - a.y) * (b.x - a.x) / (b.y - a.y);
      if (x_int > p.x) inside = !inside;
    }
  }
  return inside;
}

bool PolygonLocator::within_clearance(const Point2& p, double clearance) const {
  if (p.x < lo_.x - clearance || p.x > hi_.x + clearance ||
      p.y < lo_.y - clearance || p.y > hi_.y + clearance) {
    return false;
  }
  const int s0 = std::clamp(
      static_cast<int>((p.y - clearance - lo_.y) / strip_h_), 0,
      num_strips_ - 1);
  const int s1 = std::clamp(
      static_cast<int>((p.y + clearance - lo_.y) / strip_h_), 0,
      num_strips_ - 1);
  const int n = static_cast<int>(verts_.size());
  for (int s = s0; s <= s1; ++s) {
    for (int k = strip_ptr_[s]; k < strip_ptr_[s + 1]; ++k) {
      const int seg = strip_segs_[k];
      const Point2& a = verts_[seg];
      const Point2& b = verts_[(seg + 1) % n];
      if (point_segment_distance(p, a, b) < clearance) return true;
    }
  }
  return false;
}

double PolygonLocator::signed_area() const {
  double acc = 0.0;
  const int n = static_cast<int>(verts_.size());
  for (int i = 0; i < n; ++i) {
    acc += verts_[i].cross(verts_[(i + 1) % n]);
  }
  return 0.5 * acc;
}

}  // namespace ddmgnn::mesh
