#include "mesh/mesh.hpp"

#include <algorithm>
#include <fstream>
#include <unordered_map>

#include "common/error.hpp"

namespace ddmgnn::mesh {

Mesh::Mesh(std::vector<Point2> points,
           std::vector<std::array<Index, 3>> triangles)
    : points_(std::move(points)), triangles_(std::move(triangles)) {
  // Normalize winding to CCW so areas and FEM gradients are sign-stable.
  for (auto& t : triangles_) {
    if (orient2d(points_[t[0]], points_[t[1]], points_[t[2]]) < 0.0) {
      std::swap(t[1], t[2]);
    }
  }
  detect_boundary();
  build_adjacency();
}

void Mesh::detect_boundary() {
  // An edge used by exactly one triangle is a boundary edge.
  std::unordered_map<std::uint64_t, int> edge_use;
  edge_use.reserve(triangles_.size() * 3);
  auto key = [](Index a, Index b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | static_cast<std::uint32_t>(b);
  };
  for (const auto& t : triangles_) {
    for (int e = 0; e < 3; ++e) {
      ++edge_use[key(t[e], t[(e + 1) % 3])];
    }
  }
  on_boundary_.assign(points_.size(), 0);
  for (const auto& t : triangles_) {
    for (int e = 0; e < 3; ++e) {
      const Index a = t[e];
      const Index b = t[(e + 1) % 3];
      if (edge_use[key(a, b)] == 1) {
        on_boundary_[a] = 1;
        on_boundary_[b] = 1;
      }
    }
  }
  num_boundary_ = 0;
  for (const auto f : on_boundary_) num_boundary_ += f;
}

void Mesh::build_adjacency() {
  const Index n = num_nodes();
  std::vector<std::vector<Index>> nb(n);
  for (const auto& t : triangles_) {
    for (int e = 0; e < 3; ++e) {
      const Index a = t[e];
      const Index b = t[(e + 1) % 3];
      nb[a].push_back(b);
      nb[b].push_back(a);
    }
  }
  adj_ptr_.assign(static_cast<std::size_t>(n) + 1, 0);
  std::size_t total = 0;
  for (Index i = 0; i < n; ++i) {
    auto& v = nb[i];
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
    total += v.size();
    adj_ptr_[i + 1] = static_cast<Offset>(total);
  }
  adj_.resize(total);
  for (Index i = 0; i < n; ++i) {
    std::copy(nb[i].begin(), nb[i].end(), adj_.begin() + adj_ptr_[i]);
  }
}

double Mesh::triangle_area(Index t) const {
  const auto& tr = triangles_[t];
  return 0.5 * orient2d(points_[tr[0]], points_[tr[1]], points_[tr[2]]);
}

double Mesh::total_area() const {
  double a = 0.0;
  for (Index t = 0; t < num_triangles(); ++t) a += triangle_area(t);
  return a;
}

Index Mesh::diameter_estimate() const {
  if (num_nodes() == 0) return 0;
  auto bfs_far = [&](Index start, Index& depth) {
    std::vector<Index> dist(num_nodes(), -1);
    std::vector<Index> frontier{start};
    dist[start] = 0;
    Index last = start;
    depth = 0;
    while (!frontier.empty()) {
      std::vector<Index> next;
      for (const Index u : frontier) {
        for (Offset k = adj_ptr_[u]; k < adj_ptr_[u + 1]; ++k) {
          const Index v = adj_[k];
          if (dist[v] < 0) {
            dist[v] = dist[u] + 1;
            depth = std::max(depth, dist[v]);
            next.push_back(v);
            last = v;
          }
        }
      }
      frontier.swap(next);
    }
    return last;
  };
  Index d1 = 0, d2 = 0;
  const Index far1 = bfs_far(0, d1);
  bfs_far(far1, d2);
  return std::max(d1, d2);
}

void Mesh::dump(const std::string& path) const {
  std::ofstream out(path);
  DDMGNN_CHECK(out.good(), "Mesh::dump: cannot open " + path);
  out << num_nodes() << " " << num_triangles() << "\n";
  for (const Point2& p : points_) out << p.x << " " << p.y << "\n";
  for (const auto& t : triangles_) {
    out << t[0] << " " << t[1] << " " << t[2] << "\n";
  }
}

}  // namespace ddmgnn::mesh
