// Incremental Bowyer–Watson Delaunay triangulation with walk-based point
// location. Replaces GMSH's triangulator: interior points arrive jittered and
// spatially sorted (row-serpentine), so the walk from the previously touched
// triangle is O(1) amortized and 10⁵–10⁶ point clouds triangulate in seconds.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "mesh/geometry.hpp"

namespace ddmgnn::mesh {

using TriIndex = std::int32_t;

/// Triangulate `pts`; returns CCW triangles of vertex indices. All input
/// points appear in the result (they are inside the synthetic super-triangle,
/// which is stripped afterwards).
std::vector<std::array<TriIndex, 3>> delaunay_triangulate(
    std::span<const Point2> pts);

/// Empty-circumcircle check for tests: true if `p` lies strictly inside the
/// circumcircle of CCW triangle (a, b, c).
bool in_circumcircle(const Point2& a, const Point2& b, const Point2& c,
                     const Point2& p);

}  // namespace ddmgnn::mesh
