// 2D geometry primitives: points, closed Catmull–Rom splines (the "Bezier
// curves through 20 points on the unit circle" of the paper's §IV-A — a
// Catmull–Rom spline is an equivalent C¹ piecewise-cubic closed curve), and
// polygon locators with y-strip acceleration for O(1) inside/clearance
// queries during meshing of 10⁵–10⁶ point clouds.
#pragma once

#include <cmath>
#include <span>
#include <vector>

namespace ddmgnn::mesh {

struct Point2 {
  double x = 0.0;
  double y = 0.0;

  Point2 operator+(const Point2& o) const { return {x + o.x, y + o.y}; }
  Point2 operator-(const Point2& o) const { return {x - o.x, y - o.y}; }
  Point2 operator*(double s) const { return {x * s, y * s}; }
  double dot(const Point2& o) const { return x * o.x + y * o.y; }
  double cross(const Point2& o) const { return x * o.y - y * o.x; }
  double norm() const { return std::hypot(x, y); }
  double norm2() const { return x * x + y * y; }
};

/// Orientation predicate: > 0 if (a,b,c) is counter-clockwise. Evaluated in
/// extended precision to keep the Delaunay walk robust on jittered grids.
double orient2d(const Point2& a, const Point2& b, const Point2& c);

/// Distance from p to segment [a, b].
double point_segment_distance(const Point2& p, const Point2& a,
                              const Point2& b);

/// Closed C¹ interpolating spline (centripetal-free uniform Catmull–Rom)
/// through `control` points. `sample(spacing)` returns a polyline whose
/// vertices are at most ~`spacing` apart (first vertex not repeated at end).
class ClosedSpline {
 public:
  explicit ClosedSpline(std::vector<Point2> control);

  Point2 evaluate(std::size_t segment, double t) const;
  std::vector<Point2> sample(double spacing) const;
  std::size_t num_segments() const { return control_.size(); }

 private:
  std::vector<Point2> control_;
};

/// Closed polyline with accelerated point-in-polygon (even-odd rule) and
/// distance-below-threshold queries. Vertices are implicitly closed.
class PolygonLocator {
 public:
  explicit PolygonLocator(std::vector<Point2> vertices);

  bool contains(const Point2& p) const;
  /// True iff dist(p, boundary) < clearance.
  bool within_clearance(const Point2& p, double clearance) const;
  /// Signed area (positive if counter-clockwise).
  double signed_area() const;
  const std::vector<Point2>& vertices() const { return verts_; }
  void bounding_box(Point2& lo, Point2& hi) const { lo = lo_; hi = hi_; }

 private:
  std::span<const int> strip(double y_lo, double y_hi, int& first_strip) const;

  std::vector<Point2> verts_;
  Point2 lo_, hi_;
  double strip_h_ = 1.0;
  int num_strips_ = 1;
  // Per-strip segment index lists (CSR layout).
  std::vector<int> strip_ptr_;
  std::vector<int> strip_segs_;
};

/// A meshing domain: one outer boundary plus zero or more holes.
struct Domain {
  PolygonLocator outer;
  std::vector<PolygonLocator> holes;

  explicit Domain(std::vector<Point2> outer_polyline)
      : outer(std::move(outer_polyline)) {}

  void add_hole(std::vector<Point2> hole_polyline) {
    holes.emplace_back(std::move(hole_polyline));
  }

  bool contains(const Point2& p) const {
    if (!outer.contains(p)) return false;
    for (const auto& h : holes)
      if (h.contains(p)) return false;
    return true;
  }

  bool within_clearance(const Point2& p, double c) const {
    if (outer.within_clearance(p, c)) return true;
    for (const auto& h : holes)
      if (h.within_clearance(p, c)) return true;
    return false;
  }

  /// Area of outer region minus holes.
  double area() const {
    double a = std::abs(outer.signed_area());
    for (const auto& h : holes) a -= std::abs(h.signed_area());
    return a;
  }

  void bounding_box(Point2& lo, Point2& hi) const {
    outer.bounding_box(lo, hi);
  }
};

}  // namespace ddmgnn::mesh
