// Unstructured triangular mesh container. Produced by the generator, consumed
// by the FEM assembler (element loops), the partitioner (node adjacency), and
// the GNN graph builder (node coordinates -> edge geometry features).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "la/csr.hpp"
#include "mesh/geometry.hpp"

namespace ddmgnn::mesh {

using la::Index;
using la::Offset;

class Mesh {
 public:
  Mesh() = default;
  /// Takes ownership of geometry; derives boundary flags and node adjacency.
  Mesh(std::vector<Point2> points,
       std::vector<std::array<Index, 3>> triangles);

  Index num_nodes() const { return static_cast<Index>(points_.size()); }
  Index num_triangles() const { return static_cast<Index>(triangles_.size()); }

  std::span<const Point2> points() const { return points_; }
  std::span<const std::array<Index, 3>> triangles() const {
    return triangles_;
  }

  /// True for nodes on the domain boundary (incident to a once-used edge).
  bool is_boundary(Index node) const { return on_boundary_[node] != 0; }
  std::span<const std::uint8_t> boundary_flags() const { return on_boundary_; }
  Index num_boundary_nodes() const { return num_boundary_; }

  /// Node-to-node adjacency (undirected, via triangle edges, no self loops),
  /// CSR layout with sorted neighbor lists.
  std::span<const Offset> adj_ptr() const { return adj_ptr_; }
  std::span<const Index> adj() const { return adj_; }

  /// Area of triangle t (positive; triangles are stored CCW).
  double triangle_area(Index t) const;
  double total_area() const;

  /// Graph diameter estimate (two BFS sweeps) — the paper ties the required
  /// number of MPNN layers to mesh diameter, benches report it.
  Index diameter_estimate() const;

  /// Writes "x y\n" per node then "a b c\n" per triangle — simple CSV-ish dump
  /// used by the Fig. 4 bench so partitions can be plotted externally.
  void dump(const std::string& path) const;

 private:
  void detect_boundary();
  void build_adjacency();

  std::vector<Point2> points_;
  std::vector<std::array<Index, 3>> triangles_;
  std::vector<std::uint8_t> on_boundary_;
  Index num_boundary_ = 0;
  std::vector<Offset> adj_ptr_;
  std::vector<Index> adj_;
};

}  // namespace ddmgnn::mesh
