// Mesh generation front-end: the repository's GMSH substitute.
//
//  * `random_domain` reproduces §IV-A: ~20 radial control points around the
//    unit circle joined by a smooth closed spline; `radius_scale` implements
//    the paper's "increase the radius, keep the element size fixed" protocol.
//  * `f1_domain` builds the caricatural Formula-1 silhouette with holes
//    (cockpit + front/rear wing stripes) used in the Fig. 5 large-scale test.
//  * `generate_mesh` triangulates any Domain with jittered interior points at
//    spacing `h`; `generate_mesh_target_nodes` calibrates `h` to hit a node
//    budget (the paper's N ≈ 2k / 7k / 10k / ... / 600k configurations).
#pragma once

#include <cstdint>

#include "mesh/geometry.hpp"
#include "mesh/mesh.hpp"

namespace ddmgnn::mesh {

/// Random smooth blob domain (paper §IV-A). `radius_scale` multiplies the
/// whole shape; `num_control` defaults to the paper's 20 boundary points.
Domain random_domain(std::uint64_t seed, double radius_scale = 1.0,
                     int num_control = 20);

/// Elongated "caricatural Formula 1" silhouette with three holes.
/// `scale` stretches the whole shape (length ≈ 6·scale).
Domain f1_domain(double scale = 1.0);

/// Triangulate `domain` with target edge length `h`. Interior points sit on a
/// jittered grid (jitter `jitter`·h) and keep `clearance`·h distance from the
/// boundary polylines so boundary-conforming triangles stay well shaped.
Mesh generate_mesh(const Domain& domain, double h, std::uint64_t seed,
                   double jitter = 0.22, double clearance = 0.6);

/// Pick `h` so the mesh lands within ~5% of `target_nodes` (two calibration
/// passes), then mesh. The paper's element size for the 6–8k-node unit blobs
/// is recovered with target_nodes≈7000.
Mesh generate_mesh_target_nodes(const Domain& domain, Index target_nodes,
                                std::uint64_t seed);

/// Element size matching the training distribution: h such that a unit-scale
/// random blob meshes to ≈7000 nodes. Benches use this with scaled domains so
/// "bigger N" always means "bigger domain, same elements" as in the paper.
double training_element_size();

}  // namespace ddmgnn::mesh
