#include "mesh/generator.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "mesh/delaunay.hpp"

namespace ddmgnn::mesh {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Sampled ellipse polyline (used for holes).
std::vector<Point2> ellipse_polyline(Point2 center, double rx, double ry,
                                     double spacing) {
  const double circumference = kPi * (3 * (rx + ry) -
                                      std::sqrt((3 * rx + ry) * (rx + 3 * ry)));
  const int n = std::max(12, static_cast<int>(circumference / spacing));
  std::vector<Point2> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) {
    const double a = 2.0 * kPi * i / n;
    out.push_back({center.x + rx * std::cos(a), center.y + ry * std::sin(a)});
  }
  return out;
}

}  // namespace

Domain random_domain(std::uint64_t seed, double radius_scale,
                     int num_control) {
  DDMGNN_CHECK(num_control >= 5, "random_domain: need >= 5 control points");
  Rng rng(seed);
  std::vector<Point2> control;
  control.reserve(num_control);
  for (int i = 0; i < num_control; ++i) {
    const double angle = 2.0 * kPi * (i + 0.25 * rng.uniform(-1.0, 1.0)) /
                         num_control;
    const double radius = radius_scale * (1.0 + 0.35 * rng.uniform(-1.0, 1.0));
    control.push_back({radius * std::cos(angle), radius * std::sin(angle)});
  }
  ClosedSpline spline(std::move(control));
  // Boundary polyline sampled far below the element size; generate_mesh
  // re-samples at h, this just fixes the geometry accurately.
  return Domain(spline.sample(0.02 * radius_scale));
}

Domain f1_domain(double scale) {
  // A smooth elongated silhouette: radius profile r(θ) stretched in x.
  std::vector<Point2> control;
  const int n = 40;
  for (int i = 0; i < n; ++i) {
    const double a = 2.0 * kPi * i / n;
    // Car-ish outline: long body, bulge at the cockpit, tapered nose/tail.
    const double body = 1.0 + 0.35 * std::cos(2 * a) + 0.12 * std::sin(3 * a);
    control.push_back({3.0 * scale * std::cos(a) * body,
                       0.8 * scale * std::sin(a) * body});
  }
  ClosedSpline spline(std::move(control));
  Domain d(spline.sample(0.02 * scale));
  const double hole_spacing = 0.02 * scale;
  // Cockpit opening.
  d.add_hole(ellipse_polyline({0.3 * scale, 0.1 * scale}, 0.45 * scale,
                              0.22 * scale, hole_spacing));
  // Front-wing stripe (thin ellipse ~ rounded slot).
  d.add_hole(ellipse_polyline({-2.0 * scale, -0.05 * scale}, 0.5 * scale,
                              0.08 * scale, hole_spacing));
  // Rear-wing stripe.
  d.add_hole(ellipse_polyline({2.1 * scale, 0.0}, 0.4 * scale, 0.07 * scale,
                              hole_spacing));
  return d;
}

Mesh generate_mesh(const Domain& domain, double h, std::uint64_t seed,
                   double jitter, double clearance) {
  DDMGNN_CHECK(h > 0.0, "generate_mesh: h must be > 0");
  Rng rng(seed ^ 0xD1B54A32D192ED03ull);

  std::vector<Point2> pts;
  // 1. Boundary vertices: resample each polyline at spacing h.
  auto resample = [&](const std::vector<Point2>& poly) {
    const int n = static_cast<int>(poly.size());
    double per = 0.0;
    for (int i = 0; i < n; ++i) per += (poly[(i + 1) % n] - poly[i]).norm();
    const int m = std::max(8, static_cast<int>(per / h));
    const double step = per / m;
    double carried = 0.0;
    for (int i = 0; i < n; ++i) {
      const Point2 a = poly[i];
      const Point2 b = poly[(i + 1) % n];
      const double len = (b - a).norm();
      if (len == 0.0) continue;
      double t = (step - carried) / len;
      while (t <= 1.0) {
        pts.push_back(a + (b - a) * t);
        t += step / len;
      }
      carried = std::fmod(carried + len, step);
    }
  };
  resample(domain.outer.vertices());
  for (const auto& hole : domain.holes) resample(hole.vertices());
  const std::size_t num_boundary_pts = pts.size();

  // 2. Interior vertices: jittered triangular-ish grid (rows offset by h/2)
  //    serpentine-ordered so the Delaunay walk stays local.
  Point2 lo, hi;
  domain.bounding_box(lo, hi);
  const double row_h = h * 0.8660254037844386;  // sqrt(3)/2: hex packing
  const int rows = static_cast<int>((hi.y - lo.y) / row_h) + 1;
  for (int r = 0; r <= rows; ++r) {
    const double y = lo.y + r * row_h;
    const double x0 = lo.x + ((r % 2) ? 0.5 * h : 0.0);
    const int cols = static_cast<int>((hi.x - x0) / h) + 1;
    for (int ci = 0; ci <= cols; ++ci) {
      const int c = (r % 2) ? (cols - ci) : ci;  // serpentine order
      Point2 p{x0 + c * h, y};
      p.x += jitter * h * rng.uniform(-1.0, 1.0);
      p.y += jitter * h * rng.uniform(-1.0, 1.0);
      if (!domain.contains(p)) continue;
      if (domain.within_clearance(p, clearance * h)) continue;
      pts.push_back(p);
    }
  }
  DDMGNN_CHECK(pts.size() >= 16, "generate_mesh: domain too small for h");

  // 3. Delaunay + mask triangles whose centroid leaves the domain.
  auto tris = delaunay_triangulate(pts);
  std::vector<std::array<Index, 3>> kept;
  kept.reserve(tris.size());
  for (const auto& t : tris) {
    const Point2 c = (pts[t[0]] + pts[t[1]] + pts[t[2]]) * (1.0 / 3.0);
    if (!domain.contains(c)) continue;
    // Drop boundary slivers (all three vertices on the boundary polyline and
    // nearly collinear) — they would produce near-singular FEM elements.
    const double area =
        0.5 * std::abs(orient2d(pts[t[0]], pts[t[1]], pts[t[2]]));
    if (area < 1e-4 * h * h) continue;
    kept.push_back({static_cast<Index>(t[0]), static_cast<Index>(t[1]),
                    static_cast<Index>(t[2])});
  }

  // 4. Compact node numbering (drop unused points, if any).
  std::vector<Index> remap(pts.size(), -1);
  std::vector<Point2> used;
  used.reserve(pts.size());
  for (auto& t : kept) {
    for (auto& v : t) {
      if (remap[v] < 0) {
        remap[v] = static_cast<Index>(used.size());
        used.push_back(pts[v]);
      }
      v = remap[v];
    }
  }
  (void)num_boundary_pts;
  return Mesh(std::move(used), std::move(kept));
}

Mesh generate_mesh_target_nodes(const Domain& domain, Index target_nodes,
                                std::uint64_t seed) {
  DDMGNN_CHECK(target_nodes >= 32, "generate_mesh_target_nodes: target small");
  // Hex-packed density: one node per h²·sqrt(3)/2 of area.
  const double area = domain.area();
  double h = std::sqrt(area / (0.8660254 * target_nodes));
  for (int pass = 0; pass < 2; ++pass) {
    Mesh m = generate_mesh(domain, h, seed);
    const double ratio =
        static_cast<double>(m.num_nodes()) / static_cast<double>(target_nodes);
    if (ratio > 0.95 && ratio < 1.05) return m;
    h *= std::sqrt(ratio);
  }
  return generate_mesh(domain, h, seed);
}

double training_element_size() {
  // Calibrated once against random_domain(seed, 1.0): gives ≈7000 nodes on a
  // unit-scale blob (paper trains on 6000-8000-node meshes).
  return 0.0245;
}

}  // namespace ddmgnn::mesh
