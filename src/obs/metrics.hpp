// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// histograms with lock-free update paths. Registration (first lookup of a
// name) takes a mutex; the returned reference is stable for the process
// lifetime, so hot paths resolve once and update forever:
//
//   static obs::Gauge& g =
//       obs::Registry::instance().gauge("asm.restrict_seconds");
//   g.add(dt);   // one atomic RMW, no lock, no lookup
//
// Instruments may carry a label string ("precond=ddm-gnn,clients=8"); the
// full identity is "name{labels}". snapshot_json() exports everything in one
// deterministic JSON document (what bench_serving --metrics writes).
//
// Canonical metric names are documented in the README "Observability"
// section; dominant_phase() below knows the apply-phase subset ("asm.*" /
// "dss.*" *_seconds gauges) used to summarize where preconditioner time went.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ddmgnn::obs {

/// Monotonic event count. All updates are single relaxed RMWs.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Settable / accumulable double (phase seconds totals, live sizes).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double v) { v_.fetch_add(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper edges, with
/// an implicit +inf overflow bucket. observe() is lock-free (one bucket RMW
/// plus count/sum/min/max RMWs); quantile() linearly interpolates within the
/// containing bucket and clamps to the observed min/max.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;
  double max() const;
  /// q in [0, 1]; returns 0 when empty.
  double quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// i in [0, bounds().size()]; the last index is the +inf overflow bucket.
  std::uint64_t bucket_count(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  void reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  // bounds_.size()+1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Log-spaced 1-2-5 seconds buckets from 10µs to 100s — the default for
/// latency histograms (per-solve serve latency, apply time).
std::vector<double> default_latency_buckets();

class Registry {
 public:
  static Registry& instance();

  /// Find-or-create. References stay valid for the process lifetime. A name
  /// must keep one instrument kind: re-requesting it as another kind throws.
  Counter& counter(std::string_view name, std::string_view labels = {});
  Gauge& gauge(std::string_view name, std::string_view labels = {});
  Histogram& histogram(std::string_view name, std::string_view labels = {},
                       const std::vector<double>& bounds = {});

  /// Nullptr when the instrument was never registered (value-read helpers for
  /// tools that report deltas without forcing registration).
  const Gauge* find_gauge(std::string_view name,
                          std::string_view labels = {}) const;
  const Counter* find_counter(std::string_view name,
                              std::string_view labels = {}) const;

  /// One JSON document with counters / gauges / histograms (each histogram
  /// includes count, sum, min, max, p50/p90/p95/p99, and bucket counts),
  /// sorted by full name.
  std::string snapshot_json() const;
  void write_json(const std::string& path) const;

  /// Zero every registered instrument (registrations persist). Tests and
  /// delta-reporting tools only; concurrent updates are not lost-safe across
  /// a reset, merely race-free.
  void reset();

 private:
  Registry() = default;

  struct Entry {
    std::string full_name;  // "name" or "name{labels}"
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Entry* find_locked(const std::string& full_name) const;

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

/// Name of the largest apply-phase gauge ("asm.*" / "dss.*" *_seconds): the
/// one-word answer to "where did preconditioner time go". When the DSS phase
/// gauges are populated they replace their parent asm.subdomain_solve_seconds
/// in the comparison (a child can never out-rank the span that contains it).
/// Empty string when no phase gauge has fired. `seconds_out` (optional)
/// receives the winner's value.
std::string dominant_phase(double* seconds_out = nullptr);

}  // namespace ddmgnn::obs
