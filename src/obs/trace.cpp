#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace ddmgnn::obs {

namespace {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string fmt_us(std::int64_t ns) {
  // Chrome trace timestamps/durations are microseconds; keep ns precision as
  // a fraction.
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1000.0);
  return buf;
}

std::string fmt_arg(double v) {
  if (!std::isfinite(v)) return "\"non-finite\"";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

TraceRecorder::TraceRecorder() : epoch_ns_(steady_now_ns()) {}

TraceRecorder& TraceRecorder::instance() {
  static TraceRecorder* r = new TraceRecorder();  // leaked, like Registry
  return *r;
}

std::int64_t TraceRecorder::now_ns() const {
  return steady_now_ns() - epoch_ns_;
}

TraceRecorder::ThreadBuffer& TraceRecorder::local_buffer() {
  // One buffer per OS thread (OMP pool threads keep theirs across parallel
  // regions). The recorder holds a shared_ptr too, so a drain can still read
  // a buffer whose thread has exited.
  thread_local std::shared_ptr<ThreadBuffer> buf = [this] {
    auto b = std::make_shared<ThreadBuffer>();
    b->capacity = capacity_.load(std::memory_order_relaxed);
    b->tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
    b->events.reserve(std::min<std::size_t>(b->capacity, 1024));
    std::lock_guard<std::mutex> lock(buffers_mutex_);
    buffers_.push_back(b);
    return b;
  }();
  return *buf;
}

void TraceRecorder::record(const TraceEvent& e) {
  ThreadBuffer& buf = local_buffer();
  std::lock_guard<std::mutex> lock(buf.mutex);  // uncontended except on drain
  if (buf.events.size() >= buf.capacity) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TraceEvent copy = e;
  copy.tid = buf.tid;
  buf.events.push_back(copy);
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::vector<std::shared_ptr<ThreadBuffer>> bufs;
  {
    std::lock_guard<std::mutex> lock(buffers_mutex_);
    bufs = buffers_;
  }
  std::vector<TraceEvent> out;
  for (const auto& b : bufs) {
    std::lock_guard<std::mutex> lock(b->mutex);
    out.insert(out.end(), b->events.begin(), b->events.end());
  }
  return out;
}

void TraceRecorder::clear() {
  std::vector<std::shared_ptr<ThreadBuffer>> bufs;
  {
    std::lock_guard<std::mutex> lock(buffers_mutex_);
    bufs = buffers_;
  }
  for (const auto& b : bufs) {
    std::lock_guard<std::mutex> lock(b->mutex);
    b->events.clear();
  }
  dropped_.store(0, std::memory_order_relaxed);
}

std::string TraceRecorder::chrome_trace_json() const {
  std::vector<TraceEvent> events = snapshot();
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
              return a.dur_ns > b.dur_ns;  // parents before children
            });
  std::string out = "{\"traceEvents\": [\n";
  bool first = true;
  for (const TraceEvent& e : events) {
    out += first ? "" : ",\n";
    first = false;
    out += "  {\"name\": \"";
    out += e.name;
    out += "\", \"cat\": \"ddmgnn\", \"pid\": 1, \"tid\": " +
           std::to_string(e.tid) + ", \"ts\": " + fmt_us(e.ts_ns);
    if (e.dur_ns >= 0) {
      out += ", \"ph\": \"X\", \"dur\": " + fmt_us(e.dur_ns);
    } else {
      out += ", \"ph\": \"i\", \"s\": \"t\"";
    }
    if (e.arg_key1 != nullptr) {
      out += ", \"args\": {\"";
      out += e.arg_key1;
      out += "\": " + fmt_arg(e.arg_val1);
      if (e.arg_key2 != nullptr) {
        out += ", \"";
        out += e.arg_key2;
        out += "\": " + fmt_arg(e.arg_val2);
      }
      out += "}";
    }
    out += "}";
  }
  out += "\n], \"displayTimeUnit\": \"ms\", \"otherData\": {\"dropped\": " +
         std::to_string(dropped()) + "}}\n";
  return out;
}

void TraceRecorder::write_chrome_trace(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("obs: cannot write " + path);
  f << chrome_trace_json();
}

void Span::finish() {
  TraceRecorder& rec = TraceRecorder::instance();
  TraceEvent e;
  e.name = name_;
  e.ts_ns = start_ns_;
  e.dur_ns = rec.now_ns() - start_ns_;
  e.arg_key1 = arg_key1_;
  e.arg_val1 = arg_val1_;
  e.arg_key2 = arg_key2_;
  e.arg_val2 = arg_val2_;
  rec.record(e);
}

void instant(const char* name, const char* key, double value) {
  if (!trace_enabled()) return;
  TraceRecorder& rec = TraceRecorder::instance();
  TraceEvent e;
  e.name = name;
  e.ts_ns = rec.now_ns();
  e.dur_ns = -1;
  e.arg_key1 = key;
  e.arg_val1 = value;
  rec.record(e);
}

void emit_span(const char* name, std::int64_t start_ns, std::int64_t dur_ns,
               const char* key, double value) {
  if (!trace_enabled()) return;
  TraceEvent e;
  e.name = name;
  e.ts_ns = start_ns;
  e.dur_ns = dur_ns < 0 ? 0 : dur_ns;
  e.arg_key1 = key;
  e.arg_val1 = value;
  TraceRecorder::instance().record(e);
}

void PhaseTimer::finish() {
  TraceRecorder& rec = TraceRecorder::instance();
  const std::int64_t end_ns = rec.now_ns();
  if (gauge_ != nullptr) {
    gauge_->add(static_cast<double>(end_ns - start_ns_) * 1e-9);
  }
  if (tracing_) {
    TraceEvent e;
    e.name = name_;
    e.ts_ns = start_ns_;
    e.dur_ns = end_ns - start_ns_;
    rec.record(e);
  }
}

}  // namespace ddmgnn::obs
