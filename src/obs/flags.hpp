// Process-wide telemetry toggles. All three default OFF so the instrumented
// hot paths (Krylov iterations, AdditiveSchwarz::apply, DSS forwards) pay only
// a relaxed atomic load per check — the "near-zero overhead when disabled"
// contract bench_precond_apply's <2% regression gate enforces.
//
//   metrics   — counters / gauges / histograms in obs::Registry
//   trace     — obs::Span events into obs::TraceRecorder ring buffers
//   forensics — per-iteration residual + preconditioner-time series capture
//               into SolveResult (heavier: grows vectors inside the solve)
//
// Flags are independent; set_* may be flipped at any time from any thread.
// In-flight spans/phases latch the flag value at construction, so a mid-solve
// toggle yields a torn-but-safe picture (some spans recorded, none corrupt).
#pragma once

#include <atomic>

namespace ddmgnn::obs {

namespace detail {
inline std::atomic<bool>& metrics_flag() {
  static std::atomic<bool> v{false};
  return v;
}
inline std::atomic<bool>& trace_flag() {
  static std::atomic<bool> v{false};
  return v;
}
inline std::atomic<bool>& forensics_flag() {
  static std::atomic<bool> v{false};
  return v;
}
}  // namespace detail

inline bool metrics_enabled() {
  return detail::metrics_flag().load(std::memory_order_relaxed);
}
inline void set_metrics_enabled(bool on) {
  detail::metrics_flag().store(on, std::memory_order_relaxed);
}

inline bool trace_enabled() {
  return detail::trace_flag().load(std::memory_order_relaxed);
}
inline void set_trace_enabled(bool on) {
  detail::trace_flag().store(on, std::memory_order_relaxed);
}

inline bool forensics_enabled() {
  return detail::forensics_flag().load(std::memory_order_relaxed);
}
inline void set_forensics_enabled(bool on) {
  detail::forensics_flag().store(on, std::memory_order_relaxed);
}

/// True when any timing consumer is live — the phase instrumentation reads
/// the clock only then.
inline bool timing_enabled() { return metrics_enabled() || trace_enabled(); }

}  // namespace ddmgnn::obs
