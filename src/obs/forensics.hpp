// Convergence forensics: the structured *why* behind converged == false.
// SolveResult carries one of these for every driver (scalar Krylov, block
// Krylov, stationary iteration); solver::classify_failure assigns it from the
// residual history, so a serving log or metrics snapshot can separate "ran
// out of budget while converging" from "the preconditioner made it worse".
#pragma once

namespace ddmgnn::obs {

enum class FailureReason {
  kNone = 0,       // converged (or not yet classified)
  kMaxIterations,  // hit the iteration budget while still making progress
  kStagnated,      // residual stopped improving (<1% over the trailing window)
  kDiverged,       // residual grew well past its starting value
  kNan,            // residual became NaN/Inf (breakdown)
};

inline const char* failure_reason_name(FailureReason r) {
  switch (r) {
    case FailureReason::kNone: return "none";
    case FailureReason::kMaxIterations: return "max-iterations";
    case FailureReason::kStagnated: return "stagnated";
    case FailureReason::kDiverged: return "diverged";
    case FailureReason::kNan: return "nan";
  }
  return "unknown";
}

constexpr int kNumFailureReasons = 5;

}  // namespace ddmgnn::obs
