// Per-solve trace spans: RAII obs::Span writes complete events into
// per-thread buffers owned by the process-wide obs::TraceRecorder, drained on
// demand to Chrome trace_event JSON (load in about:tracing or
// https://ui.perfetto.dev). Nesting is positional — Chrome infers parent/child
// from timestamp containment on one thread track — so a Span on the stack
// inside another Span renders as its child, including spans emitted from OMP
// worker threads during a subdomain solve.
//
// Cost model: a disabled Span is one relaxed atomic load and zero clock
// reads; an enabled Span is two clock reads plus one short uncontended
// per-thread mutex hold. Event names must be string literals (or otherwise
// outlive the recorder) — events store the pointer, not a copy.
//
//   {
//     OBS_SPAN("asm.apply");          // anonymous scope span
//     ...
//   }
//   obs::Span it("pcg.iter");
//   it.arg("rel_residual", rnorm / bnorm);   // numeric args on the event
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/flags.hpp"
#include "obs/metrics.hpp"

namespace ddmgnn::obs {

struct TraceEvent {
  const char* name = nullptr;
  std::int64_t ts_ns = 0;    // start, since TraceRecorder epoch
  std::int64_t dur_ns = -1;  // < 0 ⇒ instant event
  int tid = 0;
  // Up to two optional numeric args (keys are literals, like name).
  const char* arg_key1 = nullptr;
  double arg_val1 = 0.0;
  const char* arg_key2 = nullptr;
  double arg_val2 = 0.0;
};

/// Process-wide sink for trace events. Each thread appends to its own
/// fixed-capacity buffer (drop-newest past capacity, counted in dropped());
/// snapshot/clear/write lock each buffer briefly, so draining while other
/// threads keep tracing is safe.
class TraceRecorder {
 public:
  static TraceRecorder& instance();

  /// Nanoseconds on the steady clock since this recorder's epoch.
  std::int64_t now_ns() const;

  void record(const TraceEvent& e);

  /// All buffered events across threads (no global ordering guarantee; sort
  /// by ts_ns if you need one).
  std::vector<TraceEvent> snapshot() const;
  void clear();
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Events a single thread's buffer holds before dropping (default 1<<16).
  /// Applies to buffers created after the call.
  void set_capacity_per_thread(std::size_t n) {
    capacity_.store(n, std::memory_order_relaxed);
  }

  /// Chrome trace_event JSON ("traceEvents" array of "X"/"i" events).
  std::string chrome_trace_json() const;
  void write_chrome_trace(const std::string& path) const;

 private:
  TraceRecorder();

  struct ThreadBuffer {
    mutable std::mutex mutex;
    std::vector<TraceEvent> events;
    std::size_t capacity = 0;
    int tid = 0;
  };
  ThreadBuffer& local_buffer();

  std::int64_t epoch_ns_;
  std::atomic<std::size_t> capacity_{1u << 16};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<int> next_tid_{1};
  mutable std::mutex buffers_mutex_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
};

/// RAII complete-event span. Latches trace_enabled() at construction: zero
/// clock reads when tracing is off.
class Span {
 public:
  explicit Span(const char* name) {
    if (trace_enabled()) {
      name_ = name;
      start_ns_ = TraceRecorder::instance().now_ns();
    }
  }
  ~Span() {
    if (name_ != nullptr) finish();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach a numeric arg (first two stick; extras are dropped). `key` must
  /// be a string literal.
  void arg(const char* key, double value) {
    if (name_ == nullptr) return;
    if (arg_key1_ == nullptr) {
      arg_key1_ = key;
      arg_val1_ = value;
    } else if (arg_key2_ == nullptr) {
      arg_key2_ = key;
      arg_val2_ = value;
    }
  }

  bool active() const { return name_ != nullptr; }

 private:
  void finish();

  const char* name_ = nullptr;
  std::int64_t start_ns_ = 0;
  const char* arg_key1_ = nullptr;
  double arg_val1_ = 0.0;
  const char* arg_key2_ = nullptr;
  double arg_val2_ = 0.0;
};

/// Zero-duration marker (cache hit/miss, eviction). One relaxed load when
/// tracing is off.
void instant(const char* name, const char* key = nullptr, double value = 0.0);

/// Emit an already-measured span [start_ns, start_ns + dur_ns) on the calling
/// thread's track — how the DssPhaseProfile bridge lays phase children inside
/// a dss.forward parent after the fact.
void emit_span(const char* name, std::int64_t start_ns, std::int64_t dur_ns,
               const char* key = nullptr, double value = 0.0);

/// Times one phase into a seconds Gauge (when metrics are on) and a span
/// (when tracing is on); reads the clock only if either consumer is live.
/// The canonical instrumentation primitive for setup/apply phases:
///
///   static obs::Gauge& g = obs::Registry::instance().gauge("asm.coarse_seconds");
///   { obs::PhaseTimer t("asm.coarse", &g); coarse_->apply_add(r, z); }
class PhaseTimer {
 public:
  explicit PhaseTimer(const char* name, Gauge* gauge = nullptr) {
    if (timing_enabled()) {
      name_ = name;
      gauge_ = metrics_enabled() ? gauge : nullptr;
      tracing_ = trace_enabled();
      start_ns_ = TraceRecorder::instance().now_ns();
    }
  }
  ~PhaseTimer() {
    if (name_ != nullptr) finish();
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  void finish();

  const char* name_ = nullptr;
  Gauge* gauge_ = nullptr;
  bool tracing_ = false;
  std::int64_t start_ns_ = 0;
};

#define DDMGNN_OBS_CONCAT_(a, b) a##b
#define DDMGNN_OBS_CONCAT(a, b) DDMGNN_OBS_CONCAT_(a, b)
/// Anonymous scope-lifetime Span.
#define OBS_SPAN(name) \
  ::ddmgnn::obs::Span DDMGNN_OBS_CONCAT(obs_span_, __LINE__)(name)

}  // namespace ddmgnn::obs
