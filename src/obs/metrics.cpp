#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace ddmgnn::obs {

namespace {

std::string full_name_of(std::string_view name, std::string_view labels) {
  std::string full(name);
  if (!labels.empty()) {
    full += '{';
    full += labels;
    full += '}';
  }
  return full;
}

std::string fmt_double(double v) {
  if (!std::isfinite(v)) {
    // JSON has no Infinity/NaN literals; quote them.
    return v > 0 ? "\"inf\"" : (v < 0 ? "\"-inf\"" : "\"nan\"");
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

// Atomic fetch-min/fetch-max via CAS (atomic<double> has no built-in).
void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}
void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_ = default_latency_buckets();
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("Histogram: bucket bounds must be ascending");
  }
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  atomic_min(min_, v);
  atomic_max(max_, v);
}

double Histogram::min() const {
  const double v = min_.load(std::memory_order_relaxed);
  return std::isfinite(v) ? v : 0.0;
}

double Histogram::max() const {
  const double v = max_.load(std::memory_order_relaxed);
  return std::isfinite(v) ? v : 0.0;
}

double Histogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(n);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    const std::uint64_t c = bucket_count(i);
    if (c == 0) continue;
    if (static_cast<double>(seen + c) >= rank) {
      const double lo = i == 0 ? std::min(0.0, min()) : bounds_[i - 1];
      const double hi = i < bounds_.size() ? bounds_[i] : max();
      const double frac =
          (rank - static_cast<double>(seen)) / static_cast<double>(c);
      const double est = lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
      return std::clamp(est, min(), max());
    }
    seen += c;
  }
  return max();
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

std::vector<double> default_latency_buckets() {
  std::vector<double> b;
  for (double decade = 1e-5; decade < 1e3; decade *= 10.0) {
    b.push_back(decade);
    b.push_back(2.0 * decade);
    b.push_back(5.0 * decade);
  }
  return b;  // 1e-5, 2e-5, 5e-5, ..., 100, 200, 500 seconds
}

Registry& Registry::instance() {
  static Registry* r = new Registry();  // leaked: usable from static dtors
  return *r;
}

Registry::Entry* Registry::find_locked(const std::string& full_name) const {
  for (const auto& e : entries_) {
    if (e->full_name == full_name) return e.get();
  }
  return nullptr;
}

Counter& Registry::counter(std::string_view name, std::string_view labels) {
  const std::string full = full_name_of(name, labels);
  std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* e = find_locked(full)) {
    if (!e->counter) {
      throw std::logic_error("obs: '" + full + "' is not a counter");
    }
    return *e->counter;
  }
  auto e = std::make_unique<Entry>();
  e->full_name = full;
  e->counter = std::make_unique<Counter>();
  Counter& ref = *e->counter;
  entries_.push_back(std::move(e));
  return ref;
}

Gauge& Registry::gauge(std::string_view name, std::string_view labels) {
  const std::string full = full_name_of(name, labels);
  std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* e = find_locked(full)) {
    if (!e->gauge) {
      throw std::logic_error("obs: '" + full + "' is not a gauge");
    }
    return *e->gauge;
  }
  auto e = std::make_unique<Entry>();
  e->full_name = full;
  e->gauge = std::make_unique<Gauge>();
  Gauge& ref = *e->gauge;
  entries_.push_back(std::move(e));
  return ref;
}

Histogram& Registry::histogram(std::string_view name, std::string_view labels,
                               const std::vector<double>& bounds) {
  const std::string full = full_name_of(name, labels);
  std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* e = find_locked(full)) {
    if (!e->histogram) {
      throw std::logic_error("obs: '" + full + "' is not a histogram");
    }
    return *e->histogram;
  }
  auto e = std::make_unique<Entry>();
  e->full_name = full;
  e->histogram = std::make_unique<Histogram>(bounds);
  Histogram& ref = *e->histogram;
  entries_.push_back(std::move(e));
  return ref;
}

const Gauge* Registry::find_gauge(std::string_view name,
                                  std::string_view labels) const {
  const std::string full = full_name_of(name, labels);
  std::lock_guard<std::mutex> lock(mutex_);
  const Entry* e = find_locked(full);
  return e ? e->gauge.get() : nullptr;
}

const Counter* Registry::find_counter(std::string_view name,
                                      std::string_view labels) const {
  const std::string full = full_name_of(name, labels);
  std::lock_guard<std::mutex> lock(mutex_);
  const Entry* e = find_locked(full);
  return e ? e->counter.get() : nullptr;
}

std::string Registry::snapshot_json() const {
  std::vector<const Entry*> sorted;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    sorted.reserve(entries_.size());
    for (const auto& e : entries_) sorted.push_back(e.get());
  }
  std::sort(sorted.begin(), sorted.end(), [](const Entry* a, const Entry* b) {
    return a->full_name < b->full_name;
  });

  std::string out = "{\n  \"counters\": [";
  bool first = true;
  for (const Entry* e : sorted) {
    if (!e->counter) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": \"" + e->full_name +
           "\", \"value\": " + std::to_string(e->counter->value()) + "}";
  }
  out += first ? "],\n" : "\n  ],\n";

  out += "  \"gauges\": [";
  first = true;
  for (const Entry* e : sorted) {
    if (!e->gauge) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": \"" + e->full_name +
           "\", \"value\": " + fmt_double(e->gauge->value()) + "}";
  }
  out += first ? "],\n" : "\n  ],\n";

  out += "  \"histograms\": [";
  first = true;
  for (const Entry* e : sorted) {
    if (!e->histogram) continue;
    const Histogram& h = *e->histogram;
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": \"" + e->full_name + "\", \"count\": " +
           std::to_string(h.count()) + ", \"sum\": " + fmt_double(h.sum()) +
           ", \"min\": " + fmt_double(h.min()) +
           ", \"max\": " + fmt_double(h.max()) +
           ", \"p50\": " + fmt_double(h.quantile(0.50)) +
           ", \"p90\": " + fmt_double(h.quantile(0.90)) +
           ", \"p95\": " + fmt_double(h.quantile(0.95)) +
           ", \"p99\": " + fmt_double(h.quantile(0.99)) + ", \"buckets\": [";
    for (std::size_t i = 0; i <= h.bounds().size(); ++i) {
      if (i > 0) out += ", ";
      const std::string le =
          i < h.bounds().size() ? fmt_double(h.bounds()[i]) : "\"inf\"";
      out += "{\"le\": " + le +
             ", \"count\": " + std::to_string(h.bucket_count(i)) + "}";
    }
    out += "]}";
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

void Registry::write_json(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("obs: cannot write " + path);
  f << snapshot_json();
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& e : entries_) {
    if (e->counter) e->counter->reset();
    if (e->gauge) e->gauge->reset();
    if (e->histogram) e->histogram->reset();
  }
}

std::string dominant_phase(double* seconds_out) {
  // Leaf apply phases: the DSS phases live inside asm.subdomain_solve, so
  // when any of them fired, the parent drops out of the comparison.
  static const char* const kDssPhases[] = {
      "dss.projection_seconds", "dss.gather_seconds", "dss.aggregate_seconds",
      "dss.update_seconds", "dss.decode_seconds"};
  static const char* const kAsmPhases[] = {
      "asm.restrict_seconds", "asm.subdomain_solve_seconds",
      "asm.coarse_seconds", "asm.prolong_seconds"};

  Registry& reg = Registry::instance();
  double dss_total = 0.0;
  for (const char* name : kDssPhases) {
    if (const Gauge* g = reg.find_gauge(name)) dss_total += g->value();
  }

  std::string best;
  double best_v = 0.0;
  auto consider = [&](const char* name) {
    const Gauge* g = reg.find_gauge(name);
    if (g && g->value() > best_v) {
      best_v = g->value();
      best = name;
    }
  };
  for (const char* name : kAsmPhases) {
    if (dss_total > 0.0 &&
        std::string_view(name) == "asm.subdomain_solve_seconds") {
      continue;
    }
    consider(name);
  }
  if (dss_total > 0.0) {
    for (const char* name : kDssPhases) consider(name);
  }
  if (seconds_out) *seconds_out = best_v;
  return best;
}

}  // namespace ddmgnn::obs
