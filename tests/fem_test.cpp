// FEM assembly tests: SPD-ness, Dirichlet handling, manufactured solutions,
// convergence under refinement.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "fem/poisson.hpp"
#include "la/skyline_cholesky.hpp"
#include "la/vector_ops.hpp"
#include "mesh/generator.hpp"
#include "solver/krylov.hpp"

namespace {

using namespace ddmgnn;
using la::Index;
using mesh::Point2;

TEST(Fem, StiffnessIsSymmetric) {
  const mesh::Mesh m = mesh::generate_mesh(mesh::random_domain(2), 0.08, 2);
  const auto prob = fem::assemble_poisson(
      m, [](const Point2&) { return 1.0; }, [](const Point2&) { return 0.0; });
  EXPECT_LT(prob.A.symmetry_defect(), 1e-12);
}

TEST(Fem, DirichletRowsAreIdentity) {
  const mesh::Mesh m = mesh::generate_mesh(mesh::random_domain(3), 0.1, 3);
  const auto prob = fem::assemble_poisson(
      m, [](const Point2&) { return 1.0; },
      [](const Point2& p) { return p.x + 2.0 * p.y; });
  for (Index i = 0; i < m.num_nodes(); ++i) {
    if (!prob.dirichlet[i]) continue;
    EXPECT_DOUBLE_EQ(prob.A.at(i, i), 1.0);
    EXPECT_DOUBLE_EQ(prob.b[i], m.points()[i].x + 2.0 * m.points()[i].y);
    // Whole row is just the diagonal.
    const auto rp = prob.A.row_ptr();
    EXPECT_EQ(rp[i + 1] - rp[i], 1);
  }
}

TEST(Fem, ExactForLinearSolutions) {
  // P1 elements reproduce affine functions exactly: -Δu = 0, u = g = affine.
  const mesh::Mesh m = mesh::generate_mesh(mesh::random_domain(5), 0.07, 5);
  const auto prob = fem::assemble_poisson(
      m, [](const Point2&) { return 0.0; },
      [](const Point2& p) { return 3.0 * p.x - 2.0 * p.y + 0.5; });
  la::SkylineCholesky chol(prob.A);
  const auto u = chol.solve(prob.b);
  double max_err = 0.0;
  for (Index i = 0; i < m.num_nodes(); ++i) {
    const double exact = 3.0 * m.points()[i].x - 2.0 * m.points()[i].y + 0.5;
    max_err = std::max(max_err, std::abs(u[i] - exact));
  }
  EXPECT_LT(max_err, 1e-9);
}

TEST(Fem, ConvergesForManufacturedQuadratic) {
  // u = x² + y² -> f = -Δu = -4, g = u. P1 error is O(h²) in L∞-ish norm.
  auto solve_err = [](double h) {
    const mesh::Mesh m =
        mesh::generate_mesh(mesh::random_domain(7), h, 7);
    const auto prob = fem::assemble_poisson(
        m, [](const Point2&) { return -4.0; },
        [](const Point2& p) { return p.x * p.x + p.y * p.y; });
    la::SkylineCholesky chol(prob.A);
    const auto u = chol.solve(prob.b);
    double err = 0.0;
    for (Index i = 0; i < m.num_nodes(); ++i) {
      const Point2& p = m.points()[i];
      err = std::max(err, std::abs(u[i] - (p.x * p.x + p.y * p.y)));
    }
    return err;
  };
  const double e1 = solve_err(0.12);
  const double e2 = solve_err(0.06);
  EXPECT_LT(e2, e1);        // refinement helps
  EXPECT_LT(e2, 0.05);      // and the absolute error is small
}

TEST(Fem, SpdOnRandomProblems) {
  // x' A x > 0 for random x: a practical SPD probe (A also passes Cholesky).
  const mesh::Mesh m = mesh::generate_mesh(mesh::random_domain(11), 0.09, 11);
  const auto data = fem::sample_quadratic_data(11);
  const auto prob = fem::assemble_poisson(
      m, [&](const Point2& p) { return data.f(p); },
      [&](const Point2& p) { return data.g(p); });
  EXPECT_NO_THROW(la::SkylineCholesky{prob.A});
  Rng rng(12);
  for (int t = 0; t < 20; ++t) {
    std::vector<double> x(m.num_nodes());
    for (double& v : x) v = rng.uniform(-1.0, 1.0);
    const auto ax = prob.A.apply(x);
    EXPECT_GT(la::dot(x, ax), 0.0);
  }
}

TEST(Fem, QuadraticDataMatchesPaperForm) {
  const auto q = fem::sample_quadratic_data(123);
  for (const double c : q.r) {
    EXPECT_GE(c, -10.0);
    EXPECT_LE(c, 10.0);
  }
  // f(x,y) = r1 (x-1)² + r2 y² + r3 at a few points.
  const Point2 p{0.3, -0.7};
  EXPECT_NEAR(q.f(p),
              q.r[0] * (0.3 - 1) * (0.3 - 1) + q.r[1] * 0.49 + q.r[2], 1e-12);
  EXPECT_NEAR(q.g(p),
              q.r[3] * 0.09 + q.r[4] * 0.49 + q.r[5] * (0.3 * -0.7) +
                  q.r[6] * 0.3 + q.r[7] * -0.7 + q.r[8],
              1e-12);
  // Length scaling: g at (s·x, s·y) with scale s equals unscaled g at (x, y).
  const auto qs = fem::QuadraticData{{q.r[0], q.r[1], q.r[2], q.r[3], q.r[4],
                                      q.r[5], q.r[6], q.r[7], q.r[8]},
                                     2.0};
  EXPECT_NEAR(qs.g({0.6, -1.4}), q.g(p), 1e-12);
}

TEST(Fem, RelativeResidualZeroAtSolution) {
  const mesh::Mesh m = mesh::generate_mesh(mesh::random_domain(15), 0.1, 15);
  const auto prob = fem::assemble_poisson(
      m, [](const Point2&) { return 1.0; }, [](const Point2&) { return 0.0; });
  la::SkylineCholesky chol(prob.A);
  const auto u = chol.solve(prob.b);
  EXPECT_LT(fem::relative_residual(prob.A, prob.b, u), 1e-12);
  std::vector<double> zero(u.size(), 0.0);
  EXPECT_NEAR(fem::relative_residual(prob.A, prob.b, zero), 1.0, 1e-12);
}

}  // namespace
