// DSS model tests: graph construction rules, parameter-count parity with the
// paper's Table II, full-model finite-difference gradient check, training
// loss descent, serialization round-trip, metric sanity.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "common/rng.hpp"
#include "gnn/dss_model.hpp"
#include "gnn/graph.hpp"
#include "gnn/metrics.hpp"
#include "gnn/model_io.hpp"
#include "gnn/trainer.hpp"
#include "la/csr.hpp"
#include "la/vector_ops.hpp"
#include "mesh/geometry.hpp"

namespace {

using namespace ddmgnn;
using la::CooBuilder;
using la::CsrMatrix;
using la::Index;
using mesh::Point2;

/// Small synthetic local problem: SPD grid Laplacian on an nx×ny point grid,
/// with the left column marked Dirichlet (identity rows).
struct TinyProblem {
  std::shared_ptr<gnn::GraphTopology> topo;
  std::vector<double> rhs;
};

TinyProblem tiny_problem(int nx, int ny, std::uint64_t seed) {
  const Index n = nx * ny;
  std::vector<Point2> coords(n);
  std::vector<std::uint8_t> dirichlet(n, 0);
  auto id = [&](int i, int j) { return i * ny + j; };
  for (int i = 0; i < nx; ++i) {
    for (int j = 0; j < ny; ++j) {
      coords[id(i, j)] = {0.1 * i, 0.1 * j};
      if (i == 0) dirichlet[id(i, j)] = 1;
    }
  }
  CooBuilder coo(n, n);
  CooBuilder pattern(n, n);  // full grid adjacency = the "mesh" graph
  for (int i = 0; i < nx; ++i) {
    for (int j = 0; j < ny; ++j) {
      const Index u = id(i, j);
      auto link = [&](int i2, int j2) {
        if (i2 < 0 || i2 >= nx || j2 < 0 || j2 >= ny) return;
        pattern.add(u, id(i2, j2), 1.0);
      };
      link(i - 1, j);
      link(i + 1, j);
      link(i, j - 1);
      link(i, j + 1);
      if (dirichlet[u]) {
        coo.add(u, u, 1.0);
        continue;
      }
      double diag = 0.0;
      auto couple = [&](int i2, int j2) {
        if (i2 < 0 || i2 >= nx || j2 < 0 || j2 >= ny) return;
        const Index v = id(i2, j2);
        diag += 1.0;
        if (!dirichlet[v]) coo.add(u, v, -1.0);
      };
      couple(i - 1, j);
      couple(i + 1, j);
      couple(i, j - 1);
      couple(i, j + 1);
      coo.add(u, u, diag + 0.5);
    }
  }
  TinyProblem p;
  const CsrMatrix mesh_pattern = std::move(pattern).build();
  p.topo = gnn::build_topology(std::move(coo).build(), coords, dirichlet,
                               &mesh_pattern);
  Rng rng(seed);
  p.rhs.resize(n);
  for (double& v : p.rhs) v = rng.uniform(-1, 1);
  const double norm = la::norm2(p.rhs);
  for (double& v : p.rhs) v /= norm;
  return p;
}

TEST(Graph, DirichletNodesReceiveNoMessages) {
  const TinyProblem p = tiny_problem(4, 3, 1);
  for (Index e = 0; e < p.topo->num_edges(); ++e) {
    EXPECT_FALSE(p.topo->dirichlet[p.topo->recv[e]]);
  }
  // But Dirichlet nodes do send: at least one edge has a Dirichlet sender.
  bool dirichlet_sender = false;
  for (Index e = 0; e < p.topo->num_edges(); ++e) {
    if (p.topo->dirichlet[p.topo->send[e]]) dirichlet_sender = true;
  }
  EXPECT_TRUE(dirichlet_sender);
}

TEST(Graph, EdgeAttributesAreRelativePositions) {
  const TinyProblem p = tiny_problem(3, 3, 2);
  // Every interior-interior pair appears in both directions with opposite dx.
  for (Index e = 0; e < p.topo->num_edges(); ++e) {
    const float dx = p.topo->attr[3 * e];
    const float dy = p.topo->attr[3 * e + 1];
    const float dist = p.topo->attr[3 * e + 2];
    EXPECT_NEAR(dist, std::hypot(dx, dy), 1e-6);
    EXPECT_NEAR(dist, 0.1f, 1e-6);  // grid spacing
  }
}

TEST(DssModel, ParameterCountsMatchPaperTable2) {
  // Paper Table II "Nb Weights" for the strict architecture (no flag input):
  //   (k̄=5,  d=5)  -> 1755      (k̄=10, d=10) -> 12510
  //   (k̄=20, d=20) -> 94020     (k̄=30, d=10) -> 37530
  struct Row {
    int k, d;
    std::size_t weights;
  };
  for (const Row row : {Row{5, 5, 1755}, Row{10, 10, 12510},
                        Row{20, 20, 94020}, Row{30, 10, 37530},
                        Row{5, 10, 6255}, Row{20, 5, 7020}}) {
    gnn::DssConfig cfg;
    cfg.iterations = row.k;
    cfg.latent = row.d;
    cfg.hidden = row.d;  // paper uses hidden width 10; Table II scales the
                         // MLPs with d (counts only match with hidden = d)
    cfg.dirichlet_flag = false;
    const gnn::DssModel model(cfg, 0);
    EXPECT_EQ(model.num_params(), row.weights)
        << "k=" << row.k << " d=" << row.d;
  }
}

TEST(DssModel, ForwardIsDeterministicAndInputSensitive) {
  const TinyProblem p = tiny_problem(5, 4, 3);
  gnn::DssConfig cfg;
  cfg.iterations = 3;
  cfg.latent = 6;
  cfg.hidden = 8;
  const gnn::DssModel model(cfg, 11);
  gnn::GraphSample s{p.topo, p.rhs};
  gnn::DssWorkspace ws;
  std::vector<float> out1, out2;
  model.forward(s, ws, out1);
  model.forward(s, ws, out2);
  ASSERT_EQ(out1.size(), static_cast<std::size_t>(p.topo->n));
  EXPECT_EQ(out1, out2);
  // Different rhs -> different output.
  gnn::GraphSample s2 = s;
  s2.rhs[3] += 0.5;
  std::vector<float> out3;
  model.forward(s2, ws, out3);
  double diff = 0.0;
  for (std::size_t i = 0; i < out1.size(); ++i)
    diff += std::abs(out1[i] - out3[i]);
  EXPECT_GT(diff, 1e-6);
}

TEST(DssModel, GradientMatchesFiniteDifferences) {
  const TinyProblem p = tiny_problem(4, 3, 5);
  gnn::DssConfig cfg;
  cfg.iterations = 2;
  cfg.latent = 4;
  cfg.hidden = 5;
  cfg.alpha = 0.2f;  // larger alpha -> larger, easier-to-check gradients
  gnn::DssModel model(cfg, 21);
  gnn::GraphSample s{p.topo, p.rhs};
  gnn::DssWorkspace ws;

  std::vector<float> grads(model.num_params(), 0.0f);
  const double loss0 = model.loss_and_gradient(s, ws, grads.data());
  EXPECT_GT(loss0, 0.0);

  auto loss_at = [&]() {
    gnn::DssWorkspace w2;
    std::vector<float> tmp(model.num_params(), 0.0f);
    return model.loss_and_gradient(s, w2, tmp.data());
  };
  Rng rng(31);
  auto params = model.params();
  const double eps = 2e-3;
  int checked = 0;
  for (int trial = 0; trial < 200 && checked < 40; ++trial) {
    const auto idx = rng.uniform_index(params.size());
    const float saved = params[idx];
    params[idx] = saved + static_cast<float>(eps);
    const double lp = loss_at();
    params[idx] = saved - static_cast<float>(eps);
    const double lm = loss_at();
    params[idx] = saved;
    const double fd = (lp - lm) / (2 * eps);
    if (std::abs(fd) < 1e-4 && std::abs(grads[idx]) < 1e-4) continue;
    EXPECT_NEAR(grads[idx], fd, 2e-3 + 0.08 * std::abs(fd))
        << "param " << idx;
    ++checked;
  }
  EXPECT_GE(checked, 10);
}

TEST(DssModel, LossGradientAccumulates) {
  const TinyProblem p = tiny_problem(3, 3, 7);
  gnn::DssConfig cfg;
  cfg.iterations = 2;
  cfg.latent = 3;
  cfg.hidden = 4;
  const gnn::DssModel model(cfg, 5);
  gnn::GraphSample s{p.topo, p.rhs};
  gnn::DssWorkspace ws;
  std::vector<float> g1(model.num_params(), 0.0f);
  model.loss_and_gradient(s, ws, g1.data());
  std::vector<float> g2(model.num_params(), 0.0f);
  model.loss_and_gradient(s, ws, g2.data());
  model.loss_and_gradient(s, ws, g2.data());  // accumulate twice
  for (std::size_t i = 0; i < g1.size(); ++i) {
    EXPECT_NEAR(g2[i], 2.0f * g1[i], 1e-4 + 1e-3 * std::abs(g1[i]));
  }
}

TEST(Trainer, LossDecreasesOnTinyDataset) {
  std::vector<gnn::GraphSample> train;
  for (int i = 0; i < 12; ++i) {
    const TinyProblem p = tiny_problem(5, 4, 100 + i);
    train.push_back({p.topo, p.rhs});
  }
  gnn::DssConfig cfg;
  cfg.iterations = 4;
  cfg.latent = 6;
  cfg.hidden = 8;
  cfg.alpha = 0.1f;
  gnn::DssModel model(cfg, 77);
  const double before = gnn::mean_residual_loss(model, train);
  gnn::TrainConfig tc;
  tc.epochs = 30;
  tc.batch_size = 6;
  tc.learning_rate = 5e-3;
  tc.clip_norm = 1.0;
  tc.seed = 9;
  const auto report = gnn::train_dss(model, train, {}, tc);
  EXPECT_EQ(report.epochs_run, 30);
  const double after = gnn::mean_residual_loss(model, train);
  EXPECT_LT(after, 0.7 * before);
  EXPECT_LT(report.epoch_loss.back(), report.epoch_loss.front());
}

TEST(ModelIo, RoundTripPreservesModel) {
  gnn::DssConfig cfg;
  cfg.iterations = 3;
  cfg.latent = 5;
  cfg.hidden = 6;
  cfg.alpha = 0.07f;
  cfg.dirichlet_flag = true;
  const gnn::DssModel model(cfg, 13);
  const std::string path = "test_model_roundtrip.bin";
  gnn::save_model(model, path);
  auto loaded = gnn::load_model(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->config().iterations, 3);
  EXPECT_EQ(loaded->config().latent, 5);
  EXPECT_FLOAT_EQ(loaded->config().alpha, 0.07f);
  ASSERT_EQ(loaded->num_params(), model.num_params());
  const auto a = model.params();
  const auto b = loaded->params();
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  // And identical predictions.
  const TinyProblem p = tiny_problem(4, 4, 51);
  gnn::GraphSample s{p.topo, p.rhs};
  gnn::DssWorkspace ws;
  std::vector<float> o1, o2;
  model.forward(s, ws, o1);
  loaded->forward(s, ws, o2);
  EXPECT_EQ(o1, o2);
  std::filesystem::remove(path);
}

TEST(ModelIo, LoadRejectsMissingOrGarbage) {
  EXPECT_FALSE(gnn::load_model("does_not_exist.bin").has_value());
  const std::string path = "test_model_garbage.bin";
  {
    std::ofstream f(path, std::ios::binary);
    f << "not a model";
  }
  EXPECT_FALSE(gnn::load_model(path).has_value());
  std::filesystem::remove(path);
}

TEST(Metrics, EvaluateReportsResidualAndRelativeError) {
  std::vector<gnn::GraphSample> samples;
  for (int i = 0; i < 6; ++i) {
    const TinyProblem p = tiny_problem(5, 5, 200 + i);
    samples.push_back({p.topo, p.rhs});
  }
  gnn::DssConfig cfg;
  cfg.iterations = 3;
  cfg.latent = 5;
  cfg.hidden = 6;
  const gnn::DssModel model(cfg, 3);
  const auto m = gnn::evaluate_dss(model, samples);
  EXPECT_EQ(m.num_samples, 6u);
  EXPECT_GT(m.residual_mean, 0.0);
  EXPECT_GT(m.rel_error_mean, 0.0);
  // Untrained model: prediction ~0 -> RMS residual ≈ ‖c‖/√n = 1/√25,
  // rel error ≈ 1.
  EXPECT_NEAR(m.residual_mean, 0.2, 0.15);
  EXPECT_NEAR(m.rel_error_mean, 1.0, 0.4);
}

}  // namespace
