// SolveService behavior: batched windows return bitwise what the direct
// session paths return for the same window composition, backpressure honors
// the queue cap under both admission policies, QoS deadlines shrink windows,
// shutdown drains every admitted future, warm starts converge immediately,
// and a multi-producer stress run (the TSan CI target) completes every
// request exactly once.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/session_cache.hpp"
#include "core/solve_service.hpp"
#include "la/vector_ops.hpp"

namespace {

using namespace ddmgnn;
using namespace std::chrono_literals;
using la::Index;

la::CsrMatrix grid_laplacian(Index side, double shift) {
  const Index n = side * side;
  la::CooBuilder coo(n, n);
  for (Index r = 0; r < side; ++r) {
    for (Index c = 0; c < side; ++c) {
      const Index i = r * side + c;
      coo.add(i, i, 4.0 + shift);
      if (r > 0) coo.add(i, i - side, -1.0);
      if (r + 1 < side) coo.add(i, i + side, -1.0);
      if (c > 0) coo.add(i, i - 1, -1.0);
      if (c + 1 < side) coo.add(i, i + 1, -1.0);
    }
  }
  return std::move(coo).build();
}

core::HybridConfig lu_config() {
  core::HybridConfig cfg;
  cfg.preconditioner = "ddm-lu";
  cfg.subdomain_target_nodes = 200;
  cfg.rel_tol = 1e-8;
  cfg.track_history = false;
  return cfg;
}

std::vector<double> random_rhs(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> b(n);
  for (double& v : b) v = rng.uniform(-1.0, 1.0);
  return b;
}

/// A paused service admits without executing, so tests compose windows
/// deterministically: submit exactly the batch, then resume.
core::ServiceConfig paused_friendly(int max_batch,
                                    std::chrono::microseconds max_wait) {
  core::ServiceConfig cfg;
  cfg.num_workers = 2;
  cfg.max_batch = max_batch;
  cfg.max_wait = max_wait;
  return cfg;
}

TEST(SolveServiceWindow, BatchedWindowBitwiseEqualsDirectSolveMany) {
  const la::CsrMatrix A = grid_laplacian(24, 0.0);
  const core::HybridConfig cfg = lu_config();
  core::SessionCache cache(1u << 30);
  auto direct = cache.get_or_setup(A, cfg);

  for (const int s : {2, 3, 5}) {
    core::SolveService svc(cache, paused_friendly(/*max_batch=*/8, 50ms));
    const auto op = svc.register_operator(A, cfg);
    svc.pause();
    std::vector<std::vector<double>> bs;
    std::vector<std::future<core::SolveService::Reply>> futs;
    for (int i = 0; i < s; ++i) {
      bs.push_back(random_rhs(static_cast<std::size_t>(A.rows()),
                              100 + 7 * static_cast<std::uint64_t>(i)));
      auto fut = svc.submit(op, bs.back());
      ASSERT_TRUE(fut.has_value());
      futs.push_back(std::move(*fut));
    }
    svc.resume();

    // The same batch through the direct session path, same column order.
    std::vector<std::vector<double>> xs_direct;
    const auto res_direct = direct->solve_many(bs, xs_direct);

    for (int i = 0; i < s; ++i) {
      const auto reply = futs[static_cast<std::size_t>(i)].get();
      EXPECT_TRUE(reply.result.converged);
      EXPECT_EQ(reply.batch_columns, s) << "window did not merge all " << s;
      EXPECT_EQ(reply.result.iterations,
                res_direct[static_cast<std::size_t>(i)].iterations);
      ASSERT_EQ(reply.x.size(), xs_direct[static_cast<std::size_t>(i)].size());
      for (std::size_t j = 0; j < reply.x.size(); ++j) {
        // Bitwise: the window executes the identical solve_many call.
        EXPECT_EQ(reply.x[j], xs_direct[static_cast<std::size_t>(i)][j])
            << "s=" << s << " col=" << i << " row=" << j;
      }
    }
  }
}

TEST(SolveServiceWindow, SingletonWindowBitwiseEqualsDirectSolve) {
  const la::CsrMatrix A = grid_laplacian(24, 0.0);
  const core::HybridConfig cfg = lu_config();
  core::SessionCache cache(1u << 30);
  auto direct = cache.get_or_setup(A, cfg);

  core::SolveService svc(cache, paused_friendly(/*max_batch=*/1, 1ms));
  const auto op = svc.register_operator(A, cfg);
  const auto b = random_rhs(static_cast<std::size_t>(A.rows()), 42);
  auto fut = svc.submit(op, b);
  ASSERT_TRUE(fut.has_value());
  const auto reply = fut->get();
  EXPECT_EQ(reply.batch_columns, 1);

  std::vector<double> x_direct(b.size(), 0.0);
  const auto res_direct = direct->solve(b, x_direct);
  EXPECT_TRUE(reply.result.converged);
  EXPECT_EQ(reply.result.iterations, res_direct.iterations);
  for (std::size_t j = 0; j < b.size(); ++j) {
    EXPECT_EQ(reply.x[j], x_direct[j]) << j;
  }
}

TEST(SolveServiceWindow, LockstepBatchBitwiseEqualsScalarSolves) {
  // ddm-lu runs PCG → block_pcg, whose lockstep recurrence reproduces the
  // scalar solve bit-for-bit per column: EVERY window composition of this
  // preconditioner therefore equals direct per-request solves exactly.
  const la::CsrMatrix A = grid_laplacian(20, 0.5);
  const core::HybridConfig cfg = lu_config();
  core::SessionCache cache(1u << 30);
  auto direct = cache.get_or_setup(A, cfg);

  core::SolveService svc(cache, paused_friendly(/*max_batch=*/4, 50ms));
  const auto op = svc.register_operator(A, cfg);
  svc.pause();
  std::vector<std::vector<double>> bs;
  std::vector<std::future<core::SolveService::Reply>> futs;
  for (int i = 0; i < 4; ++i) {
    bs.push_back(random_rhs(static_cast<std::size_t>(A.rows()),
                            500 + static_cast<std::uint64_t>(i)));
    auto fut = svc.submit(op, bs.back());
    ASSERT_TRUE(fut.has_value());
    futs.push_back(std::move(*fut));
  }
  svc.resume();
  for (int i = 0; i < 4; ++i) {
    const auto reply = futs[static_cast<std::size_t>(i)].get();
    std::vector<double> x_direct(bs[static_cast<std::size_t>(i)].size(), 0.0);
    const auto res = direct->solve(bs[static_cast<std::size_t>(i)], x_direct);
    EXPECT_TRUE(reply.result.converged);
    EXPECT_EQ(reply.result.iterations, res.iterations);
    for (std::size_t j = 0; j < x_direct.size(); ++j) {
      EXPECT_EQ(reply.x[j], x_direct[j]) << "col=" << i << " row=" << j;
    }
  }
}

TEST(SolveServiceBackpressure, RejectPolicyBouncesAtCapacity) {
  const la::CsrMatrix A = grid_laplacian(16, 0.0);
  const core::HybridConfig cfg = lu_config();
  core::SessionCache cache(1u << 30);
  core::ServiceConfig scfg = paused_friendly(/*max_batch=*/8, 50ms);
  scfg.queue_capacity = 4;
  core::SolveService svc(cache, scfg);
  const auto op = svc.register_operator(A, cfg);
  svc.pause();

  core::SubmitOptions reject;
  reject.on_full = core::AdmissionPolicy::kReject;
  std::vector<std::future<core::SolveService::Reply>> futs;
  for (int i = 0; i < 4; ++i) {
    auto fut = svc.submit(op,
                          random_rhs(static_cast<std::size_t>(A.rows()),
                                     static_cast<std::uint64_t>(i)),
                          reject);
    ASSERT_TRUE(fut.has_value()) << i;
    futs.push_back(std::move(*fut));
  }
  EXPECT_EQ(svc.queue_depth(), 4u);
  // Queue full: the 5th submission bounces instead of blocking.
  auto overflow = svc.submit(
      op, random_rhs(static_cast<std::size_t>(A.rows()), 99), reject);
  EXPECT_FALSE(overflow.has_value());
  EXPECT_EQ(svc.stats().rejected, 1u);

  svc.resume();
  for (auto& f : futs) EXPECT_TRUE(f.get().result.converged);
  const auto st = svc.stats();
  EXPECT_EQ(st.submitted, 4u);
  EXPECT_EQ(st.completed, 4u);
}

TEST(SolveServiceBackpressure, BlockPolicyWaitsForSpace) {
  const la::CsrMatrix A = grid_laplacian(16, 0.0);
  const core::HybridConfig cfg = lu_config();
  core::SessionCache cache(1u << 30);
  core::ServiceConfig scfg = paused_friendly(/*max_batch=*/2, 50ms);
  scfg.queue_capacity = 2;
  scfg.on_full = core::AdmissionPolicy::kBlock;
  core::SolveService svc(cache, scfg);
  const auto op = svc.register_operator(A, cfg);
  svc.pause();

  std::vector<std::future<core::SolveService::Reply>> futs;
  for (int i = 0; i < 2; ++i) {
    auto fut = svc.submit(op, random_rhs(static_cast<std::size_t>(A.rows()),
                                         static_cast<std::uint64_t>(i)));
    ASSERT_TRUE(fut.has_value());
    futs.push_back(std::move(*fut));
  }
  // The third submission must block until the paused service resumes and a
  // worker frees queue space.
  std::atomic<bool> admitted{false};
  std::thread blocked([&] {
    auto fut = svc.submit(
        op, random_rhs(static_cast<std::size_t>(A.rows()), 77));
    ASSERT_TRUE(fut.has_value());
    admitted.store(true);
    EXPECT_TRUE(fut->get().result.converged);
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(admitted.load()) << "submit returned before space existed";
  svc.resume();
  blocked.join();
  EXPECT_TRUE(admitted.load());
  for (auto& f : futs) EXPECT_TRUE(f.get().result.converged);
  EXPECT_EQ(svc.stats().completed, 3u);
  EXPECT_EQ(svc.stats().rejected, 0u);
}

TEST(SolveServiceQoS, EffectiveWindowWaitShrinksWithDeadline) {
  using std::chrono::microseconds;
  // No deadline → the full window wait.
  EXPECT_EQ(core::effective_window_wait(microseconds(2000), microseconds(0)),
            microseconds(2000));
  // A generous deadline changes nothing.
  EXPECT_EQ(
      core::effective_window_wait(microseconds(2000), microseconds(100000)),
      microseconds(2000));
  // A tight deadline caps the wait at half its budget.
  EXPECT_EQ(core::effective_window_wait(microseconds(2000), microseconds(500)),
            microseconds(250));
  // An immediate deadline closes the window at once.
  EXPECT_EQ(core::effective_window_wait(microseconds(2000), microseconds(1)),
            microseconds(0));
}

TEST(SolveServiceQoS, DeadlineClosesWindowEarly) {
  const la::CsrMatrix A = grid_laplacian(16, 0.0);
  const core::HybridConfig cfg = lu_config();
  core::SessionCache cache(1u << 30);
  // Without a deadline a lone request would sit the full 10 s window wait.
  core::SolveService svc(cache, paused_friendly(/*max_batch=*/16, 10s));
  const auto op = svc.register_operator(A, cfg);

  core::SubmitOptions qos;
  qos.deadline = 10ms;
  auto fut = svc.submit(
      op, random_rhs(static_cast<std::size_t>(A.rows()), 5), qos);
  ASSERT_TRUE(fut.has_value());
  // The deadline must close (and solve) the window orders of magnitude
  // before the configured max_wait.
  ASSERT_EQ(fut->wait_for(5s), std::future_status::ready);
  const auto reply = fut->get();
  EXPECT_TRUE(reply.result.converged);
  EXPECT_EQ(reply.batch_columns, 1);
  EXPECT_LT(reply.queue_seconds, 1.0);
}

TEST(SolveServiceShutdown, DrainCompletesEveryAdmittedFuture) {
  const la::CsrMatrix A = grid_laplacian(20, 0.0);
  const la::CsrMatrix B = grid_laplacian(18, 1.0);
  const core::HybridConfig cfg = lu_config();
  core::SessionCache cache(1u << 30);
  std::vector<std::future<core::SolveService::Reply>> futs;
  {
    core::SolveService svc(cache, paused_friendly(/*max_batch=*/8, 1h));
    const auto opA = svc.register_operator(A, cfg);
    const auto opB = svc.register_operator(B, cfg);
    svc.pause();
    for (int i = 0; i < 10; ++i) {
      const bool useA = (i % 2) == 0;
      auto fut = svc.submit(
          useA ? opA : opB,
          random_rhs(static_cast<std::size_t>((useA ? A : B).rows()),
                     static_cast<std::uint64_t>(i)));
      ASSERT_TRUE(fut.has_value());
      futs.push_back(std::move(*fut));
    }
    // Destruction drains: paused, with a 1-hour window wait, every window
    // would otherwise still be open.
  }
  for (auto& f : futs) {
    ASSERT_EQ(f.wait_for(0s), std::future_status::ready)
        << "shutdown abandoned an admitted future";
    EXPECT_TRUE(f.get().result.converged);
  }
}

TEST(SolveServiceWarmStart, ConvergedGuessFinishesImmediately) {
  const la::CsrMatrix A = grid_laplacian(24, 0.0);
  const core::HybridConfig cfg = lu_config();
  core::SessionCache cache(1u << 30);
  auto session = cache.get_or_setup(A, cfg);
  const auto b = random_rhs(static_cast<std::size_t>(A.rows()), 7);

  std::vector<double> x(b.size(), 0.0);
  const auto cold = session->solve(b, x);
  ASSERT_TRUE(cold.converged);
  ASSERT_GT(cold.iterations, 2);

  // Session-level warm start: seeding with the converged solution leaves
  // (near-)nothing to do.
  std::vector<double> x_warm(b.size(), 0.0);
  const auto warm = session->solve(b, x_warm, x);
  EXPECT_TRUE(warm.converged);
  EXPECT_LE(warm.iterations, 2);

  // solve_many warm start, mixed seeded/unseeded columns.
  const auto b2 = random_rhs(static_cast<std::size_t>(A.rows()), 8);
  std::vector<std::vector<double>> bs{b, b2};
  std::vector<std::vector<double>> x0s{x, {}};
  std::vector<std::vector<double>> xs;
  const auto many = session->solve_many(bs, xs, x0s);
  EXPECT_TRUE(many[0].converged);
  EXPECT_LE(many[0].iterations, 2);
  EXPECT_TRUE(many[1].converged);

  // Service-level warm start rides the same plumbing.
  core::SolveService svc(cache, paused_friendly(/*max_batch=*/4, 1ms));
  const auto op = svc.register_operator(A, cfg);
  core::SubmitOptions qos;
  qos.x0 = x;
  auto fut = svc.submit(op, b, qos);
  ASSERT_TRUE(fut.has_value());
  const auto reply = fut->get();
  EXPECT_TRUE(reply.result.converged);
  EXPECT_LE(reply.result.iterations, 2);
}

TEST(SolveServiceContract, BadSubmitsThrowAndShutdownRefuses) {
  const la::CsrMatrix A = grid_laplacian(12, 0.0);
  const core::HybridConfig cfg = lu_config();
  core::SessionCache cache(1u << 30);
  auto svc = std::make_unique<core::SolveService>(
      cache, paused_friendly(/*max_batch=*/2, 1ms));
  const auto op = svc->register_operator(A, cfg);
  EXPECT_THROW(svc->submit(op, std::vector<double>(3, 0.0)), ContractError);
  EXPECT_THROW(svc->submit(op + 1, std::vector<double>(
                                       static_cast<std::size_t>(A.rows()))),
               ContractError);
  core::SubmitOptions bad_seed;
  const std::vector<double> tiny(2, 0.0);
  bad_seed.x0 = tiny;
  EXPECT_THROW(svc->submit(op,
                           std::vector<double>(
                               static_cast<std::size_t>(A.rows()), 1.0),
                           bad_seed),
               ContractError);
  svc->shutdown();
  EXPECT_THROW(svc->submit(op, std::vector<double>(
                                   static_cast<std::size_t>(A.rows()), 1.0)),
               ContractError);
}

// The CI TSan target: multi-producer, two operators, mixed QoS and warm
// starts, every future harvested. Correctness assertions are deliberately
// light — the run exists to put admission, window formation, execution and
// completion under real cross-thread contention.
TEST(SolveServiceStress, ManyProducersCompleteEveryRequest) {
  const la::CsrMatrix A = grid_laplacian(16, 0.0);
  const la::CsrMatrix B = grid_laplacian(14, 0.5);
  const core::HybridConfig cfg = lu_config();
  core::SessionCache cache(1u << 30);
  core::ServiceConfig scfg;
  scfg.num_workers = 2;
  scfg.max_batch = 4;
  scfg.max_wait = std::chrono::microseconds(300);
  scfg.queue_capacity = 16;
  core::SolveService svc(cache, scfg);
  const auto opA = svc.register_operator(A, cfg);
  const auto opB = svc.register_operator(B, cfg);

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 12;
  std::atomic<long> completed{0};
  std::atomic<long> rejected{0};
  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      Rng rng(900 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kPerProducer; ++i) {
        const bool useA = rng.uniform() < 0.5;
        const auto& M = useA ? A : B;
        core::SubmitOptions qos;
        if (i % 3 == 0) qos.deadline = std::chrono::microseconds(200);
        if (i % 4 == 3) qos.on_full = core::AdmissionPolicy::kReject;
        auto fut = svc.submit(useA ? opA : opB,
                              random_rhs(static_cast<std::size_t>(M.rows()),
                                         rng()),
                              qos);
        if (!fut.has_value()) {
          rejected.fetch_add(1);
          continue;
        }
        const auto reply = fut->get();
        EXPECT_TRUE(reply.result.converged);
        EXPECT_GE(reply.batch_columns, 1);
        completed.fetch_add(1);
      }
    });
  }
  for (auto& p : producers) p.join();

  const auto st = svc.stats();
  EXPECT_EQ(completed.load() + rejected.load(), kProducers * kPerProducer);
  EXPECT_EQ(st.completed, static_cast<std::uint64_t>(completed.load()));
  EXPECT_EQ(st.rejected, static_cast<std::uint64_t>(rejected.load()));
  EXPECT_EQ(st.columns, st.completed);
  EXPECT_GE(st.windows, 1u);
}

}  // namespace
