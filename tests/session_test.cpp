// Tests of the setup/solve session API and the string-keyed preconditioner
// registry: registry round-trips (every registered name constructs and the
// instance reports the same name), the unknown-name error path, alias
// resolution, Krylov-method selector round-trips, setup-once/solve-many
// state reuse, and the deprecated solve_poisson facade as a wrapper.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/hybrid_solver.hpp"
#include "core/solver_session.hpp"
#include "fem/poisson.hpp"
#include "gnn/dss_model.hpp"
#include "gnn/graph.hpp"
#include "la/vector_ops.hpp"
#include "mesh/generator.hpp"
#include "partition/decomposition.hpp"
#include "precond/registry.hpp"
#include "solver/krylov.hpp"

namespace {

using namespace ddmgnn;
using la::Index;
using mesh::Point2;

struct SmallProblem {
  mesh::Mesh m;
  fem::PoissonProblem prob;
};

SmallProblem small_problem(std::uint64_t seed = 42, Index nodes = 900) {
  mesh::Mesh m =
      mesh::generate_mesh_target_nodes(mesh::random_domain(seed), nodes, seed);
  const auto q = fem::sample_quadratic_data(seed);
  auto prob = fem::assemble_poisson(
      m, [&](const Point2& p) { return q.f(p); },
      [&](const Point2& p) { return q.g(p); });
  return {std::move(m), std::move(prob)};
}

/// Untrained model: registry construction does not require training.
gnn::DssModel tiny_model() {
  gnn::DssConfig mc;
  mc.iterations = 2;
  mc.latent = 4;
  mc.hidden = 4;
  return gnn::DssModel(mc, 7);
}

TEST(Registry, EveryRegisteredNameConstructsAndNameMatches) {
  auto [m, prob] = small_problem();
  const auto dec =
      partition::decompose_target_size(m.adj_ptr(), m.adj(), 250, 2, 3);
  const gnn::DssModel model = tiny_model();
  const la::CsrMatrix mesh_pattern =
      gnn::adjacency_pattern(m.adj_ptr(), m.adj());
  const auto names = precond::preconditioner_names();
  ASSERT_GE(names.size(), 7u);
  for (const std::string& name : names) {
    const auto& traits = precond::preconditioner_traits(name);
    precond::PrecondContext ctx;
    ctx.A = &prob.A;
    ctx.coords = m.points();
    ctx.edge_pattern = &mesh_pattern;
    ctx.dirichlet = prob.dirichlet;
    if (traits.needs_decomposition) ctx.dec = &dec;
    if (traits.needs_model) ctx.model = &model;
    const auto p = precond::make_preconditioner(name, ctx);
    ASSERT_NE(p, nullptr) << name;
    EXPECT_EQ(p->name(), name);
    EXPECT_EQ(p->is_symmetric(), traits.symmetric) << name;
  }
}

TEST(Registry, UnknownNameThrowsListingRegisteredNames) {
  precond::PrecondContext ctx;
  try {
    precond::make_preconditioner("no-such-precond", ctx);
    FAIL() << "expected ContractError";
  } catch (const ContractError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-precond"), std::string::npos);
    EXPECT_NE(what.find("ddm-gnn"), std::string::npos);  // lists known names
  }
  EXPECT_THROW(precond::preconditioner_traits("bogus"), ContractError);
  EXPECT_FALSE(precond::PrecondRegistry::instance().contains("bogus"));
}

TEST(Registry, AliasesResolveToCanonicalNames) {
  const auto& reg = precond::PrecondRegistry::instance();
  EXPECT_EQ(reg.canonical("ddm-lu-1"), "ddm-lu-1level");
  EXPECT_EQ(reg.canonical("ddm-gnn-1"), "ddm-gnn-1level");
  EXPECT_EQ(reg.canonical("identity"), "none");
  // Aliases are reachable but not listed.
  EXPECT_TRUE(reg.contains("ddm-lu-1"));
  const auto names = precond::preconditioner_names();
  EXPECT_EQ(std::count(names.begin(), names.end(), "ddm-lu-1"), 0);
}

TEST(Registry, MissingRequirementsFailWithReadableErrors) {
  auto [m, prob] = small_problem();
  const la::CsrMatrix mesh_pattern =
      gnn::adjacency_pattern(m.adj_ptr(), m.adj());
  precond::PrecondContext ctx;
  ctx.A = &prob.A;
  ctx.coords = m.points();
  ctx.edge_pattern = &mesh_pattern;
  ctx.dirichlet = prob.dirichlet;
  // DDM without a decomposition.
  EXPECT_THROW(precond::make_preconditioner("ddm-lu", ctx), ContractError);
  // GNN with a decomposition but no model.
  const auto dec =
      partition::decompose_target_size(m.adj_ptr(), m.adj(), 250, 2, 3);
  ctx.dec = &dec;
  EXPECT_THROW(precond::make_preconditioner("ddm-gnn", ctx), ContractError);
  // GNN with a model but no geometry.
  const gnn::DssModel model = tiny_model();
  ctx.model = &model;
  ctx.coords = {};
  EXPECT_THROW(precond::make_preconditioner("ddm-gnn", ctx), ContractError);
}

TEST(KrylovSelector, NamesRoundTrip) {
  for (const auto method :
       {solver::KrylovMethod::kCg, solver::KrylovMethod::kPcg,
        solver::KrylovMethod::kFpcg, solver::KrylovMethod::kBicgstab,
        solver::KrylovMethod::kGmres}) {
    const auto parsed =
        solver::krylov_method_from_name(solver::krylov_method_name(method));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, method);
  }
  EXPECT_FALSE(solver::krylov_method_from_name("richardson").has_value());
  EXPECT_FALSE(solver::krylov_method_from_name("").has_value());
}

TEST(SolverSession, SetupOnceSolveTwiceReusesState) {
  auto [m, prob] = small_problem(11, 1500);
  core::HybridConfig cfg;
  cfg.preconditioner = "ddm-lu";
  cfg.subdomain_target_nodes = 300;
  cfg.rel_tol = 1e-8;
  core::SolverSession session;
  EXPECT_FALSE(session.ready());
  session.setup(m, prob, cfg);
  ASSERT_TRUE(session.ready());
  EXPECT_GT(session.num_subdomains(), 1);
  const double setup_s = session.setup_seconds();
  EXPECT_GT(setup_s, 0.0);

  std::vector<double> x1(prob.b.size(), 0.0), x2(prob.b.size(), 0.0);
  const auto r1 = session.solve(prob.b, x1);
  const auto r2 = session.solve(prob.b, x2);
  EXPECT_TRUE(r1.converged);
  EXPECT_TRUE(r2.converged);
  // Same system, same prepared state: identical iteration counts and
  // solutions, and zero additional setup time after the first solve.
  EXPECT_EQ(r1.iterations, r2.iterations);
  EXPECT_EQ(session.setup_seconds(), setup_s);
  for (std::size_t i = 0; i < x1.size(); ++i) EXPECT_EQ(x1[i], x2[i]);
  EXPECT_LT(fem::relative_residual(prob.A, prob.b, x1), 1e-7);
}

TEST(SolverSession, SolveManyMatchesIndividualSolves) {
  auto [m, prob] = small_problem(13, 1000);
  core::HybridConfig cfg;
  cfg.preconditioner = "ddm-lu";
  cfg.subdomain_target_nodes = 300;
  cfg.track_history = false;
  core::SolverSession session;
  session.setup(m, prob, cfg);

  // Three right-hand sides: the assembled b and two scaled copies.
  std::vector<std::vector<double>> rhs(3, prob.b);
  for (double& v : rhs[1]) v *= 2.0;
  for (double& v : rhs[2]) v *= -0.5;
  std::vector<std::vector<double>> xs;
  const auto results = session.solve_many(rhs, xs);
  ASSERT_EQ(results.size(), 3u);
  ASSERT_EQ(xs.size(), 3u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].converged) << i;
    EXPECT_LT(fem::relative_residual(prob.A, rhs[i], xs[i]), 1e-5) << i;
  }
  // Linearity sanity: x[1] ≈ 2 x[0].
  for (std::size_t j = 0; j < xs[0].size(); j += 97) {
    EXPECT_NEAR(xs[1][j], 2.0 * xs[0][j],
                1e-5 * (1.0 + std::abs(xs[1][j])));
  }
}

TEST(SolverSession, MethodDefaultsFollowPrecondTraits) {
  auto [m, prob] = small_problem(17, 800);
  core::HybridConfig cfg;
  cfg.subdomain_target_nodes = 250;
  cfg.max_iterations = 5;
  cfg.track_history = false;
  core::SolverSession session;

  cfg.preconditioner = "none";
  session.setup(m, prob, cfg);
  EXPECT_EQ(session.method(), solver::KrylovMethod::kCg);

  // Aliases default like their canonical name.
  cfg.preconditioner = "identity";
  session.setup(m, prob, cfg);
  EXPECT_EQ(session.method(), solver::KrylovMethod::kCg);

  cfg.preconditioner = "jacobi";
  session.setup(m, prob, cfg);
  EXPECT_EQ(session.method(), solver::KrylovMethod::kPcg);

  const gnn::DssModel model = tiny_model();
  cfg.preconditioner = "ddm-gnn";
  cfg.model = &model;
  session.setup(m, prob, cfg);
  EXPECT_EQ(session.method(), solver::KrylovMethod::kFpcg);

  // Explicit selection wins over the trait default, and the SolveResult
  // method string is prefixed with the selector's canonical name.
  cfg.preconditioner = "ddm-lu";
  cfg.method = solver::KrylovMethod::kBicgstab;
  cfg.max_iterations = 500;
  session.setup(m, prob, cfg);
  EXPECT_EQ(session.method(), solver::KrylovMethod::kBicgstab);
  std::vector<double> x(prob.b.size(), 0.0);
  const auto res = session.solve(prob.b, x);
  EXPECT_EQ(res.method, std::string("bicgstab+ddm-lu"));
}

TEST(SolverSession, UnknownPreconditionerNameThrowsBeforeAnySetup) {
  auto [m, prob] = small_problem(19, 600);
  core::HybridConfig cfg;
  cfg.preconditioner = "ddm-quantum";
  core::SolverSession session;
  EXPECT_THROW(session.setup(m, prob, cfg), ContractError);
  EXPECT_FALSE(session.ready());
  std::vector<double> x(prob.b.size(), 0.0);
  EXPECT_THROW(session.solve(prob.b, x), ContractError);
}

TEST(SolverSession, FailedReSetupLeavesSessionNotReady) {
  auto [m, prob] = small_problem(29, 600);
  core::HybridConfig cfg;
  cfg.preconditioner = "jacobi";
  core::SolverSession session;
  session.setup(m, prob, cfg);
  ASSERT_TRUE(session.ready());
  // A failed re-setup must not leave the session keyed to the old problem.
  cfg.preconditioner = "ddm-gn";  // typo
  EXPECT_THROW(session.setup(m, prob, cfg), ContractError);
  EXPECT_FALSE(session.ready());
  std::vector<double> x(prob.b.size(), 0.0);
  EXPECT_THROW(session.solve(prob.b, x), ContractError);
}

// The deprecated facade must stay a faithful wrapper over SolverSession.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(SolvePoissonFacade, MatchesSessionSetupPlusSolve) {
  auto [m, prob] = small_problem(23, 1200);
  core::HybridConfig cfg;
  cfg.preconditioner = "ddm-lu";
  cfg.subdomain_target_nodes = 300;
  const auto rep = core::solve_poisson(m, prob, cfg);
  EXPECT_TRUE(rep.result.converged);
  EXPECT_GT(rep.num_subdomains, 1);
  EXPECT_GT(rep.setup_seconds, 0.0);

  core::SolverSession session;
  session.setup(m, prob, cfg);
  std::vector<double> x(prob.b.size(), 0.0);
  const auto res = session.solve(prob.b, x);
  EXPECT_EQ(res.iterations, rep.result.iterations);
  EXPECT_EQ(session.num_subdomains(), rep.num_subdomains);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_EQ(x[i], rep.solution[i]);
}
#pragma GCC diagnostic pop

}  // namespace
