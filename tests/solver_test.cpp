// Krylov solver + classical preconditioner tests: convergence on FEM
// problems, history monotonicity, Algorithm-1 semantics, ASM (one/two level)
// correctness and scalability trend, IC(0)/Jacobi baselines.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/rng.hpp"
#include "fem/poisson.hpp"
#include "la/skyline_cholesky.hpp"
#include "la/vector_ops.hpp"
#include "mesh/generator.hpp"
#include "partition/decomposition.hpp"
#include "precond/asm_precond.hpp"
#include "precond/ic0_precond.hpp"
#include "precond/preconditioner.hpp"
#include "solver/krylov.hpp"

namespace {

using namespace ddmgnn;
using la::Index;
using mesh::Point2;

fem::PoissonProblem make_problem(std::uint64_t seed, double h = 0.06) {
  const mesh::Mesh m = mesh::generate_mesh(mesh::random_domain(seed), h, seed);
  const auto data = fem::sample_quadratic_data(seed);
  return fem::assemble_poisson(
      m, [&](const Point2& p) { return data.f(p); },
      [&](const Point2& p) { return data.g(p); });
}

struct MeshAndProblem {
  mesh::Mesh m;
  fem::PoissonProblem prob;
};

MeshAndProblem make_mesh_problem(std::uint64_t seed, double h = 0.06) {
  mesh::Mesh m = mesh::generate_mesh(mesh::random_domain(seed), h, seed);
  const auto data = fem::sample_quadratic_data(seed);
  auto prob = fem::assemble_poisson(
      m, [&](const Point2& p) { return data.f(p); },
      [&](const Point2& p) { return data.g(p); });
  return {std::move(m), std::move(prob)};
}

TEST(Cg, ConvergesAndMatchesDirectSolve) {
  const auto prob = make_problem(1);
  std::vector<double> x(prob.b.size(), 0.0);
  const auto res = solver::conjugate_gradient(prob.A, prob.b, x,
                                              {.max_iterations = 5000,
                                               .rel_tol = 1e-10});
  EXPECT_TRUE(res.converged);
  const la::SkylineCholesky chol(prob.A);
  const auto x_ref = chol.solve(prob.b);
  EXPECT_LT(la::dist2(x, x_ref) / la::norm2(x_ref), 1e-7);
}

TEST(Cg, HistoryStartsAtOneAndEndsBelowTol) {
  const auto prob = make_problem(2);
  std::vector<double> x(prob.b.size(), 0.0);
  const auto res = solver::conjugate_gradient(prob.A, prob.b, x,
                                              {.rel_tol = 1e-6});
  ASSERT_TRUE(res.converged);
  ASSERT_FALSE(res.history.empty());
  EXPECT_NEAR(res.history.front(), 1.0, 1e-12);  // x0 = 0
  EXPECT_LE(res.history.back(), 1e-6);
  EXPECT_EQ(static_cast<int>(res.history.size()), res.iterations + 1);
}

TEST(Pcg, JacobiReducesIterationsVsCg) {
  const auto prob = make_problem(3);
  std::vector<double> x1(prob.b.size(), 0.0), x2(prob.b.size(), 0.0);
  const auto plain = solver::conjugate_gradient(prob.A, prob.b, x1);
  const precond::JacobiPreconditioner jac(prob.A.diagonal());
  const auto pre = solver::pcg(prob.A, jac, prob.b, x2);
  EXPECT_TRUE(plain.converged);
  EXPECT_TRUE(pre.converged);
  EXPECT_LE(pre.iterations, plain.iterations);
}

TEST(Pcg, Ic0BeatsJacobi) {
  const auto prob = make_problem(4);
  std::vector<double> x1(prob.b.size(), 0.0), x2(prob.b.size(), 0.0);
  const precond::JacobiPreconditioner jac(prob.A.diagonal());
  const precond::Ic0Preconditioner ic(prob.A);
  const auto rj = solver::pcg(prob.A, jac, prob.b, x1);
  const auto ri = solver::pcg(prob.A, ic, prob.b, x2);
  EXPECT_TRUE(ri.converged);
  EXPECT_LT(ri.iterations, rj.iterations);
}

TEST(Pcg, IdentityPreconditionerEqualsCg) {
  const auto prob = make_problem(5, 0.09);
  std::vector<double> x1(prob.b.size(), 0.0), x2(prob.b.size(), 0.0);
  const auto cg = solver::conjugate_gradient(prob.A, prob.b, x1);
  const precond::IdentityPreconditioner id;
  const auto pcg_id = solver::pcg(prob.A, id, prob.b, x2);
  EXPECT_EQ(cg.iterations, pcg_id.iterations);
  EXPECT_LT(la::dist2(x1, x2), 1e-10);
}

TEST(AsmPrecond, TwoLevelLuConvergesFast) {
  auto [m, prob] = make_mesh_problem(6, 0.045);
  const auto dec =
      partition::decompose_target_size(m.adj_ptr(), m.adj(), 400, 2, 6);
  precond::AdditiveSchwarz ddm_lu(
      prob.A, dec, std::make_unique<precond::CholeskySubdomainSolver>());
  std::vector<double> x(prob.b.size(), 0.0);
  const auto res = solver::pcg(prob.A, ddm_lu, prob.b, x, {.rel_tol = 1e-6});
  EXPECT_TRUE(res.converged);
  EXPECT_LT(res.iterations, 60);
  EXPECT_LT(fem::relative_residual(prob.A, prob.b, x), 1e-6);
}

TEST(AsmPrecond, TwoLevelBeatsOneLevelWithManySubdomains) {
  auto [m, prob] = make_mesh_problem(7, 0.04);
  const auto dec =
      partition::decompose_target_size(m.adj_ptr(), m.adj(), 150, 2, 7);
  ASSERT_GT(dec.num_parts, 10);
  precond::AdditiveSchwarz one(prob.A, dec,
                               std::make_unique<precond::CholeskySubdomainSolver>(),
                               precond::AdditiveSchwarz::Config{false});
  precond::AdditiveSchwarz two(prob.A, dec,
                               std::make_unique<precond::CholeskySubdomainSolver>(),
                               precond::AdditiveSchwarz::Config{true});
  std::vector<double> x1(prob.b.size(), 0.0), x2(prob.b.size(), 0.0);
  const auto r1 = solver::pcg(prob.A, one, prob.b, x1);
  const auto r2 = solver::pcg(prob.A, two, prob.b, x2);
  EXPECT_TRUE(r1.converged);
  EXPECT_TRUE(r2.converged);
  EXPECT_LT(r2.iterations, r1.iterations);
}

TEST(AsmPrecond, LargerOverlapConvergesFaster) {
  auto [m, prob] = make_mesh_problem(8, 0.045);
  int iters[2] = {0, 0};
  int idx = 0;
  for (const int overlap : {1, 4}) {
    const auto dec =
        partition::decompose_target_size(m.adj_ptr(), m.adj(), 300, overlap, 8);
    precond::AdditiveSchwarz ddm(
        prob.A, dec, std::make_unique<precond::CholeskySubdomainSolver>());
    std::vector<double> x(prob.b.size(), 0.0);
    iters[idx++] = solver::pcg(prob.A, ddm, prob.b, x).iterations;
  }
  EXPECT_LE(iters[1], iters[0]);
}

TEST(AsmPrecond, ApplyIsLinear) {
  auto [m, prob] = make_mesh_problem(9, 0.08);
  const auto dec = partition::decompose(m.adj_ptr(), m.adj(), 4, 2, 9);
  precond::AdditiveSchwarz ddm(
      prob.A, dec, std::make_unique<precond::CholeskySubdomainSolver>());
  const std::size_t n = prob.b.size();
  Rng rng(10);
  std::vector<double> u(n), v(n), zu(n), zv(n), zw(n), w(n);
  for (std::size_t i = 0; i < n; ++i) {
    u[i] = rng.uniform(-1, 1);
    v[i] = rng.uniform(-1, 1);
    w[i] = 2.0 * u[i] - 3.0 * v[i];
  }
  ddm.apply(u, zu);
  ddm.apply(v, zv);
  ddm.apply(w, zw);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(zw[i], 2.0 * zu[i] - 3.0 * zv[i], 1e-9);
  }
}

TEST(AsmPrecond, ApplyIsSymmetric) {
  // <M⁻¹u, v> == <u, M⁻¹v> — required for plain PCG validity (DDM-LU case).
  auto [m, prob] = make_mesh_problem(11, 0.09);
  const auto dec = partition::decompose(m.adj_ptr(), m.adj(), 4, 2, 11);
  precond::AdditiveSchwarz ddm(
      prob.A, dec, std::make_unique<precond::CholeskySubdomainSolver>());
  EXPECT_TRUE(ddm.is_symmetric());
  const std::size_t n = prob.b.size();
  Rng rng(12);
  std::vector<double> u(n), v(n), zu(n), zv(n);
  for (std::size_t i = 0; i < n; ++i) {
    u[i] = rng.uniform(-1, 1);
    v[i] = rng.uniform(-1, 1);
  }
  ddm.apply(u, zu);
  ddm.apply(v, zv);
  EXPECT_NEAR(la::dot(zu, v), la::dot(u, zv),
              1e-8 * std::abs(la::dot(zu, v)) + 1e-10);
}

TEST(FlexiblePcg, MatchesPcgForFixedSpdPreconditioner) {
  const auto prob = make_problem(13, 0.08);
  const precond::JacobiPreconditioner jac(prob.A.diagonal());
  std::vector<double> x1(prob.b.size(), 0.0), x2(prob.b.size(), 0.0);
  const auto r1 = solver::pcg(prob.A, jac, prob.b, x1);
  const auto r2 = solver::flexible_pcg(prob.A, jac, prob.b, x2);
  EXPECT_TRUE(r2.converged);
  // Flexible PCG reduces to PCG for a constant SPD M (same Krylov space).
  EXPECT_NEAR(r1.iterations, r2.iterations, 2);
}

TEST(Bicgstab, ConvergesOnSpdProblem) {
  const auto prob = make_problem(14, 0.08);
  const precond::Ic0Preconditioner ic(prob.A);
  std::vector<double> x(prob.b.size(), 0.0);
  const auto res = solver::bicgstab(prob.A, ic, prob.b, x, {.rel_tol = 1e-8});
  EXPECT_TRUE(res.converged);
  EXPECT_LT(fem::relative_residual(prob.A, prob.b, x), 1e-7);
}

TEST(Gmres, ConvergesOnSpdProblem) {
  const auto prob = make_problem(15, 0.09);
  const precond::Ic0Preconditioner ic(prob.A);
  std::vector<double> x(prob.b.size(), 0.0);
  const auto res =
      solver::gmres(prob.A, ic, prob.b, x,
                    {.rel_tol = 1e-8, .gmres_restart = 40});
  EXPECT_TRUE(res.converged);
  EXPECT_LT(fem::relative_residual(prob.A, prob.b, x), 1e-7);
}

TEST(Gmres, HandlesNonsymmetricSystems) {
  // Convection-ish perturbation of the FEM matrix (keeps it nonsingular).
  auto prob = make_problem(16, 0.1);
  auto vals = prob.A.values_mutable();
  Rng rng(17);
  for (auto& v : vals) v += 0.01 * rng.uniform(0.0, 1.0) * std::abs(v);
  const precond::IdentityPreconditioner id;
  std::vector<double> x(prob.b.size(), 0.0);
  const auto res =
      solver::gmres(prob.A, id, prob.b, x,
                    {.max_iterations = 3000, .rel_tol = 1e-8,
                     .gmres_restart = 60});
  EXPECT_TRUE(res.converged);
  EXPECT_LT(fem::relative_residual(prob.A, prob.b, x), 1e-7);
}

TEST(Solvers, IterationCountGrowsWithProblemSizeForPlainCg) {
  // Conditioning degrades with N (paper: CG column of Table I).
  const auto small = make_problem(18, 0.09);
  const auto large = make_problem(18, 0.04);
  std::vector<double> x1(small.b.size(), 0.0), x2(large.b.size(), 0.0);
  const auto r_small = solver::conjugate_gradient(small.A, small.b, x1);
  const auto r_large = solver::conjugate_gradient(large.A, large.b, x2);
  EXPECT_GT(r_large.iterations, r_small.iterations);
}

}  // namespace
