// Failure-injection and edge-case tests: contract violations must throw
// ContractError (not corrupt memory), solvers must respect caps and handle
// degenerate inputs (zero rhs, tiny systems), and numerical safeguards
// (IC(0) shift, FPCG restart, near-zero GNN residuals) must engage cleanly.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "fem/poisson.hpp"
#include "gnn/graph.hpp"
#include "la/csr.hpp"
#include "la/dense.hpp"
#include "la/ic0.hpp"
#include "la/skyline_cholesky.hpp"
#include "la/vector_ops.hpp"
#include "mesh/delaunay.hpp"
#include "mesh/generator.hpp"
#include "partition/decomposition.hpp"
#include "precond/asm_precond.hpp"
#include "precond/preconditioner.hpp"
#include "solver/krylov.hpp"

namespace {

using namespace ddmgnn;
using la::CooBuilder;
using la::CsrMatrix;
using la::Index;
using mesh::Point2;

CsrMatrix small_spd() {
  CooBuilder coo(3, 3);
  coo.add(0, 0, 2.0);
  coo.add(1, 1, 2.0);
  coo.add(2, 2, 2.0);
  coo.add(0, 1, -1.0);
  coo.add(1, 0, -1.0);
  return std::move(coo).build();
}

TEST(Contracts, VectorOpsRejectSizeMismatch) {
  std::vector<double> a{1, 2, 3}, b{1, 2};
  EXPECT_THROW(la::dot(a, b), ContractError);
  EXPECT_THROW(la::axpy(1.0, a, b), ContractError);
  EXPECT_THROW(la::copy(a, b), ContractError);
}

TEST(Contracts, CsrRejectsMalformedConstruction) {
  // row_ptr wrong length.
  EXPECT_THROW(CsrMatrix(2, 2, {0, 1}, {0}, {1.0}), ContractError);
  // nnz mismatch between col_idx and vals.
  EXPECT_THROW(CsrMatrix(1, 1, {0, 1}, {0}, {1.0, 2.0}), ContractError);
  // row_ptr not ending at nnz.
  EXPECT_THROW(CsrMatrix(1, 1, {0, 2}, {0}, {1.0}), ContractError);
}

TEST(Contracts, CsrMultiplyRejectsWrongDimensions) {
  const CsrMatrix a = small_spd();
  std::vector<double> x(2), y(3);
  EXPECT_THROW(a.multiply(x, y), ContractError);
}

TEST(Contracts, CooBuilderRejectsOutOfRangeEntries) {
  CooBuilder coo(2, 2);
  coo.add(5, 0, 1.0);
  EXPECT_THROW(std::move(coo).build(), ContractError);
}

TEST(Contracts, PrincipalSubmatrixRejectsDuplicatesAndBadIds) {
  const CsrMatrix a = small_spd();
  const std::vector<Index> dup{0, 0};
  EXPECT_THROW(a.principal_submatrix(dup), ContractError);
  const std::vector<Index> bad{0, 7};
  EXPECT_THROW(a.principal_submatrix(bad), ContractError);
}

TEST(Contracts, JacobiRejectsZeroDiagonal) {
  EXPECT_THROW(precond::JacobiPreconditioner({1.0, 0.0}), ContractError);
}

TEST(EdgeCases, OneByOneSystemsEverywhere) {
  CooBuilder coo(1, 1);
  coo.add(0, 0, 4.0);
  const CsrMatrix a = std::move(coo).build();
  const std::vector<double> b{8.0};
  // Direct.
  const la::SkylineCholesky f(a);
  EXPECT_NEAR(f.solve(b)[0], 2.0, 1e-14);
  // Iterative.
  std::vector<double> x{0.0};
  const auto res = solver::conjugate_gradient(a, b, x);
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(x[0], 2.0, 1e-9);
  // IC(0) is exact here.
  const la::IncompleteCholesky0 ic(a);
  EXPECT_NEAR(ic.apply(b)[0], 2.0, 1e-14);
}

TEST(EdgeCases, ZeroRhsConvergesInstantly) {
  const CsrMatrix a = small_spd();
  const std::vector<double> b{0.0, 0.0, 0.0};
  std::vector<double> x{0.0, 0.0, 0.0};
  const auto res = solver::conjugate_gradient(a, b, x);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, 0);
  for (const double v : x) EXPECT_EQ(v, 0.0);
}

TEST(EdgeCases, WarmStartFromExactSolutionTakesZeroIterations) {
  const CsrMatrix a = small_spd();
  std::vector<double> x_ref{1.0, -2.0, 0.5};
  const auto b = a.apply(x_ref);
  const auto res = solver::conjugate_gradient(a, b, x_ref);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, 0);
}

TEST(EdgeCases, MaxIterationCapIsRespected) {
  auto [m, prob] = [] {
    mesh::Mesh mm = mesh::generate_mesh(mesh::random_domain(3), 0.05, 3);
    auto pp = fem::assemble_poisson(
        mm, [](const Point2&) { return 1.0; },
        [](const Point2&) { return 0.0; });
    return std::pair{std::move(mm), std::move(pp)};
  }();
  std::vector<double> x(prob.b.size(), 0.0);
  solver::SolveOptions opts;
  opts.max_iterations = 3;
  opts.rel_tol = 1e-14;
  const auto res = solver::conjugate_gradient(prob.A, prob.b, x, opts);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.iterations, 3);
}

TEST(Safeguards, Ic0ShiftEngagesOnHardMatrix) {
  // SPD but far from diagonally dominant: IC(0) often breaks down without a
  // shift. Build A = Lᵀ L + tiny diagonal from a random L with large
  // off-diagonals, keep only a sparse pattern.
  const Index n = 40;
  Rng rng(5);
  CooBuilder coo(n, n);
  for (Index i = 0; i < n; ++i) {
    coo.add(i, i, 1.0);
    for (Index j = std::max(0, i - 3); j < i; ++j) {
      const double v = rng.uniform(0.8, 1.2);
      coo.add(i, j, v);
      coo.add(j, i, v);
    }
  }
  const CsrMatrix a = std::move(coo).build();
  // This matrix may be indefinite; IC0 must either succeed (possibly with a
  // shift) or throw ContractError — never UB or NaN.
  try {
    const la::IncompleteCholesky0 ic(a);
    const std::vector<double> r(n, 1.0);
    const auto z = ic.apply(r);
    for (const double v : z) EXPECT_TRUE(std::isfinite(v));
  } catch (const ContractError&) {
    SUCCEED();
  }
}

TEST(Safeguards, FlexiblePcgSurvivesIdentityLikePerturbedPrecond) {
  // A mildly non-symmetric "preconditioner" (scaled identity with a random
  // asymmetric tweak) must not break FPCG on an SPD system.
  class Lopsided final : public precond::Preconditioner {
   public:
    using precond::Preconditioner::apply;
    void apply(std::span<const double> r, std::span<double> z,
               precond::ApplyWorkspace*) const override {
      for (std::size_t i = 0; i < r.size(); ++i) {
        z[i] = r[i] * (1.0 + 0.05 * std::sin(static_cast<double>(i)));
      }
      if (r.size() > 1) z[0] += 0.01 * r[1];  // asymmetry
    }
    std::string name() const override { return "lopsided"; }
    bool is_symmetric() const override { return false; }
  };
  const mesh::Mesh m = mesh::generate_mesh(mesh::random_domain(9), 0.08, 9);
  const auto prob = fem::assemble_poisson(
      m, [](const Point2&) { return 1.0; }, [](const Point2&) { return 0.0; });
  const Lopsided precond;
  std::vector<double> x(prob.b.size(), 0.0);
  const auto res = solver::flexible_pcg(prob.A, precond, prob.b, x,
                                        {.max_iterations = 5000});
  EXPECT_TRUE(res.converged);
  EXPECT_LT(fem::relative_residual(prob.A, prob.b, x), 1e-5);
}

TEST(EdgeCases, DelaunayOfExactlyThreePoints) {
  const std::vector<Point2> pts{{0, 0}, {1, 0}, {0, 1}};
  const auto tris = mesh::delaunay_triangulate(pts);
  ASSERT_EQ(tris.size(), 1u);
}

TEST(EdgeCases, DecomposeSinglePartCoversEverything) {
  const mesh::Mesh m = mesh::generate_mesh(mesh::random_domain(11), 0.1, 11);
  const auto dec = partition::decompose(m.adj_ptr(), m.adj(), 1, 2, 11);
  EXPECT_EQ(dec.num_parts, 1);
  EXPECT_EQ(static_cast<Index>(dec.subdomains[0].size()), m.num_nodes());
  for (const double w : dec.inv_multiplicity) EXPECT_EQ(w, 1.0);
}

TEST(EdgeCases, DecomposeAsManyPartsAsNodesIsRejectedOrValid) {
  // K > N must throw; K == N is legal (every node its own core).
  CooBuilder coo(4, 4);
  for (Index i = 0; i < 4; ++i) coo.add(i, (i + 1) % 4, 1.0);
  for (Index i = 0; i < 4; ++i) coo.add((i + 1) % 4, i, 1.0);
  const CsrMatrix ring = std::move(coo).build();
  EXPECT_THROW(partition::decompose(ring.row_ptr(), ring.col_idx(), 5, 0),
               ContractError);
  const auto dec = partition::decompose(ring.row_ptr(), ring.col_idx(), 4, 0);
  EXPECT_EQ(dec.num_parts, 4);
}

TEST(Safeguards, AsmOnDisconnectedMeshPieces) {
  // Two disjoint blobs in one "mesh" graph: partitioner must still cover and
  // ASM-PCG must still converge (tests the disconnected-leftover path).
  const mesh::Mesh m1 = mesh::generate_mesh(mesh::random_domain(13), 0.12, 13);
  const mesh::Mesh m2 = mesh::generate_mesh(mesh::random_domain(14), 0.12, 14);
  const Index n1 = m1.num_nodes();
  const Index n = n1 + m2.num_nodes();
  // Merge adjacencies with an offset.
  std::vector<la::Offset> ptr;
  std::vector<Index> adj;
  ptr.push_back(0);
  for (Index v = 0; v < n1; ++v) {
    for (la::Offset e = m1.adj_ptr()[v]; e < m1.adj_ptr()[v + 1]; ++e) {
      adj.push_back(m1.adj()[e]);
    }
    ptr.push_back(static_cast<la::Offset>(adj.size()));
  }
  for (Index v = 0; v < m2.num_nodes(); ++v) {
    for (la::Offset e = m2.adj_ptr()[v]; e < m2.adj_ptr()[v + 1]; ++e) {
      adj.push_back(m2.adj()[e] + n1);
    }
    ptr.push_back(static_cast<la::Offset>(adj.size()));
  }
  const auto dec = partition::decompose(ptr, adj, 6, 2, 13);
  std::vector<char> covered(n, 0);
  for (const auto& s : dec.subdomains) {
    for (const Index v : s) covered[v] = 1;
  }
  for (Index v = 0; v < n; ++v) EXPECT_TRUE(covered[v]);
}

TEST(Safeguards, GnnGraphWithAllDirichletNodesHasNoEdges) {
  const Index n = 4;
  std::vector<Point2> coords{{0, 0}, {1, 0}, {0, 1}, {1, 1}};
  std::vector<std::uint8_t> dirichlet(n, 1);
  CooBuilder coo(n, n);
  for (Index i = 0; i < n; ++i) coo.add(i, i, 1.0);
  auto topo = gnn::build_topology(std::move(coo).build(), coords, dirichlet);
  EXPECT_EQ(topo->num_edges(), 0);
}

}  // namespace
