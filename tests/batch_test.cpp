// Batched-inference tests (paper Eq. 14): a disjoint-union forward must be
// equivalent to per-graph forwards, and the batched loss must equal the
// node-weighted mean of per-graph losses.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "gnn/batch.hpp"
#include "gnn/dss_model.hpp"
#include "gnn/graph.hpp"
#include "la/vector_ops.hpp"
#include "mesh/geometry.hpp"

namespace {

using namespace ddmgnn;
using la::CooBuilder;
using la::CsrMatrix;
using la::Index;
using mesh::Point2;

gnn::GraphSample ring_sample(Index n, std::uint64_t seed, double spacing) {
  std::vector<Point2> coords(n);
  std::vector<std::uint8_t> dirichlet(n, 0);
  dirichlet[0] = 1;
  for (Index i = 0; i < n; ++i) {
    const double a = 2.0 * 3.14159265358979 * i / n;
    coords[i] = {spacing * std::cos(a), spacing * std::sin(a)};
  }
  CooBuilder coo(n, n);
  for (Index i = 0; i < n; ++i) {
    if (dirichlet[i]) {
      coo.add(i, i, 1.0);
      continue;
    }
    coo.add(i, i, 2.5);
    for (const Index j : {(i + 1) % n, (i + n - 1) % n}) {
      if (!dirichlet[j]) coo.add(i, j, -1.0);
    }
  }
  CooBuilder pat(n, n);
  for (Index i = 0; i < n; ++i) {
    pat.add(i, (i + 1) % n, 1.0);
    pat.add((i + 1) % n, i, 1.0);
  }
  const CsrMatrix pattern = std::move(pat).build();
  gnn::GraphSample s;
  s.topo =
      gnn::build_topology(std::move(coo).build(), coords, dirichlet, &pattern);
  Rng rng(seed);
  s.rhs.resize(n);
  for (double& v : s.rhs) v = rng.uniform(-1, 1);
  const double norm = la::norm2(s.rhs);
  for (double& v : s.rhs) v /= norm;
  return s;
}

TEST(Batch, OffsetsAndSizesAreConsistent) {
  std::vector<gnn::GraphSample> parts{ring_sample(8, 1, 0.1),
                                      ring_sample(12, 2, 0.2),
                                      ring_sample(5, 3, 0.15)};
  const auto batch = gnn::batch_samples(parts);
  EXPECT_EQ(batch.num_parts(), 3);
  EXPECT_EQ(batch.merged.topo->n, 25);
  EXPECT_EQ(batch.offsets.back(), 25);
  EXPECT_EQ(batch.merged.topo->num_edges(),
            parts[0].topo->num_edges() + parts[1].topo->num_edges() +
                parts[2].topo->num_edges());
  EXPECT_EQ(batch.merged.topo->a_local.nnz(),
            parts[0].topo->a_local.nnz() + parts[1].topo->a_local.nnz() +
                parts[2].topo->a_local.nnz());
}

TEST(Batch, NoEdgesCrossBlockBoundaries) {
  std::vector<gnn::GraphSample> parts{ring_sample(9, 4, 0.1),
                                      ring_sample(7, 5, 0.3)};
  const auto batch = gnn::batch_samples(parts);
  const auto& t = *batch.merged.topo;
  for (Index e = 0; e < t.num_edges(); ++e) {
    const bool recv_in_first = t.recv[e] < batch.offsets[1];
    const bool send_in_first = t.send[e] < batch.offsets[1];
    EXPECT_EQ(recv_in_first, send_in_first);
  }
}

TEST(Batch, ForwardEquivalentToPerGraphForward) {
  std::vector<gnn::GraphSample> parts{ring_sample(10, 6, 0.1),
                                      ring_sample(14, 7, 0.25),
                                      ring_sample(6, 8, 0.4)};
  gnn::DssConfig cfg;
  cfg.iterations = 4;
  cfg.latent = 6;
  cfg.hidden = 8;
  const gnn::DssModel model(cfg, 33);
  gnn::DssWorkspace ws;
  const auto batch = gnn::batch_samples(parts);
  std::vector<float> merged_out;
  model.forward(batch.merged, ws, merged_out);
  for (Index p = 0; p < batch.num_parts(); ++p) {
    std::vector<float> solo;
    model.forward(parts[p], ws, solo);
    const auto slice =
        batch.split(std::span<const float>(merged_out), p);
    ASSERT_EQ(slice.size(), solo.size());
    for (std::size_t i = 0; i < solo.size(); ++i) {
      EXPECT_NEAR(slice[i], solo[i], 1e-5f) << "part " << p << " node " << i;
    }
  }
}

TEST(Batch, RepeatedTopologyRhsColumnsMatchPerColumnForward) {
  // The multi-RHS block preconditioner merges the SAME subdomain topology
  // once per RHS column into one disjoint-union inference (columns ×
  // subdomains). A batched forward over repeated topologies with distinct
  // rhs channels must be bit-close to the per-column forwards.
  const auto base = ring_sample(11, 20, 0.15);
  std::vector<gnn::GraphSample> columns;
  for (int j = 0; j < 4; ++j) {
    gnn::GraphSample s;
    s.topo = base.topo;  // shared topology, per-column rhs
    Rng rng(400 + j);
    s.rhs.resize(base.topo->n);
    for (double& v : s.rhs) v = rng.uniform(-1, 1);
    const double norm = la::norm2(s.rhs);
    for (double& v : s.rhs) v /= norm;
    columns.push_back(std::move(s));
  }
  gnn::DssConfig cfg;
  cfg.iterations = 4;
  cfg.latent = 6;
  cfg.hidden = 8;
  const gnn::DssModel model(cfg, 77);
  gnn::DssWorkspace ws;
  const auto batch = gnn::batch_samples(columns);
  std::vector<float> merged_out;
  model.forward(batch.merged, ws, merged_out);
  for (Index p = 0; p < batch.num_parts(); ++p) {
    std::vector<float> solo;
    model.forward(columns[p], ws, solo);
    const auto slice = batch.split(std::span<const float>(merged_out), p);
    ASSERT_EQ(slice.size(), solo.size());
    for (std::size_t i = 0; i < solo.size(); ++i) {
      EXPECT_NEAR(slice[i], solo[i], 1e-6f) << "column " << p << " node " << i;
    }
  }
}

TEST(Batch, LossIsNodeWeightedMeanOfParts) {
  std::vector<gnn::GraphSample> parts{ring_sample(10, 9, 0.1),
                                      ring_sample(20, 10, 0.2)};
  gnn::DssConfig cfg;
  cfg.iterations = 3;
  cfg.latent = 5;
  cfg.hidden = 6;
  const gnn::DssModel model(cfg, 13);
  gnn::DssWorkspace ws;
  const auto batch = gnn::batch_samples(parts);
  const double merged = model.final_residual_loss(batch.merged, ws);
  const double l0 = model.final_residual_loss(parts[0], ws);
  const double l1 = model.final_residual_loss(parts[1], ws);
  EXPECT_NEAR(merged, (10.0 * l0 + 20.0 * l1) / 30.0, 1e-8);
}

}  // namespace
