// Multi-level hierarchy tests: build determinism across thread counts,
// V-cycle apply determinism and block/scalar bitwise equivalence, the
// mg_levels=1 bitwise-identity guarantee at session level, convergence of
// the 3-level method and the W-cycle/Chebyshev variants, dense-factor
// shrinkage vs the one-shot Nicolaides coarse solve, and concurrent applies
// of one shared cycle (the TSan-meaningful test).
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/solver_session.hpp"
#include "fem/poisson.hpp"
#include "la/multivector.hpp"
#include "mesh/generator.hpp"
#include "mg/hierarchy.hpp"
#include "mg/vcycle.hpp"
#include "partition/coarse_space.hpp"
#include "partition/decomposition.hpp"
#include "precond/asm_precond.hpp"

#if defined(__SANITIZE_THREAD__)
#define DDMGNN_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DDMGNN_TSAN 1
#endif
#endif

namespace {

using namespace ddmgnn;
using la::Index;
using mesh::Point2;

// Restore the ambient thread count when a test returns.
struct ThreadGuard {
  ~ThreadGuard() { set_num_threads(0); }
};

// Thread counts the determinism sweeps cover. Under TSan the CI pins
// DDMGNN_THREADS=1 (libgomp is un-instrumented), so only the serial point
// runs there; the std::thread concurrency test below is the TSan content.
std::vector<int> sweep_threads() {
#ifdef DDMGNN_TSAN
  return {1};
#else
  return {1, 2, 4};
#endif
}

struct Fixture {
  mesh::Mesh m;
  fem::PoissonProblem prob;
  partition::Decomposition dec;
};

/// A problem large enough that the hierarchy genuinely coarsens: `parts`
/// subdomains so the level-1 operator has `parts` rows before aggregation.
Fixture make_fixture(std::uint64_t seed, double h, Index parts) {
  mesh::Mesh m = mesh::generate_mesh(mesh::random_domain(seed), h, seed);
  auto prob = fem::assemble_poisson(
      m, [](const Point2&) { return 1.0; }, [](const Point2&) { return 0.0; });
  auto dec = partition::decompose(m.adj_ptr(), m.adj(), parts, 2, seed);
  return {std::move(m), std::move(prob), std::move(dec)};
}

bool bitwise_equal(std::span<const double> a, std::span<const double> b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

void expect_same_matrix(const la::CsrMatrix& a, const la::CsrMatrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  ASSERT_EQ(a.nnz(), b.nnz());
  EXPECT_TRUE(std::equal(a.row_ptr().begin(), a.row_ptr().end(),
                         b.row_ptr().begin()));
  EXPECT_TRUE(std::equal(a.col_idx().begin(), a.col_idx().end(),
                         b.col_idx().begin()));
  EXPECT_TRUE(bitwise_equal(a.values(), b.values()));
}

TEST(Hierarchy, BuildIsBitwiseDeterministicAcrossThreadCounts) {
  ThreadGuard guard;
  const Fixture f = make_fixture(91, 0.035, 24);
  mg::HierarchyOptions opts;
  opts.levels = 3;
  opts.aggregate_target = 4;
  opts.min_coarse_rows = 2;

  set_num_threads(1);
  const mg::Hierarchy ref = mg::build_hierarchy(f.prob.A, f.dec, opts);
  ASSERT_GE(ref.num_coarse_levels(), 2);  // it actually coarsened
  for (const int t : sweep_threads()) {
    set_num_threads(t);
    const mg::Hierarchy h = mg::build_hierarchy(f.prob.A, f.dec, opts);
    ASSERT_EQ(h.num_coarse_levels(), ref.num_coarse_levels()) << t;
    for (int l = 0; l < ref.num_coarse_levels(); ++l) {
      SCOPED_TRACE("threads=" + std::to_string(t) +
                   " level=" + std::to_string(l));
      expect_same_matrix(h.levels[l].A, ref.levels[l].A);
      expect_same_matrix(h.levels[l].P, ref.levels[l].P);
      expect_same_matrix(h.levels[l].R, ref.levels[l].R);
      EXPECT_TRUE(bitwise_equal(h.levels[l].inv_diag, ref.levels[l].inv_diag));
      EXPECT_EQ(h.levels[l].lambda_max, ref.levels[l].lambda_max);
    }
  }
}

TEST(VCycle, ApplyIsBitwiseDeterministicAcrossThreadCounts) {
  ThreadGuard guard;
  const Fixture f = make_fixture(92, 0.035, 24);
  mg::HierarchyOptions opts;
  opts.levels = 3;
  opts.aggregate_target = 4;
  opts.min_coarse_rows = 2;
  set_num_threads(1);
  const mg::VCycle cycle(mg::build_hierarchy(f.prob.A, f.dec, opts), {});

  const Index n = f.m.num_nodes();
  Rng rng(93);
  std::vector<double> r(n);
  for (double& v : r) v = rng.uniform(-1, 1);
  std::vector<double> z_ref(n, 0.0);
  cycle.apply_add(r, z_ref);
  for (const int t : sweep_threads()) {
    set_num_threads(t);
    std::vector<double> z(n, 0.0);
    cycle.apply_add(r, z);
    EXPECT_TRUE(bitwise_equal(z, z_ref)) << "threads=" << t;
  }
}

TEST(VCycle, ApplyAddManyMatchesColumnwiseApplyAddBitwise) {
  const Fixture f = make_fixture(94, 0.045, 12);
  mg::HierarchyOptions opts;
  opts.levels = 2;
  opts.aggregate_target = 4;
  opts.min_coarse_rows = 2;
  for (const bool w : {false, true}) {
    for (const mg::Smoother s :
         {mg::Smoother::kJacobi, mg::Smoother::kChebyshev}) {
      mg::CycleConfig cc;
      cc.w_cycle = w;
      cc.smoother = s;
      cc.smooth_steps = 2;
      const mg::VCycle cycle(mg::build_hierarchy(f.prob.A, f.dec, opts), cc);
      const Index n = f.m.num_nodes();
      const Index cols = 3;
      Rng rng(95);
      la::MultiVector r(n, cols), z(n, cols);
      for (Index j = 0; j < cols; ++j) {
        for (double& v : r.col(j)) v = rng.uniform(-1, 1);
        for (double& v : z.col(j)) v = rng.uniform(-1, 1);
      }
      la::MultiVector z_blk = z;
      cycle.apply_add_many(r, z_blk);
      for (Index j = 0; j < cols; ++j) {
        std::vector<double> zc(z.col(j).begin(), z.col(j).end());
        cycle.apply_add(r.col(j), zc);
        EXPECT_TRUE(bitwise_equal(z_blk.col(j), zc))
            << "w=" << w << " smoother=" << static_cast<int>(s)
            << " col=" << j;
      }
    }
  }
}

TEST(VCycle, DenseFactorShrinksVsNicolaides) {
  const Fixture f = make_fixture(96, 0.025, 32);
  const partition::NicolaidesCoarseSpace nico(f.prob.A, f.dec);
  mg::HierarchyOptions opts;
  opts.levels = 2;
  opts.aggregate_target = 4;
  opts.min_coarse_rows = 2;
  const mg::VCycle cycle(mg::build_hierarchy(f.prob.A, f.dec, opts), {});
  // The one-shot coarse solve factors the full K×K operator dense; the
  // hierarchy only dense-factors its (much smaller) coarsest level.
  EXPECT_EQ(nico.dense_factor_bytes(), std::size_t{32 * 32 * sizeof(double)});
  EXPECT_LT(cycle.dense_factor_bytes(), nico.dense_factor_bytes());
  EXPECT_GT(cycle.memory_bytes(), 0u);
}

TEST(VCycle, ConcurrentSharedAppliesMatchSerial) {
  const Fixture f = make_fixture(97, 0.045, 12);
  mg::HierarchyOptions opts;
  opts.levels = 2;
  opts.aggregate_target = 4;
  opts.min_coarse_rows = 2;
  const mg::VCycle cycle(mg::build_hierarchy(f.prob.A, f.dec, opts), {});
  const Index n = f.m.num_nodes();
  const int clients = 4;
  std::vector<std::vector<double>> rs(clients), refs(clients);
  Rng rng(98);
  for (int c = 0; c < clients; ++c) {
    rs[c].resize(n);
    for (double& v : rs[c]) v = rng.uniform(-1, 1);
    refs[c].assign(n, 0.0);
    cycle.apply_add(rs[c], refs[c]);
  }
  std::vector<std::vector<double>> zs(clients, std::vector<double>(n, 0.0));
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (int rep = 0; rep < 3; ++rep) {
        std::fill(zs[c].begin(), zs[c].end(), 0.0);
        cycle.apply_add(rs[c], zs[c]);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int c = 0; c < clients; ++c) {
    EXPECT_TRUE(bitwise_equal(zs[c], refs[c])) << "client " << c;
  }
}

TEST(MultiLevelSession, DefaultLevelsIsBitwiseIdenticalToClassicTwoLevel) {
  const mesh::Mesh m =
      mesh::generate_mesh(mesh::random_domain(101), 0.03, 101);
  const auto prob = fem::assemble_poisson(
      m, [](const Point2&) { return 1.0; }, [](const Point2&) { return 0.0; });
  core::HybridConfig cfg;
  cfg.subdomain_target_nodes = 120;
  cfg.rel_tol = 1e-8;

  cfg.preconditioner = "ddm-lu";
  core::SolverSession classic;
  classic.setup(m, prob, cfg);
  std::vector<double> x_classic(m.num_nodes(), 0.0);
  const auto res_classic = classic.solve(prob.b, x_classic);

  cfg.preconditioner = "ddm-lu-ml";  // mg_levels defaults to 1
  core::SolverSession ml;
  ml.setup(m, prob, cfg);
  std::vector<double> x_ml(m.num_nodes(), 0.0);
  const auto res_ml = ml.solve(prob.b, x_ml);

  EXPECT_TRUE(res_classic.converged);
  EXPECT_EQ(res_classic.iterations, res_ml.iterations);
  EXPECT_TRUE(bitwise_equal(x_classic, x_ml));
}

TEST(MultiLevelSession, ThreeLevelConvergesNoWorseThan120PercentOfTwoLevel) {
  const mesh::Mesh m =
      mesh::generate_mesh(mesh::random_domain(103), 0.02, 103);
  const auto prob = fem::assemble_poisson(
      m, [](const Point2&) { return 1.0; }, [](const Point2&) { return 0.0; });
  core::HybridConfig cfg;
  cfg.preconditioner = "ddm-lu-ml";
  cfg.subdomain_target_nodes = 100;
  cfg.rel_tol = 1e-8;

  core::SolverSession two_level;
  cfg.mg_levels = 1;
  two_level.setup(m, prob, cfg);
  std::vector<double> x2(m.num_nodes(), 0.0);
  const auto res2 = two_level.solve(prob.b, x2);
  ASSERT_TRUE(res2.converged);

  core::SolverSession three_level;
  cfg.mg_levels = 2;
  three_level.setup(m, prob, cfg);
  std::vector<double> x3(m.num_nodes(), 0.0);
  const auto res3 = three_level.solve(prob.b, x3);
  ASSERT_TRUE(res3.converged);
  EXPECT_LE(res3.iterations * 10, res2.iterations * 12);

  // It genuinely built a hierarchy (the session exposes it for stats).
  const auto* schwarz = dynamic_cast<const precond::AdditiveSchwarz*>(
      &three_level.preconditioner());
  ASSERT_NE(schwarz, nullptr);
  const auto* cycle =
      dynamic_cast<const mg::VCycle*>(schwarz->coarse_component());
  ASSERT_NE(cycle, nullptr);
  EXPECT_GE(cycle->hierarchy().num_coarse_levels(), 2);
}

TEST(MultiLevelSession, WCycleChebyshevVariantConverges) {
  const mesh::Mesh m =
      mesh::generate_mesh(mesh::random_domain(105), 0.03, 105);
  const auto prob = fem::assemble_poisson(
      m, [](const Point2&) { return 1.0; }, [](const Point2&) { return 0.0; });
  core::HybridConfig cfg;
  cfg.preconditioner = "ddm-lu-ml";
  cfg.subdomain_target_nodes = 100;
  cfg.rel_tol = 1e-8;
  cfg.mg_levels = 3;
  cfg.mg_cycle = "w";
  cfg.mg_smoother = "chebyshev";
  cfg.mg_smooth_steps = 2;
  core::SolverSession session;
  session.setup(m, prob, cfg);
  std::vector<double> x(m.num_nodes(), 0.0);
  const auto res = session.solve(prob.b, x);
  EXPECT_TRUE(res.converged);
  // Residual check against the operator: the cycle is a genuine
  // preconditioner, not a no-op.
  std::vector<double> ax(m.num_nodes());
  prob.A.multiply(x, ax);
  double num = 0.0, den = 0.0;
  for (Index i = 0; i < m.num_nodes(); ++i) {
    num += (ax[i] - prob.b[i]) * (ax[i] - prob.b[i]);
    den += prob.b[i] * prob.b[i];
  }
  EXPECT_LT(std::sqrt(num / den), 1e-6);
}

}  // namespace
