// Telemetry-layer tests: exactness of the lock-free metrics primitives under
// concurrency, histogram quantiles on known distributions, span
// nesting/ordering through the Chrome trace writer, the disabled-mode
// overhead guard, convergence forensics (classify_failure), and the
// cross-layer invariant that SolveResult::precond_seconds reconciles with
// the precond.apply / precond.apply_many span durations on the scalar,
// block, and stationary driver paths.
//
// The obs flags and registry are process-global; every test that flips a
// flag restores the all-off default before returning (gtest runs tests
// sequentially in one process).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/session_cache.hpp"
#include "core/solver_session.hpp"
#include "fem/poisson.hpp"
#include "mesh/generator.hpp"
#include "obs/flags.hpp"
#include "obs/forensics.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "solver/krylov.hpp"
#include "solver/stationary.hpp"

namespace {

using namespace ddmgnn;

/// Restore the default all-off flag state (and drop buffered trace events)
/// no matter how a test exits.
struct ObsFlagGuard {
  ~ObsFlagGuard() {
    obs::set_metrics_enabled(false);
    obs::set_trace_enabled(false);
    obs::set_forensics_enabled(false);
    obs::TraceRecorder::instance().clear();
  }
};

struct SmallProblem {
  mesh::Mesh m;
  fem::PoissonProblem prob;
};

SmallProblem small_problem(std::uint64_t seed = 42, la::Index nodes = 700) {
  mesh::Mesh m =
      mesh::generate_mesh_target_nodes(mesh::random_domain(seed), nodes, seed);
  const auto q = fem::sample_quadratic_data(seed);
  auto prob = fem::assemble_poisson(
      m, [&](const mesh::Point2& p) { return q.f(p); },
      [&](const mesh::Point2& p) { return q.g(p); });
  return {std::move(m), std::move(prob)};
}

std::vector<double> random_vector(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

/// Sum of the durations of all precond.apply / precond.apply_many spans in
/// the recorder, in seconds.
double traced_precond_seconds() {
  double total = 0.0;
  for (const obs::TraceEvent& e : obs::TraceRecorder::instance().snapshot()) {
    const std::string name = e.name;
    if (name == "precond.apply" || name == "precond.apply_many") {
      total += static_cast<double>(e.dur_ns) * 1e-9;
    }
  }
  return total;
}

// ---------------------------------------------------------------- metrics --

TEST(ObsMetrics, ConcurrentCounterExactSum) {
  obs::Counter c;
  constexpr int kThreads = 8;
  constexpr int kIncs = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncs; ++i) c.inc();
      c.inc(5);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(),
            static_cast<std::uint64_t>(kThreads) * (kIncs + 5));
}

TEST(ObsMetrics, ConcurrentHistogramExactSums) {
  // Integer-valued doubles sum exactly (well below 2^53), so the totals must
  // come out bit-exact even with 8 writers racing.
  obs::Histogram h({1.0, 2.0, 5.0, 10.0});
  constexpr int kThreads = 8;
  constexpr int kObs = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kObs; ++i) {
        h.observe(static_cast<double>(i % 12));  // spills into overflow too
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kObs);
  // Per thread: kObs/12 full cycles of 0+1+...+11 = 66, plus remainder
  // 0..(kObs%12 - 1).
  const long long cycles = kObs / 12;
  long long per_thread = cycles * 66;
  for (int i = 0; i < kObs % 12; ++i) per_thread += i;
  EXPECT_EQ(h.sum(), static_cast<double>(kThreads * per_thread));
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 11.0);
  // Bucket partition covers every observation exactly once.
  std::uint64_t bucket_total = 0;
  for (std::size_t i = 0; i <= h.bounds().size(); ++i) {
    bucket_total += h.bucket_count(i);
  }
  EXPECT_EQ(bucket_total, h.count());
}

TEST(ObsMetrics, HistogramQuantilesKnownDistribution) {
  obs::Histogram h({1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  // Uniform on (0, 10]: 1000 evenly spaced observations.
  for (int k = 1; k <= 1000; ++k) h.observe(k * 0.01);
  // Linear interpolation inside unit-width buckets of a uniform sample is
  // accurate to well under one bucket width.
  EXPECT_NEAR(h.quantile(0.5), 5.0, 0.2);
  EXPECT_NEAR(h.quantile(0.9), 9.0, 0.2);
  EXPECT_NEAR(h.quantile(0.25), 2.5, 0.2);
  // Quantiles clamp to the observed range at the extremes.
  EXPECT_EQ(h.quantile(0.0), h.min());
  EXPECT_EQ(h.quantile(1.0), h.max());

  obs::Histogram empty({1.0, 2.0});
  EXPECT_EQ(empty.quantile(0.5), 0.0);

  obs::Histogram single({1.0, 2.0, 4.0});
  single.observe(3.0);
  // One observation: every quantile is that observation (clamping).
  EXPECT_EQ(single.quantile(0.01), 3.0);
  EXPECT_EQ(single.quantile(0.99), 3.0);
}

TEST(ObsMetrics, RegistryIdentityAndKindSafety) {
  auto& reg = obs::Registry::instance();
  obs::Counter& a = reg.counter("obs_test.ids_total");
  obs::Counter& b = reg.counter("obs_test.ids_total");
  EXPECT_EQ(&a, &b);  // find-or-create returns the same instrument
  obs::Counter& labeled = reg.counter("obs_test.ids_total", "kind=x");
  EXPECT_NE(&a, &labeled);  // labels are part of the identity
  // A name registered as one kind cannot be re-requested as another.
  EXPECT_THROW((void)reg.gauge("obs_test.ids_total"), std::logic_error);
}

// ------------------------------------------------------------------ spans --

TEST(ObsTrace, SpanNestingOrderingRoundTrip) {
  ObsFlagGuard guard;
  obs::TraceRecorder::instance().clear();
  obs::set_trace_enabled(true);
  {
    obs::Span outer("obs_test.outer");
    outer.arg("answer", 42.0);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    {
      obs::Span inner("obs_test.inner");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    obs::instant("obs_test.marker", "bytes", 128.0);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  obs::set_trace_enabled(false);

  const auto events = obs::TraceRecorder::instance().snapshot();
  const obs::TraceEvent* outer = nullptr;
  const obs::TraceEvent* inner = nullptr;
  const obs::TraceEvent* marker = nullptr;
  for (const auto& e : events) {
    const std::string name = e.name;
    if (name == "obs_test.outer") outer = &e;
    if (name == "obs_test.inner") inner = &e;
    if (name == "obs_test.marker") marker = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(marker, nullptr);
  // Same thread track; the child's interval nests strictly inside the
  // parent's (Chrome infers the hierarchy from exactly this containment).
  EXPECT_EQ(outer->tid, inner->tid);
  EXPECT_GE(inner->ts_ns, outer->ts_ns);
  EXPECT_LE(inner->ts_ns + inner->dur_ns, outer->ts_ns + outer->dur_ns);
  EXPECT_GT(inner->dur_ns, 0);
  EXPECT_GT(outer->dur_ns, inner->dur_ns);
  // Instants carry no duration; args round-trip.
  EXPECT_LT(marker->dur_ns, 0);
  ASSERT_NE(outer->arg_key1, nullptr);
  EXPECT_EQ(std::string(outer->arg_key1), "answer");
  EXPECT_EQ(outer->arg_val1, 42.0);

  // Chrome JSON: parent sorts before child (ts ascending, longer first at
  // ties), instants emit "i" events, and args appear as objects.
  const std::string json = obs::TraceRecorder::instance().chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  const auto outer_pos = json.find("\"obs_test.outer\"");
  const auto inner_pos = json.find("\"obs_test.inner\"");
  ASSERT_NE(outer_pos, std::string::npos);
  ASSERT_NE(inner_pos, std::string::npos);
  EXPECT_LT(outer_pos, inner_pos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"answer\": 42"), std::string::npos);
}

TEST(ObsTrace, DisabledModeOverheadGuard) {
  // All flags off (the default): an OBS_SPAN must cost a relaxed load and
  // nothing else. The bound is generous — a clock read alone would blow it.
  obs::set_metrics_enabled(false);
  obs::set_trace_enabled(false);
  obs::set_forensics_enabled(false);
  constexpr int kIters = 1000000;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) {
    OBS_SPAN("obs_test.disabled");
  }
  const auto end = std::chrono::steady_clock::now();
  const double ns_per_op =
      std::chrono::duration<double, std::nano>(end - start).count() / kIters;
  EXPECT_LT(ns_per_op, 500.0) << "disabled span cost " << ns_per_op << " ns";
  EXPECT_TRUE(obs::TraceRecorder::instance().snapshot().empty() ||
              true);  // no crash draining concurrently-idle buffers
}

// -------------------------------------------------------------- forensics --

TEST(ObsForensics, ClassifyFailureReasons) {
  solver::SolveOptions opts;
  opts.max_iterations = 100;

  solver::SolveResult res;
  res.converged = true;
  EXPECT_EQ(classify_failure(res, opts), obs::FailureReason::kNone);

  res.converged = false;
  res.final_relative_residual = std::nan("");
  EXPECT_EQ(classify_failure(res, opts), obs::FailureReason::kNan);

  res.final_relative_residual = 1e8;  // > 10x the initial rel residual
  res.history = {1.0, 10.0, 1e8};
  EXPECT_EQ(classify_failure(res, opts), obs::FailureReason::kDiverged);

  // Trailing-window stagnation: <1% progress over the last 10 iterations.
  res.final_relative_residual = 0.5;
  res.history.assign(30, 0.5);
  res.history.front() = 1.0;
  res.iterations = 30;
  EXPECT_EQ(classify_failure(res, opts), obs::FailureReason::kStagnated);

  // Steady progress that runs out of budget is max-iterations, not
  // stagnation.
  res.history.clear();
  double r = 1.0;
  for (int i = 0; i < 100; ++i) res.history.push_back(r *= 0.9);
  res.final_relative_residual = res.history.back();
  res.iterations = 100;
  EXPECT_EQ(classify_failure(res, opts), obs::FailureReason::kMaxIterations);

  // No history at all: budget exhaustion is the only claim we can make.
  res.history.clear();
  res.iterations = 40;
  res.final_relative_residual = 0.7;
  EXPECT_EQ(classify_failure(res, opts), obs::FailureReason::kMaxIterations);
}

TEST(ObsForensics, UnconvergedSolveGetsReasonAndSeries) {
  ObsFlagGuard guard;
  obs::set_forensics_enabled(true);
  auto [m, prob] = small_problem(11);
  core::HybridConfig cfg;
  cfg.preconditioner = "jacobi";  // slow on purpose
  cfg.rel_tol = 1e-12;
  cfg.max_iterations = 3;  // guaranteed unconverged
  // Forensics must capture the residual series even when the caller opted
  // out of history (the serving configuration).
  cfg.track_history = false;
  core::SolverSession session;
  session.setup(m, prob, cfg);
  std::vector<double> x(prob.b.size(), 0.0);
  const auto res = session.solve(prob.b, x);
  ASSERT_FALSE(res.converged);
  EXPECT_NE(res.failure, obs::FailureReason::kNone);
  EXPECT_EQ(res.failure, obs::FailureReason::kMaxIterations);
  EXPECT_FALSE(res.history.empty());  // captured despite track_history=false
  // The forensic series records one entry per preconditioner application,
  // and its sum IS precond_seconds (same Timer reading feeds both).
  ASSERT_FALSE(res.precond_history.empty());
  double sum = 0.0;
  for (const double s : res.precond_history) sum += s;
  EXPECT_NEAR(sum, res.precond_seconds, 1e-12);

  // Forensics off (the default): neither series is collected.
  obs::set_forensics_enabled(false);
  std::fill(x.begin(), x.end(), 0.0);
  const auto res2 = session.solve(prob.b, x);
  EXPECT_TRUE(res2.precond_history.empty());
  EXPECT_TRUE(res2.history.empty());
  EXPECT_EQ(res2.failure, obs::FailureReason::kMaxIterations);
}

// ----------------------------------------------- span/metric reconciliation --

TEST(ObsReconcile, ScalarSolvePrecondSecondsMatchSpans) {
  ObsFlagGuard guard;
  auto [m, prob] = small_problem(21);
  core::HybridConfig cfg;
  cfg.preconditioner = "ddm-lu";
  cfg.rel_tol = 1e-8;
  core::SolverSession session;
  session.setup(m, prob, cfg);

  obs::TraceRecorder::instance().clear();
  obs::set_trace_enabled(true);
  std::vector<double> x(prob.b.size(), 0.0);
  const auto res = session.solve(prob.b, x);
  obs::set_trace_enabled(false);
  ASSERT_TRUE(res.converged);
  // PrecondScope feeds the accumulator and the span from ONE Timer reading,
  // so the reconciliation is exact up to 1ns truncation per span.
  const double span_total = traced_precond_seconds();
  EXPECT_NEAR(span_total, res.precond_seconds,
              1e-9 * (res.iterations + 1) + 1e-12);
  EXPECT_GT(span_total, 0.0);
}

TEST(ObsReconcile, BlockSolvePrecondSecondsMatchSpans) {
  ObsFlagGuard guard;
  auto [m, prob] = small_problem(22);
  core::HybridConfig cfg;
  cfg.preconditioner = "ddm-lu";
  cfg.rel_tol = 1e-8;
  cfg.block_multi_rhs = true;
  core::SolverSession session;
  session.setup(m, prob, cfg);

  const std::size_t n = prob.b.size();
  std::vector<std::vector<double>> rhs;
  for (int j = 0; j < 4; ++j) rhs.push_back(random_vector(n, 100 + j));

  obs::TraceRecorder::instance().clear();
  obs::set_trace_enabled(true);
  std::vector<std::vector<double>> xs;
  const auto results = session.solve_many(rhs, xs);
  obs::set_trace_enabled(false);
  ASSERT_EQ(results.size(), rhs.size());
  double precond_total = 0.0;
  int total_events = 0;
  for (const auto& res : results) {
    EXPECT_TRUE(res.converged);
    precond_total += res.precond_seconds;
    total_events += res.iterations + 1;
  }
  // Per-column shares partition each apply_many measurement, so the column
  // sum reconciles with the span total.
  EXPECT_NEAR(traced_precond_seconds(), precond_total,
              1e-9 * total_events + precond_total * 1e-9 + 1e-12);
}

TEST(ObsReconcile, StationarySolvePrecondSecondsMatchSpans) {
  ObsFlagGuard guard;
  auto [m, prob] = small_problem(23);
  core::HybridConfig cfg;
  cfg.preconditioner = "ddm-lu";
  core::SolverSession session;
  session.setup(m, prob, cfg);

  solver::SolveOptions opts;
  opts.rel_tol = 1e-6;
  opts.max_iterations = 50;
  const double omega = solver::power_iteration_damping(
      prob.A, session.preconditioner(), 12, 5);

  obs::TraceRecorder::instance().clear();
  obs::set_trace_enabled(true);
  std::vector<double> x(prob.b.size(), 0.0);
  const auto res = solver::stationary_iteration(
      prob.A, session.preconditioner(), prob.b, x, opts, omega);
  obs::set_trace_enabled(false);
  EXPECT_NEAR(traced_precond_seconds(), res.precond_seconds,
              1e-9 * (res.iterations + 1) + 1e-12);
}

// ------------------------------------------------------- session + cache --

TEST(ObsCache, HitMissCountersAndSolveMetrics) {
  ObsFlagGuard guard;
  obs::set_metrics_enabled(true);
  auto& reg = obs::Registry::instance();
  const auto counter_value = [&](const char* name) -> std::uint64_t {
    const obs::Counter* c = reg.find_counter(name);
    return c != nullptr ? c->value() : 0;
  };
  const std::uint64_t hits0 = counter_value("cache.hits_total");
  const std::uint64_t misses0 = counter_value("cache.misses_total");
  const obs::Counter* solves_before = reg.find_counter("solver.solves_total");
  const std::uint64_t solves0 =
      solves_before != nullptr ? solves_before->value() : 0;

  auto [m, prob] = small_problem(31);
  core::HybridConfig cfg;
  cfg.preconditioner = "ddm-lu";
  core::SessionCache cache(/*byte_budget=*/1u << 30);
  auto s1 = cache.get_or_setup(m, prob, cfg);  // cold: miss
  auto s2 = cache.get_or_setup(m, prob, cfg);  // warm: hit
  EXPECT_EQ(counter_value("cache.misses_total"), misses0 + 1);
  EXPECT_EQ(counter_value("cache.hits_total"), hits0 + 1);

  std::vector<double> x(prob.b.size(), 0.0);
  const auto res = s2->solve(prob.b, x);
  ASSERT_TRUE(res.converged);
  EXPECT_EQ(counter_value("solver.solves_total"), solves0 + 1);
  // The session setup ran with metrics on, so the apply-phase gauges fired
  // during the solve and dominant_phase names one of them.
  double seconds = 0.0;
  const std::string phase = obs::dominant_phase(&seconds);
  EXPECT_FALSE(phase.empty());
  EXPECT_GT(seconds, 0.0);
}

}  // namespace
