// Tests for dataset serialization (round trip, dedup, corruption rejection)
// and the stationary Schwarz iteration (paper Eq. 8): it must converge as a
// fixed-point solver and be strictly slower than its PCG-accelerated form.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <set>

#include "common/rng.hpp"
#include "core/dataset.hpp"
#include "core/dataset_io.hpp"
#include "fem/poisson.hpp"
#include "la/vector_ops.hpp"
#include "mesh/generator.hpp"
#include "partition/decomposition.hpp"
#include "precond/asm_precond.hpp"
#include "precond/preconditioner.hpp"
#include "solver/stationary.hpp"

namespace {

using namespace ddmgnn;
using mesh::Point2;

TEST(DatasetIo, RoundTripPreservesEverything) {
  core::DatasetConfig dc;
  dc.num_global_problems = 1;
  dc.mesh_target_nodes = 700;
  dc.subdomain_target_nodes = 220;
  dc.seed = 99;
  const auto data = core::generate_dataset(dc);
  const std::string path = "test_dataset_roundtrip.bin";
  core::save_dataset(data, path);
  const auto loaded = core::load_dataset(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->train.size(), data.train.size());
  ASSERT_EQ(loaded->validation.size(), data.validation.size());
  ASSERT_EQ(loaded->test.size(), data.test.size());
  for (std::size_t i = 0; i < data.train.size(); ++i) {
    const auto& a = data.train[i];
    const auto& b = loaded->train[i];
    ASSERT_EQ(a.topo->n, b.topo->n);
    ASSERT_EQ(a.rhs, b.rhs);
    ASSERT_EQ(a.topo->recv, b.topo->recv);
    ASSERT_EQ(a.topo->attr, b.topo->attr);
    ASSERT_EQ(a.topo->a_local.nnz(), b.topo->a_local.nnz());
    // Operator values identical.
    for (la::Offset k = 0; k < a.topo->a_local.nnz(); ++k) {
      ASSERT_EQ(a.topo->a_local.values()[k], b.topo->a_local.values()[k]);
    }
  }
  // Topology sharing survives the round trip (dedup worked).
  std::set<const gnn::GraphTopology*> orig, back;
  for (const auto& s : data.train) orig.insert(s.topo.get());
  for (const auto& s : loaded->train) back.insert(s.topo.get());
  EXPECT_EQ(orig.size(), back.size());
  std::filesystem::remove(path);
}

TEST(DatasetIo, RejectsCorruptFiles) {
  EXPECT_FALSE(core::load_dataset("missing_dataset.bin").has_value());
  const std::string path = "test_dataset_garbage.bin";
  {
    std::ofstream f(path, std::ios::binary);
    f << "garbage bytes here";
  }
  EXPECT_FALSE(core::load_dataset(path).has_value());
  std::filesystem::remove(path);
}

/// Largest eigenvalue of M⁻¹A by power iteration (M⁻¹A is similar to an SPD
/// operator for SPD M, so the dominant eigenvalue is real positive).
double estimate_lambda_max(const la::CsrMatrix& a,
                           const precond::Preconditioner& m, int iters = 30) {
  Rng rng(123);
  std::vector<double> v(a.rows()), av(a.rows()), mav(a.rows());
  for (double& x : v) x = rng.uniform(-1, 1);
  double lambda = 1.0;
  for (int i = 0; i < iters; ++i) {
    a.multiply(v, av);
    m.apply(av, mav);
    lambda = la::norm2(mav) / std::max(1e-300, la::norm2(v));
    const double inv = 1.0 / std::max(1e-300, la::norm2(mav));
    for (std::size_t j = 0; j < v.size(); ++j) v[j] = mav[j] * inv;
  }
  return lambda;
}

TEST(Stationary, AsmFixedPointWithSafeDampingAndPcgIsFaster) {
  // Overlapping *additive* Schwarz does NOT converge as an undamped
  // fixed-point method (overlap regions are corrected multiple times:
  // λmax(M⁻¹A) > 2) — the textbook reason it is used as a preconditioner
  // (paper §II-A). With damping < 2/λmax Richardson contracts; PCG on the
  // same operator is much faster still.
  const mesh::Mesh m = mesh::generate_mesh(mesh::random_domain(7), 0.05, 7);
  const auto q = fem::sample_quadratic_data(7);
  const auto prob = fem::assemble_poisson(
      m, [&](const Point2& p) { return q.f(p); },
      [&](const Point2& p) { return q.g(p); });
  const auto dec =
      partition::decompose_target_size(m.adj_ptr(), m.adj(), 300, 2, 7);
  precond::AdditiveSchwarz ddm(
      prob.A, dec, std::make_unique<precond::CholeskySubdomainSolver>());

  const double lambda_max = estimate_lambda_max(prob.A, ddm);
  EXPECT_GT(lambda_max, 1.0);   // overlap + coarse => eigenvalues above 1
  EXPECT_LT(lambda_max, 20.0);  // but bounded by the overlap coloring
  const double damping = 1.0 / lambda_max;

  std::vector<double> x1(prob.b.size(), 0.0), x2(prob.b.size(), 0.0);
  solver::SolveOptions opts;
  opts.rel_tol = 1e-6;
  opts.max_iterations = 5000;
  const auto fixed =
      solver::stationary_iteration(prob.A, ddm, prob.b, x1, opts, damping);
  EXPECT_TRUE(fixed.converged);
  EXPECT_LT(fem::relative_residual(prob.A, prob.b, x1), 1e-5);

  const auto accel = solver::pcg(prob.A, ddm, prob.b, x2, opts);
  EXPECT_TRUE(accel.converged);
  // Krylov acceleration strictly beats the stationary form.
  EXPECT_LT(accel.iterations, fixed.iterations);
}

TEST(Stationary, UndampedOverlappingAsmDiverges) {
  // The complementary property: damping 1.0 (the raw Eq. 8 fixed point with
  // the *additive* overlap variant) fails to contract.
  const mesh::Mesh m = mesh::generate_mesh(mesh::random_domain(9), 0.09, 9);
  const auto prob = fem::assemble_poisson(
      m, [](const Point2&) { return 1.0; }, [](const Point2&) { return 0.0; });
  const auto dec = partition::decompose(m.adj_ptr(), m.adj(), 6, 2, 9);
  precond::AdditiveSchwarz ddm(
      prob.A, dec, std::make_unique<precond::CholeskySubdomainSolver>());
  std::vector<double> x(prob.b.size(), 0.0);
  solver::SolveOptions opts;
  opts.rel_tol = 1e-10;
  opts.max_iterations = 60;
  const auto res =
      solver::stationary_iteration(prob.A, ddm, prob.b, x, opts, 1.0);
  EXPECT_FALSE(res.converged);
  EXPECT_GT(res.final_relative_residual, 1e-3);
}

TEST(Stationary, JacobiRichardsonConvergesOnMMatrix) {
  // The FEM Laplacian (with identity Dirichlet rows) is an irreducibly
  // diagonally dominant M-matrix: classical Jacobi iteration converges
  // undamped, and halving the step slows it down.
  const mesh::Mesh m = mesh::generate_mesh(mesh::random_domain(9), 0.12, 9);
  const auto prob = fem::assemble_poisson(
      m, [](const Point2&) { return 1.0; }, [](const Point2&) { return 0.0; });
  const precond::JacobiPreconditioner jac(prob.A.diagonal());
  solver::SolveOptions opts;
  opts.rel_tol = 1e-8;
  opts.max_iterations = 400;
  std::vector<double> x_damped(prob.b.size(), 0.0);
  const auto damped = solver::stationary_iteration(prob.A, jac, prob.b,
                                                   x_damped, opts, 0.5);
  std::vector<double> x_raw(prob.b.size(), 0.0);
  const auto raw =
      solver::stationary_iteration(prob.A, jac, prob.b, x_raw, opts, 1.0);
  EXPECT_LE(raw.final_relative_residual,
            damped.final_relative_residual * 1.01);
}

TEST(Stationary, HistoryDecreasesGeometricallyForDampedAsm) {
  const mesh::Mesh m = mesh::generate_mesh(mesh::random_domain(11), 0.08, 11);
  const auto prob = fem::assemble_poisson(
      m, [](const Point2&) { return 1.0; }, [](const Point2&) { return 0.0; });
  const auto dec = partition::decompose(m.adj_ptr(), m.adj(), 4, 2, 11);
  precond::AdditiveSchwarz ddm(
      prob.A, dec, std::make_unique<precond::CholeskySubdomainSolver>());
  const double damping = 0.9 / estimate_lambda_max(prob.A, ddm);
  std::vector<double> x(prob.b.size(), 0.0);
  solver::SolveOptions opts;
  opts.rel_tol = 1e-8;
  opts.max_iterations = 3000;
  const auto res =
      solver::stationary_iteration(prob.A, ddm, prob.b, x, opts, damping);
  ASSERT_TRUE(res.converged);
  // Roughly geometric decrease: each 20 iterations reduce the residual.
  for (std::size_t i = 20; i < res.history.size(); i += 20) {
    EXPECT_LT(res.history[i], res.history[i - 20]);
  }
}

}  // namespace
