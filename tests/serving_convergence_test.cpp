// Serving-configuration convergence suite (the bench_serving bugfix):
//   - the cached-session ddm-gnn configuration at bench smoke scale —
//     adaptive refine-until-contractive setup + mixed-precision applies on
//     an UNTRAINED model — converges on every solve. The untrained model is
//     the worst case the serving bench used to fail on: the adaptive setup
//     must detect the non-contractive subdomains and rescue them with the
//     exact Cholesky fallback.
//   - the fused layer2+aggregate kernel is BITWISE equal to the three-step
//     gather / layer-2 GEMM / segmented-aggregate path at any thread count
//     (per-row GEMM accumulation order is blocking-invariant and the
//     receiver-CSR reduction preserves per-destination order).
//   - a mixed-precision (fp32 preconditioner apply) solve still meets the
//     fp64 tolerance on the true residual, and the default Krylov selection
//     bumps PCG to flexible PCG when fp32 is on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/session_cache.hpp"
#include "core/solver_session.hpp"
#include "fem/poisson.hpp"
#include "gnn/dss_model.hpp"
#include "gnn/graph.hpp"
#include "la/vector_ops.hpp"
#include "mesh/generator.hpp"
#include "obs/forensics.hpp"
#include "solver/krylov.hpp"

namespace {

using namespace ddmgnn;
using la::Index;
using mesh::Point2;

/// Restores the ambient thread count when a test overrides it.
struct ThreadGuard {
  ~ThreadGuard() { set_num_threads(0); }
};

struct MeshProblem {
  mesh::Mesh m;
  fem::PoissonProblem prob;
};

/// The serving bench's smoke-scale problem shape: an irregular random-domain
/// mesh around 800 nodes.
MeshProblem smoke_problem(std::uint64_t seed = 7, Index nodes = 800) {
  mesh::Mesh m =
      mesh::generate_mesh_target_nodes(mesh::random_domain(seed), nodes, seed);
  const auto q = fem::sample_quadratic_data(seed);
  auto prob = fem::assemble_poisson(
      m, [&](const Point2& p) { return q.f(p); },
      [&](const Point2& p) { return q.g(p); });
  return {std::move(m), std::move(prob)};
}

/// The bench's served ddm-gnn configuration (bench/bench_serving.cpp):
/// adaptive refine-until-contractive setup plus fp32 preconditioner applies.
core::HybridConfig served_config(const gnn::DssModel& model) {
  core::HybridConfig cfg;
  cfg.preconditioner = "ddm-gnn";
  cfg.subdomain_target_nodes = 350;
  cfg.rel_tol = 1e-6;
  cfg.max_iterations = 500;
  cfg.track_history = false;
  cfg.model = &model;
  cfg.gnn_adaptive_refinement = true;
  cfg.precond_fp32 = true;
  return cfg;
}

double true_rel_residual(const la::CsrMatrix& A, std::span<const double> b,
                         std::span<const double> x) {
  std::vector<double> r(b.size());
  A.multiply(x, r);
  for (std::size_t i = 0; i < r.size(); ++i) r[i] = b[i] - r[i];
  return la::norm2(r) / la::norm2(b);
}

TEST(ServingConvergence, CachedSessionDdmGnnConvergesAtSmokeScale) {
  auto [m, prob] = smoke_problem();
  // Untrained paper-shape model (k̄=10, d=10, hidden=10): the exact
  // configuration the serving bench used to fail every solve on.
  gnn::DssConfig mc;
  gnn::DssModel model(mc, /*seed=*/3);
  const core::HybridConfig cfg = served_config(model);

  core::SessionCache cache(/*byte_budget=*/1u << 30);
  auto session = cache.get_or_setup(m, prob, cfg);
  ASSERT_TRUE(session->ready());
  // fp32 applies make the preconditioner effectively nonlinear: the default
  // method must be the flexible variant.
  EXPECT_EQ(session->method(), solver::KrylovMethod::kFpcg);

  // Single-RHS path.
  std::vector<double> x(prob.b.size(), 0.0);
  const auto res = session->solve(prob.b, x);
  EXPECT_TRUE(res.converged)
      << "failure=" << obs::failure_reason_name(res.failure)
      << " iterations=" << res.iterations;
  EXPECT_LT(true_rel_residual(prob.A, prob.b, x), 1e-5);

  // Batched path (the bench's solve_many traffic), through the cache hit.
  auto again = cache.get_or_setup(m, prob, cfg);
  EXPECT_EQ(again.get(), session.get());
  Rng rng(99);
  std::vector<std::vector<double>> bs(4);
  for (auto& b : bs) {
    b.resize(prob.b.size());
    for (double& v : b) v = rng.uniform(-1.0, 1.0);
  }
  std::vector<std::vector<double>> xs;
  const auto results = again->solve_many(bs, xs);
  ASSERT_EQ(results.size(), bs.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].converged)
        << "rhs " << i
        << " failure=" << obs::failure_reason_name(results[i].failure);
    EXPECT_LT(true_rel_residual(prob.A, bs[i], xs[i]), 1e-5);
  }
}

TEST(ServingConvergence, FusedAggregateBitwiseEqualsTwoStepAtAnyThreadCount) {
  ThreadGuard guard;
  auto [m, prob] = smoke_problem(/*seed=*/11, /*nodes=*/500);
  const la::CsrMatrix pattern = gnn::adjacency_pattern(m.adj_ptr(), m.adj());
  gnn::GraphSample s;
  s.topo = gnn::build_topology(prob.A, m.points(), prob.dirichlet, &pattern);
  s.rhs.resize(prob.b.size());
  Rng rng(21);
  for (double& v : s.rhs) v = rng.uniform(-1.0, 1.0);
  const double norm = la::norm2(s.rhs);
  for (double& v : s.rhs) v /= norm;

  gnn::DssConfig mc;  // paper shape, untrained — bit patterns are what count
  gnn::DssModel model(mc, /*seed=*/3);
  gnn::DssWorkspace ws;

  model.set_fused_aggregate(false);
  std::vector<float> ref;
  set_num_threads(1);
  model.forward(s, ws, ref);
  ASSERT_FALSE(ref.empty());

  model.set_fused_aggregate(true);
  for (const int threads : {1, 2, 4}) {
    set_num_threads(threads);
    std::vector<float> fused;
    model.forward(s, ws, fused);
    ASSERT_EQ(fused.size(), ref.size()) << "threads=" << threads;
    EXPECT_EQ(std::memcmp(fused.data(), ref.data(),
                          ref.size() * sizeof(float)),
              0)
        << "fused kernel not bitwise at threads=" << threads;
  }
}

TEST(ServingConvergence, MixedPrecisionLuSolveMeetsFp64Tolerance) {
  auto [m, prob] = smoke_problem(/*seed=*/5, /*nodes=*/600);
  core::HybridConfig cfg;
  cfg.preconditioner = "ddm-lu";
  cfg.subdomain_target_nodes = 200;
  cfg.rel_tol = 1e-8;
  cfg.precond_fp32 = true;
  cfg.track_history = false;

  core::SolverSession session;
  session.setup(m, prob, cfg);
  // Symmetric preconditioner, but fp32 rounding breaks exact symmetry: the
  // trait-based default must pick flexible PCG.
  EXPECT_EQ(session.method(), solver::KrylovMethod::kFpcg);
  std::vector<double> x(prob.b.size(), 0.0);
  const auto res = session.solve(prob.b, x);
  EXPECT_TRUE(res.converged)
      << "failure=" << obs::failure_reason_name(res.failure);
  // Convergence is declared on the fp64 residual recurrence; verify against
  // the true residual so fp32 rounding cannot fake it.
  EXPECT_LT(true_rel_residual(prob.A, prob.b, x), 1e-7);
}

}  // namespace
