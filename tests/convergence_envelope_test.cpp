// Parameterized convergence-envelope sweeps: across random seeds and problem
// sizes, the classical pipeline must stay inside known iteration envelopes.
// These are the regression rails for Table I's classical columns — if the
// partitioner, coarse space, FEM assembly or PCG drift, these trip first.
#include <gtest/gtest.h>

#include "fem/poisson.hpp"
#include "mesh/generator.hpp"
#include "partition/decomposition.hpp"
#include "precond/asm_precond.hpp"
#include "solver/krylov.hpp"

namespace {

using namespace ddmgnn;
using la::Index;
using mesh::Point2;

struct EnvelopeCase {
  std::uint64_t seed;
  Index nodes;
  Index sub_nodes;
  int max_ddm_lu_iters;  // generous envelope for the classical method
};

class Envelope : public ::testing::TestWithParam<EnvelopeCase> {};

TEST_P(Envelope, DdmLuStaysWithinIterationEnvelope) {
  const auto c = GetParam();
  const mesh::Mesh m = mesh::generate_mesh_target_nodes(
      mesh::random_domain(c.seed), c.nodes, c.seed);
  const auto q = fem::sample_quadratic_data(c.seed);
  const auto prob = fem::assemble_poisson(
      m, [&](const Point2& p) { return q.f(p); },
      [&](const Point2& p) { return q.g(p); });
  const auto dec = partition::decompose_target_size(
      m.adj_ptr(), m.adj(), c.sub_nodes, 2, c.seed);
  precond::AdditiveSchwarz ddm(
      prob.A, dec, std::make_unique<precond::CholeskySubdomainSolver>());
  std::vector<double> x(prob.b.size(), 0.0);
  const auto res =
      solver::pcg(prob.A, ddm, prob.b, x, {.max_iterations = 500});
  EXPECT_TRUE(res.converged) << "seed " << c.seed;
  EXPECT_LE(res.iterations, c.max_ddm_lu_iters) << "seed " << c.seed;
  EXPECT_LT(fem::relative_residual(prob.A, prob.b, x), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndSizes, Envelope,
    ::testing::Values(EnvelopeCase{1, 1000, 300, 40},
                      EnvelopeCase{2, 1000, 300, 40},
                      EnvelopeCase{3, 2500, 300, 45},
                      EnvelopeCase{4, 2500, 500, 45},
                      EnvelopeCase{5, 5000, 300, 55},
                      EnvelopeCase{6, 5000, 700, 55},
                      EnvelopeCase{7, 9000, 300, 60},
                      EnvelopeCase{8, 9000, 500, 60}));

class CgGrowth : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CgGrowth, CgIterationsScaleLikeSqrtN) {
  // For 2D P1 Laplacians, cond(A) = O(h^-2) = O(N), so CG iterations grow
  // ~sqrt(N). Check the growth exponent lands in a sane band across seeds.
  const std::uint64_t seed = GetParam();
  int iters[2];
  const Index sizes[2] = {1200, 4800};  // 4x nodes -> ~2x iterations
  for (int i = 0; i < 2; ++i) {
    const mesh::Mesh m = mesh::generate_mesh_target_nodes(
        mesh::random_domain(seed), sizes[i], seed);
    const auto q = fem::sample_quadratic_data(seed);
    const auto prob = fem::assemble_poisson(
        m, [&](const Point2& p) { return q.f(p); },
        [&](const Point2& p) { return q.g(p); });
    std::vector<double> x(prob.b.size(), 0.0);
    const auto res = solver::conjugate_gradient(prob.A, prob.b, x,
                                                {.max_iterations = 5000});
    ASSERT_TRUE(res.converged);
    iters[i] = res.iterations;
  }
  const double growth = static_cast<double>(iters[1]) / iters[0];
  EXPECT_GT(growth, 1.3);
  EXPECT_LT(growth, 3.2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CgGrowth, ::testing::Values(11, 22, 33, 44));

}  // namespace
