// Tests of the batched multi-RHS solve engine: MultiVector kernels and the
// fused SpMM, Preconditioner::apply_many column-equivalence for every
// registry entry, block-PCG lockstep equivalence to per-RHS sequential PCG
// (including deflation on mixed-difficulty right-hand sides), the
// shared-subspace block flexible PCG, and the Richardson damping fix.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/solver_session.hpp"
#include "fem/poisson.hpp"
#include "gnn/dss_model.hpp"
#include "gnn/graph.hpp"
#include "la/multivector.hpp"
#include "la/vector_ops.hpp"
#include "mesh/generator.hpp"
#include "partition/decomposition.hpp"
#include "precond/registry.hpp"
#include "solver/block_krylov.hpp"
#include "solver/stationary.hpp"

namespace {

using namespace ddmgnn;
using la::Index;
using la::MultiVector;
using mesh::Point2;

struct SmallProblem {
  mesh::Mesh m;
  fem::PoissonProblem prob;
};

SmallProblem small_problem(std::uint64_t seed = 42, Index nodes = 900) {
  mesh::Mesh m =
      mesh::generate_mesh_target_nodes(mesh::random_domain(seed), nodes, seed);
  const auto q = fem::sample_quadratic_data(seed);
  auto prob = fem::assemble_poisson(
      m, [&](const Point2& p) { return q.f(p); },
      [&](const Point2& p) { return q.g(p); });
  return {std::move(m), std::move(prob)};
}

std::vector<double> random_vector(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

gnn::DssModel tiny_model() {
  gnn::DssConfig mc;
  mc.iterations = 2;
  mc.latent = 4;
  mc.hidden = 4;
  return gnn::DssModel(mc, 7);
}

TEST(MultiVector, FusedKernelsMatchScalarOps) {
  const Index n = 100, s = 3;
  std::vector<std::vector<double>> cols(s);
  for (Index j = 0; j < s; ++j) cols[j] = random_vector(n, 10 + j);
  MultiVector x = MultiVector::from_columns(cols);
  ASSERT_EQ(x.rows(), n);
  ASSERT_EQ(x.cols(), s);
  for (Index j = 0; j < s; ++j) {
    for (Index i = 0; i < n; ++i) EXPECT_EQ(x.at(i, j), cols[j][i]);
  }

  MultiVector y = MultiVector::from_columns(cols);
  std::vector<double> a{0.5, -2.0, 3.0};
  axpy_columns(a, x, y);
  std::vector<double> dots(s), norms(s);
  dot_columns(x, y, dots);
  norm2_columns(y, norms);
  for (Index j = 0; j < s; ++j) {
    std::vector<double> ref = cols[j];
    la::axpy(a[j], cols[j], ref);
    EXPECT_EQ(dots[j], la::dot(cols[j], ref)) << j;
    EXPECT_EQ(norms[j], la::norm2(ref)) << j;
  }

  xpay_columns(a, x, y);  // y = x + a.*y
  for (Index j = 0; j < s; ++j) {
    std::vector<double> ref = cols[j];
    la::axpy(a[j], cols[j], ref);   // the earlier axpy
    la::xpay(cols[j], a[j], ref);   // this xpay
    for (Index i = 0; i < n; ++i) EXPECT_EQ(y.at(i, j), ref[i]);
  }

  // Deflation compaction: keep columns 0 and 2.
  const std::vector<Index> keep{0, 2};
  x.keep_columns(keep);
  ASSERT_EQ(x.cols(), 2);
  for (Index i = 0; i < n; ++i) {
    EXPECT_EQ(x.at(i, 0), cols[0][i]);
    EXPECT_EQ(x.at(i, 1), cols[2][i]);
  }
}

TEST(MultiVector, ApplyManyMatchesPerColumnMultiply) {
  auto [m, prob] = small_problem(3, 700);
  const Index n = prob.A.rows();
  const Index s = 5;
  MultiVector x(n, s);
  for (Index j = 0; j < s; ++j) {
    la::copy(random_vector(n, 100 + j), x.col(j));
  }
  MultiVector y;
  prob.A.apply_many(x, y);
  ASSERT_EQ(y.rows(), n);
  ASSERT_EQ(y.cols(), s);
  std::vector<double> ref(n);
  for (Index j = 0; j < s; ++j) {
    prob.A.multiply(x.col(j), ref);
    const auto yj = y.col(j);
    for (Index i = 0; i < n; ++i) EXPECT_EQ(yj[i], ref[i]) << j;
  }
}

TEST(ApplyMany, EqualsLoopedApplyForEveryRegistryEntry) {
  auto [m, prob] = small_problem(5, 900);
  const auto dec =
      partition::decompose_target_size(m.adj_ptr(), m.adj(), 250, 2, 3);
  const gnn::DssModel model = tiny_model();
  const Index n = prob.A.rows();
  const Index s = 4;
  MultiVector r(n, s);
  for (Index j = 0; j < s; ++j) la::copy(random_vector(n, 50 + j), r.col(j));

  const la::CsrMatrix mesh_pattern =
      gnn::adjacency_pattern(m.adj_ptr(), m.adj());
  for (const std::string& name : precond::preconditioner_names()) {
    const auto& traits = precond::preconditioner_traits(name);
    precond::PrecondContext ctx;
    ctx.A = &prob.A;
    ctx.coords = m.points();
    ctx.edge_pattern = &mesh_pattern;
    ctx.dirichlet = prob.dirichlet;
    if (traits.needs_decomposition) ctx.dec = &dec;
    if (traits.needs_model) ctx.model = &model;
    const auto p = precond::make_preconditioner(name, ctx);

    MultiVector z_block(n, s);
    p->apply_many(r, z_block);
    std::vector<double> z_ref(n);
    for (Index j = 0; j < s; ++j) {
      p->apply(r.col(j), z_ref);
      const auto zj = z_block.col(j);
      double scale = 0.0;
      for (Index i = 0; i < n; ++i) scale = std::max(scale, std::abs(z_ref[i]));
      for (Index i = 0; i < n; ++i) {
        EXPECT_NEAR(zj[i], z_ref[i], 1e-14 * (1.0 + scale))
            << name << " col " << j << " row " << i;
      }
    }
  }
}

TEST(BlockPcg, MatchesSequentialPcgPerColumnWithDeflation) {
  auto [m, prob] = small_problem(13, 1400);
  core::HybridConfig cfg;
  cfg.preconditioner = "ddm-lu";
  cfg.subdomain_target_nodes = 300;
  cfg.rel_tol = 1e-8;
  cfg.track_history = true;

  // Mixed difficulty: the assembled b, an immediately-converged zero column,
  // a scaled copy, and an unrelated random field — columns converge at
  // different iterations, exercising deflation mid-solve.
  std::vector<std::vector<double>> rhs(4, prob.b);
  std::fill(rhs[1].begin(), rhs[1].end(), 0.0);
  for (double& v : rhs[2]) v *= -3.0;
  rhs[3] = random_vector(prob.b.size(), 99);

  core::SolverSession block_session;
  block_session.setup(m, prob, cfg);
  std::vector<std::vector<double>> xs_block;
  const auto block_results = block_session.solve_many(rhs, xs_block);

  cfg.block_multi_rhs = false;
  core::SolverSession seq_session;
  seq_session.setup(m, prob, cfg);
  std::vector<std::vector<double>> xs_seq;
  const auto seq_results = seq_session.solve_many(rhs, xs_seq);

  ASSERT_EQ(block_results.size(), 4u);
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_TRUE(block_results[j].converged) << j;
    EXPECT_EQ(block_results[j].method, "block-pcg+ddm-lu");
    // Lockstep recurrences: iteration counts within 1 of the scalar solver
    // (they match exactly — the recurrences share every kernel).
    EXPECT_NEAR(block_results[j].iterations, seq_results[j].iterations, 1)
        << j;
    // Residuals meet the requested tolerance for every column.
    EXPECT_LT(fem::relative_residual(prob.A, rhs[j], xs_block[j]),
              10 * cfg.rel_tol)
        << j;
    // Identical trajectories ⇒ identical solutions (tight tolerance).
    ASSERT_EQ(xs_block[j].size(), xs_seq[j].size());
    for (std::size_t i = 0; i < xs_block[j].size(); i += 13) {
      EXPECT_NEAR(xs_block[j][i], xs_seq[j][i],
                  1e-12 * (1.0 + std::abs(xs_seq[j][i])))
          << j;
    }
  }
  // The zero column deflates instantly.
  EXPECT_EQ(block_results[1].iterations, 0);
  EXPECT_TRUE(block_results[1].converged);
  // Histories are tracked per column up to each column's own convergence.
  EXPECT_EQ(static_cast<int>(block_results[3].history.size()),
            block_results[3].iterations + 1);
}

TEST(BlockFpcg, SharedSubspaceConvergesEveryColumn) {
  auto [m, prob] = small_problem(17, 1400);
  core::HybridConfig cfg;
  cfg.preconditioner = "ddm-lu";
  cfg.method = solver::KrylovMethod::kFpcg;  // force the flexible block path
  cfg.subdomain_target_nodes = 300;
  cfg.rel_tol = 1e-8;
  cfg.track_history = false;

  std::vector<std::vector<double>> rhs;
  rhs.push_back(prob.b);
  for (int j = 0; j < 5; ++j) {
    rhs.push_back(random_vector(prob.b.size(), 200 + j));
  }
  // A duplicated column: the direction block turns rank-deficient and the
  // MGS drop-path must handle it.
  rhs.push_back(prob.b);

  core::SolverSession session;
  session.setup(m, prob, cfg);
  std::vector<std::vector<double>> xs;
  const auto results = session.solve_many(rhs, xs);

  cfg.block_multi_rhs = false;
  core::SolverSession seq_session;
  seq_session.setup(m, prob, cfg);
  std::vector<std::vector<double>> xs_seq;
  const auto seq_results = seq_session.solve_many(rhs, xs_seq);

  int max_block = 0, max_seq = 0;
  for (std::size_t j = 0; j < rhs.size(); ++j) {
    EXPECT_TRUE(results[j].converged) << j;
    EXPECT_LT(fem::relative_residual(prob.A, rhs[j], xs[j]), 10 * cfg.rel_tol)
        << j;
    max_block = std::max(max_block, results[j].iterations);
    max_seq = std::max(max_seq, seq_results[j].iterations);
  }
  // The shared search space never needs more block iterations than the
  // hardest column needs alone (each column minimizes over a superset of
  // its own directions).
  EXPECT_LE(max_block, max_seq + 1);
}

TEST(Richardson, PowerIterationDampingTamesDivergence) {
  auto [m, prob] = small_problem(23, 1000);
  core::HybridConfig cfg;
  cfg.preconditioner = "ddm-lu";
  cfg.subdomain_target_nodes = 250;
  core::SolverSession session;
  session.setup(m, prob, cfg);
  const auto& precond = session.preconditioner();

  solver::SolveOptions opts;
  opts.rel_tol = 1e-6;
  opts.max_iterations = 3000;
  opts.track_history = false;

  // A deliberately too-large damping factor must trip the divergence guard
  // long before the iteration cap instead of looping on garbage.
  std::vector<double> x(prob.b.size(), 0.0);
  const auto diverged = solver::stationary_iteration(prob.A, precond, prob.b,
                                                     x, opts, /*damping=*/10.0);
  EXPECT_FALSE(diverged.converged);
  EXPECT_LT(diverged.iterations, opts.max_iterations);

  // The power-iteration bound yields a contraction: ω ∈ (0, 1] here (the
  // two-level Schwarz spectrum reaches beyond 2) and the damped iteration
  // converges.
  const double omega = solver::power_iteration_damping(prob.A, precond);
  EXPECT_GT(omega, 0.0);
  EXPECT_LE(omega, 1.0);
  std::fill(x.begin(), x.end(), 0.0);
  const auto damped =
      solver::stationary_iteration(prob.A, precond, prob.b, x, opts, omega);
  EXPECT_TRUE(damped.converged);
  EXPECT_LT(fem::relative_residual(prob.A, prob.b, x), 1e-5);
}

}  // namespace
