// Property tests for the MatrixMarket I/O layer: write→read round trips are
// bit-exact for random CSR matrices (general and symmetric) and vectors, and
// every malformed-input class (bad banner, bad counts, out-of-range indices,
// non-numeric tokens, truncation, trailing data, wrong format family)
// produces a ContractError diagnostic naming the offending line — never a
// crash or a silently wrong matrix.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "la/mm_io.hpp"

namespace {

using namespace ddmgnn;
using la::CsrMatrix;
using la::Index;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          ("ddmgnn_mm_" + std::to_string(::getpid()) + "_" + name))
      .string();
}

/// Random sparse matrix with adversarial values: many magnitudes, negatives,
/// non-representable decimals, exact zeros — the round trip must preserve
/// every bit.
CsrMatrix random_matrix(Index rows, Index cols, std::uint64_t seed,
                        bool symmetric) {
  Rng rng(seed);
  la::CooBuilder coo(rows, cols);
  const int entries = static_cast<int>(rows) * 4;
  for (int k = 0; k < entries; ++k) {
    const auto i = static_cast<Index>(rng.uniform_index(rows));
    const auto j = static_cast<Index>(rng.uniform_index(cols));
    double v = rng.uniform(-10.0, 10.0);
    const double r = rng.uniform();
    if (r < 0.1) {
      v = 0.0;  // explicitly stored zero
    } else if (r < 0.3) {
      v *= std::pow(10.0, rng.uniform(-200.0, 200.0));  // extreme exponents
    } else if (r < 0.4) {
      v = 1.0 / 3.0 + v;  // non-terminating binary fractions
    }
    if (symmetric) {
      coo.add(i, j, v);
      if (i != j) coo.add(j, i, v);
    } else {
      coo.add(i, j, v);
    }
  }
  for (Index d = 0; d < std::min(rows, cols); ++d) coo.add(d, d, 1.0);
  return std::move(coo).build();
}

void expect_bit_equal(const CsrMatrix& a, const CsrMatrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  ASSERT_EQ(a.nnz(), b.nnz());
  const auto arp = a.row_ptr(), brp = b.row_ptr();
  for (std::size_t i = 0; i < arp.size(); ++i) ASSERT_EQ(arp[i], brp[i]) << i;
  const auto aci = a.col_idx(), bci = b.col_idx();
  for (std::size_t i = 0; i < aci.size(); ++i) ASSERT_EQ(aci[i], bci[i]) << i;
  const auto av = a.values(), bv = b.values();
  for (std::size_t i = 0; i < av.size(); ++i) {
    // EQ on doubles: the round trip must preserve bits, not just values.
    ASSERT_EQ(av[i], bv[i]) << "value " << i;
  }
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream f(path);
  f << content;
}

/// The reader must throw a ContractError whose message names `needle` (and,
/// when line > 0, the 1-based offending line).
void expect_read_error(const std::string& content, const std::string& needle,
                       long line = 0) {
  const std::string path = temp_path("malformed.mtx");
  write_file(path, content);
  try {
    (void)la::mm::read_matrix(path);
    FAIL() << "expected ContractError mentioning '" << needle << "'";
  } catch (const ContractError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(needle), std::string::npos) << what;
    if (line > 0) {
      EXPECT_NE(what.find("line " + std::to_string(line)), std::string::npos)
          << what;
    }
  }
  std::filesystem::remove(path);
}

TEST(MatrixMarket, GeneralRoundTripIsBitExact) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    const CsrMatrix a =
        random_matrix(40 + static_cast<Index>(seed) * 7, 33, seed,
                      /*symmetric=*/false);
    const std::string path = temp_path("general.mtx");
    la::mm::write_matrix(path, a);
    const CsrMatrix b = la::mm::read_matrix(path);
    expect_bit_equal(a, b);
    std::filesystem::remove(path);
  }
}

TEST(MatrixMarket, SymmetricRoundTripIsBitExact) {
  for (const std::uint64_t seed : {11ull, 12ull, 13ull}) {
    const CsrMatrix a = random_matrix(50, 50, seed, /*symmetric=*/true);
    ASSERT_EQ(a.symmetry_defect(), 0.0);
    const std::string path = temp_path("symmetric.mtx");
    la::mm::write_matrix(path, a, la::mm::Symmetry::kSymmetric);
    // The file stores only the lower triangle...
    const CsrMatrix b = la::mm::read_matrix(path);
    // ...but reading mirrors it back to the full bit-identical matrix.
    expect_bit_equal(a, b);
    std::filesystem::remove(path);
  }
}

TEST(MatrixMarket, SymmetricWriteRejectsUnsymmetricMatrix) {
  const CsrMatrix a = random_matrix(20, 20, 99, /*symmetric=*/false);
  ASSERT_GT(a.symmetry_defect(), 0.0);
  EXPECT_THROW(
      la::mm::write_matrix(temp_path("bad_sym.mtx"), a,
                           la::mm::Symmetry::kSymmetric),
      ContractError);
}

TEST(MatrixMarket, VectorRoundTripIsBitExact) {
  Rng rng(21);
  std::vector<double> v(137);
  for (double& x : v) {
    x = rng.uniform(-1.0, 1.0) * std::pow(10.0, rng.uniform(-100.0, 100.0));
  }
  v[0] = 0.0;
  v[1] = 1.0 / 3.0;
  const std::string path = temp_path("vector.mtx");
  la::mm::write_vector(path, v);
  const std::vector<double> w = la::mm::read_vector(path);
  ASSERT_EQ(v.size(), w.size());
  for (std::size_t i = 0; i < v.size(); ++i) ASSERT_EQ(v[i], w[i]) << i;
  std::filesystem::remove(path);
}

TEST(MatrixMarket, CommentsAndCrlfAreTolerated) {
  const std::string path = temp_path("comments.mtx");
  write_file(path,
             "%%MatrixMarket matrix coordinate real general\r\n"
             "% a comment\r\n"
             "\r\n"
             "2 2 3\r\n"
             "1 1 1.5\r\n"
             "% mid-stream comment\r\n"
             "2 2 -2.5e-3\r\n"
             "2 1 4\r\n");
  const CsrMatrix a = la::mm::read_matrix(path);
  EXPECT_EQ(a.rows(), 2);
  EXPECT_EQ(a.nnz(), 3);
  EXPECT_EQ(a.at(0, 0), 1.5);
  EXPECT_EQ(a.at(1, 1), -2.5e-3);
  EXPECT_EQ(a.at(1, 0), 4.0);
  std::filesystem::remove(path);
}

TEST(MatrixMarket, MalformedHeadersAreDiagnosed) {
  expect_read_error("", "banner");
  expect_read_error("%%MatrixMarket tensor coordinate real general\n1 1 0\n",
                    "tensor");
  expect_read_error("%%MatrixMarket matrix blob real general\n1 1 0\n",
                    "blob");
  expect_read_error(
      "%%MatrixMarket matrix coordinate complex general\n1 1 0\n", "complex");
  expect_read_error(
      "%%MatrixMarket matrix coordinate pattern general\n1 1 0\n", "pattern");
  expect_read_error(
      "%%MatrixMarket matrix coordinate real hermitian\n1 1 0\n", "hermitian");
  expect_read_error("%%MatrixMarket matrix coordinate real general\n",
                    "missing size line");
  expect_read_error("%%MatrixMarket matrix coordinate real general\n2 2\n",
                    "size line", 2);
  expect_read_error(
      "%%MatrixMarket matrix coordinate real general\n2 x 1\n1 1 1\n",
      "column count", 2);
  expect_read_error(
      "%%MatrixMarket matrix coordinate real symmetric\n2 3 1\n1 1 1\n",
      "square");
  // Oversized dimensions must be rejected, not wrapped through int32 casts.
  expect_read_error(
      "%%MatrixMarket matrix coordinate real general\n"
      "3000000000 3000000000 1\n1 1 1\n",
      "32-bit index limit", 2);
  // A hostile/corrupt entry count must be diagnosed, not trusted for
  // allocation (bad_alloc / length_error aborts).
  expect_read_error(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 900000000000000000\n1 1 1\n",
      "exceeds rows*cols", 2);
}

TEST(MatrixMarket, ExplicitPlusSignsParseLikeTheReferenceReader) {
  const std::string path = temp_path("plus.mtx");
  write_file(path,
             "%%MatrixMarket matrix coordinate real general\n+2 2 2\n"
             "+1 1 +1.5\n2 +2 +2e+1\n");
  const CsrMatrix a = la::mm::read_matrix(path);
  EXPECT_EQ(a.at(0, 0), 1.5);
  EXPECT_EQ(a.at(1, 1), 20.0);
  std::filesystem::remove(path);
  // A bare '+' is still rejected.
  expect_read_error(
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 +\n",
      "value", 3);
}

TEST(MatrixMarket, OutOfRangeIndicesNameTheLine) {
  expect_read_error(
      "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1\n3 1 1\n",
      "row index 3 out of range", 4);
  expect_read_error(
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 0 1\n",
      "column index 0 out of range", 3);
  expect_read_error(
      "%%MatrixMarket matrix coordinate real symmetric\n3 3 1\n1 2 5\n",
      "above the diagonal", 3);
}

TEST(MatrixMarket, TruncatedAndTrailingFilesAreDiagnosed) {
  expect_read_error(
      "%%MatrixMarket matrix coordinate real general\n3 3 4\n1 1 1\n2 2 2\n",
      "truncated");
  expect_read_error(
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1\n2 2 9\n",
      "trailing data", 4);
  expect_read_error(
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 abc\n",
      "value", 3);
  expect_read_error(
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n",
      "'i j value'", 3);
}

TEST(MatrixMarket, FormatFamilyMismatchesAreExplained) {
  const std::string array_file = temp_path("array.mtx");
  write_file(array_file,
             "%%MatrixMarket matrix array real general\n3 1\n1\n2\n3\n");
  EXPECT_THROW((void)la::mm::read_matrix(array_file), ContractError);
  const std::vector<double> v = la::mm::read_vector(array_file);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[2], 3.0);
  std::filesystem::remove(array_file);

  const std::string coord_file = temp_path("coord.mtx");
  write_file(coord_file,
             "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 1\n");
  EXPECT_THROW((void)la::mm::read_vector(coord_file), ContractError);
  std::filesystem::remove(coord_file);

  const std::string wide = temp_path("wide.mtx");
  write_file(wide, "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n");
  EXPECT_THROW((void)la::mm::read_vector(wide), ContractError);
  std::filesystem::remove(wide);

  EXPECT_THROW((void)la::mm::read_matrix(temp_path("does_not_exist.mtx")),
               ContractError);
}

TEST(MatrixMarket, DuplicateEntriesAreSummed) {
  const std::string path = temp_path("dups.mtx");
  write_file(path,
             "%%MatrixMarket matrix coordinate real general\n2 2 3\n"
             "1 1 1.25\n1 1 0.75\n2 2 1\n");
  const CsrMatrix a = la::mm::read_matrix(path);
  EXPECT_EQ(a.nnz(), 2);
  EXPECT_EQ(a.at(0, 0), 2.0);
  std::filesystem::remove(path);
}

}  // namespace
