// Equivalence suite for the factorized DSS inference engine
// (gnn/dss_kernels.hpp):
//   - fused Linear kernel vs the scalar reference across shapes and
//     thread counts (including the fused-ReLU variant),
//   - segmented aggregation vs serial scatter, required BITWISE equal at
//     any thread count (the receiver-CSR index preserves per-destination
//     accumulation order),
//   - factorized forward vs reference forward within 1e-4 relative on
//     random graphs across latent/hidden sizes, cached and cache-less
//     (which must agree bit-for-bit with each other),
//   - solver-level: PCG iteration counts for every ddm-gnn registry entry
//     unchanged (±1) between the fast and reference paths.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/solver_session.hpp"
#include "fem/poisson.hpp"
#include "gnn/dss_kernels.hpp"
#include "gnn/dss_model.hpp"
#include "gnn/graph.hpp"
#include "la/vector_ops.hpp"
#include "mesh/generator.hpp"
#include "nn/mlp.hpp"
#include "precond/registry.hpp"

namespace {

using namespace ddmgnn;
using la::CooBuilder;
using la::CsrMatrix;
using la::Index;
using mesh::Point2;

/// Restores the ambient thread count when a test overrides it.
struct ThreadGuard {
  ~ThreadGuard() { set_num_threads(0); }
};

/// Random connected-ish graph: n nodes at random coordinates, a symmetric
/// random pattern of ~`degree` neighbors per node plus a ring backbone, a
/// couple of Dirichlet nodes, diagonally dominant local operator.
gnn::GraphSample random_sample(Index n, std::uint64_t seed, int degree) {
  Rng rng(seed);
  std::vector<Point2> coords(n);
  for (auto& c : coords) c = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  std::vector<std::uint8_t> dirichlet(n, 0);
  dirichlet[0] = 1;
  if (n > 4) dirichlet[static_cast<Index>(n / 2)] = 1;

  CooBuilder pat(n, n);
  for (Index i = 0; i < n; ++i) {
    pat.add(i, (i + 1) % n, 1.0);
    pat.add((i + 1) % n, i, 1.0);
    for (int k = 0; k < degree; ++k) {
      const auto j = static_cast<Index>(rng.uniform(0, n - 1e-9));
      if (j == i) continue;
      pat.add(i, j, 1.0);
      pat.add(j, i, 1.0);
    }
  }
  const CsrMatrix pattern = std::move(pat).build();

  CooBuilder coo(n, n);
  for (Index i = 0; i < n; ++i) {
    if (dirichlet[i]) {
      coo.add(i, i, 1.0);
      continue;
    }
    double row_sum = 0.0;
    const auto rp = pattern.row_ptr();
    const auto ci = pattern.col_idx();
    for (la::Offset e = rp[i]; e < rp[i + 1]; ++e) {
      const Index j = ci[e];
      if (j == i || dirichlet[j]) continue;
      coo.add(i, j, -1.0);
      row_sum += 1.0;
    }
    coo.add(i, i, row_sum + 1.0);
  }

  gnn::GraphSample s;
  s.topo =
      gnn::build_topology(std::move(coo).build(), coords, dirichlet, &pattern);
  s.rhs.resize(n);
  for (double& v : s.rhs) v = rng.uniform(-1, 1);
  const double norm = la::norm2(s.rhs);
  for (double& v : s.rhs) v /= norm;
  return s;
}

TEST(FusedLinear, MatchesReferenceAcrossShapesAndThreadCounts) {
  ThreadGuard guard;
  Rng rng(5);
  for (const auto [in, out, rows] :
       {std::array<int, 3>{23, 10, 17}, {3, 16, 100}, {33, 7, 5000},
        {10, 10, 9001}}) {
    nn::ParameterStore ps;
    nn::Linear lin(ps, in, out);
    ps.finalize();
    lin.init_xavier(ps.values(), rng);
    nn::Tensor x(rows, in);
    for (auto& v : x.d) v = static_cast<float>(rng.uniform(-2, 2));

    nn::Tensor y_ref, y_fused, y_relu, y_fused4;
    lin.forward(ps.data(), x, y_ref);
    lin.forward_fused(ps.data(), x, y_fused, /*relu=*/false);
    ASSERT_EQ(y_fused.rows, y_ref.rows);
    ASSERT_EQ(y_fused.cols, y_ref.cols);
    for (std::size_t i = 0; i < y_ref.size(); ++i) {
      EXPECT_NEAR(y_fused.d[i], y_ref.d[i],
                  1e-5f * (1.0f + std::abs(y_ref.d[i])))
          << "in=" << in << " out=" << out << " i=" << i;
    }
    // Fused ReLU == max(0, reference) under the same tolerance.
    lin.forward_fused(ps.data(), x, y_relu, /*relu=*/true);
    for (std::size_t i = 0; i < y_ref.size(); ++i) {
      const float r = y_ref.d[i] > 0.0f ? y_ref.d[i] : 0.0f;
      EXPECT_NEAR(y_relu.d[i], r, 1e-5f * (1.0f + std::abs(r)));
    }
    // Row-parallel execution is bitwise identical to single-threaded.
    set_num_threads(4);
    lin.forward_fused(ps.data(), x, y_fused4, /*relu=*/false);
    set_num_threads(1);
    nn::Tensor y_fused1;
    lin.forward_fused(ps.data(), x, y_fused1, /*relu=*/false);
    set_num_threads(0);
    ASSERT_EQ(y_fused4.size(), y_fused1.size());
    EXPECT_EQ(std::memcmp(y_fused4.d.data(), y_fused1.d.data(),
                          y_fused1.size() * sizeof(float)),
              0);
  }
}

TEST(Aggregation, SegmentedBitwiseEqualsSerialScatterAtAnyThreadCount) {
  ThreadGuard guard;
  for (const Index n : {13, 257, 3000}) {
    const auto s = random_sample(n, 100 + n, 3);
    const auto& topo = *s.topo;
    Rng rng(7);
    nn::Tensor m(topo.num_edges(), 6);
    for (auto& v : m.d) v = static_cast<float>(rng.uniform(-1, 1));

    nn::Tensor ref, seg1, seg4;
    gnn::aggregate_scatter(topo, m, n, ref);
    set_num_threads(1);
    gnn::aggregate_segmented(topo, m, seg1);
    set_num_threads(4);
    gnn::aggregate_segmented(topo, m, seg4);
    set_num_threads(0);

    ASSERT_EQ(seg1.size(), ref.size());
    ASSERT_EQ(seg4.size(), ref.size());
    EXPECT_EQ(std::memcmp(seg1.d.data(), ref.d.data(),
                          ref.size() * sizeof(float)),
              0)
        << "n=" << n;
    EXPECT_EQ(std::memcmp(seg4.d.data(), ref.d.data(),
                          ref.size() * sizeof(float)),
              0)
        << "n=" << n;
  }
}

TEST(ReceiverCsr, IsAStablePermutationOfTheEdgeList) {
  const auto s = random_sample(120, 9, 4);
  const auto& topo = *s.topo;
  ASSERT_EQ(topo.recv_ptr.size(), static_cast<std::size_t>(topo.n) + 1);
  ASSERT_EQ(topo.recv_order.size(), static_cast<std::size_t>(topo.num_edges()));
  std::vector<int> seen(topo.num_edges(), 0);
  for (Index j = 0; j < topo.n; ++j) {
    Index prev = -1;
    for (la::Offset idx = topo.recv_ptr[j]; idx < topo.recv_ptr[j + 1];
         ++idx) {
      const Index e = topo.recv_order[idx];
      EXPECT_EQ(topo.recv[e], j);
      EXPECT_GT(e, prev) << "segment order must be increasing edge order";
      prev = e;
      ++seen[e];
    }
  }
  for (Index e = 0; e < topo.num_edges(); ++e) EXPECT_EQ(seen[e], 1) << e;
}

TEST(FastForward, MatchesReferenceWithinToleranceAcrossSizes) {
  struct Shape {
    int latent, hidden;
  };
  for (const Shape shape : {Shape{4, 4}, {6, 8}, {10, 10}, {3, 16}}) {
    for (const Index n : {12, 90, 400}) {
      const auto s = random_sample(n, 31 * n + shape.latent, 3);
      gnn::DssConfig cfg;
      cfg.iterations = 3;
      cfg.latent = shape.latent;
      cfg.hidden = shape.hidden;
      gnn::DssModel model(cfg, 1234);
      gnn::DssWorkspace ws;

      std::vector<float> ref, fast_nocache, fast_cached;
      model.set_fast_inference(false);
      model.forward(s, ws, ref);
      model.set_fast_inference(true);
      model.forward(s, ws, fast_nocache);
      const gnn::DssEdgeCache cache = model.precompute_edges(*s.topo);
      model.forward(s, &cache, ws, fast_cached);

      ASSERT_EQ(ref.size(), static_cast<std::size_t>(n));
      ASSERT_EQ(fast_nocache.size(), ref.size());
      ASSERT_EQ(fast_cached.size(), ref.size());
      float max_abs = 0.0f;
      for (const float v : ref) max_abs = std::max(max_abs, std::abs(v));
      for (std::size_t i = 0; i < ref.size(); ++i) {
        EXPECT_NEAR(fast_nocache[i], ref[i], 1e-4f * (1.0f + max_abs))
            << "d=" << shape.latent << " h=" << shape.hidden << " n=" << n
            << " i=" << i;
        // The cache holds exactly what the cache-less path recomputes —
        // identical arithmetic, identical bits.
        EXPECT_EQ(fast_cached[i], fast_nocache[i])
            << "d=" << shape.latent << " h=" << shape.hidden << " i=" << i;
      }
    }
  }
}

TEST(FastForward, ProfileAccumulatesIntoAllPhases) {
  const auto s = random_sample(300, 77, 3);
  gnn::DssConfig cfg;
  cfg.iterations = 4;
  cfg.latent = 8;
  cfg.hidden = 8;
  // The three-step path fills all five phases; the fused layer2+aggregate
  // kernel folds gather + layer-2 GEMM into the aggregate slot.
  cfg.fused_aggregate = false;
  gnn::DssModel model(cfg, 5);
  gnn::DssWorkspace ws;
  std::vector<float> out;
  gnn::DssPhaseProfile prof;
  for (int r = 0; r < 3; ++r) model.forward(s, nullptr, ws, out, &prof);
  EXPECT_GT(prof.projection, 0.0);
  EXPECT_GT(prof.gather, 0.0);
  EXPECT_GT(prof.aggregate, 0.0);
  EXPECT_GT(prof.update, 0.0);
  EXPECT_GT(prof.decode, 0.0);
  EXPECT_GT(prof.total(), 0.0);

  model.set_fused_aggregate(true);
  gnn::DssPhaseProfile fused;
  for (int r = 0; r < 3; ++r) model.forward(s, nullptr, ws, out, &fused);
  EXPECT_GT(fused.aggregate, 0.0);
  EXPECT_EQ(fused.gather, 0.0);
}

TEST(FastForward, SolverIterationCountsMatchReferenceForAllGnnEntries) {
  mesh::Mesh m = mesh::generate_mesh_target_nodes(mesh::random_domain(7), 900,
                                                  7);
  const auto q = fem::sample_quadratic_data(7);
  auto prob = fem::assemble_poisson(
      m, [&](const Point2& p) { return q.f(p); },
      [&](const Point2& p) { return q.g(p); });

  gnn::DssConfig mc;
  mc.iterations = 2;
  mc.latent = 4;
  mc.hidden = 4;

  int covered = 0;
  for (const std::string& name : precond::preconditioner_names()) {
    if (name.rfind("ddm-gnn", 0) != 0) continue;
    ++covered;

    auto run = [&](bool fast) {
      gnn::DssModel model(mc, 7);  // same seed ⇒ identical weights
      model.set_fast_inference(fast);
      core::HybridConfig cfg;
      cfg.preconditioner = name;
      cfg.subdomain_target_nodes = 250;
      cfg.rel_tol = 1e-8;
      cfg.max_iterations = 60;  // untrained model: bound the run, compare
                                // trajectories rather than convergence
      cfg.model = &model;
      cfg.seed = 11;
      core::SolverSession session;
      session.setup(m, prob, cfg);
      std::vector<double> x(prob.b.size(), 0.0);
      return session.solve(prob.b, x);
    };

    const auto res_ref = run(/*fast=*/false);
    const auto res_fast = run(/*fast=*/true);
    EXPECT_NEAR(res_fast.iterations, res_ref.iterations, 1) << name;
  }
  EXPECT_GE(covered, 2);  // ddm-gnn and ddm-gnn-1level at minimum
}

}  // namespace
