// Neural-network kernel tests: forward semantics, finite-difference gradient
// checks of Linear/MLP backward, Adam convergence, clipping, scheduler.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "nn/adam.hpp"
#include "nn/mlp.hpp"
#include "nn/param_store.hpp"
#include "nn/tensor.hpp"

namespace {

using namespace ddmgnn;
using nn::Tensor;

TEST(ParamStore, AllocatesDisjointSlots) {
  nn::ParameterStore ps;
  const auto a = ps.allocate(3, 4);
  const auto b = ps.allocate(2, 2);
  EXPECT_EQ(a.offset, 0u);
  EXPECT_EQ(a.size(), 12u);
  EXPECT_EQ(b.offset, 12u);
  ps.finalize();
  EXPECT_EQ(ps.size(), 16u);
  EXPECT_EQ(ps.values().size(), 16u);
}

TEST(Linear, ForwardMatchesManualComputation) {
  nn::ParameterStore ps;
  nn::Linear lin(ps, 2, 3);
  ps.finalize();
  auto p = ps.values();
  // W = [[1,2],[3,4],[5,6]], b = [0.5, -0.5, 1].
  const float w[6] = {1, 2, 3, 4, 5, 6};
  for (int i = 0; i < 6; ++i) p[i] = w[i];
  p[6] = 0.5f;
  p[7] = -0.5f;
  p[8] = 1.0f;
  Tensor x(1, 2);
  x.at(0, 0) = 1.0f;
  x.at(0, 1) = -1.0f;
  Tensor y;
  lin.forward(ps.data(), x, y);
  EXPECT_FLOAT_EQ(y.at(0, 0), 1 - 2 + 0.5f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 3 - 4 - 0.5f);
  EXPECT_FLOAT_EQ(y.at(0, 2), 5 - 6 + 1.0f);
}

/// Scalar loss L = Σ y_ij · t_ij with fixed targets lets us gradient-check
/// through dL/dy = t.
double mlp_loss(const nn::Mlp& mlp, const float* params, const Tensor& x,
                const Tensor& t) {
  nn::Mlp::Cache cache;
  Tensor y;
  mlp.forward(params, x, y, cache);
  double acc = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) acc += y.d[i] * t.d[i];
  return acc;
}

TEST(Mlp, GradientMatchesFiniteDifferences) {
  nn::ParameterStore ps;
  nn::Mlp mlp(ps, 5, 7, 3);
  ps.finalize();
  Rng rng(3);
  mlp.init(ps.values(), rng);
  Tensor x(4, 5), t(4, 3);
  for (auto& v : x.d) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : t.d) v = static_cast<float>(rng.uniform(-1, 1));

  // Analytic gradients.
  std::vector<float> grads(ps.size(), 0.0f);
  {
    nn::Mlp::Cache cache;
    Tensor y;
    mlp.forward(ps.data(), x, y, cache);
    Tensor dx;
    mlp.backward(ps.data(), x, cache, t, &dx, grads.data());
    // Also check input gradients below via FD on x.
    const double eps = 1e-3;
    for (int trial = 0; trial < 10; ++trial) {
      const auto idx = rng.uniform_index(x.size());
      const float saved = x.d[idx];
      x.d[idx] = saved + static_cast<float>(eps);
      const double lp = mlp_loss(mlp, ps.data(), x, t);
      x.d[idx] = saved - static_cast<float>(eps);
      const double lm = mlp_loss(mlp, ps.data(), x, t);
      x.d[idx] = saved;
      const double fd = (lp - lm) / (2 * eps);
      EXPECT_NEAR(dx.d[idx], fd, 5e-3 + 0.02 * std::abs(fd)) << "input grad";
    }
  }
  // FD on parameters.
  const double eps = 1e-3;
  auto p = ps.values();
  for (int trial = 0; trial < 40; ++trial) {
    const auto idx = rng.uniform_index(ps.size());
    const float saved = p[idx];
    p[idx] = saved + static_cast<float>(eps);
    const double lp = mlp_loss(mlp, ps.data(), x, t);
    p[idx] = saved - static_cast<float>(eps);
    const double lm = mlp_loss(mlp, ps.data(), x, t);
    p[idx] = saved;
    const double fd = (lp - lm) / (2 * eps);
    EXPECT_NEAR(grads[idx], fd, 5e-3 + 0.02 * std::abs(fd)) << "param " << idx;
  }
}

TEST(Mlp, ReluBlocksNegativePreactivationGradients) {
  nn::ParameterStore ps;
  nn::Mlp mlp(ps, 1, 1, 1);
  ps.finalize();
  auto p = ps.values();
  // l1: w=1, b=-5 -> pre-activation always negative for x in [-1, 1].
  p[0] = 1.0f;   // l1.w
  p[1] = -5.0f;  // l1.b
  p[2] = 2.0f;   // l2.w
  p[3] = 0.0f;   // l2.b
  Tensor x(1, 1), dy(1, 1);
  x.at(0, 0) = 0.5f;
  dy.at(0, 0) = 1.0f;
  nn::Mlp::Cache c;
  Tensor y;
  mlp.forward(ps.data(), x, y, c);
  EXPECT_FLOAT_EQ(y.at(0, 0), 0.0f);  // ReLU clamped
  std::vector<float> grads(ps.size(), 0.0f);
  Tensor dx;
  mlp.backward(ps.data(), x, c, dy, &dx, grads.data());
  EXPECT_FLOAT_EQ(grads[0], 0.0f);  // no gradient through dead ReLU to l1.w
  EXPECT_FLOAT_EQ(dx.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(grads[3], 1.0f);  // l2 bias still learns
}

TEST(Adam, MinimizesQuadratic) {
  // min_w (w - 3)² from w = 0.
  std::vector<float> w{0.0f};
  nn::Adam adam(1, 0.1);
  for (int i = 0; i < 500; ++i) {
    const float g = 2.0f * (w[0] - 3.0f);
    std::vector<float> grad{g};
    adam.step(w, grad);
  }
  EXPECT_NEAR(w[0], 3.0f, 1e-2);
}

TEST(Adam, ClipGlobalNorm) {
  std::vector<float> g{3.0f, 4.0f};  // norm 5
  const double norm = nn::clip_global_norm(g, 1.0);
  EXPECT_NEAR(norm, 5.0, 1e-6);
  EXPECT_NEAR(g[0], 0.6f, 1e-6);
  EXPECT_NEAR(g[1], 0.8f, 1e-6);
  std::vector<float> small{0.1f, 0.0f};
  nn::clip_global_norm(small, 1.0);
  EXPECT_FLOAT_EQ(small[0], 0.1f);  // below the cap: untouched
}

TEST(Scheduler, ReducesAfterPatienceExhausted) {
  nn::Adam adam(1, 1e-2);
  nn::ReduceLrOnPlateau sched(0.1, 2, 1e-4, 1e-8);
  EXPECT_FALSE(sched.observe(1.0, adam));   // establishes best
  EXPECT_FALSE(sched.observe(0.5, adam));   // improvement
  EXPECT_FALSE(sched.observe(0.51, adam));  // bad 1
  EXPECT_FALSE(sched.observe(0.52, adam));  // bad 2
  EXPECT_TRUE(sched.observe(0.53, adam));   // bad 3 > patience -> reduce
  EXPECT_NEAR(adam.learning_rate(), 1e-3, 1e-12);
}

TEST(Xavier, InitializationWithinBound) {
  nn::ParameterStore ps;
  nn::Linear lin(ps, 30, 20);
  ps.finalize();
  Rng rng(9);
  lin.init_xavier(ps.values(), rng);
  const double bound = std::sqrt(6.0 / 50.0);
  double mean = 0.0;
  const auto vals = ps.values();
  for (std::size_t i = 0; i < 600; ++i) {  // weight block
    EXPECT_LE(std::abs(vals[i]), bound);
    mean += vals[i];
  }
  EXPECT_LT(std::abs(mean / 600.0), 0.05);
  for (std::size_t i = 600; i < ps.size(); ++i) {
    EXPECT_FLOAT_EQ(vals[i], 0.0f);  // biases zero
  }
}

}  // namespace
