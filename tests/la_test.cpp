// Unit + property tests for the linear-algebra substrate: CSR assembly and
// algebra, dense factorizations, RCM, skyline Cholesky, IC(0).
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/rng.hpp"
#include "la/csr.hpp"
#include "la/dense.hpp"
#include "la/ic0.hpp"
#include "la/rcm.hpp"
#include "la/skyline_cholesky.hpp"
#include "la/spgemm.hpp"
#include "la/vector_ops.hpp"

namespace {

using namespace ddmgnn;
using la::CooBuilder;
using la::CsrMatrix;
using la::Index;

/// Random sparse SPD matrix: diagonally dominant with symmetric off-diagonals
/// on a ring-plus-random pattern.
CsrMatrix random_spd(Index n, double density, std::uint64_t seed) {
  Rng rng(seed);
  CooBuilder coo(n, n);
  std::vector<double> diag(n, 1.0);
  auto add_sym = [&](Index i, Index j, double v) {
    coo.add(i, j, v);
    coo.add(j, i, v);
    diag[i] += std::abs(v);
    diag[j] += std::abs(v);
  };
  for (Index i = 0; i + 1 < n; ++i) add_sym(i, i + 1, -rng.uniform(0.1, 1.0));
  const auto extra = static_cast<Index>(density * n);
  for (Index e = 0; e < extra; ++e) {
    const auto i = static_cast<Index>(rng.uniform_index(n));
    const auto j = static_cast<Index>(rng.uniform_index(n));
    if (i == j) continue;
    add_sym(i, j, -rng.uniform(0.05, 0.5));
  }
  for (Index i = 0; i < n; ++i) coo.add(i, i, diag[i]);
  return std::move(coo).build();
}

std::vector<double> random_vector(Index n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

TEST(VectorOps, DotAxpyNormBasics) {
  std::vector<double> x{1.0, 2.0, 3.0};
  std::vector<double> y{4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(la::dot(x, y), 4.0 - 10.0 + 18.0);
  EXPECT_DOUBLE_EQ(la::norm2(x), std::sqrt(14.0));
  la::axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
  EXPECT_DOUBLE_EQ(y[2], 12.0);
  la::xpay(x, 0.5, y);  // y = x + 0.5 y
  EXPECT_DOUBLE_EQ(y[0], 4.0);
}

TEST(VectorOps, ParallelMatchesSerialOnLargeVectors) {
  const Index n = 100000;
  auto x = random_vector(n, 1);
  auto y = random_vector(n, 2);
  double serial = 0.0;
  for (Index i = 0; i < n; ++i) serial += x[i] * y[i];
  EXPECT_NEAR(la::dot(x, y), serial, 1e-9 * std::abs(serial) + 1e-12);
}

TEST(Csr, BuilderMergesDuplicatesAndSortsColumns) {
  CooBuilder coo(3, 3);
  coo.add(0, 2, 1.0);
  coo.add(0, 0, 2.0);
  coo.add(0, 2, 3.0);  // duplicate -> 4.0
  coo.add(2, 1, 5.0);
  const CsrMatrix a = std::move(coo).build();
  EXPECT_EQ(a.nnz(), 3);
  EXPECT_DOUBLE_EQ(a.at(0, 2), 4.0);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(a.at(2, 1), 5.0);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 0.0);
  // Columns sorted within row 0.
  EXPECT_EQ(a.col_idx()[0], 0);
  EXPECT_EQ(a.col_idx()[1], 2);
}

TEST(Csr, MultiplyMatchesDense) {
  const CsrMatrix a = random_spd(50, 3.0, 42);
  const auto d = la::DenseMatrix::from_csr(a);
  const auto x = random_vector(50, 3);
  std::vector<double> y1(50), y2(50);
  a.multiply(x, y1);
  d.multiply(x, y2);
  for (Index i = 0; i < 50; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-12);
}

TEST(Csr, TransposeIsInvolution) {
  const CsrMatrix a = random_spd(40, 2.0, 7);
  const CsrMatrix att = a.transpose().transpose();
  ASSERT_EQ(att.nnz(), a.nnz());
  const auto x = random_vector(40, 4);
  std::vector<double> y1(40), y2(40);
  a.multiply(x, y1);
  att.multiply(x, y2);
  for (Index i = 0; i < 40; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-13);
}

TEST(Csr, TransposeMultiplyMatchesMultiplyTranspose) {
  const CsrMatrix a = random_spd(30, 2.0, 9);
  const auto x = random_vector(30, 5);
  std::vector<double> y1(30), y2(30);
  a.multiply_transpose(x, y1);
  a.transpose().multiply(x, y2);
  for (Index i = 0; i < 30; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-13);
}

TEST(Csr, PrincipalSubmatrixExtractsBlock) {
  const CsrMatrix a = random_spd(20, 2.0, 11);
  const std::vector<Index> keep{3, 5, 11, 17};
  const CsrMatrix s = a.principal_submatrix(keep);
  ASSERT_EQ(s.rows(), 4);
  for (Index i = 0; i < 4; ++i) {
    for (Index j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(s.at(i, j), a.at(keep[i], keep[j]));
    }
  }
}

TEST(Csr, SymmetryDefectZeroForSymmetric) {
  const CsrMatrix a = random_spd(64, 2.5, 13);
  EXPECT_EQ(a.symmetry_defect(), 0.0);
}

TEST(Dense, LuSolvesRandomSystems) {
  Rng rng(21);
  const Index n = 24;
  la::DenseMatrix a(n, n);
  for (Index i = 0; i < n; ++i)
    for (Index j = 0; j < n; ++j) a(i, j) = rng.uniform(-1.0, 1.0);
  for (Index i = 0; i < n; ++i) a(i, i) += n;  // well-conditioned
  const auto x_ref = random_vector(n, 22);
  std::vector<double> b(n);
  a.multiply(x_ref, b);
  const la::DenseLu lu(a);
  const auto x = lu.solve(b);
  for (Index i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_ref[i], 1e-10);
}

TEST(Dense, LuRejectsSingular) {
  la::DenseMatrix a(2, 2, 0.0);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;  // rank 1
  EXPECT_THROW(la::DenseLu{a}, ContractError);
}

TEST(Dense, CholeskySolvesSpd) {
  const CsrMatrix a = random_spd(32, 2.0, 31);
  const auto x_ref = random_vector(32, 32);
  const auto b = a.apply(x_ref);
  const la::DenseCholesky chol(la::DenseMatrix::from_csr(a));
  const auto x = chol.solve(b);
  for (Index i = 0; i < 32; ++i) EXPECT_NEAR(x[i], x_ref[i], 1e-9);
}

TEST(Dense, CholeskyRejectsIndefinite) {
  la::DenseMatrix a(2, 2, 0.0);
  a(0, 0) = 1.0;
  a(1, 1) = -1.0;
  EXPECT_THROW(la::DenseCholesky{a}, ContractError);
}

TEST(Rcm, ReducesBandwidthOnShuffledBandMatrix) {
  // Band matrix under a random permutation: RCM should recover a small band.
  const Index n = 200;
  Rng rng(5);
  std::vector<Index> shuffle(n);
  std::iota(shuffle.begin(), shuffle.end(), 0);
  for (Index i = n - 1; i > 0; --i) {
    std::swap(shuffle[i], shuffle[rng.uniform_index(i + 1)]);
  }
  CooBuilder coo(n, n);
  for (Index i = 0; i < n; ++i) {
    coo.add(shuffle[i], shuffle[i], 4.0);
    for (Index d = 1; d <= 2; ++d) {
      if (i + d < n) {
        coo.add(shuffle[i], shuffle[i + d], -1.0);
        coo.add(shuffle[i + d], shuffle[i], -1.0);
      }
    }
  }
  const CsrMatrix a = std::move(coo).build();
  const auto perm = la::reverse_cuthill_mckee(a);
  const Index bw_before = la::bandwidth(a, {});
  const Index bw_after = la::bandwidth(a, perm);
  EXPECT_LE(bw_after, 8);
  EXPECT_LT(bw_after, bw_before);
  // perm is a permutation.
  std::vector<char> seen(n, 0);
  for (const Index p : perm) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, n);
    ASSERT_FALSE(seen[p]);
    seen[p] = 1;
  }
}

class SkylineParam : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SkylineParam, SolvesSpdSystems) {
  const auto [n, seed] = GetParam();
  const CsrMatrix a = random_spd(n, 2.5, seed);
  const auto x_ref = random_vector(n, seed + 1000);
  const auto b = a.apply(x_ref);
  for (const bool use_rcm : {false, true}) {
    const la::SkylineCholesky f(a, use_rcm);
    const auto x = f.solve(b);
    double err = 0.0;
    for (Index i = 0; i < n; ++i) err = std::max(err, std::abs(x[i] - x_ref[i]));
    EXPECT_LT(err, 1e-8) << "n=" << n << " rcm=" << use_rcm;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, SkylineParam,
    ::testing::Values(std::tuple{5, 1}, std::tuple{17, 2}, std::tuple{64, 3},
                      std::tuple{128, 4}, std::tuple{257, 5},
                      std::tuple{512, 6}));

TEST(Skyline, RejectsIndefinite) {
  CooBuilder coo(3, 3);
  coo.add(0, 0, 1.0);
  coo.add(1, 1, -2.0);
  coo.add(2, 2, 1.0);
  const CsrMatrix a = std::move(coo).build();
  EXPECT_THROW(la::SkylineCholesky(a, false), ContractError);
}

TEST(Skyline, RcmEnvelopeSmallerOnShuffledBand) {
  const Index n = 300;
  Rng rng(8);
  std::vector<Index> shuffle(n);
  std::iota(shuffle.begin(), shuffle.end(), 0);
  for (Index i = n - 1; i > 0; --i)
    std::swap(shuffle[i], shuffle[rng.uniform_index(i + 1)]);
  CooBuilder coo(n, n);
  for (Index i = 0; i < n; ++i) {
    coo.add(shuffle[i], shuffle[i], 4.0);
    if (i + 1 < n) {
      coo.add(shuffle[i], shuffle[i + 1], -1.0);
      coo.add(shuffle[i + 1], shuffle[i], -1.0);
    }
  }
  const CsrMatrix a = std::move(coo).build();
  const la::SkylineCholesky with_rcm(a, true);
  const la::SkylineCholesky without(a, false);
  EXPECT_LT(with_rcm.envelope_size() * 5, without.envelope_size());
}

TEST(Ic0, ApplyIsSpdAndImprovesConditioning) {
  const CsrMatrix a = random_spd(100, 3.0, 77);
  const la::IncompleteCholesky0 ic(a);
  EXPECT_EQ(ic.shift(), 0.0);  // diagonally dominant: no shift needed
  // M⁻¹ should be symmetric: <M⁻¹x, y> == <x, M⁻¹y>.
  const auto x = random_vector(100, 78);
  const auto y = random_vector(100, 79);
  const auto mx = ic.apply(x);
  const auto my = ic.apply(y);
  EXPECT_NEAR(la::dot(mx, y), la::dot(x, my), 1e-10);
  // And positive: <M⁻¹x, x> > 0.
  EXPECT_GT(la::dot(mx, x), 0.0);
}

TEST(Ic0, ExactOnMatrixWhoseFactorHasNoFill) {
  // Tridiagonal SPD: IC(0) == full Cholesky -> apply is an exact solve.
  const Index n = 50;
  CooBuilder coo(n, n);
  for (Index i = 0; i < n; ++i) {
    coo.add(i, i, 2.5);
    if (i + 1 < n) {
      coo.add(i, i + 1, -1.0);
      coo.add(i + 1, i, -1.0);
    }
  }
  const CsrMatrix a = std::move(coo).build();
  const auto x_ref = random_vector(n, 80);
  const auto b = a.apply(x_ref);
  const la::IncompleteCholesky0 ic(a);
  const auto x = ic.apply(b);
  for (Index i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_ref[i], 1e-9);
}

/// Random sparse rectangular matrix: ~`per_row` entries per row plus a
/// diagonal-ish band so no row is empty.
CsrMatrix random_sparse(Index rows, Index cols, Index per_row,
                        std::uint64_t seed) {
  Rng rng(seed);
  CooBuilder coo(rows, cols);
  for (Index i = 0; i < rows; ++i) {
    coo.add(i, i % cols, rng.uniform(-1, 1));
    for (Index e = 0; e < per_row; ++e) {
      coo.add(i, static_cast<Index>(rng.uniform_index(cols)),
              rng.uniform(-1, 1));
    }
  }
  return std::move(coo).build();
}

TEST(Spgemm, MatchesDenseReference) {
  const CsrMatrix a = random_sparse(40, 25, 4, 301);
  const CsrMatrix b = random_sparse(25, 33, 3, 302);
  const CsrMatrix c = la::spgemm(a, b);
  EXPECT_EQ(c.rows(), 40);
  EXPECT_EQ(c.cols(), 33);
  const auto ref =
      la::DenseMatrix::from_csr(a).matmul(la::DenseMatrix::from_csr(b));
  for (Index i = 0; i < c.rows(); ++i) {
    for (Index j = 0; j < c.cols(); ++j) {
      EXPECT_NEAR(c.at(i, j), ref(i, j), 1e-12) << i << "," << j;
    }
  }
  // Column indices sorted within each row (the CSR invariant downstream
  // kernels assume).
  const auto rp = c.row_ptr();
  const auto ci = c.col_idx();
  for (Index i = 0; i < c.rows(); ++i) {
    for (la::Offset k = rp[i] + 1; k < rp[i + 1]; ++k) {
      EXPECT_LT(ci[k - 1], ci[k]);
    }
  }
}

TEST(Spgemm, GalerkinProductMatchesDenseTripleProduct) {
  const CsrMatrix a = random_spd(60, 3.0, 303);
  const CsrMatrix p = random_sparse(60, 12, 2, 304);
  const CsrMatrix ac = la::galerkin_product(a, p);
  EXPECT_EQ(ac.rows(), 12);
  EXPECT_EQ(ac.cols(), 12);
  const auto pd = la::DenseMatrix::from_csr(p);
  const auto ref =
      pd.transposed().matmul(la::DenseMatrix::from_csr(a)).matmul(pd);
  for (Index i = 0; i < 12; ++i) {
    for (Index j = 0; j < 12; ++j) {
      EXPECT_NEAR(ac.at(i, j), ref(i, j), 1e-12) << i << "," << j;
    }
  }
  // Galerkin of a symmetric A is symmetric to rounding.
  EXPECT_LE(ac.symmetry_defect(), 1e-12);
}

TEST(Transpose, IsAnInvolutionAndPreservesSymmetricPattern) {
  const CsrMatrix a = random_sparse(30, 45, 4, 305);
  const CsrMatrix att = a.transpose().transpose();
  ASSERT_EQ(att.rows(), a.rows());
  ASSERT_EQ(att.cols(), a.cols());
  ASSERT_EQ(att.nnz(), a.nnz());
  EXPECT_TRUE(std::equal(a.row_ptr().begin(), a.row_ptr().end(),
                         att.row_ptr().begin()));
  EXPECT_TRUE(std::equal(a.col_idx().begin(), a.col_idx().end(),
                         att.col_idx().begin()));
  for (std::size_t k = 0; k < a.values().size(); ++k) {
    EXPECT_EQ(a.values()[k], att.values()[k]);  // bitwise: pure permutation
  }

  // On a symmetric matrix the transpose has the identical pattern.
  const CsrMatrix s = random_spd(50, 3.0, 306);
  const CsrMatrix st = s.transpose();
  ASSERT_EQ(st.nnz(), s.nnz());
  EXPECT_TRUE(std::equal(s.row_ptr().begin(), s.row_ptr().end(),
                         st.row_ptr().begin()));
  EXPECT_TRUE(std::equal(s.col_idx().begin(), s.col_idx().end(),
                         st.col_idx().begin()));
}

}  // namespace
