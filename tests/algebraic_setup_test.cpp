// Equivalence suite for the matrix-first setup path: for every registry
// entry that supports the algebraic path, setup(mesh, prob, cfg) and
// setup(prob.A, cfg, ...) must produce *identical* iteration counts and
// matching solutions (tol 1e-12) on the same Poisson operator.
//
// Why this is provable and not approximate: the mesh path derives the
// decomposition graph from the mesh adjacency and (for the GNN entries) edge
// features from mesh points; the algebraic path re-derives the graph from
// the operator's stored pattern. Assembling with keep_eliminated_pattern
// stores the couplings removed by Dirichlet elimination as structural zeros
// — numerically the same operator, but its pattern then *equals* the mesh
// adjacency, so the two paths build bit-identical decompositions,
// factorizations and DSS graphs. Entries that consult no graph at all
// (none/jacobi/ic0) are additionally checked on the standard
// pattern-dropping assembly.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/solver_session.hpp"
#include "fem/poisson.hpp"
#include "gnn/dss_model.hpp"
#include "gnn/spectral_coords.hpp"
#include "mesh/generator.hpp"
#include "partition/decomposition.hpp"
#include "precond/registry.hpp"

namespace {

using namespace ddmgnn;
using la::Index;
using mesh::Point2;

struct Problem {
  mesh::Mesh m;
  fem::PoissonProblem prob;
};

Problem make_problem(bool keep_pattern, std::uint64_t seed = 7,
                     Index nodes = 900) {
  mesh::Mesh m =
      mesh::generate_mesh_target_nodes(mesh::random_domain(seed), nodes, seed);
  const auto q = fem::sample_quadratic_data(seed);
  fem::AssembleOptions opts;
  opts.keep_eliminated_pattern = keep_pattern;
  auto prob = fem::assemble_poisson(
      m, [&](const Point2& p) { return q.f(p); },
      [&](const Point2& p) { return q.g(p); }, opts);
  return {std::move(m), std::move(prob)};
}

gnn::DssModel tiny_model() {
  gnn::DssConfig mc;
  mc.iterations = 2;
  mc.latent = 4;
  mc.hidden = 4;
  return gnn::DssModel(mc, 7);
}

core::HybridConfig base_config(const std::string& name,
                               const gnn::DssModel* model) {
  core::HybridConfig cfg;
  cfg.preconditioner = name;
  cfg.subdomain_target_nodes = 250;
  cfg.rel_tol = 1e-8;
  // The untrained tiny model gives poor (but deterministic) corrections;
  // equivalence is about identical trajectories, not convergence, so cap
  // the run well below the default.
  cfg.max_iterations = 60;
  cfg.model = model;
  cfg.seed = 11;
  return cfg;
}

void expect_equal_solves(const core::SolverSession& mesh_session,
                         const core::SolverSession& alg_session,
                         const fem::PoissonProblem& prob,
                         const std::string& name) {
  ASSERT_TRUE(mesh_session.ready()) << name;
  ASSERT_TRUE(alg_session.ready()) << name;
  EXPECT_EQ(mesh_session.num_subdomains(), alg_session.num_subdomains())
      << name;
  EXPECT_EQ(mesh_session.method(), alg_session.method()) << name;
  std::vector<double> x_mesh(prob.b.size(), 0.0), x_alg(prob.b.size(), 0.0);
  const auto r_mesh = mesh_session.solve(prob.b, x_mesh);
  const auto r_alg = alg_session.solve(prob.b, x_alg);
  EXPECT_EQ(r_mesh.iterations, r_alg.iterations) << name;
  EXPECT_EQ(r_mesh.converged, r_alg.converged) << name;
  double scale = 0.0;
  for (const double v : x_mesh) scale = std::max(scale, std::abs(v));
  for (std::size_t i = 0; i < x_mesh.size(); ++i) {
    ASSERT_NEAR(x_mesh[i], x_alg[i], 1e-12 * (1.0 + scale))
        << name << " at row " << i;
  }
}

// The pattern-keeping assembly reproduces the mesh adjacency in the matrix:
// precondition for the graph-dependent equivalences below, asserted on its
// own so a failure here explains failures there.
TEST(AlgebraicSetup, KeepPatternAssemblyReproducesMeshAdjacency) {
  auto [m, prob] = make_problem(/*keep_pattern=*/true);
  const auto g = partition::matrix_adjacency(prob.A);
  ASSERT_EQ(g.num_nodes(), m.num_nodes());
  const auto mesh_ptr = m.adj_ptr();
  const auto mesh_adj = m.adj();
  ASSERT_EQ(g.ptr.size(), mesh_ptr.size());
  for (std::size_t i = 0; i < g.ptr.size(); ++i) {
    ASSERT_EQ(g.ptr[i], mesh_ptr[i]) << i;
  }
  ASSERT_EQ(g.idx.size(), mesh_adj.size());
  for (std::size_t i = 0; i < g.idx.size(); ++i) {
    ASSERT_EQ(g.idx[i], mesh_adj[i]) << i;
  }
  // And the operator's action is numerically unchanged by the padding (up
  // to duplicate-merge summation order in the assembler).
  auto [m2, prob2] = make_problem(/*keep_pattern=*/false);
  std::vector<double> y1(prob.b.size()), y2(prob.b.size());
  prob.A.multiply(prob.b, y1);
  prob2.A.multiply(prob.b, y2);
  for (std::size_t i = 0; i < y1.size(); ++i) {
    EXPECT_NEAR(y1[i], y2[i], 1e-12 * (1.0 + std::abs(y1[i]))) << i;
  }
}

TEST(AlgebraicSetup, EveryAlgebraicCapableEntryMatchesMeshSetup) {
  auto [m, prob] = make_problem(/*keep_pattern=*/true);
  const gnn::DssModel model = tiny_model();
  int covered = 0;
  for (const std::string& name : precond::preconditioner_names()) {
    const auto& traits = precond::preconditioner_traits(name);
    if (!traits.supports_algebraic) continue;
    ++covered;
    const core::HybridConfig cfg =
        base_config(name, traits.needs_model ? &model : nullptr);

    core::SolverSession mesh_session;
    mesh_session.setup(m, prob, cfg);

    // The algebraic path gets only matrix-derivable data plus the known
    // extra structure (mask + coordinates for the geometry consumers) — no
    // mesh object anywhere.
    core::AlgebraicOptions opts;
    opts.dirichlet = prob.dirichlet;
    if (traits.needs_geometry) opts.coordinates = m.points();
    core::SolverSession alg_session;
    alg_session.setup(prob.A, cfg, opts);

    expect_equal_solves(mesh_session, alg_session, prob, name);
  }
  // All 7 built-ins support the algebraic path (>= keeps this robust to the
  // mesh-bound entry another TEST in this binary registers — the registry is
  // a process-wide singleton, so test order must not matter).
  EXPECT_GE(covered, 7);
}

// Graph-free entries must agree even on the standard assembly that drops
// eliminated couplings (their preconditioner depends only on A's values).
TEST(AlgebraicSetup, GraphFreeEntriesMatchOnStandardAssembly) {
  auto [m, prob] = make_problem(/*keep_pattern=*/false);
  for (const std::string& name : {"none", "jacobi", "ic0"}) {
    core::HybridConfig cfg = base_config(name, nullptr);
    cfg.max_iterations = 2000;
    core::SolverSession mesh_session;
    mesh_session.setup(m, prob, cfg);
    core::SolverSession alg_session;
    alg_session.setup(prob.A, cfg);  // not even the Dirichlet mask
    expect_equal_solves(mesh_session, alg_session, prob, name);
    EXPECT_EQ(alg_session.num_subdomains(), 0) << name;
  }
}

// Without coordinates the GNN entries fall back to synthetic spectral
// coordinates: no equivalence claim, but setup must succeed, the solver must
// run, and the preconditioned iteration must actually reduce the residual.
TEST(AlgebraicSetup, GnnSyntheticCoordinateFallbackRuns) {
  auto [m, prob] = make_problem(/*keep_pattern=*/true);
  const gnn::DssModel model = tiny_model();
  core::HybridConfig cfg = base_config("ddm-gnn", &model);
  core::SolverSession session;
  session.setup(prob.A, cfg);  // bare matrix: coords are synthesized
  ASSERT_TRUE(session.ready());
  EXPECT_GT(session.num_subdomains(), 1);
  std::vector<double> x(prob.b.size(), 0.0);
  const auto res = session.solve(prob.b, x);
  EXPECT_GT(res.iterations, 0);
  EXPECT_LT(res.final_relative_residual, 1.0);
}

TEST(AlgebraicSetup, SpectralCoordinatesAreDeterministicAndFinite) {
  auto [m, prob] = make_problem(/*keep_pattern=*/true);
  const auto g = partition::matrix_adjacency(prob.A);
  const auto c1 = gnn::spectral_coordinates(g.ptr, g.idx, 30, 5);
  const auto c2 = gnn::spectral_coordinates(g.ptr, g.idx, 30, 5);
  ASSERT_EQ(c1.size(), static_cast<std::size_t>(m.num_nodes()));
  double spread = 0.0;
  for (std::size_t i = 0; i < c1.size(); ++i) {
    ASSERT_TRUE(std::isfinite(c1[i].x) && std::isfinite(c1[i].y)) << i;
    EXPECT_EQ(c1[i].x, c2[i].x) << i;
    EXPECT_EQ(c1[i].y, c2[i].y) << i;
    spread = std::max(spread, std::abs(c1[i].x) + std::abs(c1[i].y));
  }
  EXPECT_GT(spread, 0.0);  // a non-degenerate layout, not all-zeros
}

// Mesh-bound registry entries (traits.supports_algebraic == false) must be
// rejected by the matrix-first path with an actionable ContractError.
TEST(AlgebraicSetup, MeshBoundEntryThrowsActionableError) {
  auto& reg = precond::PrecondRegistry::instance();
  const std::string name = "test-mesh-bound";
  if (!reg.contains(name)) {
    precond::PrecondTraits traits;
    traits.supports_algebraic = false;
    reg.add(name, traits, [](const precond::PrecondContext&) {
      return std::unique_ptr<precond::Preconditioner>(
          new precond::IdentityPreconditioner());
    });
  }
  auto [m, prob] = make_problem(/*keep_pattern=*/false);
  core::HybridConfig cfg;
  cfg.preconditioner = name;
  core::SolverSession session;
  try {
    session.setup(prob.A, cfg);
    FAIL() << "expected ContractError";
  } catch (const ContractError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(name), std::string::npos) << what;
    EXPECT_NE(what.find("setup(mesh, prob, cfg)"), std::string::npos) << what;
  }
  EXPECT_FALSE(session.ready());
  // The mesh path still accepts the same entry.
  session.setup(m, prob, cfg);
  EXPECT_TRUE(session.ready());
}

TEST(AlgebraicSetup, RejectsMalformedInputs) {
  auto [m, prob] = make_problem(/*keep_pattern=*/false);
  core::HybridConfig cfg;
  cfg.preconditioner = "jacobi";
  core::SolverSession session;
  // Unknown names still throw through the algebraic path.
  core::HybridConfig bad = cfg;
  bad.preconditioner = "ddm-quantum";
  EXPECT_THROW(session.setup(prob.A, bad), ContractError);
  EXPECT_FALSE(session.ready());
  // Mis-sized masks and coordinate arrays are rejected up front.
  std::vector<std::uint8_t> short_mask(3, 0);
  core::AlgebraicOptions opts;
  opts.dirichlet = short_mask;
  EXPECT_THROW(session.setup(prob.A, cfg, opts), ContractError);
  std::vector<Point2> short_coords(5);
  opts.dirichlet = {};
  opts.coordinates = short_coords;
  EXPECT_THROW(session.setup(prob.A, cfg, opts), ContractError);
  // Non-square operators cannot be set up.
  la::CooBuilder coo(4, 3);
  coo.add(0, 0, 1.0);
  const la::CsrMatrix rect = std::move(coo).build();
  EXPECT_THROW(session.setup(rect, cfg), ContractError);
}

}  // namespace
