// Partitioner + coarse-space tests: cover/balance/overlap invariants across
// random meshes (parameterized), restriction operator algebra, Nicolaides
// coarse operator correctness against a dense reference.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <set>

#include "common/rng.hpp"
#include "fem/poisson.hpp"
#include "la/dense.hpp"
#include "la/multivector.hpp"
#include "la/vector_ops.hpp"
#include "mesh/generator.hpp"
#include "partition/aggregate.hpp"
#include "partition/coarse_space.hpp"
#include "partition/decomposition.hpp"

namespace {

using namespace ddmgnn;
using la::Index;
using mesh::Point2;

struct Case {
  std::uint64_t seed;
  Index parts;
  int overlap;
};

class DecompParam : public ::testing::TestWithParam<Case> {};

TEST_P(DecompParam, Invariants) {
  const auto [seed, parts, overlap] = GetParam();
  const mesh::Mesh m = mesh::generate_mesh(mesh::random_domain(seed), 0.06, seed);
  const auto dec =
      partition::decompose(m.adj_ptr(), m.adj(), parts, overlap, seed);
  ASSERT_EQ(dec.num_parts, parts);
  ASSERT_EQ(dec.num_nodes(), m.num_nodes());

  // 1. Cores partition the nodes.
  std::vector<Index> core_size(parts, 0);
  for (const Index p : dec.owner) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, parts);
    ++core_size[p];
  }
  for (const Index s : core_size) EXPECT_GT(s, 0);

  // 2. Balance within a generous factor.
  EXPECT_LT(partition::balance_ratio(dec), 1.6);

  // 3. Subdomain i contains its core and is sorted/unique.
  for (Index p = 0; p < parts; ++p) {
    const auto& nodes = dec.subdomains[p];
    EXPECT_TRUE(std::is_sorted(nodes.begin(), nodes.end()));
    EXPECT_TRUE(std::adjacent_find(nodes.begin(), nodes.end()) == nodes.end());
    std::set<Index> in(nodes.begin(), nodes.end());
    for (Index v = 0; v < m.num_nodes(); ++v) {
      if (dec.owner[v] == p) EXPECT_TRUE(in.count(v));
    }
    // With overlap > 0, subdomain strictly exceeds core (unless whole mesh).
    if (overlap > 0 && parts > 1) {
      EXPECT_GT(static_cast<Index>(nodes.size()), core_size[p]);
    }
  }

  // 4. Multiplicity weights form a partition of unity:
  //    sum_i (R_iᵀ D_i R_i) 1 = 1.
  std::vector<double> ones(m.num_nodes(), 1.0);
  std::vector<double> accum(m.num_nodes(), 0.0);
  for (Index p = 0; p < parts; ++p) {
    for (const Index v : dec.subdomains[p]) {
      accum[v] += dec.inv_multiplicity[v];
    }
  }
  for (Index v = 0; v < m.num_nodes(); ++v) EXPECT_NEAR(accum[v], 1.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DecompParam,
    ::testing::Values(Case{1, 4, 2}, Case{2, 8, 2}, Case{3, 8, 4},
                      Case{4, 16, 1}, Case{5, 2, 0}, Case{6, 12, 3}));

TEST(Decomposition, OverlapMonotonicallyGrowsSubdomains) {
  const mesh::Mesh m = mesh::generate_mesh(mesh::random_domain(21), 0.06, 21);
  std::size_t prev = 0;
  for (const int ov : {0, 1, 2, 4}) {
    const auto dec = partition::decompose(m.adj_ptr(), m.adj(), 8, ov, 21);
    std::size_t total = 0;
    for (const auto& s : dec.subdomains) total += s.size();
    EXPECT_GE(total, prev);
    prev = total;
  }
}

TEST(Decomposition, TargetSizeChoosesK) {
  const mesh::Mesh m = mesh::generate_mesh(mesh::random_domain(22), 0.05, 22);
  const auto dec =
      partition::decompose_target_size(m.adj_ptr(), m.adj(), 500, 2, 22);
  const double target_k = static_cast<double>(m.num_nodes()) / 500.0;
  EXPECT_NEAR(dec.num_parts, target_k, 1.0);
}

TEST(Decomposition, RestrictionProlongationRoundTrip) {
  const mesh::Mesh m = mesh::generate_mesh(mesh::random_domain(23), 0.08, 23);
  const auto dec = partition::decompose(m.adj_ptr(), m.adj(), 6, 2, 23);
  Rng rng(24);
  std::vector<double> x(m.num_nodes());
  for (double& v : x) v = rng.uniform(-1, 1);
  // Σ_i R_iᵀ D_i R_i x = x (partition of unity applied through gather/scatter).
  std::vector<double> acc(m.num_nodes(), 0.0);
  for (Index p = 0; p < dec.num_parts; ++p) {
    std::vector<double> loc(dec.subdomains[p].size());
    dec.restrict_to(p, x, loc);
    for (std::size_t l = 0; l < loc.size(); ++l) {
      loc[l] *= dec.inv_multiplicity[dec.subdomains[p][l]];
    }
    dec.prolong_add(p, loc, acc);
  }
  for (Index v = 0; v < m.num_nodes(); ++v) EXPECT_NEAR(acc[v], x[v], 1e-12);
}

TEST(CoarseSpace, MatchesDenseReference) {
  const mesh::Mesh m = mesh::generate_mesh(mesh::random_domain(31), 0.09, 31);
  const auto prob = fem::assemble_poisson(
      m, [](const Point2&) { return 1.0; }, [](const Point2&) { return 0.0; });
  const auto dec = partition::decompose(m.adj_ptr(), m.adj(), 5, 2, 31);
  const partition::NicolaidesCoarseSpace cs(prob.A, dec);

  // Dense reference: build R0 explicitly, compute R0 A R0ᵀ.
  const Index n = m.num_nodes();
  la::DenseMatrix r0(5, n, 0.0);
  for (Index p = 0; p < 5; ++p) {
    for (const Index v : dec.subdomains[p]) {
      r0(p, v) = dec.inv_multiplicity[v];
    }
  }
  const auto a_dense = la::DenseMatrix::from_csr(prob.A);
  const auto ref = r0.matmul(a_dense).matmul(r0.transposed());
  for (Index i = 0; i < 5; ++i) {
    for (Index j = 0; j < 5; ++j) {
      EXPECT_NEAR(cs.coarse_matrix()(i, j), ref(i, j),
                  1e-10 * (1.0 + std::abs(ref(i, j))));
    }
  }

  // apply_add equals the dense formula R0ᵀ (R0AR0ᵀ)⁻¹ R0 r.
  Rng rng(32);
  std::vector<double> r(n);
  for (double& v : r) v = rng.uniform(-1, 1);
  std::vector<double> z(n, 0.0);
  cs.apply_add(r, z);
  std::vector<double> rc(5);
  r0.multiply(r, rc);
  const la::DenseCholesky chol(ref);
  chol.solve_inplace(rc);
  std::vector<double> z_ref(n);
  r0.transposed().multiply(rc, z_ref);
  for (Index v = 0; v < n; ++v) EXPECT_NEAR(z[v], z_ref[v], 1e-9);
}

TEST(CoarseSpace, RestrictionOfConstantResidualScalesWithSubdomainMass) {
  const mesh::Mesh m = mesh::generate_mesh(mesh::random_domain(33), 0.09, 33);
  const auto prob = fem::assemble_poisson(
      m, [](const Point2&) { return 1.0; }, [](const Point2&) { return 0.0; });
  const auto dec = partition::decompose(m.adj_ptr(), m.adj(), 4, 2, 33);
  const partition::NicolaidesCoarseSpace cs(prob.A, dec);
  std::vector<double> ones(m.num_nodes(), 1.0);
  const auto rc = cs.restrict_residual(ones);
  double total = 0.0;
  for (const double v : rc) total += v;
  // Partition of unity: Σ_i (R0 1)_i = N.
  EXPECT_NEAR(total, static_cast<double>(m.num_nodes()), 1e-9);
}

TEST(CoarseSpace, ApplyAddManyMatchesColumnwiseApplyAddBitwise) {
  const mesh::Mesh m = mesh::generate_mesh(mesh::random_domain(41), 0.07, 41);
  const auto prob = fem::assemble_poisson(
      m, [](const Point2&) { return 1.0; }, [](const Point2&) { return 0.0; });
  const auto dec = partition::decompose(m.adj_ptr(), m.adj(), 6, 2, 41);
  const partition::NicolaidesCoarseSpace cs(prob.A, dec);
  const Index n = m.num_nodes();
  const Index cols = 4;
  Rng rng(42);
  la::MultiVector r(n, cols), z(n, cols);
  for (Index j = 0; j < cols; ++j) {
    for (double& v : r.col(j)) v = rng.uniform(-1, 1);
    for (double& v : z.col(j)) v = rng.uniform(-1, 1);  // accumulates into z
  }
  la::MultiVector z_blk = z;
  cs.apply_add_many(r, z_blk);
  for (Index j = 0; j < cols; ++j) {
    std::vector<double> zc(z.col(j).begin(), z.col(j).end());
    cs.apply_add(r.col(j), zc);
    // The CoarseComponent contract: the block path is column-for-column
    // bitwise identical to the scalar path (block Krylov lockstep relies
    // on it through the whole ASM + coarse chain).
    EXPECT_EQ(std::memcmp(z_blk.col(j).data(), zc.data(),
                          zc.size() * sizeof(double)),
              0)
        << "column " << j;
  }
}

TEST(Aggregate, CoversEveryNodeWithDenseAggregateIds) {
  const mesh::Mesh m = mesh::generate_mesh(mesh::random_domain(43), 0.05, 43);
  const auto prob = fem::assemble_poisson(
      m, [](const Point2&) { return 1.0; }, [](const Point2&) { return 0.0; });
  const auto agg = partition::aggregate(prob.A, 6);
  const Index n = m.num_nodes();
  ASSERT_EQ(agg.assignment.size(), static_cast<std::size_t>(n));
  ASSERT_GT(agg.num_aggregates, 0);
  std::vector<int> size(agg.num_aggregates, 0);
  for (const Index a : agg.assignment) {
    ASSERT_GE(a, 0);
    ASSERT_LT(a, agg.num_aggregates);
    ++size[a];
  }
  for (Index a = 0; a < agg.num_aggregates; ++a) {
    EXPECT_GE(size[a], 1) << "empty aggregate " << a;  // ids are dense
  }
  // On a connected mesh graph every pass-1 seed absorbs at least one
  // neighbor and leftovers join existing aggregates, so it genuinely
  // coarsens: at most n/2 aggregates.
  EXPECT_LE(2 * agg.num_aggregates, n);
}

TEST(Aggregate, DeterministicPureFunctionOfPattern) {
  const mesh::Mesh m = mesh::generate_mesh(mesh::random_domain(44), 0.06, 44);
  const auto prob = fem::assemble_poisson(
      m, [](const Point2&) { return 1.0; }, [](const Point2&) { return 0.0; });
  const auto a1 = partition::aggregate(prob.A, 4);
  const auto a2 = partition::aggregate(prob.A, 4);
  EXPECT_EQ(a1.num_aggregates, a2.num_aggregates);
  EXPECT_EQ(a1.assignment, a2.assignment);
  // A larger cap can only reduce (or keep) the aggregate count.
  const auto a3 = partition::aggregate(prob.A, 12);
  EXPECT_LE(a3.num_aggregates, a1.num_aggregates);
}

}  // namespace
