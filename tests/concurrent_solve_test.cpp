// Concurrency contract of the serving stack: one prepared SolverSession
// (and one prepared preconditioner underneath it) is shared by many client
// threads, so
//   * concurrent solve / solve_many on a shared session must be bitwise
//     identical to the same solves run serially — for EVERY registry entry,
//     including both DDM-GNN variants whose scratch (DSS workspaces, merged
//     shard plans) was the original data race;
//   * concurrent preconditioner applies with distinct workspaces must match
//     the serial apply bit for bit;
//   * SessionCache::get_or_setup must collapse a cold-key stampede into
//     exactly one setup (1 miss + N−1 hits) and stay correct when eviction
//     races in-flight holders.
// The CI ThreadSanitizer job runs this binary to certify the absence of
// data races, not just of wrong answers.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/session_cache.hpp"
#include "core/solver_session.hpp"
#include "fem/poisson.hpp"
#include "gnn/dss_model.hpp"
#include "gnn/graph.hpp"
#include "la/vector_ops.hpp"
#include "mesh/generator.hpp"
#include "partition/decomposition.hpp"
#include "precond/registry.hpp"

namespace {

using namespace ddmgnn;
using la::Index;
using mesh::Point2;

struct SmallProblem {
  mesh::Mesh m;
  fem::PoissonProblem prob;
};

SmallProblem small_problem(std::uint64_t seed = 42, Index nodes = 700) {
  mesh::Mesh m =
      mesh::generate_mesh_target_nodes(mesh::random_domain(seed), nodes, seed);
  const auto q = fem::sample_quadratic_data(seed);
  auto prob = fem::assemble_poisson(
      m, [&](const Point2& p) { return q.f(p); },
      [&](const Point2& p) { return q.g(p); });
  return {std::move(m), std::move(prob)};
}

/// Untrained model: concurrency does not require training, only identical
/// deterministic inference.
gnn::DssModel tiny_model() {
  gnn::DssConfig mc;
  mc.iterations = 2;
  mc.latent = 4;
  mc.hidden = 4;
  return gnn::DssModel(mc, 7);
}

std::vector<double> random_vector(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

/// Spin barrier: all threads reach their hot section together so the solves
/// genuinely overlap instead of serializing on thread startup.
class SpinBarrier {
 public:
  explicit SpinBarrier(int count) : waiting_(count) {}
  void arrive_and_wait() {
    waiting_.fetch_sub(1, std::memory_order_acq_rel);
    while (waiting_.load(std::memory_order_acquire) > 0) {
    }
  }

 private:
  std::atomic<int> waiting_;
};

void run_threads(int count, const std::function<void(int)>& body) {
  std::vector<std::thread> threads;
  threads.reserve(count);
  for (int t = 0; t < count; ++t) threads.emplace_back(body, t);
  for (auto& th : threads) th.join();
}

// ---------------------------------------------------------------------------

// N threads × one shared session, each with its own right-hand side, must
// reproduce the serial solves bit for bit — for every registry entry.
TEST(ConcurrentSolve, SharedSessionMatchesSerialBitwiseForEveryEntry) {
  auto [m, prob] = small_problem(42, 700);
  const gnn::DssModel model = tiny_model();
  const int kThreads = 4;
  const std::size_t n = prob.b.size();

  std::vector<std::vector<double>> rhs(kThreads);
  for (int t = 0; t < kThreads; ++t) rhs[t] = random_vector(n, 100 + t);

  for (const std::string& name : precond::preconditioner_names()) {
    core::HybridConfig cfg;
    cfg.preconditioner = name;
    cfg.subdomain_target_nodes = 250;
    cfg.track_history = false;
    // The untrained GNN converges slowly; the equality contract is what is
    // under test, so bound the work per solve.
    cfg.max_iterations = 150;
    if (precond::preconditioner_traits(name).needs_model) cfg.model = &model;

    core::SolverSession session;
    session.setup(m, prob, cfg);

    std::vector<std::vector<double>> x_serial(kThreads);
    std::vector<solver::SolveResult> r_serial(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      x_serial[t].assign(n, 0.0);
      r_serial[t] = session.solve(rhs[t], x_serial[t]);
    }

    std::vector<std::vector<double>> x_conc(kThreads);
    std::vector<solver::SolveResult> r_conc(kThreads);
    SpinBarrier barrier(kThreads);
    run_threads(kThreads, [&](int t) {
      x_conc[t].assign(n, 0.0);
      barrier.arrive_and_wait();
      r_conc[t] = session.solve(rhs[t], x_conc[t]);
    });

    for (int t = 0; t < kThreads; ++t) {
      EXPECT_EQ(r_conc[t].iterations, r_serial[t].iterations)
          << name << " thread " << t;
      EXPECT_EQ(r_conc[t].final_relative_residual,
                r_serial[t].final_relative_residual)
          << name << " thread " << t;
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(x_conc[t][i], x_serial[t][i])
            << name << " thread " << t << " component " << i;
      }
    }
  }
}

// Mixed serving traffic on one shared DDM-GNN session: some clients issue
// single solves, others batched solve_many calls with *different* column
// counts — which exercises the shard-plan cache (one immutable plan per
// column count, built once, shared read-only) under real contention.
TEST(ConcurrentSolve, MixedSingleAndBlockTrafficOnSharedGnnSession) {
  auto [m, prob] = small_problem(7, 600);
  const gnn::DssModel model = tiny_model();
  core::HybridConfig cfg;
  cfg.preconditioner = "ddm-gnn";
  cfg.model = &model;
  cfg.subdomain_target_nodes = 200;
  cfg.track_history = false;
  cfg.max_iterations = 120;
  core::SolverSession session;
  session.setup(m, prob, cfg);
  const std::size_t n = prob.b.size();

  const int kThreads = 4;
  // Thread t solves a block of t+1 right-hand sides (thread 0 goes through
  // the scalar path, the rest through block FPCG at distinct column counts).
  std::vector<std::vector<std::vector<double>>> rhs(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    rhs[t].resize(t + 1);
    for (int j = 0; j <= t; ++j) rhs[t][j] = random_vector(n, 500 + 13 * t + j);
  }

  std::vector<std::vector<std::vector<double>>> xs_serial(kThreads);
  std::vector<std::vector<solver::SolveResult>> r_serial(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    r_serial[t] = session.solve_many(rhs[t], xs_serial[t]);
  }

  std::vector<std::vector<std::vector<double>>> xs_conc(kThreads);
  std::vector<std::vector<solver::SolveResult>> r_conc(kThreads);
  SpinBarrier barrier(kThreads);
  run_threads(kThreads, [&](int t) {
    barrier.arrive_and_wait();
    r_conc[t] = session.solve_many(rhs[t], xs_conc[t]);
  });

  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(r_conc[t].size(), r_serial[t].size()) << t;
    for (std::size_t j = 0; j < r_serial[t].size(); ++j) {
      EXPECT_EQ(r_conc[t][j].iterations, r_serial[t][j].iterations)
          << t << ":" << j;
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(xs_conc[t][j][i], xs_serial[t][j][i])
            << t << ":" << j << ":" << i;
      }
    }
  }
}

// Concurrent raw applies on one shared preconditioner with per-caller
// workspaces match the serial apply bit for bit (the layer below the
// session, where the mutable-scratch race originally lived).
TEST(ConcurrentApply, DistinctWorkspacesMatchSerialApply) {
  auto [m, prob] = small_problem(9, 700);
  const auto dec =
      partition::decompose_target_size(m.adj_ptr(), m.adj(), 200, 2, 3);
  const gnn::DssModel model = tiny_model();
  const la::CsrMatrix mesh_pattern =
      gnn::adjacency_pattern(m.adj_ptr(), m.adj());
  const Index n = prob.A.rows();
  const int kThreads = 4;

  for (const std::string& name : {std::string("ddm-lu"),
                                  std::string("ddm-gnn")}) {
    precond::PrecondContext ctx;
    ctx.A = &prob.A;
    ctx.dec = &dec;
    ctx.coords = m.points();
    ctx.edge_pattern = &mesh_pattern;
    ctx.dirichlet = prob.dirichlet;
    ctx.model = &model;
    const auto p = precond::make_preconditioner(name, ctx);

    std::vector<std::vector<double>> r(kThreads), z_serial(kThreads),
        z_conc(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      r[t] = random_vector(n, 900 + t);
      z_serial[t].assign(n, 0.0);
      z_conc[t].assign(n, 0.0);
      p->apply(r[t], z_serial[t]);
    }

    SpinBarrier barrier(kThreads);
    run_threads(kThreads, [&](int t) {
      const auto ws = p->make_workspace();
      barrier.arrive_and_wait();
      for (int rep = 0; rep < 3; ++rep) {  // workspace reuse across applies
        p->apply(r[t], z_conc[t], ws.get());
      }
    });

    for (int t = 0; t < kThreads; ++t) {
      for (Index i = 0; i < n; ++i) {
        ASSERT_EQ(z_conc[t][i], z_serial[t][i]) << name << " " << t;
      }
    }
  }
}

// ---------------------------------------------------------------------------

la::CsrMatrix grid_laplacian(Index side, double shift) {
  const Index n = side * side;
  la::CooBuilder coo(n, n);
  for (Index r = 0; r < side; ++r) {
    for (Index c = 0; c < side; ++c) {
      const Index i = r * side + c;
      coo.add(i, i, 4.0 + shift);
      if (r > 0) coo.add(i, i - side, -1.0);
      if (r + 1 < side) coo.add(i, i + side, -1.0);
      if (c > 0) coo.add(i, i - 1, -1.0);
      if (c + 1 < side) coo.add(i, i + 1, -1.0);
    }
  }
  return std::move(coo).build();
}

core::HybridConfig lu_config() {
  core::HybridConfig cfg;
  cfg.preconditioner = "ddm-lu";
  cfg.subdomain_target_nodes = 150;
  cfg.rel_tol = 1e-8;
  cfg.track_history = false;
  return cfg;
}

// A cold-key stampede runs exactly one setup: every thread gets the same
// prepared session, and the counters add up to one miss (the setup) plus
// N−1 hits (the waiters).
TEST(SessionCacheConcurrency, StampedeRunsExactlyOneSetup) {
  core::SessionCache cache(1u << 30);
  const la::CsrMatrix A = grid_laplacian(20, 0.0);
  const core::HybridConfig cfg = lu_config();
  const int kThreads = 8;

  std::vector<std::shared_ptr<core::SolverSession>> got(kThreads);
  SpinBarrier barrier(kThreads);
  run_threads(kThreads, [&](int t) {
    barrier.arrive_and_wait();
    got[t] = cache.get_or_setup(A, cfg);
    // Every caller can solve on what it got, immediately and concurrently.
    const std::vector<double> b = random_vector(A.rows(), 40 + t);
    std::vector<double> x(A.rows(), 0.0);
    const auto res = got[t]->solve(b, x);
    EXPECT_TRUE(res.converged) << t;
  });

  for (int t = 1; t < kThreads; ++t) ASSERT_EQ(got[t].get(), got[0].get());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, static_cast<std::size_t>(kThreads - 1));
  EXPECT_EQ(cache.size(), 1u);
}

// Hammering a tiny-budget cache from many threads over several operators:
// every call accounts as hit or miss, evicted-but-held sessions keep
// solving, and the cache survives constant eviction churn.
TEST(SessionCacheConcurrency, EvictionChurnKeepsInFlightSolvesCorrect) {
  core::SessionCache cache(/*byte_budget=*/1);  // every insert over budget
  const core::HybridConfig cfg = lu_config();
  const int kThreads = 4;
  const int kRounds = 3;
  std::vector<la::CsrMatrix> ops;
  for (int k = 0; k < 3; ++k) ops.push_back(grid_laplacian(16, 1.0 * k));

  std::atomic<std::size_t> calls{0};
  SpinBarrier barrier(kThreads);
  run_threads(kThreads, [&](int t) {
    barrier.arrive_and_wait();
    for (int round = 0; round < kRounds; ++round) {
      const la::CsrMatrix& A = ops[(t + round) % ops.size()];
      auto session = cache.get_or_setup(A, cfg);
      calls.fetch_add(1, std::memory_order_relaxed);
      const std::vector<double> ones(A.rows(), 1.0);
      const std::vector<double> b = A.apply(ones);
      std::vector<double> x(A.rows(), 0.0);
      const auto res = session->solve(b, x);  // session may be evicted now
      EXPECT_TRUE(res.converged) << t << ":" << round;
      for (Index i = 0; i < A.rows(); i += 29) {
        EXPECT_NEAR(x[i], 1.0, 1e-6) << t << ":" << round;
      }
    }
  });

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, calls.load());
  EXPECT_GE(stats.misses, ops.size());  // each operator was set up at least once
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_LE(cache.size(), ops.size());
}

// The sharing contract is enforced, not just documented: re-keying a
// cache-returned session throws, while a session the caller owns outright
// can still be re-set-up freely.
TEST(SessionCacheConcurrency, SetupOnCachedSessionThrowsContractError) {
  core::SessionCache cache(1u << 30);
  const la::CsrMatrix A = grid_laplacian(16, 0.0);
  const la::CsrMatrix B = grid_laplacian(16, 1.0);
  const core::HybridConfig cfg = lu_config();

  auto cached = cache.get_or_setup(A, cfg);
  ASSERT_TRUE(cached->ready());
  EXPECT_TRUE(cached->setup_locked());
  try {
    cached->setup(B, cfg);
    FAIL() << "expected ContractError";
  } catch (const ContractError& e) {
    EXPECT_NE(std::string(e.what()).find("get_or_setup"), std::string::npos);
  }
  // The failed re-key left the shared session fully intact.
  ASSERT_TRUE(cached->ready());
  const std::vector<double> ones(A.rows(), 1.0);
  const std::vector<double> b = A.apply(ones);
  std::vector<double> x(A.rows(), 0.0);
  EXPECT_TRUE(cached->solve(b, x).converged);

  core::SolverSession own;
  own.setup(A, cfg);
  own.setup(B, cfg);  // caller-owned sessions re-key as before
  EXPECT_FALSE(own.setup_locked());
}

}  // namespace
