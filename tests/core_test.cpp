// Integration tests of the paper's contribution: dataset harvesting, the
// DDM-GNN preconditioner (normalization, scale-equivariance, refinement),
// the hybrid-solver facade across all preconditioner kinds, and end-to-end
// PCG convergence with a freshly trained micro-model.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <set>

#include "common/rng.hpp"
#include "core/dataset.hpp"
#include "core/gnn_subdomain_solver.hpp"
#include "core/hybrid_solver.hpp"
#include "core/model_zoo.hpp"
#include "core/solver_session.hpp"
#include "fem/poisson.hpp"
#include "gnn/trainer.hpp"
#include "la/skyline_cholesky.hpp"
#include "la/vector_ops.hpp"
#include "mesh/generator.hpp"
#include "partition/decomposition.hpp"
#include "precond/asm_precond.hpp"
#include "precond/registry.hpp"
#include "solver/krylov.hpp"

namespace {

using namespace ddmgnn;
using la::Index;
using mesh::Point2;

/// Shared micro-model trained once for the whole test binary (seconds).
class TrainedModelEnv {
 public:
  static TrainedModelEnv& instance() {
    static TrainedModelEnv env;
    return env;
  }
  const gnn::DssModel& model() const { return *model_; }
  const core::DssDataset& dataset() const { return dataset_; }

 private:
  TrainedModelEnv() {
    core::DatasetConfig dc;
    dc.num_global_problems = 3;
    dc.mesh_target_nodes = 1200;
    dc.subdomain_target_nodes = 280;
    dc.seed = 777;
    dataset_ = core::generate_dataset(dc);
    gnn::DssConfig mc;
    mc.iterations = 8;
    mc.latent = 10;
    mc.hidden = 10;
    mc.alpha = 0.05f;
    model_ = std::make_unique<gnn::DssModel>(mc, 42);
    gnn::TrainConfig tc;
    tc.epochs = 50;
    tc.batch_size = 48;
    tc.learning_rate = 1e-2;
    tc.clip_norm = 0.1;
    tc.wall_clock_budget_s = 0.0;  // fixed epochs: deterministic model
                                   // quality regardless of machine load
    tc.seed = 5;
    gnn::train_dss(*model_, dataset_.train, dataset_.validation, tc);
  }
  core::DssDataset dataset_;
  std::unique_ptr<gnn::DssModel> model_;
};

TEST(Dataset, HarvestedSamplesHaveUnitNormInputs) {
  const auto& data = TrainedModelEnv::instance().dataset();
  ASSERT_GT(data.total(), 50u);
  EXPECT_GT(data.train.size(), data.validation.size());
  for (const auto& s : data.train) {
    ASSERT_NE(s.topo, nullptr);
    EXPECT_EQ(s.rhs.size(), static_cast<std::size_t>(s.topo->n));
    EXPECT_NEAR(la::norm2(s.rhs), 1.0, 1e-9);
  }
}

TEST(Dataset, TopologiesAreSharedAcrossSamples) {
  const auto& data = TrainedModelEnv::instance().dataset();
  // Many samples per subdomain => far fewer topologies than samples.
  std::set<const gnn::GraphTopology*> topos;
  for (const auto& s : data.train) topos.insert(s.topo.get());
  EXPECT_LT(topos.size(), data.train.size() / 2);
  // Subdomain sizes near the configured target.
  for (const auto* t : topos) {
    EXPECT_GT(t->n, 100);
    EXPECT_LT(t->n, 700);
  }
}

TEST(Dataset, SplitIsDisjointAndCoversAll) {
  core::DatasetConfig dc;
  dc.num_global_problems = 1;
  dc.mesh_target_nodes = 800;
  dc.subdomain_target_nodes = 250;
  dc.seed = 31;
  const auto data = core::generate_dataset(dc);
  const std::size_t total = data.total();
  EXPECT_NEAR(static_cast<double>(data.train.size()) / total, 0.6, 0.05);
  EXPECT_NEAR(static_cast<double>(data.validation.size()) / total, 0.2, 0.05);
}

struct SolveSetup {
  mesh::Mesh m;
  fem::PoissonProblem prob;
};

SolveSetup fresh_problem(std::uint64_t seed, Index nodes) {
  mesh::Mesh m =
      mesh::generate_mesh_target_nodes(mesh::random_domain(seed), nodes, seed);
  const auto q = fem::sample_quadratic_data(seed);
  auto prob = fem::assemble_poisson(
      m, [&](const Point2& p) { return q.f(p); },
      [&](const Point2& p) { return q.g(p); });
  return {std::move(m), std::move(prob)};
}

TEST(DdmGnn, EndToEndPcgConvergesOnFreshProblem) {
  // The headline property (paper Table I): PCG + DDM-GNN reaches 1e-6 on an
  // out-of-distribution problem (~3x training mesh size).
  const auto& env = TrainedModelEnv::instance();
  auto [m, prob] = fresh_problem(999, 3500);
  core::HybridConfig cfg;
  cfg.preconditioner = "ddm-gnn";  // non-symmetric: defaults to flexible PCG
  cfg.model = &env.model();
  cfg.subdomain_target_nodes = 280;
  cfg.rel_tol = 1e-6;
  cfg.max_iterations = 800;
  // One inference-time refinement pass: the repo's documented compensation
  // for the micro training budget of this test env (DESIGN.md). Without it
  // the 50-epoch model converges (≈180 iters) but does not beat plain CG on
  // this problem, which is the paper property asserted below; the strict
  // paper protocol (0 refinements) is covered by the refinement test.
  cfg.gnn_refinement_steps = 1;
  core::SolverSession gnn_session;
  gnn_session.setup(m, prob, cfg);
  EXPECT_EQ(gnn_session.method(), solver::KrylovMethod::kFpcg);
  std::vector<double> x_gnn(prob.b.size(), 0.0);
  const auto gnn_res = gnn_session.solve(prob.b, x_gnn);
  EXPECT_TRUE(gnn_res.converged);
  EXPECT_LT(fem::relative_residual(prob.A, prob.b, x_gnn), 1e-5);

  cfg.preconditioner = "ddm-lu";
  core::SolverSession lu_session;
  lu_session.setup(m, prob, cfg);
  std::vector<double> x_lu(prob.b.size(), 0.0);
  const auto lu_res = lu_session.solve(prob.b, x_lu);
  EXPECT_TRUE(lu_res.converged);
  // GNN local solves are approximate: more iterations than exact DDM-LU, but
  // far fewer than the 600-iteration cap and in the same decomposition.
  EXPECT_GE(gnn_res.iterations, lu_res.iterations);
  EXPECT_EQ(gnn_session.num_subdomains(), lu_session.num_subdomains());

  cfg.preconditioner = "none";
  core::SolverSession cg_session;
  cg_session.setup(m, prob, cfg);
  std::vector<double> x_cg(prob.b.size(), 0.0);
  const auto cg_res = cg_session.solve(prob.b, x_cg);
  EXPECT_TRUE(cg_res.converged);
  EXPECT_LT(gnn_res.iterations, cg_res.iterations);
}

TEST(DdmGnn, BatchedSolveManyConvergesEveryColumn) {
  // The batched multi-RHS engine end-to-end with a trained model: three
  // right-hand sides through ONE block flexible-PCG run whose every
  // preconditioner application is a disjoint-union DSS inference over all
  // columns × subdomains. Every column must meet the tolerance, and the
  // shared search space must not need more block iterations than the
  // sequential loop needs for its hardest column.
  const auto& env = TrainedModelEnv::instance();
  auto [m, prob] = fresh_problem(4321, 1500);
  core::HybridConfig cfg;
  cfg.preconditioner = "ddm-gnn";
  cfg.model = &env.model();
  cfg.subdomain_target_nodes = 280;
  cfg.rel_tol = 1e-6;
  cfg.max_iterations = 800;
  cfg.gnn_refinement_steps = 1;
  cfg.track_history = false;

  std::vector<std::vector<double>> rhs(3, prob.b);
  {
    Rng rng(2718);
    for (double& v : rhs[1]) v = rng.uniform(-1.0, 1.0);
    for (double& v : rhs[2]) v *= -0.25;
  }

  core::SolverSession session;
  session.setup(m, prob, cfg);
  std::vector<std::vector<double>> xs;
  const auto results = session.solve_many(rhs, xs);
  ASSERT_EQ(results.size(), 3u);
  int max_block = 0;
  for (std::size_t j = 0; j < results.size(); ++j) {
    EXPECT_TRUE(results[j].converged) << j;
    EXPECT_EQ(results[j].method.rfind("block-fpcg+ddm-gnn", 0), 0u) << j;
    EXPECT_LT(fem::relative_residual(prob.A, rhs[j], xs[j]), 1e-5) << j;
    max_block = std::max(max_block, results[j].iterations);
  }

  core::HybridConfig seq_cfg = cfg;
  seq_cfg.block_multi_rhs = false;
  core::SolverSession seq_session;
  seq_session.setup(m, prob, seq_cfg);
  std::vector<std::vector<double>> xs_seq;
  const auto seq_results = seq_session.solve_many(rhs, xs_seq);
  int max_seq = 0;
  for (const auto& r : seq_results) {
    EXPECT_TRUE(r.converged);
    max_seq = std::max(max_seq, r.iterations);
  }
  EXPECT_LE(max_block, max_seq + 2);
}

TEST(DdmGnn, RefinementReducesIterationCount) {
  const auto& env = TrainedModelEnv::instance();
  auto [m, prob] = fresh_problem(1001, 2500);
  core::HybridConfig cfg;
  cfg.preconditioner = "ddm-gnn";
  cfg.method = solver::KrylovMethod::kPcg;  // the paper's Algorithm 1
  cfg.model = &env.model();
  cfg.subdomain_target_nodes = 280;
  cfg.max_iterations = 600;
  cfg.gnn_refinement_steps = 0;
  core::SolverSession session;
  session.setup(m, prob, cfg);
  std::vector<double> x0(prob.b.size(), 0.0);
  const auto r0 = session.solve(prob.b, x0);
  cfg.gnn_refinement_steps = 2;
  session.setup(m, prob, cfg);  // re-key the same session
  std::vector<double> x2(prob.b.size(), 0.0);
  const auto r2 = session.solve(prob.b, x2);
  EXPECT_TRUE(r0.converged);
  EXPECT_TRUE(r2.converged);
  EXPECT_LT(r2.iterations, r0.iterations);
}

TEST(DdmGnn, LocalSolveIsScaleEquivariantWithNormalization) {
  // With §III-A normalization, z(λ r) = λ z(r) even though DSS is nonlinear.
  const auto& env = TrainedModelEnv::instance();
  auto [m, prob] = fresh_problem(1003, 1200);
  const auto dec =
      partition::decompose_target_size(m.adj_ptr(), m.adj(), 280, 2, 7);
  core::GnnSubdomainSolver solver(env.model(), m, prob.dirichlet);
  std::vector<la::CsrMatrix> blocks(dec.num_parts);
  for (Index i = 0; i < dec.num_parts; ++i) {
    blocks[i] = prob.A.principal_submatrix(dec.subdomains[i]);
  }
  solver.setup(std::move(blocks), dec);
  Rng rng(12);
  std::vector<std::vector<double>> r1(dec.num_parts), r2(dec.num_parts);
  std::vector<std::vector<double>> z1(dec.num_parts), z2(dec.num_parts);
  for (Index i = 0; i < dec.num_parts; ++i) {
    r1[i].resize(dec.subdomains[i].size());
    for (double& v : r1[i]) v = rng.uniform(-1, 1);
    r2[i] = r1[i];
    for (double& v : r2[i]) v *= 1e-8;  // tiny residual, as at convergence
    z1[i].resize(r1[i].size());
    z2[i].resize(r1[i].size());
  }
  const auto ws = solver.make_workspace();
  solver.solve_all(r1, z1, ws.get());
  solver.solve_all(r2, z2, ws.get());
  for (Index i = 0; i < dec.num_parts; ++i) {
    for (std::size_t j = 0; j < z1[i].size(); ++j) {
      EXPECT_NEAR(z2[i][j], 1e-8 * z1[i][j],
                  1e-12 + 1e-6 * std::abs(1e-8 * z1[i][j]));
    }
  }
}

TEST(DdmGnn, ZeroResidualYieldsZeroCorrection) {
  const auto& env = TrainedModelEnv::instance();
  auto [m, prob] = fresh_problem(1005, 900);
  const auto dec =
      partition::decompose_target_size(m.adj_ptr(), m.adj(), 250, 2, 7);
  core::GnnSubdomainSolver solver(env.model(), m, prob.dirichlet);
  std::vector<la::CsrMatrix> blocks(dec.num_parts);
  for (Index i = 0; i < dec.num_parts; ++i) {
    blocks[i] = prob.A.principal_submatrix(dec.subdomains[i]);
  }
  solver.setup(std::move(blocks), dec);
  std::vector<std::vector<double>> r(dec.num_parts), z(dec.num_parts);
  for (Index i = 0; i < dec.num_parts; ++i) {
    r[i].assign(dec.subdomains[i].size(), 0.0);
    z[i].resize(r[i].size());
  }
  const auto ws = solver.make_workspace();
  solver.solve_all(r, z, ws.get());
  for (const auto& zi : z) {
    for (const double v : zi) EXPECT_EQ(v, 0.0);
  }
}

// The deprecated one-shot facade must keep working as a wrapper over
// SolverSession — this test exercises it across every registered name.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(HybridFacade, AllPreconditionersSolveTheSameProblem) {
  const auto& env = TrainedModelEnv::instance();
  auto [m, prob] = fresh_problem(1007, 1500);
  la::SkylineCholesky direct(prob.A);
  const auto x_ref = direct.solve(prob.b);
  for (const std::string& name : precond::preconditioner_names()) {
    core::HybridConfig cfg;
    cfg.preconditioner = name;
    cfg.model = &env.model();
    cfg.subdomain_target_nodes = 300;
    cfg.rel_tol = 1e-8;
    cfg.max_iterations = 2000;
    const auto rep = core::solve_poisson(m, prob, cfg);
    EXPECT_TRUE(rep.result.converged) << name;
    EXPECT_LT(la::dist2(rep.solution, x_ref) / la::norm2(x_ref), 1e-5) << name;
  }
}
#pragma GCC diagnostic pop

TEST(HybridFacade, HistoryTracksMonotoneDecreaseForDdmLu) {
  auto [m, prob] = fresh_problem(1009, 2000);
  core::HybridConfig cfg;
  cfg.preconditioner = "ddm-lu";
  cfg.subdomain_target_nodes = 350;
  core::SolverSession session;
  session.setup(m, prob, cfg);
  std::vector<double> x(prob.b.size(), 0.0);
  const auto res = session.solve(prob.b, x);
  ASSERT_TRUE(res.converged);
  ASSERT_GT(res.history.size(), 2u);
  // Residual history should broadly decrease (allow small CG oscillations).
  EXPECT_LT(res.history.back(), 1e-6);
  double max_later = 0.0;
  for (std::size_t i = res.history.size() / 2; i < res.history.size(); ++i) {
    max_later = std::max(max_later, res.history[i]);
  }
  EXPECT_LT(max_later, res.history.front());
}

TEST(ModelZoo, CachesTrainedModels) {
  // Use an isolated artifact dir to avoid interfering with the bench cache.
  const std::string dir = "test_zoo_artifacts";
  setenv("DDMGNN_ARTIFACT_DIR", dir.c_str(), 1);
  setenv("DDMGNN_BENCH_SCALE", "smoke", 1);
  setenv("DDMGNN_TRAIN_BUDGET_S", "10", 1);
  core::ZooSpec spec = core::default_spec(2, 4);
  spec.training.epochs = 2;
  spec.dataset.num_global_problems = 1;
  spec.dataset.mesh_target_nodes = 700;
  spec.dataset.subdomain_target_nodes = 220;
  gnn::TrainReport r1, r2;
  const auto m1 = core::get_or_train_model(spec, nullptr, &r1);
  EXPECT_GT(r1.epochs_run, 0);
  EXPECT_TRUE(std::filesystem::exists(core::model_cache_path(spec)));
  const auto m2 = core::get_or_train_model(spec, nullptr, &r2);
  EXPECT_EQ(r2.epochs_run, 0);  // loaded from cache, not retrained
  const auto p1 = m1.params();
  const auto p2 = m2.params();
  ASSERT_EQ(p1.size(), p2.size());
  for (std::size_t i = 0; i < p1.size(); ++i) EXPECT_EQ(p1[i], p2[i]);
  std::filesystem::remove_all(dir);
  unsetenv("DDMGNN_ARTIFACT_DIR");
  unsetenv("DDMGNN_BENCH_SCALE");
  unsetenv("DDMGNN_TRAIN_BUDGET_S");
}

}  // namespace
