// Tests for the meshing substrate: geometry predicates, Delaunay property,
// generator invariants across random domains (parameterized sweeps).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hpp"
#include "mesh/delaunay.hpp"
#include "mesh/generator.hpp"
#include "mesh/geometry.hpp"
#include "mesh/mesh.hpp"

namespace {

using namespace ddmgnn;
using mesh::Point2;

TEST(Geometry, Orient2dSign) {
  EXPECT_GT(mesh::orient2d({0, 0}, {1, 0}, {0, 1}), 0.0);
  EXPECT_LT(mesh::orient2d({0, 0}, {0, 1}, {1, 0}), 0.0);
  EXPECT_EQ(mesh::orient2d({0, 0}, {1, 1}, {2, 2}), 0.0);
}

TEST(Geometry, PointSegmentDistance) {
  EXPECT_DOUBLE_EQ(mesh::point_segment_distance({0, 1}, {-1, 0}, {1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(mesh::point_segment_distance({2, 0}, {-1, 0}, {1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(mesh::point_segment_distance({5, 0}, {0, 0}, {0, 0}), 5.0);
}

TEST(Geometry, SplineInterpolatesSmoothClosedCurve) {
  std::vector<Point2> square{{1, 1}, {-1, 1}, {-1, -1}, {1, -1}};
  mesh::ClosedSpline sp(square);
  // Catmull-Rom passes through its control points at t=0.
  for (std::size_t s = 0; s < 4; ++s) {
    const Point2 p = sp.evaluate(s, 0.0);
    EXPECT_NEAR(p.x, square[s].x, 1e-12);
    EXPECT_NEAR(p.y, square[s].y, 1e-12);
  }
  const auto poly = sp.sample(0.05);
  EXPECT_GT(poly.size(), 100u);
  // Successive samples should be spaced below ~2x the requested spacing.
  for (std::size_t i = 0; i + 1 < poly.size(); ++i) {
    EXPECT_LT((poly[i + 1] - poly[i]).norm(), 0.2);
  }
}

TEST(Geometry, PolygonLocatorSquare) {
  mesh::PolygonLocator sq({{0, 0}, {2, 0}, {2, 2}, {0, 2}});
  EXPECT_TRUE(sq.contains({1.0, 1.0}));
  EXPECT_TRUE(sq.contains({0.01, 1.99}));
  EXPECT_FALSE(sq.contains({-0.5, 1.0}));
  EXPECT_FALSE(sq.contains({2.5, 1.0}));
  EXPECT_FALSE(sq.contains({1.0, -0.1}));
  EXPECT_NEAR(std::abs(sq.signed_area()), 4.0, 1e-12);
  EXPECT_TRUE(sq.within_clearance({0.05, 1.0}, 0.1));
  EXPECT_FALSE(sq.within_clearance({1.0, 1.0}, 0.5));
}

TEST(Geometry, PolygonLocatorMatchesBruteForceOnBlob) {
  const mesh::Domain dom = mesh::random_domain(3);
  const auto& verts = dom.outer.vertices();
  const int n = static_cast<int>(verts.size());
  auto brute = [&](const Point2& p) {
    bool inside = false;
    for (int i = 0; i < n; ++i) {
      const Point2& a = verts[i];
      const Point2& b = verts[(i + 1) % n];
      if ((a.y > p.y) != (b.y > p.y)) {
        const double xi = a.x + (p.y - a.y) * (b.x - a.x) / (b.y - a.y);
        if (xi > p.x) inside = !inside;
      }
    }
    return inside;
  };
  Rng rng(11);
  for (int t = 0; t < 2000; ++t) {
    const Point2 p{rng.uniform(-1.6, 1.6), rng.uniform(-1.6, 1.6)};
    EXPECT_EQ(dom.outer.contains(p), brute(p)) << p.x << "," << p.y;
  }
}

TEST(Delaunay, EmptyCircumcirclePropertyOnRandomPoints) {
  Rng rng(17);
  std::vector<Point2> pts;
  for (int i = 0; i < 300; ++i) {
    pts.push_back({rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)});
  }
  const auto tris = mesh::delaunay_triangulate(pts);
  ASSERT_GT(tris.size(), 0u);
  // Check the defining property on a subsample (full check is O(T*N)).
  for (std::size_t t = 0; t < tris.size(); t += 7) {
    const auto& tr = tris[t];
    for (int p = 0; p < 300; p += 3) {
      if (p == tr[0] || p == tr[1] || p == tr[2]) continue;
      EXPECT_FALSE(mesh::in_circumcircle(pts[tr[0]], pts[tr[1]], pts[tr[2]],
                                         pts[p]))
          << "triangle " << t << " contains point " << p;
    }
  }
}

TEST(Delaunay, CoversConvexHullArea) {
  // Points on a square grid (jittered): total triangle area == hull area.
  Rng rng(23);
  std::vector<Point2> pts;
  for (int i = 0; i < 20; ++i) {
    for (int j = 0; j < 20; ++j) {
      pts.push_back({i + 0.3 * rng.uniform(-1, 1), j + 0.3 * rng.uniform(-1, 1)});
    }
  }
  const auto tris = mesh::delaunay_triangulate(pts);
  double area = 0.0;
  for (const auto& t : tris) {
    area += 0.5 * mesh::orient2d(pts[t[0]], pts[t[1]], pts[t[2]]);
  }
  // Hull area is close to the 19x19 cell grid area minus boundary jitter.
  EXPECT_NEAR(area, 19.0 * 19.0, 25.0);
  // Euler-ish sanity: T ≈ 2·N for large point sets.
  EXPECT_GT(tris.size(), 1.7 * pts.size());
  EXPECT_LT(tris.size(), 2.1 * pts.size());
}

TEST(Delaunay, AllInputPointsAppear) {
  Rng rng(29);
  std::vector<Point2> pts;
  for (int i = 0; i < 150; ++i)
    pts.push_back({rng.uniform(-2, 2), rng.uniform(-1, 1)});
  const auto tris = mesh::delaunay_triangulate(pts);
  std::set<int> used;
  for (const auto& t : tris) used.insert(t.begin(), t.end());
  EXPECT_EQ(used.size(), pts.size());
}

class MeshGenParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MeshGenParam, GeneratorInvariantsOnRandomDomains) {
  const std::uint64_t seed = GetParam();
  const mesh::Domain dom = mesh::random_domain(seed);
  const mesh::Mesh m = mesh::generate_mesh(dom, 0.06, seed);
  ASSERT_GT(m.num_nodes(), 200);
  // CCW triangles with sane areas.
  for (la::Index t = 0; t < m.num_triangles(); ++t) {
    EXPECT_GT(m.triangle_area(t), 0.0);
  }
  // Mesh area close to domain area.
  EXPECT_NEAR(m.total_area(), dom.area(), 0.08 * dom.area());
  // Boundary nodes exist and form a minority.
  EXPECT_GT(m.num_boundary_nodes(), 10);
  EXPECT_LT(m.num_boundary_nodes(), m.num_nodes() / 2);
  // Adjacency is symmetric and loop-free.
  const auto ptr = m.adj_ptr();
  const auto adj = m.adj();
  for (la::Index u = 0; u < m.num_nodes(); ++u) {
    for (la::Offset e = ptr[u]; e < ptr[u + 1]; ++e) {
      const la::Index v = adj[e];
      EXPECT_NE(u, v);
      bool back = false;
      for (la::Offset e2 = ptr[v]; e2 < ptr[v + 1]; ++e2) {
        if (adj[e2] == u) back = true;
      }
      EXPECT_TRUE(back);
    }
  }
  // Every node is used by some triangle (generator compacts).
  std::vector<int> deg(m.num_nodes(), 0);
  for (const auto& t : m.triangles()) {
    for (const auto v : t) ++deg[v];
  }
  for (la::Index i = 0; i < m.num_nodes(); ++i) EXPECT_GT(deg[i], 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MeshGenParam,
                         ::testing::Values(1, 2, 3, 4, 5, 77, 1234));

TEST(MeshGen, TargetNodeCountIsApproximatelyMet) {
  for (const la::Index target : {1000, 4000, 9000}) {
    const mesh::Domain dom = mesh::random_domain(5);
    const mesh::Mesh m = mesh::generate_mesh_target_nodes(dom, target, 5);
    EXPECT_GT(m.num_nodes(), 0.8 * target);
    EXPECT_LT(m.num_nodes(), 1.25 * target);
  }
}

TEST(MeshGen, RadiusScalingGrowsNodesQuadratically) {
  const double h = 0.08;
  const mesh::Mesh m1 = mesh::generate_mesh(mesh::random_domain(9, 1.0), h, 9);
  const mesh::Mesh m2 = mesh::generate_mesh(mesh::random_domain(9, 2.0), h, 9);
  const double ratio =
      static_cast<double>(m2.num_nodes()) / static_cast<double>(m1.num_nodes());
  EXPECT_GT(ratio, 3.0);  // ~4x for 2x radius at fixed element size
  EXPECT_LT(ratio, 5.0);
}

TEST(MeshGen, F1DomainHasHolesAndMeshes) {
  const mesh::Domain dom = mesh::f1_domain(1.0);
  ASSERT_EQ(dom.holes.size(), 3u);
  // Hole interiors are not in the domain.
  EXPECT_FALSE(dom.contains({0.3, 0.1}));   // cockpit
  EXPECT_FALSE(dom.contains({-2.0, -0.05}));  // front wing
  EXPECT_TRUE(dom.contains({1.2, -0.3}));
  const mesh::Mesh m = mesh::generate_mesh(dom, 0.08, 3);
  EXPECT_GT(m.num_nodes(), 500);
  EXPECT_NEAR(m.total_area(), dom.area(), 0.1 * dom.area());
}

TEST(Mesh, DiameterEstimatePositiveAndBounded) {
  const mesh::Mesh m =
      mesh::generate_mesh(mesh::random_domain(13), 0.08, 13);
  const la::Index d = m.diameter_estimate();
  EXPECT_GT(d, 5);
  EXPECT_LT(d, m.num_nodes());
}

}  // namespace
