// SessionCache behavior: hits return the *same* prepared session (setup not
// re-paid), distinct operators and configs miss, LRU eviction respects the
// byte budget, evicted-but-held sessions stay usable (aliased ownership),
// and a cached session still passes the solve_many block-vs-sequential
// equivalence.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/session_cache.hpp"
#include "fem/poisson.hpp"
#include "la/vector_ops.hpp"
#include "mesh/generator.hpp"

namespace {

using namespace ddmgnn;
using la::Index;

la::CsrMatrix grid_laplacian(Index side, double shift) {
  const Index n = side * side;
  la::CooBuilder coo(n, n);
  for (Index r = 0; r < side; ++r) {
    for (Index c = 0; c < side; ++c) {
      const Index i = r * side + c;
      coo.add(i, i, 4.0 + shift);
      if (r > 0) coo.add(i, i - side, -1.0);
      if (r + 1 < side) coo.add(i, i + side, -1.0);
      if (c > 0) coo.add(i, i - 1, -1.0);
      if (c + 1 < side) coo.add(i, i + 1, -1.0);
    }
  }
  return std::move(coo).build();
}

core::HybridConfig lu_config() {
  core::HybridConfig cfg;
  cfg.preconditioner = "ddm-lu";
  cfg.subdomain_target_nodes = 200;
  cfg.rel_tol = 1e-8;
  cfg.track_history = false;
  return cfg;
}

TEST(SessionCache, HitReturnsSamePreparedSessionWithoutReSetup) {
  core::SessionCache cache(1u << 30);
  const la::CsrMatrix A = grid_laplacian(24, 0.0);
  const core::HybridConfig cfg = lu_config();

  auto s1 = cache.get_or_setup(A, cfg);
  ASSERT_TRUE(s1->ready());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
  const double setup_s = s1->setup_seconds();
  EXPECT_GT(setup_s, 0.0);

  auto s2 = cache.get_or_setup(A, cfg);
  // The same object, not an equivalent rebuild: setup was not re-paid.
  EXPECT_EQ(s1.get(), s2.get());
  EXPECT_EQ(s2->setup_seconds(), setup_s);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.size(), 1u);

  // The cached session solves correctly against its own operator copy even
  // if the caller's matrix is gone.
  const std::vector<double> ones(A.rows(), 1.0);
  const std::vector<double> b = A.apply(ones);
  std::vector<double> x(A.rows(), 0.0);
  const auto res = s2->solve(b, x);
  EXPECT_TRUE(res.converged);
  for (Index i = 0; i < A.rows(); i += 37) {
    EXPECT_NEAR(x[i], 1.0, 1e-6) << i;
  }
}

TEST(SessionCache, DistinctOperatorsAndConfigsMiss) {
  core::SessionCache cache(1u << 30);
  const la::CsrMatrix a0 = grid_laplacian(20, 0.0);
  const la::CsrMatrix a1 = grid_laplacian(20, 1.0);   // same pattern, new vals
  const la::CsrMatrix a2 = grid_laplacian(21, 0.0);   // new shape
  const core::HybridConfig cfg = lu_config();

  auto s0 = cache.get_or_setup(a0, cfg);
  auto s1 = cache.get_or_setup(a1, cfg);
  auto s2 = cache.get_or_setup(a2, cfg);
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_NE(s0.get(), s1.get());
  EXPECT_NE(s1.get(), s2.get());

  // A config change re-keys even on the same operator.
  core::HybridConfig looser = cfg;
  looser.rel_tol = 1e-4;
  auto s3 = cache.get_or_setup(a0, looser);
  EXPECT_EQ(cache.stats().misses, 4u);
  EXPECT_NE(s0.get(), s3.get());

  // And the original keys all still hit.
  (void)cache.get_or_setup(a0, cfg);
  (void)cache.get_or_setup(a1, cfg);
  EXPECT_EQ(cache.stats().hits, 2u);
}

TEST(SessionCache, LruEvictsUnderByteBudgetAndHeldSessionsSurvive) {
  const la::CsrMatrix a0 = grid_laplacian(22, 0.0);
  const la::CsrMatrix a1 = grid_laplacian(22, 1.0);
  const la::CsrMatrix a2 = grid_laplacian(22, 2.0);
  const core::HybridConfig cfg = lu_config();

  // Budget sized for about two prepared sessions.
  std::size_t one_entry;
  {
    core::SessionCache probe(1u << 30);
    (void)probe.get_or_setup(a0, cfg);
    one_entry = probe.size_bytes();
    ASSERT_GT(one_entry, 0u);
  }
  core::SessionCache cache(2 * one_entry + one_entry / 2);

  auto s0 = cache.get_or_setup(a0, cfg);
  (void)cache.get_or_setup(a1, cfg);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 0u);

  // Third insert exceeds the budget: the least-recently-used entry (a0) is
  // evicted.
  (void)cache.get_or_setup(a2, cfg);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_LE(cache.size_bytes(), 2 * one_entry + one_entry / 2);

  (void)cache.get_or_setup(a1, cfg);  // still resident
  EXPECT_EQ(cache.stats().hits, 1u);
  (void)cache.get_or_setup(a0, cfg);  // evicted: a fresh miss
  EXPECT_EQ(cache.stats().misses, 4u);

  // The evicted-but-held session (s0 from the first insert) is alive and
  // solves — eviction drops the cache's reference, not the caller's.
  const std::vector<double> ones(a0.rows(), 1.0);
  const std::vector<double> b = a0.apply(ones);
  std::vector<double> x(a0.rows(), 0.0);
  EXPECT_TRUE(s0->ready());
  const auto res = s0->solve(b, x);
  EXPECT_TRUE(res.converged);
}

TEST(SessionCache, LruRecencyOrderGovernsEviction) {
  const la::CsrMatrix a0 = grid_laplacian(22, 0.0);
  const la::CsrMatrix a1 = grid_laplacian(22, 1.0);
  const la::CsrMatrix a2 = grid_laplacian(22, 2.0);
  const core::HybridConfig cfg = lu_config();
  std::size_t one_entry;
  {
    core::SessionCache probe(1u << 30);
    (void)probe.get_or_setup(a0, cfg);
    one_entry = probe.size_bytes();
  }
  core::SessionCache cache(2 * one_entry + one_entry / 2);
  (void)cache.get_or_setup(a0, cfg);
  (void)cache.get_or_setup(a1, cfg);
  (void)cache.get_or_setup(a0, cfg);  // touch a0: a1 becomes LRU
  (void)cache.get_or_setup(a2, cfg);  // evicts a1, not a0
  (void)cache.get_or_setup(a0, cfg);
  EXPECT_EQ(cache.stats().hits, 2u);  // both a0 touches after the insert
  (void)cache.get_or_setup(a1, cfg);
  EXPECT_EQ(cache.stats().misses, 4u);  // a1 had to be rebuilt
}

TEST(SessionCache, OversizedSingleEntryIsAdmitted) {
  core::SessionCache cache(/*byte_budget=*/1);  // everything is oversized
  const la::CsrMatrix A = grid_laplacian(16, 0.0);
  auto s = cache.get_or_setup(A, lu_config());
  EXPECT_TRUE(s->ready());
  EXPECT_EQ(cache.size(), 1u);  // admitted despite the budget
  (void)cache.get_or_setup(A, lu_config());
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(SessionCache, MeshKeyedLookupHitsAndMatchesDirectSetup) {
  const std::uint64_t seed = 31;
  mesh::Mesh m =
      mesh::generate_mesh_target_nodes(mesh::random_domain(seed), 800, seed);
  const auto q = fem::sample_quadratic_data(seed);
  const auto prob = fem::assemble_poisson(
      m, [&](const mesh::Point2& p) { return q.f(p); },
      [&](const mesh::Point2& p) { return q.g(p); });
  const core::HybridConfig cfg = lu_config();

  core::SessionCache cache(1u << 30);
  auto s1 = cache.get_or_setup(m, prob, cfg);
  auto s2 = cache.get_or_setup(m, prob, cfg);
  EXPECT_EQ(s1.get(), s2.get());
  EXPECT_EQ(cache.stats().hits, 1u);

  // The cached session reproduces the direct mesh-path session exactly.
  core::SolverSession direct;
  direct.setup(m, prob, cfg);
  std::vector<double> x_cache(prob.b.size(), 0.0),
      x_direct(prob.b.size(), 0.0);
  const auto r_cache = s1->solve(prob.b, x_cache);
  const auto r_direct = direct.solve(prob.b, x_direct);
  EXPECT_EQ(r_cache.iterations, r_direct.iterations);
  for (std::size_t i = 0; i < x_cache.size(); ++i) {
    ASSERT_EQ(x_cache[i], x_direct[i]) << i;
  }
}

// Mesh-keyed and matrix-keyed lookups prepare sessions over *different*
// graphs (mesh adjacency vs matrix pattern) — identical (A, cfg, mask,
// coords) must still key two distinct entries, never alias.
TEST(SessionCache, MeshAndMatrixKeyedLookupsDoNotCollide) {
  const std::uint64_t seed = 41;
  mesh::Mesh m =
      mesh::generate_mesh_target_nodes(mesh::random_domain(seed), 700, seed);
  const auto q = fem::sample_quadratic_data(seed);
  const auto prob = fem::assemble_poisson(
      m, [&](const mesh::Point2& p) { return q.f(p); },
      [&](const mesh::Point2& p) { return q.g(p); });
  const core::HybridConfig cfg = lu_config();

  core::SessionCache cache(1u << 30);
  core::AlgebraicOptions opts;
  opts.dirichlet = prob.dirichlet;
  opts.coordinates = m.points();
  auto s_matrix = cache.get_or_setup(prob.A, cfg, opts);   // matrix graph
  auto s_mesh = cache.get_or_setup(m, prob, cfg);          // mesh graph
  EXPECT_NE(s_matrix.get(), s_mesh.get());
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().hits, 0u);
  // Each re-lookup hits its own entry.
  EXPECT_EQ(cache.get_or_setup(prob.A, cfg, opts).get(), s_matrix.get());
  EXPECT_EQ(cache.get_or_setup(m, prob, cfg).get(), s_mesh.get());
  EXPECT_EQ(cache.stats().hits, 2u);
  // And the mesh-keyed entry matches the direct mesh-path session.
  core::SolverSession direct;
  direct.setup(m, prob, cfg);
  std::vector<double> x1(prob.b.size(), 0.0), x2(prob.b.size(), 0.0);
  EXPECT_EQ(s_mesh->solve(prob.b, x1).iterations,
            direct.solve(prob.b, x2).iterations);
}

TEST(SessionCache, CachedSessionPassesBlockVsSequentialEquivalence) {
  core::SessionCache cache(1u << 30);
  const la::CsrMatrix A = grid_laplacian(26, 0.0);
  auto session = cache.get_or_setup(A, lu_config());

  std::vector<std::vector<double>> rhs(4);
  for (std::size_t j = 0; j < rhs.size(); ++j) {
    rhs[j].resize(A.rows());
    for (Index i = 0; i < A.rows(); ++i) {
      rhs[j][i] = std::sin(0.1 * static_cast<double>(i + 1) *
                           static_cast<double>(j + 1));
    }
  }

  std::vector<std::vector<double>> xs_seq, xs_blk;
  session->set_block_multi_rhs(false);
  const auto res_seq = session->solve_many(rhs, xs_seq);
  session->set_block_multi_rhs(true);
  const auto res_blk = session->solve_many(rhs, xs_blk);
  ASSERT_EQ(res_seq.size(), rhs.size());
  ASSERT_EQ(res_blk.size(), rhs.size());
  for (std::size_t j = 0; j < rhs.size(); ++j) {
    EXPECT_TRUE(res_seq[j].converged) << j;
    EXPECT_TRUE(res_blk[j].converged) << j;
    // Lockstep block PCG is bit-identical to scalar PCG per column.
    EXPECT_EQ(res_seq[j].iterations, res_blk[j].iterations) << j;
    double scale = 0.0;
    for (const double v : xs_seq[j]) scale = std::max(scale, std::abs(v));
    for (std::size_t i = 0; i < xs_seq[j].size(); ++i) {
      ASSERT_NEAR(xs_seq[j][i], xs_blk[j][i], 1e-12 * (1.0 + scale))
          << j << ":" << i;
    }
  }
}

}  // namespace
