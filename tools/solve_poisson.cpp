// Legacy-style solver driver (the repository's analogue of an HTSSolver
// command-line run): generate a Poisson problem, pick a preconditioner (by
// registry name) and Krylov method (by selector name) from flags, solve
// through a SolverSession, and print a machine-parsable report line.
//
//   solve_poisson --nodes 40000 --precond ddm-gnn --sub-nodes 350
//                 --overlap 2 --tol 1e-6 --krylov fpcg --model artifacts/...
//                 --repeat 1
//
// Matrix-first mode — solve an operator the repository never assembled:
//
//   solve_poisson --matrix system.mtx [--rhs b.mtx] --precond ddm-gnn
//
// loads a MatrixMarket SPD system and runs the algebraic setup path: the
// decomposition comes from the matrix graph and (for the GNN variants) edge
// features from synthetic spectral coordinates. Without --rhs the right-hand
// side is A·1 (manufactured solution = all-ones).
//
// Preconditioners: any registered name (none | jacobi | ic0 | ddm-lu |
//                  ddm-lu-1level | ddm-gnn | ddm-gnn-1level, plus aliases).
// Krylov: cg | pcg | fpcg | bicgstab | gmres | richardson (the stationary
// Eq. 8 iteration; damped by --omega, auto power-iteration bound when
// omitted); default picked from the preconditioner's symmetry.
// --repeat N re-solves the same system N times through one session, showing
// the setup cost amortize away.
// Multi-level (-ml entries): --levels L sets the coarse-hierarchy depth
// (L=1 keeps the classic dense Nicolaides solve; L>=2 builds the
// smoothed-aggregation hierarchy), --cycle v|w picks the cycle shape,
// --smoother jacobi|chebyshev and --smooth-steps N tune the intermediate
// levels. When a hierarchy is active a per-level stats block (rows / nnz
// per level, dense-factor and total coarse bytes) is printed after setup.
// --threads N pins the worker-thread count (reported as threads= on every
// result line so timings stay interpretable).
// --verbose-timing prints a one-line phase summary (setup / iterate /
// precond / coarse seconds) after each solve, sourced from the obs metrics
// registry. --trace out.json captures a Chrome trace_event timeline;
// --metrics out.json dumps the registry snapshot at exit.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "core/model_zoo.hpp"
#include "core/solver_session.hpp"
#include "fem/poisson.hpp"
#include "gnn/model_io.hpp"
#include "la/mm_io.hpp"
#include "mesh/generator.hpp"
#include "mg/vcycle.hpp"
#include "obs/flags.hpp"
#include "obs/forensics.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "precond/asm_precond.hpp"
#include "precond/registry.hpp"
#include "solver/stationary.hpp"

namespace {

const char* arg_str(int argc, char** argv, const char* name,
                    const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

double arg_num(int argc, char** argv, const char* name, double fallback) {
  const char* s = arg_str(argc, argv, name, nullptr);
  return s ? std::atof(s) : fallback;
}

bool has_flag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

double gauge_value(const char* name) {
  const ddmgnn::obs::Gauge* g =
      ddmgnn::obs::Registry::instance().find_gauge(name);
  return g != nullptr ? g->value() : 0.0;
}

/// Registry snapshot of the phase gauges the --verbose-timing summary is
/// diffed against (per solve, so repeat runs show their own share).
struct PhaseSnapshot {
  double solve = 0.0;
  double precond = 0.0;
  double coarse = 0.0;

  static PhaseSnapshot take() {
    PhaseSnapshot s;
    s.solve = gauge_value("solver.solve_seconds_total");
    s.precond = gauge_value("solver.precond_seconds_total");
    s.coarse = gauge_value("asm.coarse_seconds");
    return s;
  }
};

void print_phase_summary(const PhaseSnapshot& before, double setup_seconds) {
  const PhaseSnapshot now = PhaseSnapshot::take();
  const double solve = now.solve - before.solve;
  const double precond = now.precond - before.precond;
  const double coarse = now.coarse - before.coarse;
  // "iterate" is the Krylov work outside the preconditioner: SpMV,
  // orthogonalization, vector updates.
  std::printf("timing: setup=%.4f iterate=%.4f precond=%.4f coarse=%.4f\n",
              setup_seconds, solve - precond, precond, coarse);
}

/// Flush --trace / --metrics artifacts; called on every exit path that
/// follows a solve.
void write_obs_outputs(const char* trace_path, const char* metrics_path) {
  if (metrics_path != nullptr) {
    ddmgnn::obs::Registry::instance().write_json(metrics_path);
    std::printf("metrics: %s\n", metrics_path);
  }
  if (trace_path != nullptr) {
    ddmgnn::obs::TraceRecorder::instance().write_chrome_trace(trace_path);
    std::printf("trace: %s\n", trace_path);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ddmgnn;
  const auto nodes = static_cast<la::Index>(arg_num(argc, argv, "--nodes", 10000));
  const std::string precond = arg_str(argc, argv, "--precond", "ddm-lu");
  const std::string krylov = arg_str(argc, argv, "--krylov", "");
  const std::uint64_t seed =
      static_cast<std::uint64_t>(arg_num(argc, argv, "--seed", 1));
  const int repeat = static_cast<int>(arg_num(argc, argv, "--repeat", 1));
  // --threads N overrides DDMGNN_THREADS / OMP defaults for this process;
  // the effective count is reported on every result line either way.
  const int threads_flag = static_cast<int>(arg_num(argc, argv, "--threads", 0));
  if (arg_str(argc, argv, "--threads", nullptr) != nullptr) {
    if (threads_flag <= 0) {
      std::fprintf(stderr, "--threads must be > 0 (got %d)\n", threads_flag);
      return 2;
    }
    set_num_threads(threads_flag);
  }
  const int threads = num_threads();

  const char* trace_path = arg_str(argc, argv, "--trace", nullptr);
  const char* metrics_path = arg_str(argc, argv, "--metrics", nullptr);
  const bool verbose_timing = has_flag(argc, argv, "--verbose-timing");
  if (trace_path != nullptr) obs::set_trace_enabled(true);
  // The phase summary and the snapshot both read registry gauges, so either
  // consumer (as well as --trace, whose snapshot names the dominant phase)
  // turns metrics collection on. Flags are set before setup so the
  // setup.* phases are captured too.
  if (metrics_path != nullptr || trace_path != nullptr || verbose_timing) {
    obs::set_metrics_enabled(true);
  }

  if (!precond::PrecondRegistry::instance().contains(precond)) {
    std::fprintf(stderr, "unknown --precond %s; registered:", precond.c_str());
    for (const auto& n : precond::preconditioner_names()) {
      std::fprintf(stderr, " %s", n.c_str());
    }
    std::fprintf(stderr, "\n");
    return 2;
  }
  const precond::PrecondTraits& traits =
      precond::preconditioner_traits(precond);

  // Problem source: either a generated FEM Poisson problem (default) or an
  // external MatrixMarket system (--matrix). `prob` carries A/b/dirichlet in
  // both modes; `m` exists only for the FEM path.
  const char* matrix_path = arg_str(argc, argv, "--matrix", nullptr);
  std::optional<mesh::Mesh> m;
  fem::PoissonProblem prob;
  if (matrix_path != nullptr) {
    try {
      prob.A = la::mm::read_matrix(matrix_path);
      if (prob.A.rows() != prob.A.cols()) {
        std::fprintf(stderr, "--matrix %s: operator must be square (%d x %d)\n",
                     matrix_path, prob.A.rows(), prob.A.cols());
        return 2;
      }
      const char* rhs_path = arg_str(argc, argv, "--rhs", nullptr);
      if (rhs_path != nullptr) {
        prob.b = la::mm::read_vector(rhs_path);
        if (prob.b.size() != static_cast<std::size_t>(prob.A.rows())) {
          std::fprintf(stderr, "--rhs %s: %zu values for a %d-row operator\n",
                       rhs_path, prob.b.size(), prob.A.rows());
          return 2;
        }
      } else {
        // Manufactured solution x* = 1: b = A·1.
        const std::vector<double> ones(prob.A.rows(), 1.0);
        prob.b = prob.A.apply(ones);
      }
    } catch (const ddmgnn::ContractError& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
    prob.dirichlet.assign(prob.A.rows(), 0);
  } else {
    m = mesh::generate_mesh_target_nodes(mesh::random_domain(seed), nodes,
                                         seed);
    const auto q = fem::sample_quadratic_data(seed);
    prob = fem::assemble_poisson(
        *m, [&](const mesh::Point2& p) { return q.f(p); },
        [&](const mesh::Point2& p) { return q.g(p); });
  }
  const la::Index problem_nodes =
      matrix_path != nullptr ? prob.A.rows() : m->num_nodes();

  core::HybridConfig cfg;
  cfg.preconditioner = precond;
  cfg.subdomain_target_nodes =
      static_cast<la::Index>(arg_num(argc, argv, "--sub-nodes", 350));
  cfg.overlap = static_cast<int>(arg_num(argc, argv, "--overlap", 2));
  cfg.rel_tol = arg_num(argc, argv, "--tol", 1e-6);
  cfg.max_iterations = static_cast<int>(arg_num(argc, argv, "--max-iters", 5000));
  cfg.gnn_refinement_steps =
      static_cast<int>(arg_num(argc, argv, "--refine", 0));
  cfg.mg_levels = static_cast<int>(arg_num(argc, argv, "--levels", 1));
  cfg.mg_cycle = arg_str(argc, argv, "--cycle", "v");
  cfg.mg_smoother = arg_str(argc, argv, "--smoother", "jacobi");
  cfg.mg_smooth_steps =
      static_cast<int>(arg_num(argc, argv, "--smooth-steps", 1));
  cfg.seed = seed;
  if (cfg.mg_levels > 1 && !precond.ends_with("-ml")) {
    std::fprintf(stderr,
                 "--levels %d only applies to the multi-level entries "
                 "(ddm-lu-ml | ddm-gnn-ml); --precond %s ignores it\n",
                 cfg.mg_levels, precond.c_str());
    return 2;
  }

  std::optional<gnn::DssModel> model;
  if (traits.needs_model) {
    const char* path = arg_str(argc, argv, "--model", nullptr);
    if (path != nullptr) {
      model = gnn::load_model(path);
      if (!model) {
        std::fprintf(stderr, "cannot load model %s\n", path);
        return 2;
      }
    } else {
      model = core::get_or_train_model(core::default_spec(10, 10));
    }
    cfg.model = &*model;
  }

  if (!krylov.empty() && krylov != "richardson") {
    const auto method = solver::krylov_method_from_name(krylov);
    if (!method) {
      std::fprintf(stderr,
                   "unknown --krylov %s (cg|pcg|fpcg|bicgstab|gmres|"
                   "richardson)\n",
                   krylov.c_str());
      return 2;
    }
    cfg.method = *method;
  }

  core::SolverSession session;
  if (matrix_path != nullptr) {
    session.setup(prob.A, cfg);  // algebraic path: graph + synthetic coords
  } else {
    session.setup(*m, prob, cfg);
  }

  // Per-level hierarchy report (only when an mg coarse component is active).
  if (const auto* schwarz = dynamic_cast<const precond::AdditiveSchwarz*>(
          &session.preconditioner())) {
    if (const auto* cycle = dynamic_cast<const mg::VCycle*>(
            schwarz->coarse_component())) {
      const mg::Hierarchy& h = cycle->hierarchy();
      const auto rows = h.level_rows();
      const auto nnz = h.level_nnz();
      std::printf("mg: cycle=%s coarse_levels=%d dense_factor_bytes=%zu "
                  "coarse_bytes=%zu\n",
                  cycle->name().c_str(), h.num_coarse_levels(),
                  cycle->dense_factor_bytes(), cycle->memory_bytes());
      for (std::size_t l = 0; l < rows.size(); ++l) {
        std::printf("mg: level=%zu rows=%d nnz=%lld%s\n", l, rows[l],
                    static_cast<long long>(nnz[l]),
                    l == 0 ? " (fine)"
                           : (l + 1 == rows.size() ? " (dense-factored)" : ""));
      }
    }
  }

  if (krylov == "richardson") {
    // Stationary Schwarz iteration (paper Eq. 8) reusing the session's
    // preconditioner setup. Undamped Richardson diverges whenever the
    // spectrum of M⁻¹A exceeds 2 (additive Schwarz overlaps push it there),
    // so the default damping comes from a cheap power-iteration bound;
    // --omega overrides it (--omega 1 reproduces the plain Eq. 8 form).
    const char* omega_str = arg_str(argc, argv, "--omega", nullptr);
    const double omega_flag = omega_str != nullptr ? std::atof(omega_str) : 0.0;
    if (omega_str != nullptr && !(omega_flag > 0.0)) {
      std::fprintf(stderr, "--omega must be > 0 (got %s); omit the flag for "
                   "the power-iteration default\n", omega_str);
      return 2;
    }
    const double omega =
        omega_str != nullptr
            ? omega_flag
            : solver::power_iteration_damping(prob.A,
                                              session.preconditioner(),
                                              /*iterations=*/12, seed);
    std::vector<double> x(prob.b.size(), 0.0);
    solver::SolveOptions opts;
    opts.rel_tol = cfg.rel_tol;
    opts.max_iterations = cfg.max_iterations;
    const PhaseSnapshot before = PhaseSnapshot::take();
    const auto res = solver::stationary_iteration(
        prob.A, session.preconditioner(), prob.b, x, opts, omega);
    std::printf("method=richardson+%s N=%d K=%d threads=%d omega=%.4f%s "
                "iters=%d rel_res=%.3e T=%.4f setup=%.4f converged=%d "
                "failure=%s\n",
                session.preconditioner().name().c_str(), problem_nodes,
                session.num_subdomains(), threads, omega,
                omega_str != nullptr ? "" : "(auto)", res.iterations,
                res.final_relative_residual, res.total_seconds,
                session.setup_seconds(), res.converged ? 1 : 0,
                obs::failure_reason_name(res.failure));
    if (verbose_timing) print_phase_summary(before, session.setup_seconds());
    write_obs_outputs(trace_path, metrics_path);
    if (!res.converged) {
      const bool blew_up =
          !res.history.empty() &&
          (res.final_relative_residual > 1.0 ||
           !std::isfinite(res.final_relative_residual));
      if (blew_up) {
        std::fprintf(stderr,
                     "richardson DIVERGED (rel_res=%.3e after %d iters, "
                     "omega=%.4f): the iteration matrix I - omega*M^-1*A is "
                     "not contractive. Retry with a smaller --omega or use "
                     "a Krylov method (--krylov pcg).\n",
                     res.final_relative_residual, res.iterations, omega);
      } else {
        std::fprintf(stderr,
                     "richardson did not reach tol=%.1e in %d iterations "
                     "(rel_res=%.3e, omega=%.4f): increase --max-iters or "
                     "--omega, or use --krylov pcg.\n",
                     cfg.rel_tol, res.iterations,
                     res.final_relative_residual, omega);
      }
    }
    return res.converged ? 0 : 1;
  }

  bool all_converged = true;
  std::vector<double> x(prob.b.size());
  for (int run = 0; run < std::max(1, repeat); ++run) {
    std::fill(x.begin(), x.end(), 0.0);
    const PhaseSnapshot before = PhaseSnapshot::take();
    const auto res = session.solve(prob.b, x);
    std::printf("method=%s precond=%s N=%d K=%d threads=%d iters=%d "
                "rel_res=%.3e T=%.4f T_precond=%.4f setup=%.4f converged=%d "
                "failure=%s\n",
                res.method.c_str(), precond.c_str(), problem_nodes,
                session.num_subdomains(), threads, res.iterations,
                res.final_relative_residual, res.total_seconds,
                res.precond_seconds, run == 0 ? session.setup_seconds() : 0.0,
                res.converged ? 1 : 0, obs::failure_reason_name(res.failure));
    if (verbose_timing) {
      print_phase_summary(before, run == 0 ? session.setup_seconds() : 0.0);
    }
    all_converged = all_converged && res.converged;
  }
  write_obs_outputs(trace_path, metrics_path);
  return all_converged ? 0 : 1;
}
