// Legacy-style solver driver (the repository's analogue of an HTSSolver
// command-line run): generate a Poisson problem, pick a preconditioner and
// Krylov method from flags, solve, and print a machine-parsable report line.
//
//   solve_poisson --nodes 40000 --precond ddm-gnn --sub-nodes 350
//                 --overlap 2 --tol 1e-6 --krylov fpcg --model artifacts/...
//
// Preconditioners: none | jacobi | ic0 | ddm-lu | ddm-lu-1 | ddm-gnn |
//                  ddm-gnn-1.  Krylov: cg | pcg | fpcg | bicgstab | gmres |
//                  richardson (the stationary Eq. 8 iteration).
#include <cstdio>
#include <cstring>
#include <string>

#include "core/hybrid_solver.hpp"
#include "core/model_zoo.hpp"
#include "fem/poisson.hpp"
#include "gnn/model_io.hpp"
#include "mesh/generator.hpp"
#include "precond/asm_precond.hpp"
#include "precond/ic0_precond.hpp"
#include "solver/stationary.hpp"

namespace {

const char* arg_str(int argc, char** argv, const char* name,
                    const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

double arg_num(int argc, char** argv, const char* name, double fallback) {
  const char* s = arg_str(argc, argv, name, nullptr);
  return s ? std::atof(s) : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ddmgnn;
  const auto nodes = static_cast<la::Index>(arg_num(argc, argv, "--nodes", 10000));
  const std::string precond = arg_str(argc, argv, "--precond", "ddm-lu");
  const std::string krylov = arg_str(argc, argv, "--krylov", "");
  const std::uint64_t seed =
      static_cast<std::uint64_t>(arg_num(argc, argv, "--seed", 1));

  const mesh::Mesh m =
      mesh::generate_mesh_target_nodes(mesh::random_domain(seed), nodes, seed);
  const auto q = fem::sample_quadratic_data(seed);
  const auto prob = fem::assemble_poisson(
      m, [&](const mesh::Point2& p) { return q.f(p); },
      [&](const mesh::Point2& p) { return q.g(p); });

  core::HybridConfig cfg;
  cfg.subdomain_target_nodes =
      static_cast<la::Index>(arg_num(argc, argv, "--sub-nodes", 350));
  cfg.overlap = static_cast<int>(arg_num(argc, argv, "--overlap", 2));
  cfg.rel_tol = arg_num(argc, argv, "--tol", 1e-6);
  cfg.max_iterations = static_cast<int>(arg_num(argc, argv, "--max-iters", 5000));
  cfg.gnn_refinement_steps =
      static_cast<int>(arg_num(argc, argv, "--refine", 0));

  if (precond == "none") cfg.preconditioner = core::PrecondKind::kNone;
  else if (precond == "jacobi") cfg.preconditioner = core::PrecondKind::kJacobi;
  else if (precond == "ic0") cfg.preconditioner = core::PrecondKind::kIc0;
  else if (precond == "ddm-lu") cfg.preconditioner = core::PrecondKind::kDdmLu;
  else if (precond == "ddm-lu-1") cfg.preconditioner = core::PrecondKind::kDdmLu1;
  else if (precond == "ddm-gnn") cfg.preconditioner = core::PrecondKind::kDdmGnn;
  else if (precond == "ddm-gnn-1") cfg.preconditioner = core::PrecondKind::kDdmGnn1;
  else {
    std::fprintf(stderr, "unknown --precond %s\n", precond.c_str());
    return 2;
  }

  std::optional<gnn::DssModel> model;
  const bool is_gnn = cfg.preconditioner == core::PrecondKind::kDdmGnn ||
                      cfg.preconditioner == core::PrecondKind::kDdmGnn1;
  if (is_gnn) {
    const char* path = arg_str(argc, argv, "--model", nullptr);
    if (path != nullptr) {
      model = gnn::load_model(path);
      if (!model) {
        std::fprintf(stderr, "cannot load model %s\n", path);
        return 2;
      }
    } else {
      model = core::get_or_train_model(core::default_spec(10, 10));
    }
    cfg.model = &*model;
    cfg.flexible = true;
  }

  if (krylov == "richardson") {
    // Stationary Schwarz iteration (paper Eq. 8) through the same setup.
    const auto dec = partition::decompose_target_size(
        m.adj_ptr(), m.adj(), cfg.subdomain_target_nodes, cfg.overlap, seed);
    precond::AdditiveSchwarz ddm(
        prob.A, dec, std::make_unique<precond::CholeskySubdomainSolver>());
    std::vector<double> x(prob.b.size(), 0.0);
    solver::SolveOptions opts;
    opts.rel_tol = cfg.rel_tol;
    opts.max_iterations = cfg.max_iterations;
    const auto res = solver::stationary_iteration(prob.A, ddm, prob.b, x, opts);
    std::printf("method=richardson+asm N=%d K=%d iters=%d rel_res=%.3e "
                "T=%.4f converged=%d\n",
                m.num_nodes(), dec.num_parts, res.iterations,
                res.final_relative_residual, res.total_seconds,
                res.converged ? 1 : 0);
    return res.converged ? 0 : 1;
  }
  if (krylov == "fpcg") cfg.flexible = true;
  if (krylov == "pcg") cfg.flexible = false;

  const auto rep = core::solve_poisson(m, prob, cfg);
  std::printf("method=%s precond=%s N=%d K=%d iters=%d rel_res=%.3e T=%.4f "
              "T_precond=%.4f setup=%.4f converged=%d\n",
              rep.result.method.c_str(), precond.c_str(), m.num_nodes(),
              rep.num_subdomains, rep.result.iterations,
              rep.result.final_relative_residual, rep.result.total_seconds,
              rep.result.precond_seconds, rep.setup_seconds,
              rep.result.converged ? 1 : 0);
  return rep.result.converged ? 0 : 1;
}
