// Command-line training tool for DSS models — the repository's analogue of
// the paper's PyTorch training scripts. Trains on a freshly harvested
// dataset, reports Table-II-style metrics, optionally benchmarks the model
// inside PCG-DDM-GNN on a fresh problem, and can save the weights.
//
// Usage (all flags optional):
//   train_dss --k 10 --d 10 --hidden 10 --alpha 0.05 --lr 1e-2 --clip 1e-2
//             --epochs 40 --batch 64 --problems 6 --mesh-nodes 2200
//             --sub-nodes 350 --budget-s 0 --seed 97 --save model.bin
//             --solve-test 1 --verbose 1
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/dataset.hpp"
#include "core/solver_session.hpp"
#include "fem/poisson.hpp"
#include "gnn/metrics.hpp"
#include "gnn/model_io.hpp"
#include "gnn/trainer.hpp"
#include "mesh/generator.hpp"

namespace {

double arg_double(int argc, char** argv, const char* name, double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atof(argv[i + 1]);
  }
  return fallback;
}

std::string arg_string(int argc, char** argv, const char* name,
                       const std::string& fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ddmgnn;
  gnn::DssConfig mc;
  mc.iterations = static_cast<int>(arg_double(argc, argv, "--k", 10));
  mc.latent = static_cast<int>(arg_double(argc, argv, "--d", 10));
  mc.hidden = static_cast<int>(arg_double(argc, argv, "--hidden", 10));
  mc.alpha = static_cast<float>(arg_double(argc, argv, "--alpha", 0.05));
  mc.dirichlet_flag = arg_double(argc, argv, "--flag", 1) != 0;

  core::DatasetConfig dc;
  dc.num_global_problems =
      static_cast<int>(arg_double(argc, argv, "--problems", 6));
  dc.mesh_target_nodes =
      static_cast<la::Index>(arg_double(argc, argv, "--mesh-nodes", 2200));
  dc.subdomain_target_nodes =
      static_cast<la::Index>(arg_double(argc, argv, "--sub-nodes", 350));
  dc.seed = static_cast<std::uint64_t>(arg_double(argc, argv, "--seed", 4242));

  gnn::TrainConfig tc;
  tc.epochs = static_cast<int>(arg_double(argc, argv, "--epochs", 40));
  tc.batch_size = static_cast<int>(arg_double(argc, argv, "--batch", 64));
  tc.learning_rate = arg_double(argc, argv, "--lr", 1e-2);
  tc.clip_norm = arg_double(argc, argv, "--clip", 1e-2);
  tc.plateau_patience =
      static_cast<int>(arg_double(argc, argv, "--patience", 8));
  tc.wall_clock_budget_s = arg_double(argc, argv, "--budget-s", 0.0);
  tc.seed = static_cast<std::uint64_t>(arg_double(argc, argv, "--seed", 97));
  tc.verbose = arg_double(argc, argv, "--verbose", 1) != 0;

  std::printf("dataset: problems=%d mesh=%d sub=%d\n", dc.num_global_problems,
              dc.mesh_target_nodes, dc.subdomain_target_nodes);
  const core::DssDataset data = core::generate_dataset(dc);
  std::printf("samples: train=%zu val=%zu test=%zu\n", data.train.size(),
              data.validation.size(), data.test.size());

  gnn::DssModel model(mc, tc.seed);
  std::printf("model: k=%d d=%d hidden=%d alpha=%g flag=%d params=%zu\n",
              mc.iterations, mc.latent, mc.hidden,
              static_cast<double>(mc.alpha), mc.dirichlet_flag ? 1 : 0,
              model.num_params());
  const auto report = gnn::train_dss(model, data.train, data.validation, tc);
  std::printf("trained %d epochs in %.1fs\n", report.epochs_run,
              report.seconds);

  const auto metrics = gnn::evaluate_dss(model, data.test);
  std::printf("test: residual(RMS)=%.5f +/- %.5f  rel_error=%.4f +/- %.4f\n",
              metrics.residual_mean, metrics.residual_std,
              metrics.rel_error_mean, metrics.rel_error_std);

  const std::string save = arg_string(argc, argv, "--save", "");
  if (!save.empty()) {
    gnn::save_model(model, save);
    std::printf("saved to %s\n", save.c_str());
  }

  if (arg_double(argc, argv, "--solve-test", 1) != 0) {
    const std::uint64_t seed = 555;
    const mesh::Mesh m = mesh::generate_mesh_target_nodes(
        mesh::random_domain(seed), 3 * dc.mesh_target_nodes, seed);
    const auto q = fem::sample_quadratic_data(seed);
    const auto prob = fem::assemble_poisson(
        m, [&](const mesh::Point2& p) { return q.f(p); },
        [&](const mesh::Point2& p) { return q.g(p); });
    core::HybridConfig cfg;
    cfg.preconditioner = "ddm-gnn";
    cfg.subdomain_target_nodes = dc.subdomain_target_nodes;
    cfg.model = &model;
    cfg.max_iterations = 400;
    cfg.gnn_refinement_steps =
        static_cast<int>(arg_double(argc, argv, "--refine", 0));
    // One session: both Krylov variants reuse the same decomposition/graphs.
    core::SolverSession session;
    session.setup(m, prob, cfg);
    std::vector<double> x(prob.b.size());
    for (const auto method :
         {solver::KrylovMethod::kPcg, solver::KrylovMethod::kFpcg}) {
      session.set_method(method);
      std::fill(x.begin(), x.end(), 0.0);
      const auto res = session.solve(prob.b, x);
      std::printf("solve N=%d %s(refine=%d): iters=%d rel_res=%.2e %s\n",
                  m.num_nodes(), solver::krylov_method_name(method),
                  cfg.gnn_refinement_steps, res.iterations,
                  res.final_relative_residual,
                  res.converged ? "converged" : "NOT CONVERGED");
    }
    cfg.preconditioner = "ddm-lu";
    session.setup(m, prob, cfg);
    std::fill(x.begin(), x.end(), 0.0);
    const auto res = session.solve(prob.b, x);
    std::printf("solve N=%d ddm-lu: iters=%d (reference)\n", m.num_nodes(),
                res.iterations);
  }
  return 0;
}
