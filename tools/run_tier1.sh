#!/usr/bin/env bash
# Tier-1 verify: configure, build, and run the full ctest suite.
# Usage: tools/run_tier1.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")/.."
cmake -B build -S .
cmake --build build -j"$(nproc)"
cd build
exec ctest --output-on-failure -j"$(nproc)" "$@"
